// Verifier rule coverage: one test per safety rule the abstract
// interpreter enforces, plus acceptance tests and complexity behaviour.
// Every rejected program here would crash, loop, or leak if executed.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "bpf/proggen.h"
#include "bpf/verifier.h"

namespace rdx::bpf {
namespace {

Program Prog(std::string_view asm_text,
             std::vector<MapSpec> maps = {}) {
  Program prog;
  prog.name = "test";
  prog.maps = std::move(maps);
  auto insns = Assemble(asm_text);
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

MapSpec DefaultMap() { return {"m", MapType::kArray, 4, 8, 16}; }

Status Verify(const Program& prog) { return Verifier().Verify(prog); }

#define EXPECT_REJECTED(prog, fragment)                                \
  do {                                                                 \
    Status status_ = Verify(prog);                                     \
    EXPECT_FALSE(status_.ok());                                        \
    EXPECT_NE(status_.message().find(fragment), std::string::npos)     \
        << "actual: " << status_.ToString();                           \
  } while (0)

// ---- structural rules ----

TEST(VerifierStructure, EmptyProgramRejected) {
  Program prog;
  EXPECT_FALSE(Verify(prog).ok());
}

TEST(VerifierStructure, JumpOutOfBounds) {
  Program prog;
  prog.insns = {JmpImm(kJmpJeq, 0, 0, 100), Exit()};
  EXPECT_REJECTED(prog, "out of program bounds");
}

TEST(VerifierStructure, JumpIntoLdImm64Second) {
  Program prog;
  auto [lo, hi] = LoadImm64(1, 42);
  // The branch target (pc 1 + 1 + off 1 = 3) is the hi slot of LD_IMM64.
  prog.insns = {MovImm(0, 0), JmpImm(kJmpJeq, 0, 0, 1), lo, hi, Exit()};
  EXPECT_REJECTED(prog, "middle of LD_IMM64");
}

TEST(VerifierStructure, TruncatedLdImm64) {
  Program prog;
  auto [lo, hi] = LoadImm64(1, 42);
  (void)hi;
  prog.insns = {lo};
  EXPECT_REJECTED(prog, "truncated");
}

TEST(VerifierStructure, BackEdgeRejectedByDefault) {
  EXPECT_REJECTED(Prog("top:\nr0 = 0\ngoto top\n"), "back edge");
}

TEST(VerifierStructure, BackEdgeAllowedWithConfig) {
  Program prog = Prog(R"(
    r0 = 3
  top:
    r0 -= 1
    if r0 != 0 goto top
    exit
  )");
  EXPECT_FALSE(Verifier().Verify(prog).ok());
  VerifierConfig config;
  config.allow_back_edges = true;
  EXPECT_TRUE(Verifier(config).Verify(prog).ok());
}

TEST(VerifierStructure, DivisionByConstantZero) {
  EXPECT_REJECTED(Prog("r0 = 1\nr0 /= 0\nexit\n"), "division by constant");
  EXPECT_REJECTED(Prog("r0 = 1\nr0 %= 0\nexit\n"), "division by constant");
}

TEST(VerifierStructure, ImmediateShiftOutOfRange) {
  EXPECT_REJECTED(Prog("r0 = 1\nr0 <<= 64\nexit\n"), "shift amount");
  EXPECT_REJECTED(Prog("w0 = 1\nw0 <<= 32\nexit\n"), "shift amount");
  EXPECT_TRUE(Verify(Prog("r0 = 1\nr0 <<= 63\nexit\n")).ok());
}

TEST(VerifierStructure, WriteToFramePointer) {
  EXPECT_REJECTED(Prog("r10 = 5\nexit\n"), "frame pointer");
  EXPECT_REJECTED(Prog("r10 += 8\nexit\n"), "frame pointer");
}

TEST(VerifierStructure, UnknownHelperRejected) {
  EXPECT_REJECTED(Prog("call 4242\nexit\n"), "unknown helper");
}

TEST(VerifierStructure, FallsOffTheEnd) {
  Program prog;
  prog.insns = {MovImm(0, 1)};
  EXPECT_REJECTED(prog, "falls off");
}

// ---- register initialization ----

TEST(VerifierInit, UninitializedReadRejected) {
  EXPECT_REJECTED(Prog("r0 = r5\nexit\n"), "uninitialized");
}

TEST(VerifierInit, UninitializedAluOperand) {
  EXPECT_REJECTED(Prog("r0 = 1\nr0 += r3\nexit\n"), "uninitialized");
}

TEST(VerifierInit, UninitializedBranchOperand) {
  EXPECT_REJECTED(Prog("r0 = 0\nif r4 == 0 goto out\nout:\nexit\n"),
                  "uninitialized");
}

TEST(VerifierInit, UninitializedStore) {
  EXPECT_REJECTED(Prog("*(u64*)(r10 - 8) = r3\nr0 = 0\nexit\n"),
                  "uninitialized");
}

TEST(VerifierInit, HelperClobbersCallerSaved) {
  // Using r1 after a call must be rejected: helpers clobber r1-r5.
  EXPECT_REJECTED(Prog(R"(
    r1 = 1
    call trace_printk
    r0 = r1
    exit
  )"), "uninitialized");
}

TEST(VerifierInit, CalleeSavedSurviveCalls) {
  EXPECT_TRUE(Verify(Prog(R"(
    r6 = 1
    call trace_printk
    r0 = r6
    exit
  )")).ok());
}

TEST(VerifierInit, ExitWithoutR0) {
  EXPECT_REJECTED(Prog("r1 = 1\nexit\n"), "r0");
}

TEST(VerifierInit, R1IsCtxAtEntry) {
  EXPECT_TRUE(Verify(Prog("r0 = *(u32*)(r1 + 0)\nexit\n")).ok());
}

// ---- stack discipline ----

TEST(VerifierStack, ReadOfUninitializedStack) {
  EXPECT_REJECTED(Prog("r0 = *(u64*)(r10 - 8)\nexit\n"),
                  "uninitialized stack");
}

TEST(VerifierStack, PartialInitializationDetected) {
  // Write 4 bytes, read 8: the upper half is uninitialized.
  EXPECT_REJECTED(Prog(R"(
    *(u32*)(r10 - 8) = 1
    r0 = *(u64*)(r10 - 8)
    exit
  )"), "uninitialized stack");
}

TEST(VerifierStack, OutOfBoundsBelow) {
  EXPECT_REJECTED(Prog("*(u64*)(r10 - 520) = 1\nr0 = 0\nexit\n"),
                  "stack access out of bounds");
}

TEST(VerifierStack, OverflowAboveFramePointer) {
  EXPECT_REJECTED(Prog("*(u64*)(r10 + 0) = 1\nr0 = 0\nexit\n"),
                  "stack access out of bounds");
  EXPECT_REJECTED(Prog("*(u64*)(r10 - 4) = 1\nr0 = 0\nexit\n"),
                  "stack access out of bounds");
}

TEST(VerifierStack, FullDepthUsable) {
  EXPECT_TRUE(Verify(Prog(R"(
    *(u64*)(r10 - 512) = 1
    r0 = *(u64*)(r10 - 512)
    exit
  )")).ok());
}

TEST(VerifierStack, DerivedStackPointerTracked) {
  EXPECT_TRUE(Verify(Prog(R"(
    r2 = r10
    r2 += -16
    *(u64*)(r2 + 0) = r2
  )", {})).ok() == false);  // storing a pointer: separate rule
  EXPECT_TRUE(Verify(Prog(R"(
    r2 = r10
    r2 += -16
    *(u64*)(r2 + 8) = 7
    r0 = *(u64*)(r2 + 8)
    exit
  )")).ok());
}

TEST(VerifierStack, PointerSpillRejected) {
  EXPECT_REJECTED(Prog(R"(
    *(u64*)(r10 - 8) = r1
    r0 = 0
    exit
  )"), "spill");
}

// ---- ctx access ----

TEST(VerifierCtx, InBoundsReadAccepted) {
  EXPECT_TRUE(Verify(Prog("r0 = *(u32*)(r1 + 252)\nexit\n")).ok());
}

TEST(VerifierCtx, OutOfBoundsReadRejected) {
  EXPECT_REJECTED(Prog("r0 = *(u32*)(r1 + 253)\nexit\n"),
                  "ctx access out of bounds");
  EXPECT_REJECTED(Prog("r0 = *(u8*)(r1 - 1)\nexit\n"),
                  "ctx access out of bounds");
}

TEST(VerifierCtx, WriteRejected) {
  EXPECT_REJECTED(Prog("*(u32*)(r1 + 0) = 1\nr0 = 0\nexit\n"),
                  "read-only ctx");
}

TEST(VerifierCtx, DerivedCtxPointerBoundsTracked) {
  EXPECT_REJECTED(Prog(R"(
    r1 += 200
    r0 = *(u64*)(r1 + 56)
    exit
  )"), "ctx access out of bounds");
  EXPECT_TRUE(Verify(Prog(R"(
    r1 += 200
    r0 = *(u64*)(r1 + 48)
    exit
  )")).ok());
}

// ---- pointer discipline ----

TEST(VerifierPtr, PointerAsScalarOperandRejected) {
  EXPECT_REJECTED(Prog("r0 = 1\nr0 += r1\nexit\n"), "pointer used as scalar");
}

TEST(VerifierPtr, PointerComparisonRejected) {
  EXPECT_REJECTED(Prog("if r1 == 0 goto out\nout:\nr0 = 0\nexit\n"),
                  "comparison on pointer");
}

TEST(VerifierPtr, PointerArithmeticWithRegisterRejected) {
  EXPECT_REJECTED(Prog(R"(
    r2 = 8
    r1 += r2
    r0 = 0
    exit
  )"), "pointer arithmetic must be +/- constant");
}

TEST(VerifierPtr, ThirtyTwoBitPointerMoveRejected) {
  EXPECT_REJECTED(Prog("w2 = w1\nr0 = 0\nexit\n"), "truncates pointer");
}

TEST(VerifierPtr, ThirtyTwoBitPointerArithmeticRejected) {
  EXPECT_REJECTED(Prog("w1 += 4\nr0 = 0\nexit\n"),
                  "32-bit arithmetic on pointer");
}

// ---- maps and helpers ----

TEST(VerifierMap, WellFormedLookupAccepted) {
  EXPECT_TRUE(Verify(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r0 = *(u64*)(r0 + 0)
  out:
    r0 = 0
    exit
  )", {DefaultMap()})).ok());
}

TEST(VerifierMap, MissingNullCheck) {
  EXPECT_REJECTED(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    r0 = *(u64*)(r0 + 0)
    exit
  )", {DefaultMap()}), "possibly-null");
}

TEST(VerifierMap, InvertedNullCheckAlsoWorks) {
  EXPECT_TRUE(Verify(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 != 0 goto use
    r0 = 0
    exit
  use:
    r0 = *(u64*)(r0 + 0)
    exit
  )", {DefaultMap()})).ok());
}

TEST(VerifierMap, ValueAccessOutOfBounds) {
  EXPECT_REJECTED(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r0 = *(u64*)(r0 + 8)
  out:
    r0 = 0
    exit
  )", {DefaultMap()}), "map value access out of bounds");
}

TEST(VerifierMap, ValueWritesAllowedInBounds) {
  EXPECT_TRUE(Verify(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    *(u64*)(r0 + 0) = 9
  out:
    r0 = 0
    exit
  )", {DefaultMap()})).ok());
}

TEST(VerifierMap, SlotOutOfRange) {
  EXPECT_REJECTED(Prog(R"(
    r1 = map 3
    r0 = 0
    exit
  )", {DefaultMap()}), "map slot out of range");
}

TEST(VerifierMap, HelperNeedsMapHandleInR1) {
  EXPECT_REJECTED(Prog(R"(
    r1 = 5
    r2 = r10
    r2 += -4
    *(u32*)(r10 - 4) = 0
    call map_lookup_elem
    r0 = 0
    exit
  )", {DefaultMap()}), "map handle");
}

TEST(VerifierMap, KeyMustBeInitializedStack) {
  EXPECT_REJECTED(Prog(R"(
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    r0 = 0
    exit
  )", {DefaultMap()}), "uninitialized stack");
}

TEST(VerifierMap, KeyMustBeMemoryPointer) {
  EXPECT_REJECTED(Prog(R"(
    r1 = map 0
    r2 = 1234
    call map_lookup_elem
    r0 = 0
    exit
  )", {DefaultMap()}), "must point to stack or map value");
}

TEST(VerifierMap, MapHandleDerefRejected) {
  EXPECT_REJECTED(Prog(R"(
    r1 = map 0
    r0 = *(u64*)(r1 + 0)
    exit
  )", {DefaultMap()}), "map handle");
}

// ---- JMP32 / BPF_END rules ----

TEST(VerifierJmp32, ConditionalAccepted) {
  EXPECT_TRUE(Verify(Prog(R"(
    r1 = 5
    if w1 == 5 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )")).ok());
}

TEST(VerifierJmp32, NoExitOrCallInJmp32Class) {
  Program prog;
  Insn bad_exit;
  bad_exit.opcode = kClassJmp32 | kJmpExit;
  prog.insns = {MovImm(0, 0), bad_exit};
  EXPECT_REJECTED(prog, "invalid JMP operation");
  Insn bad_ja;
  bad_ja.opcode = kClassJmp32 | kJmpJa;
  prog.insns = {MovImm(0, 0), bad_ja, Exit()};
  EXPECT_REJECTED(prog, "invalid JMP operation");
}

TEST(VerifierJmp32, PointerComparisonStillRejected) {
  EXPECT_REJECTED(Prog(R"(
    if w1 == 0 goto out
  out:
    r0 = 0
    exit
  )"), "comparison on pointer");
}

TEST(VerifierJmp32, NullCheckRefinementRequires64BitCompare) {
  // A 32-bit null check is NOT a valid null check (the kernel agrees:
  // pointer comparisons must be full-width).
  EXPECT_REJECTED(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if w0 == 0 goto out
    r0 = *(u64*)(r0 + 0)
  out:
    r0 = 0
    exit
  )", {DefaultMap()}), "");
}

TEST(VerifierEndian, ValidWidthsAccepted) {
  EXPECT_TRUE(Verify(Prog("r0 = 1\nr0 = be16 r0\nexit\n")).ok());
  EXPECT_TRUE(Verify(Prog("r0 = 1\nr0 = le64 r0\nexit\n")).ok());
}

TEST(VerifierEndian, BadWidthRejected) {
  Program prog;
  prog.insns = {MovImm(0, 1), Endian(0, 24, true), Exit()};
  EXPECT_REJECTED(prog, "byte-swap width");
}

TEST(VerifierEndian, SwapOnPointerRejected) {
  Program prog;
  prog.insns = {Endian(1, 16, true), MovImm(0, 0), Exit()};
  EXPECT_REJECTED(prog, "byte-swap on pointer");
}

TEST(VerifierEndian, SwapOnUninitRejected) {
  Program prog;
  prog.insns = {Endian(3, 16, true), MovImm(0, 0), Exit()};
  EXPECT_FALSE(Verify(prog).ok());
}

// ---- state merging across branches ----

TEST(VerifierMerge, BranchesWithCompatibleStatesAccepted) {
  EXPECT_TRUE(Verify(Prog(R"(
    r0 = *(u32*)(r1 + 0)
    if r0 == 0 goto a
    r2 = 1
    goto join
  a:
    r2 = 2
  join:
    r0 = r2
    exit
  )")).ok());
}

TEST(VerifierMerge, ConflictingTypesUnusableAfterJoin) {
  // r2 is scalar on one path, ctx pointer on the other; using it as a
  // load base after the join must be rejected.
  EXPECT_REJECTED(Prog(R"(
    r0 = *(u32*)(r1 + 0)
    if r0 == 0 goto a
    r2 = 1
    goto join
  a:
    r2 = r1
  join:
    r0 = *(u32*)(r2 + 0)
    exit
  )"), "");
}

TEST(VerifierMerge, NullCheckRefinementPerPath) {
  // After "if r0 == 0", the taken path must NOT be allowed to deref.
  EXPECT_REJECTED(Prog(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 != 0 goto use
    r0 = *(u64*)(r0 + 0)
    exit
  use:
    r0 = 0
    exit
  )", {DefaultMap()}), "");
}

// ---- stats + generated programs ----

TEST(VerifierStats, WorkGrowsWithProgramSize) {
  VerifierStats small_stats, large_stats;
  Program small = GenerateProgram({.target_insns = 1000, .seed = 1});
  Program large = GenerateProgram({.target_insns = 20000, .seed = 1});
  ASSERT_TRUE(Verifier().Verify(small, &small_stats).ok());
  ASSERT_TRUE(Verifier().Verify(large, &large_stats).ok());
  EXPECT_GT(large_stats.insns_processed, small_stats.insns_processed * 5);
}

TEST(VerifierStats, ComplexityCapTriggers) {
  VerifierConfig config;
  config.max_visited = 100;
  Program prog = GenerateProgram({.target_insns = 5000, .seed = 1});
  EXPECT_EQ(Verifier(config).Verify(prog).code(),
            StatusCode::kResourceExhausted);
}

class GeneratedPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedPrograms, AlwaysVerify) {
  for (std::size_t size : {500, 2000, 8000}) {
    Program prog =
        GenerateProgram({.target_insns = size, .seed = GetParam()});
    EXPECT_EQ(prog.insns.size(), size);
    Status status = Verify(prog);
    EXPECT_TRUE(status.ok())
        << "size " << size << ": " << status.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPrograms,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace rdx::bpf
