// Full-stack integration scenarios exercising several subsystems at once:
// mixed eBPF + Wasm on one sandbox, agent and RDX managing different
// hooks of the same node, detach/teardown, epoch accounting, multi-node
// consistency under load, and end-to-end migration.
#include <gtest/gtest.h>

#include "agent/agent.h"
#include "bpf/assembler.h"
#include "core/broadcast.h"
#include "mesh/mesh.h"

namespace rdx {
namespace {

using core::CodeFlow;
using core::ControlPlane;
using core::Sandbox;

struct World {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<std::unique_ptr<sim::CpuScheduler>> cpus;
  std::vector<std::unique_ptr<agent::NodeAgent>> agents;
  std::vector<CodeFlow*> flows;

  explicit World(int nodes = 1) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id);
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i));
      sandboxes.push_back(std::make_unique<Sandbox>(
          events, node, core::SandboxConfig{}));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      cpus.push_back(std::make_unique<sim::CpuScheduler>(events, 24, 3.4e9));
      agents.push_back(std::make_unique<agent::NodeAgent>(
          events, *sandboxes.back(), *cpus.back()));
      auto reg = sandboxes.back()->CtxRegister();
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandboxes.back(), reg.value(),
                         [&flow](StatusOr<CodeFlow*> f) {
                           if (f.ok()) flow = f.value();
                         });
      events.Run();
      EXPECT_NE(flow, nullptr);
      flows.push_back(flow);
    }
  }

  void Inject(CodeFlow& flow, const bpf::Program& prog, int hook) {
    bool done = false;
    cp->InjectExtension(flow, prog, hook, [&](StatusOr<core::InjectTrace> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      done = true;
    });
    events.Run();
    ASSERT_TRUE(done);
  }

  void InjectWasm(CodeFlow& flow, const wasm::FilterModule& module,
                  int hook) {
    bool done = false;
    cp->InjectWasmFilter(flow, module, hook,
                         [&](StatusOr<core::InjectTrace> r) {
                           ASSERT_TRUE(r.ok()) << r.status().ToString();
                           done = true;
                         });
    events.Run();
    ASSERT_TRUE(done);
  }
};

class CountingHost final : public wasm::WasmHost {
 public:
  StatusOr<std::uint64_t> CallHost(std::int32_t, std::uint64_t,
                                   std::uint64_t) override {
    ++calls;
    return 1ull;
  }
  int calls = 0;
};

bpf::Program ReturnN(std::uint64_t n) {
  bpf::Program prog;
  prog.name = "ret" + std::to_string(n);
  prog.insns =
      bpf::Assemble("r0 = " + std::to_string(n) + "\nexit\n").value();
  return prog;
}

TEST(Integration, EbpfAndWasmCoexistOnOneSandbox) {
  World world;
  world.Inject(*world.flows[0], ReturnN(5), 0);
  world.InjectWasm(*world.flows[0], wasm::GenerateFilter(100, 1), 1);

  Bytes packet(4, 0);
  EXPECT_EQ(world.sandboxes[0]->ExecuteHook(0, packet)->r0, 5u);
  CountingHost host;
  EXPECT_TRUE(world.sandboxes[0]->ExecuteWasmHook(1, host).ok());
  // Hook type confusion is rejected.
  EXPECT_FALSE(world.sandboxes[0]->ExecuteHook(1, packet).ok());
  EXPECT_FALSE(world.sandboxes[0]->ExecuteWasmHook(0, host).ok());
}

TEST(Integration, AgentAndRdxManageDifferentHooks) {
  World world;
  // Agent owns hook 0, RDX owns hook 1 — both on the same sandbox.
  bool agent_done = false;
  world.agents[0]->LoadExtension(ReturnN(1), 0,
                                 [&](StatusOr<agent::AgentTrace> r) {
                                   ASSERT_TRUE(r.ok());
                                   agent_done = true;
                                 });
  while (!agent_done && !world.events.Empty()) world.events.Step();
  world.Inject(*world.flows[0], ReturnN(2), 1);

  Bytes packet(4, 0);
  EXPECT_EQ(world.sandboxes[0]->ExecuteHook(0, packet)->r0, 1u);
  EXPECT_EQ(world.sandboxes[0]->ExecuteHook(1, packet)->r0, 2u);
}

TEST(Integration, DetachEmptiesHook) {
  World world;
  world.Inject(*world.flows[0], ReturnN(9), 0);
  Bytes packet(4, 0);
  EXPECT_EQ(world.sandboxes[0]->ExecuteHook(0, packet)->r0, 9u);

  bool detached = false;
  world.cp->Detach(*world.flows[0], 0, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    detached = true;
  });
  world.events.Run();
  ASSERT_TRUE(detached);
  // Empty hook falls back to accept-by-default.
  auto result = world.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->r0, 1u);
  EXPECT_GT(world.sandboxes[0]->stats().empty_hook_executions, 0u);
}

TEST(Integration, CtxTeardownRefcounts) {
  World world;
  world.Inject(*world.flows[0], ReturnN(3), 0);
  Sandbox& sandbox = *world.sandboxes[0];
  EXPECT_TRUE(sandbox.CtxTeardown(0).ok());
  EXPECT_EQ(sandbox.VisibleVersion(0), 0u);
  EXPECT_FALSE(sandbox.CtxTeardown(0).ok());  // already detached
}

TEST(Integration, EpochTracksCommits) {
  World world;
  const std::uint64_t epoch0 =
      world.sandboxes[0]->node().memory()
          .ReadU64(world.flows[0]->remote_view().cb_addr + core::kCbEpoch)
          .value();
  world.Inject(*world.flows[0], ReturnN(1), 0);
  world.Inject(*world.flows[0], ReturnN(2), 0);
  world.events.Run();
  const std::uint64_t epoch2 =
      world.sandboxes[0]->node().memory()
          .ReadU64(world.flows[0]->remote_view().cb_addr + core::kCbEpoch)
          .value();
  EXPECT_EQ(epoch2, epoch0 + 2);
  EXPECT_EQ(world.flows[0]->epoch(), 2u);
}

TEST(Integration, RollbackChainRestoresEachVersion) {
  World world;
  CodeFlow& flow = *world.flows[0];
  for (std::uint64_t v = 1; v <= 4; ++v) {
    world.Inject(flow, ReturnN(v * 10), 0);
  }
  Bytes packet(4, 0);
  EXPECT_EQ(world.sandboxes[0]->ExecuteHook(0, packet)->r0, 40u);
  for (std::uint64_t expect : {30u, 20u, 10u}) {
    bool done = false;
    world.cp->Rollback(flow, 0, [&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    world.events.Run();
    ASSERT_TRUE(done);
    EXPECT_EQ(world.sandboxes[0]->ExecuteHook(0, packet)->r0, expect);
  }
  // Nothing left to roll back to.
  bool failed = false;
  world.cp->Rollback(flow, 0, [&](Status s) {
    EXPECT_FALSE(s.ok());
    failed = true;
  });
  world.events.Run();
  EXPECT_TRUE(failed);
}

TEST(Integration, BroadcastWithFailingNodeReportsError) {
  World world(3);
  // Sabotage node 1: exhaust its scratchpad so PrepareImage fails there.
  CodeFlow& victim = *world.flows[1];
  auto& mem = world.sandboxes[1]->node().memory();
  const core::ControlBlockView& cb = victim.remote_view();
  ASSERT_TRUE(mem.WriteU64(cb.cb_addr + core::kCbScratchBrk,
                           cb.scratch_addr + cb.scratch_size)
                  .ok());

  core::CollectiveCodeFlow group(*world.cp, world.flows);
  bool done = false;
  group.Broadcast(ReturnN(1), 0, nullptr,
                  [&](StatusOr<core::BroadcastResult> r) {
                    EXPECT_FALSE(r.ok());
                    done = true;
                  });
  world.events.Run();
  EXPECT_TRUE(done);
}

TEST(Integration, SharedCompileCacheAcrossNodes) {
  World world(4);
  bpf::Program prog = ReturnN(6);
  for (int i = 0; i < 4; ++i) {
    world.Inject(*world.flows[i], prog, 0);
  }
  // One miss (first node), three hits.
  EXPECT_GE(world.cp->compile_cache_hits(), 3u);
  Bytes packet(4, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(world.sandboxes[i]->ExecuteHook(0, packet)->r0, 6u);
  }
}

TEST(Integration, WasmFilterCountsHostCallsThroughSandbox) {
  World world;
  wasm::FilterModule filter;
  filter.name = "caller";
  filter.num_locals = 1;
  filter.imports = {{"counter_incr"}};
  filter.code = {
      {wasm::WOp::kConst, 1},  {wasm::WOp::kConst, 0},
      {wasm::WOp::kCallHost, 0},
      {wasm::WOp::kReturn, 0},
  };
  world.InjectWasm(*world.flows[0], filter, 2);
  CountingHost host;
  for (int i = 0; i < 7; ++i) {
    auto result = world.sandboxes[0]->ExecuteWasmHook(2, host);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(host.calls, 7);
}

TEST(Integration, MigrationEndToEnd) {
  World world(2);
  bpf::Program prog;
  prog.name = "stateful";
  prog.maps.push_back({"state", bpf::MapType::kArray, 4, 8, 1});
  prog.insns = bpf::Assemble(R"(
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
    r0 = r7
    exit
  out:
    r0 = 0
    exit
  )").value();

  world.Inject(*world.flows[0], prog, 0);
  Bytes packet(4, 0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(world.sandboxes[0]->ExecuteHook(0, packet).ok());
  }

  // Migrate: binary via cached inject, state via CopyXState.
  world.Inject(*world.flows[1], prog, 0);
  bool copied = false;
  world.cp->CopyXState(*world.flows[0], world.flows[0]->xstates().at("state"),
                       *world.flows[1],
                       world.flows[1]->xstates().at("state"),
                       [&](Status s) {
                         ASSERT_TRUE(s.ok());
                         copied = true;
                       });
  world.events.Run();
  ASSERT_TRUE(copied);
  world.sandboxes[1]->RefreshXState();
  // The replica continues at 11.
  EXPECT_EQ(world.sandboxes[1]->ExecuteHook(0, packet)->r0, 11u);
}

TEST(Integration, ManyNodesBroadcastUnderLoadKeepsConsistency) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 256u << 20).id();
  ControlPlane cp(events, fabric, cp_id);

  mesh::MeshConfig config;
  config.app = mesh::AppSpec::Generate("big", 16, 3);
  config.request_rate_per_s = 3000;
  mesh::MeshSim mesh(events, fabric, config);
  std::vector<CodeFlow*> flows;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    auto reg = mesh.sandbox(i).CtxRegister();
    CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(mesh.sandbox(i), reg.value(),
                      [&flow](StatusOr<CodeFlow*> f) {
                        if (f.ok()) flow = f.value();
                      });
    events.Run();
    flows.push_back(flow);
  }
  core::CollectiveCodeFlow group(cp, flows);
  wasm::FilterModule v1 = wasm::GenerateFilter(200, 1);
  std::vector<const wasm::FilterModule*> v1s(mesh.size(), &v1);
  bool seeded = false;
  group.BroadcastWasm(v1s, 0, nullptr, [&](StatusOr<core::BroadcastResult> r) {
    ASSERT_TRUE(r.ok());
    seeded = true;
  });
  events.Run();
  ASSERT_TRUE(seeded);

  mesh.StartWorkload();
  events.RunUntil(events.Now() + sim::Millis(100));
  (void)mesh.TakeMetrics();

  // Three consecutive BBU updates under live traffic: zero mixed.
  for (std::uint64_t round = 2; round <= 4; ++round) {
    wasm::FilterModule vn = wasm::GenerateFilter(200, round);
    std::vector<const wasm::FilterModule*> vns(mesh.size(), &vn);
    bool done = false;
    group.BroadcastWasm(vns, 0, &mesh,
                        [&](StatusOr<core::BroadcastResult> r) {
                          ASSERT_TRUE(r.ok()) << r.status().ToString();
                          done = true;
                        });
    while (!done && !events.Empty()) events.Step();
    events.RunUntil(events.Now() + sim::Millis(50));
  }
  mesh.StopWorkload();
  mesh::MeshMetrics metrics = mesh.TakeMetrics();
  EXPECT_EQ(metrics.mixed_version, 0u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GT(metrics.completed, 100u);
}

}  // namespace
}  // namespace rdx
