// Telemetry subsystem tests: trace-ring wire contract (format, emit,
// wraparound, producer-side drop accounting), the collector's one-sided
// harvest (merge, overrun loss accounting, torn-slot skip, abort-on-
// failed-READ leaves the ring untouched), harvest through the control
// plane under injected READ faults, the chrome://tracing exporter
// (syntactic JSON validity + monotonic timestamps), the metrics
// registry, and the agent pipeline's span migration.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "bpf/assembler.h"
#include "core/codeflow.h"
#include "core/layout.h"
#include "fault/injector.h"
#include "telemetry/collector.h"
#include "telemetry/metrics.h"
#include "telemetry/ring.h"
#include "telemetry/trace_export.h"

namespace rdx {
namespace {

using core::CodeFlow;
using core::ControlPlane;
using core::Sandbox;
using core::SandboxConfig;
using telemetry::Collector;
using telemetry::MetricsRegistry;
using telemetry::RingEventKind;
using telemetry::RingOps;
using telemetry::Tracer;
using telemetry::TraceRingWriter;

// ---- ring producer: wire contract ----

TEST(TraceRing, FormatAndEmitFollowWireContract) {
  rdma::HostMemory mem(1 << 20);
  const std::uint64_t addr = mem.Allocate(TraceRingWriter::BytesFor(8)).value();
  ASSERT_TRUE(TraceRingWriter::Format(mem, addr, 8).ok());
  EXPECT_EQ(mem.ReadU64(addr + core::kTrMagic).value(), core::kTraceRingMagic);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrCapacity).value(), 8u);

  TraceRingWriter writer(mem, addr, 8);
  writer.Emit(RingEventKind::kHookExecEbpf, /*tid=*/3, /*code=*/0,
              /*ts=*/1234, /*arg=*/77);
  EXPECT_EQ(writer.emitted(), 1u);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrHead).value(), 1u);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrTail).value(), 0u);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrDropped).value(), 0u);

  const std::uint64_t slot0 = addr + core::kTraceRingHeaderBytes;
  EXPECT_EQ(mem.ReadU64(slot0 + core::kTsSeq).value(), 0u);
  EXPECT_EQ(mem.ReadU64(slot0 + core::kTsTimestamp).value(), 1234u);
  EXPECT_EQ(mem.ReadU64(slot0 + core::kTsArg).value(), 77u);
  RingEventKind kind;
  std::uint8_t tid;
  std::uint16_t code;
  telemetry::UnpackRingMeta(mem.ReadU64(slot0 + core::kTsMeta).value(), kind,
                            tid, code);
  EXPECT_EQ(kind, RingEventKind::kHookExecEbpf);
  EXPECT_EQ(tid, 3u);
  EXPECT_EQ(code, 0u);
}

TEST(TraceRing, RejectsNonPowerOfTwoCapacity) {
  rdma::HostMemory mem(1 << 20);
  const std::uint64_t addr = mem.Allocate(4096).value();
  EXPECT_FALSE(TraceRingWriter::Format(mem, addr, 12).ok());
  EXPECT_FALSE(TraceRingWriter::Format(mem, addr, 0).ok());
}

TEST(TraceRing, OverflowOverwritesOldestAndCountsDrops) {
  rdma::HostMemory mem(1 << 20);
  const std::uint64_t addr = mem.Allocate(TraceRingWriter::BytesFor(8)).value();
  ASSERT_TRUE(TraceRingWriter::Format(mem, addr, 8).ok());
  TraceRingWriter writer(mem, addr, 8);
  for (int i = 0; i < 20; ++i) {
    writer.Emit(RingEventKind::kHookExecEbpf, 0, 0, i, i);
  }
  // Wait-free overwrite: all 20 landed, the 12 beyond capacity each
  // clobbered the oldest unharvested slot and were counted.
  EXPECT_EQ(writer.emitted(), 20u);
  EXPECT_EQ(writer.dropped(), 12u);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrHead).value(), 20u);
  EXPECT_EQ(mem.ReadU64(addr + core::kTrDropped).value(), 12u);
  // The surviving window is the last `capacity` events: slot (19 & 7)
  // holds seq 19.
  const std::uint64_t newest =
      addr + core::kTraceRingHeaderBytes + (19 & 7) * core::kTraceSlotBytes;
  EXPECT_EQ(mem.ReadU64(newest + core::kTsSeq).value(), 19u);
}

// ---- collector: harvest semantics over a local ring ----

// One-sided verb surface backed directly by a HostMemory, standing in for
// the RDMA path so harvest semantics are testable in isolation.
RingOps DirectOps(rdma::HostMemory& mem) {
  RingOps ops;
  ops.read = [&mem](std::uint64_t addr, std::uint32_t len,
                    std::function<void(StatusOr<Bytes>)> done) {
    Bytes out(len);
    Status s = mem.Read(addr, MutableByteSpan(out.data(), out.size()));
    if (!s.ok()) {
      done(s);
    } else {
      done(std::move(out));
    }
  };
  ops.fetch_add = [&mem](std::uint64_t addr, std::uint64_t delta,
                         std::function<void(StatusOr<std::uint64_t>)> done) {
    auto prior = mem.ReadU64(addr);
    if (!prior.ok()) {
      done(prior.status());
      return;
    }
    ASSERT_TRUE(mem.WriteU64(addr, prior.value() + delta).ok());
    done(prior.value());
  };
  return ops;
}

struct LocalRing {
  sim::EventQueue events;
  rdma::HostMemory mem{1 << 20};
  std::uint64_t addr = 0;
  Tracer tracer{events};
  Collector collector{tracer};

  explicit LocalRing(std::uint64_t capacity) {
    addr = mem.Allocate(TraceRingWriter::BytesFor(capacity)).value();
    EXPECT_TRUE(TraceRingWriter::Format(mem, addr, capacity).ok());
  }

  Status Harvest(RingOps ops = {}) {
    if (!ops.read) ops = DirectOps(mem);
    Status result = InvalidArgument("never completed");
    collector.Harvest(ops, addr, /*pid=*/1,
                      [&result](Status s) { result = s; });
    return result;
  }

  std::uint64_t Tail() { return mem.ReadU64(addr + core::kTrTail).value(); }
};

TEST(Collector, HarvestMergesEventsAndAdvancesTail) {
  LocalRing ring(16);
  TraceRingWriter writer(ring.mem, ring.addr, 16);
  for (int i = 0; i < 5; ++i) {
    writer.Emit(RingEventKind::kHookExecEbpf, /*tid=*/2, 0,
                /*ts=*/100 * (i + 1), /*arg=*/50);
  }
  ASSERT_TRUE(ring.Harvest().ok());
  EXPECT_EQ(ring.collector.stats().harvests, 1u);
  EXPECT_EQ(ring.collector.stats().events, 5u);
  EXPECT_EQ(ring.collector.stats().overwritten, 0u);
  EXPECT_EQ(ring.Tail(), 5u);

  // Hook executions become 'X' spans whose length comes from the cost
  // model, in emit order, on the hook's tid lane.
  ASSERT_EQ(ring.tracer.events().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& ev = ring.tracer.events()[i];
    EXPECT_EQ(ev.name, "hook_exec:ebpf");
    EXPECT_EQ(ev.ph, 'X');
    EXPECT_EQ(ev.pid, 1u);
    EXPECT_EQ(ev.tid, 2u);
    EXPECT_EQ(ev.ts, static_cast<sim::SimTime>(100 * (i + 1)));
    EXPECT_GT(ev.dur, 0);
  }

  // A second pass over the drained ring merges nothing.
  ASSERT_TRUE(ring.Harvest().ok());
  EXPECT_EQ(ring.collector.stats().harvests, 2u);
  EXPECT_EQ(ring.collector.stats().events, 5u);
  EXPECT_EQ(ring.tracer.events().size(), 5u);
}

TEST(Collector, ProducerOverrunIsAccountedAsLossNotCorruption) {
  LocalRing ring(8);
  TraceRingWriter writer(ring.mem, ring.addr, 8);
  for (int i = 0; i < 20; ++i) {
    writer.Emit(RingEventKind::kHookExecEbpf, 0, 0, /*ts=*/i + 1, /*arg=*/1);
  }
  ASSERT_TRUE(ring.Harvest().ok());
  // Only the newest `capacity` slots were recoverable; the 12 lost ones
  // are surfaced, not silently skipped.
  EXPECT_EQ(ring.collector.stats().events, 8u);
  EXPECT_EQ(ring.collector.stats().overwritten, 12u);
  EXPECT_EQ(ring.Tail(), 20u);

  bool saw_overwrite_instant = false;
  for (const auto& ev : ring.tracer.events()) {
    if (ev.name == "ring_overwrite") {
      saw_overwrite_instant = true;
      EXPECT_EQ(ev.ph, 'i');
      EXPECT_NE(ev.args.find("\"lost\": 12"), std::string::npos) << ev.args;
    }
  }
  EXPECT_TRUE(saw_overwrite_instant);
}

TEST(Collector, TornSlotIsSkippedAndCountedNeverMerged) {
  LocalRing ring(16);
  TraceRingWriter writer(ring.mem, ring.addr, 16);
  for (int i = 0; i < 4; ++i) {
    writer.Emit(RingEventKind::kHookExecEbpf, 0, 0, /*ts=*/i + 1, /*arg=*/1);
  }
  // Scribble slot 2's seq word: the collector must treat it as
  // mid-overwrite (its seq no longer matches the expected absolute
  // index) and drop it without merging garbage.
  const std::uint64_t slot2 =
      ring.addr + core::kTraceRingHeaderBytes + 2 * core::kTraceSlotBytes;
  ASSERT_TRUE(ring.mem.WriteU64(slot2 + core::kTsSeq, 9999).ok());

  ASSERT_TRUE(ring.Harvest().ok());
  EXPECT_EQ(ring.collector.stats().events, 3u);
  EXPECT_EQ(ring.collector.stats().torn, 1u);
  EXPECT_EQ(ring.Tail(), 4u);
  for (const auto& ev : ring.tracer.events()) {
    EXPECT_NE(ev.ts, 3) << "torn slot leaked into the timeline";
  }
}

TEST(Collector, FailedReadAbortsPassAndLeavesRingUntouched) {
  LocalRing ring(16);
  TraceRingWriter writer(ring.mem, ring.addr, 16);
  for (int i = 0; i < 6; ++i) {
    writer.Emit(RingEventKind::kHookExecEbpf, 0, 0, /*ts=*/i + 1, /*arg=*/1);
  }

  // Fail the second READ (the slot chunk), after the header succeeded:
  // the pass must abort without advancing the tail or appending events.
  int reads = 0;
  RingOps flaky = DirectOps(ring.mem);
  auto real_read = flaky.read;
  flaky.read = [&reads, real_read](std::uint64_t addr, std::uint32_t len,
                                   std::function<void(StatusOr<Bytes>)> done) {
    if (++reads == 2) {
      done(Unavailable("RETRY_EXC_ERR"));
      return;
    }
    real_read(addr, len, std::move(done));
  };
  EXPECT_FALSE(ring.Harvest(flaky).ok());
  EXPECT_EQ(ring.collector.stats().failed_reads, 1u);
  EXPECT_EQ(ring.collector.stats().events, 0u);
  EXPECT_EQ(ring.Tail(), 0u);
  EXPECT_TRUE(ring.tracer.events().empty());

  // The next (healthy) pass re-reads the same slots: nothing was lost or
  // duplicated by the failure.
  ASSERT_TRUE(ring.Harvest().ok());
  EXPECT_EQ(ring.collector.stats().events, 6u);
  EXPECT_EQ(ring.Tail(), 6u);
}

// ---- end-to-end: control plane + sandbox + fault injector ----

bpf::Program SumProgram() {
  std::string src = "r0 = 0\n";
  for (int i = 1; i <= 20; ++i) src += "r0 += " + std::to_string(i) + "\n";
  src += "exit\n";
  bpf::Program prog;
  prog.name = "sum";
  auto insns = bpf::Assemble(src);
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

struct TelemetryRig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<Sandbox> sandbox;
  CodeFlow* flow = nullptr;
  Tracer tracer{events};

  TelemetryRig() {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id);
    cp->SetTracer(&tracer);
    injector = std::make_unique<fault::FaultInjector>(events, fabric);
    injector->SetTracer(&tracer);
    SandboxConfig config;
    config.trace_ring_slots = 64;
    rdma::Node& node = fabric.AddNode("n0");
    sandbox = std::make_unique<Sandbox>(events, node, config);
    EXPECT_TRUE(sandbox->CtxInit().ok());
    auto reg = sandbox->CtxRegister();
    EXPECT_TRUE(reg.ok());
    cp->CreateCodeFlow(*sandbox, reg.value(), [this](StatusOr<CodeFlow*> f) {
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      flow = f.value();
    });
    events.Run();
    EXPECT_NE(flow, nullptr);
  }

  void Deploy(int hook) {
    bool done = false;
    cp->InjectExtension(*flow, SumProgram(), hook,
                        [&](StatusOr<core::InjectTrace> r) {
                          ASSERT_TRUE(r.ok()) << r.status().ToString();
                          done = true;
                        });
    events.Run();
    ASSERT_TRUE(done);
    sandbox->RefreshHookNow(hook);
  }

  void RunHook(int hook, int n) {
    Bytes packet(4, 0);
    for (int i = 0; i < n; ++i) {
      events.ScheduleAfter(sim::Micros(1), [] {});
      events.Run();
      ASSERT_TRUE(sandbox->ExecuteHook(hook, packet).ok());
    }
  }

  Status Harvest(Collector& collector) {
    Status result = InvalidArgument("never completed");
    cp->HarvestTrace(*flow, collector, [&result](Status s) { result = s; });
    events.Run();
    return result;
  }
};

// Minimal JSON syntax checker (objects, arrays, strings, numbers,
// true/false/null) — enough to prove the exporter's output parses.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // {
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // [
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      pos_ += s_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TelemetryE2E, OneTimelineCoversSpansRingEventsFaultsAndCounters) {
  TelemetryRig rig;
  rig.tracer.SetProcessName(static_cast<std::uint32_t>(rig.cp->self()),
                            "control-plane");
  rig.Deploy(0);
  rig.RunHook(0, 5);

  Collector collector(rig.tracer);
  ASSERT_TRUE(rig.Harvest(collector).ok());
  EXPECT_GE(collector.stats().events, 5u);

  // A fault instant lands on the same timeline (armed after the harvest
  // so the QP it kills is no longer needed).
  char plan[96];
  std::snprintf(plan, sizeof(plan), "qp_error node=%u at=%lld\n",
                rig.sandbox->node().id(),
                static_cast<long long>(rig.events.Now() + 1000));
  auto parsed = fault::ParseFaultPlan(plan);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(rig.injector->Arm(parsed.value()).ok());
  rig.events.Run();

  telemetry::EmitFabricCounterEvents(rig.tracer, rig.fabric);

  // Every source is present in the merged timeline.
  bool saw_inject = false, saw_phase = false, saw_exec = false;
  bool saw_fault = false, saw_counter = false;
  for (const auto& ev : rig.tracer.events()) {
    saw_inject |= ev.name == "inject";
    saw_phase |= ev.name == "inject:transfer";
    saw_exec |= ev.name == "hook_exec:ebpf";
    saw_fault |= ev.name == "fault:qp_error";
    saw_counter |= ev.ph == 'C';
  }
  EXPECT_TRUE(saw_inject);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_exec);
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_counter);

  // The export is syntactically valid JSON with monotonically
  // non-decreasing timestamps (the exporter sorts, so this holds for
  // every tid lane too).
  const std::string json = telemetry::ToChromeTraceJson(rig.tracer);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  double last_ts = -1.0;
  std::size_t ts_count = 0;
  for (std::size_t at = json.find("\"ts\": "); at != std::string::npos;
       at = json.find("\"ts\": ", at + 6)) {
    const double ts = std::strtod(json.c_str() + at + 6, nullptr);
    EXPECT_GE(ts, last_ts) << "timestamps regress at offset " << at;
    last_ts = ts;
    ++ts_count;
  }
  EXPECT_EQ(ts_count, rig.tracer.events().size());
}

TEST(TelemetryE2E, HarvestUnderReadFaultsAccountsLossThenRecovers) {
  TelemetryRig rig;
  rig.Deploy(0);
  rig.RunHook(0, 8);
  const std::uint64_t emitted = rig.sandbox->trace_writer()->emitted();
  ASSERT_GE(emitted, 8u);

  // Drop every WR for a window covering the harvest: the header READ
  // fails, the pass aborts, the ring is untouched.
  char plan[128];
  std::snprintf(plan, sizeof(plan), "drop node=%u at=%lld for=50us p=1\n",
                rig.sandbox->node().id(),
                static_cast<long long>(rig.events.Now()));
  auto parsed = fault::ParseFaultPlan(plan);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(rig.injector->Arm(parsed.value()).ok());

  Collector collector(rig.tracer);
  EXPECT_FALSE(rig.Harvest(collector).ok());
  EXPECT_GE(collector.stats().failed_reads, 1u);
  EXPECT_EQ(collector.stats().events, 0u);

  // Heal: wait out the window, reconnect the errored QP, harvest again.
  // Every emitted event arrives exactly once — the failed pass neither
  // lost nor duplicated anything.
  rig.events.ScheduleAfter(sim::Micros(100), [] {});
  rig.events.Run();
  bool reconnected = false;
  rig.cp->ReconnectCodeFlow(*rig.flow, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    reconnected = true;
  });
  rig.events.Run();
  ASSERT_TRUE(reconnected);
  ASSERT_TRUE(rig.Harvest(collector).ok());
  EXPECT_EQ(collector.stats().events, emitted);
  EXPECT_EQ(collector.stats().overwritten, 0u);
  EXPECT_EQ(collector.stats().torn, 0u);

  std::size_t exec_events = 0;
  for (const auto& ev : rig.tracer.events()) {
    exec_events += ev.name == "hook_exec:ebpf";
  }
  EXPECT_EQ(exec_events, 8u);
}

TEST(TelemetryE2E, TelemetryOffPublishesNoRingAndHarvestRefuses) {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
  ControlPlane cp(events, fabric, cp_id);
  SandboxConfig config;
  config.telemetry = false;
  rdma::Node& node = fabric.AddNode("n0");
  Sandbox sandbox(events, node, config);
  ASSERT_TRUE(sandbox.CtxInit().ok());
  EXPECT_EQ(sandbox.trace_writer(), nullptr);

  CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, sandbox.CtxRegister().value(),
                    [&flow](StatusOr<CodeFlow*> f) {
                      ASSERT_TRUE(f.ok());
                      flow = f.value();
                    });
  events.Run();
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->remote_view().trace_addr, 0u);

  Tracer tracer(events);
  Collector collector(tracer);
  Status result = OkStatus();
  cp.HarvestTrace(*flow, collector, [&result](Status s) { result = s; });
  events.Run();
  EXPECT_EQ(result.code(), StatusCode::kFailedPrecondition);
}

// ---- metrics registry ----

TEST(Metrics, RegistrySnapshotIsValidJsonWithStableKeys) {
  MetricsRegistry reg;
  reg.Count("rdma.ops", 7);
  reg.SetGauge("cache.hit_rate", 0.5);
  reg.Hist("latency").Add(10);
  reg.Hist("latency").Add(20);
  const std::string json = reg.SnapshotJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"rdma.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_EQ(reg.counter("rdma.ops"), 7u);
  EXPECT_EQ(reg.counter("missing"), 0u);
}

TEST(Metrics, SandboxControlPlaneAndCollectorExport) {
  TelemetryRig rig;
  rig.Deploy(0);
  rig.RunHook(0, 3);
  Collector collector(rig.tracer);
  ASSERT_TRUE(rig.Harvest(collector).ok());

  MetricsRegistry reg;
  telemetry::CaptureFabricMetrics(reg, rig.fabric);
  rig.sandbox->ExportMetrics(reg, "n0");
  rig.cp->ExportMetrics(reg);
  collector.ExportMetrics(reg);

  EXPECT_EQ(reg.counter("n0.executions"), 3u);
  EXPECT_GE(reg.counter("n0.trace.emitted"), 3u);
  EXPECT_EQ(reg.counter("cp.codeflows"), 1u);
  EXPECT_GE(reg.counter("telemetry.harvests"), 1u);
  EXPECT_GE(reg.counter("telemetry.events"), 3u);
  EXPECT_TRUE(JsonChecker(reg.SnapshotJson()).Valid());
}

TEST(Metrics, SmallOpFastPathCountersExported) {
  TelemetryRig rig;
  rig.Deploy(0);
  rig.RunHook(0, 3);

  MetricsRegistry reg;
  telemetry::CaptureFabricMetrics(reg, rig.fabric);
  const std::string json = reg.SnapshotJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The fast-path counters are always present (zero or not), so
  // dashboards can rely on the keys existing.
  for (const char* key :
       {"rdma.qp.inline_wrs", "rdma.qp.unsignaled", "rdma.cq.coalesced",
        "rdma.mtt.hits", "rdma.mtt.misses", "rdma.mtt.invalidations"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing counter " << key;
  }
  // A deploy + hook executions drive control-plane WRITEs through the
  // inline fast path and warm the MTT.
  EXPECT_GT(reg.counter("rdma.qp.inline_wrs"), 0u);
  EXPECT_GT(reg.counter("rdma.mtt.hits"), 0u);
  EXPECT_GT(reg.counter("rdma.mtt.misses"), 0u);
}

}  // namespace
}  // namespace rdx
