// Tests for the simulated RDMA fabric: registration/permission checks,
// one-sided READ/WRITE, two-sided SEND/RECV, atomics, RC ordering, and
// error/flush semantics.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "rdma/fabric.h"

namespace rdx::rdma {
namespace {

struct TwoNodes {
  sim::EventQueue events;
  Fabric fabric{events};
  Node* a;
  Node* b;
  CompletionQueue* cq_a;
  CompletionQueue* cq_b;
  QueuePair* qp_a;
  QueuePair* qp_b;

  TwoNodes() {
    a = &fabric.AddNode("a", 8u << 20);
    b = &fabric.AddNode("b", 8u << 20);
    cq_a = &fabric.CreateCq(a->id());
    cq_b = &fabric.CreateCq(b->id());
    qp_a = &fabric.CreateQp(a->id(), *cq_a, *cq_a);
    qp_b = &fabric.CreateQp(b->id(), *cq_b, *cq_b);
    EXPECT_TRUE(fabric.Connect(*qp_a, *qp_b).ok());
  }

  // Allocates + registers a buffer on a node; returns (addr, mr).
  std::pair<std::uint64_t, MemoryRegion> Buffer(Node& node,
                                                std::uint64_t size,
                                                std::uint32_t access) {
    const std::uint64_t addr = node.memory().Allocate(size, 8).value();
    const MemoryRegion mr = node.memory().Register(addr, size, access).value();
    return {addr, mr};
  }
};

constexpr std::uint32_t kAllAccess = kAccessLocalWrite | kAccessRemoteRead |
                                     kAccessRemoteWrite | kAccessRemoteAtomic;

// ---- HostMemory ----

TEST(HostMemory, AllocateAligns) {
  HostMemory mem(1 << 20);
  const std::uint64_t a = mem.Allocate(3, 64).value();
  const std::uint64_t b = mem.Allocate(8, 64).value();
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 3);
}

TEST(HostMemory, AllocateRejectsBadArgs) {
  HostMemory mem(1 << 20);
  EXPECT_FALSE(mem.Allocate(0).ok());
  EXPECT_FALSE(mem.Allocate(8, 3).ok());  // non-power-of-two alignment
}

TEST(HostMemory, AllocateExhausts) {
  HostMemory mem(4096);
  EXPECT_TRUE(mem.Allocate(2048).ok());
  EXPECT_FALSE(mem.Allocate(4096).ok());
}

TEST(HostMemory, CpuReadWriteBounds) {
  HostMemory mem(4096, /*base=*/0x1000);
  Bytes data = {1, 2, 3};
  EXPECT_TRUE(mem.Write(0x1000, data).ok());
  EXPECT_FALSE(mem.Write(0xfff, data).ok());           // below base
  EXPECT_FALSE(mem.Write(0x1000 + 4095, data).ok());   // crosses end
  Bytes out(3);
  EXPECT_TRUE(mem.Read(0x1000, out).ok());
  EXPECT_EQ(out, data);
}

TEST(HostMemory, RegistrationBoundsChecked) {
  HostMemory mem(4096, 0x1000);
  EXPECT_TRUE(mem.Register(0x1000, 4096, kAccessRemoteRead).ok());
  EXPECT_FALSE(mem.Register(0x1000, 4097, kAccessRemoteRead).ok());
  EXPECT_FALSE(mem.Register(0x900, 16, kAccessRemoteRead).ok());
  EXPECT_FALSE(mem.Register(0x1000, 0, kAccessRemoteRead).ok());
}

TEST(HostMemory, DeregisterInvalidatesKeys) {
  HostMemory mem(4096, 0x1000);
  const MemoryRegion mr =
      mem.Register(0x1000, 256, kAccessRemoteWrite).value();
  EXPECT_TRUE(mem.Deregister(mr.lkey).ok());
  Bytes data(8);
  EXPECT_FALSE(
      mem.DmaWrite(mr.rkey, /*remote=*/true, 0x1000, data).ok());
  EXPECT_FALSE(mem.Deregister(mr.lkey).ok());  // double dereg
}

TEST(HostMemory, DmaPermissionEnforcement) {
  HostMemory mem(4096, 0x1000);
  const MemoryRegion read_only =
      mem.Register(0x1000, 256, kAccessRemoteRead).value();
  Bytes data(8);
  EXPECT_TRUE(
      mem.DmaRead(read_only.rkey, true, 0x1000, data).ok());
  EXPECT_FALSE(
      mem.DmaWrite(read_only.rkey, true, 0x1000, data).ok());
  EXPECT_FALSE(
      mem.DmaCompareSwap(read_only.rkey, 0x1000, 0, 1).ok());
}

TEST(HostMemory, DmaRegionBounds) {
  HostMemory mem(8192, 0x1000);
  (void)mem.Allocate(8192);
  const MemoryRegion mr =
      mem.Register(0x1100, 256, kAccessRemoteRead).value();
  Bytes out(16);
  EXPECT_TRUE(mem.DmaRead(mr.rkey, true, 0x1100, out).ok());
  EXPECT_TRUE(mem.DmaRead(mr.rkey, true, 0x11f0, out).ok());  // last 16
  EXPECT_FALSE(mem.DmaRead(mr.rkey, true, 0x10ff, out).ok());  // before
  EXPECT_FALSE(mem.DmaRead(mr.rkey, true, 0x11f1, out).ok());  // past end
}

TEST(HostMemory, AtomicsRequireAlignment) {
  HostMemory mem(4096, 0x1000);
  const MemoryRegion mr =
      mem.Register(0x1000, 256, kAccessRemoteAtomic).value();
  EXPECT_TRUE(mem.DmaCompareSwap(mr.rkey, 0x1008, 0, 1).ok());
  EXPECT_FALSE(mem.DmaCompareSwap(mr.rkey, 0x100c, 0, 1).ok());
}

TEST(HostMemory, CasSemantics) {
  HostMemory mem(4096, 0x1000);
  const MemoryRegion mr =
      mem.Register(0x1000, 64, kAccessRemoteAtomic).value();
  ASSERT_TRUE(mem.WriteU64(0x1000, 5).ok());
  // Mismatch: no swap, returns original.
  EXPECT_EQ(mem.DmaCompareSwap(mr.rkey, 0x1000, 4, 9).value(), 5u);
  EXPECT_EQ(mem.ReadU64(0x1000).value(), 5u);
  // Match: swap.
  EXPECT_EQ(mem.DmaCompareSwap(mr.rkey, 0x1000, 5, 9).value(), 5u);
  EXPECT_EQ(mem.ReadU64(0x1000).value(), 9u);
}

TEST(HostMemory, FetchAddSemantics) {
  HostMemory mem(4096, 0x1000);
  const MemoryRegion mr =
      mem.Register(0x1000, 64, kAccessRemoteAtomic).value();
  ASSERT_TRUE(mem.WriteU64(0x1000, 100).ok());
  EXPECT_EQ(mem.DmaFetchAdd(mr.rkey, 0x1000, 7).value(), 100u);
  EXPECT_EQ(mem.ReadU64(0x1000).value(), 107u);
}

// ---- Fabric one-sided ops ----

TEST(Fabric, WriteDeliversPayload) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 256, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
  Bytes payload = {9, 8, 7, 6};
  ASSERT_TRUE(net.a->memory().Write(src, payload).ok());

  SendWr wr;
  wr.wr_id = 42;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 4, src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();

  Bytes landed(4);
  ASSERT_TRUE(net.b->memory().Read(dst, landed).ok());
  EXPECT_EQ(landed, payload);
  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 42u);
  EXPECT_EQ(wcs[0].status, WcStatus::kSuccess);
  EXPECT_EQ(wcs[0].byte_len, 4u);
  EXPECT_GT(wcs[0].completed_at, 0);
}

TEST(Fabric, ReadFetchesRemote) {
  TwoNodes net;
  auto [dst, dst_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [src, src_mr] = net.Buffer(*net.b, 64, kAllAccess);
  ASSERT_TRUE(net.b->memory().WriteU64(src, 0xfeedfaceull).ok());

  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.local = {dst, 8, dst_mr.lkey};
  wr.remote_addr = src;
  wr.rkey = src_mr.rkey;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.a->memory().ReadU64(dst).value(), 0xfeedfaceull);
  EXPECT_EQ(net.cq_a->Poll()[0].status, WcStatus::kSuccess);
}

TEST(Fabric, WriteSnapshotsPayloadAtPostTime) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  ASSERT_TRUE(net.a->memory().WriteU64(src, 111).ok());
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 8, src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  // Scribble after post: the in-flight payload must not change.
  ASSERT_TRUE(net.a->memory().WriteU64(src, 222).ok());
  net.events.Run();
  EXPECT_EQ(net.b->memory().ReadU64(dst).value(), 111u);
}

TEST(Fabric, CompareSwapReturnsOriginal) {
  TwoNodes net;
  auto [landing, landing_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [target, target_mr] = net.Buffer(*net.b, 64, kAllAccess);
  ASSERT_TRUE(net.b->memory().WriteU64(target, 10).ok());

  SendWr wr;
  wr.opcode = Opcode::kCompareSwap;
  wr.local = {landing, 8, landing_mr.lkey};
  wr.remote_addr = target;
  wr.rkey = target_mr.rkey;
  wr.compare_add = 10;
  wr.swap = 99;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.b->memory().ReadU64(target).value(), 99u);
  EXPECT_EQ(net.a->memory().ReadU64(landing).value(), 10u);
  auto wc = net.cq_a->Poll()[0];
  EXPECT_EQ(wc.atomic_original, 10u);
}

TEST(Fabric, FetchAddAccumulatesAcrossOps) {
  TwoNodes net;
  auto [landing, landing_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [target, target_mr] = net.Buffer(*net.b, 64, kAllAccess);
  for (int i = 0; i < 5; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kFetchAdd;
    wr.local = {landing, 8, landing_mr.lkey};
    wr.remote_addr = target;
    wr.rkey = target_mr.rkey;
    wr.compare_add = 3;
    ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  }
  net.events.Run();
  EXPECT_EQ(net.b->memory().ReadU64(target).value(), 15u);
}

TEST(Fabric, SendRecvDeliversToPostedBuffer) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  ASSERT_TRUE(net.a->memory().WriteU64(src, 0xabcd).ok());
  ASSERT_TRUE(net.qp_b->PostRecv({7, {dst, 64, dst_mr.lkey}}).ok());

  SendWr wr;
  wr.wr_id = 3;
  wr.opcode = Opcode::kSend;
  wr.local = {src, 8, src_mr.lkey};
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();

  EXPECT_EQ(net.b->memory().ReadU64(dst).value(), 0xabcdu);
  auto recv_wcs = net.cq_b->Poll();
  ASSERT_EQ(recv_wcs.size(), 1u);
  EXPECT_EQ(recv_wcs[0].wr_id, 7u);
  EXPECT_EQ(recv_wcs[0].byte_len, 8u);
}

TEST(Fabric, SendWithoutRecvFails) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local = {src, 8, src_mr.lkey};
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.cq_a->Poll()[0].status, WcStatus::kRetryExceeded);
  EXPECT_EQ(net.qp_a->state(), QpState::kError);
}

// ---- errors and RC semantics ----

TEST(Fabric, BadRkeyFailsAndErrorsQp) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 8, src_mr.lkey};
  wr.remote_addr = 0x10000;
  wr.rkey = 0xdead;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.cq_a->Poll()[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(net.qp_a->state(), QpState::kError);

  // Subsequent posts are flushed.
  ASSERT_FALSE(net.qp_a->PostSend(wr).ok());
  auto flushed = net.cq_a->Poll();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].status, WcStatus::kWorkRequestFlushed);
}

TEST(Fabric, BadLkeyFailsLocally) {
  TwoNodes net;
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {0x10000, 8, 0xbeef};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.cq_a->Poll()[0].status, WcStatus::kLocalProtectionError);
}

TEST(Fabric, PostOnUnconnectedQpRejected) {
  sim::EventQueue events;
  Fabric fabric(events);
  Node& node = fabric.AddNode("x");
  CompletionQueue& cq = fabric.CreateCq(node.id());
  QueuePair& qp = fabric.CreateQp(node.id(), cq, cq);
  SendWr wr;
  EXPECT_FALSE(qp.PostSend(wr).ok());
}

TEST(Fabric, DoubleConnectRejected) {
  TwoNodes net;
  EXPECT_FALSE(net.fabric.Connect(*net.qp_a, *net.qp_b).ok());
}

TEST(Fabric, CompletionsDeliveredInPostOrder) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 1 << 20, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 1 << 20, kAllAccess);
  // Big write posted first, tiny CAS second: completions must arrive in
  // post order despite the size difference.
  SendWr big;
  big.wr_id = 1;
  big.opcode = Opcode::kWrite;
  big.local = {src, 1 << 19, src_mr.lkey};
  big.remote_addr = dst;
  big.rkey = dst_mr.rkey;
  SendWr tiny;
  tiny.wr_id = 2;
  tiny.opcode = Opcode::kFetchAdd;
  tiny.local = {src, 8, src_mr.lkey};
  tiny.remote_addr = dst;
  tiny.rkey = dst_mr.rkey;
  tiny.compare_add = 1;
  ASSERT_TRUE(net.qp_a->PostSend(big).ok());
  ASSERT_TRUE(net.qp_a->PostSend(tiny).ok());
  net.events.Run();
  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].wr_id, 1u);
  EXPECT_EQ(wcs[1].wr_id, 2u);
  EXPECT_LE(wcs[0].completed_at, wcs[1].completed_at);
}

TEST(Fabric, LargeWritesSerializeOnWire) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 2 << 20, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 2 << 20, kAllAccess);
  // Two 1 MiB writes posted together must take ~2x the wire time of one.
  auto post = [&](std::uint64_t id) {
    SendWr wr;
    wr.wr_id = id;
    wr.opcode = Opcode::kWrite;
    wr.local = {src, 1 << 20, src_mr.lkey};
    wr.remote_addr = dst;
    wr.rkey = dst_mr.rkey;
    ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  };
  post(1);
  const sim::SimTime t0 = net.events.Now();
  net.events.Run();
  const sim::SimTime one = net.events.Now() - t0;

  post(2);
  post(3);
  const sim::SimTime t1 = net.events.Now();
  net.events.Run();
  const sim::SimTime two = net.events.Now() - t1;
  EXPECT_GT(static_cast<double>(two), 1.7 * static_cast<double>(one));
}

TEST(Fabric, UnsignaledWritesProduceNoCompletion) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 8, src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  wr.signaled = false;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_TRUE(net.cq_a->Poll().empty());
  EXPECT_EQ(net.fabric.ops_executed(), 1u);
}

TEST(WcStatus, NameCoversEveryValue) {
  const WcStatus all[] = {
      WcStatus::kSuccess,           WcStatus::kLocalProtectionError,
      WcStatus::kRemoteAccessError, WcStatus::kRemoteInvalidRequest,
      WcStatus::kWorkRequestFlushed, WcStatus::kRetryExceeded,
  };
  std::set<std::string> names;
  for (WcStatus s : all) {
    const std::string name = WcStatusName(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "UNKNOWN") << "unmapped status " << static_cast<int>(s);
    names.insert(name);
  }
  // Every status maps to a distinct string.
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_STREQ(WcStatusName(WcStatus::kWorkRequestFlushed),
               "WORK_REQUEST_FLUSHED");
  EXPECT_STREQ(WcStatusName(WcStatus::kRetryExceeded), "RETRY_EXCEEDED");
}

TEST(Fabric, ErrorFlushesInFlightWrs) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  // Bad write posted first, good write right behind it — both are
  // in flight when the first one fails. The second must complete as
  // flushed (not silently vanish, not execute against the remote).
  SendWr bad;
  bad.wr_id = 1;
  bad.opcode = Opcode::kWrite;
  bad.local = {src, 8, src_mr.lkey};
  bad.remote_addr = 0x10000;
  bad.rkey = 0xdead;
  SendWr good;
  good.wr_id = 2;
  good.opcode = Opcode::kWrite;
  good.local = {src, 8, src_mr.lkey};
  good.remote_addr = dst;
  good.rkey = dst_mr.rkey;
  ASSERT_TRUE(net.a->memory().WriteU64(src, 0x5555).ok());
  ASSERT_TRUE(net.qp_a->PostSend(bad).ok());
  ASSERT_TRUE(net.qp_a->PostSend(good).ok());
  net.events.Run();

  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].wr_id, 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(wcs[1].wr_id, 2u);
  EXPECT_EQ(wcs[1].status, WcStatus::kWorkRequestFlushed);
  EXPECT_EQ(net.qp_a->state(), QpState::kError);
  // The flushed write never touched the destination.
  EXPECT_EQ(net.b->memory().ReadU64(dst).value(), 0u);
}

// ---- small-op fast path: inline WQE payloads ----

TEST(Inline, WriteDeliversIdenticalBytesWithoutSourceMr) {
  TwoNodes net;
  // The source buffer is NOT registered: inline payloads are copied into
  // the WQE by the CPU at post time, so no lkey / source MR is needed.
  const std::uint64_t src = net.a->memory().Allocate(256, 8).value();
  auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
  Bytes pattern(200);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  ASSERT_TRUE(net.a->memory().Write(src, pattern).ok());

  SendWr wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 200, /*lkey=*/0};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  wr.send_inline = true;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();

  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kSuccess);
  Bytes out(200);
  ASSERT_TRUE(net.b->memory().Read(dst, out).ok());
  EXPECT_EQ(out, pattern);
  EXPECT_EQ(net.fabric.inline_wrs(), 1u);
  EXPECT_EQ(net.fabric.qp_stats().at(net.qp_a->num()).inline_wrs, 1u);
}

TEST(Inline, OversizePostRejectedWithoutCompletion) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 4096, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 4096, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, static_cast<std::uint32_t>(
                       net.fabric.link().max_inline_data + 1),
              src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  wr.send_inline = true;
  const Status posted = net.qp_a->PostSend(wr);
  EXPECT_FALSE(posted.ok());
  EXPECT_EQ(posted.code(), StatusCode::kInvalidArgument);
  net.events.Run();
  // The bad post neither completed nor errored the QP.
  EXPECT_TRUE(net.cq_a->Poll().empty());
  EXPECT_EQ(net.qp_a->state(), QpState::kRts);
}

TEST(Inline, SkipsPayloadFetchAndIsFasterForSmallWrites) {
  auto run_one = [](bool inline_flag) {
    TwoNodes net;
    auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
    auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local = {src, 64, src_mr.lkey};
    wr.remote_addr = dst;
    wr.rkey = dst_mr.rkey;
    wr.send_inline = inline_flag;
    EXPECT_TRUE(net.qp_a->PostSend(wr).ok());
    net.events.Run();
    return net.events.Now();
  };
  // Inline skips the payload DMA fetch and the local MTT lookup.
  EXPECT_LT(run_one(true), run_one(false));
}

// ---- small-op fast path: MTT translation cache ----

TEST(Mtt, SecondLookupHitsAndDeregisterShootsDown) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 64, src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  // First op walks the host MTT on both ends (requester lkey, responder
  // rkey).
  EXPECT_EQ(net.fabric.mtt_misses(), 2u);
  EXPECT_EQ(net.fabric.mtt_hits(), 0u);

  ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
  net.events.Run();
  EXPECT_EQ(net.fabric.mtt_misses(), 2u);
  EXPECT_EQ(net.fabric.mtt_hits(), 2u);

  // Deregistration invalidates the cached rkey translation on the
  // responder's NIC.
  ASSERT_TRUE(net.b->memory().Deregister(dst_mr.lkey).ok());
  EXPECT_GE(net.fabric.mtt_invalidations(), 1u);
}

TEST(Mtt, ZeroCapacityIsAlwaysCold) {
  sim::EventQueue events;
  sim::LinkModel link = sim::RdmaLink();
  link.mtt_cache_entries = 0;  // baseline configuration: no cache
  Fabric fabric(events, link);
  Node& a = fabric.AddNode("a", 1 << 20);
  Node& b = fabric.AddNode("b", 1 << 20);
  CompletionQueue& cq = fabric.CreateCq(a.id());
  CompletionQueue& rcq = fabric.CreateCq(b.id());
  QueuePair& qp = fabric.CreateQp(a.id(), cq, cq);
  QueuePair& rqp = fabric.CreateQp(b.id(), rcq, rcq);
  ASSERT_TRUE(fabric.Connect(qp, rqp).ok());
  const std::uint64_t src = a.memory().Allocate(64, 8).value();
  const MemoryRegion src_mr =
      a.memory().Register(src, 64, kAllAccess).value();
  const std::uint64_t dst = b.memory().Allocate(64, 8).value();
  const MemoryRegion dst_mr =
      b.memory().Register(dst, 64, kAllAccess).value();
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local = {src, 64, src_mr.lkey};
  wr.remote_addr = dst;
  wr.rkey = dst_mr.rkey;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(qp.PostSend(wr).ok());
    events.Run();
  }
  EXPECT_EQ(fabric.mtt_hits(), 0u);
  EXPECT_EQ(fabric.mtt_misses(), 6u);
}

// ---- small-op fast path: selective signaling ----

TEST(Signaling, PeriodCoalescesChainCompletions) {
  TwoNodes net;
  net.qp_a->SetSignalingPeriod(4);
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  std::vector<SendWr> chain;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    SendWr wr;
    wr.wr_id = i;
    wr.opcode = Opcode::kWrite;
    wr.local = {src, 8, src_mr.lkey};
    wr.remote_addr = dst;
    wr.rkey = dst_mr.rkey;
    chain.push_back(wr);
  }
  ASSERT_TRUE(net.qp_a->PostSendChain(chain).ok());
  net.events.Run();
  // Every 4th WRITE signals, plus the forced tail: wr 4 and wr 8.
  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].wr_id, 4u);
  EXPECT_EQ(wcs[1].wr_id, 8u);
  EXPECT_EQ(net.cq_a->coalesced(), 6u);
  EXPECT_EQ(net.fabric.unsignaled_wrs(), 6u);
  EXPECT_EQ(net.fabric.coalesced_completions(), 6u);
  EXPECT_EQ(net.fabric.qp_stats().at(net.qp_a->num()).unsignaled, 6u);
  // All eight executed against the remote regardless of signaling.
  EXPECT_EQ(net.fabric.ops_executed(), 8u);
}

TEST(Signaling, TailAlwaysSignaledSoPollerIsNotStranded) {
  TwoNodes net;
  net.qp_a->SetSignalingPeriod(64);  // period longer than the chain
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  std::vector<SendWr> chain;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    SendWr wr;
    wr.wr_id = i;
    wr.opcode = Opcode::kWrite;
    wr.local = {src, 8, src_mr.lkey};
    wr.remote_addr = dst;
    wr.rkey = dst_mr.rkey;
    wr.signaled = false;  // caller tries to unsignal everything
    chain.push_back(wr);
  }
  ASSERT_TRUE(net.qp_a->PostSendChain(chain).ok());
  net.events.Run();
  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 3u);
  EXPECT_EQ(wcs[0].status, WcStatus::kSuccess);
}

// Regression for the verbs error semantics at the CQE push (Complete):
// an unsignaled WR that fails must still produce an error completion, in
// order, and unsignaled WRs flushed behind it must too.
TEST(Signaling, UnsignaledFailuresStillCompleteInOrder) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 64, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 64, kAllAccess);
  ASSERT_TRUE(net.a->memory().WriteU64(src, 0xabcd).ok());
  auto make = [&](std::uint64_t id, MemoryKey rkey) {
    SendWr wr;
    wr.wr_id = id;
    wr.opcode = Opcode::kWrite;
    wr.local = {src, 8, src_mr.lkey};
    wr.remote_addr = dst;
    wr.rkey = rkey;
    wr.signaled = false;
    return wr;
  };
  ASSERT_TRUE(net.qp_a->PostSend(make(1, dst_mr.rkey)).ok());  // succeeds
  ASSERT_TRUE(net.qp_a->PostSend(make(2, 0xdead)).ok());       // NAKs
  ASSERT_TRUE(net.qp_a->PostSend(make(3, dst_mr.rkey)).ok());  // flushed
  net.events.Run();

  auto wcs = net.cq_a->Poll();
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(wcs[0].wr_id, 2u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(wcs[1].wr_id, 3u);
  EXPECT_EQ(wcs[1].status, WcStatus::kWorkRequestFlushed);
  // The unsignaled success was coalesced, not lost: it executed and is
  // accounted.
  EXPECT_EQ(net.fabric.unsignaled_wrs(), 1u);
  EXPECT_EQ(net.b->memory().ReadU64(dst).value(), 0xabcdu);
  EXPECT_EQ(net.qp_a->state(), QpState::kError);
}

TEST(Cq, OverrunDropsEntries) {
  sim::EventQueue events;
  CompletionQueue cq(2);
  WorkCompletion wc;
  EXPECT_TRUE(cq.Push(wc));
  EXPECT_TRUE(cq.Push(wc));
  EXPECT_FALSE(cq.Push(wc));
  EXPECT_EQ(cq.overruns(), 1u);
  EXPECT_EQ(cq.Poll(10).size(), 2u);
}

TEST(Cq, NotifyConsumesWhenTrue) {
  CompletionQueue cq;
  int seen = 0;
  cq.SetNotify([&](const WorkCompletion&) {
    ++seen;
    return true;
  });
  WorkCompletion wc;
  cq.Push(wc);
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(cq.Poll().empty());
}

TEST(Cq, NotifyLeavesWhenFalse) {
  CompletionQueue cq;
  cq.SetNotify([](const WorkCompletion&) { return false; });
  WorkCompletion wc;
  cq.Push(wc);
  EXPECT_EQ(cq.Poll().size(), 1u);
}

}  // namespace
}  // namespace rdx::rdma
