// Tests for the map layer: layout math, array/hash/ring semantics,
// self-description, and parameterized geometry sweeps (the same layouts
// double as XState, so correctness here underpins remote state access).
#include <gtest/gtest.h>

#include "bpf/maps.h"
#include "common/rng.h"

namespace rdx::bpf {
namespace {

Bytes Key32(std::uint32_t k) {
  Bytes key(4);
  StoreLE(key.data(), k);
  return key;
}

Bytes Value64(std::uint64_t v) {
  Bytes value(8);
  StoreLE(value.data(), v);
  return value;
}

LocalMap MakeMap(MapType type, std::uint32_t key_size,
                 std::uint32_t value_size, std::uint32_t max_entries) {
  return LocalMap(MapSpec{"m", type, key_size, value_size, max_entries});
}

// ---- layout / header ----

TEST(MapLayout, ArraySizing) {
  MapSpec spec{"a", MapType::kArray, 4, 16, 100};
  EXPECT_EQ(MapRequiredBytes(spec), kMapHeaderBytes + 100 * 16);
}

TEST(MapLayout, HashSizingPowerOfTwoCapacity) {
  MapSpec spec{"h", MapType::kHash, 4, 8, 100};
  // capacity = bit_ceil(200) = 256; entry = 8 + 8 + 8.
  EXPECT_EQ(MapRequiredBytes(spec), kMapHeaderBytes + 256 * 24);
}

TEST(MapLayout, HeaderSelfDescribes) {
  LocalMap map = MakeMap(MapType::kHash, 12, 20, 50);
  auto header = map.view().Header();
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, MapType::kHash);
  EXPECT_EQ(header->key_size, 12u);
  EXPECT_EQ(header->value_size, 20u);
  EXPECT_EQ(header->max_entries, 50u);
  EXPECT_EQ(header->used, 0u);
}

TEST(MapLayout, UnformattedStorageRejected) {
  Bytes raw(256, 0);
  MapView view(raw);
  EXPECT_FALSE(view.Header().ok());
  EXPECT_FALSE(view.Lookup(Key32(0), MutableByteSpan()).ok());
}

TEST(MapLayout, InitRejectsTooSmallStorage) {
  MapSpec spec{"a", MapType::kArray, 4, 8, 64};
  Bytes raw(16, 0);
  MapView view(raw);
  EXPECT_FALSE(view.Init(spec).ok());
}

// ---- array maps ----

TEST(ArrayMap, UpdateLookupRoundTrip) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  ASSERT_TRUE(map.view().Update(Key32(3), Value64(777)).ok());
  Bytes out(8);
  ASSERT_TRUE(map.view().Lookup(Key32(3), out).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), 777u);
}

TEST(ArrayMap, UnwrittenSlotsReadZero) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  Bytes out(8);
  ASSERT_TRUE(map.view().Lookup(Key32(5), out).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), 0u);
}

TEST(ArrayMap, IndexOutOfRangeRejected) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  Bytes out(8);
  EXPECT_FALSE(map.view().Lookup(Key32(8), out).ok());
  EXPECT_FALSE(map.view().Update(Key32(100), Value64(1)).ok());
}

TEST(ArrayMap, DeleteZeroesSlot) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  ASSERT_TRUE(map.view().Update(Key32(2), Value64(5)).ok());
  ASSERT_TRUE(map.view().Delete(Key32(2)).ok());
  Bytes out(8);
  ASSERT_TRUE(map.view().Lookup(Key32(2), out).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), 0u);
}

TEST(ArrayMap, KeySizeMismatchRejected) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  Bytes bad_key(8, 0);
  Bytes out(8);
  EXPECT_FALSE(map.view().Lookup(bad_key, out).ok());
}

TEST(ArrayMap, ValueSizeMismatchRejected) {
  LocalMap map = MakeMap(MapType::kArray, 4, 8, 8);
  Bytes bad_value(4, 0);
  EXPECT_FALSE(map.view().Update(Key32(0), bad_value).ok());
  EXPECT_FALSE(map.view().Lookup(Key32(0), bad_value).ok());
}

// ---- hash maps ----

TEST(HashMap, InsertLookupDelete) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 16);
  ASSERT_TRUE(map.view().Update(Key32(100), Value64(1)).ok());
  ASSERT_TRUE(map.view().Update(Key32(200), Value64(2)).ok());
  EXPECT_EQ(map.view().Used().value(), 2u);

  Bytes out(8);
  ASSERT_TRUE(map.view().Lookup(Key32(100), out).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), 1u);

  ASSERT_TRUE(map.view().Delete(Key32(100)).ok());
  EXPECT_FALSE(map.view().Lookup(Key32(100), out).ok());
  EXPECT_EQ(map.view().Used().value(), 1u);
  // The other key survives.
  ASSERT_TRUE(map.view().Lookup(Key32(200), out).ok());
}

TEST(HashMap, MissingKeyIsNotFound) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 16);
  Bytes out(8);
  auto status = map.view().Lookup(Key32(1), out);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(HashMap, OverwriteKeepsUsedCount) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 16);
  ASSERT_TRUE(map.view().Update(Key32(7), Value64(1)).ok());
  ASSERT_TRUE(map.view().Update(Key32(7), Value64(2)).ok());
  EXPECT_EQ(map.view().Used().value(), 1u);
  Bytes out(8);
  ASSERT_TRUE(map.view().Lookup(Key32(7), out).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), 2u);
}

TEST(HashMap, EnforcesMaxEntries) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 4);
  for (std::uint32_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(map.view().Update(Key32(k), Value64(k)).ok());
  }
  EXPECT_EQ(map.view().Update(Key32(99), Value64(9)).code(),
            StatusCode::kResourceExhausted);
}

TEST(HashMap, TombstoneSlotsAreReusable) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 4);
  for (std::uint32_t round = 0; round < 50; ++round) {
    ASSERT_TRUE(map.view().Update(Key32(round), Value64(round)).ok())
        << "round " << round;
    ASSERT_TRUE(map.view().Delete(Key32(round)).ok());
  }
  EXPECT_EQ(map.view().Used().value(), 0u);
}

TEST(HashMap, LookupSurvivesTombstonesInProbeChain) {
  LocalMap map = MakeMap(MapType::kHash, 4, 8, 8);
  // Insert several keys, delete some, then verify the rest remain
  // reachable even if their probe chains crossed deleted slots.
  for (std::uint32_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(map.view().Update(Key32(k), Value64(k * 10)).ok());
  }
  for (std::uint32_t k = 0; k < 8; k += 2) {
    ASSERT_TRUE(map.view().Delete(Key32(k)).ok());
  }
  Bytes out(8);
  for (std::uint32_t k = 1; k < 8; k += 2) {
    ASSERT_TRUE(map.view().Lookup(Key32(k), out).ok()) << "key " << k;
    EXPECT_EQ(LoadLE<std::uint64_t>(out.data()), k * 10);
  }
}

TEST(HashMap, WideKeysAndValues) {
  LocalMap map = MakeMap(MapType::kHash, 20, 40, 8);
  Bytes key(20);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = 0x40 + i;
  Bytes value(40, 0xab);
  ASSERT_TRUE(map.view().Update(key, value).ok());
  Bytes out(40);
  ASSERT_TRUE(map.view().Lookup(key, out).ok());
  EXPECT_EQ(out, value);
  // A key differing in the last byte is distinct.
  key[19] ^= 1;
  EXPECT_FALSE(map.view().Lookup(key, out).ok());
}

// Property test: the hash map agrees with std::unordered_map across a
// random operation sequence, for several geometries.
struct HashGeometryParam {
  std::uint32_t key_size;
  std::uint32_t value_size;
  std::uint32_t max_entries;
  std::uint64_t seed;
};

class HashMapProperty : public ::testing::TestWithParam<HashGeometryParam> {};

TEST_P(HashMapProperty, MatchesReferenceModel) {
  const auto& param = GetParam();
  LocalMap map = MakeMap(MapType::kHash, param.key_size, param.value_size,
                         param.max_entries);
  std::unordered_map<std::string, Bytes> reference;
  Rng rng(param.seed);

  auto make_key = [&](std::uint64_t id) {
    Bytes key(param.key_size, 0);
    StoreLE<std::uint32_t>(key.data(), static_cast<std::uint32_t>(id));
    return key;
  };

  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t id = rng.NextBounded(param.max_entries * 2);
    Bytes key = make_key(id);
    const std::string ref_key(key.begin(), key.end());
    const double roll = rng.NextDouble();
    if (roll < 0.5) {  // update
      Bytes value(param.value_size);
      for (auto& b : value) {
        b = static_cast<std::uint8_t>(rng.NextBounded(256));
      }
      Status s = map.view().Update(key, value);
      if (reference.size() >= param.max_entries &&
          reference.count(ref_key) == 0) {
        EXPECT_FALSE(s.ok());
      } else {
        ASSERT_TRUE(s.ok());
        reference[ref_key] = value;
      }
    } else if (roll < 0.75) {  // delete
      Status s = map.view().Delete(key);
      EXPECT_EQ(s.ok(), reference.erase(ref_key) > 0);
    } else {  // lookup
      Bytes out(param.value_size);
      Status s = map.view().Lookup(key, out);
      auto it = reference.find(ref_key);
      ASSERT_EQ(s.ok(), it != reference.end());
      if (s.ok()) EXPECT_EQ(out, it->second);
    }
    ASSERT_EQ(map.view().Used().value(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HashMapProperty,
    ::testing::Values(HashGeometryParam{4, 8, 16, 1},
                      HashGeometryParam{4, 8, 64, 2},
                      HashGeometryParam{8, 16, 32, 3},
                      HashGeometryParam{16, 4, 8, 4},
                      HashGeometryParam{5, 3, 40, 5},   // odd sizes
                      HashGeometryParam{4, 64, 128, 6}));

// ---- ring buffers ----

TEST(RingBuf, OutputConsumeRoundTrip) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 32, 16);
  Bytes rec1 = {1, 2, 3};
  Bytes rec2 = {4, 5, 6, 7, 8};
  ASSERT_TRUE(map.view().RingOutput(rec1).ok());
  ASSERT_TRUE(map.view().RingOutput(rec2).ok());
  auto records = map.view().RingConsume();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0], rec1);
  EXPECT_EQ((*records)[1], rec2);
  // Consuming again yields nothing.
  EXPECT_TRUE(map.view().RingConsume()->empty());
}

TEST(RingBuf, FillsUpWithoutConsumer) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 8, 4);
  Bytes rec(8, 0xcc);
  int accepted = 0;
  while (map.view().RingOutput(rec).ok()) ++accepted;
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 100);
  // Draining frees space.
  ASSERT_TRUE(map.view().RingConsume().ok());
  EXPECT_TRUE(map.view().RingOutput(rec).ok());
}

TEST(RingBuf, WrapsWithSkipMarker) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 16, 8);
  // Interleave output/consume so the cursor wraps several times; payload
  // sizes chosen to land the wrap mid-buffer.
  Rng rng(5);
  std::uint64_t produced = 0, consumed = 0;
  for (int round = 0; round < 200; ++round) {
    Bytes rec(1 + rng.NextBounded(24));
    for (auto& b : rec) b = static_cast<std::uint8_t>(produced);
    if (map.view().RingOutput(rec).ok()) ++produced;
    if (round % 3 == 2) {
      auto records = map.view().RingConsume();
      ASSERT_TRUE(records.ok());
      consumed += records->size();
    }
  }
  consumed += map.view().RingConsume()->size();
  EXPECT_EQ(produced, consumed);
  EXPECT_GT(produced, 100u);
}

TEST(RingBuf, PreservesRecordContentAcrossWraps) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 8, 8);
  std::uint64_t next_value = 0, expect_value = 0;
  for (int round = 0; round < 100; ++round) {
    Bytes rec(8);
    StoreLE(rec.data(), next_value);
    if (map.view().RingOutput(rec).ok()) ++next_value;
    auto records = map.view().RingConsume();
    ASSERT_TRUE(records.ok());
    for (const Bytes& r : *records) {
      ASSERT_EQ(r.size(), 8u);
      EXPECT_EQ(LoadLE<std::uint64_t>(r.data()), expect_value);
      ++expect_value;
    }
  }
  EXPECT_EQ(expect_value, next_value);
}

TEST(RingBuf, RejectsOversizedRecord) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 8, 2);
  Bytes huge(1024, 0);
  EXPECT_FALSE(map.view().RingOutput(huge).ok());
}

TEST(RingBuf, LookupAndUpdateUnsupported) {
  LocalMap map = MakeMap(MapType::kRingBuf, 0, 8, 4);
  Bytes out(8);
  EXPECT_FALSE(map.view().Lookup(Key32(0), out).ok());
  EXPECT_FALSE(map.view().Update(Key32(0), Value64(0)).ok());
}

}  // namespace
}  // namespace rdx::bpf
