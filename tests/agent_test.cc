// Agent-baseline tests: the local injection pipeline (timing, CPU
// charging, functional attach), the controller's push/rollout behaviour,
// and the steady-state polling tax.
#include <gtest/gtest.h>

#include "agent/agent.h"
#include "bpf/assembler.h"
#include "bpf/proggen.h"

namespace rdx::agent {
namespace {

struct Node {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  rdma::Node* node;
  std::unique_ptr<sim::CpuScheduler> cpu;
  std::unique_ptr<core::Sandbox> sandbox;
  std::unique_ptr<NodeAgent> agent;

  explicit Node(AgentConfig config = {}) {
    node = &fabric.AddNode("n", 64u << 20);
    cpu = std::make_unique<sim::CpuScheduler>(events, 24, 3.4e9);
    sandbox = std::make_unique<core::Sandbox>(events, *node,
                                              core::SandboxConfig{});
    EXPECT_TRUE(sandbox->CtxInit().ok());
    agent = std::make_unique<NodeAgent>(events, *sandbox, *cpu, config);
  }

  AgentTrace Load(const bpf::Program& prog, int hook = 0) {
    AgentTrace trace;
    bool done = false;
    agent->LoadExtension(prog, hook, [&](StatusOr<AgentTrace> r) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) trace = r.value();
      done = true;
    });
    while (!done && !events.Empty()) events.Step();
    return trace;
  }
};

bpf::Program TinyProgram(std::uint64_t ret) {
  bpf::Program prog;
  prog.name = "tiny";
  prog.insns = bpf::Assemble("r0 = " + std::to_string(ret) + "\nexit\n")
                   .value();
  return prog;
}

TEST(NodeAgentPipeline, LoadedExtensionExecutes) {
  Node n;
  n.Load(TinyProgram(7));
  Bytes packet(4, 0);
  auto result = n.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 7u);
  EXPECT_EQ(n.agent->loads_completed(), 1u);
}

TEST(NodeAgentPipeline, TraceCoversAllPhases) {
  Node n;
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 1300, .seed = 1});
  AgentTrace trace = n.Load(prog);
  EXPECT_GT(trace.queue, 0);
  EXPECT_GT(trace.verify, 0);
  EXPECT_GT(trace.jit, 0);
  EXPECT_GT(trace.attach, 0);
  EXPECT_NEAR(static_cast<double>(trace.total),
              static_cast<double>(trace.queue + trace.verify + trace.jit +
                                  trace.attach),
              1e5);
  // Verify dominates (paper: 90+% of load time is verify + JIT).
  EXPECT_GT(static_cast<double>(trace.verify + trace.jit),
            0.6 * static_cast<double>(trace.total));
}

TEST(NodeAgentPipeline, TraceFieldsComeFromTelemetrySpans) {
  Node n;
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 1300, .seed = 1});
  AgentTrace trace = n.Load(prog);

  // The legacy AgentTrace fields are populated from the span timeline,
  // so the same phases must exist there with identical durations.
  sim::Duration queue = 0, verify = 0, jit = 0, attach = 0, total = 0;
  for (const auto& ev : n.agent->tracer().events()) {
    if (ev.name == "agent:queue") queue = ev.dur;
    if (ev.name == "agent:verify") verify = ev.dur;
    if (ev.name == "agent:jit") jit = ev.dur;
    if (ev.name == "agent:attach") attach = ev.dur;
    if (ev.name == "agent:load") total = ev.dur;
    EXPECT_EQ(ev.pid, static_cast<std::uint32_t>(n.node->id()));
  }
  EXPECT_EQ(queue, trace.queue);
  EXPECT_EQ(verify, trace.verify);
  EXPECT_EQ(jit, trace.jit);
  EXPECT_EQ(attach, trace.attach);
  EXPECT_EQ(total, trace.total);
  EXPECT_GT(total, 0);
}

TEST(NodeAgentPipeline, LoadTimeGrowsWithProgramSize) {
  Node n;
  const AgentTrace small = n.Load(
      bpf::GenerateProgram({.target_insns = 1000, .seed = 1}), 0);
  const AgentTrace large = n.Load(
      bpf::GenerateProgram({.target_insns = 20000, .seed = 1}), 1);
  EXPECT_GT(large.total, small.total * 10);
}

TEST(NodeAgentPipeline, RejectsUnverifiableProgram) {
  Node n;
  bpf::Program bad;
  bad.name = "bad";
  bad.insns = bpf::Assemble("r0 = r9\nexit\n").value();  // uninit read
  bool done = false;
  n.agent->LoadExtension(bad, 0, [&](StatusOr<AgentTrace> r) {
    EXPECT_FALSE(r.ok());
    done = true;
  });
  while (!done && !n.events.Empty()) n.events.Step();
  EXPECT_TRUE(done);
  EXPECT_EQ(n.sandbox->VisibleVersion(0), 0u);
}

TEST(NodeAgentPipeline, ReloadBumpsVersion) {
  Node n;
  n.Load(TinyProgram(1));
  EXPECT_EQ(n.sandbox->VisibleVersion(0), 1u);
  n.Load(TinyProgram(2));
  EXPECT_EQ(n.sandbox->VisibleVersion(0), 2u);
  Bytes packet(4, 0);
  EXPECT_EQ(n.sandbox->ExecuteHook(0, packet)->r0, 2u);
}

TEST(NodeAgentPipeline, MapsAreLocallyLinked) {
  Node n;
  bpf::Program prog;
  prog.name = "counting";
  prog.maps.push_back({"hits", bpf::MapType::kArray, 4, 8, 4});
  prog.insns = bpf::Assemble(R"(
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
    r0 = r7
    exit
  out:
    r0 = 0
    exit
  )").value();
  n.Load(prog);
  Bytes packet(4, 0);
  EXPECT_EQ(n.sandbox->ExecuteHook(0, packet)->r0, 1u);
  EXPECT_EQ(n.sandbox->ExecuteHook(0, packet)->r0, 2u);
}

TEST(NodeAgentPipeline, ReloadReusesExistingMapState) {
  Node n;
  bpf::Program prog;
  prog.name = "counting";
  prog.maps.push_back({"hits", bpf::MapType::kArray, 4, 8, 4});
  prog.insns = bpf::Assemble(R"(
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
    r0 = r7
    exit
  out:
    r0 = 0
    exit
  )").value();
  n.Load(prog);
  Bytes packet(4, 0);
  EXPECT_EQ(n.sandbox->ExecuteHook(0, packet)->r0, 1u);
  // Reload: the map named "hits" persists across versions.
  n.Load(prog);
  EXPECT_EQ(n.sandbox->ExecuteHook(0, packet)->r0, 2u);
}

TEST(NodeAgentPipeline, WasmFilterLoadsAndRuns) {
  Node n;
  wasm::FilterModule filter = wasm::GenerateFilter(200, 4);
  bool done = false;
  n.agent->LoadWasmFilter(filter, 2, [&](StatusOr<AgentTrace> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    done = true;
  });
  while (!done && !n.events.Empty()) n.events.Step();
  ASSERT_TRUE(done);

  class NullHost final : public wasm::WasmHost {
   public:
    StatusOr<std::uint64_t> CallHost(std::int32_t, std::uint64_t,
                                     std::uint64_t) override {
      return 0ull;
    }
  } host;
  auto result = n.sandbox->ExecuteWasmHook(2, host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(NodeAgentPipeline, LoadChargesNodeCpu) {
  Node n;
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 10000, .seed = 1});
  const double before = n.cpu->Utilization();
  n.Load(prog);
  // Something ran on this CPU.
  EXPECT_GT(n.cpu->Utilization(), before);
}

TEST(NodeAgentPolling, PollingConsumesCpu) {
  AgentConfig config;
  config.state_poll_interval = sim::Millis(10);
  Node n(config);
  n.agent->StartStatePolling();
  n.events.RunUntil(sim::Seconds(1));
  // 100 polls * 13.6M cycles on 24 cores * 3.4 GHz * 1 s.
  const double expected =
      100.0 * 13.6e6 / (24 * 3.4e9);
  EXPECT_NEAR(n.cpu->Utilization(), expected, expected * 0.2);
  n.agent->StopStatePolling();
  const double at_stop = n.cpu->Utilization();
  n.events.RunUntil(sim::Seconds(2));
  EXPECT_LT(n.cpu->Utilization(), at_stop);  // decays once stopped
}

// ---- controller ----

struct ControllerHarness {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  AgentController controller;
  std::vector<std::unique_ptr<sim::CpuScheduler>> cpus;
  std::vector<std::unique_ptr<core::Sandbox>> sandboxes;
  std::vector<std::unique_ptr<NodeAgent>> agents;

  explicit ControllerHarness(int n, ControllerConfig config = {})
      : controller(events, config) {
    for (int i = 0; i < n; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i), 64u << 20);
      cpus.push_back(std::make_unique<sim::CpuScheduler>(events, 24, 3.4e9));
      sandboxes.push_back(std::make_unique<core::Sandbox>(
          events, node, core::SandboxConfig{}));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      agents.push_back(std::make_unique<NodeAgent>(
          events, *sandboxes.back(), *cpus.back()));
      controller.RegisterAgent(agents.back().get());
    }
  }
};

TEST(Controller, PushAddsNetworkDelay) {
  ControllerHarness h(1);
  bpf::Program prog = TinyProgram(1);
  sim::SimTime pushed_done = 0;
  bool done = false;
  h.controller.PushExtension(0, prog, 0, [&](StatusOr<AgentTrace> r) {
    ASSERT_TRUE(r.ok());
    pushed_done = h.events.Now();
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();
  // Push delay (>= 5 ms base) dominates the tiny program's load time.
  EXPECT_GT(pushed_done, sim::Millis(5));
}

TEST(Controller, RolloutReachesAllAgents) {
  ControllerHarness h(6);
  bpf::Program prog = TinyProgram(3);
  bool done = false;
  RolloutResult result;
  h.controller.Rollout(prog, 0, {}, [&](StatusOr<RolloutResult> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    result = r.value();
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();
  EXPECT_EQ(result.nodes, 6u);
  for (auto& sandbox : h.sandboxes) {
    EXPECT_EQ(sandbox->VisibleVersion(0), 1u);
  }
}

TEST(Controller, InconsistencyWindowSpansPropagationJitter) {
  ControllerHarness h(10);
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 1300, .seed = 2});
  bool done = false;
  RolloutResult result;
  h.controller.Rollout(prog, 0, {}, [&](StatusOr<RolloutResult> r) {
    ASSERT_TRUE(r.ok());
    result = r.value();
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();
  // Base 5ms + jitter + verify: the window is tens of ms at least.
  EXPECT_GT(result.inconsistency_window, sim::Millis(8));
}

TEST(Controller, WavesRollOutSequentially) {
  // Deterministic propagation (no jitter) so two sequential waves are
  // strictly slower than one parallel wave.
  ControllerConfig config;
  config.push_jitter_mean = 0;
  ControllerHarness h(4, config);
  bpf::Program prog = TinyProgram(1);
  // Two waves: {0,1} then {2,3}.
  std::vector<std::vector<std::size_t>> waves = {{0, 1}, {2, 3}};
  bool done = false;
  RolloutResult unordered_result, waved_result;
  h.controller.Rollout(prog, 0, waves, [&](StatusOr<RolloutResult> r) {
    ASSERT_TRUE(r.ok());
    waved_result = r.value();
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();

  done = false;
  h.controller.Rollout(prog, 1, {}, [&](StatusOr<RolloutResult> r) {
    ASSERT_TRUE(r.ok());
    unordered_result = r.value();
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();
  // Sequential waves take longer than one parallel wave.
  EXPECT_GT(waved_result.total, unordered_result.total);
  EXPECT_EQ(waved_result.nodes, 4u);
}

TEST(Controller, RolloutPropagatesAgentFailure) {
  ControllerHarness h(3);
  bpf::Program bad;
  bad.name = "bad";
  bad.insns = bpf::Assemble("r0 = r9\nexit\n").value();
  bool done = false;
  h.controller.Rollout(bad, 0, {}, [&](StatusOr<RolloutResult> r) {
    EXPECT_FALSE(r.ok());
    done = true;
  });
  while (!done && !h.events.Empty()) h.events.Step();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace rdx::agent
