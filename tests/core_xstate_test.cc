// XState-focused tests (§3.4): Meta-XState directory layout, remote
// allocation, remote lookup/update for every map type, state migration,
// and scratchpad exhaustion behaviour.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "core/codeflow.h"

namespace rdx::core {
namespace {

struct Rig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<CodeFlow*> flows;

  explicit Rig(int nodes = 1, SandboxConfig sandbox_config = {}) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 64u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id);
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i));
      sandboxes.push_back(
          std::make_unique<Sandbox>(events, node, sandbox_config));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      auto reg = sandboxes.back()->CtxRegister();
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandboxes.back(), reg.value(),
                         [&flow](StatusOr<CodeFlow*> f) {
                           if (f.ok()) flow = f.value();
                         });
      events.Run();
      EXPECT_NE(flow, nullptr);
      flows.push_back(flow);
    }
  }

  std::uint64_t Deploy(CodeFlow& flow, const bpf::MapSpec& spec) {
    std::uint64_t addr = 0;
    cp->DeployXState(flow, spec, [&](StatusOr<std::uint64_t> a) {
      EXPECT_TRUE(a.ok()) << a.status().ToString();
      if (a.ok()) addr = a.value();
    });
    events.Run();
    return addr;
  }

  Bytes Lookup(CodeFlow& flow, std::uint64_t addr, Bytes key) {
    Bytes value;
    bool done = false;
    cp->XStateLookup(flow, addr, std::move(key), [&](StatusOr<Bytes> v) {
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      if (v.ok()) value = v.value();
      done = true;
    });
    events.Run();
    EXPECT_TRUE(done);
    return value;
  }

  void Update(CodeFlow& flow, std::uint64_t addr, Bytes key, Bytes value) {
    bool done = false;
    cp->XStateUpdate(flow, addr, std::move(key), std::move(value),
                     [&](Status s) {
                       EXPECT_TRUE(s.ok()) << s.ToString();
                       done = true;
                     });
    events.Run();
    EXPECT_TRUE(done);
  }
};

Bytes Key32(std::uint32_t k) {
  Bytes key(4);
  StoreLE(key.data(), k);
  return key;
}

Bytes Value64(std::uint64_t v) {
  Bytes value(8);
  StoreLE(value.data(), v);
  return value;
}

TEST(XStateDeploy, LandsFormattedMapOnNode) {
  Rig rig;
  const bpf::MapSpec spec{"counters", bpf::MapType::kArray, 4, 8, 16};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  ASSERT_NE(addr, 0u);
  // The node-side bytes are a valid, self-describing map.
  auto& mem = rig.sandboxes[0]->node().memory();
  bpf::MapView view(mem.SpanForCpu(addr, bpf::MapRequiredBytes(spec)));
  auto header = view.Header();
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, bpf::MapType::kArray);
  EXPECT_EQ(header->max_entries, 16u);
  // The address is inside the scratchpad.
  const ControlBlockView& cb = rig.flows[0]->remote_view();
  EXPECT_GE(addr, cb.scratch_addr);
  EXPECT_LT(addr, cb.scratch_addr + cb.scratch_size);
}

TEST(XStateDeploy, RegistersMetaDirectoryEntry) {
  Rig rig;
  const bpf::MapSpec spec{"m", bpf::MapType::kHash, 4, 8, 8};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  const ControlBlockView& cb = rig.flows[0]->remote_view();
  const std::uint64_t entry =
      rig.sandboxes[0]->node().memory().ReadU64(cb.meta_xstate_addr).value();
  EXPECT_EQ(entry, addr);
}

TEST(XStateDeploy, SandboxDiscoversViaMetaWalk) {
  Rig rig;
  const bpf::MapSpec spec{"m", bpf::MapType::kArray, 4, 8, 4};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  EXPECT_EQ(rig.sandboxes[0]->runtime().maps.count(addr), 0u);
  rig.sandboxes[0]->RefreshXState();
  ASSERT_EQ(rig.sandboxes[0]->runtime().maps.count(addr), 1u);
  EXPECT_EQ(rig.sandboxes[0]->runtime().maps.at(addr).value_size, 8u);
}

TEST(XStateDeploy, ManyInstancesOfVaryingSizes) {
  Rig rig;
  std::vector<std::uint64_t> addrs;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    bpf::MapSpec spec{"m" + std::to_string(i), bpf::MapType::kArray, 4,
                      8 * i, 4 * i};
    addrs.push_back(rig.Deploy(*rig.flows[0], spec));
  }
  // All distinct and non-overlapping (ascending bump allocation).
  for (std::size_t i = 1; i < addrs.size(); ++i) {
    EXPECT_GT(addrs[i], addrs[i - 1]);
  }
  EXPECT_EQ(rig.flows[0]->xstates().size(), 20u);
}

TEST(XStateRemote, ArrayLookupAndUpdate) {
  Rig rig;
  const bpf::MapSpec spec{"a", bpf::MapType::kArray, 4, 8, 8};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  rig.Update(*rig.flows[0], addr, Key32(3), Value64(12345));
  const Bytes value = rig.Lookup(*rig.flows[0], addr, Key32(3));
  ASSERT_EQ(value.size(), 8u);
  EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), 12345u);
}

TEST(XStateRemote, HashInsertThenRemoteRead) {
  Rig rig;
  const bpf::MapSpec spec{"h", bpf::MapType::kHash, 4, 8, 16};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  for (std::uint32_t k = 0; k < 10; ++k) {
    rig.Update(*rig.flows[0], addr, Key32(k * 7), Value64(k * 100));
  }
  for (std::uint32_t k = 0; k < 10; ++k) {
    const Bytes value = rig.Lookup(*rig.flows[0], addr, Key32(k * 7));
    EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), k * 100);
  }
}

TEST(XStateRemote, LookupMissingKeyFails) {
  Rig rig;
  const bpf::MapSpec spec{"h", bpf::MapType::kHash, 4, 8, 8};
  const std::uint64_t addr = rig.Deploy(*rig.flows[0], spec);
  bool done = false;
  rig.cp->XStateLookup(*rig.flows[0], addr, Key32(9), [&](StatusOr<Bytes> v) {
    EXPECT_FALSE(v.ok());
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

TEST(XStateRemote, RemoteWriteVisibleToExtension) {
  Rig rig;
  CodeFlow& flow = *rig.flows[0];
  bpf::Program prog;
  prog.name = "reader";
  prog.maps.push_back({"cfg", bpf::MapType::kArray, 4, 8, 1});
  prog.insns = bpf::Assemble(R"(
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r0 = *(u64*)(r0 + 0)
    exit
  out:
    r0 = 0
    exit
  )").value();
  bool injected = false;
  rig.cp->InjectExtension(flow, prog, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok());
    injected = true;
  });
  rig.events.Run();
  ASSERT_TRUE(injected);

  const std::uint64_t addr = flow.xstates().at("cfg");
  rig.Update(flow, addr, Key32(0), Value64(4242));
  Bytes packet(4, 0);
  auto result = rig.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->r0, 4242u);
}

TEST(XStateMigrate, CopyPreservesContent) {
  Rig rig(2);
  const bpf::MapSpec spec{"h", bpf::MapType::kHash, 4, 8, 16};
  const std::uint64_t src = rig.Deploy(*rig.flows[0], spec);
  const std::uint64_t dst = rig.Deploy(*rig.flows[1], spec);
  for (std::uint32_t k = 0; k < 5; ++k) {
    rig.Update(*rig.flows[0], src, Key32(k), Value64(k + 1000));
  }
  bool copied = false;
  rig.cp->CopyXState(*rig.flows[0], src, *rig.flows[1], dst, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    copied = true;
  });
  rig.events.Run();
  ASSERT_TRUE(copied);
  for (std::uint32_t k = 0; k < 5; ++k) {
    const Bytes value = rig.Lookup(*rig.flows[1], dst, Key32(k));
    EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), k + 1000);
  }
}

TEST(XStateLimits, MetaDirectoryCapacityEnforced) {
  SandboxConfig config;
  config.meta_capacity = 3;
  Rig rig(1, config);
  const bpf::MapSpec spec{"m", bpf::MapType::kArray, 4, 8, 1};
  for (int i = 0; i < 3; ++i) {
    bpf::MapSpec named = spec;
    named.name = "m" + std::to_string(i);
    EXPECT_NE(rig.Deploy(*rig.flows[0], named), 0u);
  }
  bool rejected = false;
  bpf::MapSpec overflow = spec;
  overflow.name = "overflow";
  rig.cp->DeployXState(*rig.flows[0], overflow,
                       [&](StatusOr<std::uint64_t> a) {
                         EXPECT_EQ(a.status().code(),
                                   StatusCode::kResourceExhausted);
                         rejected = true;
                       });
  rig.events.Run();
  EXPECT_TRUE(rejected);
}

TEST(XStateLimits, ScratchpadExhaustionSurfaces) {
  SandboxConfig config;
  config.scratch_bytes = 64 * 1024;
  Rig rig(1, config);
  const bpf::MapSpec big{"big", bpf::MapType::kArray, 4, 1024, 48};
  ASSERT_GT(bpf::MapRequiredBytes(big), 32u * 1024);
  ASSERT_LT(bpf::MapRequiredBytes(big), 64u * 1024);
  // First fits, second exhausts the 64 KiB scratchpad.
  bpf::MapSpec big1 = big;
  big1.name = "b1";
  EXPECT_NE(rig.Deploy(*rig.flows[0], big1), 0u);
  bool rejected = false;
  bpf::MapSpec big2 = big;
  big2.name = "b2";
  rig.cp->DeployXState(*rig.flows[0], big2, [&](StatusOr<std::uint64_t> a) {
    EXPECT_EQ(a.status().code(), StatusCode::kScratchExhausted);
    rejected = true;
  });
  rig.events.Run();
  EXPECT_TRUE(rejected);
}

TEST(XStateTelemetry, RemoteRingConsumeDrainsExtensionOutput) {
  Rig rig;
  CodeFlow& flow = *rig.flows[0];
  // Extension emits an 8-byte record (the first ctx word) per packet.
  bpf::Program prog;
  prog.name = "emitter";
  prog.maps.push_back({"events", bpf::MapType::kRingBuf, 0, 16, 32});
  prog.insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)
    *(u64*)(r10 - 8) = r6
    r1 = map 0
    r2 = r10
    r2 += -8
    r3 = 8
    r4 = 0
    call ringbuf_output
    r0 = 1
    exit
  )").value();
  bool injected = false;
  rig.cp->InjectExtension(flow, prog, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    injected = true;
  });
  rig.events.Run();
  ASSERT_TRUE(injected);

  for (std::uint32_t i = 0; i < 5; ++i) {
    Bytes packet(4);
    StoreLE(packet.data(), 100 + i);
    ASSERT_TRUE(rig.sandboxes[0]->ExecuteHook(0, packet).ok());
  }

  const std::uint64_t ring = flow.xstates().at("events");
  std::vector<Bytes> records;
  bool drained = false;
  rig.cp->XStateRingConsume(flow, ring,
                            [&](StatusOr<std::vector<Bytes>> r) {
                              ASSERT_TRUE(r.ok()) << r.status().ToString();
                              records = r.value();
                              drained = true;
                            });
  rig.events.Run();
  ASSERT_TRUE(drained);
  ASSERT_EQ(records.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(LoadLE<std::uint64_t>(records[i].data()), 100 + i);
  }

  // Second consume finds nothing; producer can keep going after the
  // remote tail advance.
  drained = false;
  rig.cp->XStateRingConsume(flow, ring,
                            [&](StatusOr<std::vector<Bytes>> r) {
                              ASSERT_TRUE(r.ok());
                              EXPECT_TRUE(r->empty());
                              drained = true;
                            });
  rig.events.Run();
  ASSERT_TRUE(drained);

  Bytes packet(4);
  StoreLE<std::uint32_t>(packet.data(), 999);
  ASSERT_TRUE(rig.sandboxes[0]->ExecuteHook(0, packet).ok());
  drained = false;
  rig.cp->XStateRingConsume(flow, ring,
                            [&](StatusOr<std::vector<Bytes>> r) {
                              ASSERT_TRUE(r.ok());
                              ASSERT_EQ(r->size(), 1u);
                              EXPECT_EQ(LoadLE<std::uint64_t>((*r)[0].data()),
                                        999u);
                              drained = true;
                            });
  rig.events.Run();
  ASSERT_TRUE(drained);
}

TEST(XStateTelemetry, RingConsumeSurvivesManyRounds) {
  Rig rig;
  CodeFlow& flow = *rig.flows[0];
  const bpf::MapSpec spec{"rb", bpf::MapType::kRingBuf, 0, 8, 8};
  const std::uint64_t ring = rig.Deploy(flow, spec);
  rig.sandboxes[0]->RefreshXState();

  // Producer (local extension side) and consumer (remote control plane)
  // interleave across many wrap-arounds.
  auto& mem = rig.sandboxes[0]->node().memory();
  std::uint64_t produced = 0, consumed = 0;
  for (int round = 0; round < 50; ++round) {
    bpf::MapView view(
        mem.SpanForCpu(ring, bpf::MapRequiredBytes(spec)));
    for (int k = 0; k < 3; ++k) {
      Bytes rec(8);
      StoreLE(rec.data(), produced);
      if (view.RingOutput(rec).ok()) ++produced;
    }
    bool drained = false;
    rig.cp->XStateRingConsume(flow, ring,
                              [&](StatusOr<std::vector<Bytes>> r) {
                                ASSERT_TRUE(r.ok());
                                for (const Bytes& rec : *r) {
                                  EXPECT_EQ(LoadLE<std::uint64_t>(rec.data()),
                                            consumed);
                                  ++consumed;
                                }
                                drained = true;
                              });
    rig.events.Run();
    ASSERT_TRUE(drained);
  }
  EXPECT_EQ(produced, consumed);
  EXPECT_GT(produced, 100u);
}

TEST(XStateTelemetry, RemoteDumpMatchesLocalState) {
  Rig rig;
  CodeFlow& flow = *rig.flows[0];
  const bpf::MapSpec spec{"h", bpf::MapType::kHash, 4, 8, 32};
  const std::uint64_t addr = rig.Deploy(flow, spec);

  // Populate from the data-plane side (as an extension would).
  auto& mem = rig.sandboxes[0]->node().memory();
  bpf::MapView view(mem.SpanForCpu(addr, bpf::MapRequiredBytes(spec)));
  for (std::uint32_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(view.Update(Key32(k * 3), Value64(k + 500)).ok());
  }

  bool dumped = false;
  rig.cp->XStateDump(
      flow, addr,
      [&](StatusOr<std::vector<std::pair<Bytes, Bytes>>> pairs) {
        ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
        ASSERT_EQ(pairs->size(), 12u);
        for (const auto& [key, value] : *pairs) {
          const std::uint32_t k = LoadLE<std::uint32_t>(key.data());
          EXPECT_EQ(k % 3, 0u);
          EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), k / 3 + 500);
        }
        dumped = true;
      });
  rig.events.Run();
  EXPECT_TRUE(dumped);
}

}  // namespace
}  // namespace rdx::core
