// KV-store tests: the RESP-style codec, store semantics, closed-loop
// workload behaviour, and per-command extension execution.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "kvstore/kvstore.h"

namespace rdx::kvstore {
namespace {

// ---- codec ----

TEST(RespCodec, GetRoundTrip) {
  Command command{CommandType::kGet, "mykey", ""};
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, CommandType::kGet);
  EXPECT_EQ(decoded->key, "mykey");
}

TEST(RespCodec, SetCarriesValue) {
  Command command{CommandType::kSet, "k", "some value bytes"};
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, CommandType::kSet);
  EXPECT_EQ(decoded->value, "some value bytes");
}

TEST(RespCodec, AllVerbs) {
  for (CommandType type : {CommandType::kGet, CommandType::kSet,
                           CommandType::kDel, CommandType::kIncr}) {
    Command command{type, "k", type == CommandType::kSet ? "v" : ""};
    auto decoded = DecodeCommand(EncodeCommand(command));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(RespCodec, WireFormatIsResp) {
  const Bytes wire = EncodeCommand({CommandType::kGet, "ab", ""});
  const std::string text(wire.begin(), wire.end());
  EXPECT_EQ(text, "*2\r\n$3\r\nGET\r\n$2\r\nab\r\n");
}

TEST(RespCodec, RejectsMalformedInput) {
  EXPECT_FALSE(DecodeCommand(Bytes{}).ok());
  const char* bad[] = {
      "GET k",                       // not an array
      "*2\r\n$3\r\nFOO\r\n$1\r\nk\r\n",  // unknown verb
      "*2\r\n$3\r\nGET\r\n",         // missing key
      "*3\r\n$3\r\nGET\r\n$1\r\nk\r\n$1\r\nv\r\n",  // GET with extra arg
      "*2\r\n$9\r\nGET\r\n$1\r\nk\r\n",  // bad length
  };
  for (const char* text : bad) {
    Bytes wire(text, text + std::strlen(text));
    EXPECT_FALSE(DecodeCommand(wire).ok()) << text;
  }
}

TEST(RespCodec, EmptyValueAllowed) {
  Command command{CommandType::kSet, "k", ""};
  auto decoded = DecodeCommand(EncodeCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->value, "");
}

// ---- store ----

struct StoreHarness {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<KvStore> store;

  explicit StoreHarness(StoreConfig config = {}) {
    rdma::Node& node = fabric.AddNode("kv", 64u << 20);
    store = std::make_unique<KvStore>(events, node, config);
  }

  std::string Execute(const Command& command) {
    std::string reply;
    bool done = false;
    store->Execute(command, [&](StatusOr<std::string> r) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) reply = r.value();
      done = true;
    });
    while (!done && !events.Empty()) events.Step();
    return reply;
  }
};

TEST(KvStore, SetThenGet) {
  StoreHarness h;
  EXPECT_EQ(h.Execute({CommandType::kSet, "k1", "v1"}), "OK");
  EXPECT_EQ(h.Execute({CommandType::kGet, "k1", ""}), "v1");
  EXPECT_EQ(h.store->Size(), 1u);
}

TEST(KvStore, GetMissingReturnsEmpty) {
  StoreHarness h;
  EXPECT_EQ(h.Execute({CommandType::kGet, "nope", ""}), "");
  StoreMetrics metrics = h.store->TakeMetrics();
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_EQ(metrics.hits, 0u);
}

TEST(KvStore, DelRemoves) {
  StoreHarness h;
  h.Execute({CommandType::kSet, "k", "v"});
  EXPECT_EQ(h.Execute({CommandType::kDel, "k", ""}), "OK");
  EXPECT_EQ(h.Execute({CommandType::kGet, "k", ""}), "");
  EXPECT_EQ(h.store->Size(), 0u);
}

TEST(KvStore, IncrCounts) {
  StoreHarness h;
  EXPECT_EQ(h.Execute({CommandType::kIncr, "ctr", ""}), "1");
  EXPECT_EQ(h.Execute({CommandType::kIncr, "ctr", ""}), "2");
  EXPECT_EQ(h.Execute({CommandType::kIncr, "ctr", ""}), "3");
  h.Execute({CommandType::kSet, "ctr", "41"});
  EXPECT_EQ(h.Execute({CommandType::kIncr, "ctr", ""}), "42");
}

TEST(KvStore, OpsTakeServiceTime) {
  StoreHarness h;
  const sim::SimTime t0 = h.events.Now();
  h.Execute({CommandType::kSet, "k", "v"});
  // kv_request_cycles = 6800 at 3.4 GHz = 2 us.
  EXPECT_NEAR(sim::ToMicros(h.events.Now() - t0), 2.0, 0.5);
}

TEST(KvStore, MetricsTrackLatencyAndThroughput) {
  StoreHarness h;
  for (int i = 0; i < 100; ++i) {
    h.Execute({CommandType::kSet, "k" + std::to_string(i), "v"});
  }
  StoreMetrics metrics = h.store->TakeMetrics();
  EXPECT_EQ(metrics.ops, 100u);
  EXPECT_GT(metrics.ThroughputPerSec(), 0.0);
  EXPECT_GT(metrics.latency_ns.Percentile(0.5), 1000u);
}

TEST(KvStore, ExtensionRunsPerCommand) {
  StoreHarness h;
  // Attach a tracing extension directly via the local path (the RDX and
  // agent integration is covered elsewhere): count every command.
  bpf::Program prog;
  prog.name = "tracer";
  prog.maps.push_back({"ops", bpf::MapType::kArray, 4, 8, 1});
  prog.insns = bpf::Assemble(R"(
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
  out:
    r0 = 1
    exit
  )").value();

  // Local attach through a scratch agent-like path: deploy map + image.
  auto& sandbox = h.store->sandbox();
  auto& mem = sandbox.node().memory();
  const bpf::MapSpec& spec = prog.maps[0];
  const std::uint64_t map_addr =
      mem.Allocate(bpf::MapRequiredBytes(spec), 64).value();
  bpf::MapView map_view(
      mem.SpanForCpu(map_addr, bpf::MapRequiredBytes(spec)));
  ASSERT_TRUE(map_view.Init(spec).ok());
  sandbox.runtime().maps.emplace(map_addr, spec);

  auto image = bpf::JitCompiler().Compile(prog);
  ASSERT_TRUE(image.ok());
  for (const bpf::Relocation& reloc : image->relocs) {
    if (reloc.kind == bpf::RelocKind::kMapAddress) {
      image->code[reloc.index].imm64 = map_addr;
    }
  }
  const Bytes wire = image->Serialize();
  const std::uint64_t image_addr = mem.Allocate(wire.size(), 64).value();
  ASSERT_TRUE(mem.Write(image_addr, wire).ok());
  const std::uint64_t desc_addr = mem.Allocate(32, 64).value();
  ASSERT_TRUE(mem.WriteU64(desc_addr + 0, image_addr).ok());
  ASSERT_TRUE(mem.WriteU64(desc_addr + 8, wire.size()).ok());
  ASSERT_TRUE(mem.WriteU64(desc_addr + 16, 1).ok());
  ASSERT_TRUE(
      mem.WriteU64(sandbox.view().hook_table_addr, desc_addr).ok());
  sandbox.RefreshHookNow(0);

  for (int i = 0; i < 10; ++i) {
    h.Execute({CommandType::kGet, "x", ""});
  }
  Bytes key(4, 0), value(8);
  ASSERT_TRUE(map_view.Lookup(key, value).ok());
  EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), 10u);
}

// ---- workload ----

TEST(KvWorkload, ClosedLoopSaturates) {
  StoreConfig config;
  config.cores = 2;
  StoreHarness h(config);
  WorkloadConfig workload_config;
  workload_config.clients = 16;
  KvWorkload workload(h.events, *h.store, workload_config);
  workload.Start();
  h.events.RunUntil(sim::Seconds(1));
  workload.Stop();
  StoreMetrics metrics = h.store->TakeMetrics();
  // Capacity: 2 cores * 3.4 GHz / 6800 cycles = 1M ops/s.
  EXPECT_NEAR(metrics.ThroughputPerSec(), 1e6, 1e5);
  EXPECT_EQ(workload.completed(), metrics.ops);
}

TEST(KvWorkload, ZipfSkewConcentratesKeys) {
  StoreHarness h;
  WorkloadConfig config;
  config.clients = 4;
  config.zipf_skew = 0.99;
  config.get_fraction = 0.0;  // all SETs so keys materialize
  KvWorkload workload(h.events, *h.store, config);
  workload.Start();
  h.events.RunUntil(sim::Millis(100));
  workload.Stop();
  // Strong skew: far fewer distinct keys than operations.
  StoreMetrics metrics = h.store->TakeMetrics();
  EXPECT_LT(h.store->Size(), metrics.ops / 2);
  EXPECT_GT(h.store->Size(), 10u);
}

}  // namespace
}  // namespace rdx::kvstore
