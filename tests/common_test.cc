// Unit tests for the common vocabulary: Status/StatusOr, deterministic
// RNG, statistics, and byte utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace rdx {
namespace {

// ---- Status ----

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("boom").message(), "boom");
  EXPECT_EQ(Internal("boom").ToString(), "INTERNAL: boom");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("a"), NotFound("a"));
  EXPECT_FALSE(NotFound("a") == NotFound("b"));
  EXPECT_FALSE(NotFound("a") == Internal("a"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int n) {
  if (n % 2 != 0) return InvalidArgument("odd");
  return n / 2;
}

Status UseHalf(int n, int& out) {
  RDX_ASSIGN_OR_RETURN(out, Half(n));
  return OkStatus();
}

TEST(StatusOr, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, out).code(), StatusCode::kInvalidArgument);
}

// ---- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(250.0);
  EXPECT_NEAR(sum / kN, 250.0, 10.0);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextZipf(1000, 0.99) < 10) ++low;
  }
  // With skew 0.99 the top-1% of keys should absorb far more than 1%.
  EXPECT_GT(low, kN / 10);
}

TEST(Rng, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(13);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextZipf(1000, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kN, 0.01, 0.01);
}

// ---- Summary / Histogram ----

TEST(Summary, TracksMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Percentile(1.0), 15u);
}

TEST(Histogram, PercentileWithinRelativeError) {
  Histogram h;
  Rng rng(3);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.NextBounded(1'000'000) + 1;
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const std::uint64_t approx = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.10)
        << "q=" << q;
  }
}

TEST(Histogram, MergeCombinesPopulations) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LT(a.Percentile(0.25), 20u);
  EXPECT_GT(a.Percentile(0.75), 900u);
}

TEST(Histogram, MeanMatchesSum) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

// ---- bytes ----

TEST(Bytes, LoadStoreRoundTrip) {
  std::uint8_t buf[8];
  StoreLE<std::uint32_t>(buf, 0xdeadbeef);
  EXPECT_EQ(LoadLE<std::uint32_t>(buf), 0xdeadbeefu);
  StoreLE<std::uint64_t>(buf, 0x0123456789abcdefull);
  EXPECT_EQ(LoadLE<std::uint64_t>(buf), 0x0123456789abcdefull);
}

TEST(Bytes, StoreIsLittleEndian) {
  std::uint8_t buf[4];
  StoreLE<std::uint32_t>(buf, 0x11223344);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[3], 0x11);
}

TEST(Bytes, AppendGrowsBuffer) {
  Bytes out;
  AppendLE<std::uint16_t>(out, 0xaabb);
  AppendLE<std::uint32_t>(out, 0x11223344);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(LoadLE<std::uint16_t>(out.data()), 0xaabbu);
  EXPECT_EQ(LoadLE<std::uint32_t>(out.data() + 2), 0x11223344u);
}

TEST(Bytes, Fnv1aMatchesKnownVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a64(a), 0xaf63dc4c8601ec8cull);
  // Empty input hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(ByteSpan{}), 0xcbf29ce484222325ull);
}

TEST(Stats, SummaryToJsonCarriesAllFields) {
  Summary s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stddev\": 1"), std::string::npos) << json;
}

TEST(Stats, HistogramToJsonCarriesPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.Add(v);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos) << json;
  for (const char* key : {"\"mean\"", "\"min\"", "\"p50\"", "\"p90\"",
                          "\"p99\"", "\"max\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << json;
  }
}

TEST(Stats, HistogramMergePreservesSmallerMin) {
  // Regression guard: merging a histogram whose min is larger must not
  // clobber the destination's smaller min (and vice versa).
  Histogram small;
  small.Add(5);
  Histogram large;
  large.Add(1000);
  small.Merge(large);
  EXPECT_EQ(small.count(), 2u);
  EXPECT_EQ(small.min(), 5u);
  EXPECT_EQ(small.max(), 1000u);

  Histogram other;
  other.Add(2000);
  other.Merge(small);
  EXPECT_EQ(other.min(), 5u);
  EXPECT_EQ(other.max(), 2000u);

  // Merging an empty histogram changes nothing.
  Histogram empty;
  other.Merge(empty);
  EXPECT_EQ(other.min(), 5u);
  Histogram into_empty;
  into_empty.Merge(small);
  EXPECT_EQ(into_empty.min(), 5u);
  EXPECT_EQ(into_empty.count(), 2u);
}

TEST(Bytes, FnvSensitiveToEveryByte) {
  Bytes data(64, 0);
  const std::uint64_t base = Fnv1a64(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1;
    EXPECT_NE(Fnv1a64(data), base) << "byte " << i;
    data[i] = 0;
  }
}

TEST(Bytes, ToHex) {
  const std::uint8_t data[] = {0xde, 0xad, 0x00, 0x0f};
  EXPECT_EQ(ToHex(data), "dead000f");
  EXPECT_EQ(ToHex(ByteSpan{}), "");
}

}  // namespace
}  // namespace rdx
