// Execution-semantics tests: ALU corner cases, branch conditions, memory
// access, helper behaviour, runtime guards — plus parameterized
// interpreter-vs-JIT divergence checks (the two engines share the ALU
// core but differ in dispatch and relocation, so agreement here validates
// the whole lowering pipeline).
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "bpf/interpreter.h"
#include "bpf/jit.h"
#include "bpf/proggen.h"
#include "bpf/verifier.h"

namespace rdx::bpf {
namespace {

struct Harness {
  VectorMemory mem{1 << 20};
  Rng rng{42};
  RuntimeContext rt;
  ExecOptions opts;

  Harness() {
    rt.mem = &mem;
    rt.rng = &rng;
    opts.ctx_addr = mem.Allocate(256).value();
    opts.ctx_len = 256;
    opts.stack_addr = mem.Allocate(kStackSize).value();
  }

  std::uint64_t AddMap(const MapSpec& spec) {
    const std::uint64_t addr =
        mem.Allocate(MapRequiredBytes(spec), 8).value();
    MapView view(mem.SpanAt(addr, MapRequiredBytes(spec)).value());
    EXPECT_TRUE(view.Init(spec).ok());
    rt.maps.emplace(addr, spec);
    return addr;
  }

  std::uint64_t Run(std::string_view asm_text) {
    auto insns = Assemble(asm_text);
    EXPECT_TRUE(insns.ok()) << insns.status().ToString();
    auto result = Interpret(insns.value(), rt, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->r0 : ~0ull;
  }
};

// ---- ALU semantics ----

TEST(Alu, DivisionByZeroYieldsZero) {
  Harness h;
  EXPECT_EQ(h.Run("r0 = 10\nr1 = 0\nr0 /= r1\nexit\n"), 0u);
  EXPECT_EQ(h.Run("r0 = 10\nr1 = 0\nr0 %= r1\nexit\n"), 0u);
}

TEST(Alu, UnsignedDivision) {
  Harness h;
  // -1 as u64 / 2.
  EXPECT_EQ(h.Run("r0 = -1\nr1 = 2\nr0 /= r1\nexit\n"),
            0xffffffffffffffffull / 2);
}

TEST(Alu, Alu32TruncatesAndZeroExtends) {
  Harness h;
  // w-register add wraps at 32 bits and clears the upper half.
  EXPECT_EQ(h.Run(R"(
    r0 = -1
    w0 += 1
    exit
  )"), 0u);
  EXPECT_EQ(h.Run(R"(
    r0 = -1
    w0 = 5
    exit
  )"), 5u);
}

TEST(Alu, ArithmeticShiftPreservesSign) {
  Harness h;
  EXPECT_EQ(h.Run("r0 = -8\nr0 s>>= 1\nexit\n"),
            static_cast<std::uint64_t>(-4));
  EXPECT_EQ(h.Run("r0 = -8\nr0 >>= 1\nexit\n"),
            static_cast<std::uint64_t>(-8) >> 1);
}

TEST(Alu, Alu32ArshOperatesOn32Bits) {
  Harness h;
  // 0x80000000 s>> 4 in 32-bit = 0xf8000000, zero-extended.
  EXPECT_EQ(h.Run(R"(
    r0 = 1
    r0 <<= 31
    w0 s>>= 4
    exit
  )"), 0xf8000000u);
}

TEST(Alu, NegateWorks) {
  Harness h;
  EXPECT_EQ(h.Run("r0 = 5\nr0 = -r0\nexit\n"),
            static_cast<std::uint64_t>(-5));
}

TEST(Alu, MulWrapsAt64Bits) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r0 = imm64 0x8000000000000000
    r1 = 2
    r0 *= r1
    exit
  )"), 0u);
}

TEST(Alu, ShiftByRegisterMasked) {
  Harness h;
  // Shift count is masked to 63 for 64-bit ops.
  EXPECT_EQ(h.Run("r0 = 1\nr1 = 65\nr0 <<= r1\nexit\n"), 2u);
}

// ---- branches ----

struct CondCase {
  const char* cond;
  std::int64_t lhs;
  std::int64_t rhs;
  bool taken;
};

class BranchSemantics : public ::testing::TestWithParam<CondCase> {};

TEST_P(BranchSemantics, EvaluatesCorrectly) {
  const CondCase& c = GetParam();
  Harness h;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "r1 = imm64 %lld\nr2 = imm64 %lld\n"
                "if r1 %s r2 goto yes\nr0 = 0\nexit\nyes:\nr0 = 1\nexit\n",
                static_cast<long long>(c.lhs), static_cast<long long>(c.rhs),
                c.cond);
  EXPECT_EQ(h.Run(buf), c.taken ? 1u : 0u)
      << c.lhs << " " << c.cond << " " << c.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchSemantics,
    ::testing::Values(
        CondCase{"==", 5, 5, true}, CondCase{"==", 5, 6, false},
        CondCase{"!=", 5, 6, true}, CondCase{"!=", 5, 5, false},
        // Unsigned comparisons treat -1 as max u64.
        CondCase{">", -1, 1, true}, CondCase{"<", -1, 1, false},
        CondCase{">=", 7, 7, true}, CondCase{"<=", 7, 7, true},
        CondCase{">", 7, 7, false}, CondCase{"<", 7, 7, false},
        // Signed comparisons see -1 < 1.
        CondCase{"s>", -1, 1, false}, CondCase{"s<", -1, 1, true},
        CondCase{"s>=", -3, -3, true}, CondCase{"s<=", -3, -2, true},
        CondCase{"s>", 2, -2, true}, CondCase{"s<", 2, -2, false},
        // JSET: bitwise-and test.
        CondCase{"&", 0b1100, 0b0100, true},
        CondCase{"&", 0b1100, 0b0011, false}));

// ---- memory ----

TEST(Memory, SubWordLoadsZeroExtend) {
  Harness h;
  ASSERT_TRUE(h.mem.StoreInt(h.opts.ctx_addr, 8, 0xffeeddccbbaa9988ull).ok());
  EXPECT_EQ(h.Run("r0 = *(u8*)(r1 + 0)\nexit\n"), 0x88u);
  EXPECT_EQ(h.Run("r0 = *(u16*)(r1 + 0)\nexit\n"), 0x9988u);
  EXPECT_EQ(h.Run("r0 = *(u32*)(r1 + 0)\nexit\n"), 0xbbaa9988u);
  EXPECT_EQ(h.Run("r0 = *(u64*)(r1 + 0)\nexit\n"), 0xffeeddccbbaa9988ull);
}

TEST(Memory, SubWordStoresTruncate) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0x1122334455667788
    *(u64*)(r10 - 8) = r1
    r2 = imm64 0xaaaaaaaaaaaaaaaa
    *(u16*)(r10 - 8) = r2
    r0 = *(u64*)(r10 - 8)
    exit
  )"), 0x112233445566aaaaull);
}

TEST(Memory, StackReadsBackWrites) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r1 = 12345
    *(u64*)(r10 - 16) = r1
    *(u32*)(r10 - 24) = 99
    r0 = *(u64*)(r10 - 16)
    r2 = *(u32*)(r10 - 24)
    r0 += r2
    exit
  )"), 12444u);
}

TEST(Memory, OutOfSpaceAccessFailsAtRuntime) {
  Harness h;
  // Unverified program reading far outside the address space: the
  // interpreter's defensive bounds check catches it.
  auto insns = Assemble(R"(
    r1 = imm64 0x999999999
    r0 = *(u64*)(r1 + 0)
    exit
  )");
  ASSERT_TRUE(insns.ok());
  EXPECT_FALSE(Interpret(insns.value(), h.rt, h.opts).ok());
}

// ---- runtime guards ----

TEST(Guards, InstructionLimitAborts) {
  Harness h;
  auto insns = Assemble(R"(
  top:
    r0 += 1
    goto top
  )");
  ASSERT_TRUE(insns.ok());
  h.opts.insn_limit = 1000;
  auto result = Interpret(insns.value(), h.rt, h.opts);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Guards, FallingOffTheEndAborts) {
  Harness h;
  std::vector<Insn> insns = {MovImm(0, 1)};  // no exit
  EXPECT_FALSE(Interpret(insns, h.rt, h.opts).ok());
}

TEST(Guards, UnknownHelperFailsAtRuntime) {
  Harness h;
  auto insns = Assemble("call 9999\nexit\n");
  ASSERT_TRUE(insns.ok());
  EXPECT_FALSE(Interpret(insns.value(), h.rt, h.opts).ok());
}

// ---- helpers ----

TEST(Helpers, CallClobbersR1toR5) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r6 = 111
    r1 = 5
    r2 = 5
    call trace_printk
    r0 = r1
    r0 += r2
    r0 += r6
    exit
  )"), 111u);
  EXPECT_EQ(h.rt.trace_count, 1u);
}

TEST(Helpers, KtimeComesFromContext) {
  Harness h;
  h.rt.ktime_ns = [] { return 123456ull; };
  EXPECT_EQ(h.Run("call ktime_get_ns\nexit\n"), 123456u);
}

TEST(Helpers, PrandomIsDeterministicPerSeed) {
  Harness h1, h2;
  const std::uint64_t a = h1.Run("call get_prandom_u32\nexit\n");
  const std::uint64_t b = h2.Run("call get_prandom_u32\nexit\n");
  EXPECT_EQ(a, b);  // same seed
  EXPECT_LE(a, 0xffffffffull);
}

TEST(Helpers, SmpProcessorId) {
  Harness h;
  h.rt.processor_id = 7;
  EXPECT_EQ(h.Run("call get_smp_processor_id\nexit\n"), 7u);
}

TEST(Helpers, MapDeleteRemovesEntry) {
  Harness h;
  const MapSpec spec{"m", MapType::kHash, 4, 8, 16};
  const std::uint64_t map_addr = h.AddMap(spec);
  auto insns = Assemble(R"(
    *(u32*)(r10 - 4) = 42
    *(u64*)(r10 - 16) = 7
    r1 = map 0
    r2 = r10
    r2 += -4
    r3 = r10
    r3 += -16
    r4 = 0
    call map_update_elem
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_delete_elem
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    exit
  )");
  ASSERT_TRUE(insns.ok());
  std::vector<Insn> resolved = insns.value();
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i].IsLdImm64() && resolved[i].src_reg == kPseudoMapFd) {
      resolved[i].src_reg = 0;
      resolved[i].imm = static_cast<std::int32_t>(map_addr & 0xffffffff);
      resolved[i + 1].imm = static_cast<std::int32_t>(map_addr >> 32);
    }
  }
  auto result = Interpret(resolved, h.rt, h.opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 0u);  // lookup after delete returns NULL
}

TEST(Helpers, RingbufOutputFromExtension) {
  Harness h;
  const MapSpec spec{"rb", MapType::kRingBuf, 0, 16, 8};
  const std::uint64_t map_addr = h.AddMap(spec);
  auto insns = Assemble(R"(
    r6 = imm64 0xcafebabe
    *(u64*)(r10 - 8) = r6
    r1 = map 0
    r2 = r10
    r2 += -8
    r3 = 8
    r4 = 0
    call ringbuf_output
    exit
  )");
  ASSERT_TRUE(insns.ok());
  std::vector<Insn> resolved = insns.value();
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i].IsLdImm64() && resolved[i].src_reg == kPseudoMapFd) {
      resolved[i].src_reg = 0;
      resolved[i].imm = static_cast<std::int32_t>(map_addr & 0xffffffff);
      resolved[i + 1].imm = static_cast<std::int32_t>(map_addr >> 32);
    }
  }
  auto result = Interpret(resolved, h.rt, h.opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 0u);

  MapView view(h.mem.SpanAt(map_addr, MapRequiredBytes(spec)).value());
  auto records = view.RingConsume();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(LoadLE<std::uint64_t>((*records)[0].data()), 0xcafebabeull);
}

// ---- JMP32 and byte-swap (BPF_END) ----

TEST(Jmp32, ComparesOnlyLow32Bits) {
  Harness h;
  // Upper bits differ; low 32 bits equal -> 32-bit compare is taken.
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0x100000005
    r2 = imm64 0x200000005
    if w1 == w2 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )"), 1u);
  // The 64-bit compare on the same values is not taken.
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0x100000005
    r2 = imm64 0x200000005
    if r1 == r2 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )"), 0u);
}

TEST(Jmp32, SignedUsesBit31) {
  Harness h;
  // 0xffffffff as a 32-bit signed value is -1, so w1 s< 0 holds even
  // though the full 64-bit register is a small positive number.
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0xffffffff
    if w1 s< 0 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )"), 1u);
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0xffffffff
    if r1 s< 0 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )"), 0u);
}

TEST(Jmp32, UnsignedImmediateCompare) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r1 = imm64 0x1fffffff0
    if w1 > 100 goto yes
    r0 = 0
    exit
  yes:
    r0 = 1
    exit
  )"), 1u);  // low 32 = 0xfffffff0 > 100 unsigned
}

TEST(Endian, Be16SwapsAndTruncates) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r0 = imm64 0x1122334455667788
    r0 = be16 r0
    exit
  )"), 0x8877u);
}

TEST(Endian, Le16TruncatesOnly) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r0 = imm64 0x1122334455667788
    r0 = le16 r0
    exit
  )"), 0x7788u);
}

TEST(Endian, Be32AndBe64) {
  Harness h;
  EXPECT_EQ(h.Run(R"(
    r0 = imm64 0x1122334455667788
    r0 = be32 r0
    exit
  )"), 0x88776655u);
  EXPECT_EQ(h.Run(R"(
    r0 = imm64 0x1122334455667788
    r0 = be64 r0
    exit
  )"), 0x8877665544332211ull);
}

TEST(Endian, NetworkByteOrderIdiom) {
  Harness h;
  // Read a big-endian u16 "port" from the packet and compare natively.
  ASSERT_TRUE(h.mem.StoreInt(h.opts.ctx_addr, 2, 0x5000).ok());  // BE 80
  EXPECT_EQ(h.Run(R"(
    r0 = *(u16*)(r1 + 0)
    r0 = be16 r0
    exit
  )"), 0x0050u);
}

// ---- interpreter/JIT divergence (property test) ----

struct DivergenceParam {
  std::size_t insns;
  std::uint64_t seed;
};

class InterpreterJitDivergence
    : public ::testing::TestWithParam<DivergenceParam> {};

TEST_P(InterpreterJitDivergence, IdenticalResults) {
  const auto& param = GetParam();
  Program prog = GenerateProgram(
      {.target_insns = param.insns, .seed = param.seed});
  ASSERT_TRUE(Verifier().Verify(prog).ok());

  auto run_interp = [&](std::uint32_t ctx_word) {
    Harness h;
    const std::uint64_t map_addr = h.AddMap(prog.maps[0]);
    (void)h.mem.StoreInt(h.opts.ctx_addr, 4, ctx_word);
    std::vector<Insn> resolved = prog.insns;
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      if (resolved[i].IsLdImm64() && resolved[i].src_reg == kPseudoMapFd) {
        resolved[i].src_reg = 0;
        resolved[i].imm = static_cast<std::int32_t>(map_addr & 0xffffffff);
        resolved[i + 1].imm = static_cast<std::int32_t>(map_addr >> 32);
      }
    }
    return Interpret(resolved, h.rt, h.opts);
  };
  auto run_jit = [&](std::uint32_t ctx_word) {
    Harness h;
    const std::uint64_t map_addr = h.AddMap(prog.maps[0]);
    (void)h.mem.StoreInt(h.opts.ctx_addr, 4, ctx_word);
    auto image = JitCompiler().Compile(prog);
    EXPECT_TRUE(image.ok());
    for (const Relocation& reloc : image->relocs) {
      if (reloc.kind == RelocKind::kMapAddress) {
        image->code[reloc.index].imm64 = map_addr;
      }
    }
    return RunJit(*image, h.rt, h.opts);
  };

  for (std::uint32_t ctx : {0u, 1u, 0xffffu, 0xdeadbeefu}) {
    auto a = run_interp(ctx);
    auto b = run_jit(ctx);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->r0, b->r0) << "ctx=" << ctx;
    EXPECT_EQ(a->insns_executed, b->insns_executed) << "ctx=" << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, InterpreterJitDivergence,
    ::testing::Values(DivergenceParam{200, 1}, DivergenceParam{200, 2},
                      DivergenceParam{500, 3}, DivergenceParam{500, 4},
                      DivergenceParam{1500, 5}, DivergenceParam{1500, 6},
                      DivergenceParam{4000, 7}, DivergenceParam{4000, 8},
                      DivergenceParam{12000, 9}, DivergenceParam{12000, 10}));

// ---- encode/decode round-trip property ----

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, ProgramSurvivesWireFormat) {
  Program prog = GenerateProgram({.target_insns = 800, .seed = GetParam()});
  const Bytes wire = prog.Encode();
  auto decoded = DecodeProgram(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), prog.insns.size());
  EXPECT_EQ(EncodeProgram(*decoded), wire);
  // Disassembly is total (never crashes) over generated programs.
  EXPECT_FALSE(DisassembleProgram(*decoded).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace rdx::bpf
