// Mesh simulation tests: app topology generation, request traversal,
// workload metrics, BBU buffering, and mixed-version accounting.
#include <gtest/gtest.h>

#include "mesh/mesh.h"

namespace rdx::mesh {
namespace {

// ---- AppSpec ----

TEST(AppSpec, GeneratedAppsHaveRequestedSize) {
  for (int n : {4, 11, 17, 33}) {
    AppSpec app = AppSpec::Generate("a", n, 1);
    EXPECT_EQ(app.size(), static_cast<std::size_t>(n));
  }
}

TEST(AppSpec, EveryServiceReachableFromIngress) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AppSpec app = AppSpec::Generate("a", 17, seed);
    const std::vector<int> order = app.TraversalOrder();
    EXPECT_EQ(order.size(), app.size()) << "seed " << seed;
  }
}

TEST(AppSpec, TraversalStartsAtIngressWithoutRepeats) {
  AppSpec app = AppSpec::Generate("a", 11, 3);
  const std::vector<int> order = app.TraversalOrder();
  EXPECT_EQ(order.front(), app.ingress);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(AppSpec, EdgesOnlyPointForward) {
  // The generator builds DAGs by construction: callee index > caller.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AppSpec app = AppSpec::Generate("a", 33, seed);
    for (std::size_t i = 0; i < app.size(); ++i) {
      for (int callee : app.services[i].downstream) {
        EXPECT_GT(callee, static_cast<int>(i));
        EXPECT_LT(callee, static_cast<int>(app.size()));
      }
    }
  }
}

TEST(AppSpec, WavesCoverAllServicesOnce) {
  AppSpec app = AppSpec::Generate("a", 33, 7);
  auto waves = app.DependencyWaves();
  std::vector<bool> seen(app.size(), false);
  for (const auto& wave : waves) {
    for (std::size_t svc : wave) {
      EXPECT_FALSE(seen[svc]);
      seen[svc] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(AppSpec, WavesRespectDependencies) {
  // A callee must appear in an earlier-or-equal wave than its caller
  // (waves are ordered deepest-first so callees update before callers).
  AppSpec app = AppSpec::Generate("a", 17, 9);
  auto waves = app.DependencyWaves();
  std::vector<int> wave_of(app.size(), -1);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (std::size_t svc : waves[w]) wave_of[svc] = static_cast<int>(w);
  }
  for (std::size_t i = 0; i < app.size(); ++i) {
    for (int callee : app.services[i].downstream) {
      EXPECT_LT(wave_of[callee], wave_of[i])
          << "callee " << callee << " of " << i;
    }
  }
}

TEST(AppSpec, PaperAppsMatchFigure2b) {
  auto apps = AppSpec::PaperApps();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].size(), 4u);
  EXPECT_EQ(apps[1].size(), 11u);
  EXPECT_EQ(apps[2].size(), 17u);
  EXPECT_EQ(apps[3].size(), 33u);
}

// ---- MeshSim ----

struct MeshHarness {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<MeshSim> sim;

  explicit MeshHarness(int services = 4, double rate = 1000,
                       int cores = 24) {
    MeshConfig config;
    config.app = AppSpec::Generate("t", services, 5);
    config.request_rate_per_s = rate;
    config.cores_per_service = cores;
    sim = std::make_unique<MeshSim>(events, fabric, config);
  }
};

TEST(MeshSim, ServesOpenLoopTraffic) {
  MeshHarness h;
  h.sim->StartWorkload();
  h.events.RunUntil(sim::Seconds(1));
  h.sim->StopWorkload();
  MeshMetrics metrics = h.sim->TakeMetrics();
  EXPECT_NEAR(static_cast<double>(metrics.completed), 1000, 150);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_NEAR(metrics.CompletionRatePerSec(), 1000, 150);
  EXPECT_GT(metrics.latency_ns.Percentile(0.5), 0u);
}

TEST(MeshSim, EveryServiceExecutesEachRequest) {
  MeshHarness h(6);
  h.sim->StartWorkload();
  h.events.RunUntil(sim::Millis(500));
  h.sim->StopWorkload();
  h.events.Run();
  MeshMetrics metrics = h.sim->TakeMetrics();
  for (std::size_t i = 0; i < h.sim->size(); ++i) {
    // Hooks are empty, so execution count stays 0 — but the CPU ran.
    EXPECT_GT(h.sim->cpu(i).Utilization(), 0.0) << "service " << i;
  }
  EXPECT_GT(metrics.completed, 0u);
}

TEST(MeshSim, LatencyGrowsWithRequestRate) {
  MeshHarness light(4, 500);
  light.sim->StartWorkload();
  light.events.RunUntil(sim::Seconds(1));
  const auto light_metrics = light.sim->TakeMetrics();

  // mesh_request_cycles=68k => ~20us/hop; one core serves 50k hops/s, so
  // 45k req/s puts the nodes at ~90% and queueing delay dominates.
  MeshHarness heavy(4, 45000, /*cores=*/1);
  heavy.sim->StartWorkload();
  heavy.events.RunUntil(sim::Seconds(1));
  const auto heavy_metrics = heavy.sim->TakeMetrics();

  EXPECT_GT(heavy_metrics.latency_ns.Percentile(0.5),
            light_metrics.latency_ns.Percentile(0.5));
}

TEST(MeshSim, BufferingHoldsAndReleasesRequests) {
  MeshHarness h(4, 2000);
  h.sim->StartWorkload();
  h.events.RunUntil(sim::Millis(100));
  (void)h.sim->TakeMetrics();

  h.sim->BeginBuffering();
  h.events.RunUntil(h.events.Now() + sim::Millis(10));
  const std::size_t held = h.sim->BufferedCount();
  EXPECT_GT(held, 5u);   // ~20 arrivals in 10 ms at 2000/s
  EXPECT_LT(held, 60u);
  MeshMetrics during = h.sim->TakeMetrics();
  EXPECT_EQ(during.buffered_peak, held);

  h.sim->ReleaseBuffered();
  EXPECT_EQ(h.sim->BufferedCount(), 0u);
  h.events.RunUntil(h.events.Now() + sim::Millis(100));
  MeshMetrics after = h.sim->TakeMetrics();
  // The held requests complete after release.
  EXPECT_GE(after.completed, held);
}

TEST(MeshSim, SidecarHostHeaderRoundTrip) {
  SidecarHost host;
  host.BeginRequest(42);
  auto header = host.CallHost(0, 3, 0);  // get_header(3)
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(host.CallHost(1, 3, 999).ok());  // set_header(3, 999)
  EXPECT_EQ(host.CallHost(0, 3, 0).value(), 999u);
  // counter_incr accumulates.
  EXPECT_EQ(host.CallHost(2, 0, 0).value(), 1u);
  EXPECT_EQ(host.CallHost(2, 5, 0).value(), 6u);
  EXPECT_EQ(host.counter(), 6u);
  EXPECT_FALSE(host.CallHost(99, 0, 0).ok());
}

TEST(MeshSim, HeadersAreDeterministicPerRequest) {
  SidecarHost a, b;
  a.BeginRequest(7);
  b.BeginRequest(7);
  EXPECT_EQ(a.CallHost(0, 2, 0).value(), b.CallHost(0, 2, 0).value());
  b.BeginRequest(8);
  EXPECT_NE(a.CallHost(0, 2, 0).value(), b.CallHost(0, 2, 0).value());
}

}  // namespace
}  // namespace rdx::mesh
