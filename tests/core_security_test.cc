// §5 security layer tests: role-based gatekeeper + audit log, image
// signing end-to-end (sandbox refuses unsigned/forged images), and the
// remote Inspector detecting in-memory tampering.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "core/gatekeeper.h"
#include "core/inspector.h"

namespace rdx::core {
namespace {

// ---- Gatekeeper ----

TEST(Gatekeeper, RoleMatrix) {
  Gatekeeper gate;
  gate.AddPrincipal("alice", Role::kOperator);
  gate.AddPrincipal("bob", Role::kDeployer);
  gate.AddPrincipal("carol", Role::kObserver);

  // Operator: everything.
  for (Operation op : {Operation::kDeploy, Operation::kDetach,
                       Operation::kRollback, Operation::kXStateRead,
                       Operation::kXStateWrite, Operation::kLock,
                       Operation::kBroadcast}) {
    EXPECT_TRUE(gate.Authorize("alice", op).ok()) << OperationName(op);
  }
  // Deployer: deploy/detach/read only.
  EXPECT_TRUE(gate.Authorize("bob", Operation::kDeploy).ok());
  EXPECT_TRUE(gate.Authorize("bob", Operation::kDetach).ok());
  EXPECT_TRUE(gate.Authorize("bob", Operation::kXStateRead).ok());
  EXPECT_FALSE(gate.Authorize("bob", Operation::kRollback).ok());
  EXPECT_FALSE(gate.Authorize("bob", Operation::kXStateWrite).ok());
  EXPECT_FALSE(gate.Authorize("bob", Operation::kBroadcast).ok());
  // Observer: reads only.
  EXPECT_TRUE(gate.Authorize("carol", Operation::kXStateRead).ok());
  EXPECT_FALSE(gate.Authorize("carol", Operation::kDeploy).ok());
}

TEST(Gatekeeper, UnknownPrincipalDenied) {
  Gatekeeper gate;
  Status s = gate.Authorize("mallory", Operation::kXStateRead);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST(Gatekeeper, RemovedPrincipalDenied) {
  Gatekeeper gate;
  gate.AddPrincipal("alice", Role::kOperator);
  EXPECT_TRUE(gate.Authorize("alice", Operation::kDeploy).ok());
  EXPECT_TRUE(gate.RemovePrincipal("alice").ok());
  EXPECT_FALSE(gate.Authorize("alice", Operation::kDeploy).ok());
  EXPECT_FALSE(gate.RemovePrincipal("alice").ok());
}

TEST(Gatekeeper, InstructionBudgetEnforced) {
  Gatekeeper gate;
  gate.AddPrincipal("bob", Role::kDeployer, /*max_insns=*/5000);
  EXPECT_TRUE(gate.Authorize("bob", Operation::kDeploy, 4999).ok());
  EXPECT_EQ(gate.Authorize("bob", Operation::kDeploy, 5001).code(),
            StatusCode::kResourceExhausted);
  // Budget applies to deploy-class ops only.
  EXPECT_TRUE(gate.Authorize("bob", Operation::kXStateRead, 999999).ok());
}

TEST(Gatekeeper, AuditLogRecordsDecisions) {
  Gatekeeper gate;
  gate.AddPrincipal("carol", Role::kObserver);
  (void)gate.Authorize("carol", Operation::kXStateRead);
  (void)gate.Authorize("carol", Operation::kDeploy);
  (void)gate.Authorize("nobody", Operation::kDeploy);
  ASSERT_EQ(gate.audit_log().size(), 3u);
  EXPECT_TRUE(gate.audit_log()[0].allowed);
  EXPECT_FALSE(gate.audit_log()[1].allowed);
  EXPECT_FALSE(gate.audit_log()[2].allowed);
  EXPECT_EQ(gate.denied_count(), 2u);
  EXPECT_EQ(gate.audit_log()[1].principal, "carol");
}

// ---- signing primitives ----

TEST(Signing, RoundTrip) {
  Bytes image = {1, 2, 3, 4, 5};
  const std::uint64_t sig = SignImage(image, 0xabc123);
  EXPECT_TRUE(VerifyImageSignature(image, 0xabc123, sig));
}

TEST(Signing, WrongKeyFails) {
  Bytes image = {1, 2, 3};
  const std::uint64_t sig = SignImage(image, 111);
  EXPECT_FALSE(VerifyImageSignature(image, 222, sig));
}

TEST(Signing, TamperedImageFails) {
  Bytes image(256, 7);
  const std::uint64_t sig = SignImage(image, 42);
  image[100] ^= 1;
  EXPECT_FALSE(VerifyImageSignature(image, 42, sig));
}

// ---- end-to-end signing + inspection ----

struct SecureRig {
  static constexpr std::uint64_t kKey = 0x5ec2e7;

  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<Sandbox> sandbox;
  CodeFlow* flow = nullptr;

  explicit SecureRig(std::uint64_t cp_key = kKey,
                     std::uint64_t sandbox_key = kKey) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 64u << 20).id();
    ControlPlaneConfig config;
    config.signing_key = cp_key;
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id, config);
    rdma::Node& node = fabric.AddNode("n");
    SandboxConfig sandbox_config;
    sandbox_config.signing_key = sandbox_key;
    sandbox = std::make_unique<Sandbox>(events, node, sandbox_config);
    EXPECT_TRUE(sandbox->CtxInit().ok());
    auto reg = sandbox->CtxRegister();
    cp->CreateCodeFlow(*sandbox, reg.value(), [&](StatusOr<CodeFlow*> f) {
      if (f.ok()) flow = f.value();
    });
    events.Run();
    EXPECT_NE(flow, nullptr);
  }

  void Inject(std::uint64_t ret, int hook = 0) {
    bpf::Program prog;
    prog.name = "r" + std::to_string(ret);
    prog.insns =
        bpf::Assemble("r0 = " + std::to_string(ret) + "\nexit\n").value();
    bool done = false;
    cp->InjectExtension(*flow, prog, hook, [&](StatusOr<InjectTrace> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      done = true;
    });
    events.Run();
    ASSERT_TRUE(done);
  }
};

TEST(SigningEndToEnd, SignedImageExecutes) {
  SecureRig rig;
  rig.Inject(7);
  Bytes packet(4, 0);
  auto result = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 7u);
  EXPECT_EQ(rig.sandbox->stats().signature_failures, 0u);
}

TEST(SigningEndToEnd, UnsignedControlPlaneRejected) {
  // Control plane does not sign; sandbox requires signatures.
  SecureRig rig(/*cp_key=*/0, /*sandbox_key=*/SecureRig::kKey);
  rig.Inject(7);
  Bytes packet(4, 0);
  auto result = rig.sandbox->ExecuteHook(0, packet);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_GT(rig.sandbox->stats().signature_failures, 0u);
}

TEST(SigningEndToEnd, KeyMismatchRejected) {
  SecureRig rig(/*cp_key=*/1, /*sandbox_key=*/2);
  rig.Inject(7);
  Bytes packet(4, 0);
  EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
}

TEST(SigningEndToEnd, InMemoryTamperRejectedAtExecution) {
  SecureRig rig;
  rig.Inject(7);
  // An attacker with memory reach flips a bit in the deployed image. The
  // next (re)load must refuse it. Force a reload via version bump fake:
  // corrupt then clear the decoded-image cache via a refresh of a
  // changed desc — easiest is to tamper BEFORE first execution.
  const std::uint64_t desc =
      rig.sandbox->node().memory()
          .ReadU64(rig.flow->remote_view().hook_table_addr)
          .value();
  const std::uint64_t image_addr =
      rig.sandbox->node().memory().ReadU64(desc + kDescImageAddr).value();
  Bytes byte(1, 0xff);
  ASSERT_TRUE(
      rig.sandbox->node().memory().Write(image_addr + 9, byte).ok());
  Bytes packet(4, 0);
  EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
}

TEST(Inspector, HealthyDeploymentPasses) {
  SecureRig rig;
  rig.Inject(7);
  Inspector inspector(*rig.cp);
  bool done = false;
  inspector.Inspect(*rig.flow, 0, [&](StatusOr<InspectReport> report) {
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->deployed);
    EXPECT_TRUE(report->desc_matches);
    EXPECT_TRUE(report->version_matches);
    EXPECT_TRUE(report->checksum_ok);
    EXPECT_TRUE(report->signature_ok);
    EXPECT_TRUE(report->Healthy(/*signing_enabled=*/true));
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

TEST(Inspector, EmptyHookReportsNotDeployed) {
  SecureRig rig;
  Inspector inspector(*rig.cp);
  bool done = false;
  inspector.Inspect(*rig.flow, 3, [&](StatusOr<InspectReport> report) {
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->deployed);
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

TEST(Inspector, DetectsImageTampering) {
  SecureRig rig;
  rig.Inject(7);
  const std::uint64_t desc =
      rig.sandbox->node().memory()
          .ReadU64(rig.flow->remote_view().hook_table_addr)
          .value();
  const std::uint64_t image_addr =
      rig.sandbox->node().memory().ReadU64(desc + kDescImageAddr).value();
  Bytes byte(1, 0xaa);
  ASSERT_TRUE(
      rig.sandbox->node().memory().Write(image_addr + 12, byte).ok());

  Inspector inspector(*rig.cp);
  bool done = false;
  inspector.Inspect(*rig.flow, 0, [&](StatusOr<InspectReport> report) {
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->deployed);
    EXPECT_FALSE(report->checksum_ok);
    EXPECT_FALSE(report->signature_ok);
    EXPECT_FALSE(report->Healthy(true));
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

TEST(Inspector, DetectsHookHijack) {
  SecureRig rig;
  rig.Inject(7);
  // Attacker swings the hook slot to a desc the control plane never
  // committed (placed inside the registered scratchpad, where an RDMA-
  // capable attacker could write).
  auto& mem = rig.sandbox->node().memory();
  const ControlBlockView& cb = rig.flow->remote_view();
  const std::uint64_t rogue = cb.scratch_addr + cb.scratch_size - 256;
  ASSERT_TRUE(mem.WriteU64(rogue + kDescImageAddr, rogue).ok());
  ASSERT_TRUE(mem.WriteU64(rogue + kDescImageLen, 16).ok());
  ASSERT_TRUE(mem.WriteU64(rogue + kDescVersion, 99).ok());
  ASSERT_TRUE(
      mem.WriteU64(rig.flow->remote_view().hook_table_addr, rogue).ok());

  Inspector inspector(*rig.cp);
  bool done = false;
  inspector.Inspect(*rig.flow, 0, [&](StatusOr<InspectReport> report) {
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->deployed);
    EXPECT_FALSE(report->desc_matches);
    EXPECT_FALSE(report->version_matches);
    EXPECT_FALSE(report->Healthy(true));
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

TEST(Inspector, SweepFlagsOnlyUnhealthyHooks) {
  SecureRig rig;
  rig.Inject(1, 0);
  rig.Inject(2, 1);
  rig.Inject(3, 2);
  // Tamper with hook 1's image only.
  const std::uint64_t desc =
      rig.sandbox->node().memory()
          .ReadU64(rig.flow->remote_view().hook_table_addr + 8)
          .value();
  const std::uint64_t image_addr =
      rig.sandbox->node().memory().ReadU64(desc + kDescImageAddr).value();
  Bytes byte(1, 0x55);
  ASSERT_TRUE(
      rig.sandbox->node().memory().Write(image_addr + 10, byte).ok());

  Inspector inspector(*rig.cp);
  bool done = false;
  inspector.Sweep(*rig.flow, [&](StatusOr<std::vector<InspectReport>> bad) {
    ASSERT_TRUE(bad.ok()) << bad.status().ToString();
    ASSERT_EQ(bad->size(), 1u);
    EXPECT_EQ((*bad)[0].hook, 1);
    done = true;
  });
  rig.events.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace rdx::core
