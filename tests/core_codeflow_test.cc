// Integration tests of the RDX pipeline: sandbox boot (management stubs),
// CodeFlow creation, remote validate/JIT/link/deploy over the simulated
// fabric, XState, sync primitives, rollback, and collective broadcast.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "bpf/proggen.h"
#include "core/broadcast.h"
#include "core/codeflow.h"

namespace rdx::core {
namespace {

struct Cluster {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  rdma::Node* cp_node;
  ControlPlane* cp;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<CodeFlow*> flows;
  std::unique_ptr<ControlPlane> cp_owner;

  explicit Cluster(int nodes = 1, ControlPlaneConfig config = {}) {
    cp_node = &fabric.AddNode("control-plane", 64u << 20);
    cp_owner = std::make_unique<ControlPlane>(events, fabric, cp_node->id(),
                                              config);
    cp = cp_owner.get();
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("node" + std::to_string(i));
      auto sandbox = std::make_unique<Sandbox>(events, node, SandboxConfig{});
      EXPECT_TRUE(sandbox->CtxInit().ok());
      auto reg = sandbox->CtxRegister();
      EXPECT_TRUE(reg.ok());
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandbox, reg.value(),
                         [&flow](StatusOr<CodeFlow*> result) {
                           ASSERT_TRUE(result.ok())
                               << result.status().ToString();
                           flow = result.value();
                         });
      events.Run();
      EXPECT_NE(flow, nullptr);
      flows.push_back(flow);
      sandboxes.push_back(std::move(sandbox));
    }
  }

  // Runs the event queue until done-flag set (or queue drained).
  template <typename Fn>
  void RunUntil(Fn&& flag) {
    while (!flag() && !events.Empty()) events.Step();
  }
};

bpf::Program CounterProgram() {
  // Counts packets whose first byte is odd into map slot 0, returns the
  // first ctx byte.
  bpf::Program prog;
  prog.name = "counter";
  prog.maps.push_back({"counters", bpf::MapType::kArray, 4, 8, 4});
  auto insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
  out:
    r0 = r6
    exit
  )");
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

TEST(CodeFlowCreate, ReadsControlBlockAndSymbols) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  EXPECT_EQ(flow.remote_view().hook_count, 8u);
  EXPECT_GT(flow.remote_view().scratch_size, 0u);
  // Helper symbols exported by the sandbox are resolvable.
  EXPECT_TRUE(flow.Symbol(SymbolHash("helper:", bpf::kHelperMapLookupElem)).ok());
  EXPECT_TRUE(flow.Symbol(SymbolHashName("host:", "get_header")).ok());
  EXPECT_FALSE(flow.Symbol(SymbolHashName("host:", "nonexistent")).ok());
}

TEST(Inject, EndToEndDeployAndExecute) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  Sandbox& sandbox = *cluster.sandboxes[0];

  bpf::Program prog = CounterProgram();
  bool injected = false;
  InjectTrace trace;
  cluster.cp->InjectExtension(flow, prog, /*hook=*/0,
                              [&](StatusOr<InjectTrace> result) {
                                ASSERT_TRUE(result.ok())
                                    << result.status().ToString();
                                trace = result.value();
                                injected = true;
                              });
  cluster.events.Run();
  ASSERT_TRUE(injected);
  EXPECT_GT(trace.total, 0);
  EXPECT_GT(trace.image_bytes, 0u);
  EXPECT_FALSE(trace.compile_cache_hit);

  // The data plane executes the injected program.
  Bytes packet = {0x05, 0x00, 0x00, 0x00};
  auto result = sandbox.ExecuteHook(0, packet);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 5u);
  auto again = sandbox.ExecuteHook(0, packet);
  ASSERT_TRUE(again.ok());

  // Each execution bumped the counter map; read it back remotely.
  const std::uint64_t xstate_addr = flow.xstates().at("counters");
  Bytes key(4, 0);
  Bytes value;
  bool read_done = false;
  cluster.cp->XStateLookup(flow, xstate_addr, key,
                           [&](StatusOr<Bytes> v) {
                             ASSERT_TRUE(v.ok()) << v.status().ToString();
                             value = v.value();
                             read_done = true;
                           });
  cluster.events.Run();
  ASSERT_TRUE(read_done);
  ASSERT_EQ(value.size(), 8u);
  EXPECT_EQ(LoadLE<std::uint64_t>(value.data()), 2u);
}

TEST(Inject, SecondInjectionHitsCompileCache) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  bpf::Program prog = CounterProgram();

  bool first = false, second = false;
  InjectTrace trace2;
  cluster.cp->InjectExtension(flow, prog, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok());
    first = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(first);
  cluster.cp->InjectExtension(flow, prog, 1, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok());
    trace2 = r.value();
    second = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(second);
  EXPECT_TRUE(trace2.compile_cache_hit);
  EXPECT_GE(cluster.cp->compile_cache_hits(), 1u);
  // Cached injection skips verify+JIT: it must be far below a fresh one.
  EXPECT_LT(sim::ToMicros(trace2.validate + trace2.jit), 10.0);
}

TEST(Inject, RemoteXStateUpdateVisibleToDataPlane) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  Sandbox& sandbox = *cluster.sandboxes[0];

  bool injected = false;
  cluster.cp->InjectExtension(flow, CounterProgram(), 0,
                              [&](StatusOr<InjectTrace> r) {
                                ASSERT_TRUE(r.ok());
                                injected = true;
                              });
  cluster.events.Run();
  ASSERT_TRUE(injected);

  // Control plane seeds the counter to 100 via remote XState update.
  const std::uint64_t xstate_addr = flow.xstates().at("counters");
  Bytes key(4, 0);
  Bytes value(8, 0);
  StoreLE<std::uint64_t>(value.data(), 100);
  bool updated = false;
  cluster.cp->XStateUpdate(flow, xstate_addr, key, value, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    updated = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(updated);

  Bytes packet = {0x01, 0, 0, 0};
  ASSERT_TRUE(sandbox.ExecuteHook(0, packet).ok());
  bool read_done = false;
  cluster.cp->XStateLookup(flow, xstate_addr, key, [&](StatusOr<Bytes> v) {
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(LoadLE<std::uint64_t>(v->data()), 101u);
    read_done = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(read_done);
}

TEST(Rollback, RevertsToPreviousVersion) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  Sandbox& sandbox = *cluster.sandboxes[0];

  // v1 returns 1, v2 returns 2.
  bpf::Program v1, v2;
  v1.name = "v1";
  v1.insns = bpf::Assemble("r0 = 1\nexit\n").value();
  v2.name = "v2";
  v2.insns = bpf::Assemble("r0 = 2\nexit\n").value();

  int step = 0;
  cluster.cp->InjectExtension(flow, v1, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok());
    step = 1;
  });
  cluster.events.Run();
  ASSERT_EQ(step, 1);
  Bytes packet(4, 0);
  EXPECT_EQ(sandbox.ExecuteHook(0, packet)->r0, 1u);

  cluster.cp->InjectExtension(flow, v2, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok());
    step = 2;
  });
  cluster.events.Run();
  ASSERT_EQ(step, 2);
  EXPECT_EQ(sandbox.ExecuteHook(0, packet)->r0, 2u);

  // Microsecond rollback: no re-transfer, just a desc re-commit.
  const sim::SimTime before = cluster.events.Now();
  cluster.cp->Rollback(flow, 0, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    step = 3;
  });
  cluster.events.Run();
  ASSERT_EQ(step, 3);
  const sim::Duration rollback_time = cluster.events.Now() - before;
  EXPECT_LT(sim::ToMicros(rollback_time), 50.0);
  EXPECT_EQ(sandbox.ExecuteHook(0, packet)->r0, 1u);
}

TEST(SyncPrimitives, LockExcludesSecondOwner) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];

  bool locked = false;
  cluster.cp->Lock(flow, 7, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    locked = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(locked);

  // Second acquisition must be refused.
  bool refused = false;
  cluster.cp->Lock(flow, 8, [&](Status s) {
    EXPECT_EQ(s.code(), StatusCode::kAborted);
    refused = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(refused);
  // Local CPU also sees it held.
  EXPECT_FALSE(cluster.sandboxes[0]->TryLockLocal(9));

  bool unlocked = false;
  cluster.cp->Unlock(flow, 7, [&](Status s) {
    ASSERT_TRUE(s.ok());
    unlocked = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(unlocked);
  EXPECT_TRUE(cluster.sandboxes[0]->TryLockLocal(9));
  cluster.sandboxes[0]->UnlockLocal(9);
}

TEST(SyncPrimitives, TxLandsPayloadThenSwingsQword) {
  Cluster cluster;
  CodeFlow& flow = *cluster.flows[0];
  Sandbox& sandbox = *cluster.sandboxes[0];

  Bytes payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint64_t qword_addr = flow.remote_view().hook_table_addr + 8;
  std::uint64_t payload_addr = 0;
  cluster.cp->Tx(flow, payload, qword_addr, 0x1234,
                 [&](StatusOr<std::uint64_t> addr) {
                   ASSERT_TRUE(addr.ok()) << addr.status().ToString();
                   payload_addr = addr.value();
                 });
  cluster.events.Run();
  ASSERT_NE(payload_addr, 0u);
  Bytes landed(payload.size());
  ASSERT_TRUE(sandbox.node().memory().Read(payload_addr, landed).ok());
  EXPECT_EQ(landed, payload);
  EXPECT_EQ(sandbox.node().memory().ReadU64(qword_addr).value(), 0x1234u);
}

TEST(Broadcast, DeploysToAllNodesWithTightCommitWindow) {
  Cluster cluster(4);
  CollectiveCodeFlow group(*cluster.cp, cluster.flows);
  bpf::Program prog = CounterProgram();

  BroadcastResult result;
  bool done = false;
  group.Broadcast(prog, 0, nullptr, [&](StatusOr<BroadcastResult> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    result = r.value();
    done = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.nodes, 4u);
  // Parallel commits: the window between first and last commit is tiny
  // compared to the prepare phase.
  EXPECT_LT(result.commit_window, result.prepare_time);
  EXPECT_LT(sim::ToMicros(result.commit_window), 50.0);
  for (auto& sandbox : cluster.sandboxes) {
    Bytes packet = {0x09, 0, 0, 0};
    auto r = sandbox->ExecuteHook(0, packet);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->r0, 9u);
  }
}

TEST(VanillaMode, InPlaceRewriteCanTearImages) {
  ControlPlaneConfig vanilla;
  vanilla.use_tx = false;
  vanilla.use_cc_event = false;
  vanilla.chunk_bytes = 512;  // many WRs -> wide torn window
  Cluster cluster(1, vanilla);
  CodeFlow& flow = *cluster.flows[0];
  Sandbox& sandbox = *cluster.sandboxes[0];

  bpf::Program big = bpf::GenerateProgram({.target_insns = 6000, .seed = 2});
  bool done1 = false;
  cluster.cp->InjectExtension(flow, big, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    done1 = true;
  });
  cluster.events.Run();
  ASSERT_TRUE(done1);
  // Make the CPU's view current.
  sandbox.RefreshHooks();
  cluster.events.Run();
  Bytes packet(8, 1);
  ASSERT_TRUE(sandbox.ExecuteHook(0, packet).ok());

  // Second injection of different code overwrites the live image in
  // place. Execute mid-flight: the image must be detected as torn.
  bpf::Program big2 = bpf::GenerateProgram({.target_insns = 3000, .seed = 3});
  ASSERT_LT(3000u, 6000u);  // big2 must fit in big's region for in-place rewrite
  bool done2 = false;
  cluster.cp->InjectExtension(flow, big2, 0, [&](StatusOr<InjectTrace> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    done2 = true;
  });
  // Drive the simulation in 200 ns slices; in each slice the data-plane
  // CPU refreshes its hook view and executes — racing the in-flight
  // chunked rewrite.
  bool torn_seen = false;
  for (int steps = 0; steps < 100000 && !done2; ++steps) {
    cluster.events.RunUntil(cluster.events.Now() + 200);
    sandbox.ScheduleHookRefresh(0, 0);
    cluster.events.RunUntil(cluster.events.Now());
    auto r = sandbox.ExecuteHook(0, packet);
    if (!r.ok()) torn_seen = true;
  }
  cluster.events.Run();
  ASSERT_TRUE(done2);
  EXPECT_TRUE(torn_seen);
  EXPECT_GT(sandbox.stats().torn_image_failures, 0u);
}

}  // namespace
}  // namespace rdx::core
