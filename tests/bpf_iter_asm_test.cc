// Map iteration (get_next_key analog + Dump), assembler error handling,
// and disassembler golden-output checks.
#include <gtest/gtest.h>

#include <set>

#include "bpf/assembler.h"
#include "bpf/maps.h"

namespace rdx::bpf {
namespace {

Bytes Key32(std::uint32_t k) {
  Bytes key(4);
  StoreLE(key.data(), k);
  return key;
}

Bytes Value64(std::uint64_t v) {
  Bytes value(8);
  StoreLE(value.data(), v);
  return value;
}

// ---- NextKey / Dump ----

TEST(MapIteration, ArrayWalksAllIndices) {
  LocalMap map(MapSpec{"a", MapType::kArray, 4, 8, 5});
  Bytes key(4);
  Bytes prev;
  std::vector<std::uint32_t> seen;
  while (map.view().NextKey(prev, key).ok()) {
    seen.push_back(LoadLE<std::uint32_t>(key.data()));
    prev = key;
  }
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(MapIteration, EmptyHashExhaustsImmediately) {
  LocalMap map(MapSpec{"h", MapType::kHash, 4, 8, 8});
  Bytes key(4);
  EXPECT_EQ(map.view().NextKey({}, key).code(), StatusCode::kNotFound);
}

TEST(MapIteration, HashVisitsEveryKeyExactlyOnce) {
  LocalMap map(MapSpec{"h", MapType::kHash, 4, 8, 32});
  std::set<std::uint32_t> inserted;
  for (std::uint32_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(map.view().Update(Key32(k * 13), Value64(k)).ok());
    inserted.insert(k * 13);
  }
  std::set<std::uint32_t> seen;
  Bytes key(4);
  Bytes prev;
  while (map.view().NextKey(prev, key).ok()) {
    const std::uint32_t k = LoadLE<std::uint32_t>(key.data());
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
    prev = key;
  }
  EXPECT_EQ(seen, inserted);
}

TEST(MapIteration, SurvivesDeletionOfPrevKey) {
  LocalMap map(MapSpec{"h", MapType::kHash, 4, 8, 8});
  for (std::uint32_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(map.view().Update(Key32(k), Value64(k)).ok());
  }
  Bytes key(4);
  ASSERT_TRUE(map.view().NextKey({}, key).ok());
  Bytes first = key;
  // Delete the key we are iterating from; iteration restarts but still
  // terminates and yields live keys only.
  ASSERT_TRUE(map.view().Delete(first).ok());
  std::set<std::uint32_t> seen;
  Bytes prev = first;
  int guard = 0;
  while (map.view().NextKey(prev, key).ok() && guard++ < 100) {
    seen.insert(LoadLE<std::uint32_t>(key.data()));
    prev = key;
  }
  EXPECT_LT(guard, 100);
  EXPECT_EQ(seen.count(LoadLE<std::uint32_t>(first.data())), 0u);
  EXPECT_GE(seen.size(), 4u);
}

TEST(MapIteration, KeyBufferSizeChecked) {
  LocalMap map(MapSpec{"h", MapType::kHash, 4, 8, 8});
  Bytes small(2);
  EXPECT_FALSE(map.view().NextKey({}, small).ok());
}

TEST(MapDump, ReturnsAllPairs) {
  LocalMap map(MapSpec{"h", MapType::kHash, 4, 8, 16});
  for (std::uint32_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(map.view().Update(Key32(k), Value64(k * 7)).ok());
  }
  auto dump = map.view().Dump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  ASSERT_EQ(dump->size(), 10u);
  for (const auto& [key, value] : *dump) {
    EXPECT_EQ(LoadLE<std::uint64_t>(value.data()),
              LoadLE<std::uint32_t>(key.data()) * 7);
  }
}

TEST(MapDump, ArrayIncludesZeroSlots) {
  LocalMap map(MapSpec{"a", MapType::kArray, 4, 8, 3});
  ASSERT_TRUE(map.view().Update(Key32(1), Value64(42)).ok());
  auto dump = map.view().Dump();
  ASSERT_TRUE(dump.ok());
  ASSERT_EQ(dump->size(), 3u);
  EXPECT_EQ(LoadLE<std::uint64_t>((*dump)[0].second.data()), 0u);
  EXPECT_EQ(LoadLE<std::uint64_t>((*dump)[1].second.data()), 42u);
}

// ---- assembler error handling ----

TEST(AssemblerErrors, ReportLineNumbers) {
  auto result = Assemble("r0 = 1\nbogus statement here\nexit\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().ToString();
}

TEST(AssemblerErrors, RejectMalformedInput) {
  const char* bad[] = {
      "r11 = 1\nexit\n",              // register out of range
      "r0 = \nexit\n",                // missing operand
      "goto\n",                       // missing label
      "goto nowhere\nexit\n",         // unknown label
      "if r0 == goto x\nx:\nexit\n",  // missing operand
      "call made_up_helper\nexit\n",  // unknown helper name
      "r0 = *(u7*)(r1 + 0)\nexit\n",  // bad size
      "*(u32*)(r1 * 4) = 1\nexit\n",  // bad displacement operator
      "x:\nx:\nexit\n",               // duplicate label
      "r0 += q5\nexit\n",             // garbage operand
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Assemble(text).ok()) << text;
  }
}

TEST(AssemblerErrors, MixedWidthBranchOperandsRejected) {
  EXPECT_FALSE(Assemble("r1 = 1\nw2 = 1\nif r1 == w2 goto x\nx:\nexit\n")
                   .ok());
}

TEST(AssemblerRoundTrip, DisassembleOfAssembledMatchesShape) {
  auto insns = Assemble(R"(
    r6 = *(u32*)(r1 + 4)
    w7 = 10
    r6 &= 255
    if w6 s< 3 goto out
    r0 = be32 r0
    *(u64*)(r10 - 8) = r6
    r0 = *(u64*)(r10 - 8)
    exit
  out:
    r0 = 0
    exit
  )");
  ASSERT_TRUE(insns.ok()) << insns.status().ToString();
  const std::string text = DisassembleProgram(insns.value());
  EXPECT_NE(text.find("r6 = *(u32*)(r1 +4)"), std::string::npos) << text;
  EXPECT_NE(text.find("r7 = 10 (w)"), std::string::npos) << text;
  EXPECT_NE(text.find("if w6 s< 3 goto"), std::string::npos) << text;
  EXPECT_NE(text.find("r0 = be32 r0"), std::string::npos) << text;
  EXPECT_NE(text.find("exit"), std::string::npos) << text;
}

TEST(Disassembler, GoldenLines) {
  EXPECT_EQ(Disassemble(MovImm(3, -7)), "r3 = -7");
  EXPECT_EQ(Disassemble(AluReg(kAluXor, 1, 2)), "r1 ^= r2");
  EXPECT_EQ(Disassemble(AluImm(kAluLsh, 4, 5, /*is64=*/false)),
            "r4 <<= 5 (w)");
  EXPECT_EQ(Disassemble(JmpImm(kJmpJsge, 2, -1, 5)),
            "if r2 s>= -1 goto +5");
  EXPECT_EQ(Disassemble(Jmp32Reg(kJmpJlt, 1, 2, -3)),
            "if w1 < w2 goto -3");
  EXPECT_EQ(Disassemble(Endian(5, 64, true)), "r5 = be64 r5");
  EXPECT_EQ(Disassemble(Call(1)), "call helper#1");
  EXPECT_EQ(Disassemble(Exit()), "exit");
  EXPECT_EQ(Disassemble(LoadMem(kSizeH, 0, 1, 12)),
            "r0 = *(u16*)(r1 +12)");
  EXPECT_EQ(Disassemble(StoreMemReg(kSizeDw, 10, 6, -16)),
            "*(u64*)(r10 -16) = r6");
  EXPECT_EQ(Disassemble(LoadMapFd(1, 2).first), "r1 = map[2]");
}

}  // namespace
}  // namespace rdx::bpf
