// Tests for the pipelined, doorbell-batched fleet deploy path:
// PostSendChain ordering/flush/amortization semantics, the
// content-addressed JIT artifact cache (hit/miss counters, blacklist
// eviction), and DeployPipelined straggler isolation under injected
// per-node drop faults.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bpf/assembler.h"
#include "core/broadcast.h"
#include "core/codeflow.h"
#include "core/reliability.h"
#include "fault/injector.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace rdx {
namespace {

using core::CodeFlow;
using core::CollectiveCodeFlow;
using core::ControlPlane;
using core::ControlPlaneConfig;
using core::DeploySpec;
using core::InjectTrace;
using core::PipelineOptions;
using core::PipelineResult;
using core::RecoveryManager;
using core::Sandbox;
using core::SandboxConfig;
using fault::FaultInjector;
using fault::ParseFaultPlan;
using rdma::Opcode;
using rdma::SendWr;
using rdma::WcStatus;

constexpr std::uint32_t kAllAccess =
    rdma::kAccessLocalWrite | rdma::kAccessRemoteRead |
    rdma::kAccessRemoteWrite | rdma::kAccessRemoteAtomic;

// ---- Raw-fabric rig for doorbell-chain semantics ----

struct TwoNodes {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  rdma::Node* a;
  rdma::Node* b;
  rdma::CompletionQueue* cq_a;
  rdma::CompletionQueue* cq_b;
  rdma::QueuePair* qp_a;
  rdma::QueuePair* qp_b;

  TwoNodes() {
    a = &fabric.AddNode("a", 8u << 20);
    b = &fabric.AddNode("b", 8u << 20);
    cq_a = &fabric.CreateCq(a->id());
    cq_b = &fabric.CreateCq(b->id());
    qp_a = &fabric.CreateQp(a->id(), *cq_a, *cq_a);
    qp_b = &fabric.CreateQp(b->id(), *cq_b, *cq_b);
    EXPECT_TRUE(fabric.Connect(*qp_a, *qp_b).ok());
  }

  std::pair<std::uint64_t, rdma::MemoryRegion> Buffer(rdma::Node& node,
                                                      std::uint64_t size,
                                                      std::uint32_t access) {
    const std::uint64_t addr = node.memory().Allocate(size, 8).value();
    const rdma::MemoryRegion mr =
        node.memory().Register(addr, size, access).value();
    return {addr, mr};
  }
};

// Builds `n` small writes a->b, each landing its index byte at dst+i.
std::vector<SendWr> IndexedWrites(TwoNodes& net, std::uint64_t src,
                                  rdma::MemoryKey lkey, std::uint64_t dst,
                                  rdma::MemoryKey rkey, int n) {
  std::vector<SendWr> wrs;
  for (int i = 0; i < n; ++i) {
    Bytes byte = {static_cast<std::uint8_t>(i + 1)};
    EXPECT_TRUE(net.a->memory().Write(src + i, byte).ok());
    SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i + 1);
    wr.opcode = Opcode::kWrite;
    wr.local = {src + i, 1, lkey};
    wr.remote_addr = dst + i;
    wr.rkey = rkey;
    wrs.push_back(wr);
  }
  return wrs;
}

TEST(DoorbellChain, CompletesInPostOrderAndDeliversPayloads) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 256, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
  auto wrs = IndexedWrites(net, src, src_mr.lkey, dst, dst_mr.rkey, 6);

  ASSERT_TRUE(net.qp_a->PostSendChain(wrs).ok());
  net.events.Run();

  // RC ordering: completions surface in post order, all successful.
  auto wcs = net.cq_a->Poll(16);
  ASSERT_EQ(wcs.size(), 6u);
  for (std::size_t i = 0; i < wcs.size(); ++i) {
    EXPECT_EQ(wcs[i].wr_id, i + 1);
    EXPECT_EQ(wcs[i].status, WcStatus::kSuccess);
    if (i > 0) {
      EXPECT_GE(wcs[i].completed_at, wcs[i - 1].completed_at);
    }
  }
  Bytes landed(6);
  ASSERT_TRUE(net.b->memory().Read(dst, landed).ok());
  EXPECT_EQ(landed, (Bytes{1, 2, 3, 4, 5, 6}));
  // The whole chain rang exactly one doorbell.
  EXPECT_EQ(net.fabric.doorbells_rung(), 1u);
  EXPECT_EQ(net.fabric.chained_wrs(), 6u);
}

// Link-model constants the amortization bound below tracks.
sim::Duration LinkDoorbell() { return sim::RdmaLink().doorbell_latency; }
sim::Duration LinkWqeFetch() { return sim::RdmaLink().wqe_fetch_latency; }

TEST(DoorbellChain, AmortizesDoorbellCostVsSinglePosts) {
  constexpr int kWrs = 16;
  sim::Duration chained = 0;
  sim::Duration singles = 0;
  {
    TwoNodes net;
    auto [src, src_mr] = net.Buffer(*net.a, 256, kAllAccess);
    auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
    auto wrs = IndexedWrites(net, src, src_mr.lkey, dst, dst_mr.rkey, kWrs);
    ASSERT_TRUE(net.qp_a->PostSendChain(wrs).ok());
    net.events.Run();
    ASSERT_EQ(net.cq_a->Poll(kWrs).size(), static_cast<std::size_t>(kWrs));
    chained = net.events.Now();
    EXPECT_EQ(net.fabric.doorbells_rung(), 1u);
  }
  {
    TwoNodes net;
    auto [src, src_mr] = net.Buffer(*net.a, 256, kAllAccess);
    auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
    auto wrs = IndexedWrites(net, src, src_mr.lkey, dst, dst_mr.rkey, kWrs);
    for (const SendWr& wr : wrs) ASSERT_TRUE(net.qp_a->PostSend(wr).ok());
    net.events.Run();
    ASSERT_EQ(net.cq_a->Poll(kWrs).size(), static_cast<std::size_t>(kWrs));
    singles = net.events.Now();
    EXPECT_EQ(net.fabric.doorbells_rung(), static_cast<std::uint64_t>(kWrs));
  }
  // The chain pays one doorbell + kWrs descriptor fetches; the singles
  // pay kWrs doorbells back to back. For tiny payloads posting dominates.
  EXPECT_LT(chained, singles);
  const sim::Duration saved = static_cast<sim::Duration>(kWrs - 1) *
                              (LinkDoorbell() - LinkWqeFetch());
  EXPECT_GE(singles - chained, saved / 2);
}

TEST(DoorbellChain, MidChainFailureFlushesRemainder) {
  TwoNodes net;
  auto [src, src_mr] = net.Buffer(*net.a, 256, kAllAccess);
  auto [dst, dst_mr] = net.Buffer(*net.b, 256, kAllAccess);
  auto wrs = IndexedWrites(net, src, src_mr.lkey, dst, dst_mr.rkey, 4);
  wrs[1].rkey = 0xdead;  // second WR faults on the remote key check

  ASSERT_TRUE(net.qp_a->PostSendChain(wrs).ok());
  net.events.Run();

  auto wcs = net.cq_a->Poll(16);
  ASSERT_EQ(wcs.size(), 4u);
  EXPECT_EQ(wcs[0].status, WcStatus::kSuccess);
  EXPECT_EQ(wcs[1].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(wcs[2].status, WcStatus::kWorkRequestFlushed);
  EXPECT_EQ(wcs[3].status, WcStatus::kWorkRequestFlushed);
  EXPECT_EQ(net.qp_a->state(), rdma::QpState::kError);

  // Posting another chain on the errored QP flushes it immediately.
  auto more = IndexedWrites(net, src, src_mr.lkey, dst, dst_mr.rkey, 2);
  EXPECT_FALSE(net.qp_a->PostSendChain(more).ok());
  auto flushed = net.cq_a->Poll(16);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].status, WcStatus::kWorkRequestFlushed);
  EXPECT_EQ(flushed[1].status, WcStatus::kWorkRequestFlushed);
}

// ---- Control-plane rig for cache + pipeline tests ----

struct Cluster {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<FaultInjector> injector;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<CodeFlow*> flows;

  explicit Cluster(int nodes, ControlPlaneConfig config = {}) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id, config);
    injector = std::make_unique<FaultInjector>(events, fabric);
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i));
      sandboxes.push_back(
          std::make_unique<Sandbox>(events, node, SandboxConfig{}));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      auto reg = sandboxes.back()->CtxRegister();
      EXPECT_TRUE(reg.ok());
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandboxes.back(), reg.value(),
                         [&flow](StatusOr<CodeFlow*> f) {
                           ASSERT_TRUE(f.ok()) << f.status().ToString();
                           flow = f.value();
                         });
      events.Run();
      EXPECT_NE(flow, nullptr);
      flows.push_back(flow);
    }
  }

  void Arm(const std::string& plan_text) {
    auto plan = ParseFaultPlan(plan_text);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(injector->Arm(plan.value()).ok());
  }

  template <typename Fn>
  void RunUntil(Fn&& flag) {
    while (!flag() && !events.Empty()) events.Step();
  }

  StatusOr<InjectTrace> Inject(int node, const bpf::Program& prog, int hook) {
    StatusOr<InjectTrace> out = Internal("inject never finished");
    bool done = false;
    cp->InjectExtension(*flows[node], prog, hook,
                        [&](StatusOr<InjectTrace> r) {
                          out = std::move(r);
                          done = true;
                        });
    RunUntil([&] { return done; });
    return out;
  }

  StatusOr<PipelineResult> Deploy(const std::vector<DeploySpec>& specs,
                                  const PipelineOptions& opts) {
    CollectiveCodeFlow collective(*cp, flows);
    StatusOr<PipelineResult> out = Internal("deploy never finished");
    bool done = false;
    collective.DeployPipelined(specs, opts, [&](StatusOr<PipelineResult> r) {
      out = std::move(r);
      done = true;
    });
    RunUntil([&] { return done; });
    return out;
  }
};

bpf::Program ArithProgram(int adds) {
  std::string src = "r0 = 0\n";
  for (int i = 1; i <= adds; ++i) src += "r0 += " + std::to_string(i) + "\n";
  src += "exit\n";
  bpf::Program prog;
  prog.name = "sum" + std::to_string(adds);
  auto insns = bpf::Assemble(src);
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

TEST(ArtifactCache, SecondDeploySkipsValidateAndJit) {
  Cluster cluster(2);
  telemetry::Tracer tracer(cluster.events);
  cluster.cp->SetTracer(&tracer);
  bpf::Program prog = ArithProgram(10);

  auto first = cluster.Inject(0, prog, /*hook=*/0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().compile_cache_hit);
  EXPECT_GT(first.value().jit, 0);

  // Same fingerprint to a different node: validate + JIT are both served
  // from the artifact cache, so their phases take zero virtual time and
  // no inject:jit span is emitted.
  auto second = cluster.Inject(1, prog, /*hook=*/0);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().compile_cache_hit);
  EXPECT_EQ(second.value().validate, 0);
  EXPECT_EQ(second.value().jit, 0);

  bool saw_jit_span = false;
  int jit_spans = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.name == "inject:jit") ++jit_spans;
  }
  saw_jit_span = jit_spans > 0;
  EXPECT_TRUE(saw_jit_span);   // the first deploy did compile
  EXPECT_EQ(jit_spans, 1);     // ...and only the first

  EXPECT_GE(cluster.cp->compile_cache_hits(), 1u);
  telemetry::MetricsRegistry reg;
  cluster.cp->ExportMetrics(reg);
  EXPECT_GE(reg.counter("cp.compile_cache_hits"), 1u);
  EXPECT_GE(reg.counter("cp.artifact_cache_entries"), 1u);
}

TEST(ArtifactCache, BlacklistEvictsCachedArtifact) {
  Cluster cluster(2);
  bpf::Program prog = ArithProgram(12);
  const std::uint64_t fp = core::ProgramFingerprint(prog);

  ASSERT_TRUE(cluster.Inject(0, prog, /*hook=*/1).ok());
  EXPECT_TRUE(cluster.cp->artifact_cache().ContainsEbpf(fp));

  // Quarantining the fingerprint must also evict the cached artifact so
  // a cache hit can never resurrect a quarantined program.
  cluster.cp->BlacklistFingerprint(fp);
  EXPECT_FALSE(cluster.cp->artifact_cache().ContainsEbpf(fp));
  EXPECT_GE(cluster.cp->artifact_cache().invalidations(), 1u);

  auto redeploy = cluster.Inject(1, prog, /*hook=*/1);
  EXPECT_FALSE(redeploy.ok());
  EXPECT_EQ(redeploy.status().code(), StatusCode::kPermissionDenied);
}

TEST(PipelinedDeploy, CommitsAllWavesOnAllNodes) {
  Cluster cluster(4);
  bpf::Program a = ArithProgram(8);
  bpf::Program b = ArithProgram(9);
  std::vector<DeploySpec> specs = {{&a, 0}, {&b, 1}};

  auto result = cluster.Deploy(specs, PipelineOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PipelineResult& pr = result.value();
  EXPECT_EQ(pr.stragglers, 0u);
  ASSERT_EQ(pr.waves.size(), 2u);
  ASSERT_EQ(pr.nodes.size(), 4u);
  for (const auto& wave : pr.waves) EXPECT_EQ(wave.committed, 4u);
  for (const auto& node : pr.nodes) {
    EXPECT_TRUE(node.status.ok());
    EXPECT_EQ(node.waves_committed, 2u);
  }
  for (CodeFlow* flow : cluster.flows) {
    EXPECT_EQ(flow->HookVersion(0), 1u);
    EXPECT_EQ(flow->HookVersion(1), 1u);
  }
}

TEST(PipelinedDeploy, RedeployHitsArtifactCachePerWave) {
  Cluster cluster(3);
  bpf::Program prog = ArithProgram(14);
  std::vector<DeploySpec> specs = {{&prog, 2}};

  auto first = cluster.Deploy(specs, PipelineOptions{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().waves[0].compile_cache_hit);
  EXPECT_GT(first.value().waves[0].compile, 0);

  auto again = cluster.Deploy(specs, PipelineOptions{});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value().waves[0].compile_cache_hit);
  EXPECT_EQ(again.value().waves[0].compile, 0);
}

TEST(PipelinedDeploy, BlacklistedWaveFailsWholeDeploy) {
  Cluster cluster(2);
  bpf::Program prog = ArithProgram(11);
  cluster.cp->BlacklistFingerprint(core::ProgramFingerprint(prog));
  std::vector<DeploySpec> specs = {{&prog, 0}};

  auto result = cluster.Deploy(specs, PipelineOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST(PipelinedDeploy, StragglerIsQuarantinedWithoutStallingWave) {
  Cluster cluster(4);
  // Node 2's NIC drops everything: its deploy fans out, times out, and
  // the node must be quarantined while the other three commit.
  char plan[128];
  std::snprintf(plan, sizeof(plan), "seed 7\ndrop node=%u at=0 for=10s p=1",
                cluster.sandboxes[2]->node().id());
  cluster.Arm(plan);

  bpf::Program a = ArithProgram(8);
  bpf::Program b = ArithProgram(9);
  std::vector<DeploySpec> specs = {{&a, 0}, {&b, 1}};
  auto result = cluster.Deploy(specs, PipelineOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const PipelineResult& pr = result.value();
  EXPECT_EQ(pr.stragglers, 1u);
  ASSERT_EQ(pr.nodes.size(), 4u);
  for (std::size_t i = 0; i < pr.nodes.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(pr.nodes[i].status.ok());
      EXPECT_EQ(pr.nodes[i].failed_wave, 0);
      EXPECT_EQ(pr.nodes[i].waves_committed, 0u);
    } else {
      EXPECT_TRUE(pr.nodes[i].status.ok());
      EXPECT_EQ(pr.nodes[i].waves_committed, 2u);
      EXPECT_EQ(cluster.flows[i]->HookVersion(0), 1u);
      EXPECT_EQ(cluster.flows[i]->HookVersion(1), 1u);
    }
  }
  // The straggler never took either commit.
  EXPECT_EQ(cluster.flows[2]->HookVersion(0), 0u);
  EXPECT_EQ(cluster.flows[2]->HookVersion(1), 0u);
  for (const auto& wave : pr.waves) EXPECT_EQ(wave.committed, 3u);
}

TEST(PipelinedDeploy, WithoutIsolationStragglerFailsDeploy) {
  Cluster cluster(3);
  char plan[128];
  std::snprintf(plan, sizeof(plan), "seed 7\ndrop node=%u at=0 for=10s p=1",
                cluster.sandboxes[1]->node().id());
  cluster.Arm(plan);

  bpf::Program prog = ArithProgram(8);
  std::vector<DeploySpec> specs = {{&prog, 0}};
  PipelineOptions opts;
  opts.isolate_stragglers = false;
  auto result = cluster.Deploy(specs, opts);
  EXPECT_FALSE(result.ok());
}

TEST(PipelinedDeploy, StragglerRetriedInBackgroundViaRecovery) {
  Cluster cluster(3);
  // Drop window ends at 200ms; the background retry path keeps trying
  // past it and eventually lands the deploy on the straggler.
  char plan[128];
  std::snprintf(plan, sizeof(plan), "seed 7\ndrop node=%u at=0 for=200ms p=1",
                cluster.sandboxes[1]->node().id());
  cluster.Arm(plan);

  // Dropped WRs fail fast (retry-exceeded, not a deadline), so stretch
  // the backoff until the retry schedule outlives the drop window.
  core::RetryPolicy policy;
  policy.max_retries = 12;
  policy.base_backoff = sim::Millis(1);
  RecoveryManager recovery(*cluster.cp, policy);
  bpf::Program prog = ArithProgram(8);
  std::vector<DeploySpec> specs = {{&prog, 0}};
  PipelineOptions opts;
  opts.recovery = &recovery;

  auto result = cluster.Deploy(specs, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stragglers, 1u);
  EXPECT_TRUE(result.value().nodes[1].retried_in_background);

  // Drain the background recovery; the straggler converges.
  cluster.events.Run();
  EXPECT_EQ(cluster.flows[1]->HookVersion(0), 1u);
}

TEST(PipelinedDeploy, PipeliningBeatsSerialSchedule) {
  bpf::Program a = ArithProgram(16);
  bpf::Program b = ArithProgram(17);
  bpf::Program c = ArithProgram(18);

  sim::Duration pipelined = 0;
  sim::Duration serial = 0;
  {
    Cluster cluster(8);
    std::vector<DeploySpec> specs = {{&a, 0}, {&b, 1}, {&c, 2}};
    auto r = cluster.Deploy(specs, PipelineOptions{});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    pipelined = r.value().total;
  }
  {
    Cluster cluster(8);
    std::vector<DeploySpec> specs = {{&a, 0}, {&b, 1}, {&c, 2}};
    PipelineOptions opts;
    opts.pipelined = false;
    auto r = cluster.Deploy(specs, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial = r.value().total;
  }
  // Wave k+1's compile overlaps wave k's transfer+commit.
  EXPECT_LT(pipelined, serial);
}

}  // namespace
}  // namespace rdx
