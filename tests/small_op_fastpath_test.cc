// Property tests for the small-op fast path: inline WQE payloads must be
// an observational no-op relative to DMA-gathered payloads. For identical
// WR sequences — including under injected drop/NAK faults — the two modes
// must leave byte-identical destination memory and deliver the same
// completion sequence (wr_id order and statuses). Selective signaling may
// suppress success CQEs but must never change what lands in memory.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "rdma/fabric.h"

namespace rdx {
namespace {

using fault::FaultInjector;
using fault::ParseFaultPlan;

constexpr std::uint32_t kAllAccess =
    rdma::kAccessLocalWrite | rdma::kAccessRemoteRead |
    rdma::kAccessRemoteWrite | rdma::kAccessRemoteAtomic;

constexpr std::uint32_t kOpBytes = 32;
constexpr int kOps = 24;

// A two-node fabric with one RC QP pair and a pre-filled source buffer.
// Each rig owns its own event queue so two rigs can replay the same
// schedule independently.
struct Rig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  rdma::Node* a = nullptr;
  rdma::Node* b = nullptr;
  rdma::CompletionQueue* cq = nullptr;
  rdma::QueuePair* qp = nullptr;
  std::uint64_t src = 0;
  rdma::MemoryRegion src_mr;
  std::uint64_t dst = 0;
  rdma::MemoryRegion dst_mr;
  std::unique_ptr<FaultInjector> injector;

  Rig() {
    a = &fabric.AddNode("a", 1 << 20);
    b = &fabric.AddNode("b", 1 << 20);
    cq = &fabric.CreateCq(a->id());
    rdma::CompletionQueue& rcq = fabric.CreateCq(b->id());
    qp = &fabric.CreateQp(a->id(), *cq, *cq);
    rdma::QueuePair& rqp = fabric.CreateQp(b->id(), rcq, rcq);
    EXPECT_TRUE(fabric.Connect(*qp, rqp).ok());

    src = a->memory().Allocate(kOps * kOpBytes, 8).value();
    src_mr =
        a->memory().Register(src, kOps * kOpBytes, kAllAccess).value();
    dst = b->memory().Allocate(kOps * kOpBytes, 8).value();
    dst_mr =
        b->memory().Register(dst, kOps * kOpBytes, kAllAccess).value();
    Bytes fill(kOps * kOpBytes);
    for (std::size_t i = 0; i < fill.size(); ++i) {
      fill[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xff);
    }
    EXPECT_TRUE(a->memory().Write(src, fill).ok());
  }

  void Arm(const std::string& plan_text) {
    injector = std::make_unique<FaultInjector>(events, fabric);
    auto plan = ParseFaultPlan(plan_text);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(injector->Arm(plan.value()).ok());
  }

  rdma::SendWr MakeWrite(int i, bool use_inline,
                         rdma::MemoryKey rkey) const {
    rdma::SendWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i) + 1;
    wr.opcode = rdma::Opcode::kWrite;
    wr.local = {src + static_cast<std::uint64_t>(i) * kOpBytes, kOpBytes,
                src_mr.lkey};
    wr.remote_addr = dst + static_cast<std::uint64_t>(i) * kOpBytes;
    wr.rkey = rkey;
    wr.send_inline = use_inline;
    return wr;
  }

  // Posts kOps small WRITEs (one per destination slot), optionally
  // aiming the `bad_at`-th one at a bogus rkey, runs the clock dry, and
  // returns every completion in delivery order.
  std::vector<rdma::WorkCompletion> RunWrites(bool use_inline,
                                              int bad_at = -1) {
    for (int i = 0; i < kOps; ++i) {
      const rdma::MemoryKey rkey =
          (i == bad_at) ? static_cast<rdma::MemoryKey>(0xdead)
                        : dst_mr.rkey;
      EXPECT_TRUE(qp->PostSend(MakeWrite(i, use_inline, rkey)).ok());
    }
    events.Run();
    std::vector<rdma::WorkCompletion> out;
    for (auto wcs = cq->Poll(); !wcs.empty(); wcs = cq->Poll()) {
      out.insert(out.end(), wcs.begin(), wcs.end());
    }
    return out;
  }

  Bytes DstBytes() const {
    Bytes out(kOps * kOpBytes);
    EXPECT_TRUE(b->memory().Read(dst, out).ok());
    return out;
  }
};

void ExpectSameCompletions(const std::vector<rdma::WorkCompletion>& x,
                           const std::vector<rdma::WorkCompletion>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].wr_id, y[i].wr_id) << "completion " << i;
    EXPECT_EQ(x[i].status, y[i].status) << "completion " << i;
  }
}

TEST(SmallOpFastPathProperty, InlineMatchesDmaOnCleanFabric) {
  Rig with_inline;
  Rig without;
  const auto wx = with_inline.RunWrites(/*use_inline=*/true);
  const auto wy = without.RunWrites(/*use_inline=*/false);
  ExpectSameCompletions(wx, wy);
  EXPECT_EQ(with_inline.DstBytes(), without.DstBytes());
  EXPECT_EQ(with_inline.fabric.inline_wrs(),
            static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(without.fabric.inline_wrs(), 0u);
}

TEST(SmallOpFastPathProperty, InlineMatchesDmaUnderDropFaults) {
  const std::string plan =
      "seed 7\n"
      "drop node=* at=0 for=1s p=0.3\n";
  Rig with_inline;
  with_inline.Arm(plan);
  Rig without;
  without.Arm(plan);
  const auto wx = with_inline.RunWrites(/*use_inline=*/true);
  const auto wy = without.RunWrites(/*use_inline=*/false);
  // Same seed + same op schedule => the injector makes identical drop
  // decisions, so both modes observe the same fault trace...
  ASSERT_EQ(with_inline.injector->trace(), without.injector->trace());
  EXPECT_GT(with_inline.injector->faults_injected(), 0u);
  // ...and therefore identical completions and destination bytes.
  ExpectSameCompletions(wx, wy);
  EXPECT_EQ(with_inline.DstBytes(), without.DstBytes());
}

TEST(SmallOpFastPathProperty, InlineMatchesDmaUnderRemoteNak) {
  Rig with_inline;
  Rig without;
  const auto wx = with_inline.RunWrites(/*use_inline=*/true, /*bad_at=*/5);
  const auto wy = without.RunWrites(/*use_inline=*/false, /*bad_at=*/5);
  ExpectSameCompletions(wx, wy);
  EXPECT_EQ(with_inline.DstBytes(), without.DstBytes());
  // The NAK errors the QP in both modes; the WRs before the failure
  // landed, so the destination is not all-zero.
  EXPECT_EQ(with_inline.qp->state(), rdma::QpState::kError);
  EXPECT_EQ(without.qp->state(), rdma::QpState::kError);
  EXPECT_NE(with_inline.DstBytes(), Bytes(kOps * kOpBytes, 0));
}

TEST(SmallOpFastPathProperty, SelectiveSignalingLeavesMemoryIdentical) {
  Rig coalesced;
  coalesced.qp->SetSignalingPeriod(8);
  Rig signal_all;
  std::vector<rdma::SendWr> chain_a, chain_b;
  for (int i = 0; i < kOps; ++i) {
    chain_a.push_back(coalesced.MakeWrite(i, /*use_inline=*/true,
                                          coalesced.dst_mr.rkey));
    chain_b.push_back(signal_all.MakeWrite(i, /*use_inline=*/false,
                                           signal_all.dst_mr.rkey));
  }
  ASSERT_TRUE(coalesced.qp->PostSendChain(chain_a).ok());
  ASSERT_TRUE(signal_all.qp->PostSendChain(chain_b).ok());
  coalesced.events.Run();
  signal_all.events.Run();

  EXPECT_EQ(coalesced.DstBytes(), signal_all.DstBytes());
  auto drain = [](rdma::CompletionQueue& cq) {
    std::vector<rdma::WorkCompletion> out;
    for (auto wcs = cq.Poll(); !wcs.empty(); wcs = cq.Poll()) {
      out.insert(out.end(), wcs.begin(), wcs.end());
    }
    return out;
  };
  const auto wx = drain(*coalesced.cq);
  const auto wy = drain(*signal_all.cq);
  // Coalescing suppresses intermediate success CQEs but the tail always
  // signals, and the fast path finishes no later than signal-all.
  ASSERT_FALSE(wx.empty());
  EXPECT_EQ(wx.back().wr_id, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(wx.back().status, rdma::WcStatus::kSuccess);
  EXPECT_LT(wx.size(), wy.size());
  EXPECT_EQ(wy.size(), static_cast<std::size_t>(kOps));
  EXPECT_LE(coalesced.events.Now(), signal_all.events.Now());
}

}  // namespace
}  // namespace rdx
