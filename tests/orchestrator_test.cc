// Declarative orchestration tests: DSL parsing (good and bad input),
// plan validation against a cluster, and execution with every strategy.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "core/orchestrator.h"

namespace rdx::core {
namespace {

// ---- parser ----

TEST(OrchestrationParser, FullPlanParses) {
  auto plan = ParseOrchestration(R"(
    # comment line
    extension firewall kind=ebpf hook=0
    extension tagger kind=wasm hook=1   # trailing comment
    group frontend nodes=0,1,2
    group backend nodes=3
    deploy firewall to=frontend strategy=broadcast consistency=bbu
    deploy tagger to=backend strategy=rolling
    rollback firewall from=frontend
    detach tagger from=backend
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->extensions.size(), 2u);
  EXPECT_EQ(plan->groups.size(), 2u);
  ASSERT_EQ(plan->actions.size(), 4u);

  EXPECT_FALSE(plan->extensions.at("firewall").is_wasm);
  EXPECT_TRUE(plan->extensions.at("tagger").is_wasm);
  EXPECT_EQ(plan->extensions.at("tagger").hook, 1);
  EXPECT_EQ(plan->groups.at("frontend").nodes,
            (std::vector<std::size_t>{0, 1, 2}));

  EXPECT_EQ(plan->actions[0].kind, ActionKind::kDeploy);
  EXPECT_EQ(plan->actions[0].strategy, RolloutStrategy::kBroadcast);
  EXPECT_EQ(plan->actions[0].consistency, ConsistencyLevel::kBbu);
  EXPECT_EQ(plan->actions[1].strategy, RolloutStrategy::kRolling);
  EXPECT_EQ(plan->actions[2].kind, ActionKind::kRollback);
  EXPECT_EQ(plan->actions[3].kind, ActionKind::kDetach);
}

TEST(OrchestrationParser, RejectsMalformedInput) {
  const char* bad[] = {
      "extension",                                 // missing name
      "extension f kind=lua",                      // unknown kind
      "extension f colour=red",                    // unknown attribute
      "extension f kind=ebpf\nextension f kind=ebpf",  // duplicate
      "group g",                                   // missing nodes
      "group g nodes=",                            // empty
      "group g nodes=a,b",                         // non-numeric
      "deploy f",                                  // missing group
      "deploy f to=g strategy=yolo",               // unknown strategy
      "deploy f to=g consistency=maybe",           // unknown consistency
      "launch f to=g",                             // unknown directive
  };
  for (const char* text : bad) {
    auto plan = ParseOrchestration(text);
    EXPECT_FALSE(plan.ok()) << text;
  }
}

TEST(OrchestrationParser, ErrorsCarryLineNumbers) {
  auto plan = ParseOrchestration("extension f kind=ebpf\n\nbogus line\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("line 3"), std::string::npos)
      << plan.status().ToString();
}

TEST(OrchestrationParser, DuplicateDeclarationsCarryLineNumbers) {
  auto dup_ext = ParseOrchestration(
      "extension f kind=ebpf\ngroup g nodes=0\nextension f kind=ebpf\n");
  ASSERT_FALSE(dup_ext.ok());
  EXPECT_NE(dup_ext.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(dup_ext.status().message().find("duplicate extension 'f'"),
            std::string::npos)
      << dup_ext.status().ToString();

  auto dup_group = ParseOrchestration(
      "group g nodes=0\ngroup g nodes=1\n");
  ASSERT_FALSE(dup_group.ok());
  EXPECT_NE(dup_group.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(dup_group.status().message().find("duplicate group 'g'"),
            std::string::npos)
      << dup_group.status().ToString();

  auto empty_nodes = ParseOrchestration("\ngroup g nodes=\n");
  ASSERT_FALSE(empty_nodes.ok());
  EXPECT_NE(empty_nodes.status().message().find("line 2"), std::string::npos)
      << empty_nodes.status().ToString();

  auto extra_attr = ParseOrchestration("group g nodes=0 color=red\n");
  ASSERT_FALSE(extra_attr.ok());
  EXPECT_NE(extra_attr.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(extra_attr.status().message().find("color=red"),
            std::string::npos)
      << extra_attr.status().ToString();
}

TEST(OrchestrationParser, RetryAndFailurePolicy) {
  auto plan = ParseOrchestration(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1
    deploy firewall to=all strategy=rolling max_retries=3 on_failure=rollback
    deploy firewall to=all strategy=parallel on_failure=skip
    deploy firewall to=all
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->actions.size(), 3u);
  EXPECT_EQ(plan->actions[0].max_retries, 3);
  EXPECT_EQ(plan->actions[0].on_failure, OnFailure::kRollback);
  EXPECT_EQ(plan->actions[1].on_failure, OnFailure::kSkip);
  EXPECT_EQ(plan->actions[2].max_retries, 0);
  EXPECT_EQ(plan->actions[2].on_failure, OnFailure::kAbort);

  EXPECT_FALSE(ParseOrchestration(
                   "extension f kind=ebpf\ngroup g nodes=0\n"
                   "deploy f to=g max_retries=lots\n")
                   .ok());
  EXPECT_FALSE(ParseOrchestration(
                   "extension f kind=ebpf\ngroup g nodes=0\n"
                   "deploy f to=g on_failure=panic\n")
                   .ok());
  // Policy attributes are deploy-only.
  EXPECT_FALSE(ParseOrchestration(
                   "extension f kind=ebpf\ngroup g nodes=0\n"
                   "detach f from=g on_failure=skip\n")
                   .ok());
}

// ---- validation + execution ----

struct OrchestraRig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<Orchestrator> orchestrator;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<CodeFlow*> flows;

  explicit OrchestraRig(int nodes) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id);
    orchestrator = std::make_unique<Orchestrator>(*cp);
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i));
      sandboxes.push_back(std::make_unique<Sandbox>(
          events, node, SandboxConfig{}));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      auto reg = sandboxes.back()->CtxRegister();
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandboxes.back(), reg.value(),
                         [&flow](StatusOr<CodeFlow*> f) {
                           if (f.ok()) flow = f.value();
                         });
      events.Run();
      flows.push_back(flow);
      orchestrator->RegisterNode(flow);
    }
    bpf::Program firewall;
    firewall.name = "firewall";
    firewall.insns = bpf::Assemble("r0 = 1\nexit\n").value();
    orchestrator->RegisterProgram("firewall", firewall);
    orchestrator->RegisterFilter("tagger", wasm::GenerateFilter(60, 1));
  }

  OrchestrationReport Run(std::string_view text,
                          UpdateBarrier* barrier = nullptr) {
    auto plan = ParseOrchestration(text);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    OrchestrationReport report;
    bool done = false;
    orchestrator->Execute(plan.value(), barrier,
                          [&](StatusOr<OrchestrationReport> r) {
                            EXPECT_TRUE(r.ok()) << r.status().ToString();
                            if (r.ok()) report = r.value();
                            done = true;
                          });
    events.Run();
    EXPECT_TRUE(done);
    return report;
  }
};

TEST(OrchestrationValidation, CatchesUnknownReferences) {
  OrchestraRig rig(2);
  auto unknown_ext = ParseOrchestration(
      "group g nodes=0\ndeploy ghost to=g\n");
  ASSERT_TRUE(unknown_ext.ok());
  EXPECT_FALSE(rig.orchestrator->ValidatePlan(unknown_ext.value()).ok());

  auto unknown_group = ParseOrchestration(
      "extension firewall kind=ebpf\ndeploy firewall to=ghosts\n");
  ASSERT_TRUE(unknown_group.ok());
  EXPECT_FALSE(rig.orchestrator->ValidatePlan(unknown_group.value()).ok());

  auto bad_node = ParseOrchestration(
      "extension firewall kind=ebpf\ngroup g nodes=9\ndeploy firewall "
      "to=g\n");
  ASSERT_TRUE(bad_node.ok());
  EXPECT_FALSE(rig.orchestrator->ValidatePlan(bad_node.value()).ok());

  auto bad_hook = ParseOrchestration(
      "extension firewall kind=ebpf hook=99\ngroup g nodes=0\ndeploy "
      "firewall to=g\n");
  ASSERT_TRUE(bad_hook.ok());
  EXPECT_FALSE(rig.orchestrator->ValidatePlan(bad_hook.value()).ok());
}

TEST(OrchestrationValidation, UnregisteredArtifactCaught) {
  OrchestraRig rig(1);
  auto plan = ParseOrchestration(
      "extension mystery kind=ebpf\ngroup g nodes=0\ndeploy mystery to=g\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(rig.orchestrator->ValidatePlan(plan.value()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(OrchestrationExec, BroadcastDeploysEverywhere) {
  OrchestraRig rig(4);
  OrchestrationReport report = rig.Run(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1,2,3
    deploy firewall to=all strategy=broadcast
  )");
  EXPECT_EQ(report.actions_executed, 1u);
  Bytes packet(4, 0);
  for (auto& sandbox : rig.sandboxes) {
    EXPECT_EQ(sandbox->ExecuteHook(0, packet)->r0, 1u);
  }
}

TEST(OrchestrationExec, RollingAndParallelDeploy) {
  OrchestraRig rig(4);
  OrchestrationReport report = rig.Run(R"(
    extension firewall kind=ebpf hook=0
    extension tagger kind=wasm hook=1
    group left nodes=0,1
    group right nodes=2,3
    deploy firewall to=left strategy=rolling
    deploy tagger to=right strategy=parallel
  )");
  EXPECT_EQ(report.actions_executed, 2u);
  ASSERT_EQ(report.log.size(), 2u);
  EXPECT_NE(report.log[0].find("rolling"), std::string::npos);
  EXPECT_NE(report.log[1].find("parallel"), std::string::npos);
  EXPECT_EQ(rig.sandboxes[0]->VisibleVersion(0), 1u);
  EXPECT_EQ(rig.sandboxes[1]->VisibleVersion(0), 1u);
  EXPECT_EQ(rig.sandboxes[2]->VisibleVersion(1), 1u);
  EXPECT_EQ(rig.sandboxes[3]->VisibleVersion(1), 1u);
  // Groups don't leak into each other.
  EXPECT_EQ(rig.sandboxes[2]->VisibleVersion(0), 0u);
  EXPECT_EQ(rig.sandboxes[0]->VisibleVersion(1), 0u);
}

TEST(OrchestrationExec, DeployUpdateRollbackDetachLifecycle) {
  OrchestraRig rig(2);
  // Two successive deploys (v1, v2), then roll back to v1, then detach.
  (void)rig.Run(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1
    deploy firewall to=all strategy=broadcast
    deploy firewall to=all strategy=broadcast
  )");
  EXPECT_EQ(rig.sandboxes[0]->VisibleVersion(0), 2u);

  (void)rig.Run(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1
    rollback firewall from=all
  )");
  EXPECT_EQ(rig.sandboxes[0]->CommittedVersion(0), 1u);

  (void)rig.Run(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1
    detach firewall from=all
  )");
  EXPECT_EQ(rig.sandboxes[0]->CommittedVersion(0), 0u);
  EXPECT_EQ(rig.sandboxes[1]->CommittedVersion(0), 0u);
}

TEST(OrchestrationExec, ReportTimesActions) {
  OrchestraRig rig(2);
  OrchestrationReport report = rig.Run(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1
    deploy firewall to=all strategy=broadcast
  )");
  EXPECT_GT(report.total, 0);
  ASSERT_EQ(report.log.size(), 1u);
  EXPECT_NE(report.log[0].find("us)"), std::string::npos);
}

}  // namespace
}  // namespace rdx::core
