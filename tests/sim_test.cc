// Unit tests for the simulation substrate: event queue semantics,
// processor-sharing CPU model, cache-coherence model, link model.
#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace rdx::sim {
namespace {

// ---- EventQueue ----

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueue, FifoAtSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 6);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto id = q.ScheduleAt(10, [&] { ran = true; });
  q.Cancel(id);
  EXPECT_EQ(q.Run(), 0u);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1, [&] { order.push_back(1); });
  auto id = q.ScheduleAt(2, [&] { order.push_back(2); });
  q.ScheduleAt(3, [&] { order.push_back(3); });
  q.Cancel(id);
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 20);
  q.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  q.RunUntil(12345);
  EXPECT_EQ(q.Now(), 12345);
}

TEST(EventQueue, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool late_ran = false;
  auto id = q.ScheduleAt(5, [] {});
  q.ScheduleAt(50, [&] { late_ran = true; });
  q.Cancel(id);
  q.RunUntil(10);
  EXPECT_FALSE(late_ran);  // the 50-event must not leak past the bound
  EXPECT_EQ(q.Now(), 10);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.Run();
  int fired_at = 0;
  q.ScheduleAt(5, [&] { fired_at = static_cast<int>(q.Now()); });
  q.Run();
  EXPECT_EQ(fired_at, 100);
}

// ---- CpuScheduler ----

TEST(Cpu, SingleTaskRunsAtFullSpeed) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);  // 1 GHz
  SimTime done_at = -1;
  cpu.Submit(1000, [&] { done_at = q.Now(); });
  q.Run();
  EXPECT_EQ(done_at, 1000);  // 1000 cycles at 1 cycle/ns
}

TEST(Cpu, TwoTasksOnOneCoreShare) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  SimTime a_done = 0, b_done = 0;
  cpu.Submit(1000, [&] { a_done = q.Now(); });
  cpu.Submit(1000, [&] { b_done = q.Now(); });
  q.Run();
  // Both get half speed: each finishes at ~2000 ns.
  EXPECT_NEAR(static_cast<double>(a_done), 2000, 2);
  EXPECT_NEAR(static_cast<double>(b_done), 2000, 2);
}

TEST(Cpu, TwoTasksOnTwoCoresDoNotShare) {
  EventQueue q;
  CpuScheduler cpu(q, 2, 1e9);
  SimTime a_done = 0, b_done = 0;
  cpu.Submit(1000, [&] { a_done = q.Now(); });
  cpu.Submit(1000, [&] { b_done = q.Now(); });
  q.Run();
  EXPECT_NEAR(static_cast<double>(a_done), 1000, 2);
  EXPECT_NEAR(static_cast<double>(b_done), 1000, 2);
}

TEST(Cpu, ShortTaskDelaysLongTaskProportionally) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  SimTime short_done = 0, long_done = 0;
  cpu.Submit(10000, [&] { long_done = q.Now(); });
  cpu.Submit(1000, [&] { short_done = q.Now(); });
  q.Run();
  // Short task: shares until it accumulates 1000 cycles => 2000 ns.
  EXPECT_NEAR(static_cast<double>(short_done), 2000, 5);
  // Long task: 1000 cycles done at t=2000, 9000 more alone => 11000 ns.
  EXPECT_NEAR(static_cast<double>(long_done), 11000, 5);
}

TEST(Cpu, StaggeredArrival) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  SimTime first_done = 0;
  cpu.Submit(2000, [&] { first_done = q.Now(); });
  q.ScheduleAt(1000, [&] {
    cpu.Submit(5000, [] {});
  });
  q.Run();
  // First task runs alone for 1000 ns (1000 cycles), then shares;
  // remaining 1000 cycles take 2000 ns => done at 3000.
  EXPECT_NEAR(static_cast<double>(first_done), 3000, 5);
}

TEST(Cpu, AbortCancelsCompletion) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  bool fired = false;
  auto id = cpu.Submit(1000, [&] { fired = true; });
  cpu.Abort(id);
  q.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(cpu.ActiveTasks(), 0);
}

TEST(Cpu, AbortSpeedsUpSurvivor) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  SimTime done = 0;
  cpu.Submit(4000, [&] { done = q.Now(); });
  auto victim = cpu.Submit(100000, [] {});
  q.ScheduleAt(2000, [&] { cpu.Abort(victim); });
  q.Run();
  // 0-2000ns shared (1000 cycles done), then alone: 3000 more ns.
  EXPECT_NEAR(static_cast<double>(done), 5000, 5);
}

TEST(Cpu, UtilizationReflectsLoad) {
  EventQueue q;
  CpuScheduler cpu(q, 2, 1e9);
  cpu.Submit(1000, [] {});
  q.Run();
  q.RunUntil(2000);
  // 1 core busy for 1000 ns out of 2 cores * 2000 ns.
  EXPECT_NEAR(cpu.Utilization(), 0.25, 0.01);
}

TEST(Cpu, CompletionCanResubmit) {
  EventQueue q;
  CpuScheduler cpu(q, 1, 1e9);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) cpu.Submit(100, next);
  };
  cpu.Submit(100, next);
  q.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.Now(), 500);
}

TEST(Cpu, ManyConcurrentTasksConserveWork) {
  EventQueue q;
  CpuScheduler cpu(q, 4, 3.4e9);
  constexpr int kTasks = 64;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    cpu.Submit(340'000, [&] { ++done; });
  }
  q.Run();
  EXPECT_EQ(done, kTasks);
  // Total work = 64 * 100 us; on 4 cores => 1.6 ms of virtual time.
  EXPECT_NEAR(static_cast<double>(q.Now()), 1.6e6, 1e4);
}

// ---- CacheModel ----

TEST(Cache, ExpectedDelayMatchesCalibration) {
  CacheModel cache;  // defaults: 7460 lines, 1e9 insn/s
  // At CPKI=10 the calibrated delay is ~746 us (Fig 5 worst case).
  EXPECT_NEAR(ToMicros(cache.ExpectedDiscoveryDelay(10.0)), 746.0, 1.0);
}

TEST(Cache, DelayInverselyProportionalToCpki) {
  CacheModel cache;
  const auto d10 = cache.ExpectedDiscoveryDelay(10.0);
  const auto d20 = cache.ExpectedDiscoveryDelay(20.0);
  const auto d40 = cache.ExpectedDiscoveryDelay(40.0);
  EXPECT_NEAR(static_cast<double>(d10) / d20, 2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(d20) / d40, 2.0, 0.01);
}

TEST(Cache, ZeroCpkiIsCapped) {
  CacheModel cache;
  EXPECT_EQ(cache.ExpectedDiscoveryDelay(0.0), Millis(10));
}

TEST(Cache, SamplesAverageToExpectation) {
  CacheModel cache;
  Rng rng(2);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(cache.SampleDiscoveryDelay(20.0, rng));
  }
  EXPECT_NEAR(sum / kN,
              static_cast<double>(cache.ExpectedDiscoveryDelay(20.0)),
              static_cast<double>(cache.ExpectedDiscoveryDelay(20.0)) * 0.05);
}

TEST(Cache, FlushDelayIsConstant) {
  CacheModel cache;
  EXPECT_EQ(cache.FlushDelay(), Micros(2));
}

// ---- LinkModel / CostModel ----

TEST(Link, OneWayIncludesSerialization) {
  LinkModel link = RdmaLink();
  const Duration small = link.OneWay(64);
  const Duration large = link.OneWay(1 << 20);
  EXPECT_LT(small, Micros(2));
  // 1 MiB at 12.5 B/ns ~= 84 us + base.
  EXPECT_NEAR(ToMicros(large), 84.0 + 1.5, 2.0);
  EXPECT_EQ(link.RoundTrip(0), 2 * link.OneWay(0));
}

TEST(Link, AgentControlIsSlowerThanRdma) {
  EXPECT_GT(AgentControlLink().OneWay(1024), RdmaLink().OneWay(1024));
}

TEST(CostModel, VerifyCyclesSuperlinear) {
  const CostModel& cost = CostModel::Default();
  const double per_insn_small =
      static_cast<double>(cost.VerifyCycles(1000)) / 1000;
  const double per_insn_large =
      static_cast<double>(cost.VerifyCycles(100000)) / 100000;
  EXPECT_GT(per_insn_large, per_insn_small * 1.3);
}

TEST(CostModel, CalibratedAnchors) {
  const CostModel& cost = CostModel::Default();
  // ~1.1 ms of verification at 1.3K insns (Fig 2a / 4a anchor).
  const double verify_1300_ms =
      static_cast<double>(cost.VerifyCycles(1300)) / cost.cpu_hz * 1e3;
  EXPECT_GT(verify_1300_ms, 0.5);
  EXPECT_LT(verify_1300_ms, 2.5);
  // ~100+ ms at 95K.
  const double verify_95k_ms =
      static_cast<double>(cost.VerifyCycles(95000)) / cost.cpu_hz * 1e3;
  EXPECT_GT(verify_95k_ms, 80.0);
}

}  // namespace
}  // namespace rdx::sim
