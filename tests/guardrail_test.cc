// Runtime-guardrail tests (§5 "verification is necessary but not
// sufficient"): fuel budgets and trap accounting in the data plane, the
// RDMA-readable HealthBlock wire contract, the local fail-safe, the
// agentless HealthMonitor (one-sided reads -> remote CAS quarantine ->
// fingerprint blacklist), superseded-image reclamation, scratchpad
// exhaustion as a clean non-retryable status, and deterministic
// containment driven by the `rogue` fault-plan kind.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bpf/assembler.h"
#include "bpf/proggen.h"
#include "bpf/verifier.h"
#include "core/layout.h"
#include "core/reliability.h"
#include "fault/injector.h"

namespace rdx {
namespace {

using core::CodeFlow;
using core::ControlPlane;
using core::ControlPlaneConfig;
using core::GuardrailPolicy;
using core::HealthMonitor;
using core::RecoveryManager;
using core::Sandbox;
using core::SandboxConfig;

bpf::Program ReturnN(std::uint64_t n, const std::string& name) {
  bpf::Program prog;
  prog.name = name;
  auto insns = bpf::Assemble("r0 = " + std::to_string(n) + "\nexit\n");
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

// Tiny well-behaved filter: returns 7 in two instructions.
wasm::FilterModule GoodFilter() {
  wasm::FilterModule m;
  m.name = "good";
  m.code.push_back({wasm::WOp::kConst, 7});
  m.code.push_back({wasm::WOp::kReturn, 0});
  return m;
}

// Straight-line filter longer than the fuel budget under test.
wasm::FilterModule BurnFilter(std::size_t insns) {
  wasm::FilterModule m;
  m.name = "burner";
  while (m.code.size() + 2 < insns) {
    m.code.push_back({wasm::WOp::kConst, 1});
    m.code.push_back({wasm::WOp::kDrop, 0});
  }
  m.code.push_back({wasm::WOp::kConst, 0});
  m.code.push_back({wasm::WOp::kReturn, 0});
  return m;
}

class NullHost final : public wasm::WasmHost {
 public:
  StatusOr<std::uint64_t> CallHost(std::int32_t, std::uint64_t,
                                   std::uint64_t) override {
    return 1ull;
  }
};

struct GuardrailRig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<Sandbox> sandbox;
  CodeFlow* flow = nullptr;

  explicit GuardrailRig(SandboxConfig sandbox_config = {},
                        ControlPlaneConfig cp_config = {}) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id, cp_config);
    rdma::Node& node = fabric.AddNode("target");
    sandbox = std::make_unique<Sandbox>(events, node, sandbox_config);
    EXPECT_TRUE(sandbox->CtxInit().ok());
    auto reg = sandbox->CtxRegister();
    EXPECT_TRUE(reg.ok());
    cp->CreateCodeFlow(*sandbox, reg.value(), [this](StatusOr<CodeFlow*> f) {
      ASSERT_TRUE(f.ok()) << f.status().ToString();
      flow = f.value();
    });
    events.Run();
    EXPECT_NE(flow, nullptr);
  }

  Status Inject(const bpf::Program& prog, int hook) {
    Status result = InvalidArgument("never completed");
    cp->InjectExtension(*flow, prog, hook, [&](StatusOr<core::InjectTrace> r) {
      result = r.status();
    });
    events.Run();
    return result;
  }

  Status InjectWasm(const wasm::FilterModule& module, int hook) {
    Status result = InvalidArgument("never completed");
    cp->InjectWasmFilter(*flow, module, hook,
                         [&](StatusOr<core::InjectTrace> r) {
                           result = r.status();
                         });
    events.Run();
    return result;
  }

  // Committed desc address of `hook` as the control plane sees it.
  std::uint64_t DescAddr(int hook) {
    std::uint64_t addr = 0;
    cp->ProbeHook(*flow, hook, [&](StatusOr<ControlPlane::HookProbe> p) {
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      addr = p->desc_addr;
    });
    events.Run();
    return addr;
  }

  void Poll(HealthMonitor& monitor) {
    bool polled = false;
    monitor.PollNow([&] { polled = true; });
    events.Run();
    ASSERT_TRUE(polled);
  }

  std::uint64_t RemoteWord(std::uint64_t addr) {
    return sandbox->node().memory().ReadU64(addr).value();
  }
};

// ---- data-plane fuel + trap accounting ----

TEST(Guardrail, FuelBudgetStopsRunawayProgram) {
  SandboxConfig config;
  config.fuel_budget = 4096;
  config.max_consecutive_failures = 0;  // isolate the budget itself
  GuardrailRig rig(config);

  bpf::RogueGenOptions rogue;
  rogue.kind = bpf::RogueKind::kFuelBurn;
  rogue.target_insns = 8192;  // straight-line: executed length == size
  ASSERT_TRUE(rig.Inject(bpf::GenerateRogueProgram(rogue), 0).ok());
  rig.sandbox->RefreshHookNow(0);

  Bytes packet(8, 0);
  auto exec = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rig.sandbox->stats().fuel_exhaustions, 1u);
  EXPECT_EQ(rig.sandbox->stats().traps, 0u);
  EXPECT_EQ(rig.sandbox->ReadLocalHealth(0).fuel_exhaustions, 1u);
}

TEST(Guardrail, RogueTrapProgramPassesVerifierButTrapsAtRuntime) {
  bpf::RogueGenOptions rogue;  // kTrapLoop
  bpf::Program prog = bpf::GenerateRogueProgram(rogue);

  // The whole point: the verifier is satisfied...
  bpf::Verifier verifier;
  EXPECT_TRUE(verifier.Verify(prog).ok());

  // ...and every execution still faults.
  SandboxConfig config;
  config.max_consecutive_failures = 0;
  GuardrailRig rig(config);
  ASSERT_TRUE(rig.Inject(prog, 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  }
  EXPECT_EQ(rig.sandbox->stats().traps, 3u);
  const core::HealthView health = rig.sandbox->ReadLocalHealth(0);
  EXPECT_EQ(health.executions, 3u);
  EXPECT_EQ(health.traps, 3u);
  EXPECT_EQ(health.consecutive_failures, 3u);
}

// ---- HealthBlock wire contract ----

TEST(Guardrail, HealthBlockWireContractMatchesLocalView) {
  GuardrailRig rig;
  ASSERT_TRUE(rig.Inject(ReturnN(5, "five"), 2).ok());
  rig.sandbox->RefreshHookNow(2);
  Bytes packet(8, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.sandbox->ExecuteHook(2, packet).ok());
  }

  // The control block advertises the health array; hook 2's block sits at
  // the documented stride and its words at the documented offsets.
  const auto& view = rig.sandbox->view();
  EXPECT_EQ(rig.RemoteWord(view.cb_addr + core::kCbHealthAddr),
            view.health_addr);
  const std::uint64_t hb = view.health_addr + 2 * core::kHealthBlockBytes;
  EXPECT_EQ(rig.RemoteWord(hb + core::kHbExecutions), 4u);
  EXPECT_EQ(rig.RemoteWord(hb + core::kHbTraps), 0u);
  EXPECT_EQ(rig.RemoteWord(hb + core::kHbLastGoodDesc), rig.DescAddr(2));

  // A one-sided READ decodes to the same view the local CPU has.
  core::HealthView remote;
  bool read = false;
  rig.cp->ReadHealth(*rig.flow, 2, [&](StatusOr<core::HealthView> h) {
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    remote = h.value();
    read = true;
  });
  rig.events.Run();
  ASSERT_TRUE(read);
  const core::HealthView local = rig.sandbox->ReadLocalHealth(2);
  EXPECT_EQ(remote.executions, local.executions);
  EXPECT_EQ(remote.traps, local.traps);
  EXPECT_EQ(remote.fuel_exhaustions, local.fuel_exhaustions);
  EXPECT_EQ(remote.consecutive_failures, local.consecutive_failures);
  EXPECT_EQ(remote.last_good_desc, local.last_good_desc);
  EXPECT_EQ(remote.failsafe_detaches, local.failsafe_detaches);
}

// ---- local fail-safe ----

TEST(Guardrail, LocalFailSafeRevertsToLastGoodImage) {
  SandboxConfig config;
  config.max_consecutive_failures = 3;
  GuardrailRig rig(config);

  ASSERT_TRUE(rig.Inject(ReturnN(42, "good"), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  auto exec = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->r0, 42u);  // v1 runs; last_good now points at it

  bpf::RogueGenOptions rogue;  // kTrapLoop
  ASSERT_TRUE(rig.Inject(bpf::GenerateRogueProgram(rogue), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  }

  // Third consecutive failure tripped the fail-safe: the hook slot points
  // back at v1 and traffic flows again without any control-plane help.
  EXPECT_EQ(rig.sandbox->stats().failsafe_detaches, 1u);
  EXPECT_EQ(rig.sandbox->ReadLocalHealth(0).failsafe_detaches, 1u);
  auto healed = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->r0, 42u);
}

TEST(Guardrail, FailSafeDetachesWhenNoGoodVersionExists) {
  SandboxConfig config;
  config.max_consecutive_failures = 2;
  GuardrailRig rig(config);

  // The very first image on the hook is rogue: there is no last-good
  // version, so the fail-safe detaches outright (empty hook = accept).
  bpf::RogueGenOptions rogue;  // kTrapLoop
  ASSERT_TRUE(rig.Inject(bpf::GenerateRogueProgram(rogue), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  EXPECT_EQ(rig.sandbox->stats().failsafe_detaches, 1u);

  auto exec = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->r0, 1u);  // accept-by-default on the empty hook
  EXPECT_GE(rig.sandbox->stats().empty_hook_executions, 1u);
}

// ---- agentless detection + remote quarantine ----

TEST(Guardrail, MonitorQuarantinesCrashLoopingEbpfRemotely) {
  SandboxConfig config;
  config.max_consecutive_failures = 3;
  GuardrailRig rig(config);

  ASSERT_TRUE(rig.Inject(ReturnN(42, "good"), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  ASSERT_TRUE(rig.sandbox->ExecuteHook(0, packet).ok());
  const std::uint64_t good_desc = rig.DescAddr(0);

  bpf::RogueGenOptions rogue;  // kTrapLoop
  bpf::Program bad = bpf::GenerateRogueProgram(rogue);
  ASSERT_TRUE(rig.Inject(bad, 0).ok());
  const std::uint64_t epoch_before = rig.flow->epoch();
  rig.sandbox->RefreshHookNow(0);
  const std::uint64_t bad_desc = rig.DescAddr(0);
  ASSERT_NE(bad_desc, good_desc);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  }

  // One poll over the HealthBlock: the monitor sees the fail-safe fired,
  // repairs the control plane's bookkeeping, bumps the epoch, and
  // blacklists the rogue image's fingerprint.
  HealthMonitor monitor(*rig.cp);
  monitor.Watch(*rig.flow);
  rig.Poll(monitor);
  ASSERT_EQ(monitor.records().size(), 1u);
  EXPECT_EQ(monitor.records()[0].reason, "local fail-safe fired");
  EXPECT_EQ(monitor.records()[0].bad_desc, bad_desc);
  EXPECT_EQ(monitor.records()[0].good_desc, good_desc);
  EXPECT_TRUE(monitor.records()[0].quarantined);
  EXPECT_EQ(rig.cp->quarantines(), 1u);
  EXPECT_EQ(rig.flow->epoch(), epoch_before + 1);
  EXPECT_EQ(rig.DescAddr(0), good_desc);

  // Traffic keeps executing the last-good version...
  rig.sandbox->RefreshHookNow(0);
  auto exec = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->r0, 42u);

  // ...and redeploying the quarantined program is refused at validation.
  Status redeploy = rig.Inject(bad, 0);
  ASSERT_FALSE(redeploy.ok());
  EXPECT_EQ(redeploy.code(), StatusCode::kPermissionDenied);
  // A different (healthy) program still deploys fine.
  EXPECT_TRUE(rig.Inject(ReturnN(9, "after"), 1).ok());

  // A second poll must not re-quarantine the good image: the stale
  // consecutive counter alone is not evidence of fresh failures.
  rig.Poll(monitor);
  EXPECT_EQ(monitor.records().size(), 1u);
  EXPECT_EQ(rig.cp->quarantines(), 1u);
}

TEST(Guardrail, MonitorQuarantinesFuelBurningWasmByRemoteCas) {
  SandboxConfig config;
  config.wasm_fuel_budget = 256;
  config.max_consecutive_failures = 0;  // no local fail-safe: the CAS must
                                        // do the actual containment
  GuardrailRig rig(config);

  NullHost host;
  ASSERT_TRUE(rig.InjectWasm(GoodFilter(), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  auto exec = rig.sandbox->ExecuteWasmHook(0, host);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->verdict, 7u);
  const std::uint64_t good_desc = rig.DescAddr(0);

  wasm::FilterModule burner = BurnFilter(1024);
  ASSERT_TRUE(rig.InjectWasm(burner, 0).ok());
  rig.sandbox->RefreshHookNow(0);
  const std::uint64_t bad_desc = rig.DescAddr(0);
  for (int i = 0; i < 8; ++i) {
    auto burn = rig.sandbox->ExecuteWasmHook(0, host);
    ASSERT_FALSE(burn.ok());
    EXPECT_EQ(burn.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(rig.sandbox->stats().fuel_exhaustions, 8u);
  // Nothing local intervened: the slot still holds the burner.
  EXPECT_EQ(rig.sandbox->stats().failsafe_detaches, 0u);

  HealthMonitor monitor(*rig.cp);
  monitor.Watch(*rig.flow);
  rig.Poll(monitor);
  ASSERT_EQ(monitor.records().size(), 1u);
  EXPECT_TRUE(monitor.records()[0].quarantined);
  EXPECT_EQ(monitor.records()[0].bad_desc, bad_desc);
  EXPECT_EQ(monitor.records()[0].good_desc, good_desc);

  // The remote CAS swung the slot back; after the flush the data plane
  // executes the good filter again.
  EXPECT_EQ(rig.DescAddr(0), good_desc);
  rig.sandbox->RefreshHookNow(0);
  auto healed = rig.sandbox->ExecuteWasmHook(0, host);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->verdict, 7u);

  Status redeploy = rig.InjectWasm(burner, 0);
  ASSERT_FALSE(redeploy.ok());
  EXPECT_EQ(redeploy.code(), StatusCode::kPermissionDenied);
}

TEST(Guardrail, ObserveOnlyModeRecordsWithoutQuarantining) {
  SandboxConfig config;
  config.max_consecutive_failures = 0;
  GuardrailRig rig(config);
  bpf::RogueGenOptions rogue;  // kTrapLoop
  ASSERT_TRUE(rig.Inject(bpf::GenerateRogueProgram(rogue), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(rig.sandbox->ExecuteHook(0, packet).ok());
  }

  GuardrailPolicy policy;
  policy.auto_quarantine = false;
  HealthMonitor monitor(*rig.cp, policy);
  monitor.Watch(*rig.flow);
  rig.Poll(monitor);
  ASSERT_EQ(monitor.records().size(), 1u);
  EXPECT_FALSE(monitor.records()[0].quarantined);
  EXPECT_EQ(rig.cp->quarantines(), 0u);
  // The rogue image is still attached (nobody contained it).
  EXPECT_NE(rig.DescAddr(0), 0u);
}

// ---- superseded-image reclamation ----

TEST(Guardrail, SupersededImagesReclaimedOnCommit) {
  ControlPlaneConfig cp_config;
  cp_config.hook_history_depth = 1;
  GuardrailRig rig({}, cp_config);

  ASSERT_TRUE(rig.Inject(ReturnN(1, "v1"), 0).ok());
  const std::uint64_t desc1 = rig.DescAddr(0);
  ASSERT_TRUE(rig.Inject(ReturnN(2, "v2"), 0).ok());
  EXPECT_EQ(rig.sandbox->stats().images_reclaimed, 0u);  // depth 1 keeps v1
  ASSERT_TRUE(rig.Inject(ReturnN(3, "v3"), 0).ok());

  // Committing v3 pushed v2 into the history and evicted v1: its refcount
  // word is zeroed over RDMA and the freed bytes are accounted.
  EXPECT_EQ(rig.sandbox->stats().images_reclaimed, 1u);
  EXPECT_GT(rig.sandbox->stats().scratch_bytes_reclaimed, 0u);
  EXPECT_EQ(rig.RemoteWord(desc1 + core::kDescRefcount), 0u);

  // Rollback within the retained depth still works: v3 -> v2.
  bool rolled = false;
  rig.cp->Rollback(*rig.flow, 0, [&](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    rolled = true;
  });
  rig.events.Run();
  ASSERT_TRUE(rolled);
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  auto exec = rig.sandbox->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->r0, 2u);
}

// ---- scratchpad exhaustion ----

TEST(Guardrail, ScratchExhaustionIsCleanStatusAndNotRetried) {
  SandboxConfig config;
  config.scratch_bytes = 8192;
  GuardrailRig rig(config);

  bpf::ProgGenOptions gen;
  gen.target_insns = 64;
  gen.use_maps = false;
  // Fill the scratchpad with distinct images until the bump allocator
  // runs dry; the failure is the dedicated status, not a generic abort.
  Status last = OkStatus();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    gen.seed = 100 + i;
    last = rig.Inject(bpf::GenerateProgram(gen), 0);
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kScratchExhausted) << last.ToString();

  // Baseline: how long one (failing) injection pipeline takes.
  gen.seed = 998;
  const sim::SimTime base_t0 = rig.events.Now();
  EXPECT_FALSE(rig.Inject(bpf::GenerateProgram(gen), 0).ok());
  const sim::Duration one_attempt = rig.events.Now() - base_t0;

  // The recovery layer refuses to burn retries on it: a full scratchpad
  // does not heal with backoff, so the verdict arrives after ~one attempt
  // with no backoff schedule behind it.
  RecoveryManager rm(*rig.cp);
  const sim::SimTime t0 = rig.events.Now();
  Status through_recovery = InvalidArgument("never completed");
  bool settled = false;
  gen.seed = 999;
  rm.DeployReliably(*rig.flow, bpf::GenerateProgram(gen), 0,
                    [&](StatusOr<core::RecoveryOutcome> r) {
                      through_recovery = r.status();
                      settled = true;
                    });
  rig.events.Run();
  ASSERT_TRUE(settled);
  EXPECT_EQ(through_recovery.code(), StatusCode::kScratchExhausted);
  EXPECT_LT(rig.events.Now() - t0,
            2 * one_attempt + rm.policy().base_backoff);
}

// ---- rogue fault-plan kind: deterministic end-to-end containment ----

struct ContainmentRun {
  std::vector<std::string> fault_trace;
  std::vector<std::string> reasons;
  std::uint64_t quarantines = 0;
  sim::SimTime end = 0;
};

ContainmentRun RunRogueScenario() {
  SandboxConfig config;
  config.max_consecutive_failures = 3;
  GuardrailRig rig(config);
  fault::FaultInjector injector(rig.events, rig.fabric);

  // Healthy baseline on hook 0.
  EXPECT_TRUE(rig.Inject(ReturnN(42, "good"), 0).ok());
  rig.sandbox->RefreshHookNow(0);
  Bytes packet(8, 0);
  EXPECT_TRUE(rig.sandbox->ExecuteHook(0, packet).ok());

  // The plan turns hook 0 rogue at t=200us; the rig wires "rogue" to an
  // injection of the trapping generator program.
  char plan_text[128];
  std::snprintf(plan_text, sizeof(plan_text),
                "seed 7\nrogue node=%u at=200us hook=0 kind=trap\n",
                rig.sandbox->node().id());
  auto plan = fault::ParseFaultPlan(plan_text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  injector.SetNodeHooks(
      rig.sandbox->node().id(),
      {.on_rogue = [&rig](int hook, fault::RogueFaultKind) {
        bpf::RogueGenOptions rogue;  // kTrapLoop
        rig.cp->InjectExtension(*rig.flow, bpf::GenerateRogueProgram(rogue),
                                hook, [](StatusOr<core::InjectTrace> r) {
                                  EXPECT_TRUE(r.ok());
                                });
      }});
  EXPECT_TRUE(injector.Arm(plan.value()).ok());

  // Steady traffic against hook 0 every 50us for 2ms.
  for (int i = 1; i <= 40; ++i) {
    rig.events.ScheduleAt(sim::Micros(50) * i, [&rig] {
      rig.sandbox->RefreshHookNow(0);
      Bytes p(8, 0);
      (void)rig.sandbox->ExecuteHook(0, p);
    });
  }

  HealthMonitor monitor(*rig.cp);
  monitor.Watch(*rig.flow);
  monitor.Start();
  rig.events.ScheduleAt(sim::Millis(3), [&monitor] { monitor.Stop(); });
  rig.events.Run();

  ContainmentRun run;
  run.fault_trace = injector.trace();
  for (const auto& rec : monitor.records()) run.reasons.push_back(rec.reason);
  run.quarantines = rig.cp->quarantines();
  run.end = rig.events.Now();

  // Containment happened and traffic ended up back on the good version.
  EXPECT_EQ(run.quarantines, 1u);
  rig.sandbox->RefreshHookNow(0);
  auto exec = rig.sandbox->ExecuteHook(0, packet);
  EXPECT_TRUE(exec.ok());
  if (exec.ok()) EXPECT_EQ(exec->r0, 42u);
  return run;
}

TEST(Guardrail, RogueFaultPlanDrivesDeterministicContainment) {
  ContainmentRun a = RunRogueScenario();
  ContainmentRun b = RunRogueScenario();
  ASSERT_EQ(a.fault_trace.size(), 1u);
  EXPECT_NE(a.fault_trace[0].find("rogue node="), std::string::npos);
  EXPECT_NE(a.fault_trace[0].find("kind=trap"), std::string::npos);
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.reasons, b.reasons);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.end, b.end);
}

}  // namespace
}  // namespace rdx
