// Wasm-filter runtime tests: validator rules, execution semantics, host
// calls, the image wire format, and generated-filter properties.
#include <gtest/gtest.h>

#include "wasm/filter.h"

namespace rdx::wasm {
namespace {

// Host that records calls and returns arg0 + arg1.
class RecordingHost final : public WasmHost {
 public:
  StatusOr<std::uint64_t> CallHost(std::int32_t host_fn, std::uint64_t arg0,
                                   std::uint64_t arg1) override {
    calls.push_back({host_fn, arg0, arg1});
    return arg0 + arg1;
  }
  struct Call {
    std::int32_t fn;
    std::uint64_t arg0, arg1;
  };
  std::vector<Call> calls;
};

FilterModule Module(std::vector<WasmInsn> code,
                    std::vector<ImportDecl> imports = {{"f"}}) {
  FilterModule module;
  module.name = "t";
  module.num_locals = 4;
  module.code = std::move(code);
  module.imports = std::move(imports);
  return module;
}

// Links every reloc to host fn 0 and runs.
StatusOr<WasmResult> CompileAndRun(const FilterModule& module,
                                   WasmHost& host) {
  auto image = CompileFilter(module);
  if (!image.ok()) return image.status();
  for (WasmReloc& reloc : image->relocs) reloc.resolved_host_fn = 0;
  return RunFilter(*image, host);
}

// ---- validator ----

TEST(WasmValidator, EmptyFilterRejected) {
  EXPECT_FALSE(ValidateFilter(Module({})).ok());
}

TEST(WasmValidator, StackUnderflowRejected) {
  EXPECT_FALSE(ValidateFilter(Module({{WOp::kAdd, 0}})).ok());
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kAdd, 0}})).ok());
  EXPECT_FALSE(ValidateFilter(Module({{WOp::kReturn, 0}})).ok());
  EXPECT_FALSE(ValidateFilter(Module({{WOp::kDrop, 0}})).ok());
}

TEST(WasmValidator, LocalsOutOfRangeRejected) {
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kGetLocal, 4}, {WOp::kReturn, 0}})).ok());
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kSetLocal, -1},
              {WOp::kConst, 0}, {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, BackwardBranchRejected) {
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kBrIf, 0},
              {WOp::kConst, 0}, {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, BranchPastEndRejected) {
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kBrIf, 99},
              {WOp::kConst, 0}, {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, FallOffEndRejected) {
  EXPECT_FALSE(ValidateFilter(Module({{WOp::kConst, 1}})).ok());
}

TEST(WasmValidator, MismatchedDepthAtMergeRejected) {
  // Branch arrives at pc 4 with depth 1; fallthrough with depth 2.
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1},
              {WOp::kConst, 1},
              {WOp::kBrIf, 4},
              {WOp::kConst, 2},
              {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, ImportOutOfRangeRejected) {
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kConst, 2}, {WOp::kCallHost, 3},
              {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, UnreachableCodeRejected) {
  EXPECT_FALSE(ValidateFilter(
      Module({{WOp::kConst, 1}, {WOp::kReturn, 0},
              {WOp::kConst, 2}, {WOp::kReturn, 0}})).ok());
}

TEST(WasmValidator, WellFormedFilterAccepted) {
  WasmValidatorStats stats;
  FilterModule module = Module({
      {WOp::kConst, 5},
      {WOp::kSetLocal, 0},
      {WOp::kGetLocal, 0},
      {WOp::kConst, 5},
      {WOp::kEq, 0},
      {WOp::kBrIf, 8},
      {WOp::kConst, 0},
      {WOp::kReturn, 0},
      {WOp::kConst, 1},
      {WOp::kReturn, 0},
  });
  EXPECT_TRUE(ValidateFilter(module, &stats).ok());
  EXPECT_EQ(stats.insns_checked, module.code.size());
}

// ---- execution ----

TEST(WasmRun, ArithmeticAndLocals) {
  RecordingHost host;
  auto result = CompileAndRun(Module({
      {WOp::kConst, 6},
      {WOp::kConst, 7},
      {WOp::kMul, 0},
      {WOp::kSetLocal, 1},
      {WOp::kGetLocal, 1},
      {WOp::kReturn, 0},
  }), host);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->verdict, 42u);
}

TEST(WasmRun, BranchSkipsCode) {
  RecordingHost host;
  auto result = CompileAndRun(Module({
      {WOp::kConst, 1},
      {WOp::kBrIf, 4},
      {WOp::kConst, 111},
      {WOp::kReturn, 0},
      {WOp::kConst, 222},
      {WOp::kReturn, 0},
  }), host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, 222u);
}

TEST(WasmRun, ComparisonsProduceBooleans) {
  RecordingHost host;
  auto result = CompileAndRun(Module({
      {WOp::kConst, 3},
      {WOp::kConst, 5},
      {WOp::kLtU, 0},
      {WOp::kReturn, 0},
  }), host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, 1u);
}

TEST(WasmRun, HostCallPopsTwoPushesOne) {
  RecordingHost host;
  auto result = CompileAndRun(Module({
      {WOp::kConst, 10},
      {WOp::kConst, 32},
      {WOp::kCallHost, 0},
      {WOp::kReturn, 0},
  }), host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, 42u);
  ASSERT_EQ(host.calls.size(), 1u);
  EXPECT_EQ(host.calls[0].arg0, 10u);
  EXPECT_EQ(host.calls[0].arg1, 32u);
}

TEST(WasmRun, DupAndDrop) {
  RecordingHost host;
  auto result = CompileAndRun(Module({
      {WOp::kConst, 9},
      {WOp::kDup, 0},
      {WOp::kAdd, 0},
      {WOp::kConst, 100},
      {WOp::kDrop, 0},
      {WOp::kReturn, 0},
  }), host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, 18u);
}

TEST(WasmRun, StepLimitAborts) {
  // A long but finite filter with a tiny step limit.
  FilterModule module;
  module.name = "long";
  module.num_locals = 1;
  for (int i = 0; i < 100; ++i) {
    module.code.push_back({WOp::kConst, i});
    module.code.push_back({WOp::kDrop, 0});
  }
  module.code.push_back({WOp::kConst, 1});
  module.code.push_back({WOp::kReturn, 0});
  auto image = CompileFilter(module);
  ASSERT_TRUE(image.ok());
  RecordingHost host;
  auto result = RunFilter(*image, host, /*step_limit=*/10);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(WasmRun, UnlinkedImageRefused) {
  auto image = CompileFilter(Module({
      {WOp::kConst, 1},
      {WOp::kConst, 2},
      {WOp::kCallHost, 0},
      {WOp::kReturn, 0},
  }));
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(image->IsLinked());
  RecordingHost host;
  EXPECT_FALSE(RunFilter(*image, host).ok());
}

// ---- image wire format ----

TEST(WasmImageFormat, SerializeDeserializeRoundTrip) {
  FilterModule module = GenerateFilter(500, 3);
  auto image = CompileFilter(module);
  ASSERT_TRUE(image.ok());
  const Bytes wire = image->Serialize();
  auto back = WasmImage::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->filter_name, image->filter_name);
  EXPECT_EQ(back->num_locals, image->num_locals);
  EXPECT_EQ(back->code.size(), image->code.size());
  ASSERT_EQ(back->relocs.size(), image->relocs.size());
  for (std::size_t i = 0; i < back->relocs.size(); ++i) {
    EXPECT_EQ(back->relocs[i].import_name, image->relocs[i].import_name);
  }
  EXPECT_EQ(back->Fingerprint(), image->Fingerprint());
}

TEST(WasmImageFormat, ChecksumCatchesCorruption) {
  auto image = CompileFilter(GenerateFilter(300, 1));
  Bytes wire = image->Serialize();
  wire[wire.size() / 2] ^= 0x5a;
  EXPECT_FALSE(WasmImage::Deserialize(wire).ok());
}

TEST(WasmImageFormat, FingerprintIgnoresLinking) {
  auto image = CompileFilter(GenerateFilter(300, 2));
  ASSERT_TRUE(image.ok());
  const std::uint64_t before = image->Fingerprint();
  for (WasmReloc& reloc : image->relocs) {
    reloc.resolved_host_fn = 2;
    image->code[reloc.insn_index].imm = 2;
  }
  EXPECT_EQ(image->Fingerprint(), before);
}

TEST(WasmImageFormat, FingerprintDistinguishesFilters) {
  auto a = CompileFilter(GenerateFilter(300, 1));
  auto b = CompileFilter(GenerateFilter(300, 2));
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
}

// ---- generated filters ----

class GeneratedFilters : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedFilters, ValidateCompileAndRun) {
  for (std::size_t size : {50, 300, 2000}) {
    FilterModule module = GenerateFilter(size, GetParam());
    ASSERT_TRUE(ValidateFilter(module).ok())
        << "size " << size << " seed " << GetParam();
    auto image = CompileFilter(module);
    ASSERT_TRUE(image.ok());
    for (WasmReloc& reloc : image->relocs) reloc.resolved_host_fn = 0;
    RecordingHost host;
    auto result = RunFilter(*image, host);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(result->verdict, 1u);  // verdict is masked to a bit
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedFilters,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rdx::wasm
