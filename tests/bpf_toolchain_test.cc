// End-to-end checks of the eBPF toolchain: assemble -> verify ->
// interpret / JIT, plus encode/decode round trips.
#include <gtest/gtest.h>

#include "bpf/assembler.h"
#include "bpf/exec.h"
#include "bpf/interpreter.h"
#include "bpf/jit.h"
#include "bpf/proggen.h"
#include "bpf/verifier.h"

namespace rdx::bpf {
namespace {

// Shared harness: program executed over a VectorMemory with a ctx buffer
// and a stack region.
struct Harness {
  VectorMemory mem{1 << 20};
  Rng rng{42};
  RuntimeContext rt;
  ExecOptions opts;
  std::vector<std::unique_ptr<Bytes>> keepalive;

  Harness() {
    rt.mem = &mem;
    rt.rng = &rng;
    opts.ctx_addr = mem.Allocate(256).value();
    opts.ctx_len = 256;
    opts.stack_addr = mem.Allocate(kStackSize).value();
  }

  void SetCtx(std::uint64_t off, std::uint32_t v) {
    ASSERT_TRUE(mem.StoreInt(opts.ctx_addr + off, 4, v).ok());
  }

  // Creates a map in the address space, registers it, returns its addr.
  std::uint64_t AddMap(const MapSpec& spec) {
    const std::uint64_t addr =
        mem.Allocate(MapRequiredBytes(spec), 8).value();
    MapView view(mem.SpanAt(addr, MapRequiredBytes(spec)).value());
    EXPECT_TRUE(view.Init(spec).ok());
    rt.maps.emplace(addr, spec);
    return addr;
  }
};

std::vector<Insn> MustAssemble(std::string_view src) {
  auto insns = Assemble(src);
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  return insns.value();
}

// Resolves map slots in raw insns the way a loader would (interpreter
// path), given slot -> address.
void ResolveMaps(std::vector<Insn>& insns,
                 const std::vector<std::uint64_t>& addrs) {
  for (std::size_t i = 0; i < insns.size(); ++i) {
    if (insns[i].IsLdImm64() && insns[i].src_reg == kPseudoMapFd) {
      const std::uint64_t addr = addrs.at(insns[i].imm);
      insns[i].src_reg = 0;
      insns[i].imm = static_cast<std::int32_t>(addr & 0xffffffff);
      insns[i + 1].imm = static_cast<std::int32_t>(addr >> 32);
    }
  }
}

TEST(Assembler, RoundTripsThroughEncodeDecode) {
  auto insns = MustAssemble(R"(
    r0 = 7
    r1 = r10
    r1 += -8
    *(u64*)(r1 + 0) = r0
    r2 = *(u64*)(r1 + 0)
    if r2 != 7 goto fail
    r0 = 1
    exit
  fail:
    r0 = 0
    exit
  )");
  const Bytes encoded = EncodeProgram(insns);
  auto decoded = DecodeProgram(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), insns.size());
  for (std::size_t i = 0; i < insns.size(); ++i) {
    EXPECT_EQ(EncodeProgram({(*decoded)[i]}), EncodeProgram({insns[i]}))
        << "insn " << i;
  }
}

TEST(Interpreter, ArithmeticAndBranches) {
  Harness h;
  auto insns = MustAssemble(R"(
    r0 = 10
    r0 *= 3
    r0 -= 5
    if r0 == 25 goto good
    r0 = 0
    exit
  good:
    r0 = 1
    exit
  )");
  auto result = Interpret(insns, h.rt, h.opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 1u);
}

TEST(Interpreter, ReadsCtx) {
  Harness h;
  h.SetCtx(4, 0xabcd);
  auto insns = MustAssemble(R"(
    r0 = *(u32*)(r1 + 4)
    exit
  )");
  auto result = Interpret(insns, h.rt, h.opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->r0, 0xabcdu);
}

TEST(Interpreter, MapLookupAndUpdate) {
  Harness h;
  const MapSpec spec{"m", MapType::kArray, 4, 8, 16};
  const std::uint64_t map_addr = h.AddMap(spec);

  auto insns = MustAssemble(R"(
    *(u32*)(r10 - 4) = 3
    *(u64*)(r10 - 16) = 99
    r1 = map 0
    r2 = r10
    r2 += -4
    r3 = r10
    r3 += -16
    r4 = 0
    call map_update_elem
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto miss
    r0 = *(u64*)(r0 + 0)
    exit
  miss:
    r0 = 0
    exit
  )");
  ResolveMaps(insns, {map_addr});
  auto result = Interpret(insns, h.rt, h.opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->r0, 99u);
}

TEST(Verifier, AcceptsWellFormedProgram) {
  Program prog;
  prog.name = "ok";
  prog.maps.push_back({"m", MapType::kArray, 4, 8, 16});
  prog.insns = MustAssemble(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r0 = *(u64*)(r0 + 0)
    exit
  out:
    r0 = 0
    exit
  )");
  VerifierStats stats;
  EXPECT_TRUE(Verifier().Verify(prog, &stats).ok());
  EXPECT_GT(stats.insns_processed, 0u);
}

TEST(Verifier, RejectsUninitializedRegister) {
  Program prog;
  prog.insns = MustAssemble("r0 = r3\nexit\n");
  EXPECT_FALSE(Verifier().Verify(prog).ok());
}

TEST(Verifier, RejectsMissingNullCheck) {
  Program prog;
  prog.maps.push_back({"m", MapType::kArray, 4, 8, 16});
  prog.insns = MustAssemble(R"(
    *(u32*)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    r0 = *(u64*)(r0 + 0)
    exit
  )");
  auto status = Verifier().Verify(prog);
  EXPECT_FALSE(status.ok());
}

TEST(Verifier, RejectsBackEdge) {
  Program prog;
  prog.insns = MustAssemble(R"(
  top:
    r0 = 1
    goto top
  )");
  EXPECT_FALSE(Verifier().Verify(prog).ok());
}

TEST(Verifier, RejectsOutOfBoundsStack) {
  Program prog;
  prog.insns = MustAssemble(R"(
    *(u64*)(r10 - 520) = 1
    r0 = 0
    exit
  )");
  EXPECT_FALSE(Verifier().Verify(prog).ok());
}

TEST(Verifier, AcceptsGeneratedPrograms) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Program prog = GenerateProgram({.target_insns = 2000, .seed = seed});
    EXPECT_EQ(prog.insns.size(), 2000u);
    auto status = Verifier().Verify(prog);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": "
                             << status.ToString();
  }
}

TEST(Jit, MatchesInterpreterOnGeneratedPrograms) {
  JitCompiler jit;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Program prog = GenerateProgram({.target_insns = 1000, .seed = seed});
    ASSERT_TRUE(Verifier().Verify(prog).ok());

    Harness h;
    const std::uint64_t map_addr = h.AddMap(prog.maps[0]);
    h.SetCtx(0, static_cast<std::uint32_t>(seed * 7919));

    std::vector<Insn> resolved = prog.insns;
    ResolveMaps(resolved, {map_addr});
    auto interp = Interpret(resolved, h.rt, h.opts);
    ASSERT_TRUE(interp.ok()) << interp.status().ToString();

    // Fresh harness for JIT so map side effects start from scratch.
    Harness h2;
    const std::uint64_t map_addr2 = h2.AddMap(prog.maps[0]);
    h2.SetCtx(0, static_cast<std::uint32_t>(seed * 7919));
    auto image = jit.Compile(prog);
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    for (const Relocation& reloc : image->relocs) {
      if (reloc.kind == RelocKind::kMapAddress) {
        image->code[reloc.index].imm64 = map_addr2;
      }
    }
    auto jit_result = RunJit(*image, h2.rt, h2.opts);
    ASSERT_TRUE(jit_result.ok()) << jit_result.status().ToString();
    EXPECT_EQ(jit_result->r0, interp->r0) << "seed " << seed;
    EXPECT_EQ(jit_result->insns_executed, interp->insns_executed);
  }
}

TEST(Jit, SerializeDeserializeRoundTrip) {
  Program prog = GenerateProgram({.target_insns = 500, .seed = 3});
  auto image = JitCompiler().Compile(prog);
  ASSERT_TRUE(image.ok());
  const Bytes wire = image->Serialize();
  auto back = JitImage::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->program_name, image->program_name);
  EXPECT_EQ(back->code.size(), image->code.size());
  EXPECT_EQ(back->relocs.size(), image->relocs.size());
  EXPECT_EQ(back->Fingerprint(), image->Fingerprint());
}

TEST(Jit, RefusesToRunUnlinkedImage) {
  Program prog = GenerateProgram({.target_insns = 1300, .seed = 1});
  auto image = JitCompiler().Compile(prog);
  ASSERT_TRUE(image.ok());
  bool has_map_reloc = false;
  for (const Relocation& r : image->relocs) {
    has_map_reloc |= r.kind == RelocKind::kMapAddress;
  }
  ASSERT_TRUE(has_map_reloc);
  Harness h;
  auto result = RunJit(*image, h.rt, h.opts);
  EXPECT_FALSE(result.ok());
}

TEST(Jit, CorruptedImageRejectedByChecksum) {
  Program prog = GenerateProgram({.target_insns = 300, .seed = 9});
  Bytes wire = JitCompiler().Compile(prog)->Serialize();
  wire[40] ^= 0xff;
  EXPECT_FALSE(JitImage::Deserialize(wire).ok());
}

}  // namespace
}  // namespace rdx::bpf
