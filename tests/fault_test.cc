// Fault-injection + self-healing tests: FaultPlan parsing, deterministic
// replay, QP loss mid-deploy (retry/reconnect/exactly-once commit), MAC
// rejection of corrupted in-flight images, crash-and-reboot recovery,
// link degradation/partition windows, the control plane's health lease,
// and the orchestrator's on_failure=rollback policy.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bpf/assembler.h"
#include "core/layout.h"
#include "core/orchestrator.h"
#include "core/reliability.h"
#include "fault/injector.h"

namespace rdx {
namespace {

using core::CodeFlow;
using core::ControlPlane;
using core::ControlPlaneConfig;
using core::RecoveryManager;
using core::RecoveryOutcome;
using core::RetryPolicy;
using core::Sandbox;
using core::SandboxConfig;
using fault::FaultInjector;
using fault::FaultKind;
using fault::ParseFaultPlan;

// Arithmetic-only program whose JIT image is comfortably larger than the
// injector's minimum corruptible payload (64 B), with no maps so the
// image is the first large write of a deploy.
bpf::Program BigProgram() {
  std::string src = "r0 = 0\n";
  for (int i = 1; i <= 20; ++i) {
    src += "r0 += " + std::to_string(i) + "\n";
  }
  src += "exit\n";
  bpf::Program prog;
  prog.name = "sum";
  auto insns = bpf::Assemble(src);
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

constexpr std::uint64_t kBigProgramResult = 210;  // 1+2+...+20

// Program with one map, so recovery after a reboot also re-deploys the
// XState the image links against.
bpf::Program CounterProgram() {
  bpf::Program prog;
  prog.name = "counter";
  prog.maps.push_back({"counters", bpf::MapType::kArray, 4, 8, 4});
  auto insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)
    *(u32*)(r10 - 4) = 0
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r7 = *(u64*)(r0 + 0)
    r7 += 1
    *(u64*)(r0 + 0) = r7
  out:
    r0 = r6
    exit
  )");
  EXPECT_TRUE(insns.ok()) << insns.status().ToString();
  prog.insns = std::move(insns).value();
  return prog;
}

struct FaultRig {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<FaultInjector> injector;
  std::vector<std::unique_ptr<Sandbox>> sandboxes;
  std::vector<CodeFlow*> flows;

  explicit FaultRig(int nodes, ControlPlaneConfig cp_config = {},
                    SandboxConfig sandbox_config = {}) {
    const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
    cp = std::make_unique<ControlPlane>(events, fabric, cp_id, cp_config);
    injector = std::make_unique<FaultInjector>(events, fabric);
    for (int i = 0; i < nodes; ++i) {
      rdma::Node& node = fabric.AddNode("n" + std::to_string(i));
      sandboxes.push_back(
          std::make_unique<Sandbox>(events, node, sandbox_config));
      EXPECT_TRUE(sandboxes.back()->CtxInit().ok());
      auto reg = sandboxes.back()->CtxRegister();
      EXPECT_TRUE(reg.ok());
      CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(*sandboxes.back(), reg.value(),
                         [&flow](StatusOr<CodeFlow*> f) {
                           ASSERT_TRUE(f.ok()) << f.status().ToString();
                           flow = f.value();
                         });
      events.Run();
      EXPECT_NE(flow, nullptr);
      flows.push_back(flow);
    }
  }

  rdma::NodeId NodeId(int i) { return sandboxes[i]->node().id(); }

  void Arm(const std::string& plan_text) {
    auto plan = ParseFaultPlan(plan_text);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_TRUE(injector->Arm(plan.value()).ok());
  }

  // Deploys through the recovery layer and runs to completion.
  StatusOr<RecoveryOutcome> DeployReliably(RecoveryManager& rm, int node,
                                           const bpf::Program& prog,
                                           int hook, int max_retries = -1) {
    StatusOr<RecoveryOutcome> result = InvalidArgument("never completed");
    bool settled = false;
    rm.DeployReliably(
        *flows[node], prog, hook,
        [&](StatusOr<RecoveryOutcome> r) {
          result = std::move(r);
          settled = true;
        },
        max_retries);
    while (!settled && !events.Empty()) events.Step();
    EXPECT_TRUE(settled);
    return result;
  }

  std::uint64_t RemoteEpochWord(int node) {
    const auto& view = sandboxes[node]->view();
    return sandboxes[node]
        ->node()
        .memory()
        .ReadU64(view.cb_addr + core::kCbEpoch)
        .value();
  }
};

// ---- plan parsing ----

TEST(FaultPlan, ParsesEveryKind) {
  auto plan = ParseFaultPlan(R"(
    # full grammar tour
    seed 42
    qp_error node=1 at=10us
    crash node=1 at=50us reboot_after=200us
    partition node=2 at=5us for=20us
    degrade node=2 at=5us for=20us factor=8
    corrupt node=1 at=30us bytes=4
    drop node=* at=0 for=1ms p=0.05
    rogue node=1 at=40us hook=2 kind=fuel
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->events.size(), 7u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kQpError);
  EXPECT_EQ(plan->events[0].at, sim::Micros(10));
  EXPECT_EQ(plan->events[1].reboot_after, sim::Micros(200));
  EXPECT_EQ(plan->events[2].window, sim::Micros(20));
  EXPECT_EQ(plan->events[3].factor, 8.0);
  EXPECT_EQ(plan->events[4].bytes, 4u);
  EXPECT_EQ(plan->events[5].node, rdma::kInvalidNode);
  EXPECT_DOUBLE_EQ(plan->events[5].probability, 0.05);
  EXPECT_EQ(plan->events[6].kind, FaultKind::kRogue);
  EXPECT_EQ(plan->events[6].hook, 2);
  EXPECT_EQ(plan->events[6].rogue, fault::RogueFaultKind::kFuel);
}

TEST(FaultPlan, RejectionsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  const Case bad[] = {
      {"qp_error at=10us\n", "needs node="},
      {"qp_error node=1\n", "needs at="},
      {"\npartition node=1 at=0\n", "line 2"},
      {"drop node=* at=0 for=1ms\n", "needs p="},
      {"degrade node=1 at=0 for=1ms factor=0.5\n", "factor"},
      {"corrupt node=1 at=0 bytes=0\n", "bytes"},
      {"crash node=* at=0\n", "node=*"},
      {"explode node=1 at=0\n", "unknown fault kind"},
      {"qp_error node=1 at=10lightyears\n", "bad time"},
      {"seed banana\n", "seed"},
      {"rogue node=1 at=0 kind=trap\n", "hook="},
      {"rogue node=1 at=0 hook=0\n", "kind="},
      {"rogue node=1 at=0 hook=0 kind=sneaky\n", "bad rogue kind"},
      {"rogue node=* at=0 hook=0 kind=trap\n", "node=*"},
  };
  for (const Case& c : bad) {
    auto plan = ParseFaultPlan(c.text);
    ASSERT_FALSE(plan.ok()) << c.text;
    EXPECT_NE(plan.status().message().find(c.expect), std::string::npos)
        << c.text << " -> " << plan.status().ToString();
  }
}

// ---- determinism ----

struct ScenarioRun {
  std::vector<std::string> trace;
  sim::SimTime end = 0;
  std::uint64_t faults = 0;
};

ScenarioRun RunLossyScenario() {
  FaultRig rig(2);
  char plan[256];
  std::snprintf(plan, sizeof(plan),
                "seed 99\n"
                "drop node=* at=0 for=20ms p=0.15\n"
                "qp_error node=%u at=40us\n"
                "degrade node=%u at=100us for=400us factor=4\n",
                rig.NodeId(0), rig.NodeId(1));
  rig.Arm(plan);
  RecoveryManager rm(*rig.cp, {}, /*seed=*/5);
  bpf::Program prog = BigProgram();
  (void)rig.DeployReliably(rm, 0, prog, 0, /*max_retries=*/8);
  (void)rig.DeployReliably(rm, 1, prog, 0, /*max_retries=*/8);
  rig.events.Run();
  return {rig.injector->trace(), rig.events.Now(),
          rig.injector->faults_injected()};
}

TEST(FaultInjection, SameSeedSamePlanIsBitIdentical) {
  ScenarioRun a = RunLossyScenario();
  ScenarioRun b = RunLossyScenario();
  EXPECT_GT(a.faults, 0u);
  EXPECT_EQ(a.end, b.end);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "trace diverges at entry " << i;
  }
}

// ---- QP loss mid-deploy ----

TEST(Recovery, QpErrorMidDeployRetriesAndCommitsExactlyOnce) {
  // Phase 1: measure an undisturbed deploy of the same program.
  sim::Duration clean_duration = 0;
  {
    FaultRig rig(1);
    RecoveryManager rm(*rig.cp);
    const sim::SimTime t0 = rig.events.Now();
    auto r = rig.DeployReliably(rm, 0, BigProgram(), 0);
    ASSERT_TRUE(r.ok());
    clean_duration = rig.events.Now() - t0;
    ASSERT_GT(clean_duration, 0);
  }

  // Phase 2: kill the QP mid-deploy.
  FaultRig rig(1);
  char plan[96];
  std::snprintf(plan, sizeof(plan), "qp_error node=%u at=%lld\n",
                rig.NodeId(0),
                static_cast<long long>(clean_duration / 2));
  rig.Arm(plan);
  RecoveryManager rm(*rig.cp);
  auto r = rig.DeployReliably(rm, 0, BigProgram(), 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->attempts, 2);
  EXPECT_GE(r->reconnects, 1);
  EXPECT_GE(rig.injector->faults_injected(), 1u);

  // Exactly-once: one committed generation, remotely and in the flow's
  // bookkeeping, no matter how many attempts it took.
  EXPECT_EQ(r->version, 1u);
  EXPECT_EQ(rig.flows[0]->HookVersion(0), 1u);
  EXPECT_EQ(rig.sandboxes[0]->CommittedVersion(0), 1u);
  EXPECT_LE(rig.RemoteEpochWord(0), 1u);

  // The data plane runs the recovered deployment.
  rig.sandboxes[0]->RefreshHookNow(0);
  Bytes packet(4, 0);
  auto exec = rig.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->r0, kBigProgramResult);
}

// ---- corruption vs image MAC ----

TEST(Recovery, CorruptedImageWriteRejectedByMacAndRedeployed) {
  ControlPlaneConfig cp_config;
  cp_config.signing_key = 0x5eedc0de;
  SandboxConfig sandbox_config;
  sandbox_config.signing_key = 0x5eedc0de;
  FaultRig rig(1, cp_config, sandbox_config);
  char plan[96];
  std::snprintf(plan, sizeof(plan), "corrupt node=%u at=0 bytes=6\n",
                rig.NodeId(0));
  rig.Arm(plan);

  // The corrupted transfer "succeeds" from the wire's point of view: the
  // bytes land, the commit goes through, the control plane sees no error.
  bool deployed = false;
  rig.cp->InjectExtension(*rig.flows[0], BigProgram(), 0,
                          [&](StatusOr<core::InjectTrace> r) {
                            EXPECT_TRUE(r.ok()) << r.status().ToString();
                            deployed = true;
                          });
  rig.events.Run();
  ASSERT_TRUE(deployed);
  EXPECT_GE(rig.injector->faults_injected(), 1u);

  // ...but the data plane refuses to execute it: the ImageDesc MAC does
  // not verify over the flipped bytes.
  rig.sandboxes[0]->RefreshHookNow(0);
  Bytes packet(4, 0);
  auto exec = rig.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kPermissionDenied);
  EXPECT_GE(rig.sandboxes[0]->stats().signature_failures, 1u);

  // Redeploy (the corrupt fault was one-shot): a clean image commits as
  // the next generation and executes.
  RecoveryManager rm(*rig.cp);
  auto r = rig.DeployReliably(rm, 0, BigProgram(), 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, 2u);
  rig.sandboxes[0]->RefreshHookNow(0);
  auto exec2 = rig.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_TRUE(exec2.ok()) << exec2.status().ToString();
  EXPECT_EQ(exec2->r0, kBigProgramResult);
}

// ---- crash and reboot ----

TEST(Recovery, CrashAndRebootMidDeployRecovers) {
  // Phase 1: measure an undisturbed deploy so the crash can be aimed at
  // the middle of the transfer.
  sim::Duration clean_duration = 0;
  {
    FaultRig rig(1);
    RecoveryManager rm(*rig.cp);
    const sim::SimTime t0 = rig.events.Now();
    auto r = rig.DeployReliably(rm, 0, CounterProgram(), 0);
    ASSERT_TRUE(r.ok());
    clean_duration = rig.events.Now() - t0;
    ASSERT_GT(clean_duration, 0);
  }

  FaultRig rig(1);
  char plan[96];
  std::snprintf(plan, sizeof(plan), "crash node=%u at=%lld reboot_after=2ms\n",
                rig.NodeId(0),
                static_cast<long long>(rig.events.Now() + clean_duration / 2));
  rig.Arm(plan);
  Sandbox* sandbox = rig.sandboxes[0].get();
  rig.injector->SetNodeHooks(
      rig.NodeId(0),
      {.on_crash = [sandbox] { sandbox->Crash(); },
       .on_reboot = [sandbox] { EXPECT_TRUE(sandbox->Reboot().ok()); }});

  RetryPolicy policy;
  policy.max_retries = 10;
  policy.base_backoff = sim::Micros(100);
  RecoveryManager rm(*rig.cp, policy);
  auto r = rig.DeployReliably(rm, 0, CounterProgram(), 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->attempts, 2);
  EXPECT_GE(r->reconnects, 1);

  // The rebooted node lost everything; recovery re-handshook, detected
  // the wipe, and redeployed (image + XState) as generation 1.
  EXPECT_EQ(r->version, 1u);
  EXPECT_EQ(rig.sandboxes[0]->CommittedVersion(0), 1u);
  EXPECT_FALSE(rig.flows[0]->xstates().empty());

  rig.sandboxes[0]->RefreshHookNow(0);
  Bytes packet = {0x07, 0x00, 0x00, 0x00};
  auto exec = rig.sandboxes[0]->ExecuteHook(0, packet);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->r0, 7u);
}

// ---- link quality windows ----

TEST(FaultInjection, DegradeWindowStretchesTransfers) {
  sim::Duration base = 0;
  for (int degraded = 0; degraded < 2; ++degraded) {
    FaultRig rig(1);
    if (degraded) {
      char plan[96];
      std::snprintf(plan, sizeof(plan),
                    "degrade node=%u at=0 for=1s factor=16\n",
                    rig.NodeId(0));
      rig.Arm(plan);
    }
    RecoveryManager rm(*rig.cp);
    const sim::SimTime t0 = rig.events.Now();
    auto r = rig.DeployReliably(rm, 0, BigProgram(), 0);
    ASSERT_TRUE(r.ok());
    const sim::Duration took = rig.events.Now() - t0;
    if (!degraded) {
      base = took;
    } else {
      EXPECT_GT(took, base) << "degrade window added no latency";
    }
  }
}

TEST(FaultInjection, PartitionDropsInsideWindowHealsAfter) {
  FaultRig rig(1);
  char plan[96];
  std::snprintf(plan, sizeof(plan), "partition node=%u at=0 for=80us\n",
                rig.NodeId(0));
  rig.Arm(plan);
  RecoveryManager rm(*rig.cp);
  // Deploy starts inside the partition: its first transfer attempt is
  // dropped (RETRY_EXC_ERR), then a retry lands after the window closes.
  auto r = rig.DeployReliably(rm, 0, BigProgram(), 0, /*max_retries=*/10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->version, 1u);
  EXPECT_GT(rig.injector->faults_injected(), 0u);
  EXPECT_GT(rig.events.Now(), sim::Micros(80));
}

// ---- health lease ----

TEST(Health, LeaseTracksLastSuccessfulCompletion) {
  FaultRig rig(1);
  const rdma::NodeId node = rig.NodeId(0);
  // The handshake already completed successfully during rig setup.
  EXPECT_GE(rig.cp->LastSuccess(node), 0);
  EXPECT_TRUE(rig.cp->NodeHealthy(node, sim::Millis(5)));
  EXPECT_EQ(rig.cp->LastSuccess(node + 100), -1);
  EXPECT_FALSE(rig.cp->NodeHealthy(node + 100, sim::Millis(5)));

  // Idle past the lease: the node falls out of the health view until the
  // next successful completion renews it.
  rig.events.ScheduleAfter(sim::Millis(10), [] {});
  rig.events.Run();
  EXPECT_FALSE(rig.cp->NodeHealthy(node, sim::Millis(5)));

  RecoveryManager rm(*rig.cp);
  auto r = rig.DeployReliably(rm, 0, BigProgram(), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(rig.cp->NodeHealthy(node, sim::Millis(5)));
  EXPECT_TRUE(rm.Healthy(*rig.flows[0]));
}

TEST(Health, LeaseBoundaryTickIsStillHealthy) {
  FaultRig rig(1);
  const rdma::NodeId node = rig.NodeId(0);
  const sim::SimTime last = rig.cp->LastSuccess(node);
  ASSERT_GE(last, 0);
  const sim::Duration lease = sim::Micros(500);

  // Land exactly on the boundary: now - last == lease must still count as
  // healthy (the lease is inclusive); one tick past it must not.
  rig.events.ScheduleAt(last + lease, [&] {
    EXPECT_TRUE(rig.cp->NodeHealthy(node, lease));
  });
  rig.events.ScheduleAt(last + lease + 1, [&] {
    EXPECT_FALSE(rig.cp->NodeHealthy(node, lease));
  });
  rig.events.Run();
}

// ---- orchestrator failure policy ----

TEST(Orchestration, RollingDeployRollsBackWhenANodeIsDead) {
  FaultRig rig(3);
  // Node 2 is dead for the whole run (no reboot).
  char plan[96];
  std::snprintf(plan, sizeof(plan), "crash node=%u at=0\n", rig.NodeId(2));
  rig.Arm(plan);

  RetryPolicy policy;
  policy.base_backoff = sim::Micros(20);
  RecoveryManager rm(*rig.cp, policy);
  core::Orchestrator orchestrator(*rig.cp);
  orchestrator.SetRecovery(&rm);
  for (CodeFlow* flow : rig.flows) orchestrator.RegisterNode(flow);
  orchestrator.RegisterProgram("firewall", BigProgram());

  auto orch_plan = core::ParseOrchestration(R"(
    extension firewall kind=ebpf hook=0
    group all nodes=0,1,2
    deploy firewall to=all strategy=rolling max_retries=1 on_failure=rollback
  )");
  ASSERT_TRUE(orch_plan.ok()) << orch_plan.status().ToString();

  core::OrchestrationReport report;
  bool done = false;
  orchestrator.Execute(orch_plan.value(), nullptr,
                       [&](StatusOr<core::OrchestrationReport> r) {
                         ASSERT_TRUE(r.ok()) << r.status().ToString();
                         report = r.value();
                         done = true;
                       });
  rig.events.Run();
  ASSERT_TRUE(done);

  // The plan finished (rollback policy absorbs the failure), and the
  // report spells out what happened.
  EXPECT_EQ(report.actions_executed, 1u);
  EXPECT_EQ(report.actions_degraded, 1u);
  EXPECT_EQ(report.nodes_failed, 1u);
  EXPECT_EQ(report.nodes_rolled_back, 2u);
  ASSERT_EQ(report.log.size(), 1u);
  EXPECT_NE(report.log[0].find("rolled back"), std::string::npos)
      << report.log[0];

  // The two nodes that had taken v1 are back to "nothing deployed".
  EXPECT_EQ(rig.sandboxes[0]->CommittedVersion(0), 0u);
  EXPECT_EQ(rig.sandboxes[1]->CommittedVersion(0), 0u);
}

}  // namespace
}  // namespace rdx
