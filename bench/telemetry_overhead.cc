// Telemetry overhead: the data-plane cost of trace-ring emission on the
// healthy path. Every hook execution emits one fixed-size ring event
// whose cost (cost.trace_emit_cycles) is charged to the serving CPU, so
// the on/off delta shows up directly in the virtual clock. The bench
// runs the same deploy + closed-loop KV window with telemetry off and
// on, reports the virtual-time overhead (budget: <= 2%), then harvests
// the ring agentlessly and writes the merged chrome://tracing JSON as an
// end-to-end demo of the telemetry subsystem.
#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "kvstore/kvstore.h"
#include "telemetry/collector.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_export.h"

using namespace rdx;

namespace {

struct Rig {
  sim::EventQueue events;
  std::unique_ptr<rdma::Fabric> fabric;
  rdma::NodeId cp_node = 0;
  std::unique_ptr<core::ControlPlane> cp;
  std::unique_ptr<kvstore::KvStore> store;
  core::CodeFlow* flow = nullptr;

  explicit Rig(bool telemetry) {
    fabric = std::make_unique<rdma::Fabric>(events);
    cp_node = fabric->AddNode("cp", 128u << 20).id();
    cp = std::make_unique<core::ControlPlane>(events, *fabric, cp_node);
    rdma::Node& node = fabric->AddNode("kv-node", 64u << 20);
    kvstore::StoreConfig config;
    config.cores = 1;
    config.telemetry = telemetry;
    store = std::make_unique<kvstore::KvStore>(events, node, config);
    auto reg = store->sandbox().CtxRegister();
    if (!reg.ok()) std::abort();
    cp->CreateCodeFlow(store->sandbox(), reg.value(),
                       [this](StatusOr<core::CodeFlow*> f) {
                         if (f.ok()) flow = f.value();
                       });
    events.Run();
    if (flow == nullptr) std::abort();
  }

  void Deploy(const bpf::Program& prog, int hook) {
    bool done = false;
    cp->InjectExtension(*flow, prog, hook,
                        [&](StatusOr<core::InjectTrace> r) {
                          if (!r.ok()) std::abort();
                          done = true;
                        });
    events.Run();
    if (!done) std::abort();
    store->sandbox().RefreshHookNow(hook);
  }

  // `n` closed-loop requests (each runs the attached hook).
  void RunRequests(int n) {
    for (int i = 0; i < n; ++i) {
      kvstore::Command command;
      command.type = (i % 4 == 0) ? kvstore::CommandType::kSet
                                  : kvstore::CommandType::kGet;
      command.key = "key" + std::to_string(i % 32);
      command.value = "v";
      bool done = false;
      store->Execute(command, [&](StatusOr<std::string> r) {
        if (!r.ok()) std::abort();
        done = true;
      });
      while (!done && !events.Empty()) events.Step();
    }
  }

  // Virtual time of one healthy deploy + `n` hook-running requests.
  sim::Duration MeasureWindow(const bpf::Program& prog, int n) {
    const sim::SimTime t0 = events.Now();
    Deploy(prog, 0);
    RunRequests(n);
    return events.Now() - t0;
  }
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Telemetry overhead: trace-ring emission on the healthy path",
      "DESIGN.md telemetry (wait-free ring emit, agentless harvest; "
      "budget: <= 2% virtual-clock overhead)");

  const int kRequests = bench::ScaledIters(4000, 100);
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 1300, .seed = 3});

  Rig off(/*telemetry=*/false);
  const double off_ns = static_cast<double>(off.MeasureWindow(prog, kRequests));

  Rig on(/*telemetry=*/true);
  telemetry::Tracer tracer(on.events);
  on.cp->SetTracer(&tracer);
  tracer.SetProcessName(static_cast<std::uint32_t>(on.cp_node),
                        "control-plane");
  tracer.SetProcessName(static_cast<std::uint32_t>(on.flow->node()),
                        "kv-node");
  const double on_ns = static_cast<double>(on.MeasureWindow(prog, kRequests));
  const double overhead_pct = (on_ns - off_ns) / off_ns * 100.0;

  bench::PrintRow({"telemetry", "vclock_ms", "ns_per_req"});
  bench::PrintRow({"off", bench::Fmt(off_ns / 1e6, 3),
                   bench::Fmt(off_ns / kRequests, 1)});
  bench::PrintRow({"on", bench::Fmt(on_ns / 1e6, 3),
                   bench::Fmt(on_ns / kRequests, 1)});
  std::printf("    healthy-path overhead: %.2f%% (budget 2%%)\n",
              overhead_pct);

  // ---- agentless harvest + chrome://tracing export demo ----
  telemetry::Collector collector(tracer);
  bool harvested = false;
  on.cp->HarvestTrace(*on.flow, collector, [&](Status s) {
    if (!s.ok()) std::abort();
    harvested = true;
  });
  on.events.Run();
  if (!harvested) std::abort();
  telemetry::EmitFabricCounterEvents(tracer, *on.fabric);

  telemetry::MetricsRegistry registry;
  telemetry::CaptureFabricMetrics(registry, *on.fabric);
  on.store->sandbox().ExportMetrics(registry, "node1.sandbox");
  on.cp->ExportMetrics(registry);
  collector.ExportMetrics(registry);

  const char* trace_path = "telemetry_trace.json";
  if (!telemetry::WriteChromeTrace(tracer, trace_path).ok()) std::abort();
  const telemetry::TraceRingWriter* ring = on.store->sandbox().trace_writer();
  std::printf(
      "    ring: %llu emitted, %llu dropped; harvested %llu events "
      "(%llu overwritten, %llu torn)\n",
      static_cast<unsigned long long>(ring ? ring->emitted() : 0),
      static_cast<unsigned long long>(ring ? ring->dropped() : 0),
      static_cast<unsigned long long>(collector.stats().events),
      static_cast<unsigned long long>(collector.stats().overwritten),
      static_cast<unsigned long long>(collector.stats().torn));
  std::printf("    wrote %zu timeline events to %s (chrome://tracing)\n",
              tracer.events().size(), trace_path);

  bench::Json json;
  json.Add("requests", static_cast<std::uint64_t>(kRequests))
      .Add("vclock_off_ns", off_ns, 0)
      .Add("vclock_on_ns", on_ns, 0)
      .Add("overhead_pct", overhead_pct, 3)
      .Add("ring_emitted", ring ? ring->emitted() : 0)
      .Add("ring_dropped", ring ? ring->dropped() : 0)
      .Add("harvested_events", collector.stats().events)
      .Add("timeline_events",
           static_cast<std::uint64_t>(tracer.events().size()));
  bench::PrintBenchJson("telemetry_overhead", json, &on.events);
  return 0;
}
