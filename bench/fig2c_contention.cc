// Fig 2c: control-path / data-path contention. A microservice app runs
// near CPU saturation while extension updates are injected at increasing
// rates (x-axis: updates per 10 s). With the agent baseline, each update
// spends ms of *node* CPU on validation + compilation, and request
// completion rate collapses; with RDX the same update rate leaves the
// data path untouched.
#include "bench/bench_util.h"
#include "mesh/mesh.h"

using namespace rdx;

namespace {

struct Point {
  double completion_rate;
  double cpu_util;
};

Point RunWindow(bool agent_path, int updates_per_10s, std::uint64_t seed) {
  // Smoke mode shrinks the measurement window (virtual seconds cost real
  // wall time through event count); the shape is meaningless but every
  // path still runs.
  const sim::Duration warmup =
      bench::SmokeMode() ? sim::Millis(50) : sim::Seconds(1);
  const sim::Duration window =
      bench::SmokeMode() ? sim::Millis(200) : sim::Seconds(10);
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
  core::ControlPlane cp(events, fabric, cp_id);

  mesh::MeshConfig config;
  config.app = mesh::AppSpec::Generate("fig2c", 4, 42);
  config.request_rate_per_s = 480;
  config.cores_per_service = 1;
  // Heavier per-hop service demand so one core saturates near the paper's
  // ~500 req/s operating point.
  config.cost.mesh_request_cycles = 6'800'000;  // ~2 ms
  config.seed = seed;
  mesh::MeshSim sim(events, fabric, config);

  // Wire both management paths.
  std::vector<std::unique_ptr<agent::NodeAgent>> agents;
  std::vector<core::CodeFlow*> flows;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    agents.push_back(std::make_unique<agent::NodeAgent>(
        events, sim.sandbox(i), sim.cpu(i), agent::AgentConfig{}));
    auto reg = sim.sandbox(i).CtxRegister();
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(sim.sandbox(i), reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        flow = f.value();
                      });
    events.Run();
    flows.push_back(flow);
  }

  sim.StartWorkload();
  events.RunUntil(warmup);
  (void)sim.TakeMetrics();

  // Schedule `updates_per_10s` filter updates, spread over the window,
  // round-robin across services.
  // Each update is an app-level rollout: the new filter version reaches
  // every sidecar (as an Istio EnvoyFilter change would).
  const sim::SimTime window_start = events.Now();
  for (int u = 0; u < updates_per_10s; ++u) {
    const sim::SimTime at =
        window_start + window * (u + 1) / (updates_per_10s + 1);
    events.ScheduleAt(at, [&, u] {
      wasm::FilterModule filter = wasm::GenerateFilter(
          5000, static_cast<std::uint64_t>(u + 1));
      for (std::size_t svc = 0; svc < sim.size(); ++svc) {
        if (agent_path) {
          agents[svc]->LoadWasmFilter(filter, 0,
                                      [](StatusOr<agent::AgentTrace>) {});
        } else {
          cp.InjectWasmFilter(*flows[svc], filter, 0,
                              [](StatusOr<core::InjectTrace>) {});
        }
      }
    });
  }
  events.RunUntil(window_start + window);
  mesh::MeshMetrics metrics = sim.TakeMetrics();
  sim.StopWorkload();

  double util = 0;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    util = std::max(util, sim.cpu(i).Utilization());
  }
  return {metrics.CompletionRatePerSec(), util};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 2c: request completion vs control-path update rate",
      "Figure 2c (agent contention halves completion near saturation; "
      "agentless RDX stays flat)");
  bench::PrintRow({"upd/10s", "agent_req_s", "rdx_req_s", "agent_cpu"});

  const std::vector<int> kRates = bench::SmokeMode()
                                      ? std::vector<int>{0, 50}
                                      : std::vector<int>{0, 50, 100, 200,
                                                         300, 400};
  for (int rate : kRates) {
    const Point with_agent = RunWindow(/*agent_path=*/true, rate, 7);
    const Point with_rdx = RunWindow(/*agent_path=*/false, rate, 7);
    bench::PrintRow({bench::FmtInt(rate),
                     bench::Fmt(with_agent.completion_rate, 0),
                     bench::Fmt(with_rdx.completion_rate, 0),
                     bench::Fmt(with_agent.cpu_util * 100, 0) + "%"});
  }
  std::printf(
      "\nshape check: the agent line degrades with update rate (toward ~2x "
      "at 400/10s); the RDX line is flat within noise.\n");
  return 0;
}
