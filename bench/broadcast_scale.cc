// Fleet-deploy scaling sweep: serial per-node injection vs the
// pipelined, doorbell-batched collective path (CollectiveCodeFlow::
// DeployPipelined) over N ∈ {1..64} nodes. The serial baseline deploys
// every wave to every node one inject at a time with doorbell batching
// disabled — one rdx dispatch charge and one doorbell per WR, per node,
// per wave. The pipelined path compiles each wave once (artifact cache),
// streams image chunks over one doorbell-batched WR chain per node,
// overlaps wave k+1's JIT with wave k's transfer, and fans the CAS
// commit wave out across all per-node QPs concurrently. A final faulted
// column pipelines the same deploy with one node's NIC dropping
// everything, showing straggler quarantine instead of a stalled wave.
#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "fault/injector.h"

using namespace rdx;

namespace {

constexpr int kWaves = 4;

// Small-ish programs and fine-grained chunks: the sweep isolates the
// per-node deploy costs (dispatch, doorbells, transfer, commit) that the
// pipeline amortizes, rather than the one-off JIT both modes share via
// the artifact cache. ~2.5 KB images over 1 KB chunks give every image
// write a multi-WR chain.
constexpr int kInsnsPerProgram = 300;
constexpr std::uint32_t kChunkBytes = 1024;

bpf::Program WaveProgram(int wave) {
  return bpf::GenerateProgram({.target_insns = kInsnsPerProgram,
                               .seed = static_cast<std::uint64_t>(wave + 1)});
}

struct ModeResult {
  sim::Duration elapsed = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t chained_wrs = 0;
  std::uint64_t cache_hits = 0;
  std::size_t stragglers = 0;
};

// Baseline: one InjectExtension at a time, batching off.
ModeResult RunSerial(int n) {
  core::ControlPlaneConfig config;
  config.use_doorbell_batching = false;
  config.chunk_bytes = kChunkBytes;
  bench::Cluster cluster(n, config);
  const std::uint64_t doorbells0 = cluster.fabric->doorbells_rung();
  const sim::SimTime t0 = cluster.events.Now();
  for (int wave = 0; wave < kWaves; ++wave) {
    bpf::Program prog = WaveProgram(wave);
    for (int node = 0; node < n; ++node) {
      bool settled = false;
      cluster.cp->InjectExtension(*cluster.nodes[node].flow, prog, wave,
                                  [&settled](StatusOr<core::InjectTrace> r) {
                                    if (!r.ok()) std::abort();
                                    settled = true;
                                  });
      cluster.RunUntilFlag(settled);
    }
  }
  ModeResult out;
  out.elapsed = cluster.events.Now() - t0;
  out.doorbells = cluster.fabric->doorbells_rung() - doorbells0;
  out.chained_wrs = cluster.fabric->chained_wrs();
  out.cache_hits = cluster.cp->compile_cache_hits();
  return out;
}

// Pipelined collective deploy; with `faulted`, the last node's NIC drops
// every WR so the wave must quarantine it and keep going.
ModeResult RunPipelined(int n, bool faulted) {
  core::ControlPlaneConfig config;
  config.chunk_bytes = kChunkBytes;
  bench::Cluster cluster(n, config);
  fault::FaultInjector injector(cluster.events, *cluster.fabric);
  if (faulted) {
    char plan_text[96];
    std::snprintf(plan_text, sizeof(plan_text),
                  "seed 7\ndrop node=%u at=0 for=10s p=1",
                  static_cast<unsigned>(cluster.nodes[n - 1].node->id()));
    auto plan = fault::ParseFaultPlan(plan_text);
    if (!plan.ok() || !injector.Arm(plan.value()).ok()) std::abort();
  }

  std::vector<bpf::Program> progs;
  std::vector<core::DeploySpec> specs;
  for (int wave = 0; wave < kWaves; ++wave) {
    progs.push_back(WaveProgram(wave));
  }
  for (int wave = 0; wave < kWaves; ++wave) {
    specs.push_back({&progs[wave], wave});
  }
  std::vector<core::CodeFlow*> flows;
  for (auto& bundle : cluster.nodes) flows.push_back(bundle.flow);

  core::CollectiveCodeFlow collective(*cluster.cp, flows);
  const std::uint64_t doorbells0 = cluster.fabric->doorbells_rung();
  ModeResult out;
  bool settled = false;
  collective.DeployPipelined(
      specs, core::PipelineOptions{},
      [&](StatusOr<core::PipelineResult> r) {
        if (!r.ok()) std::abort();
        out.elapsed = r->total;
        out.stragglers = r->stragglers;
        settled = true;
      });
  cluster.RunUntilFlag(settled);
  out.doorbells = cluster.fabric->doorbells_rung() - doorbells0;
  out.chained_wrs = cluster.fabric->chained_wrs();
  out.cache_hits = cluster.cp->compile_cache_hits();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fleet deploy scaling: serial vs pipelined + doorbell-batched",
      "§4 fast updates at fleet scale (dispatch/doorbell amortization)");
  bench::PrintRow({"nodes", "serial_us", "pipelined_us", "speedup",
                   "db_serial", "db_pipe", "chained_wrs", "quarantined"});

  std::vector<int> sweep = {1, 2, 4, 8, 16, 32, 64};
  if (bench::SmokeMode()) sweep = {1, 4, 8};

  for (int n : sweep) {
    const ModeResult serial = RunSerial(n);
    const ModeResult pipelined = RunPipelined(n, /*faulted=*/false);
    const ModeResult faulted =
        n >= 2 ? RunPipelined(n, /*faulted=*/true) : ModeResult{};

    const double serial_us = static_cast<double>(serial.elapsed) / 1000.0;
    const double pipelined_us =
        static_cast<double>(pipelined.elapsed) / 1000.0;
    const double speedup =
        pipelined.elapsed > 0 ? static_cast<double>(serial.elapsed) /
                                    static_cast<double>(pipelined.elapsed)
                              : 0.0;
    bench::PrintRow({bench::FmtInt(static_cast<std::uint64_t>(n)),
                     bench::Fmt(serial_us, 1), bench::Fmt(pipelined_us, 1),
                     bench::Fmt(speedup, 1), bench::FmtInt(serial.doorbells),
                     bench::FmtInt(pipelined.doorbells),
                     bench::FmtInt(pipelined.chained_wrs),
                     bench::FmtInt(faulted.stragglers)});
    bench::PrintBenchJson(
        "broadcast_scale",
        bench::Json()
            .Add("nodes", n)
            .Add("waves", kWaves)
            .Add("serial_us", serial_us, 1)
            .Add("pipelined_us", pipelined_us, 1)
            .Add("speedup", speedup, 2)
            .Add("serial_doorbells", serial.doorbells)
            .Add("pipelined_doorbells", pipelined.doorbells)
            .Add("pipelined_chained_wrs", pipelined.chained_wrs)
            .Add("serial_cache_hits", serial.cache_hits)
            .Add("faulted_stragglers",
                 static_cast<std::uint64_t>(faulted.stragglers))
            .Add("faulted_pipelined_us",
                 static_cast<double>(faulted.elapsed) / 1000.0, 1));
  }
  std::printf(
      "\nshape check: speedup grows with N (serial pays the rdx dispatch "
      "overhead and a doorbell per WR on every node; the pipeline pays one "
      "dispatch per wave and one doorbell per chain) and exceeds 3x by "
      "N=64. The faulted column quarantines exactly one straggler without "
      "stalling the healthy fan-out.\n");
  return 0;
}
