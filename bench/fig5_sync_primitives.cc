// Fig 5: incoherence time of remote extension injection vs CPKI (cache
// misses per 1000 instructions). Vanilla RDMA relies on natural cache
// eviction for the data-plane CPU to notice an injected object — up to
// ~746 us under low cache pressure — while RDX's rdx_cc_event() flush
// pins visibility at ~2 us regardless of CPKI.
#include "bench/bench_util.h"
#include "bpf/assembler.h"

using namespace rdx;

namespace {

// Measures commit->CPU-visibility for one injection on a sandbox whose
// data path runs at the given CPKI.
sim::Duration MeasureIncoherence(bool use_cc_event, double cpki,
                                 std::uint64_t seed) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 64u << 20).id();
  core::ControlPlaneConfig config;
  config.use_cc_event = use_cc_event;
  core::ControlPlane cp(events, fabric, cp_id, config);

  rdma::Node& node = fabric.AddNode("node");
  core::SandboxConfig sandbox_config;
  sandbox_config.cpki = cpki;
  sandbox_config.seed = seed;
  core::Sandbox sandbox(events, node, sandbox_config);
  if (!sandbox.CtxInit().ok()) std::abort();
  auto reg = sandbox.CtxRegister();
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, reg.value(), [&](StatusOr<core::CodeFlow*> f) {
    flow = f.value();
  });
  events.Run();

  bpf::Program prog;
  prog.name = "probe";
  prog.insns = bpf::Assemble("r0 = 1\nexit\n").value();

  bool injected = false;
  cp.InjectExtension(*flow, prog, 0, [&](StatusOr<core::InjectTrace> r) {
    if (!r.ok()) std::abort();
    injected = true;
  });
  while (!injected && !events.Empty()) events.Step();

  // The injection callback fires when the control plane's commit
  // completed. Visibility: poll the sandbox's CPU view in 100 ns steps.
  const sim::SimTime commit_done = events.Now();
  while (sandbox.VisibleVersion(0) == 0 && !events.Empty()) {
    events.Step();
  }
  return events.Now() - commit_done;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig 5: remote sync primitives vs CPKI",
      "Figure 5 (vanilla RDMA: ~100s of us at low CPKI, falling with cache "
      "pressure; RDX rdx_cc_event: ~2 us flat)");
  bench::PrintRow({"CPKI", "vanilla_med_us", "vanilla_p90_us", "rdx_med_us"});

  std::vector<double> kCpkis = {5, 10, 20, 30, 40};
  if (bench::SmokeMode()) kCpkis.resize(1);
  const int kSamples = bench::ScaledIters(60, 3);
  for (double cpki : kCpkis) {
    Histogram vanilla_ns, rdx_ns;
    for (int s = 0; s < kSamples; ++s) {
      vanilla_ns.Add(static_cast<std::uint64_t>(MeasureIncoherence(
          /*use_cc_event=*/false, cpki, 1000 + s)));
      rdx_ns.Add(static_cast<std::uint64_t>(MeasureIncoherence(
          /*use_cc_event=*/true, cpki, 2000 + s)));
    }
    const double vanilla_med_us =
        static_cast<double>(vanilla_ns.Percentile(0.5)) / 1e3;
    const double vanilla_p90_us =
        static_cast<double>(vanilla_ns.Percentile(0.9)) / 1e3;
    const double rdx_med_us =
        static_cast<double>(rdx_ns.Percentile(0.5)) / 1e3;
    bench::PrintRow({bench::Fmt(cpki, 0), bench::Fmt(vanilla_med_us, 1),
                     bench::Fmt(vanilla_p90_us, 1),
                     bench::Fmt(rdx_med_us, 1)});
    bench::Json json;
    json.Add("cpki", cpki, 0)
        .Add("samples", kSamples)
        .Add("vanilla_med_us", vanilla_med_us, 1)
        .Add("vanilla_p90_us", vanilla_p90_us, 1)
        .Add("rdx_med_us", rdx_med_us, 1);
    bench::PrintBenchJson("fig5_sync_primitives", json);
  }
  std::printf(
      "\nshape check: vanilla median falls as CPKI rises (more evictions) "
      "but stays 10-100x above RDX's flat ~2 us.\n");
  return 0;
}
