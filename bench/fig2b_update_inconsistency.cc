// Fig 2b: update inconsistency duration of agent-based rollouts, for
// eBPF- and Wasm-based extensions, on four apps with 4/11/17/33
// microservices. The window between initiating an update and the last
// sidecar serving the new version spans hundreds of milliseconds: config
// propagation jitter plus per-node verify/JIT, multiplied by the DAG
// dependency waves (callees must update before callers).
#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "mesh/app.h"

using namespace rdx;

int main() {
  bench::PrintHeader(
      "Fig 2b: agent-based update inconsistency duration",
      "Figure 2b (100s of ms even for <20-microservice apps; grows with "
      "app size; eBPF and Wasm alike)");
  bench::PrintRow({"app", "services", "ebpf_ms", "wasm_ms"});

  const int kReps = bench::ScaledIters(10, 1);
  auto apps = mesh::AppSpec::PaperApps();
  if (bench::SmokeMode()) apps.resize(1);
  for (const mesh::AppSpec& app : apps) {
    Summary ebpf_ms, wasm_ms;
    for (int rep = 0; rep < kReps; ++rep) {
      // One agent per microservice sidecar.
      bench::Cluster cluster(static_cast<int>(app.size()));
      const auto waves = app.DependencyWaves();

      bpf::Program prog = bpf::GenerateProgram(
          {.target_insns = 1300,
           .seed = static_cast<std::uint64_t>(rep + 1)});
      bool done = false;
      cluster.controller->Rollout(prog, 0, waves,
                                  [&](StatusOr<agent::RolloutResult> r) {
                                    if (!r.ok()) std::abort();
                                    ebpf_ms.Add(sim::ToMillis(
                                        r->inconsistency_window));
                                    done = true;
                                  });
      cluster.RunUntilFlag(done);

      wasm::FilterModule filter = wasm::GenerateFilter(
          600, static_cast<std::uint64_t>(rep + 1));
      done = false;
      cluster.controller->RolloutWasm(filter, 1, waves,
                                      [&](StatusOr<agent::RolloutResult> r) {
                                        if (!r.ok()) std::abort();
                                        wasm_ms.Add(sim::ToMillis(
                                            r->inconsistency_window));
                                        done = true;
                                      });
      cluster.RunUntilFlag(done);
    }
    bench::PrintRow({app.name, bench::FmtInt(app.size()),
                     bench::Fmt(ebpf_ms.mean(), 1),
                     bench::Fmt(wasm_ms.mean(), 1)});
  }
  std::printf(
      "\nshape check: inconsistency grows with microservice count and sits "
      "at 100s of ms (paper: 10^2 ms band across apps 1-4).\n");
  return 0;
}
