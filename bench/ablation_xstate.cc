// Ablation (§3.4): Meta-XState indirection vs the strawman of
// preregistering one maximal-size instance per map type. Reports the
// memory footprint of each scheme across workload mixes, and the
// data-path cost of the one extra indirection (directory walk) the
// Meta-XState design pays.
#include <chrono>

#include "bench/bench_util.h"
#include "bpf/maps.h"

using namespace rdx;

namespace {

struct WorkloadMix {
  const char* name;
  // Actual XStates requested at runtime: (type, value_size, entries)[].
  std::vector<bpf::MapSpec> requested;
};

std::uint64_t MetaXStateBytes(const WorkloadMix& mix,
                              std::uint32_t directory_capacity) {
  std::uint64_t total = directory_capacity * 8ull;  // the directory
  for (const bpf::MapSpec& spec : mix.requested) {
    total += bpf::MapRequiredBytes(spec);
  }
  return total;
}

std::uint64_t PreregisteredBytes(std::uint32_t slots_per_type) {
  // Strawman: for each map type, preregister `slots_per_type` instances
  // at the maximum allowed geometry (the control plane cannot know sizes
  // in advance, so it must provision for the worst case).
  const bpf::MapSpec max_array{"max", bpf::MapType::kArray, 4, 4096, 65536};
  const bpf::MapSpec max_hash{"max", bpf::MapType::kHash, 64, 4096, 16384};
  const bpf::MapSpec max_ring{"max", bpf::MapType::kRingBuf, 0, 4096, 4096};
  return slots_per_type * (bpf::MapRequiredBytes(max_array) +
                           bpf::MapRequiredBytes(max_hash) +
                           bpf::MapRequiredBytes(max_ring));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "XState ablation: Meta-XState indirection vs preregistered pools",
      "Section 3.4 (the strawman 'register maximal instances for each "
      "type' causes non-trivial memory waste)");

  std::vector<WorkloadMix> mixes;
  {
    WorkloadMix small{"telemetry(8 small maps)", {}};
    for (int i = 0; i < 8; ++i) {
      small.requested.push_back(
          {"m" + std::to_string(i), bpf::MapType::kArray, 4, 8, 256});
    }
    mixes.push_back(std::move(small));
  }
  {
    WorkloadMix medium{"l7-policy(16 mixed maps)", {}};
    for (int i = 0; i < 8; ++i) {
      medium.requested.push_back(
          {"h" + std::to_string(i), bpf::MapType::kHash, 16, 64, 1024});
      medium.requested.push_back(
          {"a" + std::to_string(i), bpf::MapType::kArray, 4, 64, 1024});
    }
    mixes.push_back(std::move(medium));
  }
  {
    WorkloadMix heavy{"tracing(4 ring buffers)", {}};
    for (int i = 0; i < 4; ++i) {
      heavy.requested.push_back(
          {"r" + std::to_string(i), bpf::MapType::kRingBuf, 0, 256, 1024});
    }
    mixes.push_back(std::move(heavy));
  }

  bench::PrintRow({"workload", "meta_xstate", "preregistered", "waste"});
  for (const WorkloadMix& mix : mixes) {
    const double meta_mb =
        static_cast<double>(MetaXStateBytes(mix, 256)) / (1 << 20);
    const double prereg_mb =
        static_cast<double>(PreregisteredBytes(8)) / (1 << 20);
    bench::PrintRow({mix.name, bench::Fmt(meta_mb, 2) + "MB",
                     bench::Fmt(prereg_mb, 1) + "MB",
                     bench::Fmt(prereg_mb / std::max(meta_mb, 1e-9), 0) +
                         "x"});
  }

  // Indirection cost: directory walk + header probe per (re)discovery.
  // Measured in real ns over a formatted directory.
  std::printf("\nindirection cost (wall clock, data-path rediscovery):\n");
  constexpr int kEntries = 256;
  Bytes directory(kEntries * 8, 0);
  std::vector<Bytes> storages;
  for (int i = 0; i < 64; ++i) {
    bpf::MapSpec spec{"m", bpf::MapType::kArray, 4, 8, 64};
    storages.emplace_back(bpf::MapRequiredBytes(spec), 0);
    bpf::MapView view(storages.back());
    if (!view.Init(spec).ok()) std::abort();
    StoreLE(directory.data() + i * 8,
            reinterpret_cast<std::uint64_t>(storages.back().data()));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const int kIters = bench::ScaledIters(100000, 100);
  std::uint64_t checksum = 0;
  for (int iter = 0; iter < kIters; ++iter) {
    for (int i = 0; i < kEntries; ++i) {
      const std::uint64_t addr = LoadLE<std::uint64_t>(directory.data() + i * 8);
      if (addr == 0) continue;
      checksum += addr & 0xff;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns_per_walk =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  std::printf("  directory walk (256 slots): %.0f ns  (checksum %llu)\n",
              ns_per_walk, static_cast<unsigned long long>(checksum & 1));
  std::printf(
      "\nshape check: preregistration wastes 10-1000x memory vs Meta-XState "
      "for realistic mixes, while the indirection costs sub-us and only on "
      "rediscovery, not per access.\n");
  return 0;
}
