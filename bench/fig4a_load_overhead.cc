// Fig 4a: eBPF program load time, Agent vs RDX, across the paper's
// instruction-size sweep (1.3K..95K). The paper reports RDX reducing
// injection time by 47x (small programs) to 1982x (large), because the
// verify/JIT work is amortized at the control plane and the injection
// path is reduced to one-sided RDMA writes plus a qword commit.
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

int main() {
  bench::PrintHeader("Fig 4a: program load time, Agent vs RDX",
                     "Figure 4a (RDX wins by 47x..1982x, growing with size)");
  bench::PrintRow({"insns", "agent_ms", "rdx_us", "speedup"});

  const int kReps = bench::ScaledIters(15);
  std::vector<std::size_t> sizes(std::begin(bpf::kPaperSweepSizes),
                                 std::end(bpf::kPaperSweepSizes));
  if (bench::SmokeMode()) sizes.resize(1);
  for (std::size_t size : sizes) {
    bench::Cluster cluster(2);
    // Node 0 takes the agent path, node 1 the RDX path (identical specs).
    Summary agent_ms, rdx_us;
    for (int rep = 0; rep < kReps; ++rep) {
      bpf::Program prog = bpf::GenerateProgram(
          {.target_insns = size, .seed = static_cast<std::uint64_t>(rep + 1)});

      bool agent_done = false;
      cluster.nodes[0].agent->LoadExtension(
          prog, 0, [&](StatusOr<agent::AgentTrace> r) {
            if (!r.ok()) std::abort();
            agent_ms.Add(sim::ToMillis(r->total));
            agent_done = true;
          });
      cluster.RunUntilFlag(agent_done);

      // RDX steady state: the control plane has validated and compiled
      // this extension once ("validate and compile once, deploy
      // anywhere"); deployment repeats per node/update. Warm the cache
      // with an untimed first call on a different hook.
      bool warm = false;
      cluster.cp->InjectExtension(*cluster.nodes[1].flow, prog, 1,
                                  [&](StatusOr<core::InjectTrace> r) {
                                    if (!r.ok()) std::abort();
                                    warm = true;
                                  });
      cluster.RunUntilFlag(warm);
      bool rdx_done = false;
      cluster.cp->InjectExtension(*cluster.nodes[1].flow, prog, 0,
                                  [&](StatusOr<core::InjectTrace> r) {
                                    if (!r.ok()) std::abort();
                                    rdx_us.Add(sim::ToMicros(r->total));
                                    rdx_done = true;
                                  });
      cluster.RunUntilFlag(rdx_done);
    }
    const double speedup =
        agent_ms.mean() * 1000.0 / std::max(rdx_us.mean(), 1e-9);
    bench::PrintRow({bench::FmtInt(size), bench::Fmt(agent_ms.mean(), 2),
                     bench::Fmt(rdx_us.mean(), 1),
                     bench::Fmt(speedup, 0) + "x"});
    bench::PrintBenchJson("fig4a_load_overhead",
                          bench::Json()
                              .Add("insns", static_cast<std::uint64_t>(size))
                              .Add("agent_ms", agent_ms.mean())
                              .Add("rdx_us", rdx_us.mean())
                              .Add("speedup", speedup, 1),
                          &cluster.events);
  }
  std::printf(
      "\nshape check: agent grows to 100+ ms; RDX stays at tens-of-us; the "
      "speedup grows with program size (paper: 47x -> 1982x).\n");
  return 0;
}
