// Fig 2a: eBPF program injection overhead of the agent baseline as a
// function of program instruction size. The paper shows ms-scale
// injection even for small programs, growing superlinearly — the CPU cost
// of local verification + JIT dominating the loading path.
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

int main() {
  bench::PrintHeader("Fig 2a: agent eBPF injection overhead vs program size",
                     "Figure 2a (injection time is ms-scale and grows with "
                     "instruction count)");
  bench::PrintRow({"insns", "mean_ms", "p99_ms", "verify_share"});

  std::vector<std::size_t> kSizes = {1'000,  5'000,  10'000, 20'000,
                                     40'000, 60'000, 80'000};
  if (bench::SmokeMode()) kSizes.resize(1);
  const int kReps = bench::ScaledIters(20);

  for (std::size_t size : kSizes) {
    bench::Cluster cluster(1);
    Summary total_ms;
    Histogram total_ns;
    Summary verify_share;
    for (int rep = 0; rep < kReps; ++rep) {
      bpf::Program prog = bpf::GenerateProgram(
          {.target_insns = size, .seed = static_cast<std::uint64_t>(rep + 1)});
      bool done = false;
      agent::AgentTrace trace;
      cluster.nodes[0].agent->LoadExtension(
          prog, /*hook=*/0, [&](StatusOr<agent::AgentTrace> r) {
            if (!r.ok()) std::abort();
            trace = r.value();
            done = true;
          });
      cluster.RunUntilFlag(done);
      total_ms.Add(sim::ToMillis(trace.total));
      total_ns.Add(static_cast<std::uint64_t>(trace.total));
      verify_share.Add(static_cast<double>(trace.verify) /
                       static_cast<double>(trace.total));
    }
    bench::PrintRow({bench::FmtInt(size), bench::Fmt(total_ms.mean(), 3),
                     bench::Fmt(static_cast<double>(total_ns.Percentile(0.99)) / 1e6, 3),
                     bench::Fmt(verify_share.mean() * 100, 1) + "%"});
  }
  std::printf(
      "\nshape check: ms-scale at 1K insns, growing superlinearly; verify "
      "dominates (paper: 90+%% of loading time is verify+JIT).\n");
  return 0;
}
