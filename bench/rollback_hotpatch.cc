// §4 "rollback and hot-patching for buggy extensions": a faulty filter
// must be reverted while the node is under heavy CPU load. The agent
// needs node CPU to re-verify/re-compile the stable version, so its
// recovery time balloons with load (the paper's "lockout effect"); RDX
// reverts with a desc re-commit in microseconds at any load.
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

namespace {

// Background CPU hog: keeps `load_fraction` of the node's cores busy with
// a steady stream of short tasks.
void StartBackgroundLoad(sim::EventQueue& events, sim::CpuScheduler& cpu,
                         double load_fraction) {
  const int cores = cpu.cores();
  const int tasks = static_cast<int>(cores * load_fraction + 0.5);
  for (int t = 0; t < tasks; ++t) {
    auto spin = std::make_shared<std::function<void()>>();
    *spin = [&cpu, spin] {
      cpu.Submit(static_cast<std::uint64_t>(3.4e6), [spin] { (*spin)(); });
    };
    (*spin)();
  }
}

struct Recovery {
  double agent_ms;
  double rdx_us;
};

Recovery MeasureRecovery(double load_fraction) {
  bench::Cluster cluster(2);
  StartBackgroundLoad(cluster.events, *cluster.nodes[0].cpu, load_fraction);
  StartBackgroundLoad(cluster.events, *cluster.nodes[1].cpu, load_fraction);

  bpf::Program stable = bpf::GenerateProgram({.target_insns = 1300, .seed = 1});
  bpf::Program buggy = bpf::GenerateProgram({.target_insns = 1300, .seed = 2});

  // Install stable then buggy on both paths.
  for (const bpf::Program* prog : {&stable, &buggy}) {
    bool agent_done = false, rdx_done = false;
    cluster.nodes[0].agent->LoadExtension(
        *prog, 0, [&](StatusOr<agent::AgentTrace> r) {
          if (!r.ok()) std::abort();
          agent_done = true;
        });
    cluster.cp->InjectExtension(*cluster.nodes[1].flow, *prog, 0,
                                [&](StatusOr<core::InjectTrace> r) {
                                  if (!r.ok()) std::abort();
                                  rdx_done = true;
                                });
    while ((!agent_done || !rdx_done) && !cluster.events.Empty()) {
      cluster.events.Step();
    }
  }

  // Emergency rollback to `stable`.
  Recovery recovery{};
  {
    const sim::SimTime t0 = cluster.events.Now();
    bool done = false;
    // The agent must re-run the full local pipeline for the stable
    // version (its caches don't survive the faulty state).
    cluster.nodes[0].agent->LoadExtension(
        stable, 0, [&](StatusOr<agent::AgentTrace> r) {
          if (!r.ok()) std::abort();
          done = true;
        });
    while (!done) cluster.events.Step();
    recovery.agent_ms = sim::ToMillis(cluster.events.Now() - t0);
  }
  {
    const sim::SimTime t0 = cluster.events.Now();
    bool done = false;
    cluster.cp->Rollback(*cluster.nodes[1].flow, 0, [&](Status s) {
      if (!s.ok()) std::abort();
      done = true;
    });
    while (!done) cluster.events.Step();
    recovery.rdx_us = sim::ToMicros(cluster.events.Now() - t0);
  }
  return recovery;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Rollback under CPU load: agent re-load vs RDX desc re-commit",
      "Section 4 (agent recovery stalls under contention — lockout; RDX "
      "rolls back in microseconds even at full load)");
  bench::PrintRow({"cpu_load", "agent_ms", "rdx_us", "ratio"});

  std::vector<double> kLoads = {0.0, 0.5, 0.9, 1.0, 1.5, 2.0};
  if (bench::SmokeMode()) kLoads.resize(1);
  for (double load : kLoads) {
    const Recovery recovery = MeasureRecovery(load);
    bench::PrintRow(
        {bench::Fmt(load * 100, 0) + "%", bench::Fmt(recovery.agent_ms, 2),
         bench::Fmt(recovery.rdx_us, 1),
         bench::Fmt(recovery.agent_ms * 1000 / recovery.rdx_us, 0) + "x"});
  }
  std::printf(
      "\nshape check: agent recovery grows with load (oversubscription -> "
      "lockout); RDX stays flat at tens of microseconds.\n");
  return 0;
}
