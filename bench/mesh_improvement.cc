// §6 "RDX's benefits": injecting Wasm filters via RDX instead of per-pod
// agents improves microservice performance by up to 65% under the CPU
// interference conditions of §2 (near-saturated nodes + ongoing filter
// churn). Same mechanism as Fig 2c, reported as the end-to-end app
// improvement at a fixed, aggressive churn rate.
#include "bench/bench_util.h"
#include "mesh/mesh.h"

using namespace rdx;

namespace {

double RunMesh(bool agent_path, int updates_per_10s, std::uint64_t seed) {
  // Smoke mode shrinks the virtual measurement window; see fig2c.
  const sim::Duration warmup =
      bench::SmokeMode() ? sim::Millis(50) : sim::Seconds(1);
  const sim::Duration window =
      bench::SmokeMode() ? sim::Millis(200) : sim::Seconds(10);
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
  core::ControlPlane cp(events, fabric, cp_id);

  mesh::MeshConfig config;
  config.app = mesh::AppSpec::Generate("mesh65", 8, 77);
  config.request_rate_per_s = 470;
  config.cores_per_service = 1;
  config.cost.mesh_request_cycles = 6'800'000;  // ~2 ms/hop, near saturation
  config.seed = seed;
  mesh::MeshSim sim(events, fabric, config);

  std::vector<std::unique_ptr<agent::NodeAgent>> agents;
  std::vector<core::CodeFlow*> flows;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    agents.push_back(std::make_unique<agent::NodeAgent>(
        events, sim.sandbox(i), sim.cpu(i), agent::AgentConfig{}));
    auto reg = sim.sandbox(i).CtxRegister();
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(sim.sandbox(i), reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        flow = f.value();
                      });
    events.Run();
    flows.push_back(flow);
  }

  sim.StartWorkload();
  events.RunUntil(warmup);
  (void)sim.TakeMetrics();

  // Each update is an app-level rollout: the new filter version reaches
  // every sidecar (as an Istio EnvoyFilter change would).
  const sim::SimTime window_start = events.Now();
  for (int u = 0; u < updates_per_10s; ++u) {
    const sim::SimTime at =
        window_start + window * (u + 1) / (updates_per_10s + 1);
    events.ScheduleAt(at, [&, u] {
      wasm::FilterModule filter = wasm::GenerateFilter(
          5000, static_cast<std::uint64_t>(u + 1));
      for (std::size_t svc = 0; svc < sim.size(); ++svc) {
        if (agent_path) {
          agents[svc]->LoadWasmFilter(filter, 0,
                                      [](StatusOr<agent::AgentTrace>) {});
        } else {
          cp.InjectWasmFilter(*flows[svc], filter, 0,
                              [](StatusOr<core::InjectTrace>) {});
        }
      }
    });
  }
  events.RunUntil(window_start + window);
  mesh::MeshMetrics metrics = sim.TakeMetrics();
  sim.StopWorkload();
  return metrics.CompletionRatePerSec();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Microservice performance: Wasm filters via agent vs RDX",
      "Section 6 (injecting Wasm filters via RDX improves microservice "
      "performance by up to 65% under CPU interference)");
  bench::PrintRow({"churn/10s", "agent_req_s", "rdx_req_s", "improvement"});

  const std::vector<int> kChurns =
      bench::SmokeMode() ? std::vector<int>{50}
                         : std::vector<int>{50, 100, 200, 300};
  for (int churn : kChurns) {
    const double agent_rate = RunMesh(/*agent_path=*/true, churn, 9);
    const double rdx_rate = RunMesh(/*agent_path=*/false, churn, 9);
    bench::PrintRow({bench::FmtInt(churn), bench::Fmt(agent_rate, 0),
                     bench::Fmt(rdx_rate, 0),
                     "+" + bench::Fmt(100 * (rdx_rate - agent_rate) /
                                          std::max(agent_rate, 1.0),
                                      1) +
                         "%"});
  }
  std::printf(
      "\nshape check: the RDX advantage grows with churn, reaching the "
      "paper's tens-of-percent band (up to ~65%%).\n");
  return 0;
}
