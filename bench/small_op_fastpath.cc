// Small-op fast path sweep: per-op virtual-time latency for pipelined
// bursts of one-sided WRITEs, baseline NIC model vs the fast path
// (inline WQE payloads + selective signaling + warm MTT cache).
//
// The baseline configuration models a NIC with no translation cache
// (`mtt_cache_entries = 0`), payload gather via DMA for every WQE, and a
// CQE for every WR (signal-all). The fast path posts payloads <= 220 B
// inline, signals every 8th WR, and runs the default 32-entry MTT. The
// sweep crosses payload size x MR locality (warm: one MR reused; cold:
// 64 distinct MRs round-robin, cycling the cache) and reports the per-op
// latency of 64-deep chains — the regime the RDX control plane lives in
// (XState primitives, broadcast fan-out, health polls are all <= 220 B).
//
// Emits one BENCH_small_op_fastpath.json line per sweep point; the
// `payload=64 warm` row is the headline the scripts/check.sh perf-smoke
// gate budgets against (virtual time, so the numbers are deterministic).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "rdma/fabric.h"

namespace rdx::bench {
namespace {

constexpr std::uint32_t kAllAccess =
    rdma::kAccessLocalWrite | rdma::kAccessRemoteRead |
    rdma::kAccessRemoteWrite | rdma::kAccessRemoteAtomic;

constexpr int kChainLen = 64;
constexpr int kMrPool = 64;  // cold mode cycles 2x the MTT capacity

struct ModeConfig {
  const char* name;
  bool use_inline;
  std::uint32_t signal_period;  // 0 == signal every WR
  std::size_t mtt_entries;
};

struct Result {
  double ns_per_op;
  std::uint64_t ops;
  std::uint64_t inline_wrs;
  std::uint64_t coalesced;
  std::uint64_t mtt_hits;
  std::uint64_t mtt_misses;
};

Result RunSweepPoint(const ModeConfig& mode, std::uint32_t payload,
                     bool cold_mtt, int bursts) {
  sim::EventQueue events;
  sim::LinkModel link = sim::RdmaLink();
  link.mtt_cache_entries = mode.mtt_entries;
  rdma::Fabric fabric(events, link);
  rdma::Node& a = fabric.AddNode("a", 8u << 20);
  rdma::Node& b = fabric.AddNode("b", 8u << 20);
  rdma::CompletionQueue& cq = fabric.CreateCq(a.id());
  rdma::CompletionQueue& rcq = fabric.CreateCq(b.id());
  rdma::QueuePair& qp = fabric.CreateQp(a.id(), cq, cq);
  rdma::QueuePair& rqp = fabric.CreateQp(b.id(), rcq, rcq);
  if (!fabric.Connect(qp, rqp).ok()) std::abort();
  qp.SetSignalingPeriod(mode.signal_period);

  // Warm locality reuses one MR pair; cold cycles a pool larger than the
  // MTT so every translation misses.
  const int mrs = cold_mtt ? kMrPool : 1;
  std::vector<std::pair<std::uint64_t, rdma::MemoryRegion>> src(mrs), dst(mrs);
  for (int i = 0; i < mrs; ++i) {
    const std::uint64_t sa = a.memory().Allocate(payload, 8).value();
    src[i] = {sa, a.memory().Register(sa, payload, kAllAccess).value()};
    const std::uint64_t da = b.memory().Allocate(payload, 8).value();
    dst[i] = {da, b.memory().Register(da, payload, kAllAccess).value()};
  }

  const bool inlined = mode.use_inline && payload <= link.max_inline_data;
  std::uint64_t ops = 0;
  for (int burst = 0; burst < bursts; ++burst) {
    std::vector<rdma::SendWr> chain;
    chain.reserve(kChainLen);
    for (int i = 0; i < kChainLen; ++i) {
      const int m = (burst * kChainLen + i) % mrs;
      rdma::SendWr wr;
      wr.wr_id = ops + static_cast<std::uint64_t>(i) + 1;
      wr.opcode = rdma::Opcode::kWrite;
      wr.local = {src[m].first, payload, src[m].second.lkey};
      wr.remote_addr = dst[m].first;
      wr.rkey = dst[m].second.rkey;
      wr.send_inline = inlined;
      chain.push_back(wr);
    }
    if (!qp.PostSendChain(chain).ok()) std::abort();
    events.Run();
    while (!cq.Poll().empty()) {
    }
    ops += kChainLen;
  }

  Result r;
  r.ns_per_op = static_cast<double>(events.Now()) / static_cast<double>(ops);
  r.ops = ops;
  r.inline_wrs = fabric.inline_wrs();
  r.coalesced = fabric.coalesced_completions();
  r.mtt_hits = fabric.mtt_hits();
  r.mtt_misses = fabric.mtt_misses();
  return r;
}

int Main() {
  PrintHeader("small-op fast path: per-op latency, baseline vs fast path",
              "design study: inline WQE + selective signaling + MTT cache");

  const ModeConfig baseline{"baseline", false, 0, 0};
  const ModeConfig fastpath{"fastpath", true, 8, 32};
  const std::uint32_t payloads[] = {8, 64, 220, 512, 4096};
  const int bursts = ScaledIters(32, 2);

  PrintRow({"payload_B", "locality", "base_ns/op", "fast_ns/op", "speedup",
            "inline", "coalesced"});
  for (const bool cold : {false, true}) {
    for (const std::uint32_t payload : payloads) {
      const Result base = RunSweepPoint(baseline, payload, cold, bursts);
      const Result fast = RunSweepPoint(fastpath, payload, cold, bursts);
      const double speedup = base.ns_per_op / fast.ns_per_op;
      const char* locality = cold ? "cold" : "warm";
      PrintRow({FmtInt(payload), locality, Fmt(base.ns_per_op, 1),
                Fmt(fast.ns_per_op, 1), Fmt(speedup, 2),
                FmtInt(fast.inline_wrs), FmtInt(fast.coalesced)});

      Json json;
      json.Add("payload_bytes", static_cast<std::uint64_t>(payload))
          .Add("locality", std::string(locality))
          .Add("chain_len", kChainLen)
          .Add("ops", base.ops)
          .Add("baseline_ns_per_op", base.ns_per_op, 1)
          .Add("fastpath_ns_per_op", fast.ns_per_op, 1)
          .Add("speedup", speedup, 2)
          .Add("fastpath_inline_wrs", fast.inline_wrs)
          .Add("fastpath_coalesced", fast.coalesced)
          .Add("fastpath_mtt_hits", fast.mtt_hits)
          .Add("fastpath_mtt_misses", fast.mtt_misses);
      PrintBenchJson("small_op_fastpath", json);
    }
  }
  return 0;
}

}  // namespace
}  // namespace rdx::bench

int main() { return rdx::bench::Main(); }
