// Ablation (DESIGN.md): threaded-code JIT vs reference interpreter —
// real wall-clock dispatch cost, measured with google-benchmark. Also
// covers the image wire codec, whose cost sits on the control-plane path.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "bpf/exec.h"
#include "bpf/interpreter.h"
#include "bpf/jit.h"
#include "bpf/proggen.h"
#include "bpf/verifier.h"

namespace rdx::bpf {
namespace {

struct Env {
  VectorMemory mem{1 << 20};
  Rng rng{7};
  RuntimeContext rt;
  ExecOptions opts;
  std::vector<Insn> resolved;
  JitImage image;

  explicit Env(std::size_t insns) {
    rt.mem = &mem;
    rt.rng = &rng;
    opts.ctx_addr = mem.Allocate(256).value();
    opts.ctx_len = 256;
    opts.stack_addr = mem.Allocate(kStackSize).value();

    Program prog = GenerateProgram({.target_insns = insns, .seed = 3});
    const MapSpec& spec = prog.maps[0];
    const std::uint64_t map_addr =
        mem.Allocate(MapRequiredBytes(spec), 8).value();
    MapView view(mem.SpanAt(map_addr, MapRequiredBytes(spec)).value());
    if (!view.Init(spec).ok()) std::abort();
    rt.maps.emplace(map_addr, spec);

    resolved = prog.insns;
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      if (resolved[i].IsLdImm64() && resolved[i].src_reg == kPseudoMapFd) {
        resolved[i].src_reg = 0;
        resolved[i].imm = static_cast<std::int32_t>(map_addr & 0xffffffff);
        resolved[i + 1].imm = static_cast<std::int32_t>(map_addr >> 32);
      }
    }
    auto compiled = JitCompiler().Compile(prog);
    if (!compiled.ok()) std::abort();
    image = std::move(compiled).value();
    for (const Relocation& reloc : image.relocs) {
      if (reloc.kind == RelocKind::kMapAddress) {
        image.code[reloc.index].imm64 = map_addr;
      }
    }
  }
};

void BM_Interpreter(benchmark::State& state) {
  Env env(static_cast<std::size_t>(state.range(0)));
  std::uint64_t insns = 0;
  for (auto _ : state) {
    auto result = Interpret(env.resolved, env.rt, env.opts);
    if (!result.ok()) state.SkipWithError("interpreter failed");
    insns += result->insns_executed;
    benchmark::DoNotOptimize(result->r0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
}
BENCHMARK(BM_Interpreter)->Arg(1000)->Arg(10000);

void BM_JitThreadedCode(benchmark::State& state) {
  Env env(static_cast<std::size_t>(state.range(0)));
  std::uint64_t insns = 0;
  for (auto _ : state) {
    auto result = RunJit(env.image, env.rt, env.opts);
    if (!result.ok()) state.SkipWithError("jit failed");
    insns += result->insns_executed;
    benchmark::DoNotOptimize(result->r0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
}
BENCHMARK(BM_JitThreadedCode)->Arg(1000)->Arg(10000);

void BM_ImageSerialize(benchmark::State& state) {
  Env env(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes wire = env.image.Serialize();
    bytes += wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ImageSerialize)->Arg(1300)->Arg(95000);

void BM_ImageDeserialize(benchmark::State& state) {
  Env env(static_cast<std::size_t>(state.range(0)));
  const Bytes wire = env.image.Serialize();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto image = JitImage::Deserialize(wire);
    if (!image.ok()) state.SkipWithError("deserialize failed");
    bytes += wire.size();
    benchmark::DoNotOptimize(image->code.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ImageDeserialize)->Arg(1300)->Arg(95000);

void BM_Verifier(benchmark::State& state) {
  Program prog = GenerateProgram(
      {.target_insns = static_cast<std::size_t>(state.range(0)), .seed = 3});
  Verifier verifier;
  for (auto _ : state) {
    Status s = verifier.Verify(prog);
    if (!s.ok()) state.SkipWithError("verification failed");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Verifier)->Arg(1300)->Arg(11000)->Arg(95000);

}  // namespace
}  // namespace rdx::bpf

// Hand-rolled main so RDX_BENCH_SMOKE=1 (scripts/check.sh) shrinks every
// measurement to a token run, matching the other benches' smoke mode.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  char min_time[] = "--benchmark_min_time=0.01";
  const char* smoke = std::getenv("RDX_BENCH_SMOKE");
  if (smoke != nullptr && smoke[0] != '\0' &&
      !(smoke[0] == '0' && smoke[1] == '\0')) {
    args.push_back(min_time);
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
