// Fig 4b: time breakdown of loading the 1.3K-insn program. The agent
// pays verify + JIT + attach on the node; RDX's injection path contains
// only link + transfer + commit (verify/JIT amortized at the control
// plane).
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

int main() {
  bench::PrintHeader("Fig 4b: load-time breakdown at 1.3K instructions",
                     "Figure 4b (agent: verify+JIT dominate; RDX: only "
                     "link/transfer/commit in the injection path)");

  bench::Cluster cluster(2);
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 1300, .seed = 1});
  const int kReps = bench::ScaledIters(50);

  Summary queue_ms, verify_ms, jit_ms, attach_ms, agent_total_ms;
  for (int rep = 0; rep < kReps; ++rep) {
    bool done = false;
    cluster.nodes[0].agent->LoadExtension(
        prog, 0, [&](StatusOr<agent::AgentTrace> r) {
          if (!r.ok()) std::abort();
          queue_ms.Add(sim::ToMillis(r->queue));
          verify_ms.Add(sim::ToMillis(r->verify));
          jit_ms.Add(sim::ToMillis(r->jit));
          attach_ms.Add(sim::ToMillis(r->attach));
          agent_total_ms.Add(sim::ToMillis(r->total));
          done = true;
        });
    cluster.RunUntilFlag(done);
  }

  // Warm the control plane's verify/compile caches: the steady state of
  // "validate and compile once, deploy anywhere".
  {
    bool warm = false;
    cluster.cp->InjectExtension(*cluster.nodes[1].flow, prog, 7,
                                [&](StatusOr<core::InjectTrace> r) {
                                  if (!r.ok()) std::abort();
                                  warm = true;
                                });
    cluster.RunUntilFlag(warm);
  }

  Summary validate_us, compile_us, link_us, xstate_us, transfer_us,
      commit_us, dispatch_us, rdx_total_us;
  for (int rep = 0; rep < kReps; ++rep) {
    bool done = false;
    cluster.cp->InjectExtension(
        *cluster.nodes[1].flow, prog, rep % 8,
        [&](StatusOr<core::InjectTrace> r) {
          if (!r.ok()) std::abort();
          validate_us.Add(sim::ToMicros(r->validate));
          compile_us.Add(sim::ToMicros(r->jit));
          link_us.Add(sim::ToMicros(r->link));
          xstate_us.Add(sim::ToMicros(r->xstate));
          transfer_us.Add(sim::ToMicros(r->transfer));
          commit_us.Add(sim::ToMicros(r->commit));
          dispatch_us.Add(sim::ToMicros(r->total - r->validate - r->jit -
                                        r->link - r->xstate - r->transfer -
                                        r->commit));
          rdx_total_us.Add(sim::ToMicros(r->total));
          done = true;
        });
    cluster.RunUntilFlag(done);
  }

  std::printf("\nAgent breakdown (mean over %d loads):\n", kReps);
  bench::PrintRow({"phase", "ms", "share"});
  auto agent_row = [&](const char* name, const Summary& s) {
    bench::PrintRow({name, bench::Fmt(s.mean(), 3),
                     bench::Fmt(100 * s.mean() / agent_total_ms.mean(), 1) +
                         "%"});
  };
  agent_row("queue", queue_ms);
  agent_row("verify", verify_ms);
  agent_row("jit", jit_ms);
  agent_row("attach", attach_ms);
  bench::PrintRow({"total", bench::Fmt(agent_total_ms.mean(), 3), "100%"});

  std::printf("\nRDX breakdown (mean over %d injections, warm cache):\n",
              kReps);
  bench::PrintRow({"phase", "us", "share"});
  auto rdx_row = [&](const char* name, const Summary& s) {
    bench::PrintRow({name, bench::Fmt(s.mean(), 2),
                     bench::Fmt(100 * s.mean() / rdx_total_us.mean(), 1) +
                         "%"});
  };
  rdx_row("validate(cache)", validate_us);
  rdx_row("jit(cache)", compile_us);
  rdx_row("xstate", xstate_us);
  rdx_row("link", link_us);
  rdx_row("transfer", transfer_us);
  rdx_row("commit+flush", commit_us);
  rdx_row("cp dispatch", dispatch_us);
  bench::PrintRow({"total", bench::Fmt(rdx_total_us.mean(), 2), "100%"});

  std::printf(
      "\nshape check: agent total is ms with verify+jit >= 90%%; RDX total "
      "is tens of us with verify/JIT absent from the injection path.\n");
  return 0;
}
