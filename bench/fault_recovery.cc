// Fault-rate sweep for the self-healing control plane (§5 resilience):
// deploys extensions through the RecoveryManager while the fault
// injector drops a fraction of all in-flight work requests. Every drop
// errors the victim QP (RETRY_EXC_ERR) and flushes its queue, so each
// faulted deploy exercises the full recovery path: deadline/failure
// detection, QP reconnect + re-handshake, idempotency probe, backoff,
// re-injection. Reported per fault rate: success rate within the retry
// budget and end-to-end deploy latency (p50/p99).
#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "core/reliability.h"
#include "fault/injector.h"

using namespace rdx;

int main() {
  bench::PrintHeader("Fault recovery: deploy success + latency vs drop rate",
                     "§5 resilience (self-healing deploys under faults)");
  bench::PrintRow(
      {"fault_rate", "deploys", "ok", "p50_us", "p99_us", "max_attempts"});

  const int kNodes = bench::SmokeMode() ? 2 : 4;
  constexpr int kMaxRetries = 8;
  std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  if (bench::SmokeMode()) rates = {0.0, 0.05};

  for (double rate : rates) {
    bench::Cluster cluster(kNodes);
    fault::FaultInjector injector(cluster.events, *cluster.fabric);
    if (rate > 0.0) {
      char plan_text[96];
      std::snprintf(plan_text, sizeof(plan_text),
                    "seed 7\ndrop node=* at=0 for=10s p=%.3f", rate);
      auto plan = fault::ParseFaultPlan(plan_text);
      if (!plan.ok() || !injector.Arm(plan.value()).ok()) std::abort();
    }
    core::RecoveryManager recovery(*cluster.cp, {}, /*seed=*/42);

    Histogram latency_ns;
    int ok = 0, total = 0, max_attempts = 0;
    for (int node = 0; node < kNodes; ++node) {
      const auto hook_count =
          static_cast<int>(cluster.nodes[node].sandbox->hook_count());
      for (int hook = 0; hook < hook_count; ++hook) {
        bpf::Program prog = bpf::GenerateProgram(
            {.target_insns = 1300,
             .seed = static_cast<std::uint64_t>(total + 1)});
        ++total;
        bool settled = false;
        recovery.DeployReliably(
            *cluster.nodes[node].flow, prog, hook,
            [&](StatusOr<core::RecoveryOutcome> r) {
              if (r.ok()) {
                ++ok;
                latency_ns.Add(static_cast<std::uint64_t>(r->elapsed));
                if (r->attempts > max_attempts) max_attempts = r->attempts;
              }
              settled = true;
            },
            kMaxRetries);
        cluster.RunUntilFlag(settled);
      }
    }

    const double success = total ? static_cast<double>(ok) / total : 0.0;
    const double p50_us = latency_ns.Percentile(0.5) / 1000.0;
    const double p99_us = latency_ns.Percentile(0.99) / 1000.0;
    bench::PrintRow({bench::Fmt(rate, 2), bench::FmtInt(total),
                     bench::FmtInt(ok), bench::Fmt(p50_us, 1),
                     bench::Fmt(p99_us, 1), bench::FmtInt(max_attempts)});
    bench::PrintBenchJson("fault_recovery",
                          bench::Json()
                              .Add("fault_rate", rate)
                              .Add("deploys", static_cast<std::uint64_t>(total))
                              .Add("success_rate", success)
                              .Add("p50_us", p50_us, 1)
                              .Add("p99_us", p99_us, 1)
                              .Add("max_attempts", max_attempts),
                          &cluster.events);
  }
  std::printf(
      "\nshape check: success stays at/near 100%% through 10%% drop rate "
      "(the retry budget absorbs faults); p99 grows with the rate as "
      "reconnect + backoff rounds stack up.\n");
  return 0;
}
