// Ablation (§3.5): the three remote synchronization primitives toggled
// independently. Three sub-measurements per configuration:
//   inject_us    injection path time (compile excluded — steady state)
//   visible_us   commit -> CPU visibility with a *passive* data plane
//                (no polling; discovery via cache eviction or flush)
//   torn         executions that observed a torn image while an *active*
//                data plane raced an in-place update
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

namespace {

struct SyncOutcome {
  double inject_us = 0;
  double visible_us = 0;
  std::uint64_t torn = 0;
};

SyncOutcome RunConfig(bool use_tx, bool use_cc_event, bool use_lock,
                      std::uint64_t seed) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
  core::ControlPlaneConfig config;
  config.use_tx = use_tx;
  config.use_cc_event = use_cc_event;
  config.use_lock = use_lock;
  config.chunk_bytes = 1024;
  core::ControlPlane cp(events, fabric, cp_id, config);

  rdma::Node& node = fabric.AddNode("node");
  core::SandboxConfig sandbox_config;
  sandbox_config.seed = seed;
  core::Sandbox sandbox(events, node, sandbox_config);
  if (!sandbox.CtxInit().ok()) std::abort();
  auto reg = sandbox.CtxRegister();
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, reg.value(),
                    [&](StatusOr<core::CodeFlow*> f) { flow = f.value(); });
  events.Run();

  bpf::Program v1 = bpf::GenerateProgram({.target_insns = 4000, .seed = 1});
  bpf::Program v2 = bpf::GenerateProgram({.target_insns = 2500, .seed = 2});
  SyncOutcome outcome;

  // ---- (a) injection latency + passive visibility on hook 1 ----
  {
    bool done = false;
    core::InjectTrace trace;
    cp.InjectExtension(*flow, v2, 1, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      trace = r.value();
      done = true;
    });
    while (!done && !events.Empty()) events.Step();
    outcome.inject_us =
        sim::ToMicros(trace.total - trace.validate - trace.jit);
    // Passive data plane: just let the scheduled visibility event fire.
    const sim::SimTime committed = events.Now();
    while (sandbox.VisibleVersion(1) == 0 && !events.Empty()) events.Step();
    outcome.visible_us = sim::ToMicros(events.Now() - committed);
  }

  // ---- (b) torn-image executions on hook 0 (active data plane) ----
  {
    bool done = false;
    cp.InjectExtension(*flow, v1, 0, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      done = true;
    });
    while (!done && !events.Empty()) events.Step();
    sandbox.ScheduleHookRefresh(0, 0);
    events.RunUntil(events.Now());

    const std::uint64_t v1_version = sandbox.VisibleVersion(0);
    Bytes packet(8, 1);
    bool injected = false;
    cp.InjectExtension(*flow, v2, 0, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      injected = true;
    });
    // Active executor: coherently re-reads the hook every 500 ns and
    // executes, racing the in-flight update.
    while ((!injected || sandbox.VisibleVersion(0) == v1_version) &&
           !events.Empty()) {
      events.RunUntil(events.Now() + 500);
      sandbox.ScheduleHookRefresh(0, 0);
      events.RunUntil(events.Now());
      if (!sandbox.ExecuteHook(0, packet).ok()) ++outcome.torn;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Sync-primitive ablation: rdx_tx / rdx_cc_event / rdx_mutual_excl",
      "Section 3.5 (each primitive addresses one hazard: atomicity, "
      "visibility, mutual exclusion)");
  bench::PrintRow(
      {"tx", "cc_event", "lock", "inject_us", "visible_us", "torn"});

  struct Config {
    bool tx, cc, lock;
  };
  constexpr Config kConfigs[] = {
      {false, false, false},  // vanilla RDMA
      {true, false, false},   // + atomic commit
      {true, true, false},    // + coherence flush (the RDX default)
      {true, true, true},     // + sandbox lock
  };
  for (const Config& config : kConfigs) {
    Summary inject_us, visible_us;
    std::uint64_t torn = 0;
    const std::uint64_t seeds =
        static_cast<std::uint64_t>(bench::ScaledIters(10, 1));
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const SyncOutcome outcome =
          RunConfig(config.tx, config.cc, config.lock, seed);
      inject_us.Add(outcome.inject_us);
      visible_us.Add(outcome.visible_us);
      torn += outcome.torn;
    }
    auto onoff = [](bool b) { return std::string(b ? "on" : "off"); };
    bench::PrintRow({onoff(config.tx), onoff(config.cc), onoff(config.lock),
                     bench::Fmt(inject_us.mean(), 1),
                     bench::Fmt(visible_us.mean(), 1),
                     bench::FmtInt(torn)});
  }
  std::printf(
      "\nshape check: without tx the data plane observes torn images; "
      "without cc_event visibility is 100s of us; the lock adds ~2 RTTs "
      "of latency and nothing else in the uncontended case.\n");
  return 0;
}
