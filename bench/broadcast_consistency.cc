// §4 "fast and consistent extension updates": Collective CodeFlow
// (rdx_broadcast) vs agent rollout on a live mesh. Measures (1) the
// update window, (2) how many in-flight requests observed mixed filter
// versions, and (3) with BBU enabled, how many requests were buffered to
// guarantee zero mixed observations — feasible precisely because the RDX
// window is microseconds, not hundreds of milliseconds.
#include "bench/bench_util.h"
#include "mesh/mesh.h"

using namespace rdx;

namespace {

struct Outcome {
  double window_ms;
  std::uint64_t mixed;
  std::uint64_t buffered;
  std::uint64_t completed;
};

enum class Mode { kAgent, kRdx, kRdxBbu };

Outcome RunUpdate(Mode mode, const mesh::AppSpec& app, std::uint64_t seed) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 256u << 20).id();
  core::ControlPlane cp(events, fabric, cp_id);
  agent::AgentController controller(events);

  mesh::MeshConfig config;
  config.app = app;
  config.request_rate_per_s = 5000;
  config.seed = seed;
  mesh::MeshSim sim(events, fabric, config);

  std::vector<std::unique_ptr<agent::NodeAgent>> agents;
  std::vector<core::CodeFlow*> flows;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    agents.push_back(std::make_unique<agent::NodeAgent>(
        events, sim.sandbox(i), sim.cpu(i), agent::AgentConfig{}));
    controller.RegisterAgent(agents.back().get());
    auto reg = sim.sandbox(i).CtxRegister();
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(sim.sandbox(i), reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        flow = f.value();
                      });
    events.Run();
    flows.push_back(flow);
  }

  // Initial version everywhere (v1), via RDX broadcast for speed.
  wasm::FilterModule v1 = wasm::GenerateFilter(400, 11);
  {
    core::CollectiveCodeFlow group(cp, flows);
    std::vector<const wasm::FilterModule*> filters(sim.size(), &v1);
    bool done = false;
    group.BroadcastWasm(filters, 0, nullptr,
                        [&](StatusOr<core::BroadcastResult> r) {
                          if (!r.ok()) std::abort();
                          done = true;
                        });
    while (!done && !events.Empty()) events.Step();
  }

  sim.StartWorkload();
  events.RunUntil(events.Now() +
                  (bench::SmokeMode() ? sim::Millis(20) : sim::Millis(200)));
  (void)sim.TakeMetrics();

  // The v1 -> v2 update, through the mode under test.
  wasm::FilterModule v2 = wasm::GenerateFilter(400, 22);
  Outcome outcome{};
  bool done = false;
  const sim::SimTime t0 = events.Now();
  // Must outlive the asynchronous broadcast below.
  core::CollectiveCodeFlow group(cp, flows);
  switch (mode) {
    case Mode::kAgent: {
      controller.RolloutWasm(v2, 0, app.DependencyWaves(),
                             [&](StatusOr<agent::RolloutResult> r) {
                               if (!r.ok()) std::abort();
                               outcome.window_ms =
                                   sim::ToMillis(r->inconsistency_window);
                               done = true;
                             });
      break;
    }
    case Mode::kRdx:
    case Mode::kRdxBbu: {
      std::vector<const wasm::FilterModule*> filters(sim.size(), &v2);
      group.BroadcastWasm(filters, 0,
                          mode == Mode::kRdxBbu ? &sim : nullptr,
                          [&](StatusOr<core::BroadcastResult> r) {
                            if (!r.ok()) std::abort();
                            // The consistency-relevant window: first
                            // commit -> cluster-wide visibility. Prepares
                            // are invisible to the data path.
                            outcome.window_ms =
                                sim::ToMillis(r->commit_window);
                            outcome.buffered = r->buffered_requests;
                            done = true;
                          });
      break;
    }
  }
  while (!done && !events.Empty()) events.Step();
  (void)t0;
  // Drain so late requests finish (200 ms; shorter in smoke mode).
  events.RunUntil(events.Now() +
                  (bench::SmokeMode() ? sim::Millis(20) : sim::Millis(200)));
  mesh::MeshMetrics metrics = sim.TakeMetrics();
  sim.StopWorkload();
  outcome.mixed = metrics.mixed_version;
  outcome.completed = metrics.completed;
  return outcome;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "rdx_broadcast: consistent cluster-wide updates vs agent rollout",
      "Section 4 / Fig 2b remedy (microsecond atomic group updates; BBU "
      "buffers a bounded handful of requests instead of an impractical "
      "backlog)");
  bench::PrintRow({"app", "mode", "window", "mixed_reqs", "buffered"});

  auto apps = mesh::AppSpec::PaperApps();
  if (bench::SmokeMode()) apps.resize(1);
  for (const mesh::AppSpec& app : apps) {
    const Outcome agent = RunUpdate(Mode::kAgent, app, 1);
    const Outcome rdx = RunUpdate(Mode::kRdx, app, 1);
    const Outcome bbu = RunUpdate(Mode::kRdxBbu, app, 1);
    bench::PrintRow({app.name, "agent",
                     bench::Fmt(agent.window_ms, 1) + "ms",
                     bench::FmtInt(agent.mixed), "-"});
    bench::PrintRow({app.name, "rdx",
                     bench::Fmt(rdx.window_ms * 1000, 0) + "us",
                     bench::FmtInt(rdx.mixed), "-"});
    bench::PrintRow({app.name, "rdx+bbu",
                     bench::Fmt(bbu.window_ms * 1000, 0) + "us",
                     bench::FmtInt(bbu.mixed), bench::FmtInt(bbu.buffered)});
  }
  std::printf(
      "\nshape check: agent windows are 100s of ms with many mixed-version "
      "requests; rdx windows are us-scale; rdx+bbu has ZERO mixed requests "
      "while buffering only a handful.\n");
  return 0;
}
