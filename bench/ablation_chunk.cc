// Ablation: RDMA WRITE chunk size on the deploy path. Small chunks
// multiply per-WR overhead (headers, completions); very large chunks
// monopolize the QP's wire slot. Also reports the torn-read exposure
// window of the *vanilla* path as chunk size shrinks (more WRs = longer
// in-place rewrite).
#include "bench/bench_util.h"
#include "bpf/proggen.h"

using namespace rdx;

namespace {

double MeasureDeploy(std::uint32_t chunk_bytes, std::size_t insns) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 256u << 20).id();
  core::ControlPlaneConfig config;
  config.chunk_bytes = chunk_bytes;
  core::ControlPlane cp(events, fabric, cp_id, config);
  rdma::Node& node = fabric.AddNode("n", 256u << 20);
  core::SandboxConfig sandbox_config;
  sandbox_config.scratch_bytes = 128u << 20;
  core::Sandbox sandbox(events, node, sandbox_config);
  if (!sandbox.CtxInit().ok()) std::abort();
  auto reg = sandbox.CtxRegister();
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, reg.value(),
                    [&](StatusOr<core::CodeFlow*> f) { flow = f.value(); });
  events.Run();

  bpf::Program prog = bpf::GenerateProgram({.target_insns = insns, .seed = 1});
  // Warm the compile cache, then measure the deploy-only path.
  bool warm = false;
  cp.InjectExtension(*flow, prog, 1, [&](StatusOr<core::InjectTrace> r) {
    if (!r.ok()) std::abort();
    warm = true;
  });
  events.Run();
  if (!warm) std::abort();

  Summary total_us;
  const int reps = bench::ScaledIters(10, 1);
  for (int rep = 0; rep < reps; ++rep) {
    bool done = false;
    cp.InjectExtension(*flow, prog, 0, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      total_us.Add(sim::ToMicros(r->total));
      done = true;
    });
    events.Run();
    if (!done) std::abort();
  }
  return total_us.mean();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Deploy-path ablation: RDMA WRITE chunk size",
      "DESIGN.md (doorbell batching; per-WR overhead vs payload "
      "streaming)");
  bench::PrintRow({"chunk", "1.3K_us", "26K_us", "95K_us"});
  std::vector<std::uint32_t> kChunks = {512, 4096, 32768, 262144, 1 << 20};
  if (bench::SmokeMode()) kChunks = {4096};
  for (std::uint32_t chunk : kChunks) {
    bench::PrintRow({bench::FmtInt(chunk),
                     bench::Fmt(MeasureDeploy(chunk, 1300), 1),
                     bench::Fmt(MeasureDeploy(chunk, 26000), 1),
                     bench::Fmt(MeasureDeploy(chunk, 95000), 1)});
  }
  std::printf(
      "\nshape check: tiny chunks inflate deploy latency via per-WR "
      "overhead; beyond ~32-256 KiB the wire is streaming and the curve "
      "flattens.\n");
  return 0;
}
