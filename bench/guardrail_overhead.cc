// Healthy-path cost of the runtime guardrails (§5): the HealthBlock
// accounting runs on every hook execution, so its overhead must be
// negligible when extensions behave. Measures wall-clock ns/exec with
// guardrails on vs off for a representative 1.3K-insn program, then the
// containment side: sim-time latency from a rogue deployment to its
// remote quarantine (agentless poll -> CAS), and the execution count the
// local fail-safe needs to contain a crash loop on its own.
#include <chrono>

#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "core/reliability.h"

using namespace rdx;

namespace {

struct Rig {
  sim::EventQueue events;
  std::unique_ptr<rdma::Fabric> fabric;
  std::unique_ptr<core::ControlPlane> cp;
  std::unique_ptr<core::Sandbox> sandbox;
  core::CodeFlow* flow = nullptr;

  explicit Rig(const core::SandboxConfig& config) {
    fabric = std::make_unique<rdma::Fabric>(events);
    const rdma::NodeId cp_id = fabric->AddNode("cp", 128u << 20).id();
    cp = std::make_unique<core::ControlPlane>(events, *fabric, cp_id);
    rdma::Node& node = fabric->AddNode("target", 64u << 20);
    sandbox = std::make_unique<core::Sandbox>(events, node, config);
    if (!sandbox->CtxInit().ok()) std::abort();
    auto reg = sandbox->CtxRegister();
    if (!reg.ok()) std::abort();
    cp->CreateCodeFlow(*sandbox, reg.value(),
                       [this](StatusOr<core::CodeFlow*> f) {
                         if (f.ok()) flow = f.value();
                       });
    events.Run();
    if (flow == nullptr) std::abort();
  }

  void Inject(const bpf::Program& prog, int hook) {
    bool done = false;
    cp->InjectExtension(*flow, prog, hook, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      done = true;
    });
    events.Run();
    if (!done) std::abort();
    sandbox->RefreshHookNow(hook);
  }
};

// Wall-clock ns per ExecuteHook over `iters` runs of a healthy program.
double MeasureExecNs(bool guardrails, int iters) {
  core::SandboxConfig config;
  config.guardrails = guardrails;
  Rig rig(config);
  rig.Inject(bpf::GenerateProgram({.target_insns = 1300, .seed = 3}), 0);

  Bytes packet(64, 0xab);
  // Warm the decoded-image cache before timing.
  for (int i = 0; i < 100; ++i) (void)rig.sandbox->ExecuteHook(0, packet);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = rig.sandbox->ExecuteHook(0, packet);
    if (!r.ok()) std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         iters;
}

}  // namespace

int main() {
  bench::PrintHeader("Runtime guardrail overhead + containment latency",
                     "§5 guardrails (health accounting / quarantine)");

  const int kIters = bench::ScaledIters(20000, 200);
  const double ns_off = MeasureExecNs(/*guardrails=*/false, kIters);
  const double ns_on = MeasureExecNs(/*guardrails=*/true, kIters);
  const double overhead_pct = (ns_on - ns_off) / ns_off * 100.0;

  bench::PrintRow({"guardrails", "ns_per_exec"});
  bench::PrintRow({"off", bench::Fmt(ns_off, 1)});
  bench::PrintRow({"on", bench::Fmt(ns_on, 1)});
  std::printf("    healthy-path overhead: %.1f%%\n", overhead_pct);

  // ---- remote containment latency (sim time) ----
  // A crash-looping image lands at t_rogue; steady traffic exposes it and
  // the monitor (1 ms poll) quarantines it over RDMA. Local fail-safe is
  // disabled so the measurement isolates the agentless path.
  core::SandboxConfig config;
  config.max_consecutive_failures = 0;
  Rig rig(config);
  rig.Inject(bpf::GenerateProgram({.target_insns = 64, .seed = 5}), 0);
  Bytes packet(64, 0);
  (void)rig.sandbox->ExecuteHook(0, packet);  // establish last-good

  rig.Inject(bpf::GenerateRogueProgram({.kind = bpf::RogueKind::kTrapLoop}),
             0);
  const sim::SimTime t_rogue = rig.events.Now();
  for (int i = 1; i <= 100; ++i) {
    rig.events.ScheduleAt(t_rogue + sim::Micros(50) * i, [&rig] {
      rig.sandbox->RefreshHookNow(0);
      Bytes p(64, 0);
      (void)rig.sandbox->ExecuteHook(0, p);
    });
  }
  core::HealthMonitor monitor(*rig.cp);
  monitor.Watch(*rig.flow);
  monitor.Start();
  rig.events.ScheduleAt(t_rogue + sim::Millis(20),
                        [&monitor] { monitor.Stop(); });
  rig.events.Run();
  if (monitor.records().empty() || !monitor.records()[0].quarantined) {
    std::abort();
  }
  const double containment_us =
      static_cast<double>(monitor.records()[0].at - t_rogue) / 1000.0;
  std::printf("    rogue deploy -> remote quarantine: %.1f us (poll %lld us)\n",
              containment_us,
              static_cast<long long>(monitor.policy().poll_period / 1000));

  // ---- local fail-safe containment ----
  core::SandboxConfig local_config;  // default K = 4
  Rig local(local_config);
  local.Inject(bpf::GenerateProgram({.target_insns = 64, .seed = 5}), 0);
  (void)local.sandbox->ExecuteHook(0, packet);
  local.Inject(bpf::GenerateRogueProgram({.kind = bpf::RogueKind::kTrapLoop}),
               0);
  int failed_execs = 0;
  while (local.sandbox->stats().failsafe_detaches == 0) {
    (void)local.sandbox->ExecuteHook(0, packet);
    ++failed_execs;
    if (failed_execs > 1000) std::abort();
  }
  std::printf("    local fail-safe contained after %d failed executions\n",
              failed_execs);

  bench::Json json;
  json.Add("iters", kIters)
      .Add("exec_ns_guardrails_off", ns_off, 1)
      .Add("exec_ns_guardrails_on", ns_on, 1)
      .Add("healthy_path_overhead_pct", overhead_pct, 2)
      .Add("remote_containment_us", containment_us, 1)
      .Add("monitor_poll_us",
           static_cast<std::uint64_t>(monitor.policy().poll_period / 1000))
      .Add("failsafe_executions_to_contain",
           static_cast<std::uint64_t>(failed_execs));
  bench::PrintBenchJson("guardrail_overhead", json, &local.events);
  return 0;
}
