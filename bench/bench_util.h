// Shared harness for the figure-reproduction benches: cluster assembly
// (fabric + control plane + sandboxes + agents), run-to-completion
// helpers, and paper-style table printing. Each bench binary regenerates
// one table/figure of the paper (see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "common/stats.h"
#include "core/broadcast.h"
#include "core/codeflow.h"

namespace rdx::bench {

// Build stamp: bench/CMakeLists.txt passes the current commit via
// -DRDX_GIT_SHA="..."; a tarball build falls back to "unknown".
#ifndef RDX_GIT_SHA
#define RDX_GIT_SHA "unknown"
#endif
inline const char* GitSha() { return RDX_GIT_SHA; }

// RDX_BENCH_SMOKE=1 makes every bench run tiny iteration counts — a
// seconds-long CI pass that exercises every code path without producing
// publication-quality numbers (scripts/check.sh uses it).
inline bool SmokeMode() {
  const char* v = std::getenv("RDX_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Full iteration count normally, a tiny one under RDX_BENCH_SMOKE=1.
inline int ScaledIters(int full, int smoke = 2) {
  return SmokeMode() ? smoke : full;
}

// A control-plane node plus N sandbox nodes, with both management paths
// wired: an RDX CodeFlow per node and an agent per node.
struct Cluster {
  sim::EventQueue events;
  std::unique_ptr<rdma::Fabric> fabric;
  rdma::NodeId cp_node = 0;
  std::unique_ptr<core::ControlPlane> cp;
  std::unique_ptr<agent::AgentController> controller;

  struct NodeBundle {
    rdma::Node* node;
    std::unique_ptr<sim::CpuScheduler> cpu;
    std::unique_ptr<core::Sandbox> sandbox;
    std::unique_ptr<agent::NodeAgent> agent;
    core::CodeFlow* flow = nullptr;
  };
  std::vector<NodeBundle> nodes;

  explicit Cluster(int node_count = 1,
                   core::ControlPlaneConfig cp_config = {},
                   agent::AgentConfig agent_config = {},
                   int cores_per_node = 24) {
    fabric = std::make_unique<rdma::Fabric>(events);
    cp_node = fabric->AddNode("control-plane", 128u << 20).id();
    cp = std::make_unique<core::ControlPlane>(events, *fabric, cp_node,
                                              cp_config);
    controller = std::make_unique<agent::AgentController>(events);
    for (int i = 0; i < node_count; ++i) {
      NodeBundle bundle;
      bundle.node = &fabric->AddNode("node" + std::to_string(i), 64u << 20);
      bundle.cpu = std::make_unique<sim::CpuScheduler>(
          events, cores_per_node, agent_config.cost.cpu_hz);
      core::SandboxConfig sandbox_config;
      sandbox_config.seed = 1000 + i;
      // Benches deploy hundreds of MB-scale images per node; keep the
      // scratchpad far from exhaustion so allocation never perturbs the
      // measurement.
      sandbox_config.scratch_bytes = 48u << 20;
      bundle.sandbox = std::make_unique<core::Sandbox>(events, *bundle.node,
                                                       sandbox_config);
      if (!bundle.sandbox->CtxInit().ok()) std::abort();
      auto reg = bundle.sandbox->CtxRegister();
      if (!reg.ok()) std::abort();
      cp->CreateCodeFlow(*bundle.sandbox, reg.value(),
                         [&bundle](StatusOr<core::CodeFlow*> flow) {
                           if (flow.ok()) bundle.flow = flow.value();
                         });
      events.Run();
      if (bundle.flow == nullptr) std::abort();
      bundle.agent = std::make_unique<agent::NodeAgent>(
          events, *bundle.sandbox, *bundle.cpu, agent_config);
      controller->RegisterAgent(bundle.agent.get());
      nodes.push_back(std::move(bundle));
    }
  }

  // Runs the event loop until `flag` is set (or the queue drains).
  void RunUntilFlag(const bool& flag) {
    while (!flag && !events.Empty()) events.Step();
  }
};

// ---- table printing ----

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    reproduces: %s\n", paper_ref.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) std::printf("%16s", cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(std::uint64_t v) { return std::to_string(v); }

// ---- machine-readable output ----
//
// Tiny JSON object builder for the `BENCH_<name>.json {...}` lines the
// sweep scripts grep out of bench stdout. Insertion order is preserved;
// strings are assumed to need no escaping (bench keys/labels only).

class Json {
 public:
  Json& Add(const std::string& key, double v, int decimals = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return Raw(key, buf);
  }
  Json& Add(const std::string& key, std::uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  Json& Add(const std::string& key, int v) {
    return Raw(key, std::to_string(v));
  }
  Json& Add(const std::string& key, const std::string& v) {
    return Raw(key, "\"" + v + "\"");
  }

  std::string Str() const { return "{" + body_ + "}"; }

 private:
  Json& Raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + key + "\": " + value;
    return *this;
  }
  std::string body_;
};

// Every BENCH_*.json line carries a provenance stamp: the commit it was
// built from, whether it ran in smoke mode, and (when the caller passes
// its event queue) the final virtual-clock time of the run — enough to
// tell two sweeps apart months later.
inline void PrintBenchJson(const std::string& name, const Json& json,
                           const sim::EventQueue* events = nullptr) {
  Json stamped = json;
  stamped.Add("git_sha", std::string(GitSha()));
  stamped.Add("smoke", SmokeMode() ? 1 : 0);
  if (events != nullptr) {
    stamped.Add("vclock_end_ns", static_cast<std::uint64_t>(events->Now()));
  }
  std::printf("BENCH_%s.json %s\n", name.c_str(), stamped.Str().c_str());
}

}  // namespace rdx::bench
