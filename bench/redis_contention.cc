// §6 "RDX's benefits": agentless eBPF over RDX improves Redis throughput
// by up to 25.3% over the agent baseline. The agent tax has two parts:
// periodic XState polling (map walks for telemetry) and the CPU burned by
// extension (re)injection — both on the cores that serve GET/SET.
#include "bench/bench_util.h"
#include "bpf/proggen.h"
#include "kvstore/kvstore.h"

using namespace rdx;

namespace {

double RunStore(bool agent_path, std::uint64_t seed) {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("cp", 128u << 20).id();
  core::ControlPlane cp(events, fabric, cp_id);

  rdma::Node& node = fabric.AddNode("redis-node", 64u << 20);
  kvstore::StoreConfig store_config;
  store_config.cores = 1;  // Redis is single-threaded
  store_config.seed = seed;
  kvstore::KvStore store(events, node, store_config);

  agent::AgentConfig agent_config;
  agent_config.state_poll_interval = sim::Millis(20);  // telemetry export
  agent::NodeAgent node_agent(events, store.sandbox(), store.cpu(),
                              agent_config);

  auto reg = store.sandbox().CtxRegister();
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(store.sandbox(), reg.value(),
                    [&flow](StatusOr<core::CodeFlow*> f) {
                      flow = f.value();
                    });
  events.Run();

  // Attach the tracing extension through the path under test.
  bpf::Program prog = bpf::GenerateProgram({.target_insns = 800, .seed = 5});
  bool attached = false;
  if (agent_path) {
    node_agent.LoadExtension(prog, 0, [&](StatusOr<agent::AgentTrace> r) {
      if (!r.ok()) std::abort();
      attached = true;
    });
  } else {
    cp.InjectExtension(*flow, prog, 0, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      attached = true;
    });
  }
  while (!attached && !events.Empty()) events.Step();

  // Steady-state taxes: the agent polls XState and periodically reloads
  // updated extensions; RDX does both from the remote control plane.
  if (agent_path) {
    node_agent.StartStatePolling();
  }
  auto churn = std::make_shared<std::function<void(int)>>();
  *churn = [&, churn](int n) {
    events.ScheduleAfter(sim::Millis(250), [&, churn, n] {
      bpf::Program update = bpf::GenerateProgram(
          {.target_insns = 800, .seed = static_cast<std::uint64_t>(n + 10)});
      if (agent_path) {
        node_agent.LoadExtension(update, 0,
                                 [](StatusOr<agent::AgentTrace>) {});
      } else {
        cp.InjectExtension(*flow, update, 0,
                           [](StatusOr<core::InjectTrace>) {});
      }
      (*churn)(n + 1);
    });
  };
  (*churn)(0);

  kvstore::WorkloadConfig workload_config;
  workload_config.clients = 64;
  kvstore::KvWorkload workload(events, store, workload_config);
  workload.Start();
  // Smoke mode shrinks the virtual measurement window; see fig2c.
  events.RunUntil(events.Now() + (bench::SmokeMode() ? sim::Millis(50)
                                                     : sim::Seconds(1)));
  (void)store.TakeMetrics();
  events.RunUntil(events.Now() + (bench::SmokeMode() ? sim::Millis(300)
                                                     : sim::Seconds(5)));
  kvstore::StoreMetrics metrics = store.TakeMetrics();
  workload.Stop();
  return metrics.ThroughputPerSec();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Redis-style KV throughput: agent vs agentless (RDX)",
      "Section 6 (agentless eBPF over RDX improves Redis throughput by up "
      "to 25.3%)");
  bench::PrintRow({"mode", "ops_per_s"});
  const double agent_tput = RunStore(/*agent_path=*/true, 3);
  const double rdx_tput = RunStore(/*agent_path=*/false, 3);
  bench::PrintRow({"agent", bench::Fmt(agent_tput, 0)});
  bench::PrintRow({"rdx", bench::Fmt(rdx_tput, 0)});
  std::printf("\nimprovement: +%.1f%% (paper: up to +25.3%%)\n",
              100.0 * (rdx_tput - agent_tput) / agent_tput);
  return 0;
}
