#!/usr/bin/env bash
# Runs the checked-in-result benches (fault_recovery, guardrail_overhead,
# broadcast_scale) and writes each machine-readable `BENCH_<name>.json
# {...}` line from their stdout to BENCH_<name>.json at the repo root.
# docs/benchmarks.md documents the fields and the refresh workflow.
#
# Usage: scripts/bench.sh            # from anywhere inside the repo
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

benches=(fault_recovery guardrail_overhead broadcast_scale small_op_fastpath
         fig5_sync_primitives)

cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target "${benches[@]}"

rm -f "$repo"/BENCH_*.json.tmp
for bench in "${benches[@]}"; do
  echo "== bench: $bench =="
  out="$(./build/bench/$bench)"
  echo "$out"
  # Each BENCH_<name>.json line becomes (or appends to) that file; a
  # bench emitting one line per sweep point yields a JSON-lines file.
  echo "$out" | grep '^BENCH_' | while read -r tag json; do
    echo "$json" >> "$repo/$tag.tmp"
  done
done

# Atomically replace previous results.
for tmp in "$repo"/BENCH_*.json.tmp; do
  [[ -e "$tmp" ]] || continue
  mv "$tmp" "${tmp%.tmp}"
  echo "wrote ${tmp%.tmp}"
done
