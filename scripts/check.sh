#!/usr/bin/env bash
# Repository gate: tier-1 verification (full build + every test) plus a
# strict -Wall -Wextra -Werror compile of all src/ libraries.
#
# Usage: scripts/check.sh            # from anywhere inside the repo
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== strict: -Wall -Wextra -Werror build of src/ libraries =="
cmake -B build-werror -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build build-werror -j"$(nproc)" --target \
  rdx_common rdx_sim rdx_rdma rdx_bpf rdx_wasm \
  rdx_agent rdx_core rdx_fault rdx_mesh rdx_kvstore

echo
echo "check.sh: all gates passed"
