#!/usr/bin/env bash
# Repository gate: tier-1 verification (full build + every test), a
# strict -Wall -Wextra -Werror compile of all src/ libraries, a
# doc-drift guard (docs/wire-contracts.md vs core/layout.h + markdown
# link check), and an ASan+UBSan build + test pass (catches the
# lifetime/aliasing bugs the guardrail and fault paths are most prone
# to).
#
# Usage: scripts/check.sh            # from anywhere inside the repo
#        RDX_SKIP_SANITIZERS=1 scripts/check.sh   # quick gate only
#        RDX_BENCH_SMOKE=1 scripts/check.sh       # + run every bench tiny
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== docs: wire-contract drift guard + markdown link check =="
# Every `| 0x.. | kConstant |` table row in docs/wire-contracts.md must
# match the constexpr value in src/core/layout.h, and every layout
# constant in the header must appear in the doc. Grep-based on purpose:
# no extra tooling, and the doc's table format is part of the contract.
doc="docs/wire-contracts.md"
hdr="src/core/layout.h"
drift=0

# Doc -> header: each documented (offset, constant) pair exists verbatim.
while IFS=' ' read -r off name; do
  if ! grep -Eq "constexpr std::uint64_t ${name} = ${off};" "$hdr"; then
    echo "doc-drift: $doc documents ${name} = ${off}, not found in $hdr"
    drift=1
  fi
done < <(sed -n 's/^| `\(0x[0-9a-fA-F]*\)` | `\(k[A-Za-z0-9]*\)` .*/\1 \2/p' "$doc")

# Doc sizes: `kFooBytes` = `0x..` mentions in prose must match too.
while IFS=' ' read -r name off; do
  if ! grep -Eq "constexpr std::uint64_t ${name} = ${off};" "$hdr"; then
    echo "doc-drift: $doc documents ${name} = ${off}, not found in $hdr"
    drift=1
  fi
done < <(sed -n 's/.*`\(k[A-Za-z0-9]*Bytes\)` = `\(0x[0-9a-fA-F]*\)`.*/\1 \2/p' "$doc")

# Header -> doc: every offset/size constant is documented somewhere.
while IFS= read -r name; do
  if ! grep -q "\`${name}\`" "$doc"; then
    echo "doc-drift: $hdr defines ${name}, missing from $doc"
    drift=1
  fi
done < <(sed -n 's/^constexpr std::uint64_t \(k\(Cb\|Tr\|Ts\|Hb\|Desc\)[A-Za-z0-9]*\) = 0x.*/\1/p; s/^constexpr std::uint64_t \(k[A-Za-z0-9]*Bytes\) = 0x.*/\1/p' "$hdr" | sort -u)

# Relative markdown links in the top-level docs resolve to real files.
for md in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
  dir="$(dirname "$md")"
  while IFS= read -r link; do
    target="${link%%#*}"
    [[ -z "$target" ]] && continue
    if [[ ! -e "$dir/$target" ]]; then
      echo "broken link: $md -> $link"
      drift=1
    fi
  done < <(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//' \
             | grep -v '^https\?://' | grep -v '^#' | grep -v ' ' || true)
done

if [[ "$drift" != "0" ]]; then
  echo "doc guard FAILED (see above)"
  exit 1
fi
echo "doc guard OK"

echo
echo "== strict: -Wall -Wextra -Werror build of src/ libraries =="
cmake -B build-werror -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build build-werror -j"$(nproc)" --target \
  rdx_common rdx_sim rdx_rdma rdx_bpf rdx_wasm rdx_telemetry \
  rdx_agent rdx_core rdx_fault rdx_mesh rdx_kvstore

echo
echo "== perf-smoke gate: small_op_fastpath vs checked-in budget =="
# The bench runs in virtual time, so the smoke numbers are deterministic;
# the 20% tolerance absorbs deliberate cost-constant recalibration (in
# which case refresh bench/small_op_fastpath_budget.json) while catching
# accidental fast-path regressions. The headline row is payload=64 warm —
# the control plane's common case.
budget="bench/small_op_fastpath_budget.json"
row="$(RDX_BENCH_SMOKE=1 ./build/bench/small_op_fastpath \
       | grep '"payload_bytes": 64, "locality": "warm"')"
json_field() { sed -n "s/.*\"$2\": \([0-9.][0-9.]*\).*/\1/p" <<<"$1"; }
base="$(json_field "$row" baseline_ns_per_op)"
fast="$(json_field "$row" fastpath_ns_per_op)"
want_base="$(json_field "$(cat "$budget")" baseline_ns_per_op)"
want_fast="$(json_field "$(cat "$budget")" fastpath_ns_per_op)"
min_speedup="$(json_field "$(cat "$budget")" min_speedup)"
awk -v b="$base" -v f="$fast" -v wb="$want_base" -v wf="$want_fast" \
    -v ms="$min_speedup" 'BEGIN {
  ok = 1
  if (f > wf * 1.2 || f < wf * 0.8) {
    printf "perf gate: fastpath %.1f ns/op outside budget %.1f +/-20%%\n", f, wf
    ok = 0
  }
  if (b > wb * 1.2 || b < wb * 0.8) {
    printf "perf gate: baseline %.1f ns/op outside budget %.1f +/-20%%\n", b, wb
    ok = 0
  }
  if (b / f < ms) {
    printf "perf gate: speedup %.2fx below required %.1fx\n", b / f, ms
    ok = 0
  }
  if (!ok) exit 1
  printf "perf gate OK: %.1f -> %.1f ns/op (%.2fx, budget %.1f +/-20%%)\n",
         b, f, b / f, wf
}'

if [[ "${RDX_BENCH_SMOKE:-0}" == "1" ]]; then
  echo
  echo "== bench smoke: every bench binary, tiny iterations =="
  for bench in build/bench/*; do
    [[ -f "$bench" && -x "$bench" ]] || continue
    echo "-- $(basename "$bench")"
    RDX_BENCH_SMOKE=1 "$bench" >/dev/null
  done
fi

if [[ "${RDX_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo
  echo "== sanitizers: ASan + UBSan build + ctest =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi

echo
echo "check.sh: all gates passed"
