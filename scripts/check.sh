#!/usr/bin/env bash
# Repository gate: tier-1 verification (full build + every test), a
# strict -Wall -Wextra -Werror compile of all src/ libraries, and an
# ASan+UBSan build + test pass (catches the lifetime/aliasing bugs the
# guardrail and fault paths are most prone to).
#
# Usage: scripts/check.sh            # from anywhere inside the repo
#        RDX_SKIP_SANITIZERS=1 scripts/check.sh   # quick gate only
#        RDX_BENCH_SMOKE=1 scripts/check.sh       # + run every bench tiny
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== strict: -Wall -Wextra -Werror build of src/ libraries =="
cmake -B build-werror -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build build-werror -j"$(nproc)" --target \
  rdx_common rdx_sim rdx_rdma rdx_bpf rdx_wasm rdx_telemetry \
  rdx_agent rdx_core rdx_fault rdx_mesh rdx_kvstore

if [[ "${RDX_BENCH_SMOKE:-0}" == "1" ]]; then
  echo
  echo "== bench smoke: every bench binary, tiny iterations =="
  for bench in build/bench/*; do
    [[ -f "$bench" && -x "$bench" ]] || continue
    echo "-- $(basename "$bench")"
    RDX_BENCH_SMOKE=1 "$bench" >/dev/null
  done
fi

if [[ "${RDX_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo
  echo "== sanitizers: ASan + UBSan build + ctest =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi

echo
echo "check.sh: all gates passed"
