// Rollback + hot patching (§4, third case study): a buggy filter ships,
// production failures appear, and the control plane reverts the hook to
// the last stable version in microseconds (a desc re-commit — no
// re-verify, no re-transfer), then hot-patches a fixed version through
// the normal injection pipeline. No node CPU, no traffic draining.
#include <cstdio>

#include "bpf/assembler.h"
#include "core/codeflow.h"

using namespace rdx;

namespace {

bpf::Program MakeFilter(const char* name, std::string_view body) {
  bpf::Program prog;
  prog.name = name;
  auto insns = bpf::Assemble(body);
  if (!insns.ok()) {
    std::printf("asm error in %s: %s\n", name,
                insns.status().ToString().c_str());
    std::abort();
  }
  prog.insns = std::move(insns).value();
  return prog;
}

}  // namespace

int main() {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  rdma::Node& cp_node = fabric.AddNode("control-plane", 64u << 20);
  rdma::Node& worker = fabric.AddNode("worker", 64u << 20);
  core::ControlPlane cp(events, fabric, cp_node.id());

  core::Sandbox sandbox(events, worker, core::SandboxConfig{});
  if (!sandbox.CtxInit().ok()) return 1;
  auto reg = sandbox.CtxRegister();
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, reg.value(), [&](StatusOr<core::CodeFlow*> f) {
    if (f.ok()) flow = f.value();
  });
  events.Run();
  if (flow == nullptr) return 1;

  // v1: stable filter, accepts everything.
  bpf::Program stable = MakeFilter("stable", "r0 = 1\nexit\n");
  // v2: "buggy" — drops every request (a production incident).
  bpf::Program buggy = MakeFilter("buggy", "r0 = 0\nexit\n");
  // v3: the fix.
  bpf::Program fixed = MakeFilter("fixed", R"(
    r6 = *(u32*)(r1 + 0)
    r0 = 1
    if r6 != 666 goto out
    r0 = 0
  out:
    exit
  )");

  auto inject = [&](const bpf::Program& prog) {
    bool done = false;
    cp.InjectExtension(*flow, prog, 0, [&](StatusOr<core::InjectTrace> r) {
      if (!r.ok()) std::abort();
      done = true;
    });
    while (!done && !events.Empty()) events.Step();
    events.Run();  // drain the post-commit visibility event
  };

  auto serve = [&](const char* phase) {
    int ok = 0;
    for (int i = 0; i < 100; ++i) {
      Bytes packet(4);
      StoreLE<std::uint32_t>(packet.data(), static_cast<std::uint32_t>(i));
      auto verdict = sandbox.ExecuteHook(0, packet);
      if (verdict.ok() && verdict->r0 != 0) ++ok;
    }
    std::printf("%-22s %3d/100 requests pass\n", phase, ok);
  };

  inject(stable);
  serve("v1 (stable):");

  inject(buggy);
  serve("v2 (buggy!):");

  // Emergency rollback: microseconds, no pipeline re-run.
  const sim::SimTime t0 = events.Now();
  bool rolled_back = false;
  cp.Rollback(*flow, 0, [&](Status s) {
    if (!s.ok()) std::abort();
    rolled_back = true;
  });
  while (!rolled_back && !events.Empty()) events.Step();
  std::printf("rollback completed in %.1f us\n",
              sim::ToMicros(events.Now() - t0));
  events.Run();  // drain the post-commit visibility event
  serve("after rollback:");

  // Hot patch: deploy the fixed version through the normal pipeline.
  inject(fixed);
  serve("v3 (hot patch):");

  std::printf("sandbox executions: %llu, torn-image failures: %llu\n",
              static_cast<unsigned long long>(sandbox.stats().executions),
              static_cast<unsigned long long>(
                  sandbox.stats().torn_image_failures));
  return 0;
}
