// Secure declarative orchestration — the §5 security model plus the
// future-work orchestration language in one flow:
//
//  1. principals with roles (operator / deployer / observer) are checked
//     by the Gatekeeper before any CodeFlow operation;
//  2. a declarative plan deploys a signed firewall fleet-wide;
//  3. the Inspector sweeps the fleet and detects in-memory tampering;
//  4. the operator rolls the damaged node back — by policy, something a
//     mere deployer may not do.
#include <cstdio>

#include "bpf/assembler.h"
#include "core/gatekeeper.h"
#include "core/inspector.h"
#include "core/orchestrator.h"

using namespace rdx;

int main() {
  constexpr std::uint64_t kFleetKey = 0xfee7;

  sim::EventQueue events;
  rdma::Fabric fabric(events);
  const rdma::NodeId cp_id = fabric.AddNode("control-plane", 128u << 20).id();
  core::ControlPlaneConfig cp_config;
  cp_config.signing_key = kFleetKey;
  core::ControlPlane cp(events, fabric, cp_id, cp_config);

  // A 4-node fleet whose sandboxes demand signed images.
  std::vector<std::unique_ptr<core::Sandbox>> sandboxes;
  std::vector<core::CodeFlow*> flows;
  core::Orchestrator orchestrator(cp);
  for (int i = 0; i < 4; ++i) {
    rdma::Node& node = fabric.AddNode("node" + std::to_string(i));
    core::SandboxConfig sandbox_config;
    sandbox_config.signing_key = kFleetKey;
    sandboxes.push_back(
        std::make_unique<core::Sandbox>(events, node, sandbox_config));
    if (!sandboxes.back()->CtxInit().ok()) return 1;
    auto reg = sandboxes.back()->CtxRegister();
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(*sandboxes.back(), reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        if (f.ok()) flow = f.value();
                      });
    events.Run();
    if (flow == nullptr) return 1;
    flows.push_back(flow);
    orchestrator.RegisterNode(flow);
  }

  // --- 1. the privilege model ---
  core::Gatekeeper gate;
  gate.AddPrincipal("ops-oncall", core::Role::kOperator);
  gate.AddPrincipal("ci-bot", core::Role::kDeployer, /*max_insns=*/10000);
  gate.AddPrincipal("dashboard", core::Role::kObserver);

  bpf::Program firewall;
  firewall.name = "firewall";
  firewall.insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)
    r0 = 1
    if r6 != 1337 goto out
    r0 = 0
  out:
    exit
  )").value();
  orchestrator.RegisterProgram("firewall", firewall);

  auto authorized = [&](const char* who, core::Operation op,
                        std::uint64_t insns = 0) {
    Status s = gate.Authorize(who, op, insns);
    std::printf("  %-10s %-12s -> %s\n", who, core::OperationName(op),
                s.ok() ? "allowed" : s.ToString().c_str());
    return s.ok();
  };
  std::printf("authorization checks:\n");
  authorized("dashboard", core::Operation::kDeploy);          // denied
  authorized("ci-bot", core::Operation::kBroadcast);          // denied
  if (!authorized("ci-bot", core::Operation::kDeploy,
                  firewall.size())) {
    return 1;
  }

  // --- 2. declarative signed rollout (by ci-bot) ---
  auto plan = core::ParseOrchestration(R"(
    extension firewall kind=ebpf hook=0
    group fleet nodes=0,1,2,3
    deploy firewall to=fleet strategy=broadcast
  )");
  if (!plan.ok()) return 1;
  bool deployed = false;
  orchestrator.Execute(plan.value(), nullptr,
                       [&](StatusOr<core::OrchestrationReport> r) {
                         if (!r.ok()) {
                           std::printf("plan failed: %s\n",
                                       r.status().ToString().c_str());
                           return;
                         }
                         deployed = true;
                         for (const std::string& line : r->log) {
                           std::printf("plan: %s\n", line.c_str());
                         }
                       });
  events.Run();
  if (!deployed) return 1;
  Bytes attack(4);
  StoreLE<std::uint32_t>(attack.data(), 1337);
  std::printf("firewall live: packet 1337 verdict=%llu (signed images "
              "verified on load)\n",
              static_cast<unsigned long long>(
                  sandboxes[2]->ExecuteHook(0, attack)->r0));

  // --- 3. a compromise: node 1's image is corrupted in memory ---
  {
    auto& mem = sandboxes[1]->node().memory();
    const std::uint64_t desc =
        mem.ReadU64(flows[1]->remote_view().hook_table_addr).value();
    const std::uint64_t image_addr =
        mem.ReadU64(desc + core::kDescImageAddr).value();
    Bytes evil(1, 0x66);
    (void)mem.Write(image_addr + 11, evil);
  }
  core::Inspector inspector(cp);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    inspector.Sweep(*flows[i], [&, i](
                                   StatusOr<std::vector<core::InspectReport>>
                                       bad) {
      if (!bad.ok()) return;
      if (bad->empty()) {
        std::printf("inspector: node%zu healthy\n", i);
      } else {
        std::printf("inspector: node%zu TAMPERED (hook %d: checksum=%d "
                    "signature=%d)\n",
                    i, (*bad)[0].hook, (*bad)[0].checksum_ok,
                    (*bad)[0].signature_ok);
      }
    });
    events.Run();
  }

  // --- 4. remediation requires operator privilege ---
  if (authorized("ci-bot", core::Operation::kRollback)) return 1;  // denied
  if (!authorized("ops-oncall", core::Operation::kDeploy)) return 1;
  bool repaired = false;
  cp.InjectExtension(*flows[1], firewall, 0,
                     [&](StatusOr<core::InjectTrace> r) {
                       if (r.ok()) repaired = true;
                     });
  events.Run();
  if (!repaired) return 1;
  std::printf("node1 re-imaged by ops-oncall; verdict=%llu\n",
              static_cast<unsigned long long>(
                  sandboxes[1]->ExecuteHook(0, attack)->r0));
  std::printf("audit log: %zu decisions, %zu denied\n",
              gate.audit_log().size(), gate.denied_count());
  return 0;
}
