// Extension live migration for microsecond auto-scaling (§4, fourth case
// study): a serverless platform scales a pod out to a warm replica. The
// application state moves over RDMA (prior work); what RDX adds is moving
// the *sidecar extensions* — filter binary and live XState — in
// microseconds instead of re-running seconds of filter reloads:
//
//   1. the filter is already in the control plane's compile cache
//      ("validate and compile once"),
//   2. InjectExtension onto the replica = link + RDMA deploy (tens of us),
//   3. CopyXState moves the live counters (one READ + one WRITE).
#include <cstdio>

#include "bpf/assembler.h"
#include "core/codeflow.h"

using namespace rdx;

int main() {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  rdma::Node& cp_node = fabric.AddNode("control-plane", 64u << 20);
  rdma::Node& pod_a = fabric.AddNode("pod-a", 64u << 20);
  rdma::Node& pod_b = fabric.AddNode("pod-b (warm replica)", 64u << 20);
  core::ControlPlane cp(events, fabric, cp_node.id());

  auto boot = [&](rdma::Node& node) {
    auto sandbox =
        std::make_unique<core::Sandbox>(events, node, core::SandboxConfig{});
    if (!sandbox->CtxInit().ok()) std::abort();
    return sandbox;
  };
  auto bind = [&](core::Sandbox& sandbox) {
    auto reg = sandbox.CtxRegister();
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(sandbox, reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        if (f.ok()) flow = f.value();
                      });
    events.Run();
    return flow;
  };

  auto sandbox_a = boot(pod_a);
  auto sandbox_b = boot(pod_b);
  core::CodeFlow* flow_a = bind(*sandbox_a);
  core::CodeFlow* flow_b = bind(*sandbox_b);
  if (flow_a == nullptr || flow_b == nullptr) return 1;

  // The pod's sidecar extension: a per-tenant request counter.
  bpf::Program prog;
  prog.name = "tenant-counter";
  prog.maps.push_back({"tenants", bpf::MapType::kHash, 4, 8, 64});
  prog.insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)        ; tenant id
    r6 &= 63
    *(u32*)(r10 - 4) = r6       ; key = tenant
    *(u64*)(r10 - 16) = 1       ; initial count
    r1 = map 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto fresh
    r8 = *(u64*)(r0 + 0)
    r8 += 1
    *(u64*)(r0 + 0) = r8
    r0 = 1
    exit
  fresh:
    r1 = map 0
    r2 = r10
    r2 += -4
    r3 = r10
    r3 += -16
    r4 = 0
    call map_update_elem
    r0 = 1
    exit
  )").value();

  // Deploy on pod A and serve some traffic.
  bool done = false;
  cp.InjectExtension(*flow_a, prog, 0, [&](StatusOr<core::InjectTrace> r) {
    if (!r.ok()) std::abort();
    done = true;
  });
  events.Run();
  if (!done) return 1;
  for (int i = 0; i < 500; ++i) {
    Bytes packet(4);
    StoreLE<std::uint32_t>(packet.data(), static_cast<std::uint32_t>(i % 3));
    if (!sandbox_a->ExecuteHook(0, packet).ok()) return 1;
  }

  // --- scale-out event: migrate the extension to the warm replica ---
  const sim::SimTime t0 = events.Now();

  // (a) binary: the compile cache makes this link + deploy only.
  bool deployed = false;
  core::InjectTrace trace;
  cp.InjectExtension(*flow_b, prog, 0, [&](StatusOr<core::InjectTrace> r) {
    if (!r.ok()) std::abort();
    trace = r.value();
    deployed = true;
  });
  events.Run();
  if (!deployed) return 1;

  // (b) state: copy the live tenant counters A -> B.
  const std::uint64_t src = flow_a->xstates().at("tenants");
  const std::uint64_t dst = flow_b->xstates().at("tenants");
  bool copied = false;
  cp.CopyXState(*flow_a, src, *flow_b, dst, [&](Status s) {
    if (!s.ok()) std::abort();
    copied = true;
  });
  events.Run();
  if (!copied) return 1;
  sandbox_b->RefreshXState();

  const double migration_us = sim::ToMicros(events.Now() - t0);
  std::printf("sidecar extension migrated pod-a -> pod-b in %.1f us "
              "(binary: cache hit=%s; state: 1 READ + 1 WRITE)\n",
              migration_us, trace.compile_cache_hit ? "yes" : "no");

  // The replica continues exactly where the original left off.
  Bytes packet(4, 0);
  if (!sandbox_b->ExecuteHook(0, packet).ok()) return 1;
  Bytes key(4, 0);
  cp.XStateLookup(*flow_b, dst, key, [&](StatusOr<Bytes> value) {
    if (value.ok()) {
      std::printf("tenant 0 count on replica: %llu (500 requests across 3 "
                  "tenants on pod-a, +1 on pod-b)\n",
                  static_cast<unsigned long long>(
                      LoadLE<std::uint64_t>(value->data())));
    }
  });
  events.Run();
  std::printf("vs. agent path: re-verify + re-JIT + reload would cost "
              "milliseconds-to-seconds of replica CPU during scale-out\n");
  return 0;
}
