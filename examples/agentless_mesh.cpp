// Agentless service mesh (§4, first case study): an Istio/Envoy-style
// deployment where Wasm filters are injected into every sidecar by the
// RDX control plane — a filter registry (compile cache), a filter
// dispatcher (link + deploy), and a filter inspector (XState APIs) — with
// the local nodes only executing.
//
// The example runs an 8-service app, injects a rate-limit-style filter
// everywhere, serves traffic, then introspects per-service counters.
#include <cstdio>

#include "core/broadcast.h"
#include "mesh/mesh.h"

using namespace rdx;

int main() {
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  rdma::Node& cp_node = fabric.AddNode("control-plane", 128u << 20);
  core::ControlPlane cp(events, fabric, cp_node.id());

  // An 8-microservice app; each service gets its own node + sidecar.
  mesh::MeshConfig config;
  config.app = mesh::AppSpec::Generate("shop", 8, 2024);
  config.request_rate_per_s = 3000;
  mesh::MeshSim mesh(events, fabric, config);
  std::printf("app '%s': %zu services, traversal depth %zu\n",
              mesh.app().name.c_str(), mesh.app().size(),
              mesh.app().DependencyWaves().size());

  // Bind a CodeFlow to every sidecar.
  std::vector<core::CodeFlow*> flows;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    auto reg = mesh.sandbox(i).CtxRegister();
    if (!reg.ok()) return 1;
    core::CodeFlow* flow = nullptr;
    cp.CreateCodeFlow(mesh.sandbox(i), reg.value(),
                      [&flow](StatusOr<core::CodeFlow*> f) {
                        if (f.ok()) flow = f.value();
                      });
    events.Run();
    if (flow == nullptr) return 1;
    flows.push_back(flow);
  }

  // A hand-built filter: tag every request (set_header) and count it
  // (counter_incr), passing the verdict through.
  wasm::FilterModule filter;
  filter.name = "request-tagger";
  filter.num_locals = 2;
  filter.imports = {{"get_header"}, {"set_header"}, {"counter_incr"}};
  using wasm::WOp;
  filter.code = {
      {WOp::kConst, 0},      {WOp::kConst, 0},
      {WOp::kCallHost, 0},   // local copy of header[0]
      {WOp::kSetLocal, 0},
      {WOp::kConst, 7},      {WOp::kGetLocal, 0},
      {WOp::kCallHost, 1},   // set_header(7, header[0]) - the tag
      {WOp::kDrop, 0},
      {WOp::kConst, 1},      {WOp::kConst, 0},
      {WOp::kCallHost, 2},   // counter_incr(1)
      {WOp::kDrop, 0},
      {WOp::kConst, 1},      {WOp::kReturn, 0},  // accept
  };

  // Inject it into every sidecar with one collective call.
  core::CollectiveCodeFlow group(cp, flows);
  std::vector<const wasm::FilterModule*> filters(mesh.size(), &filter);
  bool deployed = false;
  group.BroadcastWasm(filters, 0, nullptr,
                      [&](StatusOr<core::BroadcastResult> r) {
                        if (!r.ok()) {
                          std::printf("broadcast failed: %s\n",
                                      r.status().ToString().c_str());
                          return;
                        }
                        deployed = true;
                        std::printf(
                            "filter deployed to %zu sidecars; commit "
                            "window %.1f us\n",
                            r->nodes, sim::ToMicros(r->commit_window));
                      });
  events.Run();
  if (!deployed) return 1;

  // Serve one second of traffic.
  mesh.StartWorkload();
  events.RunUntil(events.Now() + sim::Seconds(1));
  mesh.StopWorkload();
  mesh::MeshMetrics metrics = mesh.TakeMetrics();
  std::printf("served %llu requests (%.0f req/s, p99 latency %.1f us)\n",
              static_cast<unsigned long long>(metrics.completed),
              metrics.CompletionRatePerSec(),
              static_cast<double>(metrics.latency_ns.Percentile(0.99)) / 1e3);

  // Filter inspector: every sidecar executed the filter on every hop.
  std::printf("per-sidecar filter executions:\n");
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    std::printf("  %-12s %llu\n", mesh.app().services[i].name.c_str(),
                static_cast<unsigned long long>(
                    mesh.sandbox(i).stats().executions));
  }
  return 0;
}
