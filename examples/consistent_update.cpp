// Consistent cluster-wide updates (§4, second case study): roll a Wasm
// filter from v1 to v2 across a live 11-service mesh three ways and watch
// what in-flight requests observe:
//   - agent rollout      : eventual consistency, mixed-version requests
//   - rdx_broadcast      : microsecond window, near-zero mixed
//   - rdx_broadcast + BBU: requests buffered across the window — zero
//                          mixed observations, bounded buffering
#include <cstdio>

#include "agent/agent.h"
#include "core/broadcast.h"
#include "mesh/mesh.h"

using namespace rdx;

namespace {

struct Deployment {
  sim::EventQueue events;
  rdma::Fabric fabric{events};
  std::unique_ptr<core::ControlPlane> cp;
  std::unique_ptr<agent::AgentController> controller;
  std::unique_ptr<mesh::MeshSim> mesh;
  std::vector<std::unique_ptr<agent::NodeAgent>> agents;
  std::vector<core::CodeFlow*> flows;

  Deployment() {
    rdma::Node& cp_node = fabric.AddNode("control-plane", 256u << 20);
    cp = std::make_unique<core::ControlPlane>(events, fabric, cp_node.id());
    controller = std::make_unique<agent::AgentController>(events);
    mesh::MeshConfig config;
    config.app = mesh::AppSpec::Generate("payments", 11, 7);
    config.request_rate_per_s = 4000;
    mesh = std::make_unique<mesh::MeshSim>(events, fabric, config);
    for (std::size_t i = 0; i < mesh->size(); ++i) {
      agents.push_back(std::make_unique<agent::NodeAgent>(
          events, mesh->sandbox(i), mesh->cpu(i)));
      controller->RegisterAgent(agents.back().get());
      auto reg = mesh->sandbox(i).CtxRegister();
      core::CodeFlow* flow = nullptr;
      cp->CreateCodeFlow(mesh->sandbox(i), reg.value(),
                         [&flow](StatusOr<core::CodeFlow*> f) {
                           if (f.ok()) flow = f.value();
                         });
      events.Run();
      flows.push_back(flow);
    }
  }

  void InstallV1(const wasm::FilterModule& v1) {
    core::CollectiveCodeFlow group(*cp, flows);
    std::vector<const wasm::FilterModule*> filters(mesh->size(), &v1);
    bool done = false;
    group.BroadcastWasm(filters, 0, nullptr,
                        [&](StatusOr<core::BroadcastResult> r) {
                          if (!r.ok()) std::abort();
                          done = true;
                        });
    while (!done && !events.Empty()) events.Step();
  }
};

}  // namespace

int main() {
  wasm::FilterModule v1 = wasm::GenerateFilter(300, 1);
  wasm::FilterModule v2 = wasm::GenerateFilter(300, 2);

  // --- agent rollout ---
  {
    Deployment dep;
    dep.InstallV1(v1);
    dep.mesh->StartWorkload();
    dep.events.RunUntil(dep.events.Now() + sim::Millis(100));
    (void)dep.mesh->TakeMetrics();
    bool done = false;
    double window_ms = 0;
    dep.controller->RolloutWasm(v2, 0, dep.mesh->app().DependencyWaves(),
                                [&](StatusOr<agent::RolloutResult> r) {
                                  if (!r.ok()) std::abort();
                                  window_ms =
                                      sim::ToMillis(r->inconsistency_window);
                                  done = true;
                                });
    while (!done && !dep.events.Empty()) dep.events.Step();
    dep.events.RunUntil(dep.events.Now() + sim::Millis(100));
    mesh::MeshMetrics metrics = dep.mesh->TakeMetrics();
    std::printf(
        "agent rollout:   window %7.1f ms, %4llu requests saw mixed "
        "versions\n",
        window_ms,
        static_cast<unsigned long long>(metrics.mixed_version));
  }

  // --- rdx_broadcast, with and without BBU ---
  for (bool use_bbu : {false, true}) {
    Deployment dep;
    dep.InstallV1(v1);
    dep.mesh->StartWorkload();
    dep.events.RunUntil(dep.events.Now() + sim::Millis(100));
    (void)dep.mesh->TakeMetrics();
    core::CollectiveCodeFlow group(*dep.cp, dep.flows);
    std::vector<const wasm::FilterModule*> filters(dep.mesh->size(), &v2);
    bool done = false;
    core::BroadcastResult result;
    group.BroadcastWasm(filters, 0, use_bbu ? dep.mesh.get() : nullptr,
                        [&](StatusOr<core::BroadcastResult> r) {
                          if (!r.ok()) std::abort();
                          result = r.value();
                          done = true;
                        });
    while (!done && !dep.events.Empty()) dep.events.Step();
    dep.events.RunUntil(dep.events.Now() + sim::Millis(100));
    mesh::MeshMetrics metrics = dep.mesh->TakeMetrics();
    std::printf(
        "rdx%s: window %7.1f us, %4llu requests saw mixed versions%s\n",
        use_bbu ? "+bbu        " : " (no buffer)",
        sim::ToMicros(result.commit_window),
        static_cast<unsigned long long>(metrics.mixed_version),
        use_bbu ? (" (" + std::to_string(result.buffered_requests) +
                   " requests buffered)").c_str()
                : "");
  }
  return 0;
}
