// Quickstart: the smallest end-to-end RDX flow.
//
//  1. Stand up a simulated rack: one control-plane server, one node.
//  2. Boot a sandbox on the node (management stubs: ctx_init +
//     ctx_register) — the only time the node's CPU participates.
//  3. Create a CodeFlow; write an eBPF packet filter in assembly.
//  4. Inject it remotely: validate -> JIT -> deploy XState -> link ->
//     one-sided RDMA deploy -> atomic commit (+ coherence flush).
//  5. Run packets through the hook on the data plane, then read the
//     filter's counters back over RDMA — all without any agent.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "bpf/assembler.h"
#include "core/codeflow.h"

using namespace rdx;

int main() {
  // --- 1. the rack ---
  sim::EventQueue events;
  rdma::Fabric fabric(events);
  rdma::Node& cp_node = fabric.AddNode("control-plane", 64u << 20);
  rdma::Node& worker = fabric.AddNode("worker-0", 64u << 20);
  core::ControlPlane cp(events, fabric, cp_node.id());

  // --- 2. boot the sandbox (the one-time local setup) ---
  core::Sandbox sandbox(events, worker, core::SandboxConfig{});
  if (!sandbox.CtxInit().ok()) return 1;
  auto reg = sandbox.CtxRegister();
  if (!reg.ok()) return 1;

  // --- 3. a CodeFlow handle bound to the remote node ---
  core::CodeFlow* flow = nullptr;
  cp.CreateCodeFlow(sandbox, reg.value(),
                    [&](StatusOr<core::CodeFlow*> result) {
                      if (result.ok()) flow = result.value();
                    });
  events.Run();
  if (flow == nullptr) return 1;
  std::printf("CodeFlow bound: %llu hooks, %.1f MB scratchpad\n",
              static_cast<unsigned long long>(flow->remote_view().hook_count),
              static_cast<double>(flow->remote_view().scratch_size) /
                  (1 << 20));

  // A filter: drop packets whose first byte is < 0x10, count drops and
  // accepts in an array map.
  bpf::Program prog;
  prog.name = "tiny-firewall";
  prog.maps.push_back({"verdicts", bpf::MapType::kArray, 4, 8, 2});
  auto insns = bpf::Assemble(R"(
    r6 = *(u32*)(r1 + 0)      ; first packet word
    r6 &= 255
    r7 = 1                    ; verdict: accept
    if r6 >= 16 goto count
    r7 = 0                    ; verdict: drop
  count:
    *(u32*)(r10 - 4) = 0
    *(u32*)(r10 - 4) = 0      ; key = verdict slot
    r2 = r10
    r2 += -4
    r1 = map 0
    call map_lookup_elem
    if r0 == 0 goto out
    r8 = *(u64*)(r0 + 0)
    r8 += 1
    *(u64*)(r0 + 0) = r8
  out:
    r0 = r7
    exit
  )");
  if (!insns.ok()) {
    std::printf("assembly error: %s\n", insns.status().ToString().c_str());
    return 1;
  }
  prog.insns = std::move(insns).value();

  // --- 4. agentless injection ---
  bool injected = false;
  cp.InjectExtension(*flow, prog, /*hook=*/0,
                     [&](StatusOr<core::InjectTrace> trace) {
                       if (!trace.ok()) {
                         std::printf("inject failed: %s\n",
                                     trace.status().ToString().c_str());
                         return;
                       }
                       injected = true;
                       std::printf(
                           "injected in %.1f us (image %llu bytes; "
                           "verify+JIT on the control plane)\n",
                           sim::ToMicros(trace->total),
                           static_cast<unsigned long long>(
                               trace->image_bytes));
                     });
  events.Run();
  if (!injected) return 1;

  // --- 5. data-plane execution ---
  int accepted = 0, dropped = 0;
  for (std::uint8_t byte = 0; byte < 32; ++byte) {
    Bytes packet = {byte, 0xaa, 0xbb, 0xcc};
    auto verdict = sandbox.ExecuteHook(0, packet);
    if (!verdict.ok()) {
      std::printf("execution error: %s\n",
                  verdict.status().ToString().c_str());
      return 1;
    }
    (verdict->r0 != 0 ? accepted : dropped) += 1;
  }
  std::printf("data plane: %d accepted, %d dropped\n", accepted, dropped);

  // Remote introspection of the filter's XState.
  const std::uint64_t counters = flow->xstates().at("verdicts");
  Bytes key(4, 0);
  cp.XStateLookup(*flow, counters, key, [&](StatusOr<Bytes> value) {
    if (value.ok()) {
      std::printf("remote XState read: %llu executions counted\n",
                  static_cast<unsigned long long>(
                      LoadLE<std::uint64_t>(value->data())));
    }
  });
  events.Run();

  std::printf("total simulated time: %.1f us; sandbox CPU involvement "
              "after boot: none\n",
              sim::ToMicros(events.Now()));
  return 0;
}
