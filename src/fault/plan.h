// Declarative fault schedules. A FaultPlan is a small line-oriented DSL
// in the same spirit as the orchestrator plans: one fault per line,
// `key=value` attributes, `#` comments, line-numbered parse errors.
//
//   seed 42
//   qp_error  node=1 at=10us
//   crash     node=1 at=50us reboot_after=200us
//   partition node=2 at=5us for=20us
//   degrade   node=2 at=5us for=20us factor=8
//   corrupt   node=1 at=30us bytes=4
//   drop      node=* at=0 for=1ms p=0.05
//
// Times accept ns/us/ms/s suffixes (bare numbers are nanoseconds) and
// `node=*` targets every node (only for the windowed kinds).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdma/types.h"
#include "sim/time.h"

namespace rdx::fault {

enum class FaultKind : std::uint8_t {
  kQpError,    // flip every QP touching the node into Error at `at`
  kPartition,  // all traffic touching the node is dropped in [at, at+window)
  kDegrade,    // traffic touching the node is `factor`× slower in the window
  kCrash,      // node dies at `at` (memory wiped); reboots after reboot_after
  kCorrupt,    // flips `bytes` bytes of the next large WRITE to the node
  kDrop,       // each op touching the node is lost with probability p
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind;
  rdma::NodeId node = rdma::kInvalidNode;  // kInvalidNode == wildcard '*'
  sim::SimTime at = 0;
  sim::Duration window = 0;        // partition / degrade / drop
  sim::Duration reboot_after = 0;  // crash; 0 == never reboots
  double factor = 1.0;             // degrade
  std::uint32_t bytes = 1;         // corrupt
  double probability = 0.0;        // drop
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
};

// Parses the DSL above. Errors carry 1-based line numbers.
StatusOr<FaultPlan> ParseFaultPlan(std::string_view text);

}  // namespace rdx::fault
