// Declarative fault schedules. A FaultPlan is a small line-oriented DSL
// in the same spirit as the orchestrator plans: one fault per line,
// `key=value` attributes, `#` comments, line-numbered parse errors.
//
//   seed 42
//   qp_error  node=1 at=10us
//   crash     node=1 at=50us reboot_after=200us
//   partition node=2 at=5us for=20us
//   degrade   node=2 at=5us for=20us factor=8
//   corrupt   node=1 at=30us bytes=4
//   drop      node=* at=0 for=1ms p=0.05
//   rogue     node=1 at=40us hook=2 kind=trap
//
// Times accept ns/us/ms/s suffixes (bare numbers are nanoseconds) and
// `node=*` targets every node (only for the windowed kinds). `rogue`
// schedules the deployment of a misbehaving-but-verifier-clean extension
// (kind=trap|fuel|hog) at a hook — the adversarial pressure the runtime
// guardrails are tested against.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdma/types.h"
#include "sim/time.h"

namespace rdx::fault {

enum class FaultKind : std::uint8_t {
  kQpError,    // flip every QP touching the node into Error at `at`
  kPartition,  // all traffic touching the node is dropped in [at, at+window)
  kDegrade,    // traffic touching the node is `factor`× slower in the window
  kCrash,      // node dies at `at` (memory wiped); reboots after reboot_after
  kCorrupt,    // flips `bytes` bytes of the next large WRITE to the node
  kDrop,       // each op touching the node is lost with probability p
  kRogue,      // deploy a misbehaving extension to hook at `at`
};

const char* FaultKindName(FaultKind kind);

// What flavor of misbehavior a `rogue` event deploys (mirrors
// bpf::RogueKind; the fault layer stays independent of the bpf headers).
enum class RogueFaultKind : std::uint8_t {
  kTrap,  // traps on every execution (verifier-clean crash loop)
  kFuel,  // burns past the per-execution fuel budget
  kHog,   // oversized image that eats remote scratchpad
};

const char* RogueFaultKindName(RogueFaultKind kind);

struct FaultEvent {
  FaultKind kind;
  rdma::NodeId node = rdma::kInvalidNode;  // kInvalidNode == wildcard '*'
  sim::SimTime at = 0;
  sim::Duration window = 0;        // partition / degrade / drop
  sim::Duration reboot_after = 0;  // crash; 0 == never reboots
  double factor = 1.0;             // degrade
  std::uint32_t bytes = 1;         // corrupt
  double probability = 0.0;        // drop
  int hook = 0;                    // rogue
  RogueFaultKind rogue = RogueFaultKind::kTrap;  // rogue
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
};

// Parses the DSL above. Errors carry 1-based line numbers.
StatusOr<FaultPlan> ParseFaultPlan(std::string_view text);

}  // namespace rdx::fault
