#include "fault/plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace rdx::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kQpError: return "qp_error";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kRogue: return "rogue";
  }
  return "unknown";
}

const char* RogueFaultKindName(RogueFaultKind kind) {
  switch (kind) {
    case RogueFaultKind::kTrap: return "trap";
    case RogueFaultKind::kFuel: return "fuel";
    case RogueFaultKind::kHog: return "hog";
  }
  return "unknown";
}

namespace {

Status LineError(int line_no, const std::string& msg) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "line %d: %s", line_no, msg.c_str());
  return InvalidArgument(buf);
}

std::vector<std::string> SplitWords(std::string_view line) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) words.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return words;
}

std::pair<std::string, std::string> KeyValue(const std::string& word) {
  const std::size_t eq = word.find('=');
  if (eq == std::string::npos || eq == 0) return {"", ""};
  return {word.substr(0, eq), word.substr(eq + 1)};
}

// "10us" → 10000. Bare numbers are nanoseconds.
bool ParseDuration(const std::string& value, sim::Duration* out) {
  if (value.empty()) return false;
  std::size_t digits = 0;
  while (digits < value.size() &&
         std::isdigit(static_cast<unsigned char>(value[digits]))) {
    ++digits;
  }
  if (digits == 0) return false;
  const std::int64_t n = std::strtoll(value.substr(0, digits).c_str(),
                                      nullptr, 10);
  const std::string suffix = value.substr(digits);
  if (suffix.empty() || suffix == "ns") {
    *out = sim::Nanos(n);
  } else if (suffix == "us") {
    *out = sim::Micros(n);
  } else if (suffix == "ms") {
    *out = sim::Millis(n);
  } else if (suffix == "s") {
    *out = sim::Seconds(n);
  } else {
    return false;
  }
  return true;
}

bool ParseNode(const std::string& value, rdma::NodeId* out) {
  if (value == "*") {
    *out = rdma::kInvalidNode;
    return true;
  }
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = static_cast<rdma::NodeId>(std::strtoul(value.c_str(), nullptr, 10));
  return true;
}

}  // namespace

StatusOr<FaultPlan> ParseFaultPlan(std::string_view text) {
  FaultPlan plan;
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t eol = text.find('\n', start);
    std::string_view line = text.substr(
        start,
        eol == std::string_view::npos ? text.size() - start : eol - start);
    start = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;

    const std::string& verb = words[0];
    if (verb == "seed") {
      if (words.size() != 2 ||
          words[1].find_first_not_of("0123456789") != std::string::npos) {
        return LineError(line_no, "seed needs a number");
      }
      plan.seed = std::strtoull(words[1].c_str(), nullptr, 10);
      continue;
    }

    FaultEvent ev;
    bool has_node = false;
    bool has_at = false;
    bool has_hook = false;
    bool has_rogue_kind = false;
    if (verb == "qp_error") {
      ev.kind = FaultKind::kQpError;
    } else if (verb == "partition") {
      ev.kind = FaultKind::kPartition;
    } else if (verb == "degrade") {
      ev.kind = FaultKind::kDegrade;
    } else if (verb == "crash") {
      ev.kind = FaultKind::kCrash;
    } else if (verb == "corrupt") {
      ev.kind = FaultKind::kCorrupt;
    } else if (verb == "drop") {
      ev.kind = FaultKind::kDrop;
    } else if (verb == "rogue") {
      ev.kind = FaultKind::kRogue;
    } else {
      return LineError(line_no, "unknown fault kind '" + verb + "'");
    }

    for (std::size_t w = 1; w < words.size(); ++w) {
      auto [key, value] = KeyValue(words[w]);
      if (key == "node") {
        if (!ParseNode(value, &ev.node)) {
          return LineError(line_no, "bad node '" + value + "'");
        }
        has_node = true;
      } else if (key == "at") {
        if (!ParseDuration(value, &ev.at)) {
          return LineError(line_no, "bad time '" + value + "'");
        }
        has_at = true;
      } else if (key == "for") {
        if (!ParseDuration(value, &ev.window)) {
          return LineError(line_no, "bad duration '" + value + "'");
        }
      } else if (key == "reboot_after") {
        if (!ParseDuration(value, &ev.reboot_after)) {
          return LineError(line_no, "bad duration '" + value + "'");
        }
      } else if (key == "factor") {
        ev.factor = std::strtod(value.c_str(), nullptr);
        if (ev.factor < 1.0) {
          return LineError(line_no, "factor must be >= 1");
        }
      } else if (key == "bytes") {
        const std::int64_t n = std::strtoll(value.c_str(), nullptr, 10);
        if (n <= 0) return LineError(line_no, "bytes must be > 0");
        ev.bytes = static_cast<std::uint32_t>(n);
      } else if (key == "p") {
        ev.probability = std::strtod(value.c_str(), nullptr);
        if (ev.probability < 0.0 || ev.probability > 1.0) {
          return LineError(line_no, "p must be in [0, 1]");
        }
      } else if (key == "hook") {
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
          return LineError(line_no, "bad hook '" + value + "'");
        }
        ev.hook = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
        has_hook = true;
      } else if (key == "kind") {
        if (value == "trap") {
          ev.rogue = RogueFaultKind::kTrap;
        } else if (value == "fuel") {
          ev.rogue = RogueFaultKind::kFuel;
        } else if (value == "hog") {
          ev.rogue = RogueFaultKind::kHog;
        } else {
          return LineError(line_no, "bad rogue kind '" + value + "'");
        }
        has_rogue_kind = true;
      } else {
        return LineError(line_no, "unknown attribute '" + key + "'");
      }
    }

    if (!has_node) return LineError(line_no, "fault needs node=");
    if (!has_at) return LineError(line_no, "fault needs at=");
    const bool windowed = ev.kind == FaultKind::kPartition ||
                          ev.kind == FaultKind::kDegrade ||
                          ev.kind == FaultKind::kDrop;
    if (windowed && ev.window <= 0) {
      return LineError(line_no, std::string(FaultKindName(ev.kind)) +
                                    " needs for=<window>");
    }
    if (ev.kind == FaultKind::kDrop && ev.probability <= 0.0) {
      return LineError(line_no, "drop needs p=<probability>");
    }
    if (!windowed && ev.node == rdma::kInvalidNode) {
      return LineError(line_no, std::string(FaultKindName(ev.kind)) +
                                    " cannot use node=*");
    }
    if (ev.kind == FaultKind::kRogue && (!has_hook || !has_rogue_kind)) {
      return LineError(line_no, "rogue needs hook= and kind=");
    }
    plan.events.push_back(ev);
  }
  return plan;
}

}  // namespace rdx::fault
