// Deterministic fault injector. Arms a FaultPlan against the simulated
// fabric: timed events (qp_error, crash/reboot) are scheduled on the sim
// clock, windowed behaviors (partition, degrade, drop) and one-shot
// payload corruption are applied from the fabric's FaultHook seam as
// traffic flows. All randomness comes from the plan's seed, so the same
// plan + seed reproduces a bit-identical fault trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fault/plan.h"
#include "rdma/fabric.h"
#include "sim/event_queue.h"
#include "telemetry/span.h"

namespace rdx::fault {

class FaultInjector final : public rdma::FaultHook {
 public:
  FaultInjector(sim::EventQueue& events, rdma::Fabric& fabric)
      : events_(events), fabric_(fabric) {}
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // What "crash" and "reboot" mean for a node is decided above the rdma
  // layer (e.g. wipe a core::Sandbox). Tests and benches wire these in.
  // `on_rogue` likewise: deploying a misbehaving extension is a control
  // plane action, so the injector only fires the callback at the planned
  // time — the rig decides what "rogue" means (InjectExtension of a
  // GenerateRogueProgram, typically).
  struct NodeHooks {
    std::function<void()> on_crash;
    std::function<void()> on_reboot;
    std::function<void(int hook, RogueFaultKind kind)> on_rogue;
  };
  void SetNodeHooks(rdma::NodeId node, NodeHooks hooks);

  // Installs the injector on the fabric and schedules every event of
  // `plan` at its fault time. Call once per simulation run.
  Status Arm(const FaultPlan& plan);

  // rdma::FaultHook implementation (called by the fabric).
  WireFault OnExecute(const rdma::QueuePair& qp, const rdma::SendWr& wr,
                      Bytes* payload) override;
  bool NodeDown(rdma::NodeId node) const override;
  void OnComplete(const rdma::QueuePair& qp, const rdma::SendWr& wr,
                  rdma::WcStatus status) override;

  // Human-readable, deterministic log of every injected fault, in
  // injection order: "t=<ns> <kind> node=<n> ...". Two runs with the same
  // seed and plan produce byte-identical traces.
  const std::vector<std::string>& trace() const { return trace_; }

  // Optional timeline sink: injected faults show up as instant events
  // ("fault:<kind>") on the affected node's pid in the merged trace.
  void SetTracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  std::uint64_t faults_injected() const { return faults_injected_; }
  std::uint64_t completions_failed() const { return completions_failed_; }

 private:
  struct Window {
    FaultKind kind;
    rdma::NodeId node;  // kInvalidNode == every node
    sim::SimTime from;
    sim::SimTime to;
    double factor;       // degrade
    double probability;  // drop
  };

  bool WindowHits(const Window& w, const rdma::QueuePair& qp,
                  sim::SimTime now) const;
  void FireQpError(rdma::NodeId node);
  void FireCrash(rdma::NodeId node, sim::Duration reboot_after);
  void FireReboot(rdma::NodeId node);
  void FireRogue(rdma::NodeId node, int hook, RogueFaultKind kind);
  void Record(std::string line);
  void Instant(const char* kind, rdma::NodeId node, std::string args = "");

  sim::EventQueue& events_;
  rdma::Fabric& fabric_;
  Rng rng_{1};
  bool armed_ = false;

  std::vector<Window> windows_;
  struct PendingCorrupt {
    rdma::NodeId node;
    sim::SimTime at;
    std::uint32_t bytes;
    bool done = false;
  };
  std::vector<PendingCorrupt> corrupts_;
  std::unordered_set<rdma::NodeId> down_;
  std::unordered_map<rdma::NodeId, NodeHooks> node_hooks_;

  std::vector<std::string> trace_;
  telemetry::Tracer* tracer_ = nullptr;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t completions_failed_ = 0;
};

}  // namespace rdx::fault
