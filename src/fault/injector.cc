#include "fault/injector.h"

#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace rdx::fault {

namespace {
// Corruption targets bulk image transfers, not the 8-byte doorbell or
// 40-byte descriptor writes that share the wire with them.
constexpr std::size_t kCorruptMinPayload = 64;
}  // namespace

FaultInjector::~FaultInjector() {
  if (armed_) fabric_.SetFaultHook(nullptr);
}

void FaultInjector::SetNodeHooks(rdma::NodeId node, NodeHooks hooks) {
  node_hooks_[node] = std::move(hooks);
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  if (armed_) return FailedPrecondition("injector already armed");
  armed_ = true;
  rng_ = Rng(plan.seed);
  fabric_.SetFaultHook(this);

  for (const FaultEvent& ev : plan.events) {
    switch (ev.kind) {
      case FaultKind::kQpError:
        events_.ScheduleAt(ev.at, [this, node = ev.node] {
          FireQpError(node);
        });
        break;
      case FaultKind::kCrash:
        events_.ScheduleAt(ev.at,
                           [this, node = ev.node, after = ev.reboot_after] {
                             FireCrash(node, after);
                           });
        break;
      case FaultKind::kPartition:
      case FaultKind::kDegrade:
      case FaultKind::kDrop: {
        windows_.push_back(Window{ev.kind, ev.node, ev.at, ev.at + ev.window,
                                  ev.factor, ev.probability});
        // Begin marker so window faults appear in the trace even when no
        // traffic crosses them.
        events_.ScheduleAt(ev.at, [this, kind = ev.kind, node = ev.node,
                                   window = ev.window] {
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "t=%" PRId64 " %s node=%d begin for=%" PRId64,
                        events_.Now(), FaultKindName(kind),
                        node == rdma::kInvalidNode ? -1
                                                   : static_cast<int>(node),
                        window);
          Record(buf);
        });
        break;
      }
      case FaultKind::kCorrupt:
        corrupts_.push_back(PendingCorrupt{ev.node, ev.at, ev.bytes, false});
        break;
      case FaultKind::kRogue:
        events_.ScheduleAt(ev.at, [this, node = ev.node, hook = ev.hook,
                                   kind = ev.rogue] {
          FireRogue(node, hook, kind);
        });
        break;
    }
  }
  return OkStatus();
}

bool FaultInjector::WindowHits(const Window& w, const rdma::QueuePair& qp,
                               sim::SimTime now) const {
  if (now < w.from || now >= w.to) return false;
  return w.node == rdma::kInvalidNode || w.node == qp.node() ||
         w.node == qp.remote_node();
}

rdma::FaultHook::WireFault FaultInjector::OnExecute(const rdma::QueuePair& qp,
                                                    const rdma::SendWr& wr,
                                                    Bytes* payload) {
  const sim::SimTime now = events_.Now();
  WireFault fault;

  // One-shot corruption of the next bulk WRITE headed for the node.
  for (PendingCorrupt& c : corrupts_) {
    if (c.done || now < c.at || qp.remote_node() != c.node) continue;
    if (wr.opcode != rdma::Opcode::kWrite ||
        payload->size() < kCorruptMinPayload) {
      continue;
    }
    c.done = true;
    {
      char abuf[64];
      std::snprintf(abuf, sizeof(abuf), "\"bytes\": %u", c.bytes);
      Instant("corrupt", c.node, abuf);
    }
    // Flip bytes in the front half of the payload: for deploy transfers
    // that is image data (the trailing descriptor would also be caught,
    // but the MAC-over-image path is the claim under test).
    for (std::uint32_t i = 0; i < c.bytes; ++i) {
      const std::size_t pos = rng_.NextBounded(payload->size() / 2);
      (*payload)[pos] ^= static_cast<std::uint8_t>(1 + rng_.NextBounded(255));
    }
    ++faults_injected_;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "t=%" PRId64 " corrupt node=%u wr=%" PRIu64
                  " bytes=%u len=%zu",
                  now, c.node, wr.wr_id, c.bytes, payload->size());
    Record(buf);
  }

  for (const Window& w : windows_) {
    if (!WindowHits(w, qp, now)) continue;
    switch (w.kind) {
      case FaultKind::kPartition:
        fault.drop = true;
        break;
      case FaultKind::kDrop:
        if (rng_.NextBool(w.probability)) fault.drop = true;
        break;
      case FaultKind::kDegrade: {
        // Scales the loaded request leg only (header + outbound payload;
        // READ requests carry no payload so they degrade by header cost
        // alone). See the serialization-charging convention in
        // sim/network.h: each leg is charged once, where the bytes move.
        const std::size_t bytes = 64 + payload->size();
        fault.extra_latency += static_cast<sim::Duration>(
            (w.factor - 1.0) *
            static_cast<double>(fabric_.link().OneWay(bytes)));
        break;
      }
      default:
        break;
    }
  }

  if (fault.drop) {
    ++faults_injected_;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "t=%" PRId64 " drop qp=%u wr=%" PRIu64 " dst=%u", now,
                  qp.num(), wr.wr_id, qp.remote_node());
    Record(buf);
    char abuf[64];
    std::snprintf(abuf, sizeof(abuf), "\"qp\": %u, \"wr\": %" PRIu64,
                  qp.num(), wr.wr_id);
    Instant("drop", qp.remote_node(), abuf);
  }
  return fault;
}

bool FaultInjector::NodeDown(rdma::NodeId node) const {
  return down_.count(node) != 0;
}

void FaultInjector::OnComplete(const rdma::QueuePair& qp,
                               const rdma::SendWr& wr,
                               rdma::WcStatus status) {
  (void)qp;
  (void)wr;
  if (status != rdma::WcStatus::kSuccess) ++completions_failed_;
}

void FaultInjector::FireQpError(rdma::NodeId node) {
  int errored = 0;
  for (rdma::QueuePair* qp : fabric_.QpsTouching(node)) {
    if (qp->state() == rdma::QpState::kRts) {
      qp->SetError();
      ++errored;
    }
  }
  ++faults_injected_;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%" PRId64 " qp_error node=%u qps=%d",
                events_.Now(), node, errored);
  Record(buf);
  char abuf[32];
  std::snprintf(abuf, sizeof(abuf), "\"qps\": %d", errored);
  Instant("qp_error", node, abuf);
}

void FaultInjector::FireCrash(rdma::NodeId node, sim::Duration reboot_after) {
  down_.insert(node);
  // Crashing kills the node's RNIC too: every established connection
  // touching it breaks.
  int errored = 0;
  for (rdma::QueuePair* qp : fabric_.QpsTouching(node)) {
    if (qp->state() == rdma::QpState::kRts) {
      qp->SetError();
      ++errored;
    }
  }
  auto it = node_hooks_.find(node);
  if (it != node_hooks_.end() && it->second.on_crash) it->second.on_crash();
  ++faults_injected_;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "t=%" PRId64 " crash node=%u qps=%d reboot_after=%" PRId64,
                events_.Now(), node, errored, reboot_after);
  Record(buf);
  Instant("crash", node);
  if (reboot_after > 0) {
    events_.ScheduleAfter(reboot_after, [this, node] { FireReboot(node); });
  }
}

void FaultInjector::FireReboot(rdma::NodeId node) {
  down_.erase(node);
  auto it = node_hooks_.find(node);
  if (it != node_hooks_.end() && it->second.on_reboot) it->second.on_reboot();
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%" PRId64 " reboot node=%u",
                events_.Now(), node);
  Record(buf);
  Instant("reboot", node);
}

void FaultInjector::FireRogue(rdma::NodeId node, int hook,
                              RogueFaultKind kind) {
  ++faults_injected_;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "t=%" PRId64 " rogue node=%u hook=%d kind=%s",
                events_.Now(), node, hook, RogueFaultKindName(kind));
  Record(buf);
  char abuf[64];
  std::snprintf(abuf, sizeof(abuf), "\"hook\": %d, \"kind\": \"%s\"", hook,
                RogueFaultKindName(kind));
  Instant("rogue", node, abuf);
  auto it = node_hooks_.find(node);
  if (it != node_hooks_.end() && it->second.on_rogue) {
    it->second.on_rogue(hook, kind);
  }
}

void FaultInjector::Record(std::string line) {
  RDX_DEBUG("fault: %s", line.c_str());
  trace_.push_back(std::move(line));
}

void FaultInjector::Instant(const char* kind, rdma::NodeId node,
                            std::string args) {
  if (tracer_ == nullptr) return;
  tracer_->AddInstant(std::string("fault:") + kind,
                      node == rdma::kInvalidNode
                          ? 0u
                          : static_cast<std::uint32_t>(node),
                      /*tid=*/0, std::move(args));
}

}  // namespace rdx::fault
