#include "common/log.h"

#include <cstdarg>

namespace rdx {

namespace {
LogLevel g_level = LogLevel::kError;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

std::string FormatLog(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace internal
}  // namespace rdx
