// Deterministic pseudo-random number generation. Every stochastic element
// of the simulation (workload arrivals, cache accesses, key popularity)
// draws from an explicitly-seeded Rng so that experiments reproduce
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <cmath>

namespace rdx {

// splitmix64 + xoshiro256** — small, fast, and well understood. Not for
// cryptographic use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding to decorrelate nearby seeds.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for simulation bounds << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed value with the given mean (for Poisson
  // arrival processes in the open-loop workload generators).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Zipf-like popularity rank in [0, n) with skew s (s=0 is uniform).
  // Uses the inverse-CDF approximation, adequate for workload skew.
  std::uint64_t NextZipf(std::uint64_t n, double s) {
    if (s <= 0.0 || n <= 1) return NextBounded(n);
    const double u = NextDouble();
    const double exp = 1.0 - s;
    // Inverse of the continuous Zipf CDF on [1, n].
    const double x =
        std::pow(u * (std::pow(static_cast<double>(n), exp) - 1.0) + 1.0,
                 1.0 / exp);
    std::uint64_t r = static_cast<std::uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace rdx
