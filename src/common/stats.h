// Statistics collection used by the benchmark harnesses: streaming
// summary statistics and a log-bucketed latency histogram with percentile
// queries (HdrHistogram-style, coarse).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdx {

// Streaming mean/min/max/variance (Welford).
class Summary {
 public:
  void Add(double x);
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  // JSON object, e.g. {"count": 3, "mean": 1.5, "min": 1.0, "max": 2.0,
  // "stddev": 0.5} — consumed by the metrics registry snapshot.
  std::string ToJson() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-linear histogram over non-negative integer samples (e.g. latencies
// in nanoseconds). Each power-of-two range is split into 16 linear
// sub-buckets, giving <= ~6% relative quantile error — plenty for
// reproducing figure shapes.
class Histogram {
 public:
  Histogram();

  void Add(std::uint64_t value);
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  // q in [0, 1]; returns a representative value of the bucket containing
  // the q-quantile sample.
  std::uint64_t Percentile(double q) const;

  // "count=… mean=… p50=… p99=… max=…" for harness output.
  std::string DebugString() const;

  // JSON object with count/mean/min/p50/p90/p99/max — consumed by the
  // metrics registry snapshot.
  std::string ToJson() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave
  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketMidpoint(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace rdx
