// Lightweight Status / StatusOr error-handling vocabulary for the RDX
// codebase. Modeled after absl::Status but self-contained: every fallible
// operation in the library returns Status or StatusOr<T> instead of
// throwing, so that simulated data-plane paths stay allocation- and
// exception-free.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rdx {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  // A remote sandbox's extension scratchpad bump allocator is out of
  // space. Deterministic for a given sandbox state — callers must not
  // retry (see core/reliability).
  kScratchExhausted,
  kUnavailable,
  kPermissionDenied,
  kAborted,
  kInternal,
  kUnimplemented,
};

// Human-readable name of a status code (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor. The OK status carries no message and
// never allocates.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgument(std::string_view msg);
Status NotFound(std::string_view msg);
Status AlreadyExists(std::string_view msg);
Status FailedPrecondition(std::string_view msg);
Status OutOfRange(std::string_view msg);
Status ResourceExhausted(std::string_view msg);
Status ScratchExhausted(std::string_view msg);
Status Unavailable(std::string_view msg);
Status PermissionDenied(std::string_view msg);
Status Aborted(std::string_view msg);
Status Internal(std::string_view msg);
Status Unimplemented(std::string_view msg);

// Either a T or a non-OK Status. Accessing the value of an errored
// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Early-return helpers in the style of absl. `RDX_RETURN_IF_ERROR(expr)`
// propagates a non-OK Status; `RDX_ASSIGN_OR_RETURN(lhs, expr)` unwraps a
// StatusOr or propagates its status.
#define RDX_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rdx::Status rdx_status_tmp_ = (expr);      \
    if (!rdx_status_tmp_.ok()) return rdx_status_tmp_; \
  } while (0)

#define RDX_CONCAT_INNER_(a, b) a##b
#define RDX_CONCAT_(a, b) RDX_CONCAT_INNER_(a, b)

#define RDX_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto RDX_CONCAT_(rdx_statusor_, __LINE__) = (expr);                    \
  if (!RDX_CONCAT_(rdx_statusor_, __LINE__).ok())                        \
    return RDX_CONCAT_(rdx_statusor_, __LINE__).status();                \
  lhs = std::move(RDX_CONCAT_(rdx_statusor_, __LINE__)).value()

}  // namespace rdx
