#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace rdx {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::ToJson() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"mean\": %.6g, \"min\": %.6g, "
                "\"max\": %.6g, \"stddev\": %.6g}",
                static_cast<unsigned long long>(count_), mean(), min(),
                max(), stddev());
  return buf;
}

Histogram::Histogram() : buckets_(64 << kSubBucketBits, 0) {}

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const std::uint64_t sub = (value >> shift) & ((1u << kSubBucketBits) - 1);
  return static_cast<std::size_t>(
      ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub);
}

std::uint64_t Histogram::BucketMidpoint(std::size_t index) {
  if (index < (1u << kSubBucketBits)) return index;
  const std::size_t octave = (index >> kSubBucketBits);
  const std::uint64_t sub = index & ((1u << kSubBucketBits) - 1);
  const int shift = static_cast<int>(octave) - 1;
  const std::uint64_t base =
      ((1ull << kSubBucketBits) + sub) << shift;
  const std::uint64_t width = 1ull << shift;
  return base + width / 2;
}

void Histogram::Add(std::uint64_t value) {
  if (count_ == 0) {
    min_ = value;
  } else {
    min_ = std::min(min_, value);
  }
  max_ = std::max(max_, value);
  ++count_;
  sum_ += static_cast<double>(value);
  std::size_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
  } else {
    min_ = std::min(min_, other.min_);
  }
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::DebugString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.90)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

std::string Histogram::ToJson() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\": %llu, \"mean\": %.3f, \"min\": %llu, \"p50\": %llu, "
      "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}",
      static_cast<unsigned long long>(count_), mean(),
      static_cast<unsigned long long>(min()),
      static_cast<unsigned long long>(Percentile(0.50)),
      static_cast<unsigned long long>(Percentile(0.90)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace rdx
