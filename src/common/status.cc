#include "common/status.h"

namespace rdx {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kScratchExhausted: return "SCRATCH_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace {
Status Make(StatusCode code, std::string_view msg) {
  return Status(code, std::string(msg));
}
}  // namespace

Status InvalidArgument(std::string_view msg) {
  return Make(StatusCode::kInvalidArgument, msg);
}
Status NotFound(std::string_view msg) {
  return Make(StatusCode::kNotFound, msg);
}
Status AlreadyExists(std::string_view msg) {
  return Make(StatusCode::kAlreadyExists, msg);
}
Status FailedPrecondition(std::string_view msg) {
  return Make(StatusCode::kFailedPrecondition, msg);
}
Status OutOfRange(std::string_view msg) {
  return Make(StatusCode::kOutOfRange, msg);
}
Status ResourceExhausted(std::string_view msg) {
  return Make(StatusCode::kResourceExhausted, msg);
}
Status ScratchExhausted(std::string_view msg) {
  return Make(StatusCode::kScratchExhausted, msg);
}
Status Unavailable(std::string_view msg) {
  return Make(StatusCode::kUnavailable, msg);
}
Status PermissionDenied(std::string_view msg) {
  return Make(StatusCode::kPermissionDenied, msg);
}
Status Aborted(std::string_view msg) { return Make(StatusCode::kAborted, msg); }
Status Internal(std::string_view msg) {
  return Make(StatusCode::kInternal, msg);
}
Status Unimplemented(std::string_view msg) {
  return Make(StatusCode::kUnimplemented, msg);
}

}  // namespace rdx
