#include "common/bytes.h"

namespace rdx {

std::uint64_t Fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ToHex(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace rdx
