// Minimal leveled logger. Off by default so benchmark output stays clean;
// tests and examples can raise the level. Not thread-safe by design — the
// simulation is single-threaded (see DESIGN.md, "virtual time").
#pragma once

#include <cstdio>
#include <string>

namespace rdx {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

// Global log threshold. Messages at a level above the threshold are
// discarded before formatting.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
std::string FormatLog(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace internal

#define RDX_LOG(level, ...)                                             \
  do {                                                                  \
    if (static_cast<int>(level) <= static_cast<int>(::rdx::GetLogLevel())) \
      ::rdx::internal::LogMessage(level, __FILE__, __LINE__,            \
                                  ::rdx::internal::FormatLog(__VA_ARGS__)); \
  } while (0)

#define RDX_ERROR(...) RDX_LOG(::rdx::LogLevel::kError, __VA_ARGS__)
#define RDX_WARN(...) RDX_LOG(::rdx::LogLevel::kWarn, __VA_ARGS__)
#define RDX_INFO(...) RDX_LOG(::rdx::LogLevel::kInfo, __VA_ARGS__)
#define RDX_DEBUG(...) RDX_LOG(::rdx::LogLevel::kDebug, __VA_ARGS__)

}  // namespace rdx
