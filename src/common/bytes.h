// Byte-level helpers shared by the RDMA fabric, the eBPF encoder, and the
// binary-image formats: little-endian load/store, hex rendering, and a
// FNV-1a checksum used to tag deployed extension images.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace rdx {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// Unaligned little-endian accessors. All wire/image formats in this
// library are little-endian regardless of host order.
template <typename T>
inline T LoadLE(const std::uint8_t* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
inline void StoreLE(std::uint8_t* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &v, sizeof(T));
}

// Appends the little-endian representation of `v` to `out`.
template <typename T>
inline void AppendLE(Bytes& out, T v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof(T));
  StoreLE(out.data() + off, v);
}

// 64-bit FNV-1a. Used to fingerprint extension binaries for the control
// plane's compile cache and integrity checks.
std::uint64_t Fnv1a64(ByteSpan data);

// Lowercase hex rendering, e.g. {0xde, 0xad} -> "dead".
std::string ToHex(ByteSpan data);

}  // namespace rdx
