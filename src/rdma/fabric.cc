#include "rdma/fabric.h"

#include <algorithm>

#include "common/log.h"

namespace rdx::rdma {

const char* WcStatusName(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kLocalProtectionError: return "LOCAL_PROTECTION_ERROR";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRemoteInvalidRequest: return "REMOTE_INVALID_REQUEST";
    case WcStatus::kWorkRequestFlushed: return "WORK_REQUEST_FLUSHED";
    case WcStatus::kRetryExceeded: return "RETRY_EXCEEDED";
  }
  return "UNKNOWN";
}

Status QueuePair::PostSend(const SendWr& wr) {
  if (state_ == QpState::kError) {
    // Flushed immediately, as a real RC QP would.
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.status = WcStatus::kWorkRequestFlushed;
    wc.opcode = wr.opcode;
    wc.qp_num = num_;
    send_cq_.Push(wc);
    return FailedPrecondition("QP in error state");
  }
  if (state_ != QpState::kRts) {
    return FailedPrecondition("QP not ready to send");
  }
  if (wr.send_inline &&
      (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kSend) &&
      wr.local.length > fabric_.link().max_inline_data) {
    return InvalidArgument("inline payload exceeds max_inline_data");
  }
  fabric_.Execute(*this, wr);
  return OkStatus();
}

Status QueuePair::PostSendChain(const std::vector<SendWr>& wrs) {
  if (state_ == QpState::kError) {
    for (const SendWr& wr : wrs) {
      WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.status = WcStatus::kWorkRequestFlushed;
      wc.opcode = wr.opcode;
      wc.qp_num = num_;
      send_cq_.Push(wc);
    }
    return FailedPrecondition("QP in error state");
  }
  if (state_ != QpState::kRts) {
    return FailedPrecondition("QP not ready to send");
  }
  if (wrs.empty()) return OkStatus();
  for (const SendWr& wr : wrs) {
    if (wr.send_inline &&
        (wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kSend) &&
        wr.local.length > fabric_.link().max_inline_data) {
      return InvalidArgument("inline payload exceeds max_inline_data");
    }
  }
  if (signal_period_ <= 1) {
    fabric_.ExecuteChain(*this, wrs);
    return OkStatus();
  }
  // Selective signaling: within the chain, WRITEs signal only every
  // `signal_period_`-th WR. Data-returning ops (READ/atomics) and SENDs
  // keep their caller-set flag — their consumers need the completion.
  // The tail is always signaled so the poster can learn the chain
  // retired; failed WRs signal regardless of the flag (see Complete).
  std::vector<SendWr> rewritten = wrs;
  for (std::size_t i = 0; i + 1 < rewritten.size(); ++i) {
    SendWr& wr = rewritten[i];
    if (wr.opcode != Opcode::kWrite) continue;
    if (++unsignaled_run_ >= signal_period_) {
      wr.signaled = true;
      unsignaled_run_ = 0;
    } else {
      wr.signaled = false;
    }
  }
  rewritten.back().signaled = true;
  unsignaled_run_ = 0;
  fabric_.ExecuteChain(*this, rewritten);
  return OkStatus();
}

Status QueuePair::PostRecv(const RecvWr& wr) {
  if (state_ == QpState::kError) {
    return FailedPrecondition("QP in error state");
  }
  recv_queue_.push_back(wr);
  return OkStatus();
}

Node& Fabric::AddNode(std::string name, std::uint64_t memory_bytes) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name), memory_bytes));
  Node& n = *nodes_.back();
  // Deregistering an MR shoots down any cached translation of its keys
  // (the RNIC must not honor a stale MTT entry after dereg).
  n.memory_.SetDeregisterHook([this, id](MemoryKey lkey, MemoryKey rkey) {
    InvalidateMtt(id, lkey);
    InvalidateMtt(id, rkey);
  });
  return n;
}

void Fabric::InvalidateMtt(NodeId node, MemoryKey key) {
  // Both lkey and rkey translations of a node's memory live in the caches
  // of QPs hosted on that node (requester role caches lkeys, responder
  // role caches rkeys).
  for (auto& qp : nodes_.at(node)->qps_) {
    auto it = qp_mtt_.find(qp->num());
    if (it != qp_mtt_.end()) it->second.Invalidate(key);
  }
}

MttCache& Fabric::MttFor(QpNum num) {
  auto it = qp_mtt_.find(num);
  if (it == qp_mtt_.end()) {
    it = qp_mtt_.emplace(num, MttCache(link_.mtt_cache_entries)).first;
  }
  return it->second;
}

std::uint64_t Fabric::mtt_hits() const {
  std::uint64_t total = 0;
  for (const auto& [num, cache] : qp_mtt_) total += cache.hits();
  return total;
}

std::uint64_t Fabric::mtt_misses() const {
  std::uint64_t total = 0;
  for (const auto& [num, cache] : qp_mtt_) total += cache.misses();
  return total;
}

std::uint64_t Fabric::mtt_invalidations() const {
  std::uint64_t total = 0;
  for (const auto& [num, cache] : qp_mtt_) total += cache.invalidations();
  return total;
}

CompletionQueue& Fabric::CreateCq(NodeId node, std::uint32_t capacity) {
  auto& n = *nodes_.at(node);
  n.cqs_.push_back(std::make_unique<CompletionQueue>(capacity));
  return *n.cqs_.back();
}

QueuePair& Fabric::CreateQp(NodeId node, CompletionQueue& send_cq,
                            CompletionQueue& recv_cq) {
  auto& n = *nodes_.at(node);
  n.qps_.push_back(std::make_unique<QueuePair>(*this, node, next_qp_num_++,
                                               send_cq, recv_cq));
  return *n.qps_.back();
}

Status Fabric::Connect(QueuePair& a, QueuePair& b) {
  if (a.state() != QpState::kInit || b.state() != QpState::kInit) {
    return FailedPrecondition("QP already connected");
  }
  a.SetConnected(b.node(), b.num());
  b.SetConnected(a.node(), a.num());
  return OkStatus();
}

std::vector<QueuePair*> Fabric::QpsTouching(NodeId node) {
  std::vector<QueuePair*> out;
  for (auto& n : nodes_) {
    for (auto& qp : n->qps_) {
      if (qp->node() == node || qp->remote_node() == node) {
        out.push_back(qp.get());
      }
    }
  }
  return out;
}

namespace {
// Wire sizes: one-sided WRITE/SEND carry the payload outbound; READ
// carries the payload on the response; atomics are header-sized.
constexpr std::size_t kHeaderBytes = 64;

std::size_t OutboundBytes(const SendWr& wr) {
  switch (wr.opcode) {
    case Opcode::kWrite:
    case Opcode::kSend:
      return kHeaderBytes + wr.local.length;
    default:
      return kHeaderBytes;
  }
}

std::size_t ResponseBytes(const SendWr& wr) {
  switch (wr.opcode) {
    case Opcode::kRead:
      return kHeaderBytes + wr.local.length;
    case Opcode::kCompareSwap:
    case Opcode::kFetchAdd:
      return kHeaderBytes + 8;
    default:
      return kHeaderBytes;  // ACK
  }
}

// How long the requester NIC keeps retransmitting before it gives up and
// reports RETRY_EXCEEDED (≈ retry_cnt × local ACK timeout on real HCAs).
constexpr sim::Duration kRetryExceededDelay = sim::Micros(30);
}  // namespace

void Fabric::Execute(QueuePair& qp, const SendWr& wr) {
  ++doorbells_rung_;
  QpTiming& timing = qp_timing_[qp.num()];
  const sim::SimTime ready =
      std::max(events_.Now(), timing.nic_free) + link_.doorbell_latency +
      link_.wqe_fetch_latency;
  // ExecuteOne advances timing.nic_free past `ready` by the per-WQE
  // processing costs (MTT lookup, payload DMA fetch).
  ExecuteOne(qp, wr, ready);
}

void Fabric::ExecuteChain(QueuePair& qp, const std::vector<SendWr>& wrs) {
  ++doorbells_rung_;
  chained_wrs_ += wrs.size();
  QpTiming& timing = qp_timing_[qp.num()];
  // One doorbell for the whole chain, then the NIC walks the linked
  // list: a descriptor fetch per WQE before it can be serialized, and
  // WQE i+1's processing cannot start before WQE i's finished (single
  // per-QP processing pipeline, tracked by nic_free).
  const sim::SimTime base =
      std::max(events_.Now(), timing.nic_free) + link_.doorbell_latency;
  for (std::size_t i = 0; i < wrs.size(); ++i) {
    const sim::SimTime fetched = base + static_cast<sim::Duration>(i + 1) *
                                            link_.wqe_fetch_latency;
    const sim::SimTime ready = std::max(fetched, timing.nic_free);
    ExecuteOne(qp, wrs[i], ready);
  }
}

void Fabric::ExecuteOne(QueuePair& qp, const SendWr& wr,
                        sim::SimTime nic_ready) {
  // Local gather validation happens at post time. Inline payloads are
  // copied into the WQE by the CPU (no MR lookup, only bounds apply);
  // everything else is gathered by the RNIC via DMA against the lkey.
  Node& local = *nodes_.at(qp.node());
  OpOutcome preflight;

  const bool is_payload_op =
      wr.opcode == Opcode::kWrite || wr.opcode == Opcode::kSend;
  const bool is_inline = wr.send_inline && is_payload_op &&
                         wr.local.length <= link_.max_inline_data;

  Bytes payload;
  if (is_payload_op) {
    payload.resize(wr.local.length);
    Status s = is_inline
                   ? local.memory().Read(wr.local.addr, payload)
                   : local.memory().DmaRead(wr.local.lkey, /*remote=*/false,
                                            wr.local.addr, payload);
    if (!s.ok()) {
      preflight.status = WcStatus::kLocalProtectionError;
      Complete(qp, wr, preflight, events_.Now());
      return;
    }
  }

  // Fault hook: the injector may lose the packet, stretch the wire, or
  // flip payload bytes before the NIC serializes them.
  FaultHook::WireFault fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->OnExecute(qp, wr, &payload);
  }

  // Timing: the sender NIC serializes the payload onto the wire
  // (store-and-forward), the remote effect applies after propagation, and
  // RC ordering clamps both arrival and completion to post order.
  QpTiming& timing = qp_timing_[qp.num()];
  const sim::SimTime now = events_.Now();
  // The WQE is NIC-visible at `nic_ready` (doorbell ring + descriptor
  // fetches, chain-amortized by the caller); per-WQE processing then
  // adds the local MTT translation and, for non-inline payloads, the
  // payload DMA fetch from host memory. Inline payloads skip both — the
  // data already rode the descriptor.
  sim::Duration nic_extra = 0;
  if (is_inline) {
    ++inline_wrs_;
    ++qp_stats_[qp.num()].inline_wrs;
  } else if (wr.local.length > 0) {
    nic_extra += MttFor(qp.num()).Lookup(wr.local.lkey)
                     ? link_.mtt_hit_latency
                     : link_.mtt_miss_latency;
    if (is_payload_op) nic_extra += link_.payload_fetch_latency;
  }
  const sim::SimTime ready = nic_ready + nic_extra;
  timing.nic_free = std::max(timing.nic_free, ready);

  if (fault.drop) {
    // Lost on the wire: retransmits burn down the retry budget, then the
    // requester reports RETRY_EXCEEDED. Completion order still holds,
    // and the error CQE pays its write-back like any other.
    const sim::SimTime completion =
        std::max(ready + kRetryExceededDelay, timing.last_completion) +
        link_.cqe_write_latency;
    timing.last_completion = completion;
    events_.ScheduleAt(completion, [this, &qp, wr, now]() {
      OpOutcome dropped;
      dropped.status = qp.state() == QpState::kError
                           ? WcStatus::kWorkRequestFlushed
                           : WcStatus::kRetryExceeded;
      Complete(qp, wr, dropped, now);
    });
    return;
  }

  const sim::SimTime tx_start = std::max(ready, timing.wire_free);
  const double tx_ns =
      static_cast<double>(OutboundBytes(wr)) / link_.bytes_per_ns;
  timing.wire_free = tx_start + static_cast<sim::Duration>(tx_ns);
  // The responder NIC resolves the rkey before applying the op: its own
  // MTT cache (the remote end of this connection), hit or miss.
  sim::Duration remote_lookup = 0;
  if (wr.opcode != Opcode::kSend) {
    remote_lookup = MttFor(qp.remote_qp()).Lookup(wr.rkey)
                        ? link_.mtt_hit_latency
                        : link_.mtt_miss_latency;
  }
  sim::SimTime arrival = timing.wire_free + link_.base_latency +
                         fault.extra_latency + remote_lookup;
  arrival = std::max(arrival, timing.last_arrival);
  timing.last_arrival = arrival;
  const sim::Duration response = link_.OneWay(ResponseBytes(wr));

  // Remote effect applies at `arrival`; requester completion after the
  // response flight. Capture payload by value: the local buffer may be
  // reused by the caller after PostSend returns (RNIC semantics would
  // forbid that, but the copy makes the simulation robust).
  events_.ScheduleAt(arrival, [this, &qp, wr, now,
                               payload = std::move(payload),
                               response]() mutable {
    if (qp.state() == QpState::kError) {
      // The QP failed while this WR was in flight: it is flushed, and the
      // requester still gets a completion for it — after the completion
      // of whatever WR killed the QP (RC completion order).
      QpTiming& t = qp_timing_[qp.num()];
      const sim::SimTime flush_at =
          std::max(events_.Now(), t.last_completion) +
          link_.cqe_write_latency;
      t.last_completion = flush_at;
      events_.ScheduleAt(flush_at, [this, &qp, wr, now]() {
        OpOutcome flushed;
        flushed.status = WcStatus::kWorkRequestFlushed;
        Complete(qp, wr, flushed, now);
      });
      return;
    }
    SendWr wr_copy = wr;
    OpOutcome outcome;
    if (fault_hook_ != nullptr && fault_hook_->NodeDown(qp.remote_node())) {
      // Dead peer: no ACK ever comes back.
      outcome.status = WcStatus::kRetryExceeded;
    } else {
      outcome = ApplyRemote(qp, wr, payload);
    }
    if (outcome.status != WcStatus::kSuccess) {
      // The responder NAKs (or the retry budget burns out) at this point
      // in the packet stream: the QP stops here, so WRs still in flight
      // behind this one are flushed at their arrival, not executed. The
      // failed WR's own completion is still delivered with its status.
      qp.SetError();
    }
    ++ops_executed_;
    QpTiming& t = qp_timing_[qp.num()];
    // Unsignaled successes retire without a CQE write-back; signaled WRs
    // and failures (which always produce an error CQE) pay for theirs.
    const bool writes_cqe =
        wr_copy.signaled || outcome.status != WcStatus::kSuccess;
    sim::SimTime completion =
        std::max(events_.Now() + response, t.last_completion) +
        (writes_cqe ? link_.cqe_write_latency : sim::Duration{0});
    t.last_completion = completion;
    events_.ScheduleAt(completion, [this, &qp, wr_copy, outcome, now]() {
      Complete(qp, wr_copy, outcome, now);
    });
  });
}

Fabric::OpOutcome Fabric::ApplyRemote(QueuePair& qp, const SendWr& wr,
                                      const Bytes& payload) {
  OpOutcome outcome;
  Node& remote = *nodes_.at(qp.remote_node());
  switch (wr.opcode) {
    case Opcode::kWrite: {
      Status s = remote.memory().DmaWrite(wr.rkey, /*remote=*/true,
                                          wr.remote_addr, payload);
      outcome.status =
          s.ok() ? WcStatus::kSuccess : WcStatus::kRemoteAccessError;
      outcome.byte_len = wr.local.length;
      if (s.ok()) bytes_written_ += wr.local.length;
      break;
    }
    case Opcode::kRead: {
      outcome.read_payload.resize(wr.local.length);
      Status s = remote.memory().DmaRead(wr.rkey, /*remote=*/true,
                                         wr.remote_addr,
                                         outcome.read_payload);
      outcome.status =
          s.ok() ? WcStatus::kSuccess : WcStatus::kRemoteAccessError;
      outcome.byte_len = wr.local.length;
      break;
    }
    case Opcode::kSend: {
      QueuePair* remote_qp = nullptr;
      for (auto& q : remote.qps_) {
        if (q->num() == qp.remote_qp()) remote_qp = q.get();
      }
      RecvWr recv;
      if (remote_qp == nullptr || !remote_qp->PopRecv(recv)) {
        // Receiver-not-ready with retries exhausted.
        outcome.status = WcStatus::kRetryExceeded;
        break;
      }
      if (payload.size() > recv.local.length) {
        outcome.status = WcStatus::kRemoteInvalidRequest;
        break;
      }
      Status s = remote.memory().DmaWrite(recv.local.lkey, /*remote=*/false,
                                          recv.local.addr, payload);
      outcome.status =
          s.ok() ? WcStatus::kSuccess : WcStatus::kRemoteAccessError;
      outcome.byte_len = static_cast<std::uint32_t>(payload.size());
      if (s.ok()) {
        outcome.recv_consumed = true;
        outcome.recv_wr_id = recv.wr_id;
        WorkCompletion rwc;
        rwc.wr_id = recv.wr_id;
        rwc.status = WcStatus::kSuccess;
        rwc.opcode = Opcode::kSend;
        rwc.byte_len = outcome.byte_len;
        rwc.qp_num = remote_qp->num();
        rwc.completed_at = events_.Now();
        remote_qp->recv_cq().Push(rwc);
      }
      break;
    }
    case Opcode::kCompareSwap: {
      auto r = remote.memory().DmaCompareSwap(wr.rkey, wr.remote_addr,
                                              wr.compare_add, wr.swap);
      if (r.ok()) {
        outcome.atomic_original = r.value();
        outcome.byte_len = 8;
      } else {
        outcome.status = WcStatus::kRemoteInvalidRequest;
      }
      break;
    }
    case Opcode::kFetchAdd: {
      auto r = remote.memory().DmaFetchAdd(wr.rkey, wr.remote_addr,
                                           wr.compare_add);
      if (r.ok()) {
        outcome.atomic_original = r.value();
        outcome.byte_len = 8;
      } else {
        outcome.status = WcStatus::kRemoteInvalidRequest;
      }
      break;
    }
  }
  return outcome;
}

void Fabric::Complete(QueuePair& qp, const SendWr& wr,
                      const OpOutcome& outcome, sim::SimTime posted_at) {
  Node& local = *nodes_.at(qp.node());
  WcStatus status = outcome.status;

  // Scatter READ/atomic results into the local buffer.
  if (status == WcStatus::kSuccess && wr.opcode == Opcode::kRead) {
    Status s = local.memory().DmaWrite(wr.local.lkey, /*remote=*/false,
                                       wr.local.addr, outcome.read_payload);
    if (!s.ok()) status = WcStatus::kLocalProtectionError;
  }
  if (status == WcStatus::kSuccess && (wr.opcode == Opcode::kCompareSwap ||
                                       wr.opcode == Opcode::kFetchAdd)) {
    std::uint8_t buf[8];
    StoreLE(buf, outcome.atomic_original);
    Status s = local.memory().DmaWrite(wr.local.lkey, /*remote=*/false,
                                       wr.local.addr, buf);
    if (!s.ok()) status = WcStatus::kLocalProtectionError;
  }

  if (status != WcStatus::kSuccess) {
    RDX_DEBUG("QP %u op %d failed: %s", qp.num(),
              static_cast<int>(wr.opcode), WcStatusName(status));
    qp.SetError();
  }

  QpStats& stats = qp_stats_[qp.num()];
  ++stats.ops;
  ++stats.ops_by_opcode[static_cast<int>(wr.opcode)];
  stats.latency_ns.Add(static_cast<std::uint64_t>(events_.Now() - posted_at));
  if (status != WcStatus::kSuccess) {
    ++stats.failures;
  } else {
    switch (wr.opcode) {
      case Opcode::kWrite:
      case Opcode::kSend:
        stats.bytes_out += outcome.byte_len;
        break;
      case Opcode::kRead:
      case Opcode::kCompareSwap:
      case Opcode::kFetchAdd:
        stats.bytes_in += outcome.byte_len;
        break;
    }
  }

  if (fault_hook_ != nullptr) fault_hook_->OnComplete(qp, wr, status);

  // Verbs error semantics: failures ALWAYS produce an error completion,
  // in order, even for unsignaled WRs — only unsignaled *successes* are
  // coalesced into the next delivered entry (implied by RC ordering).
  if (wr.signaled || status != WcStatus::kSuccess) {
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.status = status;
    wc.opcode = wr.opcode;
    wc.byte_len = outcome.byte_len;
    wc.qp_num = qp.num();
    wc.completed_at = events_.Now();
    wc.atomic_original = outcome.atomic_original;
    qp.send_cq().Push(wc);
  } else {
    ++unsignaled_wrs_;
    ++stats.unsignaled;
    ++coalesced_completions_;
    qp.send_cq().NoteCoalesced();
  }
}

}  // namespace rdx::rdma
