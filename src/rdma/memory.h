// A node's physical memory plus the RNIC's memory-translation table
// (registered memory regions keyed by lkey/rkey). Registration is the
// security boundary of RDMA: every DMA — local gather or remote
// scatter — is bounds- and permission-checked against a region here,
// exactly as an RNIC's MTT/MPT would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"

#include "rdma/types.h"

namespace rdx::rdma {

struct MemoryRegion {
  MemoryKey lkey = 0;
  MemoryKey rkey = 0;
  std::uint64_t addr = 0;   // start virtual address
  std::uint64_t length = 0;
  std::uint32_t access = 0;  // AccessFlags bitmask
};

class HostMemory {
 public:
  // `capacity` bytes of DRAM, addressed [base_addr, base_addr+capacity).
  // A nonzero base makes address-vs-offset confusion bugs loud.
  explicit HostMemory(std::uint64_t capacity,
                      std::uint64_t base_addr = 0x10000);

  std::uint64_t base() const { return base_; }
  std::uint64_t capacity() const { return capacity_; }

  // Bump-allocates an aligned buffer; returns its virtual address.
  StatusOr<std::uint64_t> Allocate(std::uint64_t size,
                                   std::uint64_t align = 8);

  // Registers [addr, addr+length) with the RNIC. Returns the region; its
  // keys are unique per HostMemory.
  StatusOr<MemoryRegion> Register(std::uint64_t addr, std::uint64_t length,
                                  std::uint32_t access);
  Status Deregister(MemoryKey lkey);

  // Invoked on successful Deregister with the region's (lkey, rkey), so
  // the RNIC model can shoot down cached MTT translations (rdma/mtt.h).
  void SetDeregisterHook(
      std::function<void(MemoryKey lkey, MemoryKey rkey)> hook) {
    dereg_hook_ = std::move(hook);
  }

  // Direct CPU window over DRAM (no MR checks — the local CPU is not
  // subject to RNIC protection). Caller must keep addr/len in bounds;
  // use InBoundsForCpu to pre-check.
  MutableByteSpan SpanForCpu(std::uint64_t addr, std::uint64_t len) {
    return MutableByteSpan(Translate(addr), len);
  }
  bool InBoundsForCpu(std::uint64_t addr, std::uint64_t len) const {
    return InBounds(addr, len);
  }

  // Raw CPU-side access (no key checks — this is the node's own CPU).
  Status Read(std::uint64_t addr, MutableByteSpan out) const;
  Status Write(std::uint64_t addr, ByteSpan data);
  StatusOr<std::uint64_t> ReadU64(std::uint64_t addr) const;
  Status WriteU64(std::uint64_t addr, std::uint64_t value);

  // RNIC-side access paths, validated against a registered region.
  // `remote` selects rkey (true) vs lkey (false) lookup.
  Status DmaRead(MemoryKey key, bool remote, std::uint64_t addr,
                 MutableByteSpan out) const;
  Status DmaWrite(MemoryKey key, bool remote, std::uint64_t addr,
                  ByteSpan data);
  // 8-byte atomics executed by the RNIC. Returns the original value.
  StatusOr<std::uint64_t> DmaCompareSwap(MemoryKey key, std::uint64_t addr,
                                         std::uint64_t expected,
                                         std::uint64_t desired);
  StatusOr<std::uint64_t> DmaFetchAdd(MemoryKey key, std::uint64_t addr,
                                      std::uint64_t addend);

  // Validates an access without performing it (used for atomics'
  // alignment + permission preflight).
  Status CheckAccess(MemoryKey key, bool remote, std::uint64_t addr,
                     std::uint64_t length, std::uint32_t required) const;

 private:
  const MemoryRegion* FindRegion(MemoryKey key, bool remote) const;
  std::uint8_t* Translate(std::uint64_t addr) {
    return bytes_.get() + (addr - base_);
  }
  const std::uint8_t* Translate(std::uint64_t addr) const {
    return bytes_.get() + (addr - base_);
  }
  bool InBounds(std::uint64_t addr, std::uint64_t length) const {
    return addr >= base_ && addr + length <= base_ + capacity_ &&
           addr + length >= addr;
  }

  // Anonymous mmap region: lazily zero-filled by the kernel, so creating
  // many simulated nodes with GB-scale DRAM costs nothing until pages are
  // actually touched.
  struct Unmapper {
    std::size_t length;
    void operator()(std::uint8_t* p) const;
  };
  static std::unique_ptr<std::uint8_t[], Unmapper> MapAnonymous(
      std::uint64_t capacity);

  std::uint64_t base_;
  std::uint64_t capacity_;
  std::uint64_t next_alloc_;
  std::unique_ptr<std::uint8_t[], Unmapper> bytes_;
  std::unordered_map<MemoryKey, MemoryRegion> regions_by_lkey_;
  std::unordered_map<MemoryKey, MemoryKey> lkey_by_rkey_;
  MemoryKey next_key_ = 0x1000;
  std::function<void(MemoryKey, MemoryKey)> dereg_hook_;
};

}  // namespace rdx::rdma
