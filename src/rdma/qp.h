// Reliable-connection queue pair. Follows the ibverbs life cycle:
// created in Init, transitioned to Rtr/Rts by Fabric::Connect, moved to
// Error on the first failed work request (subsequent WRs are flushed).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "rdma/cq.h"
#include "rdma/types.h"

namespace rdx::rdma {

class Fabric;

enum class QpState : std::uint8_t { kInit, kRtr, kRts, kError };

class QueuePair {
 public:
  QueuePair(Fabric& fabric, NodeId node, QpNum num, CompletionQueue& send_cq,
            CompletionQueue& recv_cq)
      : fabric_(fabric),
        node_(node),
        num_(num),
        send_cq_(send_cq),
        recv_cq_(recv_cq) {}
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  QpNum num() const { return num_; }
  NodeId node() const { return node_; }
  QpState state() const { return state_; }
  NodeId remote_node() const { return remote_node_; }
  QpNum remote_qp() const { return remote_qp_; }
  CompletionQueue& send_cq() { return send_cq_; }
  CompletionQueue& recv_cq() { return recv_cq_; }

  // Posts a work request to the send queue. In Rts the fabric picks it up
  // immediately (simulated asynchronously); in Error it is flushed.
  Status PostSend(const SendWr& wr);

  // Posts a linked list of work requests with a single doorbell ring
  // (ibv_post_send with wr.next chaining). The chain shares one MMIO
  // doorbell; each WQE still pays its descriptor fetch, and RC ordering
  // across the chain is identical to posting the WRs one by one.
  Status PostSendChain(const std::vector<SendWr>& wrs);

  // Posts a receive buffer for incoming SENDs.
  Status PostRecv(const RecvWr& wr);

  // Selective-signaling period for chained posts: within PostSendChain,
  // non-tail WRITE WRs are signaled only every `period`-th WR; the chain
  // tail is ALWAYS signaled so a poller is never stranded waiting on a
  // fully-unsignaled chain (the run counter resets at each tail).
  // 0 or 1 disables the rewrite and honors each WR's own flag.
  // Non-WRITE WRs (READ/atomics/SEND) keep their caller-set flag — their
  // consumers need the returned data. Singleton PostSend is untouched.
  void SetSignalingPeriod(std::uint32_t period) { signal_period_ = period; }
  std::uint32_t signaling_period() const { return signal_period_; }

  // Used by Fabric.
  void SetConnected(NodeId remote_node, QpNum remote_qp) {
    remote_node_ = remote_node;
    remote_qp_ = remote_qp;
    state_ = QpState::kRts;
  }
  void SetError() { state_ = QpState::kError; }
  bool PopRecv(RecvWr& out) {
    if (recv_queue_.empty()) return false;
    out = recv_queue_.front();
    recv_queue_.pop_front();
    return true;
  }
  std::size_t RecvDepth() const { return recv_queue_.size(); }

 private:
  Fabric& fabric_;
  NodeId node_;
  QpNum num_;
  CompletionQueue& send_cq_;
  CompletionQueue& recv_cq_;
  QpState state_ = QpState::kInit;
  NodeId remote_node_ = kInvalidNode;
  QpNum remote_qp_ = 0;
  std::deque<RecvWr> recv_queue_;
  std::uint32_t signal_period_ = 0;
  std::uint32_t unsignaled_run_ = 0;
};

}  // namespace rdx::rdma
