// The simulated rack fabric: nodes (DRAM + RNIC), queue-pair plumbing,
// and the DMA engine that executes work requests with calibrated
// latencies over the event queue. Per-QP ordering follows RC semantics:
// work requests start in post order and their completions are delivered
// in order; the first failure moves the QP to Error and flushes the rest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "rdma/cq.h"
#include "rdma/fault_hook.h"
#include "rdma/memory.h"
#include "rdma/mtt.h"
#include "rdma/qp.h"
#include "rdma/types.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace rdx::rdma {

// One server: DRAM, an RNIC with CQs and QPs. Created via Fabric::AddNode.
class Node {
 public:
  Node(NodeId id, std::string name, std::uint64_t memory_bytes)
      : id_(id), name_(std::move(name)), memory_(memory_bytes) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  HostMemory& memory() { return memory_; }
  const HostMemory& memory() const { return memory_; }

 private:
  friend class Fabric;
  NodeId id_;
  std::string name_;
  HostMemory memory_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

class Fabric {
 public:
  explicit Fabric(sim::EventQueue& events,
                  sim::LinkModel link = sim::RdmaLink())
      : events_(events), link_(link) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Node& AddNode(std::string name, std::uint64_t memory_bytes = 64 << 20);
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t NodeCount() const { return nodes_.size(); }

  CompletionQueue& CreateCq(NodeId node, std::uint32_t capacity = 4096);
  QueuePair& CreateQp(NodeId node, CompletionQueue& send_cq,
                      CompletionQueue& recv_cq);

  // Wires two QPs into a reliable connection (both transition to Rts).
  Status Connect(QueuePair& a, QueuePair& b);

  // Fabric-internal: executes a posted WR. Called by QueuePair::PostSend.
  void Execute(QueuePair& qp, const SendWr& wr);

  // Fabric-internal: executes a doorbell-batched chain of WRs posted by
  // QueuePair::PostSendChain. One doorbell ring covers the whole chain;
  // WQE i becomes NIC-visible after the doorbell plus i+1 descriptor
  // fetches, then the usual per-QP wire serialization and RC ordering
  // apply.
  void ExecuteChain(QueuePair& qp, const std::vector<SendWr>& wrs);

  sim::EventQueue& events() { return events_; }
  const sim::LinkModel& link() const { return link_; }

  // Installs (or clears, with nullptr) the fault-injection hook. At most
  // one hook is active; the fabric does not own it.
  void SetFaultHook(FaultHook* hook) { fault_hook_ = hook; }

  // All QPs that would be disturbed by losing `node`: QPs hosted on it
  // plus QPs on other nodes whose connection terminates there.
  std::vector<QueuePair*> QpsTouching(NodeId node);

  // MTT shootdown: drops cached translations for `key` from every QP
  // hosted on `node` (the node that owns the registered memory). Called
  // automatically on MR deregistration via the HostMemory hook, and by
  // the control plane when quarantining a flow (protection change).
  void InvalidateMtt(NodeId node, MemoryKey key);

  // Counters for tests/benches.
  std::uint64_t ops_executed() const { return ops_executed_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  // Doorbell accounting: every post (single or chained) rings exactly one
  // doorbell; chained_wrs counts WRs that rode a multi-WR chain.
  std::uint64_t doorbells_rung() const { return doorbells_rung_; }
  std::uint64_t chained_wrs() const { return chained_wrs_; }
  // Small-op fast path accounting.
  std::uint64_t inline_wrs() const { return inline_wrs_; }
  std::uint64_t unsignaled_wrs() const { return unsignaled_wrs_; }
  std::uint64_t coalesced_completions() const {
    return coalesced_completions_;
  }
  // MTT cache totals, summed across all per-QP caches.
  std::uint64_t mtt_hits() const;
  std::uint64_t mtt_misses() const;
  std::uint64_t mtt_invalidations() const;

  // Per-QP accounting, recorded when the completion is delivered (so a
  // flushed WR still counts, with its flush latency). Indexed by opcode
  // in enum order: write, read, send, compare-swap, fetch-add.
  struct QpStats {
    std::uint64_t ops = 0;
    std::uint64_t failures = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t ops_by_opcode[5] = {0, 0, 0, 0, 0};
    // Fast-path accounting: WRs whose payload rode the WQE, and
    // successful WRs retired without a CQE (selective signaling).
    std::uint64_t inline_wrs = 0;
    std::uint64_t unsignaled = 0;
    Histogram latency_ns;  // post-to-completion, virtual ns
  };
  const std::unordered_map<QpNum, QpStats>& qp_stats() const {
    return qp_stats_;
  }

 private:
  struct OpOutcome {
    WcStatus status = WcStatus::kSuccess;
    std::uint32_t byte_len = 0;
    std::uint64_t atomic_original = 0;
    Bytes read_payload;  // for kRead: data to land in the local buffer
    bool recv_consumed = false;
    std::uint64_t recv_wr_id = 0;
  };

  // Applies the remote-side effect of `wr` at arrival time.
  OpOutcome ApplyRemote(QueuePair& qp, const SendWr& wr, const Bytes& payload);
  void Complete(QueuePair& qp, const SendWr& wr, const OpOutcome& outcome,
                sim::SimTime posted_at);
  // Shared WR execution path: `nic_ready` is the absolute time the NIC
  // has fetched this WQE and can start processing it (doorbell +
  // descriptor fetches; chains amortize the doorbell share). ExecuteOne
  // adds the per-WQE processing costs (MTT translation, payload DMA
  // fetch for non-inline payloads) and advances the QP's nic_free
  // cursor, so processing serializes across back-to-back WRs.
  void ExecuteOne(QueuePair& qp, const SendWr& wr, sim::SimTime nic_ready);

  // Per-QP MTT cache, created on first use with the link's capacity.
  MttCache& MttFor(QpNum num);

  sim::EventQueue& events_;
  sim::LinkModel link_;
  FaultHook* fault_hook_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  QpNum next_qp_num_ = 100;
  std::uint64_t ops_executed_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t doorbells_rung_ = 0;
  std::uint64_t chained_wrs_ = 0;
  std::uint64_t inline_wrs_ = 0;
  std::uint64_t unsignaled_wrs_ = 0;
  std::uint64_t coalesced_completions_ = 0;
  // Per-QP wire/ordering state: RC guarantees that work requests are
  // executed and completed in post order, and the sender NIC serializes
  // payloads onto the wire (store-and-forward).
  struct QpTiming {
    // When the NIC's doorbell/WQE-fetch engine is free for this QP: the
    // NIC drains one doorbell (and its descriptor fetches) at a time, so
    // back-to-back single posts serialize their doorbell cost while a
    // chained post pays it once.
    sim::SimTime nic_free = 0;
    sim::SimTime wire_free = 0;
    sim::SimTime last_arrival = 0;
    sim::SimTime last_completion = 0;
  };
  std::unordered_map<QpNum, QpTiming> qp_timing_;
  std::unordered_map<QpNum, QpStats> qp_stats_;
  // Per-QP NIC translation caches: the requester QP caches lkeys of its
  // own node's memory; in the responder role the same QP caches rkeys
  // (both keys come from the one HostMemory, so they never collide).
  std::unordered_map<QpNum, MttCache> qp_mtt_;
};

}  // namespace rdx::rdma
