// Completion queue. Completions are pushed by the fabric at their
// simulated completion time; consumers either Poll() (data-plane style
// busy polling) or install a notify callback (completion-channel style,
// used by the RDX control plane to resume coroutine-free state machines).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rdma/types.h"

namespace rdx::rdma {

class CompletionQueue {
 public:
  using Notify = std::function<void(const WorkCompletion&)>;

  explicit CompletionQueue(std::uint32_t capacity = 4096)
      : capacity_(capacity) {}

  // Fabric-side: enqueue a completion. Returns false on CQ overrun (the
  // entry is dropped, mirroring real CQ overflow behaviour).
  bool Push(const WorkCompletion& wc);

  // Consumer-side: dequeue up to `max` completions.
  std::vector<WorkCompletion> Poll(std::size_t max = 16);

  // Install a callback invoked (synchronously, at completion time) for
  // every pushed completion. The entry is still queued for Poll() unless
  // the callback returns true ("consumed").
  void SetNotify(std::function<bool(const WorkCompletion&)> notify) {
    notify_ = std::move(notify);
  }

  std::size_t Depth() const { return entries_.size(); }
  std::uint64_t overruns() const { return overruns_; }

  // Fabric-side: record that a successful unsignaled WR retired without a
  // CQE — its completion is implied by the next signaled/errored entry on
  // the same QP (RC ordering). Exported as the `cq.coalesced` counter.
  void NoteCoalesced() { ++coalesced_; }
  std::uint64_t coalesced() const { return coalesced_; }

 private:
  std::uint32_t capacity_;
  std::deque<WorkCompletion> entries_;
  std::function<bool(const WorkCompletion&)> notify_;
  std::uint64_t overruns_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace rdx::rdma
