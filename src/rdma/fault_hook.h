// Fault-injection seam for the simulated fabric. The fabric consults an
// optional FaultHook at the three points where a real RDMA deployment
// can go wrong: when a work request hits the wire (drop, delay, payload
// corruption), when it reaches the remote NIC (dead peer), and when the
// completion is delivered (observability). The hook lives below core/:
// it sees only rdma-layer types, so higher layers (src/fault/) decide
// policy while the fabric stays mechanism-only.
#pragma once

#include "common/bytes.h"
#include "rdma/types.h"
#include "sim/time.h"

namespace rdx::rdma {

class QueuePair;

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Verdict for one outbound work request.
  struct WireFault {
    // The packet (and all its retransmits) is lost: the requester NIC
    // burns its retry budget and reports kRetryExceeded.
    bool drop = false;
    // Added one-way propagation delay (link degradation).
    sim::Duration extra_latency = 0;
  };

  // Called at post time, before the payload is serialized onto the wire.
  // The hook may mutate `payload` in place to model in-flight bit flips
  // (only meaningful for WRITE/SEND; empty otherwise).
  virtual WireFault OnExecute(const QueuePair& qp, const SendWr& wr,
                              Bytes* payload) = 0;

  // True while `node` is crashed: requests addressed to it get no ACK
  // and surface kRetryExceeded at the requester.
  virtual bool NodeDown(NodeId node) const = 0;

  // Called when a completion is delivered to the requester CQ.
  virtual void OnComplete(const QueuePair& qp, const SendWr& wr,
                          WcStatus status) = 0;
};

}  // namespace rdx::rdma
