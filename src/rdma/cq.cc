#include "rdma/cq.h"

namespace rdx::rdma {

bool CompletionQueue::Push(const WorkCompletion& wc) {
  if (notify_ && notify_(wc)) return true;
  if (entries_.size() >= capacity_) {
    ++overruns_;
    return false;
  }
  entries_.push_back(wc);
  return true;
}

std::vector<WorkCompletion> CompletionQueue::Poll(std::size_t max) {
  std::vector<WorkCompletion> out;
  while (!entries_.empty() && out.size() < max) {
    out.push_back(entries_.front());
    entries_.pop_front();
  }
  return out;
}

}  // namespace rdx::rdma
