// Per-QP memory translation table (MTT) cache model. A real RNIC keeps
// recently-used MR translations in on-die SRAM; a hit folds into WQE
// processing (~15 ns), a miss walks the host-resident MTT over PCIe
// (~450 ns). This mirrors how sim/cache.h models CPU-side residency:
// the cache only decides which *latency* to charge — correctness (bounds,
// permissions) is always enforced by HostMemory regardless of hit/miss.
//
// Entries are invalidated when an MR is deregistered (Fabric installs a
// HostMemory deregister hook) and when the control plane quarantines a
// flow (protection-change shootdown, same mechanism real NICs use for
// IBV_REREG_MR). Capacity 0 disables the cache: every lookup is cold,
// which is the pre-fast-path behavior and the bench baseline config.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "rdma/types.h"

namespace rdx::rdma {

class MttCache {
 public:
  explicit MttCache(std::size_t capacity = 0) : capacity_(capacity) {}

  // Returns true on hit. On miss the key is installed (evicting the
  // least-recently-used entry at capacity) so the next lookup hits.
  bool Lookup(MemoryKey key) {
    if (capacity_ == 0) {
      ++misses_;
      return false;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return true;
    }
    ++misses_;
    lru_.push_front(key);
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

  // Shootdown: drop the translation if cached (dereg / quarantine).
  void Invalidate(MemoryKey key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::size_t size() const { return lru_.size(); }

 private:
  std::size_t capacity_;
  std::list<MemoryKey> lru_;
  std::unordered_map<MemoryKey, std::list<MemoryKey>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace rdx::rdma
