// Vocabulary types for the simulated RDMA fabric. The API deliberately
// mirrors ibverbs (protection domains, memory regions with lkey/rkey,
// reliable-connection queue pairs, work requests, completion queues) so
// that the RDX layer above is written exactly as it would be against real
// verbs — only the transport underneath is simulated.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace rdx::rdma {

using NodeId = std::uint32_t;
using QpNum = std::uint32_t;
using MemoryKey = std::uint32_t;  // lkey / rkey

constexpr NodeId kInvalidNode = ~0u;

// Access flags for memory registration, same spirit as IBV_ACCESS_*.
enum AccessFlags : std::uint32_t {
  kAccessLocalWrite = 1u << 0,
  kAccessRemoteRead = 1u << 1,
  kAccessRemoteWrite = 1u << 2,
  kAccessRemoteAtomic = 1u << 3,
};

enum class Opcode : std::uint8_t {
  kWrite,        // one-sided RDMA WRITE
  kRead,         // one-sided RDMA READ
  kSend,         // two-sided SEND (consumes a remote RECV)
  kCompareSwap,  // 8-byte remote compare-and-swap
  kFetchAdd,     // 8-byte remote fetch-and-add
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocalProtectionError,   // bad lkey / local bounds
  kRemoteAccessError,      // bad rkey / remote bounds / permissions
  kRemoteInvalidRequest,   // e.g. misaligned atomic
  kWorkRequestFlushed,     // QP entered error state; WR not executed
  kRetryExceeded,          // remote QP unreachable
};

const char* WcStatusName(WcStatus status);

// Scatter/gather element addressing registered local memory.
struct Sge {
  std::uint64_t addr = 0;  // local virtual address
  std::uint32_t length = 0;
  MemoryKey lkey = 0;
};

// Work request posted to a QP's send queue.
struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  Sge local;                       // local buffer (source or destination)
  std::uint64_t remote_addr = 0;   // for one-sided ops and atomics
  MemoryKey rkey = 0;
  // Atomics: kCompareSwap uses compare_add as expected value and swap as
  // the new value; kFetchAdd uses compare_add as the addend.
  std::uint64_t compare_add = 0;
  std::uint64_t swap = 0;
  // Unsignaled WRs produce no completion entry on success; failures
  // (NAK, flush) ALWAYS produce an in-order error completion regardless
  // of this flag, per verbs semantics.
  bool signaled = true;
  // IBV_SEND_INLINE analog: copy the payload into the WQE at post time.
  // Only meaningful for kWrite/kSend with length <= max_inline_data; the
  // NIC then skips the payload DMA fetch and needs no source MR (the
  // lkey is ignored, only the address/length are read by the CPU).
  // Posting an oversize inline WR fails with InvalidArgument.
  bool send_inline = false;
};

// Receive work request (two-sided path).
struct RecvWr {
  std::uint64_t wr_id = 0;
  Sge local;
};

// Completion queue entry.
struct WorkCompletion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  Opcode opcode = Opcode::kWrite;
  std::uint32_t byte_len = 0;
  QpNum qp_num = 0;
  sim::SimTime completed_at = 0;
  // For atomics: the original value read at the remote address.
  std::uint64_t atomic_original = 0;
};

}  // namespace rdx::rdma
