#include "rdma/memory.h"

#include <sys/mman.h>

#include <cstdlib>

namespace rdx::rdma {

void HostMemory::Unmapper::operator()(std::uint8_t* p) const {
  if (p != nullptr) ::munmap(p, length);
}

std::unique_ptr<std::uint8_t[], HostMemory::Unmapper>
HostMemory::MapAnonymous(std::uint64_t capacity) {
  void* p = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) std::abort();
  return std::unique_ptr<std::uint8_t[], Unmapper>(
      static_cast<std::uint8_t*>(p), Unmapper{capacity});
}

HostMemory::HostMemory(std::uint64_t capacity, std::uint64_t base_addr)
    : base_(base_addr),
      capacity_(capacity),
      next_alloc_(base_addr),
      bytes_(MapAnonymous(capacity)) {}

StatusOr<std::uint64_t> HostMemory::Allocate(std::uint64_t size,
                                             std::uint64_t align) {
  if (size == 0 || align == 0 || (align & (align - 1)) != 0) {
    return InvalidArgument("bad allocation size/alignment");
  }
  std::uint64_t addr = (next_alloc_ + align - 1) & ~(align - 1);
  if (addr + size > base_ + capacity_) {
    return ResourceExhausted("host memory exhausted");
  }
  next_alloc_ = addr + size;
  return addr;
}

StatusOr<MemoryRegion> HostMemory::Register(std::uint64_t addr,
                                            std::uint64_t length,
                                            std::uint32_t access) {
  if (length == 0) return InvalidArgument("cannot register empty region");
  if (!InBounds(addr, length)) {
    return OutOfRange("registration outside host memory");
  }
  MemoryRegion mr;
  mr.lkey = next_key_++;
  mr.rkey = next_key_++;
  mr.addr = addr;
  mr.length = length;
  mr.access = access;
  regions_by_lkey_.emplace(mr.lkey, mr);
  lkey_by_rkey_.emplace(mr.rkey, mr.lkey);
  return mr;
}

Status HostMemory::Deregister(MemoryKey lkey) {
  auto it = regions_by_lkey_.find(lkey);
  if (it == regions_by_lkey_.end()) return NotFound("unknown lkey");
  const MemoryKey rkey = it->second.rkey;
  lkey_by_rkey_.erase(rkey);
  regions_by_lkey_.erase(it);
  if (dereg_hook_) dereg_hook_(lkey, rkey);
  return OkStatus();
}

const MemoryRegion* HostMemory::FindRegion(MemoryKey key, bool remote) const {
  MemoryKey lkey = key;
  if (remote) {
    auto it = lkey_by_rkey_.find(key);
    if (it == lkey_by_rkey_.end()) return nullptr;
    lkey = it->second;
  }
  auto it = regions_by_lkey_.find(lkey);
  return it == regions_by_lkey_.end() ? nullptr : &it->second;
}

Status HostMemory::CheckAccess(MemoryKey key, bool remote, std::uint64_t addr,
                               std::uint64_t length,
                               std::uint32_t required) const {
  const MemoryRegion* mr = FindRegion(key, remote);
  if (mr == nullptr) return PermissionDenied("unknown memory key");
  if ((mr->access & required) != required) {
    return PermissionDenied("region lacks required access rights");
  }
  if (addr < mr->addr || addr + length > mr->addr + mr->length ||
      addr + length < addr) {
    return OutOfRange("access outside registered region");
  }
  return OkStatus();
}

Status HostMemory::Read(std::uint64_t addr, MutableByteSpan out) const {
  if (!InBounds(addr, out.size())) return OutOfRange("CPU read out of bounds");
  std::memcpy(out.data(), Translate(addr), out.size());
  return OkStatus();
}

Status HostMemory::Write(std::uint64_t addr, ByteSpan data) {
  if (!InBounds(addr, data.size())) {
    return OutOfRange("CPU write out of bounds");
  }
  std::memcpy(Translate(addr), data.data(), data.size());
  return OkStatus();
}

StatusOr<std::uint64_t> HostMemory::ReadU64(std::uint64_t addr) const {
  std::uint8_t buf[8];
  RDX_RETURN_IF_ERROR(Read(addr, buf));
  return LoadLE<std::uint64_t>(buf);
}

Status HostMemory::WriteU64(std::uint64_t addr, std::uint64_t value) {
  std::uint8_t buf[8];
  StoreLE(buf, value);
  return Write(addr, buf);
}

Status HostMemory::DmaRead(MemoryKey key, bool remote, std::uint64_t addr,
                           MutableByteSpan out) const {
  const std::uint32_t required = remote ? kAccessRemoteRead : 0u;
  RDX_RETURN_IF_ERROR(CheckAccess(key, remote, addr, out.size(), required));
  return Read(addr, out);
}

Status HostMemory::DmaWrite(MemoryKey key, bool remote, std::uint64_t addr,
                            ByteSpan data) {
  const std::uint32_t required =
      remote ? kAccessRemoteWrite : kAccessLocalWrite;
  RDX_RETURN_IF_ERROR(CheckAccess(key, remote, addr, data.size(), required));
  return Write(addr, data);
}

StatusOr<std::uint64_t> HostMemory::DmaCompareSwap(MemoryKey key,
                                                   std::uint64_t addr,
                                                   std::uint64_t expected,
                                                   std::uint64_t desired) {
  if ((addr & 7) != 0) return InvalidArgument("misaligned atomic");
  RDX_RETURN_IF_ERROR(CheckAccess(key, /*remote=*/true, addr, 8,
                                  kAccessRemoteAtomic));
  RDX_ASSIGN_OR_RETURN(const std::uint64_t original, ReadU64(addr));
  if (original == expected) {
    RDX_RETURN_IF_ERROR(WriteU64(addr, desired));
  }
  return original;
}

StatusOr<std::uint64_t> HostMemory::DmaFetchAdd(MemoryKey key,
                                                std::uint64_t addr,
                                                std::uint64_t addend) {
  if ((addr & 7) != 0) return InvalidArgument("misaligned atomic");
  RDX_RETURN_IF_ERROR(CheckAccess(key, /*remote=*/true, addr, 8,
                                  kAccessRemoteAtomic));
  RDX_ASSIGN_OR_RETURN(const std::uint64_t original, ReadU64(addr));
  RDX_RETURN_IF_ERROR(WriteU64(addr, original + addend));
  return original;
}

}  // namespace rdx::rdma
