// Agentless harvest of sandbox TraceRings. The collector runs on the
// control-plane node and touches remote rings exclusively with one-sided
// verbs: RDMA READ for the header and slot chunks, FETCH_ADD to advance
// the consumer cursor. No node-side CPU participates.
//
// Loss is accounted, never hidden: if the producer lapped the consumer,
// the overwritten span is computed from the head/tail gap and surfaced as
// a `ring_overwrite` instant plus the `overwritten` counter. A slot whose
// seq word does not match its expected absolute index was mid-overwrite
// during the READ (torn); it is skipped and counted, never emitted. The
// tail is advanced with one FETCH_ADD covering everything observed, and
// timeline events are appended only after that FAA completes — a failed
// harvest (QP error mid-read) leaves the ring untouched for the next
// attempt, so no event is lost or duplicated by the failure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "sim/cost_model.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace rdx::telemetry {

// One-sided verb surface the collector needs, as callbacks so the
// telemetry library stays independent of the control-plane layer (the
// control plane adapts its CodeFlow into one of these; tests can harvest
// straight from a HostMemory).
struct RingOps {
  // READ `len` bytes at remote `addr`.
  std::function<void(std::uint64_t addr, std::uint32_t len,
                     std::function<void(StatusOr<Bytes>)>)>
      read;
  // FETCH_ADD `delta` onto the u64 at remote `addr`; yields the prior
  // value.
  std::function<void(std::uint64_t addr, std::uint64_t delta,
                     std::function<void(StatusOr<std::uint64_t>)>)>
      fetch_add;
};

struct HarvestStats {
  std::uint64_t harvests = 0;      // completed harvest passes
  std::uint64_t events = 0;        // slots merged into the timeline
  std::uint64_t overwritten = 0;   // slots lost to producer overruns
  std::uint64_t torn = 0;          // slots skipped due to seq mismatch
  std::uint64_t failed_reads = 0;  // harvest passes aborted by verb errors
};

class Collector {
 public:
  explicit Collector(Tracer& tracer, sim::CostModel cost = {})
      : tracer_(tracer), cost_(cost) {}

  // Harvests the ring at `trace_addr` on the node rendered as `pid`,
  // merging its events into the tracer's timeline. Asynchronous; `done`
  // fires once the pass commits (tail advanced, events appended) or
  // aborts (nothing touched).
  void Harvest(const RingOps& ops, std::uint64_t trace_addr,
               std::uint32_t pid, std::function<void(Status)> done);

  const HarvestStats& stats() const { return stats_; }
  void ExportMetrics(MetricsRegistry& reg) const;

 private:
  struct HarvestPass;
  void Commit(const std::shared_ptr<HarvestPass>& pass);
  void AppendEvent(std::uint32_t pid, const RingEvent& ev);

  Tracer& tracer_;
  sim::CostModel cost_;
  HarvestStats stats_;
};

}  // namespace rdx::telemetry
