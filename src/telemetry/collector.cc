#include "telemetry/collector.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "core/layout.h"

namespace rdx::telemetry {

struct Collector::HarvestPass {
  RingOps ops;
  std::uint64_t trace_addr = 0;
  std::uint32_t pid = 0;
  std::function<void(Status)> done;

  std::uint64_t capacity = 0;
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  std::uint64_t lost = 0;
  std::uint64_t start = 0;  // first absolute slot index still recoverable
  Bytes first_chunk;
  Bytes second_chunk;
};

namespace {

RingEvent DecodeSlot(const std::uint8_t* p) {
  RingEvent ev;
  ev.seq = LoadLE<std::uint64_t>(p + core::kTsSeq);
  ev.ts = static_cast<sim::SimTime>(
      LoadLE<std::uint64_t>(p + core::kTsTimestamp));
  UnpackRingMeta(LoadLE<std::uint64_t>(p + core::kTsMeta), ev.kind, ev.tid,
                 ev.code);
  ev.arg = LoadLE<std::uint64_t>(p + core::kTsArg);
  return ev;
}

}  // namespace

void Collector::Harvest(const RingOps& ops, std::uint64_t trace_addr,
                        std::uint32_t pid,
                        std::function<void(Status)> done) {
  auto pass = std::make_shared<HarvestPass>();
  pass->ops = ops;
  pass->trace_addr = trace_addr;
  pass->pid = pid;
  pass->done = std::move(done);

  ops.read(trace_addr, core::kTraceRingHeaderBytes,
           [this, pass](StatusOr<Bytes> header) {
    if (!header.ok()) {
      ++stats_.failed_reads;
      pass->done(header.status());
      return;
    }
    const std::uint8_t* h = header.value().data();
    if (LoadLE<std::uint64_t>(h + core::kTrMagic) != core::kTraceRingMagic) {
      pass->done(FailedPrecondition("trace ring magic mismatch"));
      return;
    }
    pass->capacity = LoadLE<std::uint64_t>(h + core::kTrCapacity);
    pass->head = LoadLE<std::uint64_t>(h + core::kTrHead);
    pass->tail = LoadLE<std::uint64_t>(h + core::kTrTail);
    if (pass->capacity == 0 ||
        (pass->capacity & (pass->capacity - 1)) != 0) {
      pass->done(FailedPrecondition("trace ring capacity corrupt"));
      return;
    }
    const std::uint64_t avail = pass->head - pass->tail;
    if (avail == 0) {
      ++stats_.harvests;
      pass->done(OkStatus());
      return;
    }
    // Producer overrun: everything in [tail, head - capacity) has been
    // overwritten. Recoverable slots start at head - capacity.
    pass->start = pass->tail;
    if (avail > pass->capacity) {
      pass->lost = avail - pass->capacity;
      pass->start = pass->head - pass->capacity;
    }

    const std::uint64_t mask = pass->capacity - 1;
    const std::uint64_t count = pass->head - pass->start;
    const std::uint64_t first_idx = pass->start & mask;
    const std::uint64_t first_len =
        std::min(count, pass->capacity - first_idx);
    const std::uint64_t second_len = count - first_len;
    const std::uint64_t slots = pass->trace_addr + core::kTraceRingHeaderBytes;

    // The occupied region is at most two contiguous chunks of the slot
    // array; read them back-to-back, then commit.
    pass->ops.read(
        slots + first_idx * core::kTraceSlotBytes,
        static_cast<std::uint32_t>(first_len * core::kTraceSlotBytes),
        [this, pass, slots, second_len](StatusOr<Bytes> chunk) {
      if (!chunk.ok()) {
        ++stats_.failed_reads;
        pass->done(chunk.status());
        return;
      }
      pass->first_chunk = std::move(chunk).value();
      if (second_len == 0) {
        Commit(pass);
        return;
      }
      pass->ops.read(
          slots,
          static_cast<std::uint32_t>(second_len * core::kTraceSlotBytes),
          [this, pass](StatusOr<Bytes> wrap) {
        if (!wrap.ok()) {
          ++stats_.failed_reads;
          pass->done(wrap.status());
          return;
        }
        pass->second_chunk = std::move(wrap).value();
        Commit(pass);
      });
    });
  });
}

void Collector::Commit(const std::shared_ptr<HarvestPass>& pass) {
  // Decode and validate before touching the cursor. A slot whose seq is
  // not the expected absolute index was being overwritten while the READ
  // was in flight: skip it, count it, never merge it.
  std::vector<RingEvent> decoded;
  const std::uint64_t count = pass->head - pass->start;
  decoded.reserve(count);
  std::uint64_t torn = 0;
  const std::uint64_t first_slots =
      pass->first_chunk.size() / core::kTraceSlotBytes;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p =
        i < first_slots
            ? pass->first_chunk.data() + i * core::kTraceSlotBytes
            : pass->second_chunk.data() +
                  (i - first_slots) * core::kTraceSlotBytes;
    RingEvent ev = DecodeSlot(p);
    if (ev.seq != pass->start + i) {
      ++torn;
      continue;
    }
    decoded.push_back(ev);
  }

  // One FETCH_ADD retires everything observed (including the overwritten
  // span). Events merge only after it succeeds: an aborted pass leaves
  // head - tail intact so the next harvest re-reads the same slots.
  const std::uint64_t delta = pass->head - pass->tail;
  pass->ops.fetch_add(
      pass->trace_addr + core::kTrTail, delta,
      [this, pass, decoded = std::move(decoded),
       torn](StatusOr<std::uint64_t> prior) {
    if (!prior.ok()) {
      ++stats_.failed_reads;
      pass->done(prior.status());
      return;
    }
    ++stats_.harvests;
    stats_.torn += torn;
    stats_.overwritten += pass->lost;
    stats_.events += decoded.size();
    if (pass->lost > 0) {
      char args[48];
      std::snprintf(args, sizeof(args), "\"lost\": %llu",
                    static_cast<unsigned long long>(pass->lost));
      tracer_.AddInstantAt("ring_overwrite", pass->pid, 0,
                           decoded.empty() ? tracer_.events_queue().Now()
                                           : decoded.front().ts,
                           args);
    }
    for (const RingEvent& ev : decoded) {
      AppendEvent(pass->pid, ev);
    }
    pass->done(OkStatus());
  });
}

void Collector::AppendEvent(std::uint32_t pid, const RingEvent& ev) {
  char args[96];
  switch (ev.kind) {
    case RingEventKind::kHookExecEbpf:
    case RingEventKind::kHookExecWasm: {
      // The emit records retired instructions; reconstruct the span length
      // from the same cost model the data path was charged with.
      const std::uint64_t cycles = cost_.ExtensionExecCycles(ev.arg);
      const sim::Duration dur = static_cast<sim::Duration>(
          static_cast<double>(cycles) / cost_.cpu_hz * 1e9);
      std::snprintf(args, sizeof(args), "\"insns\": %llu, \"seq\": %llu",
                    static_cast<unsigned long long>(ev.arg),
                    static_cast<unsigned long long>(ev.seq));
      tracer_.AddComplete(RingEventKindName(ev.kind), pid, ev.tid, ev.ts,
                          dur, args);
      return;
    }
    case RingEventKind::kHookTrap:
      std::snprintf(args, sizeof(args), "\"status\": \"%.*s\"",
                    static_cast<int>(
                        StatusCodeName(static_cast<StatusCode>(ev.code))
                            .size()),
                    StatusCodeName(static_cast<StatusCode>(ev.code)).data());
      break;
    case RingEventKind::kHookFuelExhausted:
      std::snprintf(args, sizeof(args), "\"fuel_arg\": %llu",
                    static_cast<unsigned long long>(ev.arg));
      break;
    case RingEventKind::kFailsafeDetach:
      std::snprintf(args, sizeof(args), "\"reverted_desc\": %llu",
                    static_cast<unsigned long long>(ev.arg));
      break;
    case RingEventKind::kHookRefresh:
      std::snprintf(args, sizeof(args), "\"version\": %llu",
                    static_cast<unsigned long long>(ev.arg));
      break;
    case RingEventKind::kNone:
    default:
      args[0] = '\0';
      break;
  }
  tracer_.AddInstantAt(RingEventKindName(ev.kind), pid, ev.tid, ev.ts,
                       args);
}

void Collector::ExportMetrics(MetricsRegistry& reg) const {
  reg.SetCounter("telemetry.harvests", stats_.harvests);
  reg.SetCounter("telemetry.events", stats_.events);
  reg.SetCounter("telemetry.overwritten", stats_.overwritten);
  reg.SetCounter("telemetry.torn", stats_.torn);
  reg.SetCounter("telemetry.failed_reads", stats_.failed_reads);
}

}  // namespace rdx::telemetry
