#include "telemetry/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

namespace rdx::telemetry {

namespace {

void EscapeInto(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void AppendEvent(std::string& out, const TimelineEvent& ev) {
  char buf[128];
  out += "{\"name\": \"";
  EscapeInto(out, ev.name);
  // TEF timestamps are microseconds; keep ns precision as fractions.
  std::snprintf(buf, sizeof(buf),
                "\", \"ph\": \"%c\", \"pid\": %u, \"tid\": %u, "
                "\"ts\": %.3f",
                ev.ph, ev.pid, ev.tid,
                static_cast<double>(ev.ts) / 1000.0);
  out += buf;
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(ev.dur) / 1000.0);
    out += buf;
  }
  if (ev.ph == 'i') {
    out += ", \"s\": \"t\"";  // thread-scoped instant
  }
  if (!ev.args.empty()) {
    out += ", \"args\": {" + ev.args + "}";
  }
  out += "}";
}

}  // namespace

std::string ToChromeTraceJson(const Tracer& tracer) {
  const auto& events = tracer.events();
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&events](std::size_t a, std::size_t b) {
                     return events[a].ts < events[b].ts;
                   });

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [pid, name] : tracer.process_names()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", "
                  "\"pid\": %u, \"args\": {\"name\": \"",
                  pid);
    out += first ? "" : ",\n";
    out += buf;
    EscapeInto(out, name);
    out += "\"}}";
    first = false;
  }
  for (std::size_t idx : order) {
    out += first ? "" : ",\n";
    AppendEvent(out, events[idx]);
    first = false;
  }
  out += "], \"displayTimeUnit\": \"ns\"}";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open trace file: " + path);
  }
  const std::string json = ToChromeTraceJson(tracer);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Internal("short write to trace file: " + path);
  }
  return OkStatus();
}

}  // namespace rdx::telemetry
