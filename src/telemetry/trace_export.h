// Trace Event Format (chrome://tracing / Perfetto "JSON object format")
// exporter for the merged telemetry timeline. Load the output via
// chrome://tracing "Load" or ui.perfetto.dev "Open trace file".
#pragma once

#include <string>

#include "common/status.h"
#include "telemetry/span.h"

namespace rdx::telemetry {

// Renders {"traceEvents": [...], "displayTimeUnit": "ns"}. Events are
// sorted by timestamp; virtual-clock ns become fractional TEF µs.
// process_name metadata ('M' events) is emitted for every pid named via
// Tracer::SetProcessName.
std::string ToChromeTraceJson(const Tracer& tracer);

// Writes the JSON to `path` (for loading into chrome://tracing).
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace rdx::telemetry
