// Telemetry event vocabulary. Two representations exist:
//
//   RingEvent      the 32-byte wire form the data-plane CPU writes into a
//                  sandbox's TraceRing (core/layout.h owns the offsets) —
//                  fixed-size, virtual-clock timestamped, harvested
//                  one-sided by the control plane;
//   TimelineEvent  the merged CPU-side form everything converges to —
//                  control-plane spans, harvested ring events, fault
//                  instants, counter samples — and the unit the
//                  chrome://tracing exporter consumes.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace rdx::telemetry {

// Ring event kinds (fits the low byte of the slot's meta word).
enum class RingEventKind : std::uint8_t {
  kNone = 0,
  kHookExecEbpf = 1,    // arg = insns_executed
  kHookExecWasm = 2,    // arg = insns_executed
  kHookTrap = 3,        // code = StatusCode of the failure
  kHookFuelExhausted = 4,
  kFailsafeDetach = 5,  // arg = desc the hook was reverted to
  kHookRefresh = 6,     // cache invalidate/discovery; arg = visible version
};

inline const char* RingEventKindName(RingEventKind kind) {
  switch (kind) {
    case RingEventKind::kNone: return "none";
    case RingEventKind::kHookExecEbpf: return "hook_exec:ebpf";
    case RingEventKind::kHookExecWasm: return "hook_exec:wasm";
    case RingEventKind::kHookTrap: return "hook_trap";
    case RingEventKind::kHookFuelExhausted: return "fuel_exhausted";
    case RingEventKind::kFailsafeDetach: return "failsafe_detach";
    case RingEventKind::kHookRefresh: return "hook_refresh";
  }
  return "unknown";
}

// Decoded view of one TraceRing slot.
struct RingEvent {
  std::uint64_t seq = 0;
  sim::SimTime ts = 0;
  RingEventKind kind = RingEventKind::kNone;
  std::uint8_t tid = 0;   // hook index
  std::uint16_t code = 0;
  std::uint64_t arg = 0;
};

inline std::uint64_t PackRingMeta(RingEventKind kind, std::uint8_t tid,
                                  std::uint16_t code) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(tid) << 8) |
         (static_cast<std::uint64_t>(code) << 16);
}

inline void UnpackRingMeta(std::uint64_t meta, RingEventKind& kind,
                           std::uint8_t& tid, std::uint16_t& code) {
  kind = static_cast<RingEventKind>(meta & 0xff);
  tid = static_cast<std::uint8_t>((meta >> 8) & 0xff);
  code = static_cast<std::uint16_t>((meta >> 16) & 0xffff);
}

// One merged-timeline event, in Trace Event Format terms: 'X' = complete
// span (ts + dur), 'i' = instant, 'C' = counter sample. pid is a node id
// (the control plane's own node included), tid a hook/QP/phase lane.
struct TimelineEvent {
  std::string name;
  char ph = 'X';
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  sim::SimTime ts = 0;
  sim::Duration dur = 0;
  // Raw JSON object body for "args" (without the braces), may be empty.
  std::string args;
};

}  // namespace rdx::telemetry
