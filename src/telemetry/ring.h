// Producer side of a sandbox's TraceRing (wire contract in
// core/layout.h). The writer is the only data-plane-CPU code in the
// telemetry subsystem and is wait-free by construction: an emit is a
// handful of stores plus one load of the (remotely advanced) tail cursor;
// when the ring is full the oldest unharvested slot is overwritten and
// counted in the header's dropped word — the data path never blocks on
// the collector.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "core/layout.h"
#include "rdma/memory.h"
#include "telemetry/event.h"

namespace rdx::telemetry {

class TraceRingWriter {
 public:
  // Total bytes a ring of `capacity` slots occupies (header + slots).
  static std::uint64_t BytesFor(std::uint64_t capacity) {
    return core::kTraceRingHeaderBytes + capacity * core::kTraceSlotBytes;
  }

  // Initializes the header + zeroes the slots at `addr`. `capacity` must
  // be a power of two.
  static Status Format(rdma::HostMemory& mem, std::uint64_t addr,
                       std::uint64_t capacity);

  // Attaches to an already-formatted ring. The writer caches the producer
  // cursor, so exactly one writer may exist per ring (SPSC).
  TraceRingWriter(rdma::HostMemory& mem, std::uint64_t addr,
                  std::uint64_t capacity)
      : mem_(mem), addr_(addr), capacity_(capacity) {}

  // Wait-free emit. Memory failures are swallowed: telemetry must never
  // fault the data path.
  void Emit(RingEventKind kind, std::uint8_t tid, std::uint16_t code,
            sim::SimTime ts, std::uint64_t arg);

  std::uint64_t emitted() const { return head_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t ring_addr() const { return addr_; }

 private:
  rdma::HostMemory& mem_;
  std::uint64_t addr_;
  std::uint64_t capacity_;
  std::uint64_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rdx::telemetry
