#include "telemetry/ring.h"

namespace rdx::telemetry {

Status TraceRingWriter::Format(rdma::HostMemory& mem, std::uint64_t addr,
                               std::uint64_t capacity) {
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
    return InvalidArgument("trace ring capacity must be a power of two");
  }
  Bytes zeros(BytesFor(capacity), 0);
  RDX_RETURN_IF_ERROR(mem.Write(addr, zeros));
  RDX_RETURN_IF_ERROR(
      mem.WriteU64(addr + core::kTrMagic, core::kTraceRingMagic));
  return mem.WriteU64(addr + core::kTrCapacity, capacity);
}

void TraceRingWriter::Emit(RingEventKind kind, std::uint8_t tid,
                           std::uint16_t code, sim::SimTime ts,
                           std::uint64_t arg) {
  // Overwrite-oldest on overflow: the collector reconstructs the loss
  // from the head/tail gap, but the producer keeps its own count in the
  // header so a harvest that never happens still leaves evidence.
  const auto tail = mem_.ReadU64(addr_ + core::kTrTail);
  if (tail.ok() && head_ - tail.value() >= capacity_) {
    ++dropped_;
    (void)mem_.WriteU64(addr_ + core::kTrDropped, dropped_);
  }
  const std::uint64_t slot =
      addr_ + core::kTraceRingHeaderBytes +
      (head_ & (capacity_ - 1)) * core::kTraceSlotBytes;
  (void)mem_.WriteU64(slot + core::kTsSeq, head_);
  (void)mem_.WriteU64(slot + core::kTsTimestamp,
                      static_cast<std::uint64_t>(ts));
  (void)mem_.WriteU64(slot + core::kTsMeta, PackRingMeta(kind, tid, code));
  (void)mem_.WriteU64(slot + core::kTsArg, arg);
  ++head_;
  (void)mem_.WriteU64(addr_ + core::kTrHead, head_);
}

}  // namespace rdx::telemetry
