#include "telemetry/metrics.h"

#include <cstdio>

namespace rdx::telemetry {

namespace {
// Indexed by rdma::Opcode enum order.
constexpr const char* kOpcodeNames[5] = {"write", "read", "send", "cas",
                                         "faa"};
}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += first ? "" : ", ";
    out += "\"" + name + "\": " + buf;
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += first ? "" : ", ";
    out += "\"" + name + "\": " + buf;
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : hists_) {
    out += first ? "" : ", ";
    out += "\"" + name + "\": " + hist.ToJson();
    first = false;
  }
  out += "}}";
  return out;
}

void CaptureFabricMetrics(MetricsRegistry& reg, const rdma::Fabric& fabric) {
  reg.SetCounter("rdma.ops_executed", fabric.ops_executed());
  reg.SetCounter("rdma.bytes_written", fabric.bytes_written());
  // Small-op fast path: inline WQEs, coalesced completions, MTT cache.
  reg.SetCounter("rdma.qp.inline_wrs", fabric.inline_wrs());
  reg.SetCounter("rdma.qp.unsignaled", fabric.unsignaled_wrs());
  reg.SetCounter("rdma.cq.coalesced", fabric.coalesced_completions());
  reg.SetCounter("rdma.mtt.hits", fabric.mtt_hits());
  reg.SetCounter("rdma.mtt.misses", fabric.mtt_misses());
  reg.SetCounter("rdma.mtt.invalidations", fabric.mtt_invalidations());

  std::uint64_t total_ops = 0, total_failures = 0;
  Histogram merged;
  for (const auto& [num, stats] : fabric.qp_stats()) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "rdma.qp%u", num);
    const std::string p = prefix;
    reg.SetCounter(p + ".ops", stats.ops);
    reg.SetCounter(p + ".failures", stats.failures);
    reg.SetCounter(p + ".bytes_out", stats.bytes_out);
    reg.SetCounter(p + ".bytes_in", stats.bytes_in);
    if (stats.inline_wrs != 0) {
      reg.SetCounter(p + ".inline_wrs", stats.inline_wrs);
    }
    if (stats.unsignaled != 0) {
      reg.SetCounter(p + ".unsignaled", stats.unsignaled);
    }
    for (int op = 0; op < 5; ++op) {
      if (stats.ops_by_opcode[op] == 0) continue;
      reg.SetCounter(p + ".ops." + kOpcodeNames[op],
                     stats.ops_by_opcode[op]);
    }
    reg.SetHist(p + ".latency_ns", stats.latency_ns);
    total_ops += stats.ops;
    total_failures += stats.failures;
    merged.Merge(stats.latency_ns);
  }
  reg.SetCounter("rdma.completions", total_ops);
  reg.SetCounter("rdma.failures", total_failures);
  reg.SetHist("rdma.latency_ns", merged);
}

void CaptureCacheMetrics(MetricsRegistry& reg, const sim::CacheModel& cache,
                         const std::string& prefix) {
  reg.SetCounter(prefix + ".flushes", cache.flushes());
  reg.SetCounter(prefix + ".discovery_samples", cache.discovery_samples());
}

void EmitFabricCounterEvents(Tracer& tracer, const rdma::Fabric& fabric) {
  tracer.AddCounter("rdma.ops_executed", 0,
                    static_cast<double>(fabric.ops_executed()));
  tracer.AddCounter("rdma.bytes_written", 0,
                    static_cast<double>(fabric.bytes_written()));
  for (const auto& [num, stats] : fabric.qp_stats()) {
    char name[48];
    std::snprintf(name, sizeof(name), "rdma.qp%u.ops", num);
    tracer.AddCounter(name, 0, static_cast<double>(stats.ops));
  }
}

}  // namespace rdx::telemetry
