// Pull-style metrics registry. Subsystems either expose raw counters that
// a capture helper here scrapes (fabric, cache model), or implement their
// own ExportMetrics(reg) when the state lives behind private members
// (sandbox, control plane, health monitor). The registry renders one
// stable-ordered JSON snapshot; histograms reuse common/stats.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"
#include "rdma/fabric.h"
#include "sim/cache.h"
#include "telemetry/span.h"

namespace rdx::telemetry {

class MetricsRegistry {
 public:
  // Monotonic counters.
  void Count(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void SetCounter(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }
  std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  // Point-in-time gauges.
  void SetGauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  // Distributions. Hist() creates on first use so call sites can Add()
  // directly; SetHist() replaces wholesale (for merged snapshots).
  Histogram& Hist(const std::string& name) { return hists_[name]; }
  void SetHist(const std::string& name, const Histogram& h) {
    hists_[name] = h;
  }
  const Histogram* FindHist(const std::string& name) const {
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
  }

  std::size_t counter_count() const { return counters_.size(); }

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  // in lexicographic order (std::map) so snapshots diff cleanly.
  std::string SnapshotJson() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> hists_;
};

// Scrapes the fabric's per-QP accounting into `reg`: per-QP op/failure/
// byte counters, per-opcode breakdown, post-to-completion latency
// histograms, and fabric-wide totals (including one merged latency
// histogram across all QPs).
void CaptureFabricMetrics(MetricsRegistry& reg, const rdma::Fabric& fabric);

// Scrapes the cache-coherence model's visibility-path counters.
void CaptureCacheMetrics(MetricsRegistry& reg, const sim::CacheModel& cache,
                         const std::string& prefix = "cache");

// Drops 'C' (counter-sample) events for the fabric totals and each QP's
// op count onto the timeline, so RDMA traffic shows up as counter tracks
// alongside the spans in the exported trace.
void EmitFabricCounterEvents(Tracer& tracer, const rdma::Fabric& fabric);

}  // namespace rdx::telemetry
