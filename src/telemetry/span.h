// CPU-side span recording: the one merged timeline every telemetry
// source converges into. Control-plane phases and agent pipeline stages
// record scoped spans directly (Begin/End around async callbacks); the
// Collector appends harvested data-plane ring events; the fault injector
// appends instants. The chrome://tracing exporter consumes the result.
//
// Recording is bookkeeping only — it charges no virtual time. The
// data-plane emitters (telemetry/ring.h) are the cost-modeled path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "telemetry/event.h"

namespace rdx::telemetry {

class Tracer {
 public:
  using SpanId = std::size_t;

  explicit Tracer(sim::EventQueue& events) : events_(events) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span at Now(); EndSpan stamps its duration. Begin/End pairs
  // may interleave freely (async pipelines), the id disambiguates.
  SpanId BeginSpan(std::string name, std::uint32_t pid, std::uint32_t tid);
  void EndSpan(SpanId id);
  // Duration of an ended span (0 while still open) — lets callers that
  // keep legacy phase-timing structs populate them from the span data.
  sim::Duration SpanDuration(SpanId id) const;

  // Pre-timed events (harvested ring events, back-computed phases).
  void AddComplete(std::string name, std::uint32_t pid, std::uint32_t tid,
                   sim::SimTime ts, sim::Duration dur, std::string args = "");
  void AddInstant(std::string name, std::uint32_t pid, std::uint32_t tid,
                  std::string args = "");
  void AddInstantAt(std::string name, std::uint32_t pid, std::uint32_t tid,
                    sim::SimTime ts, std::string args = "");
  // Counter sample ('C' event): one series per name/pid.
  void AddCounter(std::string name, std::uint32_t pid, double value);

  // Human-readable process name for a pid, emitted as trace metadata.
  void SetProcessName(std::uint32_t pid, std::string name);

  const std::vector<TimelineEvent>& events() const { return events_list_; }
  const std::vector<std::pair<std::uint32_t, std::string>>& process_names()
      const {
    return process_names_;
  }
  sim::EventQueue& events_queue() { return events_; }
  void Clear() { events_list_.clear(); }

 private:
  sim::EventQueue& events_;
  std::vector<TimelineEvent> events_list_;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
};

}  // namespace rdx::telemetry
