#include "telemetry/span.h"

#include <cstdio>

namespace rdx::telemetry {

Tracer::SpanId Tracer::BeginSpan(std::string name, std::uint32_t pid,
                                 std::uint32_t tid) {
  TimelineEvent ev;
  ev.name = std::move(name);
  ev.ph = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = events_.Now();
  ev.dur = 0;
  events_list_.push_back(std::move(ev));
  return events_list_.size() - 1;
}

void Tracer::EndSpan(SpanId id) {
  if (id >= events_list_.size()) return;
  TimelineEvent& ev = events_list_[id];
  ev.dur = events_.Now() - ev.ts;
}

sim::Duration Tracer::SpanDuration(SpanId id) const {
  if (id >= events_list_.size()) return 0;
  return events_list_[id].dur;
}

void Tracer::AddComplete(std::string name, std::uint32_t pid,
                         std::uint32_t tid, sim::SimTime ts,
                         sim::Duration dur, std::string args) {
  TimelineEvent ev;
  ev.name = std::move(name);
  ev.ph = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.dur = dur;
  ev.args = std::move(args);
  events_list_.push_back(std::move(ev));
}

void Tracer::AddInstant(std::string name, std::uint32_t pid,
                        std::uint32_t tid, std::string args) {
  AddInstantAt(std::move(name), pid, tid, events_.Now(), std::move(args));
}

void Tracer::AddInstantAt(std::string name, std::uint32_t pid,
                          std::uint32_t tid, sim::SimTime ts,
                          std::string args) {
  TimelineEvent ev;
  ev.name = std::move(name);
  ev.ph = 'i';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts = ts;
  ev.args = std::move(args);
  events_list_.push_back(std::move(ev));
}

void Tracer::AddCounter(std::string name, std::uint32_t pid, double value) {
  TimelineEvent ev;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"value\": %.3f", value);
  ev.name = std::move(name);
  ev.ph = 'C';
  ev.pid = pid;
  ev.tid = 0;
  ev.ts = events_.Now();
  ev.args = buf;
  events_list_.push_back(std::move(ev));
}

void Tracer::SetProcessName(std::uint32_t pid, std::string name) {
  for (auto& [p, n] : process_names_) {
    if (p == pid) {
      n = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

}  // namespace rdx::telemetry
