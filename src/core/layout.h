// On-node memory layout that the management stubs publish at boot and the
// remote control plane manipulates over RDMA. Everything the control
// plane touches is a fixed-offset word in one of these structures — this
// file is the wire contract between ctx_init/ctx_register (§3.1) and the
// CodeFlow implementation.
//
//   ControlBlock ("mgmt stub" root, one per sandbox, RDMA-registered):
//     +0x00 magic            "RDXCB\0\0\1"
//     +0x08 epoch            bumped on every committed update
//     +0x10 lock             rdx_mutual_excl word (0 free / owner id)
//     +0x18 hook_table_addr  -> u64[hook_count], each an ImageDesc addr
//     +0x20 hook_count
//     +0x28 meta_xstate_addr -> u64[meta_capacity] XState directory
//     +0x30 meta_capacity
//     +0x38 scratch_addr     extension scratchpad (images, descs, XState)
//     +0x40 scratch_size
//     +0x48 scratch_brk      bump cursor, advanced remotely via FETCH_ADD
//     +0x50 symtab_addr      serialized symbol table (the exposed GOT)
//     +0x58 symtab_len
//     +0x60 doorbell         rdx_cc_event flush-trigger word
//     +0x68 health_addr      -> HealthBlock[hook_count] runtime guardrails
//     +0x70 trace_addr       -> TraceRing (telemetry; 0 = disabled)
//
//   TraceRing (64-aligned, RDMA-registered; the data-plane CPU produces
//   fixed-size trace events into it wait-free, the control plane harvests
//   them with one-sided READs and advances the consumer cursor with
//   FETCH_ADD — the observability analogue of the HealthBlock design):
//     +0x00 magic      "RDXTR\0\0\1"
//     +0x08 capacity   slot count, power of two
//     +0x10 head       producer cursor: absolute count of events ever
//                      emitted (CPU-written; slot = seq % capacity)
//     +0x18 tail       consumer cursor: absolute count of events
//                      harvested (advanced remotely via FETCH_ADD only)
//     +0x20 dropped    events overwritten before harvest (producer never
//                      blocks; overflow overwrites the oldest slot)
//     +0x40 slots      capacity * 32-byte TraceSlot entries
//
//   TraceSlot (32 bytes): the slot's absolute sequence number doubles as
//   tear detection — a harvested slot whose seq does not equal its
//   expected absolute index was torn or corrupted and is discarded with
//   explicit loss accounting, never mis-parsed:
//     +0x00 seq    +0x08 timestamp (virtual-clock ns)
//     +0x10 meta   kind | tid<<8 | code<<16      +0x18 arg
//
//   HealthBlock (one per hook, 64-aligned array; the data-plane CPU
//   updates these words on every execution, the control plane reads them
//   one-sided to detect misbehaving extensions with zero data-plane
//   involvement):
//     +0x00 executions            attempts on a non-empty hook
//     +0x08 traps                 runtime faults (bad access, helper trap)
//     +0x10 fuel_exhaustions      instruction/step budget overruns
//     +0x18 consecutive_failures  reset to 0 on every success
//     +0x20 last_good_desc        ImageDesc of the last image that
//                                 completed an execution successfully
//     +0x28 failsafe_detaches     times the local fail-safe reverted the
//                                 hook to last_good_desc (K consecutive
//                                 failures)
//
//   ImageDesc (16-aligned, in the scratchpad):
//     +0x00 image_addr   +0x08 image_len
//     +0x10 version      +0x18 refcount    +0x20 signature
//
//   Hook slot: one u64 = address of the active ImageDesc (0 = detached).
//   Commit is a single qword write/CAS of this slot — that is what makes
//   rdx_tx atomic with respect to concurrently executing requests.
//
//   Symbol table: u32 count, then {u64 name_hash, u64 value} entries.
#pragma once

#include <cstdint>

namespace rdx::core {

constexpr std::uint64_t kControlBlockMagic = 0x0100424358445221ULL;

// ControlBlock field offsets.
constexpr std::uint64_t kCbMagic = 0x00;
constexpr std::uint64_t kCbEpoch = 0x08;
constexpr std::uint64_t kCbLock = 0x10;
constexpr std::uint64_t kCbHookTableAddr = 0x18;
constexpr std::uint64_t kCbHookCount = 0x20;
constexpr std::uint64_t kCbMetaXstateAddr = 0x28;
constexpr std::uint64_t kCbMetaCapacity = 0x30;
constexpr std::uint64_t kCbScratchAddr = 0x38;
constexpr std::uint64_t kCbScratchSize = 0x40;
constexpr std::uint64_t kCbScratchBrk = 0x48;
constexpr std::uint64_t kCbSymtabAddr = 0x50;
constexpr std::uint64_t kCbSymtabLen = 0x58;
// Doorbell word targeted by rdx_cc_event's injected flush trigger.
constexpr std::uint64_t kCbDoorbell = 0x60;
constexpr std::uint64_t kCbHealthAddr = 0x68;
constexpr std::uint64_t kCbTraceAddr = 0x70;
constexpr std::uint64_t kControlBlockBytes = 0x78;

// TraceRing header field offsets (at trace_addr) and slot geometry. The
// telemetry subsystem (src/telemetry/) produces and harvests these; the
// offsets live here because they are part of the wire contract.
constexpr std::uint64_t kTraceRingMagic = 0x0100525458445221ULL;  // "!RDXTR\0\1"
constexpr std::uint64_t kTrMagic = 0x00;
constexpr std::uint64_t kTrCapacity = 0x08;
constexpr std::uint64_t kTrHead = 0x10;
constexpr std::uint64_t kTrTail = 0x18;
constexpr std::uint64_t kTrDropped = 0x20;
constexpr std::uint64_t kTraceRingHeaderBytes = 0x40;
constexpr std::uint64_t kTsSeq = 0x00;
constexpr std::uint64_t kTsTimestamp = 0x08;
constexpr std::uint64_t kTsMeta = 0x10;
constexpr std::uint64_t kTsArg = 0x18;
constexpr std::uint64_t kTraceSlotBytes = 0x20;

// HealthBlock field offsets (one block per hook at
// health_addr + hook * kHealthBlockBytes).
constexpr std::uint64_t kHbExecutions = 0x00;
constexpr std::uint64_t kHbTraps = 0x08;
constexpr std::uint64_t kHbFuelExhaustions = 0x10;
constexpr std::uint64_t kHbConsecutiveFailures = 0x18;
constexpr std::uint64_t kHbLastGoodDesc = 0x20;
constexpr std::uint64_t kHbFailsafeDetaches = 0x28;
constexpr std::uint64_t kHealthBlockBytes = 0x30;

// CPU-side (and control-plane-side, after an RDMA read) view of one
// hook's HealthBlock.
struct HealthView {
  std::uint64_t executions = 0;
  std::uint64_t traps = 0;
  std::uint64_t fuel_exhaustions = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t last_good_desc = 0;
  std::uint64_t failsafe_detaches = 0;
};

// ImageDesc field offsets.
constexpr std::uint64_t kDescImageAddr = 0x00;
constexpr std::uint64_t kDescImageLen = 0x08;
constexpr std::uint64_t kDescVersion = 0x10;
constexpr std::uint64_t kDescRefcount = 0x18;
// Keyed MAC over the image bytes (0 when signing is disabled); see
// core/gatekeeper.h.
constexpr std::uint64_t kDescSignature = 0x20;
constexpr std::uint64_t kImageDescBytes = 0x28;

// Parsed (CPU-side) view of a ControlBlock; the control plane rebuilds
// the same view from an RDMA read.
struct ControlBlockView {
  std::uint64_t cb_addr = 0;
  std::uint64_t epoch = 0;
  std::uint64_t hook_table_addr = 0;
  std::uint64_t hook_count = 0;
  std::uint64_t meta_xstate_addr = 0;
  std::uint64_t meta_capacity = 0;
  std::uint64_t scratch_addr = 0;
  std::uint64_t scratch_size = 0;
  std::uint64_t symtab_addr = 0;
  std::uint64_t symtab_len = 0;
  std::uint64_t health_addr = 0;
  std::uint64_t trace_addr = 0;
};

// Symbol naming scheme shared by both ends. Helpers are exported as
// "helper:<id>", Wasm host functions as "host:<name>".
std::uint64_t SymbolHash(const char* prefix, std::uint64_t id);
std::uint64_t SymbolHashName(const char* prefix, const char* name);

}  // namespace rdx::core
