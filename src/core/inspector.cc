#include "core/inspector.h"

#include "core/gatekeeper.h"

namespace rdx::core {

void Inspector::Inspect(CodeFlow& flow, int hook,
                        std::function<void(StatusOr<InspectReport>)> done) {
  // Control-plane bookkeeping to check against.
  std::uint64_t expected_desc = 0;
  std::uint64_t expected_version = 0;
  if (auto it = flow.hooks_.find(hook); it != flow.hooks_.end()) {
    expected_desc = it->second.desc_addr;
    expected_version = it->second.version;
  }

  // Step 1: read the hook slot.
  auto slot_buf = cp_.LocalScratch(8);
  if (!slot_buf.ok()) {
    done(slot_buf.status());
    return;
  }
  rdma::SendWr read_slot;
  read_slot.opcode = rdma::Opcode::kRead;
  read_slot.local = {slot_buf.value(), 8, cp_.local_mr_.lkey};
  read_slot.remote_addr =
      flow.remote_view_.hook_table_addr + static_cast<std::uint64_t>(hook) * 8;
  read_slot.rkey = flow.rkey;
  cp_.Post(flow, read_slot, [this, &flow, hook, expected_desc,
                             expected_version, slot_buf = slot_buf.value(),
                             done = std::move(done)](
                                const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("hook slot read failed"));
      return;
    }
    auto& mem = cp_.fabric_.node(cp_.self_).memory();
    const std::uint64_t desc_addr = mem.ReadU64(slot_buf).value();
    InspectReport report;
    report.hook = hook;
    report.deployed = desc_addr != 0;
    report.desc_matches = desc_addr == expected_desc;
    if (desc_addr == 0) {
      done(report);
      return;
    }

    // Step 2: read the ImageDesc.
    auto desc_buf = cp_.LocalScratch(kImageDescBytes);
    if (!desc_buf.ok()) {
      done(desc_buf.status());
      return;
    }
    rdma::SendWr read_desc;
    read_desc.opcode = rdma::Opcode::kRead;
    read_desc.local = {desc_buf.value(), kImageDescBytes, cp_.local_mr_.lkey};
    read_desc.remote_addr = desc_addr;
    read_desc.rkey = flow.rkey;
    cp_.Post(flow, read_desc, [this, &flow, report, expected_version,
                               desc_buf = desc_buf.value(),
                               done = std::move(done)](
                                  const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("ImageDesc read failed"));
        return;
      }
      auto& mem = cp_.fabric_.node(cp_.self_).memory();
      const std::uint64_t image_addr =
          mem.ReadU64(desc_buf + kDescImageAddr).value();
      const std::uint64_t image_len =
          mem.ReadU64(desc_buf + kDescImageLen).value();
      const std::uint64_t version =
          mem.ReadU64(desc_buf + kDescVersion).value();
      const std::uint64_t signature =
          mem.ReadU64(desc_buf + kDescSignature).value();
      report.observed_version = version;
      report.observed_image_len = image_len;
      report.version_matches = version == expected_version;
      if (image_len == 0 || image_len > (64u << 20)) {
        done(report);  // implausible length: checksum_ok stays false
        return;
      }

      // Step 3: read the image bytes and verify.
      auto image_buf = cp_.LocalScratch(image_len);
      if (!image_buf.ok()) {
        done(image_buf.status());
        return;
      }
      rdma::SendWr read_image;
      read_image.opcode = rdma::Opcode::kRead;
      read_image.local = {image_buf.value(),
                          static_cast<std::uint32_t>(image_len),
                          cp_.local_mr_.lkey};
      read_image.remote_addr = image_addr;
      read_image.rkey = flow.rkey;
      cp_.Post(flow, read_image, [this, report, image_len, signature,
                                  image_buf = image_buf.value(),
                                  done = std::move(done)](
                                     const rdma::WorkCompletion& wc3) mutable {
        if (wc3.status != rdma::WcStatus::kSuccess) {
          done(Unavailable("image read failed"));
          return;
        }
        auto& mem = cp_.fabric_.node(cp_.self_).memory();
        Bytes image(image_len);
        (void)mem.Read(image_buf, image);
        if (image.size() >= 4) {
          const std::uint32_t magic = LoadLE<std::uint32_t>(image.data());
          if (magic == 0x4a584452u) {
            report.checksum_ok = bpf::JitImage::Deserialize(image).ok();
          } else if (magic == 0x46574452u) {
            report.checksum_ok = wasm::WasmImage::Deserialize(image).ok();
          }
        }
        if (cp_.config().signing_key != 0) {
          report.signature_ok = VerifyImageSignature(
              image, cp_.config().signing_key, signature);
        }
        done(report);
      });
    });
  });
}

void Inspector::Sweep(
    CodeFlow& flow,
    std::function<void(StatusOr<std::vector<InspectReport>>)> done) {
  std::vector<int> hooks;
  for (const auto& [hook, deployment] : flow.hooks_) {
    if (deployment.desc_addr != 0) hooks.push_back(hook);
  }
  auto unhealthy = std::make_shared<std::vector<InspectReport>>();
  auto remaining = std::make_shared<std::size_t>(hooks.size());
  auto first_error = std::make_shared<Status>();
  if (hooks.empty()) {
    done(std::vector<InspectReport>{});
    return;
  }
  const bool signing = cp_.config().signing_key != 0;
  for (int hook : hooks) {
    Inspect(flow, hook,
            [unhealthy, remaining, first_error, signing,
             done](StatusOr<InspectReport> report) {
              if (!report.ok()) {
                if (first_error->ok()) *first_error = report.status();
              } else if (!report->Healthy(signing)) {
                unhealthy->push_back(report.value());
              }
              if (--*remaining == 0) {
                if (!first_error->ok()) {
                  done(*first_error);
                } else {
                  done(std::move(*unhealthy));
                }
              }
            });
  }
}

}  // namespace rdx::core
