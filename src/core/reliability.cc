#include "core/reliability.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/log.h"
#include "rdma/qp.h"

namespace rdx::core {

// One in-flight reliable deploy. Attempts are numbered; the deadline
// timer and late completions of a superseded attempt are filtered by
// comparing their sequence number against `attempt_seq`.
struct RecoveryManager::AttemptState {
  CodeFlow* flow = nullptr;
  int hook = 0;
  // Runs one injection; calls back with its verdict.
  std::function<void(std::function<void(Status)>)> attempt;
  DeployDone done;
  int max_retries = 0;
  // Generation this deploy is responsible for committing. Captured
  // before the first attempt so retry probes can tell "my commit
  // landed, only the acknowledgement was lost" from "not deployed".
  std::uint64_t target_version = 0;
  int attempts = 0;
  int reconnects = 0;
  bool adopted = false;
  bool finished = false;
  sim::SimTime t0 = 0;
  int attempt_seq = 0;
  sim::EventQueue::EventId deadline_id = 0;
};

void RecoveryManager::DeployReliably(CodeFlow& flow, const bpf::Program& prog,
                                     int hook, DeployDone done,
                                     int max_retries) {
  CodeFlow* f = &flow;
  ControlPlane& cp = cp_;
  Start(
      flow, hook,
      [f, &cp, prog, hook](std::function<void(Status)> verdict) {
        cp.InjectExtension(*f, prog, hook,
                           [verdict = std::move(verdict)](
                               StatusOr<InjectTrace> r) { verdict(r.status()); });
      },
      std::move(done), max_retries);
}

void RecoveryManager::DeployWasmReliably(CodeFlow& flow,
                                         const wasm::FilterModule& module,
                                         int hook, DeployDone done,
                                         int max_retries) {
  CodeFlow* f = &flow;
  ControlPlane& cp = cp_;
  Start(
      flow, hook,
      [f, &cp, module, hook](std::function<void(Status)> verdict) {
        cp.InjectWasmFilter(
            *f, module, hook,
            [verdict = std::move(verdict)](StatusOr<InjectTrace> r) {
              verdict(r.status());
            });
      },
      std::move(done), max_retries);
}

void RecoveryManager::Start(
    CodeFlow& flow, int hook,
    std::function<void(std::function<void(Status)>)> attempt, DeployDone done,
    int max_retries) {
  auto st = std::make_shared<AttemptState>();
  st->flow = &flow;
  st->hook = hook;
  st->attempt = std::move(attempt);
  st->done = std::move(done);
  st->max_retries = max_retries >= 0 ? max_retries : policy_.max_retries;
  st->target_version = flow.HookVersion(hook) + 1;
  st->t0 = cp_.events().Now();
  RunAttempt(std::move(st));
}

void RecoveryManager::RunAttempt(std::shared_ptr<AttemptState> st) {
  if (st->finished) return;
  ++st->attempts;
  const int seq = ++st->attempt_seq;
  st->deadline_id =
      cp_.events().ScheduleAfter(policy_.attempt_deadline, [this, st, seq] {
        if (st->finished || seq != st->attempt_seq) return;
        // Invalidate the in-flight attempt: its completion, if it ever
        // arrives, must not race the retry.
        ++st->attempt_seq;
        HandleFailure(st, Unavailable("deploy attempt timed out"));
      });
  st->attempt([this, st, seq](Status s) {
    if (st->finished || seq != st->attempt_seq) return;
    cp_.events().Cancel(st->deadline_id);
    if (s.ok()) {
      FinishOk(st);
    } else {
      HandleFailure(st, std::move(s));
    }
  });
}

void RecoveryManager::HandleFailure(std::shared_ptr<AttemptState> st,
                                    Status s) {
  if (st->finished) return;
  // Deterministic failures do not heal with time: a quarantined program
  // (kPermissionDenied), a malformed one (kInvalidArgument), or an
  // exhausted remote scratchpad (kScratchExhausted) would fail forever.
  // Abort immediately instead of burning the backoff schedule.
  if (s.code() == StatusCode::kScratchExhausted ||
      s.code() == StatusCode::kPermissionDenied ||
      s.code() == StatusCode::kInvalidArgument) {
    st->finished = true;
    RDX_DEBUG("recovery: hook %d on node %u non-retryable failure: %s",
              st->hook, st->flow->node(), s.message().c_str());
    st->done(std::move(s));
    return;
  }
  if (st->attempts > st->max_retries) {
    st->finished = true;
    RDX_DEBUG("recovery: hook %d on node %u gave up after %d attempts: %s",
              st->hook, st->flow->node(), st->attempts, s.message().c_str());
    st->done(std::move(s));
    return;
  }
  RDX_DEBUG("recovery: hook %d on node %u attempt %d failed (%s), recovering",
            st->hook, st->flow->node(), st->attempts, s.message().c_str());

  auto probe_then_backoff = [this, st] {
    if (st->finished) return;
    // Idempotency probe: did the failed attempt actually commit? If the
    // remote hook slot already carries our target generation, adopt it
    // rather than deploying the same version twice.
    cp_.ProbeHook(*st->flow, st->hook, [this,
                                       st](StatusOr<ControlPlane::HookProbe>
                                               probe) {
      if (st->finished) return;
      if (probe.ok() && probe.value().desc_addr != 0 &&
          probe.value().version == st->target_version) {
        auto& dep = st->flow->hooks_[st->hook];
        if (dep.desc_addr != 0 && dep.desc_addr != probe.value().desc_addr) {
          dep.desc_history.push_back(CodeFlow::PastImage{
              dep.desc_addr, dep.region_capacity + kImageDescBytes,
              dep.fingerprint});
        }
        dep.desc_addr = probe.value().desc_addr;
        // The image region behind the adopted desc is unknown; force the
        // next update onto a fresh transactional allocation.
        dep.image_addr = 0;
        dep.region_capacity = 0;
        dep.version = probe.value().version;
        st->adopted = true;
        RDX_DEBUG("recovery: hook %d on node %u adopted committed v%llu",
                  st->hook, st->flow->node(),
                  (unsigned long long)probe.value().version);
        // Data-plane visibility for the adopted commit (the original
        // attempt may have died before its flush).
        cp_.CcEvent(*st->flow, st->hook, [this, st](Status) {
          if (!st->finished) FinishOk(st);
        });
        return;
      }
      Backoff(st);
    });
  };

  rdma::QueuePair* qp = st->flow->qp;
  if (qp == nullptr || qp->state() != rdma::QpState::kRts) {
    ++st->reconnects;
    cp_.ReconnectCodeFlow(*st->flow,
                          [st, probe_then_backoff, this](Status rs) {
                            if (st->finished) return;
                            if (!rs.ok()) {
                              // Node still unreachable; keep backing off —
                              // the next failure reconnects again.
                              Backoff(st);
                              return;
                            }
                            probe_then_backoff();
                          });
    return;
  }
  probe_then_backoff();
}

void RecoveryManager::Backoff(std::shared_ptr<AttemptState> st) {
  if (st->finished) return;
  if (st->attempts > st->max_retries) {
    st->finished = true;
    st->done(Unavailable("deploy retries exhausted"));
    return;
  }
  cp_.events().ScheduleAfter(BackoffDelay(st->attempts),
                             [this, st] { RunAttempt(st); });
}

void RecoveryManager::FinishOk(std::shared_ptr<AttemptState> st) {
  st->finished = true;
  RecoveryOutcome out;
  out.attempts = st->attempts;
  out.reconnects = st->reconnects;
  out.adopted = st->adopted;
  out.version = st->flow->HookVersion(st->hook);
  out.elapsed = cp_.events().Now() - st->t0;
  st->done(std::move(out));
}

sim::Duration RecoveryManager::BackoffDelay(int attempt) {
  double delay = static_cast<double>(policy_.base_backoff) *
                 std::pow(policy_.backoff_multiplier, attempt - 1);
  // Deterministic jitter: scale by [1-j, 1+j) from the seeded stream.
  delay *= 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  return static_cast<sim::Duration>(std::max(delay, 1.0));
}

// ---- HealthMonitor -------------------------------------------------------

void HealthMonitor::Watch(CodeFlow& flow) {
  WatchedFlow wf;
  wf.flow = &flow;
  wf.snapshots.assign(flow.remote_view().hook_count, HookSnapshot{});
  watched_.push_back(std::move(wf));
}

void HealthMonitor::Start() {
  if (running_) return;
  running_ = true;
  // The closure self-references through a weak_ptr; pending events and
  // continuations hold the strong ref, so the loop frees itself on Stop.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, weak] {
    auto self = weak.lock();
    if (!running_ || !self) return;
    PollNow([this, self] {
      if (!running_) return;
      next_tick_ =
          cp_.events().ScheduleAfter(policy_.poll_period, [self] { (*self)(); });
    });
  };
  next_tick_ =
      cp_.events().ScheduleAfter(policy_.poll_period, [tick] { (*tick)(); });
}

void HealthMonitor::Stop() {
  if (!running_) return;
  running_ = false;
  cp_.events().Cancel(next_tick_);
}

void HealthMonitor::PollNow(std::function<void()> done) {
  ++polls_;
  auto finish = std::make_shared<std::function<void()>>(
      done ? std::move(done) : std::function<void()>([] {}));
  if (watched_.empty()) {
    (*finish)();
    return;
  }
  auto remaining = std::make_shared<std::size_t>(watched_.size());
  for (WatchedFlow& wf : watched_) {
    PollFlow(wf, [remaining, finish] {
      if (--*remaining == 0) (*finish)();
    });
  }
}

void HealthMonitor::PollFlow(WatchedFlow& wf, std::function<void()> done) {
  cp_.ReadHealthAll(
      *wf.flow,
      [this, &wf, done = std::move(done)](
          StatusOr<std::vector<HealthView>> views) mutable {
        if (!views.ok()) {
          // Unreachable node — liveness is the lease layer's problem,
          // not the guardrail monitor's.
          done();
          return;
        }
        if (wf.snapshots.size() < views->size()) {
          wf.snapshots.resize(views->size());
        }
        if (views->empty()) {
          done();
          return;
        }
        auto remaining = std::make_shared<std::size_t>(views->size());
        auto finish = std::make_shared<std::function<void()>>(std::move(done));
        for (std::size_t i = 0; i < views->size(); ++i) {
          Inspect(wf, static_cast<int>(i), (*views)[i], [remaining, finish] {
            if (--*remaining == 0) (*finish)();
          });
        }
      });
}

void HealthMonitor::Inspect(WatchedFlow& wf, int hook, const HealthView& now,
                            std::function<void()> done) {
  HookSnapshot& snap = wf.snapshots[hook];
  const HealthView last = snap.last;
  snap.last = now;
  const std::uint64_t d_traps = now.traps - last.traps;
  const std::uint64_t d_fuel = now.fuel_exhaustions - last.fuel_exhaustions;
  const std::uint64_t d_failsafe =
      now.failsafe_detaches - last.failsafe_detaches;
  // The consecutive counter alone is not evidence: it can sit stale above
  // the threshold after a quarantine already fixed the hook. Require
  // failure *progress* within this poll interval.
  const bool fresh_failures = d_traps > 0 || d_fuel > 0;

  std::string reason;
  if (d_failsafe > 0) {
    reason = "local fail-safe fired";
  } else if (fresh_failures &&
             now.consecutive_failures >= policy_.consecutive_threshold) {
    reason = "crash-loop";
  } else if (d_traps >= policy_.trap_delta_threshold) {
    reason = "trap storm";
  } else if (d_fuel >= policy_.fuel_delta_threshold) {
    reason = "fuel exhaustion storm";
  }
  if (reason.empty() || snap.quarantine_inflight) {
    done();
    return;
  }

  auto it = wf.flow->hooks_.find(hook);
  const std::uint64_t bad_desc =
      it == wf.flow->hooks_.end() ? 0 : it->second.desc_addr;
  if (bad_desc == 0) {
    // Nothing this control plane deployed there — record only.
    records_.push_back(QuarantineRecord{wf.flow->node(), hook, reason, 0, 0,
                                        false, cp_.events().Now()});
    done();
    return;
  }
  // Revert target: the last image that ever completed on this hook. If
  // the misbehaving image IS that image, detach outright.
  const std::uint64_t good_desc =
      now.last_good_desc == bad_desc ? 0 : now.last_good_desc;

  QuarantineRecord rec{wf.flow->node(), hook,     reason, bad_desc,
                       good_desc,       false, cp_.events().Now()};
  if (!policy_.auto_quarantine) {
    records_.push_back(std::move(rec));
    done();
    return;
  }
  snap.quarantine_inflight = true;
  RDX_DEBUG("guardrail: node %u hook %d %s -> quarantine (bad=%llx good=%llx)",
            wf.flow->node(), hook, reason.c_str(),
            (unsigned long long)bad_desc, (unsigned long long)good_desc);
  cp_.QuarantineHook(
      *wf.flow, hook, bad_desc, good_desc,
      [this, &wf, hook, rec = std::move(rec),
       done = std::move(done)](Status s) mutable {
        wf.snapshots[hook].quarantine_inflight = false;
        rec.quarantined = s.ok();
        records_.push_back(std::move(rec));
        done();
      });
}

void HealthMonitor::ExportMetrics(telemetry::MetricsRegistry& reg) const {
  reg.SetCounter("monitor.polls", polls_);
  reg.SetCounter("monitor.detections", records_.size());
  std::uint64_t quarantines = 0;
  for (const QuarantineRecord& rec : records_) {
    if (rec.quarantined) ++quarantines;
  }
  reg.SetCounter("monitor.quarantines", quarantines);
  reg.SetCounter("monitor.watched_flows", watched_.size());
  // Last harvested snapshot of every watched hook — the monitor's RDMA
  // view of the remote HealthBlocks, which may lag the sandbox's own
  // (local) counters by up to one poll period.
  char key[96];
  for (const WatchedFlow& wf : watched_) {
    const unsigned node = wf.flow->node();
    for (std::size_t h = 0; h < wf.snapshots.size(); ++h) {
      const HealthView& hv = wf.snapshots[h].last;
      if (hv.executions == 0 && hv.traps == 0 && hv.fuel_exhaustions == 0 &&
          hv.failsafe_detaches == 0) {
        continue;
      }
      std::snprintf(key, sizeof(key), "health.node%u.hook%zu.executions",
                    node, h);
      reg.SetCounter(key, hv.executions);
      std::snprintf(key, sizeof(key), "health.node%u.hook%zu.traps", node, h);
      reg.SetCounter(key, hv.traps);
      std::snprintf(key, sizeof(key),
                    "health.node%u.hook%zu.fuel_exhaustions", node, h);
      reg.SetCounter(key, hv.fuel_exhaustions);
      std::snprintf(key, sizeof(key),
                    "health.node%u.hook%zu.failsafe_detaches", node, h);
      reg.SetCounter(key, hv.failsafe_detaches);
    }
  }
}

}  // namespace rdx::core
