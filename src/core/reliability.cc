#include "core/reliability.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.h"
#include "rdma/qp.h"

namespace rdx::core {

// One in-flight reliable deploy. Attempts are numbered; the deadline
// timer and late completions of a superseded attempt are filtered by
// comparing their sequence number against `attempt_seq`.
struct RecoveryManager::AttemptState {
  CodeFlow* flow = nullptr;
  int hook = 0;
  // Runs one injection; calls back with its verdict.
  std::function<void(std::function<void(Status)>)> attempt;
  DeployDone done;
  int max_retries = 0;
  // Generation this deploy is responsible for committing. Captured
  // before the first attempt so retry probes can tell "my commit
  // landed, only the acknowledgement was lost" from "not deployed".
  std::uint64_t target_version = 0;
  int attempts = 0;
  int reconnects = 0;
  bool adopted = false;
  bool finished = false;
  sim::SimTime t0 = 0;
  int attempt_seq = 0;
  sim::EventQueue::EventId deadline_id = 0;
};

void RecoveryManager::DeployReliably(CodeFlow& flow, const bpf::Program& prog,
                                     int hook, DeployDone done,
                                     int max_retries) {
  CodeFlow* f = &flow;
  ControlPlane& cp = cp_;
  Start(
      flow, hook,
      [f, &cp, prog, hook](std::function<void(Status)> verdict) {
        cp.InjectExtension(*f, prog, hook,
                           [verdict = std::move(verdict)](
                               StatusOr<InjectTrace> r) { verdict(r.status()); });
      },
      std::move(done), max_retries);
}

void RecoveryManager::DeployWasmReliably(CodeFlow& flow,
                                         const wasm::FilterModule& module,
                                         int hook, DeployDone done,
                                         int max_retries) {
  CodeFlow* f = &flow;
  ControlPlane& cp = cp_;
  Start(
      flow, hook,
      [f, &cp, module, hook](std::function<void(Status)> verdict) {
        cp.InjectWasmFilter(
            *f, module, hook,
            [verdict = std::move(verdict)](StatusOr<InjectTrace> r) {
              verdict(r.status());
            });
      },
      std::move(done), max_retries);
}

void RecoveryManager::Start(
    CodeFlow& flow, int hook,
    std::function<void(std::function<void(Status)>)> attempt, DeployDone done,
    int max_retries) {
  auto st = std::make_shared<AttemptState>();
  st->flow = &flow;
  st->hook = hook;
  st->attempt = std::move(attempt);
  st->done = std::move(done);
  st->max_retries = max_retries >= 0 ? max_retries : policy_.max_retries;
  st->target_version = flow.HookVersion(hook) + 1;
  st->t0 = cp_.events().Now();
  RunAttempt(std::move(st));
}

void RecoveryManager::RunAttempt(std::shared_ptr<AttemptState> st) {
  if (st->finished) return;
  ++st->attempts;
  const int seq = ++st->attempt_seq;
  st->deadline_id =
      cp_.events().ScheduleAfter(policy_.attempt_deadline, [this, st, seq] {
        if (st->finished || seq != st->attempt_seq) return;
        // Invalidate the in-flight attempt: its completion, if it ever
        // arrives, must not race the retry.
        ++st->attempt_seq;
        HandleFailure(st, Unavailable("deploy attempt timed out"));
      });
  st->attempt([this, st, seq](Status s) {
    if (st->finished || seq != st->attempt_seq) return;
    cp_.events().Cancel(st->deadline_id);
    if (s.ok()) {
      FinishOk(st);
    } else {
      HandleFailure(st, std::move(s));
    }
  });
}

void RecoveryManager::HandleFailure(std::shared_ptr<AttemptState> st,
                                    Status s) {
  if (st->finished) return;
  if (st->attempts > st->max_retries) {
    st->finished = true;
    RDX_DEBUG("recovery: hook %d on node %u gave up after %d attempts: %s",
              st->hook, st->flow->node(), st->attempts, s.message().c_str());
    st->done(std::move(s));
    return;
  }
  RDX_DEBUG("recovery: hook %d on node %u attempt %d failed (%s), recovering",
            st->hook, st->flow->node(), st->attempts, s.message().c_str());

  auto probe_then_backoff = [this, st] {
    if (st->finished) return;
    // Idempotency probe: did the failed attempt actually commit? If the
    // remote hook slot already carries our target generation, adopt it
    // rather than deploying the same version twice.
    cp_.ProbeHook(*st->flow, st->hook, [this,
                                       st](StatusOr<ControlPlane::HookProbe>
                                               probe) {
      if (st->finished) return;
      if (probe.ok() && probe.value().desc_addr != 0 &&
          probe.value().version == st->target_version) {
        auto& dep = st->flow->hooks_[st->hook];
        if (dep.desc_addr != 0 && dep.desc_addr != probe.value().desc_addr) {
          dep.desc_history.push_back(dep.desc_addr);
        }
        dep.desc_addr = probe.value().desc_addr;
        // The image region behind the adopted desc is unknown; force the
        // next update onto a fresh transactional allocation.
        dep.image_addr = 0;
        dep.region_capacity = 0;
        dep.version = probe.value().version;
        st->adopted = true;
        RDX_DEBUG("recovery: hook %d on node %u adopted committed v%llu",
                  st->hook, st->flow->node(),
                  (unsigned long long)probe.value().version);
        // Data-plane visibility for the adopted commit (the original
        // attempt may have died before its flush).
        cp_.CcEvent(*st->flow, st->hook, [this, st](Status) {
          if (!st->finished) FinishOk(st);
        });
        return;
      }
      Backoff(st);
    });
  };

  rdma::QueuePair* qp = st->flow->qp;
  if (qp == nullptr || qp->state() != rdma::QpState::kRts) {
    ++st->reconnects;
    cp_.ReconnectCodeFlow(*st->flow,
                          [st, probe_then_backoff, this](Status rs) {
                            if (st->finished) return;
                            if (!rs.ok()) {
                              // Node still unreachable; keep backing off —
                              // the next failure reconnects again.
                              Backoff(st);
                              return;
                            }
                            probe_then_backoff();
                          });
    return;
  }
  probe_then_backoff();
}

void RecoveryManager::Backoff(std::shared_ptr<AttemptState> st) {
  if (st->finished) return;
  if (st->attempts > st->max_retries) {
    st->finished = true;
    st->done(Unavailable("deploy retries exhausted"));
    return;
  }
  cp_.events().ScheduleAfter(BackoffDelay(st->attempts),
                             [this, st] { RunAttempt(st); });
}

void RecoveryManager::FinishOk(std::shared_ptr<AttemptState> st) {
  st->finished = true;
  RecoveryOutcome out;
  out.attempts = st->attempts;
  out.reconnects = st->reconnects;
  out.adopted = st->adopted;
  out.version = st->flow->HookVersion(st->hook);
  out.elapsed = cp_.events().Now() - st->t0;
  st->done(std::move(out));
}

sim::Duration RecoveryManager::BackoffDelay(int attempt) {
  double delay = static_cast<double>(policy_.base_backoff) *
                 std::pow(policy_.backoff_multiplier, attempt - 1);
  // Deterministic jitter: scale by [1-j, 1+j) from the seeded stream.
  delay *= 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  return static_cast<sim::Duration>(std::max(delay, 1.0));
}

}  // namespace rdx::core
