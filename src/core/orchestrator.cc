#include "core/orchestrator.h"

#include <cstdio>

#include "core/reliability.h"

namespace rdx::core {

namespace {

Status LineError(int line_no, const std::string& msg) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "line %d: %s", line_no, msg.c_str());
  return InvalidArgument(buf);
}

std::vector<std::string> SplitWords(std::string_view line) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(
                                   line[j]))) {
      ++j;
    }
    if (j > i) words.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return words;
}

// Parses "key=value" into (key, value); empty key on mismatch.
std::pair<std::string, std::string> KeyValue(const std::string& word) {
  const std::size_t eq = word.find('=');
  if (eq == std::string::npos || eq == 0) return {"", ""};
  return {word.substr(0, eq), word.substr(eq + 1)};
}

}  // namespace

StatusOr<OrchestrationPlan> ParseOrchestration(std::string_view text) {
  OrchestrationPlan plan;
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t eol = text.find('\n', start);
    std::string_view line = text.substr(
        start,
        eol == std::string_view::npos ? text.size() - start : eol - start);
    start = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;

    const std::string& verb = words[0];
    if (verb == "extension") {
      if (words.size() < 2) return LineError(line_no, "extension needs a name");
      ExtensionDecl decl;
      decl.name = words[1];
      for (std::size_t w = 2; w < words.size(); ++w) {
        auto [key, value] = KeyValue(words[w]);
        if (key == "kind") {
          if (value == "ebpf") {
            decl.is_wasm = false;
          } else if (value == "wasm") {
            decl.is_wasm = true;
          } else {
            return LineError(line_no, "kind must be ebpf or wasm");
          }
        } else if (key == "hook") {
          decl.hook = std::atoi(value.c_str());
        } else {
          return LineError(line_no, "unknown extension attribute '" + key +
                                        "'");
        }
      }
      if (plan.extensions.count(decl.name) != 0) {
        return LineError(line_no, "duplicate extension '" + decl.name + "'");
      }
      plan.extensions.emplace(decl.name, std::move(decl));
    } else if (verb == "group") {
      if (words.size() < 3) return LineError(line_no, "group needs nodes=");
      GroupDecl decl;
      decl.name = words[1];
      auto [key, value] = KeyValue(words[2]);
      if (key != "nodes") return LineError(line_no, "group needs nodes=");
      std::size_t pos = 0;
      while (pos < value.size()) {
        std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos) comma = value.size();
        const std::string id = value.substr(pos, comma - pos);
        if (id.empty() ||
            id.find_first_not_of("0123456789") != std::string::npos) {
          return LineError(line_no, "bad node id '" + id + "'");
        }
        decl.nodes.push_back(std::strtoull(id.c_str(), nullptr, 10));
        pos = comma + 1;
      }
      if (decl.nodes.empty()) return LineError(line_no, "empty group");
      if (words.size() > 3) {
        return LineError(line_no,
                         "unknown group attribute '" + words[3] + "'");
      }
      if (plan.groups.count(decl.name) != 0) {
        return LineError(line_no, "duplicate group '" + decl.name + "'");
      }
      plan.groups.emplace(decl.name, std::move(decl));
    } else if (verb == "deploy" || verb == "rollback" || verb == "detach") {
      if (words.size() < 3) {
        return LineError(line_no, verb + " needs an extension and a group");
      }
      Action action;
      action.kind = verb == "deploy"     ? ActionKind::kDeploy
                    : verb == "rollback" ? ActionKind::kRollback
                                         : ActionKind::kDetach;
      action.extension = words[1];
      for (std::size_t w = 2; w < words.size(); ++w) {
        auto [key, value] = KeyValue(words[w]);
        if (key == "to" || key == "from") {
          action.group = value;
        } else if (key == "strategy") {
          if (value == "broadcast") {
            action.strategy = RolloutStrategy::kBroadcast;
          } else if (value == "rolling") {
            action.strategy = RolloutStrategy::kRolling;
          } else if (value == "parallel") {
            action.strategy = RolloutStrategy::kParallel;
          } else {
            return LineError(line_no, "unknown strategy '" + value + "'");
          }
        } else if (key == "consistency") {
          if (value == "bbu") {
            action.consistency = ConsistencyLevel::kBbu;
          } else if (value == "eventual") {
            action.consistency = ConsistencyLevel::kEventual;
          } else {
            return LineError(line_no, "unknown consistency '" + value + "'");
          }
        } else if (key == "max_retries" && verb == "deploy") {
          if (value.empty() ||
              value.find_first_not_of("0123456789") != std::string::npos) {
            return LineError(line_no,
                             "max_retries must be a non-negative integer");
          }
          action.max_retries = std::atoi(value.c_str());
        } else if (key == "on_failure" && verb == "deploy") {
          if (value == "abort") {
            action.on_failure = OnFailure::kAbort;
          } else if (value == "skip") {
            action.on_failure = OnFailure::kSkip;
          } else if (value == "rollback") {
            action.on_failure = OnFailure::kRollback;
          } else {
            return LineError(line_no, "unknown on_failure '" + value + "'");
          }
        } else {
          return LineError(line_no, "unknown attribute '" + key + "'");
        }
      }
      if (action.group.empty()) {
        return LineError(line_no, verb + " needs to=/from= a group");
      }
      plan.actions.push_back(std::move(action));
    } else {
      return LineError(line_no, "unknown directive '" + verb + "'");
    }
  }
  return plan;
}

void Orchestrator::RegisterProgram(std::string name, bpf::Program prog) {
  programs_.emplace(std::move(name), std::move(prog));
}

void Orchestrator::RegisterFilter(std::string name,
                                  wasm::FilterModule module) {
  filters_.emplace(std::move(name), std::move(module));
}

Status Orchestrator::ValidatePlan(const OrchestrationPlan& plan) const {
  for (const auto& [name, group] : plan.groups) {
    for (std::size_t node : group.nodes) {
      if (node >= flows_.size()) {
        return InvalidArgument("group '" + name + "' references node " +
                               std::to_string(node) + " but only " +
                               std::to_string(flows_.size()) +
                               " nodes are registered");
      }
    }
  }
  for (const Action& action : plan.actions) {
    auto ext = plan.extensions.find(action.extension);
    if (ext == plan.extensions.end()) {
      return InvalidArgument("action references undeclared extension '" +
                             action.extension + "'");
    }
    if (plan.groups.count(action.group) == 0) {
      return InvalidArgument("action references undeclared group '" +
                             action.group + "'");
    }
    if (action.kind == ActionKind::kDeploy) {
      const ExtensionDecl& decl = ext->second;
      if (!decl.is_wasm && programs_.count(decl.name) == 0) {
        return FailedPrecondition("no program registered for '" +
                                  decl.name + "'");
      }
      if (decl.is_wasm && filters_.count(decl.name) == 0) {
        return FailedPrecondition("no filter registered for '" + decl.name +
                                  "'");
      }
    }
    // Hook range checks against each target node.
    for (std::size_t node : plan.groups.at(action.group).nodes) {
      const auto hook_count =
          static_cast<int>(flows_.at(node)->remote_view().hook_count);
      if (ext->second.hook < 0 || ext->second.hook >= hook_count) {
        return OutOfRange("hook " + std::to_string(ext->second.hook) +
                          " out of range on node " + std::to_string(node));
      }
    }
  }
  return OkStatus();
}

void Orchestrator::Execute(
    const OrchestrationPlan& plan, UpdateBarrier* barrier,
    std::function<void(StatusOr<OrchestrationReport>)> done) {
  Status valid = ValidatePlan(plan);
  if (!valid.ok()) {
    done(valid);
    return;
  }
  auto report = std::make_shared<OrchestrationReport>();
  // Own a copy: the caller's plan need not outlive the async execution.
  auto plan_copy = std::make_shared<const OrchestrationPlan>(plan);
  auto wrapped = [plan_copy, done = std::move(done)](
                     StatusOr<OrchestrationReport> r) { done(std::move(r)); };
  RunAction(*plan_copy, 0, barrier, report, std::move(wrapped),
            cp_.events().Now());
}

void Orchestrator::RunAction(
    const OrchestrationPlan& plan, std::size_t index, UpdateBarrier* barrier,
    std::shared_ptr<OrchestrationReport> report,
    std::function<void(StatusOr<OrchestrationReport>)> done,
    sim::SimTime t0) {
  if (index >= plan.actions.size()) {
    report->total = cp_.events().Now() - t0;
    done(*report);
    return;
  }
  const Action& action = plan.actions[index];
  const ExtensionDecl& decl = plan.extensions.at(action.extension);
  const GroupDecl& group = plan.groups.at(action.group);
  const sim::SimTime action_start = cp_.events().Now();

  auto next = [this, &plan, index, barrier, report, done, t0,
               action_start](const std::string& what, Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    char line[192];
    std::snprintf(line, sizeof(line), "%s (%.1f us)", what.c_str(),
                  sim::ToMicros(cp_.events().Now() - action_start));
    report->log.emplace_back(line);
    ++report->actions_executed;
    RunAction(plan, index + 1, barrier, report, std::move(done), t0);
  };

  switch (action.kind) {
    case ActionKind::kDeploy: {
      std::vector<CodeFlow*> targets;
      for (std::size_t node : group.nodes) targets.push_back(flows_[node]);
      const std::string what = "deploy " + decl.name + " -> " + group.name;

      if (action.strategy == RolloutStrategy::kBroadcast) {
        auto collective =
            std::make_shared<CollectiveCodeFlow>(cp_, targets);
        UpdateBarrier* use_barrier =
            action.consistency == ConsistencyLevel::kBbu ? barrier : nullptr;
        auto on_done = [collective, next,
                        what](StatusOr<BroadcastResult> r) mutable {
          next(what + " [broadcast]", r.ok() ? OkStatus() : r.status());
        };
        if (decl.is_wasm) {
          const wasm::FilterModule& module = filters_.at(decl.name);
          std::vector<const wasm::FilterModule*> per_node(targets.size(),
                                                          &module);
          collective->BroadcastWasm(per_node, decl.hook, use_barrier,
                                    std::move(on_done));
        } else {
          collective->Broadcast(programs_.at(decl.name), decl.hook,
                                use_barrier, std::move(on_done));
        }
        return;
      }

      // rolling / parallel: per-node injections through DeployOne (which
      // engages the recovery layer when the action asks for retries).
      auto succeeded = std::make_shared<std::vector<CodeFlow*>>();
      auto failed = std::make_shared<std::size_t>(0);
      const char* tag = action.strategy == RolloutStrategy::kRolling
                            ? " [rolling]"
                            : " [parallel]";
      // Completes the action once its nodes are settled, applying the
      // failure policy to whatever `failed`/`succeeded` accumulated.
      auto settle = [this, next, what, tag, report, succeeded, failed, &decl,
                     &action](Status abort_status) mutable {
        if (*failed == 0) {
          next(what + tag, OkStatus());
          return;
        }
        report->nodes_failed += *failed;
        ++report->actions_degraded;
        switch (action.on_failure) {
          case OnFailure::kAbort:
            next(what + tag, abort_status);
            return;
          case OnFailure::kSkip: {
            char buf[64];
            std::snprintf(buf, sizeof(buf), " skipped %zu failed node(s)",
                          *failed);
            next(what + tag + buf, OkStatus());
            return;
          }
          case OnFailure::kRollback:
            RollbackWave(*succeeded, decl.hook,
                         [next, what, tag, report,
                          failed](std::size_t reverted) mutable {
                           report->nodes_rolled_back += reverted;
                           char buf[96];
                           std::snprintf(buf, sizeof(buf),
                                         " %zu node(s) failed; rolled back "
                                         "%zu",
                                         *failed, reverted);
                           next(what + tag + buf, OkStatus());
                         });
            return;
        }
      };

      if (action.strategy == RolloutStrategy::kParallel) {
        auto remaining = std::make_shared<std::size_t>(targets.size());
        auto first_error = std::make_shared<Status>();
        for (CodeFlow* flow : targets) {
          DeployOne(decl, action, flow,
                    [flow, remaining, first_error, succeeded, failed,
                     settle](Status s) mutable {
                      if (s.ok()) {
                        succeeded->push_back(flow);
                      } else {
                        ++*failed;
                        if (first_error->ok()) *first_error = s;
                      }
                      if (--*remaining == 0) settle(*first_error);
                    });
        }
        return;
      }
      // Rolling: strictly one node at a time. abort stops the wave at the
      // first failure; skip/rollback walk the whole group so the policy
      // sees the full picture.
      auto roll = std::make_shared<std::function<void(std::size_t)>>();
      std::weak_ptr<std::function<void(std::size_t)>> weak = roll;
      *roll = [this, targets, &decl, &action, succeeded, failed, settle,
               weak](std::size_t i) mutable {
        auto self = weak.lock();
        if (!self) return;
        if (i >= targets.size()) {
          settle(OkStatus());
          return;
        }
        DeployOne(decl, action, targets[i],
                  [i, targets, succeeded, failed, settle, self,
                   &action](Status s) mutable {
                    if (s.ok()) {
                      succeeded->push_back(targets[i]);
                      (*self)(i + 1);
                      return;
                    }
                    ++*failed;
                    if (action.on_failure == OnFailure::kAbort) {
                      settle(s);
                      return;
                    }
                    (*self)(i + 1);
                  });
      };
      (*roll)(0);
      return;
    }
    case ActionKind::kRollback:
    case ActionKind::kDetach: {
      const bool rollback = action.kind == ActionKind::kRollback;
      const std::string what = std::string(rollback ? "rollback " : "detach ") +
                               decl.name + " @ " + group.name;
      auto remaining = std::make_shared<std::size_t>(group.nodes.size());
      auto first_error = std::make_shared<Status>();
      for (std::size_t node : group.nodes) {
        auto on_node = [remaining, first_error, next, what](Status s) mutable {
          if (!s.ok() && first_error->ok()) *first_error = s;
          if (--*remaining == 0) next(what, *first_error);
        };
        if (rollback) {
          cp_.Rollback(*flows_[node], decl.hook, on_node);
        } else {
          cp_.Detach(*flows_[node], decl.hook, on_node);
        }
      }
      return;
    }
  }
}

void Orchestrator::DeployOne(const ExtensionDecl& decl, const Action& action,
                             CodeFlow* flow,
                             std::function<void(Status)> done) {
  if (recovery_ != nullptr && action.max_retries > 0) {
    auto adapt = [done = std::move(done)](StatusOr<RecoveryOutcome> r) {
      done(r.ok() ? OkStatus() : r.status());
    };
    if (decl.is_wasm) {
      recovery_->DeployWasmReliably(*flow, filters_.at(decl.name), decl.hook,
                                    std::move(adapt), action.max_retries);
    } else {
      recovery_->DeployReliably(*flow, programs_.at(decl.name), decl.hook,
                                std::move(adapt), action.max_retries);
    }
    return;
  }
  auto adapt = [done = std::move(done)](StatusOr<InjectTrace> r) {
    done(r.ok() ? OkStatus() : r.status());
  };
  if (decl.is_wasm) {
    cp_.InjectWasmFilter(*flow, filters_.at(decl.name), decl.hook,
                         std::move(adapt));
  } else {
    cp_.InjectExtension(*flow, programs_.at(decl.name), decl.hook,
                        std::move(adapt));
  }
}

void Orchestrator::RollbackWave(std::vector<CodeFlow*> nodes, int hook,
                                std::function<void(std::size_t)> done) {
  if (nodes.empty()) {
    done(0);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(nodes.size());
  auto reverted = std::make_shared<std::size_t>(0);
  auto finish = std::make_shared<std::function<void(std::size_t)>>(
      std::move(done));
  for (CodeFlow* flow : nodes) {
    auto on_node = [remaining, reverted, finish](Status s) {
      if (s.ok()) ++*reverted;
      if (--*remaining == 0) (*finish)(*reverted);
    };
    cp_.Rollback(*flow, hook, [this, flow, hook, on_node](Status s) mutable {
      if (s.ok()) {
        on_node(OkStatus());
        return;
      }
      // First-ever deploy on this hook: no previous version exists, so
      // "revert" means detach.
      cp_.Detach(*flow, hook, on_node);
    });
  }
}

}  // namespace rdx::core
