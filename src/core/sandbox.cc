#include "core/sandbox.h"

#include "common/log.h"
#include "core/gatekeeper.h"

namespace rdx::core {

std::uint64_t SymbolHash(const char* prefix, std::uint64_t id) {
  Bytes key;
  for (const char* p = prefix; *p; ++p) key.push_back(*p);
  AppendLE<std::uint64_t>(key, id);
  return Fnv1a64(key);
}

std::uint64_t SymbolHashName(const char* prefix, const char* name) {
  Bytes key;
  for (const char* p = prefix; *p; ++p) key.push_back(*p);
  for (const char* p = name; *p; ++p) key.push_back(*p);
  return Fnv1a64(key);
}

Sandbox::Sandbox(sim::EventQueue& events, rdma::Node& node,
                 SandboxConfig config)
    : events_(events),
      node_(node),
      config_(std::move(config)),
      mem_space_(node.memory()),
      rng_(config_.seed),
      cache_(config_.cache) {
  rt_.mem = &mem_space_;
  rt_.rng = &rng_;
  rt_.ktime_ns = [this] {
    return static_cast<std::uint64_t>(events_.Now());
  };
}

StatusOr<std::uint64_t> Sandbox::ReadWord(std::uint64_t addr) const {
  return node_.memory().ReadU64(addr);
}

Status Sandbox::WriteWord(std::uint64_t addr, std::uint64_t value) {
  return node_.memory().WriteU64(addr, value);
}

void Sandbox::BuildSymbolTable(Bytes& out) const {
  struct Entry {
    std::uint64_t hash;
    std::uint64_t value;
  };
  std::vector<Entry> entries;
  // eBPF helpers available in this sandbox.
  static constexpr std::int32_t kExported[] = {
      bpf::kHelperMapLookupElem, bpf::kHelperMapUpdateElem,
      bpf::kHelperMapDeleteElem, bpf::kHelperKtimeGetNs,
      bpf::kHelperTracePrintk,   bpf::kHelperGetPrandomU32,
      bpf::kHelperGetSmpProcessorId, bpf::kHelperRingbufOutput};
  for (std::int32_t id : kExported) {
    entries.push_back({SymbolHash("helper:", static_cast<std::uint64_t>(id)),
                       static_cast<std::uint64_t>(id)});
  }
  // Wasm host functions, value = index in this sandbox's host table.
  for (std::size_t i = 0; i < config_.wasm_host_fns.size(); ++i) {
    entries.push_back({SymbolHashName("host:", config_.wasm_host_fns[i].c_str()),
                       static_cast<std::uint64_t>(i)});
  }
  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    AppendLE<std::uint64_t>(out, e.hash);
    AppendLE<std::uint64_t>(out, e.value);
  }
}

Status Sandbox::CtxInit() {
  if (booted_) return FailedPrecondition("sandbox already booted");
  auto& mem = node_.memory();

  RDX_ASSIGN_OR_RETURN(view_.cb_addr, mem.Allocate(kControlBlockBytes, 64));
  RDX_ASSIGN_OR_RETURN(view_.hook_table_addr,
                       mem.Allocate(config_.hook_count * 8ull, 64));
  view_.hook_count = config_.hook_count;
  RDX_ASSIGN_OR_RETURN(view_.meta_xstate_addr,
                       mem.Allocate(config_.meta_capacity * 8ull, 64));
  view_.meta_capacity = config_.meta_capacity;

  Bytes symtab;
  BuildSymbolTable(symtab);
  RDX_ASSIGN_OR_RETURN(view_.symtab_addr, mem.Allocate(symtab.size(), 64));
  view_.symtab_len = symtab.size();
  RDX_RETURN_IF_ERROR(mem.Write(view_.symtab_addr, symtab));

  RDX_ASSIGN_OR_RETURN(ctx_buf_addr_, mem.Allocate(256, 64));
  RDX_ASSIGN_OR_RETURN(stack_addr_, mem.Allocate(bpf::kStackSize, 64));

  // HealthBlock array sits before the scratchpad so it lands inside the
  // RDMA-registered span (control plane reads it one-sided) and is wiped
  // by Crash() together with everything else.
  RDX_ASSIGN_OR_RETURN(
      view_.health_addr,
      mem.Allocate(config_.hook_count * kHealthBlockBytes, 64));

  // TraceRing next, same reasoning: the collector harvests it one-sided,
  // and a crash takes the unharvested tail with it.
  if (config_.telemetry) {
    RDX_ASSIGN_OR_RETURN(
        view_.trace_addr,
        mem.Allocate(
            telemetry::TraceRingWriter::BytesFor(config_.trace_ring_slots),
            64));
  }

  RDX_ASSIGN_OR_RETURN(view_.scratch_addr,
                       mem.Allocate(config_.scratch_bytes, 4096));
  view_.scratch_size = config_.scratch_bytes;

  RDX_RETURN_IF_ERROR(PublishControlBlock());

  hooks_.assign(config_.hook_count, HookState{});
  booted_ = true;
  return OkStatus();
}

Status Sandbox::PublishControlBlock() {
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbMagic, kControlBlockMagic));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbEpoch, 0));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbLock, 0));
  RDX_RETURN_IF_ERROR(
      WriteWord(view_.cb_addr + kCbHookTableAddr, view_.hook_table_addr));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbHookCount,
                                view_.hook_count));
  RDX_RETURN_IF_ERROR(
      WriteWord(view_.cb_addr + kCbMetaXstateAddr, view_.meta_xstate_addr));
  RDX_RETURN_IF_ERROR(
      WriteWord(view_.cb_addr + kCbMetaCapacity, view_.meta_capacity));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbScratchAddr,
                                view_.scratch_addr));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbScratchSize,
                                view_.scratch_size));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbScratchBrk,
                                view_.scratch_addr));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbSymtabAddr,
                                view_.symtab_addr));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbSymtabLen,
                                view_.symtab_len));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbDoorbell, 0));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbHealthAddr,
                                view_.health_addr));
  RDX_RETURN_IF_ERROR(WriteWord(view_.cb_addr + kCbTraceAddr,
                                view_.trace_addr));
  // Fresh boot (or reboot) starts with clean health counters.
  Bytes health_zeros(view_.hook_count * kHealthBlockBytes, 0);
  RDX_RETURN_IF_ERROR(node_.memory().Write(view_.health_addr, health_zeros));
  // ... and an empty trace ring with a fresh producer cursor.
  if (view_.trace_addr != 0) {
    RDX_RETURN_IF_ERROR(telemetry::TraceRingWriter::Format(
        node_.memory(), view_.trace_addr, config_.trace_ring_slots));
    trace_.emplace(node_.memory(), view_.trace_addr,
                   config_.trace_ring_slots);
    pending_trace_emits_ = 0;
  }
  return OkStatus();
}

std::uint64_t Sandbox::HealthWordAddr(int hook, std::uint64_t field) const {
  return view_.health_addr +
         static_cast<std::uint64_t>(hook) * kHealthBlockBytes + field;
}

StatusOr<std::uint64_t> Sandbox::GetHealth(int hook,
                                           std::uint64_t field) const {
  return ReadWord(HealthWordAddr(hook, field));
}

void Sandbox::BumpHealth(int hook, std::uint64_t field, std::uint64_t delta) {
  const auto current = ReadWord(HealthWordAddr(hook, field));
  if (!current.ok()) return;
  (void)WriteWord(HealthWordAddr(hook, field), current.value() + delta);
}

void Sandbox::SetHealth(int hook, std::uint64_t field, std::uint64_t value) {
  (void)WriteWord(HealthWordAddr(hook, field), value);
}

HealthView Sandbox::ReadLocalHealth(int hook) const {
  HealthView hv;
  if (view_.health_addr == 0) return hv;
  auto word = [&](std::uint64_t field) {
    const auto w = GetHealth(hook, field);
    return w.ok() ? w.value() : 0ull;
  };
  hv.executions = word(kHbExecutions);
  hv.traps = word(kHbTraps);
  hv.fuel_exhaustions = word(kHbFuelExhaustions);
  hv.consecutive_failures = word(kHbConsecutiveFailures);
  hv.last_good_desc = word(kHbLastGoodDesc);
  hv.failsafe_detaches = word(kHbFailsafeDetaches);
  return hv;
}

void Sandbox::AccountReclaim(std::uint64_t bytes) {
  ++stats_.images_reclaimed;
  stats_.scratch_bytes_reclaimed += bytes;
}

void Sandbox::EmitTrace(telemetry::RingEventKind kind, int hook,
                        std::uint16_t code, std::uint64_t arg) {
  if (!trace_.has_value()) return;
  trace_->Emit(kind, static_cast<std::uint8_t>(hook), code, events_.Now(),
               arg);
  ++pending_trace_emits_;
}

void Sandbox::ExportMetrics(telemetry::MetricsRegistry& reg,
                            const std::string& prefix) const {
  reg.SetCounter(prefix + ".executions", stats_.executions);
  reg.SetCounter(prefix + ".empty_hook_executions",
                 stats_.empty_hook_executions);
  reg.SetCounter(prefix + ".torn_image_failures",
                 stats_.torn_image_failures);
  reg.SetCounter(prefix + ".signature_failures", stats_.signature_failures);
  reg.SetCounter(prefix + ".refreshes", stats_.refreshes);
  reg.SetCounter(prefix + ".traps", stats_.traps);
  reg.SetCounter(prefix + ".fuel_exhaustions", stats_.fuel_exhaustions);
  reg.SetCounter(prefix + ".failsafe_detaches", stats_.failsafe_detaches);
  if (trace_.has_value()) {
    reg.SetCounter(prefix + ".trace.emitted", trace_->emitted());
    reg.SetCounter(prefix + ".trace.dropped", trace_->dropped());
  }
  telemetry::CaptureCacheMetrics(reg, cache_, prefix + ".cache");
  // HealthBlock counters, per hook, read from the same words the control
  // plane harvests over RDMA.
  if (view_.health_addr != 0) {
    for (std::uint32_t h = 0; h < view_.hook_count; ++h) {
      const HealthView hv = ReadLocalHealth(static_cast<int>(h));
      if (hv.executions == 0 && hv.traps == 0 && hv.fuel_exhaustions == 0 &&
          hv.failsafe_detaches == 0) {
        continue;
      }
      const std::string hp = prefix + ".hook" + std::to_string(h);
      reg.SetCounter(hp + ".executions", hv.executions);
      reg.SetCounter(hp + ".traps", hv.traps);
      reg.SetCounter(hp + ".fuel_exhaustions", hv.fuel_exhaustions);
      reg.SetCounter(hp + ".consecutive_failures", hv.consecutive_failures);
      reg.SetCounter(hp + ".failsafe_detaches", hv.failsafe_detaches);
    }
  }
}

void Sandbox::RecordHookOutcome(int hook, const Status& outcome) {
  if (!config_.guardrails || view_.health_addr == 0) return;
  HookState& state = hooks_[hook];
  BumpHealth(hook, kHbExecutions, 1);
  if (outcome.ok()) {
    const auto consecutive = GetHealth(hook, kHbConsecutiveFailures);
    if (consecutive.ok() && consecutive.value() != 0) {
      SetHealth(hook, kHbConsecutiveFailures, 0);
    }
    const auto last_good = GetHealth(hook, kHbLastGoodDesc);
    if (last_good.ok() && last_good.value() != state.visible_desc_addr) {
      SetHealth(hook, kHbLastGoodDesc, state.visible_desc_addr);
    }
    return;
  }
  // Fuel overruns come back as kResourceExhausted from the engines; every
  // other runtime failure is a trap.
  if (outcome.code() == StatusCode::kResourceExhausted) {
    ++stats_.fuel_exhaustions;
    BumpHealth(hook, kHbFuelExhaustions, 1);
    EmitTrace(telemetry::RingEventKind::kHookFuelExhausted, hook,
              static_cast<std::uint16_t>(outcome.code()), 0);
  } else {
    ++stats_.traps;
    BumpHealth(hook, kHbTraps, 1);
    EmitTrace(telemetry::RingEventKind::kHookTrap, hook,
              static_cast<std::uint16_t>(outcome.code()), 0);
  }
  BumpHealth(hook, kHbConsecutiveFailures, 1);
  const auto consecutive = GetHealth(hook, kHbConsecutiveFailures);
  if (config_.max_consecutive_failures != 0 && consecutive.ok() &&
      consecutive.value() >= config_.max_consecutive_failures) {
    FailSafeDetach(hook);
  }
}

void Sandbox::FailSafeDetach(int hook) {
  // Revert the hook slot to the last image that ever completed here; if
  // the failing image *is* that image (or none ever succeeded), detach
  // entirely — an empty hook accepts by default, which is the safe mode.
  const auto last_good = GetHealth(hook, kHbLastGoodDesc);
  std::uint64_t target = last_good.ok() ? last_good.value() : 0;
  if (target == hooks_[hook].visible_desc_addr) target = 0;
  (void)WriteWord(view_.hook_table_addr + hook * 8ull, target);
  BumpHealth(hook, kHbFailsafeDetaches, 1);
  SetHealth(hook, kHbConsecutiveFailures, 0);
  ++stats_.failsafe_detaches;
  EmitTrace(telemetry::RingEventKind::kFailsafeDetach, hook, 0, target);
  // The local CPU sees its own write immediately (agent-equivalent path).
  RefreshHookNow(hook);
}

void Sandbox::Crash() {
  if (!booted_) return;
  // Power loss: all DRAM behind the sandbox is gone, along with whatever
  // the control plane had deployed into it.
  auto& mem = node_.memory();
  const std::uint64_t begin = view_.cb_addr;
  const std::uint64_t end = view_.scratch_addr + view_.scratch_size;
  Bytes zeros(end - begin, 0);
  (void)mem.Write(begin, zeros);
  hooks_.assign(config_.hook_count, HookState{});
  rt_.maps.clear();
  trace_.reset();
  pending_trace_emits_ = 0;
  booted_ = false;
}

Status Sandbox::Reboot() {
  if (booted_) return FailedPrecondition("sandbox is running");
  if (view_.cb_addr == 0) return FailedPrecondition("sandbox never booted");
  // The boot sequence is deterministic and the layout addresses are
  // fixed, so the node comes back at the same {cb_addr, rkey} with a
  // fresh scratch allocator and epoch 0.
  Bytes symtab;
  BuildSymbolTable(symtab);
  RDX_RETURN_IF_ERROR(node_.memory().Write(view_.symtab_addr, symtab));
  RDX_RETURN_IF_ERROR(PublishControlBlock());
  hooks_.assign(config_.hook_count, HookState{});
  booted_ = true;
  return OkStatus();
}

StatusOr<Sandbox::Registration> Sandbox::CtxRegister() {
  if (!booted_) return FailedPrecondition("CtxInit must run first");
  if (registered_) return FailedPrecondition("sandbox already registered");
  // One region spanning the control block through the scratchpad end
  // (CtxInit allocated them contiguously).
  const std::uint64_t begin = view_.cb_addr;
  const std::uint64_t end = view_.scratch_addr + view_.scratch_size;
  RDX_ASSIGN_OR_RETURN(
      const rdma::MemoryRegion mr,
      node_.memory().Register(begin, end - begin,
                              rdma::kAccessRemoteRead |
                                  rdma::kAccessRemoteWrite |
                                  rdma::kAccessRemoteAtomic |
                                  rdma::kAccessLocalWrite));
  registered_ = true;
  return Registration{view_.cb_addr, mr.rkey};
}

Status Sandbox::CtxTeardown(int hook) {
  if (hook < 0 || hook >= static_cast<int>(hooks_.size())) {
    return InvalidArgument("hook out of range");
  }
  HookState& state = hooks_[hook];
  if (state.visible_desc_addr == 0) {
    return FailedPrecondition("hook already detached");
  }
  if (state.refcount > 0) {
    --state.refcount;
    if (state.refcount > 0) return OkStatus();  // still referenced
  }
  RDX_RETURN_IF_ERROR(WriteWord(view_.hook_table_addr + hook * 8ull, 0));
  state = HookState{};
  return OkStatus();
}

sim::Duration Sandbox::VisibilityDelay(bool coherent_flush) {
  if (coherent_flush) return cache_.FlushDelay();
  return cache_.SampleDiscoveryDelay(config_.cpki, rng_);
}

void Sandbox::RefreshHookNow(int hook) {
  ++stats_.refreshes;
  // The CPU re-reads the hook slot and the XState directory; failures
  // here indicate a corrupt deployment and are surfaced on execution.
  const auto slot = ReadWord(view_.hook_table_addr + hook * 8ull);
  if (!slot.ok()) return;
  HookState& state = hooks_[hook];
  if (state.visible_desc_addr != slot.value()) {
    state.visible_desc_addr = slot.value();
    state.ebpf_image.reset();
    state.wasm_image.reset();
    state.visible_version = 0;
    if (slot.value() != 0) {
      const auto version = ReadWord(slot.value() + kDescVersion);
      if (version.ok()) state.visible_version = version.value();
      state.refcount = 1;
    }
    EmitTrace(telemetry::RingEventKind::kHookRefresh, hook, 0,
              state.visible_version);
  } else if (slot.value() != 0) {
    // Same desc, possibly re-versioned in place (vanilla path).
    const auto version = ReadWord(slot.value() + kDescVersion);
    if (version.ok() && version.value() != state.visible_version) {
      state.visible_version = version.value();
      state.ebpf_image.reset();
      state.wasm_image.reset();
      EmitTrace(telemetry::RingEventKind::kHookRefresh, hook, 0,
                state.visible_version);
    }
  }
  RefreshXState();
}

void Sandbox::ScheduleHookRefresh(int hook, sim::Duration delay) {
  events_.ScheduleAfter(delay, [this, hook] { RefreshHookNow(hook); });
}

void Sandbox::RefreshHooks() {
  for (std::uint32_t i = 0; i < view_.hook_count; ++i) {
    ScheduleHookRefresh(static_cast<int>(i), 0);
  }
}

void Sandbox::RefreshXState() {
  // Walk the Meta-XState directory and (re)register every map with the
  // runtime so helper calls can resolve them by address.
  for (std::uint64_t i = 0; i < view_.meta_capacity; ++i) {
    const auto entry = ReadWord(view_.meta_xstate_addr + i * 8);
    if (!entry.ok() || entry.value() == 0) continue;
    const std::uint64_t addr = entry.value();
    if (rt_.maps.count(addr) != 0) continue;
    // The XState header is self-describing (bpf::MapHeader).
    auto span = mem_space_.SpanAt(addr, bpf::kMapHeaderBytes);
    if (!span.ok()) continue;
    bpf::MapView probe(span.value());
    auto header = probe.Header();
    if (!header.ok()) continue;
    bpf::MapSpec spec;
    spec.name = "xstate_" + std::to_string(i);
    spec.type = header->type;
    spec.key_size = header->key_size;
    spec.value_size = header->value_size;
    spec.max_entries = header->max_entries;
    rt_.maps.emplace(addr, std::move(spec));
  }
}

std::uint64_t Sandbox::VisibleVersion(int hook) const {
  return hooks_[hook].visible_version;
}

ImageKind Sandbox::VisibleKind(int hook) const { return hooks_[hook].kind; }

std::uint64_t Sandbox::CommittedVersion(int hook) const {
  const auto slot = ReadWord(view_.hook_table_addr + hook * 8ull);
  if (!slot.ok() || slot.value() == 0) return 0;
  const auto version = ReadWord(slot.value() + kDescVersion);
  return version.ok() ? version.value() : 0;
}

Status Sandbox::LoadHookImage(int hook) {
  HookState& state = hooks_[hook];
  RDX_ASSIGN_OR_RETURN(const std::uint64_t image_addr,
                       ReadWord(state.visible_desc_addr + kDescImageAddr));
  RDX_ASSIGN_OR_RETURN(const std::uint64_t image_len,
                       ReadWord(state.visible_desc_addr + kDescImageLen));
  RDX_ASSIGN_OR_RETURN(MutableByteSpan raw,
                       mem_space_.SpanAt(image_addr, image_len));
  const ByteSpan bytes(raw.data(), raw.size());
  if (config_.signing_key != 0) {
    RDX_ASSIGN_OR_RETURN(
        const std::uint64_t signature,
        ReadWord(state.visible_desc_addr + kDescSignature));
    if (!VerifyImageSignature(bytes, config_.signing_key, signature)) {
      ++stats_.signature_failures;
      return PermissionDenied("image signature verification failed");
    }
  }
  // Try eBPF first, then Wasm, by magic; a checksum mismatch means this
  // CPU raced a non-transactional remote write (torn image).
  if (bytes.size() >= 4 && LoadLE<std::uint32_t>(bytes.data()) == 0x4a584452u) {
    auto image = bpf::JitImage::Deserialize(bytes);
    if (!image.ok()) {
      ++stats_.torn_image_failures;
      return Aborted("torn or corrupt eBPF image: " +
                     image.status().ToString());
    }
    state.kind = ImageKind::kEbpf;
    state.ebpf_image = std::move(image).value();
    return OkStatus();
  }
  if (bytes.size() >= 4 && LoadLE<std::uint32_t>(bytes.data()) == 0x46574452u) {
    auto image = wasm::WasmImage::Deserialize(bytes);
    if (!image.ok()) {
      ++stats_.torn_image_failures;
      return Aborted("torn or corrupt wasm image: " +
                     image.status().ToString());
    }
    state.kind = ImageKind::kWasm;
    state.wasm_image = std::move(image).value();
    return OkStatus();
  }
  ++stats_.torn_image_failures;
  return Aborted("image with unknown magic (torn write?)");
}

StatusOr<bpf::ExecResult> Sandbox::ExecuteHook(int hook, ByteSpan packet) {
  if (hook < 0 || hook >= static_cast<int>(hooks_.size())) {
    return InvalidArgument("hook out of range");
  }
  ++stats_.executions;
  HookState& state = hooks_[hook];
  if (state.visible_desc_addr == 0) {
    ++stats_.empty_hook_executions;
    return bpf::ExecResult{1, 0};  // accept-by-default
  }
  if (!state.ebpf_image.has_value()) {
    RDX_RETURN_IF_ERROR(LoadHookImage(hook));
    if (state.kind != ImageKind::kEbpf) {
      return FailedPrecondition("hook holds a wasm filter");
    }
  }
  // Stage the packet into the ctx buffer (zero-padded to 256 bytes).
  Bytes ctx(256, 0);
  std::memcpy(ctx.data(), packet.data(), std::min<std::size_t>(packet.size(), 256));
  RDX_RETURN_IF_ERROR(node_.memory().Write(ctx_buf_addr_, ctx));

  bpf::ExecOptions opts;
  opts.ctx_addr = ctx_buf_addr_;
  opts.ctx_len = 256;
  opts.stack_addr = stack_addr_;
  opts.insn_limit = config_.fuel_budget;
  auto result = bpf::RunJit(*state.ebpf_image, rt_, opts);
  if (result.ok()) {
    EmitTrace(telemetry::RingEventKind::kHookExecEbpf, hook, 0,
              result->insns_executed);
  }
  RecordHookOutcome(hook, result.ok() ? OkStatus() : result.status());
  return result;
}

StatusOr<wasm::WasmResult> Sandbox::ExecuteWasmHook(int hook,
                                                    wasm::WasmHost& host) {
  if (hook < 0 || hook >= static_cast<int>(hooks_.size())) {
    return InvalidArgument("hook out of range");
  }
  ++stats_.executions;
  HookState& state = hooks_[hook];
  if (state.visible_desc_addr == 0) {
    ++stats_.empty_hook_executions;
    return wasm::WasmResult{1, 0};
  }
  if (!state.wasm_image.has_value()) {
    RDX_RETURN_IF_ERROR(LoadHookImage(hook));
    if (state.kind != ImageKind::kWasm) {
      return FailedPrecondition("hook holds an eBPF program");
    }
  }
  auto result =
      wasm::RunFilter(*state.wasm_image, host, config_.wasm_fuel_budget);
  if (result.ok()) {
    EmitTrace(telemetry::RingEventKind::kHookExecWasm, hook, 0,
              result->insns_executed);
  }
  RecordHookOutcome(hook, result.ok() ? OkStatus() : result.status());
  return result;
}

bool Sandbox::TryLockLocal(std::uint64_t owner) {
  const auto current = ReadWord(view_.cb_addr + kCbLock);
  if (!current.ok() || current.value() != 0) return false;
  return WriteWord(view_.cb_addr + kCbLock, owner).ok();
}

void Sandbox::UnlockLocal(std::uint64_t owner) {
  const auto current = ReadWord(view_.cb_addr + kCbLock);
  if (current.ok() && current.value() == owner) {
    (void)WriteWord(view_.cb_addr + kCbLock, 0);
  }
}

}  // namespace rdx::core
