#include "core/codeflow.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"
#include "core/gatekeeper.h"

namespace rdx::core {

namespace {
constexpr std::uint64_t kLocalArenaBytes = 16u << 20;
constexpr std::uint64_t kAllocAlign = 64;

std::uint64_t AlignUp(std::uint64_t n, std::uint64_t a) {
  return (n + a - 1) & ~(a - 1);
}
}  // namespace

std::uint64_t ProgramFingerprint(const bpf::Program& prog) {
  Bytes bytes = prog.Encode();
  for (const bpf::MapSpec& map : prog.maps) {
    bytes.insert(bytes.end(), map.name.begin(), map.name.end());
    AppendLE<std::uint32_t>(bytes, static_cast<std::uint32_t>(map.type));
    AppendLE<std::uint32_t>(bytes, map.key_size);
    AppendLE<std::uint32_t>(bytes, map.value_size);
    AppendLE<std::uint32_t>(bytes, map.max_entries);
  }
  return Fnv1a64(bytes);
}

std::uint64_t WasmFingerprint(const wasm::FilterModule& module) {
  Bytes bytes;
  for (const wasm::WasmInsn& insn : module.code) {
    bytes.push_back(static_cast<std::uint8_t>(insn.op));
    AppendLE<std::int64_t>(bytes, insn.imm);
  }
  for (const wasm::ImportDecl& import : module.imports) {
    bytes.insert(bytes.end(), import.name.begin(), import.name.end());
    bytes.push_back(0);
  }
  return Fnv1a64(bytes);
}

const bool* ArtifactCache::FindEbpfVerdict(std::uint64_t fp) {
  auto it = ebpf_verdicts_.find(fp);
  if (it == ebpf_verdicts_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const bool* ArtifactCache::FindWasmVerdict(std::uint64_t fp) {
  auto it = wasm_verdicts_.find(fp);
  if (it == wasm_verdicts_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const bpf::JitImage* ArtifactCache::FindEbpf(std::uint64_t fp) {
  auto it = ebpf_.find(fp);
  if (it == ebpf_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const wasm::WasmImage* ArtifactCache::FindWasm(std::uint64_t fp) {
  auto it = wasm_.find(fp);
  if (it == wasm_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ArtifactCache::PutEbpfVerdict(std::uint64_t fp, bool ok) {
  ebpf_verdicts_[fp] = ok;
}

void ArtifactCache::PutWasmVerdict(std::uint64_t fp, bool ok) {
  wasm_verdicts_[fp] = ok;
}

const bpf::JitImage* ArtifactCache::PutEbpf(std::uint64_t fp,
                                            bpf::JitImage image) {
  return &(ebpf_.insert_or_assign(fp, std::move(image)).first->second);
}

const wasm::WasmImage* ArtifactCache::PutWasm(std::uint64_t fp,
                                              wasm::WasmImage image) {
  return &(wasm_.insert_or_assign(fp, std::move(image)).first->second);
}

void ArtifactCache::Invalidate(std::uint64_t fp) {
  std::size_t evicted = 0;
  evicted += ebpf_verdicts_.erase(fp);
  evicted += wasm_verdicts_.erase(fp);
  evicted += ebpf_.erase(fp);
  evicted += wasm_.erase(fp);
  if (evicted != 0) ++invalidations_;
}

StatusOr<std::uint64_t> CodeFlow::Symbol(std::uint64_t hash) const {
  auto it = symbols_.find(hash);
  if (it == symbols_.end()) return NotFound("symbol not exported by target");
  return it->second;
}

ControlPlane::ControlPlane(sim::EventQueue& events, rdma::Fabric& fabric,
                           rdma::NodeId self, ControlPlaneConfig config)
    : events_(events),
      fabric_(fabric),
      self_(self),
      config_(config),
      cpu_(events, config.cost.cores_per_node, config.cost.cpu_hz) {
  cq_ = &fabric_.CreateCq(self_, 65536);
  cq_->SetNotify([this](const rdma::WorkCompletion& wc) {
    auto it = pending_.find(wc.wr_id);
    if (it == pending_.end()) return false;
    auto handler = std::move(it->second.on_complete);
    pending_.erase(it);
    handler(wc);
    return true;
  });
  // Local staging arena: WRITE sources and READ/atomic landing buffers.
  auto& mem = fabric_.node(self_).memory();
  auto arena = mem.Allocate(kLocalArenaBytes, 4096);
  auto mr = mem.Register(arena.value(), kLocalArenaBytes,
                         rdma::kAccessLocalWrite);
  local_mr_ = mr.value();
}

StatusOr<std::uint64_t> ControlPlane::LocalScratch(std::uint64_t bytes) {
  // Ring allocation inside the arena. The fabric copies WRITE payloads at
  // post time and scatters READ results at completion time, so reuse
  // after wrap cannot corrupt in-flight operations.
  bytes = AlignUp(bytes, kAllocAlign);
  if (bytes > kLocalArenaBytes) return ResourceExhausted("payload too large");
  if (arena_cursor_ + bytes > kLocalArenaBytes) arena_cursor_ = 0;
  const std::uint64_t addr = local_mr_.addr + arena_cursor_;
  arena_cursor_ += bytes;
  return addr;
}

void ControlPlane::Post(
    CodeFlow& flow, rdma::SendWr wr,
    std::function<void(const rdma::WorkCompletion&)> done) {
  wr.wr_id = next_wr_id_++;
  wr.signaled = true;
  // Small control writes (commit qwords, cc events, ring cursors, XState
  // values) ride the WQE itself: no payload DMA fetch, no source MR.
  if (config_.use_inline && wr.opcode == rdma::Opcode::kWrite &&
      wr.local.length <= fabric_.link().max_inline_data) {
    wr.send_inline = true;
  }
  // Every successful completion renews the target node's health lease.
  const rdma::NodeId target = flow.node_;
  auto recording = [this, target, done = std::move(done)](
                       const rdma::WorkCompletion& wc) {
    if (wc.status == rdma::WcStatus::kSuccess) {
      last_success_[target] = events_.Now();
    }
    done(wc);
  };
  pending_.emplace(wr.wr_id, PendingOp{std::move(recording)});
  const Status posted = flow.qp->PostSend(wr);
  if (!posted.ok()) {
    // The QP pushed a flush completion (or rejected the post); surface an
    // error completion to the callback if the CQ did not already.
    auto it = pending_.find(wr.wr_id);
    if (it != pending_.end()) {
      auto handler = std::move(it->second.on_complete);
      pending_.erase(it);
      rdma::WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.status = rdma::WcStatus::kWorkRequestFlushed;
      wc.opcode = wr.opcode;
      handler(wc);
    }
  }
}

void ControlPlane::PostChain(
    CodeFlow& flow, std::vector<rdma::SendWr> wrs,
    std::function<void(const rdma::WorkCompletion&)> per_wr_done) {
  if (wrs.empty()) return;
  const rdma::NodeId target = flow.node_;
  auto handler = std::make_shared<
      std::function<void(const rdma::WorkCompletion&)>>(
      [this, target, done = std::move(per_wr_done)](
          const rdma::WorkCompletion& wc) {
        if (wc.status == rdma::WcStatus::kSuccess) {
          last_success_[target] = events_.Now();
        }
        done(wc);
      });
  // Selective signaling (qp.h) means only every Kth WRITE in the chain
  // writes a CQE, yet every WR here has a pending_ entry expecting one.
  // RC ordering closes the gap: when a completion for chain index i
  // arrives — signaled success, NAK, or flush — every WR before i must
  // have *succeeded* (the first failure errors the QP at its own index,
  // and flushes follow it), so their completions are implied. The state
  // below reconstructs them, in order, before delivering entry i.
  struct ChainState {
    std::uint64_t first_id = 0;
    std::size_t cursor = 0;  // chain index of the next undelivered WR
    std::vector<std::pair<rdma::Opcode, std::uint32_t>> ops;
  };
  auto chain = std::make_shared<ChainState>();
  chain->first_id = next_wr_id_;
  chain->ops.reserve(wrs.size());
  auto deliver = [this, handler, chain](const rdma::WorkCompletion& wc) {
    const std::size_t idx =
        static_cast<std::size_t>(wc.wr_id - chain->first_id);
    while (chain->cursor < idx) {
      const std::uint64_t id = chain->first_id + chain->cursor;
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        pending_.erase(it);
        rdma::WorkCompletion implied;
        implied.wr_id = id;
        implied.status = rdma::WcStatus::kSuccess;
        implied.opcode = chain->ops[chain->cursor].first;
        implied.byte_len = chain->ops[chain->cursor].second;
        implied.qp_num = wc.qp_num;
        implied.completed_at = wc.completed_at;
        (*handler)(implied);
      }
      ++chain->cursor;
    }
    chain->cursor = idx + 1;
    (*handler)(wc);
  };
  for (rdma::SendWr& wr : wrs) {
    wr.wr_id = next_wr_id_++;
    // The caller's signaled flag is preserved (the QP's signaling period
    // may still rewrite WRITEs); unsignaled successes are reconstructed
    // by `deliver` above, so every WR's callback fires exactly once.
    if (config_.use_inline && wr.opcode == rdma::Opcode::kWrite &&
        wr.local.length <= fabric_.link().max_inline_data) {
      wr.send_inline = true;
    }
    chain->ops.emplace_back(wr.opcode, wr.local.length);
    pending_.emplace(wr.wr_id, PendingOp{deliver});
  }
  const Status posted = flow.qp->PostSendChain(wrs);
  if (!posted.ok()) {
    // Error-state flushes were already delivered through the CQ; surface
    // completions for any WR the QP rejected without flushing.
    for (const rdma::SendWr& wr : wrs) {
      auto it = pending_.find(wr.wr_id);
      if (it == pending_.end()) continue;
      auto h = std::move(it->second.on_complete);
      pending_.erase(it);
      rdma::WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.status = rdma::WcStatus::kWorkRequestFlushed;
      wc.opcode = wr.opcode;
      h(wc);
    }
  }
}

void ControlPlane::CreateCodeFlow(
    Sandbox& sandbox, const Sandbox::Registration& reg,
    std::function<void(StatusOr<CodeFlow*>)> done) {
  auto flow_owner = std::make_unique<CodeFlow>();
  CodeFlow* flow = flow_owner.get();
  flows_.push_back(std::move(flow_owner));
  flow->node_ = sandbox.node().id();
  flow->sandbox = &sandbox;
  flow->rkey = reg.rkey;
  flow->remote_view_.cb_addr = reg.cb_addr;

  // QP plumbing (the CM exchange).
  rdma::QueuePair& local_qp = fabric_.CreateQp(self_, *cq_, *cq_);
  rdma::CompletionQueue& remote_cq = fabric_.CreateCq(flow->node_);
  rdma::QueuePair& remote_qp =
      fabric_.CreateQp(flow->node_, remote_cq, remote_cq);
  Status connected = fabric_.Connect(local_qp, remote_qp);
  if (!connected.ok()) {
    done(connected);
    return;
  }
  local_qp.SetSignalingPeriod(config_.signaling_period);
  flow->qp = &local_qp;
  flow->cq = cq_;

  Handshake(flow, std::move(done));
}

void ControlPlane::Handshake(CodeFlow* flow,
                             std::function<void(StatusOr<CodeFlow*>)> done) {
  // Step 1: read the control block.
  auto cb_buf = LocalScratch(kControlBlockBytes);
  if (!cb_buf.ok()) {
    done(cb_buf.status());
    return;
  }
  rdma::SendWr read_cb;
  read_cb.opcode = rdma::Opcode::kRead;
  read_cb.local = {cb_buf.value(), kControlBlockBytes, local_mr_.lkey};
  read_cb.remote_addr = flow->remote_view_.cb_addr;
  read_cb.rkey = flow->rkey;
  Post(*flow, read_cb, [this, flow, cb_buf = cb_buf.value(),
                        done](const rdma::WorkCompletion& wc) {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("control block read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    auto word = [&](std::uint64_t off) {
      return mem.ReadU64(cb_buf + off).value();
    };
    if (word(kCbMagic) != kControlBlockMagic) {
      done(FailedPrecondition("remote control block has bad magic"));
      return;
    }
    ControlBlockView& view = flow->remote_view_;
    view.epoch = word(kCbEpoch);
    view.hook_table_addr = word(kCbHookTableAddr);
    view.hook_count = word(kCbHookCount);
    view.meta_xstate_addr = word(kCbMetaXstateAddr);
    view.meta_capacity = word(kCbMetaCapacity);
    view.scratch_addr = word(kCbScratchAddr);
    view.scratch_size = word(kCbScratchSize);
    view.symtab_addr = word(kCbSymtabAddr);
    view.symtab_len = word(kCbSymtabLen);
    view.health_addr = word(kCbHealthAddr);
    view.trace_addr = word(kCbTraceAddr);

    // Reboot detection on re-handshake: if we had deployed state but the
    // remote scratch allocator is back at its base, the node lost its
    // memory since our last handshake. Every deployed XState, image, and
    // hook binding is gone — restart the bookkeeping from scratch.
    const bool had_state = !flow->hooks_.empty() ||
                           !flow->xstate_addrs_.empty() ||
                           flow->next_meta_slot_ != 0;
    if (had_state && word(kCbScratchBrk) == view.scratch_addr) {
      flow->xstate_addrs_.clear();
      flow->hooks_.clear();
      flow->next_meta_slot_ = 0;
      flow->epoch_ = view.epoch;
    }

    // Step 2: read the symbol table (the exposed global context / GOT).
    auto sym_buf = LocalScratch(view.symtab_len);
    if (!sym_buf.ok()) {
      done(sym_buf.status());
      return;
    }
    rdma::SendWr read_sym;
    read_sym.opcode = rdma::Opcode::kRead;
    read_sym.local = {sym_buf.value(),
                      static_cast<std::uint32_t>(view.symtab_len),
                      local_mr_.lkey};
    read_sym.remote_addr = view.symtab_addr;
    read_sym.rkey = flow->rkey;
    Post(*flow, read_sym, [this, flow, sym_buf = sym_buf.value(),
                           done](const rdma::WorkCompletion& wc2) {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("symbol table read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      Bytes raw(flow->remote_view_.symtab_len);
      (void)mem.Read(sym_buf, raw);
      if (raw.size() < 4) {
        done(FailedPrecondition("truncated symbol table"));
        return;
      }
      const std::uint32_t count = LoadLE<std::uint32_t>(raw.data());
      if (4 + count * 16ull > raw.size()) {
        done(FailedPrecondition("truncated symbol table"));
        return;
      }
      flow->symbols_.clear();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t hash =
            LoadLE<std::uint64_t>(raw.data() + 4 + i * 16);
        const std::uint64_t value =
            LoadLE<std::uint64_t>(raw.data() + 4 + i * 16 + 8);
        flow->symbols_.emplace(hash, value);
      }
      done(flow);
    });
  });
}

void ControlPlane::ReconnectCodeFlow(CodeFlow& flow, Done done) {
  // The old QP is unusable once errored (real verbs would destroy it);
  // bring up a fresh pair on both ends and re-run the handshake over it.
  rdma::QueuePair& local_qp = fabric_.CreateQp(self_, *cq_, *cq_);
  rdma::CompletionQueue& remote_cq = fabric_.CreateCq(flow.node_);
  rdma::QueuePair& remote_qp =
      fabric_.CreateQp(flow.node_, remote_cq, remote_cq);
  Status connected = fabric_.Connect(local_qp, remote_qp);
  if (!connected.ok()) {
    done(connected);
    return;
  }
  local_qp.SetSignalingPeriod(config_.signaling_period);
  flow.qp = &local_qp;
  Handshake(&flow, [done = std::move(done)](StatusOr<CodeFlow*> f) {
    done(f.ok() ? OkStatus() : f.status());
  });
}

void ControlPlane::ProbeHook(
    CodeFlow& flow, int hook,
    std::function<void(StatusOr<HookProbe>)> done) {
  auto slot_buf = LocalScratch(8);
  if (!slot_buf.ok()) {
    done(slot_buf.status());
    return;
  }
  rdma::SendWr read_slot;
  read_slot.opcode = rdma::Opcode::kRead;
  read_slot.local = {slot_buf.value(), 8, local_mr_.lkey};
  read_slot.remote_addr = flow.remote_view_.hook_table_addr +
                          static_cast<std::uint64_t>(hook) * 8;
  read_slot.rkey = flow.rkey;
  Post(flow, read_slot, [this, &flow, slot_buf = slot_buf.value(),
                         done = std::move(done)](
                            const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("hook slot read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    const std::uint64_t desc_addr = mem.ReadU64(slot_buf).value();
    if (desc_addr == 0) {
      done(HookProbe{});
      return;
    }
    auto ver_buf = LocalScratch(8);
    if (!ver_buf.ok()) {
      done(ver_buf.status());
      return;
    }
    rdma::SendWr read_ver;
    read_ver.opcode = rdma::Opcode::kRead;
    read_ver.local = {ver_buf.value(), 8, local_mr_.lkey};
    read_ver.remote_addr = desc_addr + kDescVersion;
    read_ver.rkey = flow.rkey;
    Post(flow, read_ver, [this, desc_addr, ver_buf = ver_buf.value(),
                          done = std::move(done)](
                             const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("desc version read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      done(HookProbe{desc_addr, mem.ReadU64(ver_buf).value()});
    });
  });
}

sim::SimTime ControlPlane::LastSuccess(rdma::NodeId node) const {
  auto it = last_success_.find(node);
  return it == last_success_.end() ? -1 : it->second;
}

bool ControlPlane::NodeHealthy(rdma::NodeId node,
                               sim::Duration lease) const {
  const sim::SimTime last = LastSuccess(node);
  return last >= 0 && events_.Now() - last <= lease;
}

// ---- compile pipeline -------------------------------------------------

void ControlPlane::ValidateCode(const bpf::Program& prog, Done done) {
  const std::uint64_t fp = ProgramFingerprint(prog);
  // Blacklist check comes before the verify cache: a quarantined program
  // is refused even though it verified fine before (verification is
  // necessary but not sufficient, §5).
  if (IsBlacklisted(fp)) {
    done(PermissionDenied("program fingerprint is quarantined"));
    return;
  }
  if (const bool* verdict = artifacts_.FindEbpfVerdict(fp)) {
    done(*verdict ? OkStatus()
                  : InvalidArgument("program known to fail verification"));
    return;
  }
  // Real verification work happens now; virtual time is charged to the
  // control plane's CPU (not any data-plane node).
  bpf::VerifierStats stats;
  const Status verdict = bpf::Verifier().Verify(prog, &stats);
  artifacts_.PutEbpfVerdict(fp, verdict.ok());
  cpu_.Submit(config_.cost.VerifyCycles(prog.size()),
              [done = std::move(done), verdict] { done(verdict); });
}

void ControlPlane::JitCompileCode(
    const bpf::Program& prog,
    std::function<void(StatusOr<const bpf::JitImage*>)> done) {
  const std::uint64_t fp = ProgramFingerprint(prog);
  if (const bpf::JitImage* hit = artifacts_.FindEbpf(fp)) {
    done(hit);
    return;
  }
  auto image = bpf::JitCompiler().Compile(prog);
  cpu_.Submit(config_.cost.JitCycles(prog.size()),
              [this, fp, image = std::move(image), done = std::move(done)] {
                if (!image.ok()) {
                  done(image.status());
                  return;
                }
                done(artifacts_.PutEbpf(fp, image.value()));
              });
}

void ControlPlane::ValidateWasm(const wasm::FilterModule& module, Done done) {
  const std::uint64_t fp = WasmFingerprint(module);
  if (IsBlacklisted(fp)) {
    done(PermissionDenied("filter fingerprint is quarantined"));
    return;
  }
  if (const bool* verdict = artifacts_.FindWasmVerdict(fp)) {
    done(*verdict ? OkStatus()
                  : InvalidArgument("filter known to fail validation"));
    return;
  }
  const Status verdict = wasm::ValidateFilter(module);
  artifacts_.PutWasmVerdict(fp, verdict.ok());
  cpu_.Submit(config_.cost.WasmValidateCycles(module.size()),
              [done = std::move(done), verdict] { done(verdict); });
}

void ControlPlane::CompileWasm(
    const wasm::FilterModule& module,
    std::function<void(StatusOr<const wasm::WasmImage*>)> done) {
  const std::uint64_t fp = WasmFingerprint(module);
  if (const wasm::WasmImage* hit = artifacts_.FindWasm(fp)) {
    done(hit);
    return;
  }
  auto image = wasm::CompileFilter(module);
  cpu_.Submit(config_.cost.WasmCompileCycles(module.size()),
              [this, fp, image = std::move(image), done = std::move(done)] {
                if (!image.ok()) {
                  done(image.status());
                  return;
                }
                done(artifacts_.PutWasm(fp, image.value()));
              });
}

// ---- link -------------------------------------------------------------

void ControlPlane::LinkCode(
    CodeFlow& flow, const bpf::JitImage& image,
    std::function<void(StatusOr<bpf::JitImage>)> done) {
  bpf::JitImage linked = image;
  for (const bpf::Relocation& reloc : linked.relocs) {
    if (reloc.kind == bpf::RelocKind::kHelperCall) {
      auto symbol = flow.Symbol(
          SymbolHash("helper:", static_cast<std::uint64_t>(reloc.symbol)));
      if (!symbol.ok()) {
        done(FailedPrecondition("target node does not export helper " +
                                std::to_string(reloc.symbol)));
        return;
      }
      continue;
    }
    // Map relocation: patch the placeholder with the node-local XState
    // address deployed for this map.
    if (reloc.symbol < 0 ||
        static_cast<std::size_t>(reloc.symbol) >= linked.maps.size()) {
      done(Internal("relocation references unknown map slot"));
      return;
    }
    const std::string& name = linked.maps[reloc.symbol].name;
    auto it = flow.xstate_addrs_.find(name);
    if (it == flow.xstate_addrs_.end()) {
      done(FailedPrecondition("XState '" + name +
                              "' not deployed on target"));
      return;
    }
    linked.code[reloc.index].imm64 = it->second;
  }
  cpu_.Submit(
      config_.cost.link_cycles_per_reloc *
          std::max<std::uint64_t>(linked.relocs.size(), 1),
      [done = std::move(done), linked = std::move(linked)]() mutable {
        done(std::move(linked));
      });
}

void ControlPlane::LinkWasm(
    CodeFlow& flow, const wasm::WasmImage& image,
    std::function<void(StatusOr<wasm::WasmImage>)> done) {
  wasm::WasmImage linked = image;
  for (wasm::WasmReloc& reloc : linked.relocs) {
    auto symbol =
        flow.Symbol(SymbolHashName("host:", reloc.import_name.c_str()));
    if (!symbol.ok()) {
      done(FailedPrecondition("target node does not export host fn '" +
                              reloc.import_name + "'"));
      return;
    }
    reloc.resolved_host_fn = static_cast<std::int32_t>(symbol.value());
    linked.code[reloc.insn_index].imm =
        static_cast<std::int64_t>(symbol.value());
  }
  cpu_.Submit(
      config_.cost.link_cycles_per_reloc *
          std::max<std::uint64_t>(linked.relocs.size(), 1),
      [done = std::move(done), linked = std::move(linked)]() mutable {
        done(std::move(linked));
      });
}

// ---- RDMA building blocks ----------------------------------------------

void ControlPlane::RemoteAlloc(
    CodeFlow& flow, std::uint64_t bytes,
    std::function<void(StatusOr<std::uint64_t>)> done) {
  bytes = AlignUp(bytes, kAllocAlign);
  auto landing = LocalScratch(8);
  if (!landing.ok()) {
    done(landing.status());
    return;
  }
  rdma::SendWr faa;
  faa.opcode = rdma::Opcode::kFetchAdd;
  faa.local = {landing.value(), 8, local_mr_.lkey};
  faa.remote_addr = flow.remote_view_.cb_addr + kCbScratchBrk;
  faa.rkey = flow.rkey;
  faa.compare_add = bytes;
  Post(flow, faa, [&flow, bytes, done](const rdma::WorkCompletion& wc) {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("scratchpad FETCH_ADD failed"));
      return;
    }
    const std::uint64_t addr = wc.atomic_original;
    const ControlBlockView& view = flow.remote_view();
    if (addr + bytes > view.scratch_addr + view.scratch_size) {
      // Deterministic for a given sandbox state — non-retryable (the
      // recovery layer aborts instead of backing off).
      done(ScratchExhausted("remote scratchpad exhausted"));
      return;
    }
    done(addr);
  });
}

void ControlPlane::WriteChunked(CodeFlow& flow, Bytes payload,
                                std::uint64_t remote_addr, Done done) {
  const std::size_t total = payload.size();
  const std::size_t nchunks =
      std::max<std::size_t>(1, (total + config_.chunk_bytes - 1) /
                                   config_.chunk_bytes);
  auto remaining = std::make_shared<std::size_t>(nchunks);
  auto failed = std::make_shared<bool>(false);
  auto& mem = fabric_.node(self_).memory();
  auto on_wc = [remaining, failed, done](const rdma::WorkCompletion& wc) {
    if (wc.status != rdma::WcStatus::kSuccess) *failed = true;
    if (--*remaining == 0) {
      done(*failed ? Unavailable("RDMA write failed") : OkStatus());
    }
  };

  // Multi-chunk payloads go out as one doorbell-batched chain: the NIC
  // walks the WR linked list after a single MMIO ring, amortizing the
  // per-post doorbell cost across the whole transfer.
  const bool batch = config_.use_doorbell_batching && nchunks > 1;
  std::vector<rdma::SendWr> chain;
  if (batch) chain.reserve(nchunks);

  std::size_t off = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t len =
        std::min<std::size_t>(config_.chunk_bytes, total - off);
    auto src = LocalScratch(std::max<std::size_t>(len, 1));
    if (!src.ok()) {
      done(src.status());
      return;
    }
    if (len > 0) {
      (void)mem.Write(src.value(), ByteSpan(payload.data() + off, len));
    }
    rdma::SendWr write;
    write.opcode = rdma::Opcode::kWrite;
    write.local = {src.value(), static_cast<std::uint32_t>(len),
                   local_mr_.lkey};
    write.remote_addr = remote_addr + off;
    write.rkey = flow.rkey;
    if (batch) {
      chain.push_back(write);
    } else {
      Post(flow, write, on_wc);
    }
    off += len;
  }
  if (batch) PostChain(flow, std::move(chain), on_wc);
}

void ControlPlane::CommitHook(CodeFlow& flow, int hook,
                              std::uint64_t desc_addr, Done done) {
  if (config_.use_lock) {
    // rdx_mutual_excl around the commit: take the sandbox lock via RDMA
    // CAS, commit, release. Contention retries after a short backoff.
    const std::uint64_t owner = 0x4350u;  // "CP"
    Lock(flow, owner, [this, &flow, hook, desc_addr,
                       done = std::move(done), owner](Status s) mutable {
      if (!s.ok() && s.code() == StatusCode::kAborted) {
        events_.ScheduleAfter(sim::Micros(5), [this, &flow, hook, desc_addr,
                                               done = std::move(done)]() mutable {
          CommitHook(flow, hook, desc_addr, std::move(done));
        });
        return;
      }
      if (!s.ok()) {
        done(s);
        return;
      }
      ControlPlaneConfig saved = config_;
      config_.use_lock = false;  // avoid recursing into the lock path
      CommitHook(flow, hook, desc_addr,
                 [this, &flow, owner, done = std::move(done)](Status s2) mutable {
                   Unlock(flow, owner, [done = std::move(done), s2](Status) {
                     done(s2);
                   });
                 });
      config_ = saved;
    });
    return;
  }
  // The commit is a single 8-byte write of the hook slot — atomic with
  // respect to the data-plane CPU, which is the crux of rdx_tx.
  const std::uint64_t slot_addr =
      flow.remote_view_.hook_table_addr + static_cast<std::uint64_t>(hook) * 8;

  if (config_.use_doorbell_batching && config_.use_cc_event) {
    // Small-op fast path: commit qword + epoch bump + cc_event flush as
    // ONE doorbell-batched chain. The three ops are ordered by RC anyway,
    // so splitting them into separate posts only added doorbells and a
    // full round trip between commit and visibility. The epoch FAA needs
    // no completion of its own (unsignaled; implied by the tail).
    auto& mem = fabric_.node(self_).memory();
    auto slot_src = LocalScratch(8);
    auto flush_src = LocalScratch(8);
    auto epoch_landing = LocalScratch(8);
    if (!slot_src.ok() || !flush_src.ok() || !epoch_landing.ok()) {
      done(slot_src.ok() ? (flush_src.ok() ? epoch_landing.status()
                                           : flush_src.status())
                         : slot_src.status());
      return;
    }
    (void)mem.WriteU64(slot_src.value(), desc_addr);

    rdma::SendWr commit;
    commit.opcode = rdma::Opcode::kWrite;
    commit.local = {slot_src.value(), 8, local_mr_.lkey};
    commit.remote_addr = slot_addr;
    commit.rkey = flow.rkey;

    rdma::SendWr faa;
    faa.opcode = rdma::Opcode::kFetchAdd;
    faa.local = {epoch_landing.value(), 8, local_mr_.lkey};
    faa.remote_addr = flow.remote_view_.cb_addr + kCbEpoch;
    faa.rkey = flow.rkey;
    faa.compare_add = 1;
    faa.signaled = false;

    rdma::SendWr flush;
    flush.opcode = rdma::Opcode::kWrite;
    flush.local = {flush_src.value(), 8, local_mr_.lkey};
    flush.remote_addr = flow.remote_view_.cb_addr + kCbDoorbell;
    flush.rkey = flow.rkey;

    ++flow.epoch_;
    auto remaining = std::make_shared<int>(3);
    auto failed = std::make_shared<bool>(false);
    PostChain(flow, {commit, faa, flush},
              [&flow, hook, remaining, failed,
               done = std::move(done)](const rdma::WorkCompletion& wc) {
                if (wc.status != rdma::WcStatus::kSuccess) *failed = true;
                if (--*remaining != 0) return;
                if (*failed) {
                  done(Unavailable("commit chain failed"));
                  return;
                }
                flow.sandbox->ScheduleHookRefresh(
                    hook, flow.sandbox->VisibilityDelay(
                              /*coherent_flush=*/true));
                done(OkStatus());
              });
    return;
  }

  Bytes qword(8);
  StoreLE(qword.data(), desc_addr);
  auto after_commit = [this, &flow, hook, done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    CommitVisibility(flow, hook, std::move(done));
  };

  WriteChunked(flow, std::move(qword), slot_addr, std::move(after_commit));
}

void ControlPlane::CommitVisibility(CodeFlow& flow, int hook, Done done) {
  ++flow.epoch_;
  auto landing = LocalScratch(8);
  if (config_.use_cc_event && config_.use_doorbell_batching &&
      landing.ok()) {
    // Fast path: epoch bump + cc_event flush share one doorbell. The FAA
    // is unsignaled (fire and forget, implied by the flush completion).
    auto flush_src = LocalScratch(8);
    if (flush_src.ok()) {
      rdma::SendWr faa;
      faa.opcode = rdma::Opcode::kFetchAdd;
      faa.local = {landing.value(), 8, local_mr_.lkey};
      faa.remote_addr = flow.remote_view_.cb_addr + kCbEpoch;
      faa.rkey = flow.rkey;
      faa.compare_add = 1;
      faa.signaled = false;

      rdma::SendWr flush;
      flush.opcode = rdma::Opcode::kWrite;
      flush.local = {flush_src.value(), 8, local_mr_.lkey};
      flush.remote_addr = flow.remote_view_.cb_addr + kCbDoorbell;
      flush.rkey = flow.rkey;

      auto remaining = std::make_shared<int>(2);
      auto failed = std::make_shared<bool>(false);
      PostChain(flow, {faa, flush},
                [&flow, hook, remaining, failed,
                 done = std::move(done)](const rdma::WorkCompletion& wc) {
                  if (wc.status != rdma::WcStatus::kSuccess) *failed = true;
                  if (--*remaining != 0) return;
                  if (*failed) {
                    done(Unavailable("cc_event write failed"));
                    return;
                  }
                  flow.sandbox->ScheduleHookRefresh(
                      hook, flow.sandbox->VisibilityDelay(
                                /*coherent_flush=*/true));
                  done(OkStatus());
                });
      return;
    }
  }
  // Bump the remote epoch (fire and forget for timing purposes).
  if (landing.ok()) {
    rdma::SendWr faa;
    faa.opcode = rdma::Opcode::kFetchAdd;
    faa.local = {landing.value(), 8, local_mr_.lkey};
    faa.remote_addr = flow.remote_view_.cb_addr + kCbEpoch;
    faa.rkey = flow.rkey;
    faa.compare_add = 1;
    Post(flow, faa, [](const rdma::WorkCompletion&) {});
  }
  // Visibility: with rdx_cc_event the control plane injects a flush
  // (constant ~2 us); without it the CPU discovers the new slot only
  // when cache pressure evicts the stale line.
  if (config_.use_cc_event) {
    CcEvent(flow, hook, std::move(done));
  } else {
    flow.sandbox->ScheduleHookRefresh(
        hook, flow.sandbox->VisibilityDelay(/*coherent_flush=*/false));
    done(OkStatus());
  }
}

void ControlPlane::CcEvent(CodeFlow& flow, int hook, Done done) {
  // Models injecting a tiny cache-coherent flush binary at the event
  // hook: one header-sized verb plus the flush execution latency.
  auto src = LocalScratch(8);
  if (!src.ok()) {
    done(src.status());
    return;
  }
  rdma::SendWr write;
  write.opcode = rdma::Opcode::kWrite;
  write.local = {src.value(), 8, local_mr_.lkey};
  // The "event hook" doorbell word of the control block.
  write.remote_addr = flow.remote_view_.cb_addr + kCbDoorbell;
  write.rkey = flow.rkey;
  Post(flow, write,
       [&flow, hook, done = std::move(done)](const rdma::WorkCompletion& wc) {
         if (wc.status != rdma::WcStatus::kSuccess) {
           done(Unavailable("cc_event write failed"));
           return;
         }
         flow.sandbox->ScheduleHookRefresh(
             hook, flow.sandbox->VisibilityDelay(/*coherent_flush=*/true));
         done(OkStatus());
       });
}

void ControlPlane::Lock(CodeFlow& flow, std::uint64_t owner, Done done) {
  auto landing = LocalScratch(8);
  if (!landing.ok()) {
    done(landing.status());
    return;
  }
  rdma::SendWr cas;
  cas.opcode = rdma::Opcode::kCompareSwap;
  cas.local = {landing.value(), 8, local_mr_.lkey};
  cas.remote_addr = flow.remote_view_.cb_addr + kCbLock;
  cas.rkey = flow.rkey;
  cas.compare_add = 0;  // expect unlocked
  cas.swap = owner;
  Post(flow, cas, [done = std::move(done)](const rdma::WorkCompletion& wc) {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("lock CAS failed"));
      return;
    }
    done(wc.atomic_original == 0
             ? OkStatus()
             : Aborted("sandbox lock held by another owner"));
  });
}

void ControlPlane::Unlock(CodeFlow& flow, std::uint64_t owner, Done done) {
  auto landing = LocalScratch(8);
  if (!landing.ok()) {
    done(landing.status());
    return;
  }
  rdma::SendWr cas;
  cas.opcode = rdma::Opcode::kCompareSwap;
  cas.local = {landing.value(), 8, local_mr_.lkey};
  cas.remote_addr = flow.remote_view_.cb_addr + kCbLock;
  cas.rkey = flow.rkey;
  cas.compare_add = owner;
  cas.swap = 0;
  Post(flow, cas, [done = std::move(done)](const rdma::WorkCompletion& wc) {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("unlock CAS failed"));
      return;
    }
    done(wc.atomic_original == 0 ? Aborted("lock was not held") : OkStatus());
  });
}

void ControlPlane::Tx(CodeFlow& flow, Bytes payload, std::uint64_t qword_addr,
                      std::uint64_t qword_value,
                      std::function<void(StatusOr<std::uint64_t>)> done) {
  RemoteAlloc(flow, payload.size(),
              [this, &flow, payload = std::move(payload), qword_addr,
               qword_value, done = std::move(done)](
                  StatusOr<std::uint64_t> addr) mutable {
                if (!addr.ok()) {
                  done(addr.status());
                  return;
                }
                const std::uint64_t payload_addr = addr.value();
                WriteChunked(
                    flow, std::move(payload), payload_addr,
                    [this, &flow, qword_addr, qword_value, payload_addr,
                     done = std::move(done)](Status s) mutable {
                      if (!s.ok()) {
                        done(s);
                        return;
                      }
                      Bytes qword(8);
                      StoreLE(qword.data(), qword_value);
                      WriteChunked(flow, std::move(qword), qword_addr,
                                   [payload_addr, done = std::move(done)](
                                       Status s2) {
                                     if (!s2.ok()) {
                                       done(s2);
                                       return;
                                     }
                                     done(payload_addr);
                                   });
                    });
              });
}

// ---- XState (§3.4) ------------------------------------------------------

void ControlPlane::DeployXState(
    CodeFlow& flow, const bpf::MapSpec& spec,
    std::function<void(StatusOr<std::uint64_t>)> done) {
  const std::uint64_t bytes = bpf::MapRequiredBytes(spec);
  // Format the XState locally (header + zeroed body), then land it with a
  // remote transaction whose qword swap is the Meta-XState entry.
  Bytes storage(bytes, 0);
  bpf::MapView view(storage);
  Status init = view.Init(spec);
  if (!init.ok()) {
    done(init);
    return;
  }
  if (flow.next_meta_slot_ >= flow.remote_view_.meta_capacity) {
    done(ResourceExhausted("Meta-XState directory full"));
    return;
  }
  const std::uint32_t meta_slot = flow.next_meta_slot_++;
  const std::uint64_t meta_entry_addr =
      flow.remote_view_.meta_xstate_addr + meta_slot * 8ull;

  RemoteAlloc(flow, bytes,
              [this, &flow, storage = std::move(storage), meta_entry_addr,
               name = spec.name, done = std::move(done)](
                  StatusOr<std::uint64_t> addr) mutable {
                if (!addr.ok()) {
                  done(addr.status());
                  return;
                }
                const std::uint64_t xstate_addr = addr.value();
                WriteChunked(
                    flow, std::move(storage), xstate_addr,
                    [this, &flow, xstate_addr, meta_entry_addr, name,
                     done = std::move(done)](Status s) mutable {
                      if (!s.ok()) {
                        done(s);
                        return;
                      }
                      Bytes entry(8);
                      StoreLE(entry.data(), xstate_addr);
                      WriteChunked(flow, std::move(entry), meta_entry_addr,
                                   [&flow, xstate_addr, name,
                                    done = std::move(done)](Status s2) {
                                     if (!s2.ok()) {
                                       done(s2);
                                       return;
                                     }
                                     flow.xstate_addrs_[name] = xstate_addr;
                                     done(xstate_addr);
                                   });
                    });
              });
}

void ControlPlane::XStateLookup(CodeFlow& flow, std::uint64_t xstate_addr,
                                Bytes key,
                                std::function<void(StatusOr<Bytes>)> done) {
  // Read the full XState storage, then resolve the key locally. (An
  // array-map fast path could read just the value; the general path keeps
  // hash maps correct.)
  auto header_buf = LocalScratch(bpf::kMapHeaderBytes);
  if (!header_buf.ok()) {
    done(header_buf.status());
    return;
  }
  rdma::SendWr read_header;
  read_header.opcode = rdma::Opcode::kRead;
  read_header.local = {header_buf.value(), bpf::kMapHeaderBytes,
                       local_mr_.lkey};
  read_header.remote_addr = xstate_addr;
  read_header.rkey = flow.rkey;
  Post(flow, read_header, [this, &flow, xstate_addr, key = std::move(key),
                           header_buf = header_buf.value(),
                           done = std::move(done)](
                              const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("XState header read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    Bytes header_bytes(bpf::kMapHeaderBytes);
    (void)mem.Read(header_buf, header_bytes);
    bpf::MapView probe(header_bytes);
    auto header = probe.Header();
    if (!header.ok()) {
      done(header.status());
      return;
    }
    bpf::MapSpec spec{"", header->type, header->key_size,
                      header->value_size, header->max_entries};
    const std::uint64_t total = bpf::MapRequiredBytes(spec);
    auto body_buf = LocalScratch(total);
    if (!body_buf.ok()) {
      done(body_buf.status());
      return;
    }
    rdma::SendWr read_all;
    read_all.opcode = rdma::Opcode::kRead;
    read_all.local = {body_buf.value(), static_cast<std::uint32_t>(total),
                      local_mr_.lkey};
    read_all.remote_addr = xstate_addr;
    read_all.rkey = flow.rkey;
    Post(flow, read_all,
         [this, total, spec, key = std::move(key), body_buf = body_buf.value(),
          done = std::move(done)](const rdma::WorkCompletion& wc2) mutable {
           if (wc2.status != rdma::WcStatus::kSuccess) {
             done(Unavailable("XState body read failed"));
             return;
           }
           auto& mem = fabric_.node(self_).memory();
           Bytes body(total);
           (void)mem.Read(body_buf, body);
           bpf::MapView view(body);
           Bytes value(spec.value_size);
           Status s = view.Lookup(key, value);
           if (!s.ok()) {
             done(s);
             return;
           }
           done(std::move(value));
         });
  });
}

void ControlPlane::XStateUpdate(CodeFlow& flow, std::uint64_t xstate_addr,
                                Bytes key, Bytes value, Done done) {
  // Same pattern: fetch storage, apply the update locally to compute the
  // dirty range, write back just the touched entry plus the header word.
  auto header_buf = LocalScratch(bpf::kMapHeaderBytes);
  if (!header_buf.ok()) {
    done(header_buf.status());
    return;
  }
  rdma::SendWr read_header;
  read_header.opcode = rdma::Opcode::kRead;
  read_header.local = {header_buf.value(), bpf::kMapHeaderBytes,
                       local_mr_.lkey};
  read_header.remote_addr = xstate_addr;
  read_header.rkey = flow.rkey;
  Post(flow, read_header, [this, &flow, xstate_addr, key = std::move(key),
                           value = std::move(value),
                           header_buf = header_buf.value(),
                           done = std::move(done)](
                              const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("XState header read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    Bytes header_bytes(bpf::kMapHeaderBytes);
    (void)mem.Read(header_buf, header_bytes);
    bpf::MapView probe(header_bytes);
    auto header = probe.Header();
    if (!header.ok()) {
      done(header.status());
      return;
    }
    bpf::MapSpec spec{"", header->type, header->key_size,
                      header->value_size, header->max_entries};
    const std::uint64_t total = bpf::MapRequiredBytes(spec);
    auto body_buf = LocalScratch(total);
    if (!body_buf.ok()) {
      done(body_buf.status());
      return;
    }
    rdma::SendWr read_all;
    read_all.opcode = rdma::Opcode::kRead;
    read_all.local = {body_buf.value(), static_cast<std::uint32_t>(total),
                      local_mr_.lkey};
    read_all.remote_addr = xstate_addr;
    read_all.rkey = flow.rkey;
    Post(flow, read_all, [this, &flow, xstate_addr, total, spec,
                          key = std::move(key), value = std::move(value),
                          body_buf = body_buf.value(),
                          done = std::move(done)](
                             const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("XState body read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      Bytes body(total);
      (void)mem.Read(body_buf, body);
      bpf::MapView view(body);
      Status s = view.Update(key, value);
      if (!s.ok()) {
        done(s);
        return;
      }
      // Write back the whole storage (conservative dirty range).
      WriteChunked(flow, std::move(body), xstate_addr, std::move(done));
    });
  });
}

void ControlPlane::CopyXState(CodeFlow& src, std::uint64_t src_addr,
                              CodeFlow& dst, std::uint64_t dst_addr,
                              Done done) {
  // Read the source header to learn the geometry, then move the whole
  // storage in one read + one chunked write.
  auto header_buf = LocalScratch(bpf::kMapHeaderBytes);
  if (!header_buf.ok()) {
    done(header_buf.status());
    return;
  }
  rdma::SendWr read_header;
  read_header.opcode = rdma::Opcode::kRead;
  read_header.local = {header_buf.value(), bpf::kMapHeaderBytes,
                       local_mr_.lkey};
  read_header.remote_addr = src_addr;
  read_header.rkey = src.rkey;
  Post(src, read_header, [this, &src, &dst, src_addr, dst_addr,
                          header_buf = header_buf.value(),
                          done = std::move(done)](
                             const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("XState header read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    Bytes header_bytes(bpf::kMapHeaderBytes);
    (void)mem.Read(header_buf, header_bytes);
    bpf::MapView probe(header_bytes);
    auto header = probe.Header();
    if (!header.ok()) {
      done(header.status());
      return;
    }
    bpf::MapSpec spec{"", header->type, header->key_size,
                      header->value_size, header->max_entries};
    const std::uint64_t total = bpf::MapRequiredBytes(spec);
    auto body_buf = LocalScratch(total);
    if (!body_buf.ok()) {
      done(body_buf.status());
      return;
    }
    rdma::SendWr read_all;
    read_all.opcode = rdma::Opcode::kRead;
    read_all.local = {body_buf.value(), static_cast<std::uint32_t>(total),
                      local_mr_.lkey};
    read_all.remote_addr = src_addr;
    read_all.rkey = src.rkey;
    Post(src, read_all, [this, &dst, dst_addr, total,
                         body_buf = body_buf.value(),
                         done = std::move(done)](
                            const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("XState body read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      Bytes body(total);
      (void)mem.Read(body_buf, body);
      WriteChunked(dst, std::move(body), dst_addr, std::move(done));
    });
  });
}

void ControlPlane::XStateDump(
    CodeFlow& flow, std::uint64_t xstate_addr,
    std::function<void(StatusOr<std::vector<std::pair<Bytes, Bytes>>>)>
        done) {
  auto header_buf = LocalScratch(bpf::kMapHeaderBytes);
  if (!header_buf.ok()) {
    done(header_buf.status());
    return;
  }
  rdma::SendWr read_header;
  read_header.opcode = rdma::Opcode::kRead;
  read_header.local = {header_buf.value(), bpf::kMapHeaderBytes,
                       local_mr_.lkey};
  read_header.remote_addr = xstate_addr;
  read_header.rkey = flow.rkey;
  Post(flow, read_header, [this, &flow, xstate_addr,
                           header_buf = header_buf.value(),
                           done = std::move(done)](
                              const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("XState header read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    Bytes header_bytes(bpf::kMapHeaderBytes);
    (void)mem.Read(header_buf, header_bytes);
    bpf::MapView probe(header_bytes);
    auto header = probe.Header();
    if (!header.ok()) {
      done(header.status());
      return;
    }
    bpf::MapSpec spec{"", header->type, header->key_size,
                      header->value_size, header->max_entries};
    const std::uint64_t total = bpf::MapRequiredBytes(spec);
    auto body_buf = LocalScratch(total);
    if (!body_buf.ok()) {
      done(body_buf.status());
      return;
    }
    rdma::SendWr read_all;
    read_all.opcode = rdma::Opcode::kRead;
    read_all.local = {body_buf.value(), static_cast<std::uint32_t>(total),
                      local_mr_.lkey};
    read_all.remote_addr = xstate_addr;
    read_all.rkey = flow.rkey;
    Post(flow, read_all, [this, total, body_buf = body_buf.value(),
                          done = std::move(done)](
                             const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("XState body read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      Bytes body(total);
      (void)mem.Read(body_buf, body);
      bpf::MapView view(body);
      done(view.Dump());
    });
  });
}

void ControlPlane::XStateRingConsume(
    CodeFlow& flow, std::uint64_t xstate_addr,
    std::function<void(StatusOr<std::vector<Bytes>>)> done) {
  // Read the header to learn the geometry, read the whole ring, decode
  // records locally, then advance the remote tail word. Records produced
  // after our snapshot are simply picked up by the next consume; the
  // tail only moves past records we fully decoded, so the producer/
  // consumer protocol stays correct with one-sided access.
  auto header_buf = LocalScratch(bpf::kMapHeaderBytes);
  if (!header_buf.ok()) {
    done(header_buf.status());
    return;
  }
  rdma::SendWr read_header;
  read_header.opcode = rdma::Opcode::kRead;
  read_header.local = {header_buf.value(), bpf::kMapHeaderBytes,
                       local_mr_.lkey};
  read_header.remote_addr = xstate_addr;
  read_header.rkey = flow.rkey;
  Post(flow, read_header, [this, &flow, xstate_addr,
                           header_buf = header_buf.value(),
                           done = std::move(done)](
                              const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("ring header read failed"));
      return;
    }
    auto& mem = fabric_.node(self_).memory();
    Bytes header_bytes(bpf::kMapHeaderBytes);
    (void)mem.Read(header_buf, header_bytes);
    bpf::MapView probe(header_bytes);
    auto header = probe.Header();
    if (!header.ok()) {
      done(header.status());
      return;
    }
    if (header->type != bpf::MapType::kRingBuf) {
      done(FailedPrecondition("XState is not a ring buffer"));
      return;
    }
    bpf::MapSpec spec{"", header->type, header->key_size,
                      header->value_size, header->max_entries};
    const std::uint64_t total = bpf::MapRequiredBytes(spec);
    auto body_buf = LocalScratch(total);
    if (!body_buf.ok()) {
      done(body_buf.status());
      return;
    }
    rdma::SendWr read_all;
    read_all.opcode = rdma::Opcode::kRead;
    read_all.local = {body_buf.value(), static_cast<std::uint32_t>(total),
                      local_mr_.lkey};
    read_all.remote_addr = xstate_addr;
    read_all.rkey = flow.rkey;
    Post(flow, read_all, [this, &flow, xstate_addr, total,
                          body_buf = body_buf.value(),
                          done = std::move(done)](
                             const rdma::WorkCompletion& wc2) mutable {
      if (wc2.status != rdma::WcStatus::kSuccess) {
        done(Unavailable("ring body read failed"));
        return;
      }
      auto& mem = fabric_.node(self_).memory();
      Bytes body(total);
      (void)mem.Read(body_buf, body);
      bpf::MapView view(body);
      auto records = view.RingConsume();
      if (!records.ok()) {
        done(records.status());
        return;
      }
      if (records->empty()) {
        done(std::vector<Bytes>{});
        return;
      }
      // RingConsume advanced the tail in our local copy; publish it.
      const std::uint64_t new_tail =
          LoadLE<std::uint64_t>(body.data() + bpf::kRingTailOffset);
      Bytes tail(8);
      StoreLE(tail.data(), new_tail);
      WriteChunked(flow, std::move(tail),
                   xstate_addr + bpf::kRingTailOffset,
                   [records = std::move(records).value(),
                    done = std::move(done)](Status s) mutable {
                     if (!s.ok()) {
                       done(s);
                       return;
                     }
                     done(std::move(records));
                   });
    });
  });
}

// ---- deploy ------------------------------------------------------------

void ControlPlane::DeployImageBytes(CodeFlow& flow, Bytes image_bytes,
                                    int hook, std::uint64_t version,
                                    Done done, InjectTrace* trace,
                                    std::uint64_t fingerprint) {
  const sim::SimTime dispatch_start = events_.Now();
  events_.ScheduleAfter(config_.cost.rdx_dispatch_overhead, [this, &flow,
                                                             image_bytes =
                                                                 std::move(
                                                                     image_bytes),
                                                             hook, version,
                                                             done = std::move(
                                                                 done),
                                                             trace, fingerprint,
                                                             dispatch_start]() mutable {
    auto& deployment = flow.hooks_[hook];
    const sim::SimTime transfer_start = events_.Now();

    // Vanilla (non-transactional) path: overwrite the live image region
    // in place when it fits. The naive update order — metadata first,
    // then code — leaves a window during which the data-plane CPU reads a
    // *torn* image (new length/version, mixed code bytes). This is the
    // §3.5 hazard rdx_tx's shadow-copy + qword-swap eliminates.
    if (!config_.use_tx && deployment.desc_addr != 0 &&
        image_bytes.size() <= deployment.region_capacity) {
      const std::uint64_t image_addr = deployment.image_addr;
      const std::uint64_t image_len = image_bytes.size();
      Bytes desc(kImageDescBytes);
      StoreLE(desc.data() + kDescImageAddr, image_addr);
      StoreLE(desc.data() + kDescImageLen, image_len);
      StoreLE(desc.data() + kDescVersion, version);
      StoreLE(desc.data() + kDescRefcount, 1ull);
      if (config_.signing_key != 0) {
        StoreLE(desc.data() + kDescSignature,
                SignImage(image_bytes, config_.signing_key));
      }
      WriteChunked(
          flow, std::move(desc), deployment.desc_addr,
          [this, &flow, hook, image_addr, version, fingerprint,
           image_bytes = std::move(image_bytes), done = std::move(done),
           trace, transfer_start](Status s) mutable {
            if (!s.ok()) {
              done(s);
              return;
            }
            WriteChunked(
                flow, std::move(image_bytes), image_addr,
                [this, &flow, hook, version, fingerprint,
                 done = std::move(done), trace,
                 transfer_start](Status s2) mutable {
                  if (!s2.ok()) {
                    done(s2);
                    return;
                  }
                  flow.hooks_[hook].version = version;
                  flow.hooks_[hook].fingerprint = fingerprint;
                  if (trace != nullptr) {
                    trace->transfer = events_.Now() - transfer_start;
                  }
                  // No atomic commit; visibility via cache eviction (or
                  // flush if configured).
                  flow.sandbox->ScheduleHookRefresh(
                      hook,
                      flow.sandbox->VisibilityDelay(config_.use_cc_event));
                  done(OkStatus());
                });
          });
      return;
    }

    // Transactional path: prepare (image + desc in a fresh region), then
    // an atomic qword commit.
    PrepareImage(flow, std::move(image_bytes), version,
                 [this, &flow, hook, done = std::move(done), trace,
                  transfer_start](StatusOr<PreparedImage> prepared) mutable {
                   if (!prepared.ok()) {
                     done(prepared.status());
                     return;
                   }
                   if (trace != nullptr) {
                     trace->transfer = events_.Now() - transfer_start;
                   }
                   const sim::SimTime commit_start = events_.Now();
                   CommitPrepared(flow, hook, prepared.value(),
                                  [done = std::move(done), trace,
                                   commit_start, prepared = prepared.value(),
                                   this](Status s2) mutable {
                                    if (!s2.ok()) {
                                      done(s2);
                                      return;
                                    }
                                    if (trace != nullptr) {
                                      trace->commit =
                                          events_.Now() - commit_start;
                                      trace->version = prepared.version;
                                    }
                                    done(OkStatus());
                                  });
                 },
                 fingerprint);
  });
  (void)dispatch_start;
}

void ControlPlane::PrepareImage(
    CodeFlow& flow, Bytes image_bytes, std::uint64_t version,
    std::function<void(StatusOr<PreparedImage>)> done,
    std::uint64_t fingerprint) {
  const std::uint64_t image_len = image_bytes.size();
  const std::uint64_t region =
      AlignUp(image_len, kAllocAlign) + kImageDescBytes;
  RemoteAlloc(flow, region, [this, &flow, version, image_len, region,
                             fingerprint,
                             image_bytes = std::move(image_bytes),
                             done = std::move(done)](
                                StatusOr<std::uint64_t> addr) mutable {
    if (!addr.ok()) {
      done(addr.status());
      return;
    }
    const std::uint64_t image_addr = addr.value();
    const std::uint64_t desc_off = AlignUp(image_len, kAllocAlign);
    const std::uint64_t desc_addr = image_addr + desc_off;

    // Compose image + desc into one buffer; RC ordering lets the payload
    // writes and the desc write go out back-to-back (doorbell batch).
    Bytes combined(desc_off + kImageDescBytes, 0);
    std::copy(image_bytes.begin(), image_bytes.end(), combined.begin());
    StoreLE(combined.data() + desc_off + kDescImageAddr, image_addr);
    StoreLE(combined.data() + desc_off + kDescImageLen, image_len);
    StoreLE(combined.data() + desc_off + kDescVersion, version);
    StoreLE(combined.data() + desc_off + kDescRefcount, 1ull);
    if (config_.signing_key != 0) {
      StoreLE(combined.data() + desc_off + kDescSignature,
              SignImage(image_bytes, config_.signing_key));
    }

    WriteChunked(flow, std::move(combined), image_addr,
                 [image_addr, image_len, region, desc_addr, version,
                  fingerprint, done = std::move(done)](Status s) mutable {
                   if (!s.ok()) {
                     done(s);
                     return;
                   }
                   done(PreparedImage{desc_addr, image_addr, image_len,
                                      region - kImageDescBytes, version,
                                      fingerprint});
                 });
  });
}

void ControlPlane::RecordCommit(CodeFlow& flow, int hook,
                                const PreparedImage& prepared) {
  auto& deployment = flow.hooks_[hook];
  if (deployment.desc_addr != 0) {
    deployment.desc_history.push_back(CodeFlow::PastImage{
        deployment.desc_addr, deployment.region_capacity + kImageDescBytes,
        deployment.fingerprint});
  }
  deployment.desc_addr = prepared.desc_addr;
  deployment.image_addr = prepared.image_addr;
  deployment.region_capacity = prepared.region_capacity;
  deployment.version = prepared.version;
  deployment.fingerprint = prepared.fingerprint;
  ReclaimSupersededImages(flow, hook);
}

void ControlPlane::CommitPrepared(CodeFlow& flow, int hook,
                                  const PreparedImage& prepared, Done done) {
  CommitHook(flow, hook, prepared.desc_addr,
             [this, &flow, hook, prepared, done = std::move(done)](Status s) {
               if (!s.ok()) {
                 done(s);
                 return;
               }
               RecordCommit(flow, hook, prepared);
               done(OkStatus());
             });
}

void ControlPlane::CommitPreparedCas(CodeFlow& flow, int hook,
                                     const PreparedImage& prepared,
                                     std::uint64_t expected_desc, Done done) {
  auto landing = LocalScratch(8);
  if (!landing.ok()) {
    done(landing.status());
    return;
  }
  // CAS, not a blind write: wave commits race quarantines and other
  // writers, and a lost race must surface instead of clobbering the slot.
  rdma::SendWr cas;
  cas.opcode = rdma::Opcode::kCompareSwap;
  cas.local = {landing.value(), 8, local_mr_.lkey};
  cas.remote_addr = flow.remote_view_.hook_table_addr +
                    static_cast<std::uint64_t>(hook) * 8;
  cas.rkey = flow.rkey;
  cas.compare_add = expected_desc;
  cas.swap = prepared.desc_addr;
  Post(flow, cas, [this, &flow, hook, prepared, expected_desc,
                   done = std::move(done)](
                      const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("commit CAS failed"));
      return;
    }
    if (wc.atomic_original != expected_desc) {
      done(Aborted("hook slot moved under commit CAS"));
      return;
    }
    CommitVisibility(flow, hook,
                     [this, &flow, hook, prepared,
                      done = std::move(done)](Status s) mutable {
                       if (!s.ok()) {
                         done(s);
                         return;
                       }
                       RecordCommit(flow, hook, prepared);
                       done(OkStatus());
                     });
  });
}

void ControlPlane::ReclaimSupersededImages(CodeFlow& flow, int hook) {
  auto it = flow.hooks_.find(hook);
  if (it == flow.hooks_.end()) return;
  auto& history = it->second.desc_history;
  while (history.size() > config_.hook_history_depth) {
    const CodeFlow::PastImage past = history.front();
    history.erase(history.begin());
    // Drop the superseded desc's refcount over RDMA; the region is dead
    // scratchpad from here on. Accounting lands on the sandbox's stats
    // once the write completes (simulation-side backref).
    Bytes zero(8, 0);
    WriteChunked(flow, std::move(zero), past.desc_addr + kDescRefcount,
                 [&flow, past](Status s) {
                   if (s.ok() && flow.sandbox != nullptr) {
                     flow.sandbox->AccountReclaim(past.region_bytes);
                   }
                 });
  }
}

namespace {
// Versions count update generations of a hook (comparable across nodes,
// which is what mixed-version detection needs).
std::uint64_t NextVersionFor(CodeFlow& flow, int hook) {
  return flow.HookVersion(hook) + 1;
}
}  // namespace

void ControlPlane::DeployProg(CodeFlow& flow, const bpf::JitImage& linked,
                              int hook, Done done) {
  if (!linked.IsLinked()) {
    done(FailedPrecondition("image not linked; call rdx_link_code first"));
    return;
  }
  DeployImageBytes(flow, linked.Serialize(), hook, NextVersionFor(flow, hook),
                   std::move(done), nullptr);
}

void ControlPlane::DeployWasm(CodeFlow& flow, const wasm::WasmImage& linked,
                              int hook, Done done) {
  if (!linked.IsLinked()) {
    done(FailedPrecondition("wasm image not linked"));
    return;
  }
  DeployImageBytes(flow, linked.Serialize(), hook, NextVersionFor(flow, hook),
                   std::move(done), nullptr);
}

// ---- composed pipelines --------------------------------------------------

void ControlPlane::InjectExtension(
    CodeFlow& flow, const bpf::Program& prog, int hook,
    std::function<void(StatusOr<InjectTrace>)> done) {
  auto trace = std::make_shared<InjectTrace>();
  const sim::SimTime t0 = events_.Now();
  const bool cached = artifacts_.ContainsEbpf(ProgramFingerprint(prog));
  trace->compile_cache_hit = cached;

  ValidateCode(prog, [this, &flow, prog, hook, done = std::move(done), trace,
                      t0](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    trace->validate = events_.Now() - t0;
    const sim::SimTime t1 = events_.Now();
    JitCompileCode(prog, [this, &flow, prog, hook, done = std::move(done),
                          trace, t0, t1](
                             StatusOr<const bpf::JitImage*> image) mutable {
      if (!image.ok()) {
        done(image.status());
        return;
      }
      trace->jit = events_.Now() - t1;
      // Deploy any XStates the program declares but the node lacks.
      auto deploy_next = std::make_shared<std::function<void(std::size_t)>>();
      std::weak_ptr<std::function<void(std::size_t)>> weak = deploy_next;
      const bpf::JitImage* img = image.value();
      *deploy_next = [this, &flow, img, prog, hook, done = std::move(done),
                      trace, t0, weak](std::size_t i) mutable {
        auto self = weak.lock();
        if (!self) return;
        const sim::SimTime tx0 = events_.Now();
        while (i < prog.maps.size() &&
               flow.xstate_addrs_.count(prog.maps[i].name) != 0) {
          ++i;
        }
        if (i < prog.maps.size()) {
          DeployXState(flow, prog.maps[i],
                       [self, i, done, trace, tx0,
                        this](StatusOr<std::uint64_t> addr) mutable {
                         if (!addr.ok()) {
                           done(addr.status());
                           return;
                         }
                         trace->xstate += events_.Now() - tx0;
                         (*self)(i + 1);
                       });
          return;
        }
        // Link, then deploy.
        const sim::SimTime t2 = events_.Now();
        const std::uint64_t fp = ProgramFingerprint(prog);
        LinkCode(flow, *img, [this, &flow, hook, fp, done = std::move(done),
                              trace, t0, t2](
                                 StatusOr<bpf::JitImage> linked) mutable {
          if (!linked.ok()) {
            done(linked.status());
            return;
          }
          trace->link = events_.Now() - t2;
          const std::uint64_t version = NextVersionFor(flow, hook);
          Bytes wire = linked->Serialize();
          trace->image_bytes = wire.size();
          DeployImageBytes(flow, std::move(wire), hook, version,
                           [done = std::move(done), trace, t0, &flow, hook,
                            this](Status s2) mutable {
                             if (!s2.ok()) {
                               done(s2);
                               return;
                             }
                             trace->total = events_.Now() - t0;
                             EmitInjectSpans(flow, hook, "ebpf", *trace);
                             done(*trace);
                           },
                           trace.get(), fp);
        });
      };
      (*deploy_next)(0);
    });
  });
}

void ControlPlane::InjectWasmFilter(
    CodeFlow& flow, const wasm::FilterModule& module, int hook,
    std::function<void(StatusOr<InjectTrace>)> done) {
  auto trace = std::make_shared<InjectTrace>();
  const sim::SimTime t0 = events_.Now();
  const std::uint64_t fp = WasmFingerprint(module);
  trace->compile_cache_hit = artifacts_.ContainsWasm(fp);

  ValidateWasm(module, [this, &flow, module, hook, fp,
                        done = std::move(done), trace, t0](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    trace->validate = events_.Now() - t0;
    const sim::SimTime t1 = events_.Now();
    CompileWasm(module, [this, &flow, hook, fp, done = std::move(done), trace,
                         t0,
                         t1](StatusOr<const wasm::WasmImage*> image) mutable {
      if (!image.ok()) {
        done(image.status());
        return;
      }
      trace->jit = events_.Now() - t1;
      const sim::SimTime t2 = events_.Now();
      LinkWasm(flow, *image.value(),
               [this, &flow, hook, fp, done = std::move(done), trace, t0,
                t2](StatusOr<wasm::WasmImage> linked) mutable {
                 if (!linked.ok()) {
                   done(linked.status());
                   return;
                 }
                 trace->link = events_.Now() - t2;
                 Bytes wire = linked->Serialize();
                 trace->image_bytes = wire.size();
                 DeployImageBytes(flow, std::move(wire), hook,
                                  NextVersionFor(flow, hook),
                                  [done = std::move(done), trace, t0, &flow,
                                   hook, this](Status s2) mutable {
                                    if (!s2.ok()) {
                                      done(s2);
                                      return;
                                    }
                                    trace->total = events_.Now() - t0;
                                    EmitInjectSpans(flow, hook, "wasm",
                                                    *trace);
                                    done(*trace);
                                  },
                                  trace.get(), fp);
               });
    });
  });
}

// ---- telemetry -----------------------------------------------------------

void ControlPlane::EmitInjectSpans(const CodeFlow& flow, int hook,
                                   const char* kind,
                                   const InjectTrace& trace) {
  if (tracer_ == nullptr) return;
  const std::uint32_t pid = static_cast<std::uint32_t>(flow.node_);
  const std::uint32_t tid = static_cast<std::uint32_t>(hook);
  const sim::SimTime end = events_.Now();
  const sim::SimTime start = end - trace.total;
  char args[160];
  std::snprintf(args, sizeof(args),
                "\"kind\": \"%s\", \"version\": %llu, "
                "\"image_bytes\": %llu, \"cache_hit\": %s",
                kind, static_cast<unsigned long long>(trace.version),
                static_cast<unsigned long long>(trace.image_bytes),
                trace.compile_cache_hit ? "true" : "false");
  tracer_->AddComplete("inject", pid, tid, start, trace.total, args);
  // The pipeline runs its phases back to back; lay them out sequentially
  // from the start (the remainder up to `end` is dispatch overhead).
  struct Phase {
    const char* name;
    sim::Duration dur;
  };
  const Phase phases[] = {
      {"inject:validate", trace.validate}, {"inject:jit", trace.jit},
      {"inject:xstate", trace.xstate},     {"inject:link", trace.link},
      {"inject:transfer", trace.transfer}, {"inject:commit", trace.commit},
  };
  sim::SimTime t = start;
  for (const Phase& phase : phases) {
    if (phase.dur <= 0) continue;
    tracer_->AddComplete(phase.name, pid, tid, t, phase.dur);
    t += phase.dur;
  }
}

telemetry::RingOps ControlPlane::RingOpsFor(CodeFlow& flow) {
  telemetry::RingOps ops;
  CodeFlow* f = &flow;
  ops.read = [this, f](std::uint64_t addr, std::uint32_t len,
                       std::function<void(StatusOr<Bytes>)> cb) {
    auto buf = LocalScratch(len);
    if (!buf.ok()) {
      cb(buf.status());
      return;
    }
    rdma::SendWr read;
    read.opcode = rdma::Opcode::kRead;
    read.local = {buf.value(), len, local_mr_.lkey};
    read.remote_addr = addr;
    read.rkey = f->rkey;
    Post(*f, read, [this, buf = buf.value(), len, cb = std::move(cb)](
                       const rdma::WorkCompletion& wc) mutable {
      if (wc.status != rdma::WcStatus::kSuccess) {
        cb(Unavailable("trace ring read failed"));
        return;
      }
      Bytes raw(len);
      (void)fabric_.node(self_).memory().Read(buf, raw);
      cb(std::move(raw));
    });
  };
  ops.fetch_add = [this, f](std::uint64_t addr, std::uint64_t delta,
                            std::function<void(StatusOr<std::uint64_t>)> cb) {
    auto landing = LocalScratch(8);
    if (!landing.ok()) {
      cb(landing.status());
      return;
    }
    rdma::SendWr faa;
    faa.opcode = rdma::Opcode::kFetchAdd;
    faa.local = {landing.value(), 8, local_mr_.lkey};
    faa.remote_addr = addr;
    faa.rkey = f->rkey;
    faa.compare_add = delta;
    Post(*f, faa,
         [cb = std::move(cb)](const rdma::WorkCompletion& wc) mutable {
           if (wc.status != rdma::WcStatus::kSuccess) {
             cb(Unavailable("trace ring cursor FETCH_ADD failed"));
             return;
           }
           cb(wc.atomic_original);
         });
  };
  return ops;
}

void ControlPlane::HarvestTrace(CodeFlow& flow,
                                telemetry::Collector& collector, Done done) {
  if (flow.remote_view_.trace_addr == 0) {
    done(FailedPrecondition("remote sandbox publishes no trace ring"));
    return;
  }
  collector.Harvest(RingOpsFor(flow), flow.remote_view_.trace_addr,
                    static_cast<std::uint32_t>(flow.node_), std::move(done));
}

void ControlPlane::ExportMetrics(telemetry::MetricsRegistry& reg) const {
  reg.SetCounter("cp.quarantines", quarantines_);
  reg.SetCounter("cp.compile_cache_hits", artifacts_.hits());
  reg.SetCounter("cp.compile_cache_misses", artifacts_.misses());
  reg.SetCounter("cp.artifact_cache_entries", artifacts_.entries());
  reg.SetCounter("cp.artifact_cache_invalidations",
                 artifacts_.invalidations());
  reg.SetCounter("cp.blacklisted_fingerprints", blacklist_.size());
  reg.SetCounter("cp.codeflows", flows_.size());
}

void ControlPlane::Rollback(CodeFlow& flow, int hook, Done done) {
  auto it = flow.hooks_.find(hook);
  if (it == flow.hooks_.end() || it->second.desc_history.empty()) {
    done(FailedPrecondition("no previous version to roll back to"));
    return;
  }
  const CodeFlow::PastImage prev = it->second.desc_history.back();
  it->second.desc_history.pop_back();
  CommitHook(flow, hook, prev.desc_addr, [&flow, hook, prev,
                                          done = std::move(done),
                                          this](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    auto& deployment = flow.hooks_[hook];
    deployment.desc_addr = prev.desc_addr;
    deployment.fingerprint = prev.fingerprint;
    // Recover the rolled-back version for introspection.
    deployment.version = flow.sandbox->CommittedVersion(hook);
    done(OkStatus());
  });
}

void ControlPlane::Detach(CodeFlow& flow, int hook, Done done) {
  CommitHook(flow, hook, 0, [&flow, hook, done = std::move(done)](Status s) {
    if (s.ok()) flow.hooks_.erase(hook);
    done(s);
  });
}

// ---- runtime guardrails --------------------------------------------------

void ControlPlane::BlacklistFingerprint(std::uint64_t fingerprint) {
  if (fingerprint == 0) return;
  blacklist_.insert(fingerprint);
  // A quarantined source must never be served from the artifact cache:
  // evict its verdicts and compiled images along with the listing.
  artifacts_.Invalidate(fingerprint);
}

bool ControlPlane::IsBlacklisted(std::uint64_t fingerprint) const {
  return fingerprint != 0 && blacklist_.count(fingerprint) != 0;
}

namespace {
HealthView ParseHealthBlock(const Bytes& raw, std::size_t off) {
  HealthView hv;
  hv.executions = LoadLE<std::uint64_t>(raw.data() + off + kHbExecutions);
  hv.traps = LoadLE<std::uint64_t>(raw.data() + off + kHbTraps);
  hv.fuel_exhaustions =
      LoadLE<std::uint64_t>(raw.data() + off + kHbFuelExhaustions);
  hv.consecutive_failures =
      LoadLE<std::uint64_t>(raw.data() + off + kHbConsecutiveFailures);
  hv.last_good_desc =
      LoadLE<std::uint64_t>(raw.data() + off + kHbLastGoodDesc);
  hv.failsafe_detaches =
      LoadLE<std::uint64_t>(raw.data() + off + kHbFailsafeDetaches);
  return hv;
}
}  // namespace

void ControlPlane::ReadHealth(
    CodeFlow& flow, int hook,
    std::function<void(StatusOr<HealthView>)> done) {
  if (flow.remote_view_.health_addr == 0) {
    done(FailedPrecondition("remote sandbox publishes no health blocks"));
    return;
  }
  auto buf = LocalScratch(kHealthBlockBytes);
  if (!buf.ok()) {
    done(buf.status());
    return;
  }
  rdma::SendWr read;
  read.opcode = rdma::Opcode::kRead;
  read.local = {buf.value(), static_cast<std::uint32_t>(kHealthBlockBytes),
                local_mr_.lkey};
  read.remote_addr = flow.remote_view_.health_addr +
                     static_cast<std::uint64_t>(hook) * kHealthBlockBytes;
  read.rkey = flow.rkey;
  Post(flow, read, [this, buf = buf.value(), done = std::move(done)](
                       const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("health block read failed"));
      return;
    }
    Bytes raw(kHealthBlockBytes);
    (void)fabric_.node(self_).memory().Read(buf, raw);
    done(ParseHealthBlock(raw, 0));
  });
}

void ControlPlane::ReadHealthAll(
    CodeFlow& flow,
    std::function<void(StatusOr<std::vector<HealthView>>)> done) {
  if (flow.remote_view_.health_addr == 0) {
    done(FailedPrecondition("remote sandbox publishes no health blocks"));
    return;
  }
  const std::uint64_t count = flow.remote_view_.hook_count;
  const std::uint64_t total = count * kHealthBlockBytes;
  auto buf = LocalScratch(total);
  if (!buf.ok()) {
    done(buf.status());
    return;
  }
  rdma::SendWr read;
  read.opcode = rdma::Opcode::kRead;
  read.local = {buf.value(), static_cast<std::uint32_t>(total),
                local_mr_.lkey};
  read.remote_addr = flow.remote_view_.health_addr;
  read.rkey = flow.rkey;
  Post(flow, read, [this, buf = buf.value(), count, total,
                    done = std::move(done)](
                       const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("health array read failed"));
      return;
    }
    Bytes raw(total);
    (void)fabric_.node(self_).memory().Read(buf, raw);
    std::vector<HealthView> views;
    views.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      views.push_back(ParseHealthBlock(raw, i * kHealthBlockBytes));
    }
    done(std::move(views));
  });
}

void ControlPlane::QuarantineHook(CodeFlow& flow, int hook,
                                  std::uint64_t bad_desc,
                                  std::uint64_t good_desc, Done done) {
  auto landing = LocalScratch(8);
  if (!landing.ok()) {
    done(landing.status());
    return;
  }
  // CAS, not a blind write: if the data-plane fail-safe (or another
  // controller) already swung the slot, we must not clobber its choice.
  rdma::SendWr cas;
  cas.opcode = rdma::Opcode::kCompareSwap;
  cas.local = {landing.value(), 8, local_mr_.lkey};
  cas.remote_addr = flow.remote_view_.hook_table_addr +
                    static_cast<std::uint64_t>(hook) * 8;
  cas.rkey = flow.rkey;
  cas.compare_add = bad_desc;
  cas.swap = good_desc;
  const sim::SimTime started = events_.Now();
  Post(flow, cas, [this, &flow, hook, bad_desc, good_desc, started,
                   done = std::move(done)](
                      const rdma::WorkCompletion& wc) mutable {
    if (wc.status != rdma::WcStatus::kSuccess) {
      done(Unavailable("quarantine CAS failed"));
      return;
    }
    const std::uint64_t original = wc.atomic_original;
    const bool swung = original == bad_desc;
    // original == good_desc or 0: the local fail-safe beat us to the
    // revert — the bad image is already off the execution path, so carry
    // on with the epoch bump + blacklist.
    if (!swung && original != good_desc && original != 0) {
      done(Aborted("hook slot changed under quarantine CAS"));
      return;
    }
    FinishQuarantine(flow, hook, bad_desc, good_desc, std::move(done),
                     started);
  });
}

void ControlPlane::FinishQuarantine(CodeFlow& flow, int hook,
                                    std::uint64_t bad_desc,
                                    std::uint64_t good_desc, Done done,
                                    sim::SimTime started) {
  ++quarantines_;
  auto it = flow.hooks_.find(hook);
  if (it != flow.hooks_.end()) {
    // Refuse future redeploys of whatever source program produced the
    // bad image.
    if (it->second.desc_addr == bad_desc) {
      BlacklistFingerprint(it->second.fingerprint);
    }
    // Repair bookkeeping: the surviving image is current again; drop it
    // from the history so a later Rollback does not revisit it.
    it->second.desc_addr = good_desc;
    auto& history = it->second.desc_history;
    for (auto h = history.rbegin(); h != history.rend(); ++h) {
      if (h->desc_addr == good_desc) {
        it->second.fingerprint = h->fingerprint;
        history.erase(std::next(h).base());
        break;
      }
    }
    if (good_desc == 0) it->second.fingerprint = 0;
  }
  ++flow.epoch_;
  // Protection change: a quarantine invalidates the NIC's cached
  // translations for the flow's control region (MTT shootdown, the
  // IBV_REREG_MR analog), so the next verb re-walks the host MTT.
  fabric_.InvalidateMtt(flow.node_, flow.rkey);
  // Remote epoch bump (fire and forget, like CommitHook's).
  auto landing = LocalScratch(8);
  if (landing.ok()) {
    rdma::SendWr faa;
    faa.opcode = rdma::Opcode::kFetchAdd;
    faa.local = {landing.value(), 8, local_mr_.lkey};
    faa.remote_addr = flow.remote_view_.cb_addr + kCbEpoch;
    faa.rkey = flow.rkey;
    faa.compare_add = 1;
    Post(flow, faa, [](const rdma::WorkCompletion&) {});
  }
  auto finish = [this, &flow, hook, bad_desc, good_desc, started,
                 done = std::move(done)](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    auto it2 = flow.hooks_.find(hook);
    if (it2 != flow.hooks_.end()) {
      it2->second.version = flow.sandbox->CommittedVersion(hook);
    }
    if (tracer_ != nullptr) {
      char args[96];
      std::snprintf(args, sizeof(args),
                    "\"bad_desc\": %llu, \"good_desc\": %llu",
                    static_cast<unsigned long long>(bad_desc),
                    static_cast<unsigned long long>(good_desc));
      tracer_->AddComplete("quarantine",
                           static_cast<std::uint32_t>(flow.node_),
                           static_cast<std::uint32_t>(hook), started,
                           events_.Now() - started, args);
    }
    done(OkStatus());
  };
  if (config_.use_cc_event) {
    CcEvent(flow, hook, std::move(finish));
  } else {
    flow.sandbox->ScheduleHookRefresh(
        hook, flow.sandbox->VisibilityDelay(/*coherent_flush=*/false));
    finish(OkStatus());
  }
}

}  // namespace rdx::core
