// The RDX remote control plane and the CodeFlow abstraction (Table 1 of
// the paper). One ControlPlane instance runs on a dedicated node; it
// holds a CodeFlow handle per managed sandbox and performs every step of
// the extension life cycle *remotely*:
//
//   rdx_create_codeflow   CreateCodeFlow()   connect a QP, RDMA-read the
//                                            control block + symbol table
//   rdx_validate_code     ValidateCode()     verifier on the CP's CPU
//   rdx_JIT_compile_code  JitCompileCode()   cross-"arch" JIT + compile
//                                            cache keyed by fingerprint
//   rdx_link_code         LinkCode()         patch map relocations with
//                                            node-local XState addresses,
//                                            check helper/host symbols
//   rdx_deploy_prog       DeployProg()       scratchpad FETCH_ADD alloc,
//                                            chunked RDMA WRITEs, ImageDesc,
//                                            atomic qword commit (rdx_tx)
//   rdx_deploy_xstate     DeployXState()     Meta-XState allocation (§3.4)
//   rdx_tx                Tx()               shadow write + qword swap
//   rdx_cc_event          CcEvent()          injected cacheline flush
//   rdx_mutual_excl       Lock()/Unlock()    RDMA CAS sandbox lock
//   rdx_broadcast         (core/broadcast.h) collective CodeFlow + BBU
//
// All operations are asynchronous over the event queue and report through
// completion callbacks; the fabric, not wall-clock threads, provides
// concurrency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bpf/jit.h"
#include "bpf/verifier.h"
#include "core/sandbox.h"
#include "rdma/fabric.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "telemetry/collector.h"
#include "wasm/filter.h"

namespace rdx::core {

struct ControlPlaneConfig {
  sim::CostModel cost;
  // Commit through the transactional shadow + qword-swap path. Disabling
  // reproduces "vanilla RDMA" (in-place overwrite, torn reads possible).
  bool use_tx = true;
  // Inject a cache-coherent flush after commits (rdx_cc_event). Without
  // it the data-plane CPU discovers updates only by cache eviction.
  bool use_cc_event = true;
  // Acquire the sandbox lock (rdx_mutual_excl) around commits.
  bool use_lock = false;
  // Max payload per RDMA WRITE work request.
  std::uint32_t chunk_bytes = 256 * 1024;
  // Post multi-WR transfers as one doorbell-batched chain (an
  // ibv_post_send linked list) instead of ringing the doorbell per WR.
  // Disable to reproduce the serial per-WR posting cost.
  bool use_doorbell_batching = true;
  // Small-op fast path: post control-plane WRITEs at or below the link's
  // max_inline_data as inline WQE payloads (IBV_SEND_INLINE analog), so
  // the NIC skips the payload DMA fetch and the source-MR lookup.
  // Disable to reproduce the pre-fast-path posting cost.
  bool use_inline = true;
  // Selective-signaling period applied to the flow's QP: within a
  // doorbell-batched chain, only every Kth WRITE (and always the chain
  // tail) writes a CQE; the control plane reconstructs the implied
  // completions from RC ordering. 0/1 signals every WR.
  std::uint32_t signaling_period = 4;
  // Keyed MAC written into each ImageDesc (integrity, §5). 0 disables.
  std::uint64_t signing_key = 0;
  // How many superseded ImageDescs to keep per hook as rollback targets.
  // Older regions are reclaimed on commit: refcount dropped to 0 over
  // RDMA and the freed bytes accounted in SandboxStats.
  std::uint32_t hook_history_depth = 8;
};

// Phase timings of one full injection, for the Fig 4b breakdown.
struct InjectTrace {
  sim::Duration validate = 0;
  sim::Duration jit = 0;
  sim::Duration link = 0;
  sim::Duration xstate = 0;
  sim::Duration transfer = 0;  // alloc + image + desc writes
  sim::Duration commit = 0;    // qword swap + flush
  sim::Duration total = 0;
  bool compile_cache_hit = false;
  std::uint64_t image_bytes = 0;
  std::uint64_t version = 0;
};

// Content-addressed JIT artifact cache: verification verdicts and
// compiled images keyed by source-program fingerprint, shared by every
// CodeFlow the control plane manages. A fleet deploy validates and
// compiles once and reuses the artifact for all N targets; a redeploy of
// an identical program skips both phases entirely. Invalidation is tied
// to quarantine — blacklisting a fingerprint evicts its artifacts so a
// quarantined program can never be served from cache again.
class ArtifactCache {
 public:
  // Find* lookups count one hit or miss each; Contains* probes are free.
  const bool* FindEbpfVerdict(std::uint64_t fp);
  const bool* FindWasmVerdict(std::uint64_t fp);
  const bpf::JitImage* FindEbpf(std::uint64_t fp);
  const wasm::WasmImage* FindWasm(std::uint64_t fp);
  void PutEbpfVerdict(std::uint64_t fp, bool ok);
  void PutWasmVerdict(std::uint64_t fp, bool ok);
  const bpf::JitImage* PutEbpf(std::uint64_t fp, bpf::JitImage image);
  const wasm::WasmImage* PutWasm(std::uint64_t fp, wasm::WasmImage image);
  bool ContainsEbpf(std::uint64_t fp) const { return ebpf_.count(fp) != 0; }
  bool ContainsWasm(std::uint64_t fp) const { return wasm_.count(fp) != 0; }
  // Evicts every artifact derived from `fp` (verdicts + images).
  void Invalidate(std::uint64_t fp);
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::size_t entries() const {
    return ebpf_verdicts_.size() + wasm_verdicts_.size() + ebpf_.size() +
           wasm_.size();
  }

 private:
  std::unordered_map<std::uint64_t, bool> ebpf_verdicts_;
  std::unordered_map<std::uint64_t, bool> wasm_verdicts_;
  std::unordered_map<std::uint64_t, bpf::JitImage> ebpf_;
  std::unordered_map<std::uint64_t, wasm::WasmImage> wasm_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

// A CodeFlow: the control plane's handle onto one remote sandbox.
class CodeFlow {
 public:
  rdma::NodeId node() const { return node_; }
  const ControlBlockView& remote_view() const { return remote_view_; }
  // Looks up an exported symbol (helper / host function) on the target.
  StatusOr<std::uint64_t> Symbol(std::uint64_t hash) const;
  // Node-local address of the XState deployed for `map_slot` of the most
  // recent LinkCode target (slot -> address registry).
  const std::unordered_map<std::string, std::uint64_t>& xstates() const {
    return xstate_addrs_;
  }
  std::uint64_t epoch() const { return epoch_; }
  // Last committed update generation of a hook (0 = never deployed).
  std::uint64_t HookVersion(int hook) const {
    auto it = hooks_.find(hook);
    return it == hooks_.end() ? 0 : it->second.version;
  }

 private:
  friend class ControlPlane;
  friend class CollectiveCodeFlow;
  friend class Inspector;
  friend class RecoveryManager;
  friend class HealthMonitor;
  rdma::NodeId node_ = rdma::kInvalidNode;
  Sandbox* sandbox = nullptr;  // simulation-side backref for visibility
  rdma::QueuePair* qp = nullptr;
  rdma::CompletionQueue* cq = nullptr;
  rdma::MemoryKey rkey = 0;
  ControlBlockView remote_view_;
  std::unordered_map<std::uint64_t, std::uint64_t> symbols_;
  std::unordered_map<std::string, std::uint64_t> xstate_addrs_;
  // Per-hook deployment bookkeeping.
  struct PastImage {
    std::uint64_t desc_addr = 0;
    // Scratchpad bytes the superseded region occupies (image + desc),
    // accounted when the control plane reclaims it.
    std::uint64_t region_bytes = 0;
    // Source-program fingerprint the image was built from (0 = unknown).
    std::uint64_t fingerprint = 0;
  };
  struct HookDeployment {
    std::uint64_t desc_addr = 0;
    std::uint64_t image_addr = 0;
    std::uint64_t region_capacity = 0;
    std::uint64_t version = 0;
    std::uint64_t fingerprint = 0;
    // Version history for rollback (desc addresses stay valid in the
    // scratchpad until reclaimed; only the newest hook_history_depth
    // entries are kept).
    std::vector<PastImage> desc_history;
  };
  std::unordered_map<int, HookDeployment> hooks_;
  std::uint32_t next_meta_slot_ = 0;
  std::uint64_t epoch_ = 0;
};

class ControlPlane {
 public:
  using Done = std::function<void(Status)>;

  // `self` must be a node in the fabric (the control plane's own server);
  // its DRAM provides staging buffers and READ landing zones.
  ControlPlane(sim::EventQueue& events, rdma::Fabric& fabric,
               rdma::NodeId self, ControlPlaneConfig config = {});

  // ---- CodeFlow lifecycle ----
  void CreateCodeFlow(Sandbox& sandbox, const Sandbox::Registration& reg,
                      std::function<void(StatusOr<CodeFlow*>)> done);

  // Recovery: tears down the flow's (errored) QP, establishes a fresh
  // connection, and re-runs the handshake — re-reads the control block
  // and symbol table. If the remote sandbox lost its state since the last
  // handshake (epoch regressed, i.e. the node crashed and rebooted), the
  // flow's XState/hook bookkeeping is reset so deploys start clean.
  void ReconnectCodeFlow(CodeFlow& flow, Done done);

  // Agentless probe of the committed state of `hook`: reads the hook slot
  // and, when bound, the descriptor's version word. Used to make retried
  // deploys idempotent (was my commit already applied?).
  struct HookProbe {
    std::uint64_t desc_addr = 0;
    std::uint64_t version = 0;
  };
  void ProbeHook(CodeFlow& flow, int hook,
                 std::function<void(StatusOr<HookProbe>)> done);

  // ---- health view ----
  // Lease-style liveness from the data path: a node is healthy if some
  // operation on it completed successfully within the last `lease` ns.
  // Returns -1 if the node never completed an operation.
  sim::SimTime LastSuccess(rdma::NodeId node) const;
  bool NodeHealthy(rdma::NodeId node, sim::Duration lease) const;

  // ---- compile pipeline (control-plane CPU) ----
  // Verifies `prog`, charging the control plane's CPU. Results cached.
  void ValidateCode(const bpf::Program& prog, Done done);
  // JIT-compiles (or returns the cached image for) `prog`.
  void JitCompileCode(const bpf::Program& prog,
                      std::function<void(StatusOr<const bpf::JitImage*>)> done);
  // Wasm pipeline equivalents.
  void ValidateWasm(const wasm::FilterModule& module, Done done);
  void CompileWasm(const wasm::FilterModule& module,
                   std::function<void(StatusOr<const wasm::WasmImage*>)> done);

  // ---- link + deploy ----
  // Resolves the image's relocations against `flow`'s symbol table and
  // XState registry (maps are deployed on demand). Returns a linked copy.
  void LinkCode(CodeFlow& flow, const bpf::JitImage& image,
                std::function<void(StatusOr<bpf::JitImage>)> done);
  void LinkWasm(CodeFlow& flow, const wasm::WasmImage& image,
                std::function<void(StatusOr<wasm::WasmImage>)> done);

  // Deploys a *linked* image to `hook` and commits it.
  void DeployProg(CodeFlow& flow, const bpf::JitImage& linked, int hook,
                  Done done);
  void DeployWasm(CodeFlow& flow, const wasm::WasmImage& linked, int hook,
                  Done done);
  // Allocates + formats an XState instance on the remote node (§3.4).
  void DeployXState(CodeFlow& flow, const bpf::MapSpec& spec,
                    std::function<void(StatusOr<std::uint64_t>)> done);

  // ---- remote XState access (control-plane side) ----
  void XStateLookup(CodeFlow& flow, std::uint64_t xstate_addr, Bytes key,
                    std::function<void(StatusOr<Bytes>)> done);
  void XStateUpdate(CodeFlow& flow, std::uint64_t xstate_addr, Bytes key,
                    Bytes value, Done done);

  // Copies a live XState instance between nodes (read from src, write to
  // dst) — the state-transfer half of extension live migration (§4).
  // `dst_addr` must hold an XState of identical geometry.
  void CopyXState(CodeFlow& src, std::uint64_t src_addr, CodeFlow& dst,
                  std::uint64_t dst_addr, Done done);

  // Reads an entire remote XState and returns its (key, value) pairs —
  // the agentless equivalent of the per-node map-dump polling whose CPU
  // tax the Redis experiment quantifies.
  void XStateDump(CodeFlow& flow, std::uint64_t xstate_addr,
                  std::function<void(
                      StatusOr<std::vector<std::pair<Bytes, Bytes>>>)>
                      done);

  // Streaming telemetry: drains a remote ring-buffer XState — reads the
  // ring over RDMA, decodes complete records, and advances the remote
  // tail with an 8-byte write. This is the agentless replacement for the
  // per-node polling daemon whose CPU tax the Redis experiment measures:
  // the extension produces records locally; the control plane consumes
  // them with zero data-plane cycles.
  void XStateRingConsume(CodeFlow& flow, std::uint64_t xstate_addr,
                         std::function<void(StatusOr<std::vector<Bytes>>)>
                             done);

  // ---- sync primitives (§3.5) ----
  // Remote transaction: land `payload` at a fresh scratchpad address,
  // then swap the 8-byte word at `qword_addr` to `qword_value`.
  void Tx(CodeFlow& flow, Bytes payload, std::uint64_t qword_addr,
          std::uint64_t qword_value,
          std::function<void(StatusOr<std::uint64_t>)> done);
  // Cache-coherence event: flush the data-plane CPU's view of `hook`.
  void CcEvent(CodeFlow& flow, int hook, Done done);
  // Sandbox-level mutual exclusion via RDMA CAS on the lock word.
  void Lock(CodeFlow& flow, std::uint64_t owner, Done done);
  void Unlock(CodeFlow& flow, std::uint64_t owner, Done done);

  // ---- two-phase deploy (used by rdx_broadcast) ----
  // Phase 1: land image + ImageDesc in the remote scratchpad, no commit.
  struct PreparedImage {
    std::uint64_t desc_addr = 0;
    std::uint64_t image_addr = 0;
    std::uint64_t image_len = 0;
    std::uint64_t region_capacity = 0;
    std::uint64_t version = 0;
    // Source-program fingerprint (0 when deployed from raw image bytes).
    std::uint64_t fingerprint = 0;
  };
  void PrepareImage(CodeFlow& flow, Bytes image_bytes, std::uint64_t version,
                    std::function<void(StatusOr<PreparedImage>)> done,
                    std::uint64_t fingerprint = 0);
  // Phase 2: atomically swing the hook slot to the prepared desc.
  void CommitPrepared(CodeFlow& flow, int hook, const PreparedImage& prepared,
                      Done done);
  // Phase 2 by CAS instead of a blind write: swings the slot from
  // `expected_desc` to the prepared desc and fails with Aborted if the
  // slot moved (another writer — e.g. a quarantine — won the race). Used
  // by the pipelined broadcast's fanned-out commit waves.
  void CommitPreparedCas(CodeFlow& flow, int hook,
                         const PreparedImage& prepared,
                         std::uint64_t expected_desc, Done done);

  // ---- composed pipelines ----
  // Full injection: validate -> JIT (cached) -> deploy XState -> link ->
  // deploy -> commit (+flush). The paper's rdx_* calls in one flow.
  void InjectExtension(CodeFlow& flow, const bpf::Program& prog, int hook,
                       std::function<void(StatusOr<InjectTrace>)> done);
  void InjectWasmFilter(CodeFlow& flow, const wasm::FilterModule& module,
                        int hook,
                        std::function<void(StatusOr<InjectTrace>)> done);
  // Reverts `hook` to its previous committed version in microseconds
  // (desc re-commit; no re-transfer). §4 "rollback and hot-patching".
  void Rollback(CodeFlow& flow, int hook, Done done);
  // Detach: commit 0 into the hook slot.
  void Detach(CodeFlow& flow, int hook, Done done);

  // ---- runtime guardrails (agentless health + quarantine) ----
  // One-sided READ of one hook's HealthBlock — zero data-plane cycles.
  void ReadHealth(CodeFlow& flow, int hook,
                  std::function<void(StatusOr<HealthView>)> done);
  // One READ covering every hook's HealthBlock on the node.
  void ReadHealthAll(CodeFlow& flow,
                     std::function<void(StatusOr<std::vector<HealthView>>)>
                         done);
  // Remote quarantine of a misbehaving extension: CAS the hook slot from
  // `bad_desc` back to `good_desc` (the last-good image, 0 = detach),
  // bump the epoch, flush the data-plane CPU's view, and blacklist the
  // bad image's source fingerprint so redeploys are refused at
  // ValidateCode time. If the slot already moved off `bad_desc` (the
  // local fail-safe won the race) the quarantine is treated as contained.
  void QuarantineHook(CodeFlow& flow, int hook, std::uint64_t bad_desc,
                      std::uint64_t good_desc, Done done);
  void BlacklistFingerprint(std::uint64_t fingerprint);
  bool IsBlacklisted(std::uint64_t fingerprint) const;
  std::uint64_t quarantines() const { return quarantines_; }

  // ---- telemetry ----
  // When set, the control plane records spans on the shared timeline:
  // per-phase injection breakdowns, quarantine windows, broadcast waves.
  void SetTracer(telemetry::Tracer* tracer) { tracer_ = tracer; }
  telemetry::Tracer* tracer() { return tracer_; }
  // Adapts this flow's QP into the one-sided verb surface the telemetry
  // collector harvests through (READ + FETCH_ADD only).
  telemetry::RingOps RingOpsFor(CodeFlow& flow);
  // Convenience: harvest the flow's sandbox TraceRing into `collector`.
  void HarvestTrace(CodeFlow& flow, telemetry::Collector& collector,
                    Done done);
  // Control-plane counters (quarantines, compile caches, flow count).
  void ExportMetrics(telemetry::MetricsRegistry& reg) const;

  // ---- accessors ----
  sim::EventQueue& events() { return events_; }
  rdma::Fabric& fabric() { return fabric_; }
  rdma::NodeId self() const { return self_; }
  const ControlPlaneConfig& config() const { return config_; }
  ControlPlaneConfig& mutable_config() { return config_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  const ArtifactCache& artifact_cache() const { return artifacts_; }
  std::uint64_t compile_cache_hits() const { return artifacts_.hits(); }
  std::uint64_t compile_cache_misses() const { return artifacts_.misses(); }

 private:
  friend class Inspector;
  friend class RecoveryManager;
  struct PendingOp {
    std::function<void(const rdma::WorkCompletion&)> on_complete;
  };

  // Posts a WR on the flow's QP; `done` fires with the completion.
  void Post(CodeFlow& flow, rdma::SendWr wr,
            std::function<void(const rdma::WorkCompletion&)> done);
  // Posts a doorbell-batched chain on the flow's QP; `per_wr_done` fires
  // once per WR completion (RC order).
  void PostChain(CodeFlow& flow, std::vector<rdma::SendWr> wrs,
                 std::function<void(const rdma::WorkCompletion&)> per_wr_done);
  // Shared tail of CreateCodeFlow/ReconnectCodeFlow: RDMA-read the
  // control block, then the symbol table, and populate the flow.
  void Handshake(CodeFlow* flow,
                 std::function<void(StatusOr<CodeFlow*>)> done);
  // Allocates `bytes` in the remote scratchpad via FETCH_ADD on brk.
  void RemoteAlloc(CodeFlow& flow, std::uint64_t bytes,
                   std::function<void(StatusOr<std::uint64_t>)> done);
  // Writes `payload` to `remote_addr` in chunks; done after the last WR.
  void WriteChunked(CodeFlow& flow, Bytes payload, std::uint64_t remote_addr,
                    Done done);
  // Commits desc_addr into the hook slot and schedules CPU visibility.
  void CommitHook(CodeFlow& flow, int hook, std::uint64_t desc_addr,
                  Done done);
  // Post-commit tail shared by the write and CAS commit paths: local +
  // remote epoch bump, then the cc_event flush (or eviction-delay
  // refresh) that makes the new slot visible to the data-plane CPU.
  void CommitVisibility(CodeFlow& flow, int hook, Done done);
  // Updates the flow's per-hook bookkeeping after a successful commit of
  // `prepared` (history push, reclaim of superseded regions).
  void RecordCommit(CodeFlow& flow, int hook, const PreparedImage& prepared);
  // Allocates an 8-byte landing buffer in local DRAM for READ/atomics.
  StatusOr<std::uint64_t> LocalScratch(std::uint64_t bytes);

  void DeployImageBytes(CodeFlow& flow, Bytes image_bytes, int hook,
                        std::uint64_t version, Done done,
                        InjectTrace* trace, std::uint64_t fingerprint = 0);
  // Drops superseded history entries beyond hook_history_depth: zeroes
  // the old desc's refcount over RDMA and accounts the freed bytes.
  void ReclaimSupersededImages(CodeFlow& flow, int hook);
  // Tail of QuarantineHook once the slot is known contained: epoch bump,
  // flush, blacklist + bookkeeping repair. `started` is when the CAS was
  // posted, so the recorded quarantine span covers the whole window.
  void FinishQuarantine(CodeFlow& flow, int hook, std::uint64_t bad_desc,
                        std::uint64_t good_desc, Done done,
                        sim::SimTime started);
  // Retroactively records the per-phase spans of one completed injection
  // from its InjectTrace deltas (walking back from the end time).
  void EmitInjectSpans(const CodeFlow& flow, int hook, const char* kind,
                       const InjectTrace& trace);

  sim::EventQueue& events_;
  rdma::Fabric& fabric_;
  rdma::NodeId self_;
  ControlPlaneConfig config_;
  sim::CpuScheduler cpu_;
  rdma::CompletionQueue* cq_ = nullptr;
  rdma::MemoryRegion local_mr_;
  std::uint64_t arena_cursor_ = 0;

  std::vector<std::unique_ptr<CodeFlow>> flows_;
  std::unordered_map<std::uint64_t, PendingOp> pending_;
  std::uint64_t next_wr_id_ = 1;
  // Health view: per node, sim time of the last successful completion.
  std::unordered_map<rdma::NodeId, sim::SimTime> last_success_;

  // Content-addressed artifact store: fingerprint -> verdicts + images.
  ArtifactCache artifacts_;

  // Quarantined source-program fingerprints; checked before the verify
  // cache so a blacklisted program is refused even if it verified before.
  std::unordered_set<std::uint64_t> blacklist_;
  std::uint64_t quarantines_ = 0;

  telemetry::Tracer* tracer_ = nullptr;  // not owned; optional
};

// Fingerprint of a source program (pre-JIT), used for the verify/compile
// caches.
std::uint64_t ProgramFingerprint(const bpf::Program& prog);
std::uint64_t WasmFingerprint(const wasm::FilterModule& module);

}  // namespace rdx::core
