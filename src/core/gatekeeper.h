// Security layer from §5 of the paper, three properties:
//
//  Confidentiality — the control plane is the single remote gatekeeper;
//  a role-based privilege model decides which principal may deploy,
//  read/write XState, roll back, or lock each sandbox. Every decision is
//  appended to an audit log.
//
//  Integrity — deployed images carry a keyed signature (stored in the
//  ImageDesc); a sandbox configured with the key refuses to execute
//  images whose MAC does not verify, so a compromised peer with RDMA
//  reach cannot plant code even if it can write memory. The Inspector
//  (introspection half) lets the control plane re-read deployed hooks
//  and detect tampering after the fact.
//
//  Availability — static instruction budgets at admission time (on top
//  of the runtime step limits the sandbox already enforces), and the
//  rollback machinery in ControlPlane for atomic preemption.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rdx::core {

enum class Role : std::uint8_t {
  kObserver,  // XState reads only
  kDeployer,  // + deploy/detach extensions
  kOperator,  // + rollback, locks, broadcast, XState writes
};

const char* RoleName(Role role);

enum class Operation : std::uint8_t {
  kDeploy,
  kDetach,
  kRollback,
  kXStateRead,
  kXStateWrite,
  kLock,
  kBroadcast,
};

const char* OperationName(Operation op);

struct AuditEntry {
  std::string principal;
  Operation op;
  bool allowed;
  std::string detail;
};

// Role-based access control for CodeFlow operations, with audit logging
// and per-principal instruction budgets (availability guard).
class Gatekeeper {
 public:
  // Registers a principal. `max_insns` caps the size of any one
  // extension this principal may deploy (0 = unlimited).
  void AddPrincipal(std::string name, Role role,
                    std::uint64_t max_insns = 0);
  Status RemovePrincipal(const std::string& name);

  // Authorizes `principal` to perform `op`. Deploy-class checks may pass
  // the extension's instruction count for budget enforcement.
  Status Authorize(const std::string& principal, Operation op,
                   std::uint64_t insns = 0);

  const std::vector<AuditEntry>& audit_log() const { return audit_log_; }
  std::size_t denied_count() const { return denied_; }

 private:
  static bool RoleAllows(Role role, Operation op);

  struct Principal {
    Role role;
    std::uint64_t max_insns;
  };
  std::unordered_map<std::string, Principal> principals_;
  std::vector<AuditEntry> audit_log_;
  std::size_t denied_ = 0;
};

// ---- image signing (integrity) ----

// Keyed MAC over image bytes. Not cryptographic (FNV-based), but the
// mechanics — key distribution at boot, MAC in the ImageDesc, verify
// before execute — are exactly what a production HMAC would do.
std::uint64_t SignImage(ByteSpan image, std::uint64_t key);
bool VerifyImageSignature(ByteSpan image, std::uint64_t key,
                          std::uint64_t signature);

}  // namespace rdx::core
