// Remote runtime introspection (§5): the control plane re-reads a hook's
// ImageDesc and image bytes over one-sided RDMA and checks them against
// what it believes it deployed — catching in-memory tampering, bit rot,
// or a desync between control-plane bookkeeping and node state, all
// without any data-plane CPU involvement (cf. remote direct memory
// introspection [49]).
#pragma once

#include <functional>

#include "core/codeflow.h"

namespace rdx::core {

struct InspectReport {
  int hook = 0;
  // Desc-level checks.
  bool deployed = false;        // hook slot non-zero
  bool desc_matches = false;    // slot points at the desc we committed
  bool version_matches = false; // version equals our bookkeeping
  // Image-level checks.
  bool checksum_ok = false;     // image deserializes (embedded checksum)
  bool signature_ok = false;    // keyed MAC verifies (if signing enabled)
  std::uint64_t observed_version = 0;
  std::uint64_t observed_image_len = 0;

  bool Healthy(bool signing_enabled) const {
    return deployed && desc_matches && version_matches && checksum_ok &&
           (!signing_enabled || signature_ok);
  }
};

class Inspector {
 public:
  explicit Inspector(ControlPlane& cp) : cp_(cp) {}

  // Reads back hook state from the node and cross-checks it.
  void Inspect(CodeFlow& flow, int hook,
               std::function<void(StatusOr<InspectReport>)> done);

  // Sweeps every hook the control plane has deployed on `flow`; reports
  // the unhealthy ones (empty = all good).
  void Sweep(CodeFlow& flow,
             std::function<void(StatusOr<std::vector<InspectReport>>)> done);

 private:
  ControlPlane& cp_;
};

}  // namespace rdx::core
