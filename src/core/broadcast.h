// Collective CodeFlow (rdx_broadcast, §4 "fast and consistent extension
// updates"). A group update is treated as a transaction whose write set
// spans all target hooks: phase 1 *prepares* every node (image + desc in
// the scratchpad, no commit), phase 2 fires all qword commits in
// parallel, and Big Bubble Update (BBU) buffering holds incoming requests
// for the short commit window so no request ever observes mixed logic.
#pragma once

#include <functional>
#include <vector>

#include "core/codeflow.h"

namespace rdx::core {

// Implemented by the data plane (e.g. the mesh's ingress) so a collective
// update can buffer and release requests around the commit point.
class UpdateBarrier {
 public:
  virtual ~UpdateBarrier() = default;
  // Start holding new requests instead of dispatching them.
  virtual void BeginBuffering() = 0;
  // Release held requests (in dependency order) and stop buffering.
  virtual void ReleaseBuffered() = 0;
  virtual std::size_t BufferedCount() const = 0;
};

struct BroadcastResult {
  sim::Duration prepare_time = 0;   // slowest node's prepare
  sim::Duration commit_window = 0;  // first->last commit visibility
  sim::Duration total = 0;
  std::size_t buffered_requests = 0;
  std::size_t nodes = 0;
};

// One collective operation over a group of CodeFlows.
class CollectiveCodeFlow {
 public:
  CollectiveCodeFlow(ControlPlane& cp, std::vector<CodeFlow*> group)
      : cp_(cp), group_(std::move(group)) {}

  // Deploys `prog` to `hook` on every node in the group, transactionally.
  // With a non-null `barrier`, requests are buffered across the commit
  // window (BBU), guaranteeing update consistency.
  void Broadcast(const bpf::Program& prog, int hook, UpdateBarrier* barrier,
                 std::function<void(StatusOr<BroadcastResult>)> done);

  // Wasm-filter variant: per-node filters (size must equal the group's).
  void BroadcastWasm(const std::vector<const wasm::FilterModule*>& filters,
                     int hook, UpdateBarrier* barrier,
                     std::function<void(StatusOr<BroadcastResult>)> done);

 private:
  // Shared phase-2 logic once every node holds a PreparedImage.
  void CommitAll(std::vector<ControlPlane::PreparedImage> prepared, int hook,
                 UpdateBarrier* barrier, sim::SimTime t0,
                 sim::SimTime prepare_done,
                 std::function<void(StatusOr<BroadcastResult>)> done);

  ControlPlane& cp_;
  std::vector<CodeFlow*> group_;
};

}  // namespace rdx::core
