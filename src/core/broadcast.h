// Collective CodeFlow (rdx_broadcast, §4 "fast and consistent extension
// updates"). A group update is treated as a transaction whose write set
// spans all target hooks: phase 1 *prepares* every node (image + desc in
// the scratchpad, no commit), phase 2 fires all qword commits in
// parallel, and Big Bubble Update (BBU) buffering holds incoming requests
// for the short commit window so no request ever observes mixed logic.
#pragma once

#include <functional>
#include <vector>

#include "core/codeflow.h"

namespace rdx::core {

// Implemented by the data plane (e.g. the mesh's ingress) so a collective
// update can buffer and release requests around the commit point.
class UpdateBarrier {
 public:
  virtual ~UpdateBarrier() = default;
  // Start holding new requests instead of dispatching them.
  virtual void BeginBuffering() = 0;
  // Release held requests (in dependency order) and stop buffering.
  virtual void ReleaseBuffered() = 0;
  virtual std::size_t BufferedCount() const = 0;
};

struct BroadcastResult {
  sim::Duration prepare_time = 0;   // slowest node's prepare
  sim::Duration commit_window = 0;  // first->last commit visibility
  sim::Duration total = 0;
  std::size_t buffered_requests = 0;
  std::size_t nodes = 0;
};

class RecoveryManager;

// One deployment wave of the pipelined fleet deploy: a program bound for
// a hook on every (healthy) node in the group.
struct DeploySpec {
  const bpf::Program* prog = nullptr;
  int hook = 0;
};

struct PipelineOptions {
  // Overlap validate+JIT of wave k+1 with the transfer/commit of wave k.
  // Disabled, each wave runs start to finish before the next compiles —
  // the serial schedule the pipeline is benchmarked against.
  bool pipelined = true;
  // A failed node is quarantined from the remaining waves instead of
  // failing the whole deploy (per-node completion tracking).
  bool isolate_stragglers = true;
  // Optional: quarantined (node, wave) deploys are re-driven in the
  // background through the recovery layer's retry/reconnect machinery;
  // the pipeline result does not wait for them.
  RecoveryManager* recovery = nullptr;
};

struct NodeOutcome {
  rdma::NodeId node = rdma::kInvalidNode;
  Status status;             // first failure; OK if never quarantined
  int failed_wave = -1;      // wave index of the first failure
  std::uint64_t waves_committed = 0;
  bool retried_in_background = false;
};

struct WaveResult {
  int hook = 0;
  bool compile_cache_hit = false;
  sim::Duration compile = 0;   // validate + JIT (0 on artifact-cache hit)
  sim::Duration transfer = 0;  // dispatch + xstate/link/prepare fan-out
  sim::Duration commit = 0;    // CAS commit wave
  std::size_t committed = 0;   // nodes that took this wave
};

struct PipelineResult {
  std::vector<WaveResult> waves;
  std::vector<NodeOutcome> nodes;
  sim::Duration total = 0;
  std::size_t stragglers = 0;  // nodes quarantined during the run
};

// One collective operation over a group of CodeFlows.
class CollectiveCodeFlow {
 public:
  CollectiveCodeFlow(ControlPlane& cp, std::vector<CodeFlow*> group)
      : cp_(cp), group_(std::move(group)) {}

  // Deploys `prog` to `hook` on every node in the group, transactionally.
  // With a non-null `barrier`, requests are buffered across the commit
  // window (BBU), guaranteeing update consistency.
  void Broadcast(const bpf::Program& prog, int hook, UpdateBarrier* barrier,
                 std::function<void(StatusOr<BroadcastResult>)> done);

  // Wasm-filter variant: per-node filters (size must equal the group's).
  void BroadcastWasm(const std::vector<const wasm::FilterModule*>& filters,
                     int hook, UpdateBarrier* barrier,
                     std::function<void(StatusOr<BroadcastResult>)> done);

  // Pipelined, doorbell-batched fleet deploy. Drives `specs` as a
  // sequence of waves through a two-stage pipeline: while wave k's image
  // streams to every node over doorbell-batched WR chains and its CAS
  // commit wave fans out across the per-node QPs, wave k+1 is already
  // validating + JIT-compiling on the control plane (one artifact per
  // fingerprint, shared by all N targets via the artifact cache). The
  // per-wave dispatch overhead is paid once for the group, not per node.
  // A straggler or faulted node is quarantined from later waves without
  // stalling the healthy fan-out; a compile failure (including a
  // blacklisted fingerprint) fails the whole deploy. Unlike Broadcast
  // there is no BBU barrier: this is the fleet-provisioning path, and
  // per-node visibility is driven by the commits' cc_event flushes.
  void DeployPipelined(const std::vector<DeploySpec>& specs,
                       const PipelineOptions& opts,
                       std::function<void(StatusOr<PipelineResult>)> done);

 private:
  struct PipelineState;
  // Compile stage: validate + JIT wave k, then hand the artifact to the
  // deploy stage (and, when pipelining, start on wave k+1 immediately).
  void CompileWave(std::shared_ptr<PipelineState> st, std::size_t k);
  // Deploy stage driver: runs one wave at a time as artifacts appear.
  void TryDeployWave(std::shared_ptr<PipelineState> st);
  void DeployWave(std::shared_ptr<PipelineState> st, std::size_t k,
                  std::function<void()> wave_done);
  void MarkStraggler(std::shared_ptr<PipelineState> st, std::size_t i,
                     std::size_t wave, const Status& why);
  void AbortPipeline(std::shared_ptr<PipelineState> st, const Status& why);
  void FinishPipeline(std::shared_ptr<PipelineState> st);

  // Shared phase-2 logic once every node holds a PreparedImage.
  void CommitAll(std::vector<ControlPlane::PreparedImage> prepared, int hook,
                 UpdateBarrier* barrier, sim::SimTime t0,
                 sim::SimTime prepare_done,
                 std::function<void(StatusOr<BroadcastResult>)> done);

  ControlPlane& cp_;
  std::vector<CodeFlow*> group_;
};

}  // namespace rdx::core
