#include "core/gatekeeper.h"

namespace rdx::core {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kObserver: return "observer";
    case Role::kDeployer: return "deployer";
    case Role::kOperator: return "operator";
  }
  return "unknown";
}

const char* OperationName(Operation op) {
  switch (op) {
    case Operation::kDeploy: return "deploy";
    case Operation::kDetach: return "detach";
    case Operation::kRollback: return "rollback";
    case Operation::kXStateRead: return "xstate_read";
    case Operation::kXStateWrite: return "xstate_write";
    case Operation::kLock: return "lock";
    case Operation::kBroadcast: return "broadcast";
  }
  return "unknown";
}

void Gatekeeper::AddPrincipal(std::string name, Role role,
                              std::uint64_t max_insns) {
  principals_[std::move(name)] = Principal{role, max_insns};
}

Status Gatekeeper::RemovePrincipal(const std::string& name) {
  if (principals_.erase(name) == 0) return NotFound("unknown principal");
  return OkStatus();
}

bool Gatekeeper::RoleAllows(Role role, Operation op) {
  switch (op) {
    case Operation::kXStateRead:
      return true;  // every role can observe
    case Operation::kDeploy:
    case Operation::kDetach:
      return role == Role::kDeployer || role == Role::kOperator;
    case Operation::kRollback:
    case Operation::kXStateWrite:
    case Operation::kLock:
    case Operation::kBroadcast:
      return role == Role::kOperator;
  }
  return false;
}

Status Gatekeeper::Authorize(const std::string& principal, Operation op,
                             std::uint64_t insns) {
  auto log = [&](bool allowed, std::string detail) {
    audit_log_.push_back({principal, op, allowed, std::move(detail)});
    if (!allowed) ++denied_;
  };
  auto it = principals_.find(principal);
  if (it == principals_.end()) {
    log(false, "unknown principal");
    return PermissionDenied("unknown principal '" + principal + "'");
  }
  if (!RoleAllows(it->second.role, op)) {
    log(false, std::string("role ") + RoleName(it->second.role) +
                   " may not " + OperationName(op));
    return PermissionDenied(std::string(RoleName(it->second.role)) +
                            " may not " + OperationName(op));
  }
  if ((op == Operation::kDeploy || op == Operation::kBroadcast) &&
      it->second.max_insns != 0 && insns > it->second.max_insns) {
    log(false, "instruction budget exceeded");
    return ResourceExhausted("extension exceeds principal's instruction "
                             "budget");
  }
  log(true, "");
  return OkStatus();
}

std::uint64_t SignImage(ByteSpan image, std::uint64_t key) {
  // MAC = H(key || H(image) || key'), FNV-based.
  Bytes material;
  AppendLE<std::uint64_t>(material, key);
  AppendLE<std::uint64_t>(material, Fnv1a64(image));
  AppendLE<std::uint64_t>(material, key ^ 0x5c5c5c5c5c5c5c5cull);
  return Fnv1a64(material);
}

bool VerifyImageSignature(ByteSpan image, std::uint64_t key,
                          std::uint64_t signature) {
  return SignImage(image, key) == signature;
}

}  // namespace rdx::core
