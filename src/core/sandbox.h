// The local data plane: a sandbox hosting runtime-extension hook points
// inside a node's simulated DRAM. The management stubs (§3.1) are the
// only local-CPU involvement RDX needs, and they run exactly once:
//
//   CtxInit      lays out the control block, hook table, Meta-XState
//                directory, symbol table (the exposed "GOT"), and the
//                extension scratchpad in node DRAM;
//   CtxRegister  registers that memory with the RNIC and returns the
//                {address, rkey} pair the control plane binds a CodeFlow
//                to;
//   CtxTeardown  detaches a hook with reference counting.
//
// After boot the sandbox only *executes*: requests call ExecuteHook /
// ExecuteWasmHook against the CPU-visible view of each hook. Everything
// else — code injection, XState creation, version bumps — arrives from
// the remote control plane through one-sided RDMA, and becomes visible to
// this CPU after a cache-coherence delay (sim/cache.h) unless the control
// plane injects an explicit flush (rdx_cc_event).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bpf/exec.h"
#include "bpf/jit.h"
#include "common/rng.h"
#include "core/layout.h"
#include "core/memspace.h"
#include "rdma/fabric.h"
#include "sim/cache.h"
#include "sim/event_queue.h"
#include "telemetry/metrics.h"
#include "telemetry/ring.h"
#include "wasm/filter.h"

namespace rdx::core {

struct SandboxConfig {
  std::uint32_t hook_count = 8;
  std::uint64_t scratch_bytes = 8u << 20;
  std::uint32_t meta_capacity = 256;
  // Cache-miss intensity of the colocated data-path workload (CPKI);
  // drives how quickly un-flushed RDMA writes become CPU-visible.
  double cpki = 10.0;
  sim::CacheConfig cache;
  std::uint64_t seed = 1;
  // Wasm host functions this sandbox exports, in host-table order.
  std::vector<std::string> wasm_host_fns = {"get_header", "set_header",
                                            "counter_incr", "log_event"};
  // When nonzero, refuse to execute images whose ImageDesc signature
  // does not verify under this key (integrity, §5).
  std::uint64_t signing_key = 0;
  // ---- runtime guardrails ----
  // Per-execution instruction budgets ("fuel"). An extension that burns
  // past its budget is stopped with kResourceExhausted and counted in the
  // hook's HealthBlock.
  std::uint64_t fuel_budget = 1u << 20;
  std::uint64_t wasm_fuel_budget = 1u << 20;
  // Local fail-safe: after this many consecutive failed executions the
  // sandbox reverts the hook slot to the last-good ImageDesc on its own
  // (0 disables; the remote quarantine path still works either way).
  std::uint32_t max_consecutive_failures = 4;
  // Master switch for HealthBlock accounting + the fail-safe; exists so
  // bench/guardrail_overhead can measure the healthy-path cost.
  bool guardrails = true;
  // ---- telemetry ----
  // When on, CtxInit lays out a TraceRing after the HealthBlocks and the
  // data plane emits fixed-size events into it (harvested agentlessly by
  // telemetry::Collector). bench/telemetry_overhead measures the cost.
  bool telemetry = true;
  std::uint64_t trace_ring_slots = 1024;  // power of two
};

// Image type stored in an ImageDesc's flags word.
enum class ImageKind : std::uint64_t { kEbpf = 0, kWasm = 1 };

struct SandboxStats {
  std::uint64_t executions = 0;
  std::uint64_t empty_hook_executions = 0;
  std::uint64_t torn_image_failures = 0;
  std::uint64_t signature_failures = 0;
  std::uint64_t refreshes = 0;
  // Guardrail counters (aggregated across hooks; per-hook detail lives in
  // the RDMA-readable HealthBlocks).
  std::uint64_t traps = 0;
  std::uint64_t fuel_exhaustions = 0;
  std::uint64_t failsafe_detaches = 0;
  // Superseded-image reclamation (control-plane initiated).
  std::uint64_t images_reclaimed = 0;
  std::uint64_t scratch_bytes_reclaimed = 0;
};

class Sandbox {
 public:
  Sandbox(sim::EventQueue& events, rdma::Node& node, SandboxConfig config);
  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  // ---- management stubs (one-time boot) ----
  Status CtxInit();
  struct Registration {
    std::uint64_t cb_addr = 0;
    rdma::MemoryKey rkey = 0;
  };
  StatusOr<Registration> CtxRegister();
  Status CtxTeardown(int hook);

  // ---- fault simulation ----
  // Power loss: every byte behind the sandbox (control block through
  // scratchpad) is wiped and the data plane stops executing. The RNIC
  // registration survives in the simulator (modeling a persistent MTT /
  // fast re-register on boot), so a rebooted node is reachable at the
  // same {cb_addr, rkey}.
  void Crash();
  // Deterministic reboot at the same addresses: re-publishes the control
  // block and symbol table and resets the scratch allocator and epoch.
  // Everything the control plane had deployed is gone.
  Status Reboot();

  // ---- data-plane execution ----
  // Runs the eBPF image attached at `hook` on `packet` (copied into the
  // sandbox ctx buffer). Empty hooks return r0 = 1 ("accept") and count
  // in stats. A torn image (checksum mismatch from a non-transactional
  // remote write racing this execution) is an error + counter.
  StatusOr<bpf::ExecResult> ExecuteHook(int hook, ByteSpan packet);

  // Runs the Wasm filter attached at `hook` against `host`.
  StatusOr<wasm::WasmResult> ExecuteWasmHook(int hook, wasm::WasmHost& host);

  // ---- visibility plumbing (called by the sync layer) ----
  // Schedules this CPU's discovery of a changed hook slot after `delay`.
  void ScheduleHookRefresh(int hook, sim::Duration delay);
  // Synchronous coherent re-read — the local CPU's own attach path (the
  // agent baseline) sees its writes immediately.
  void RefreshHookNow(int hook);
  // How long a DMA write stays invisible: ~2 us with an injected flush,
  // CPKI-dependent (100s of us) without.
  sim::Duration VisibilityDelay(bool coherent_flush);
  // Immediate re-read of hook slots / XState directory (local poll).
  void RefreshHooks();
  void RefreshXState();

  // ---- introspection ----
  // CPU-side read of a hook's HealthBlock (tests and local telemetry; the
  // control plane reads the same words over RDMA).
  HealthView ReadLocalHealth(int hook) const;
  // Bookkeeping callback for control-plane-initiated reclamation of a
  // superseded image region (simulation-side backref, like the refresh
  // scheduling): accounts the freed bytes in SandboxStats.
  void AccountReclaim(std::uint64_t bytes);

  // Version of the image the CPU currently executes at `hook` (0 = none).
  std::uint64_t VisibleVersion(int hook) const;
  // Version currently committed in memory (what RDMA wrote), which the
  // CPU may not see yet.
  std::uint64_t CommittedVersion(int hook) const;
  ImageKind VisibleKind(int hook) const;

  const ControlBlockView& view() const { return view_; }
  const SandboxStats& stats() const { return stats_; }
  bpf::RuntimeContext& runtime() { return rt_; }
  rdma::Node& node() { return node_; }
  std::uint32_t hook_count() const { return config_.hook_count; }
  const sim::CacheModel& cache() const { return cache_; }

  // ---- telemetry ----
  // Trace-ring events emitted since the last drain. The data-path hosts
  // (kvstore, mesh) drain this after each request and charge
  // cost.trace_emit_cycles per event, so emit cost shows up in virtual
  // time without the sandbox owning a CPU.
  std::uint64_t DrainTraceEmits() {
    const std::uint64_t n = pending_trace_emits_;
    pending_trace_emits_ = 0;
    return n;
  }
  // Producer-side ring counters (null when telemetry is off / pre-boot).
  const telemetry::TraceRingWriter* trace_writer() const {
    return trace_.has_value() ? &*trace_ : nullptr;
  }
  // Dumps SandboxStats + ring producer counters + cache-model counters
  // under `prefix` (e.g. "node1.sandbox").
  void ExportMetrics(telemetry::MetricsRegistry& reg,
                     const std::string& prefix) const;

  // Local-CPU side of rdx_mutual_excl: try to take / release the sandbox
  // lock word (the control plane takes it via RDMA CAS).
  bool TryLockLocal(std::uint64_t owner);
  void UnlockLocal(std::uint64_t owner);

 private:
  struct HookState {
    std::uint64_t visible_desc_addr = 0;  // what this CPU executes
    std::uint64_t visible_version = 0;
    ImageKind kind = ImageKind::kEbpf;
    // Decoded-image caches keyed by (desc_addr, version).
    std::optional<bpf::JitImage> ebpf_image;
    std::optional<wasm::WasmImage> wasm_image;
    std::uint64_t refcount = 0;
  };

  StatusOr<std::uint64_t> ReadWord(std::uint64_t addr) const;
  Status WriteWord(std::uint64_t addr, std::uint64_t value);
  // Guardrail plumbing: HealthBlock word address for `hook`, outcome
  // accounting after every non-empty execution, and the local fail-safe
  // that reverts a crash-looping hook to its last-good image.
  std::uint64_t HealthWordAddr(int hook, std::uint64_t field) const;
  void BumpHealth(int hook, std::uint64_t field, std::uint64_t delta);
  void SetHealth(int hook, std::uint64_t field, std::uint64_t value);
  StatusOr<std::uint64_t> GetHealth(int hook, std::uint64_t field) const;
  void RecordHookOutcome(int hook, const Status& outcome);
  void FailSafeDetach(int hook);
  // Wait-free trace-ring emit (no-op when telemetry is off).
  void EmitTrace(telemetry::RingEventKind kind, int hook, std::uint16_t code,
                 std::uint64_t arg);
  // Writes the control block words + symbol table (boot and reboot).
  Status PublishControlBlock();
  // Loads + decodes the image behind hook's visible desc into the cache.
  Status LoadHookImage(int hook);
  void BuildSymbolTable(Bytes& out) const;

  sim::EventQueue& events_;
  rdma::Node& node_;
  SandboxConfig config_;
  HostMemSpace mem_space_;
  Rng rng_;
  sim::CacheModel cache_;
  bpf::RuntimeContext rt_;

  bool booted_ = false;
  bool registered_ = false;
  ControlBlockView view_;
  std::uint64_t ctx_buf_addr_ = 0;
  std::uint64_t stack_addr_ = 0;
  std::vector<HookState> hooks_;
  SandboxStats stats_;
  std::optional<telemetry::TraceRingWriter> trace_;
  std::uint64_t pending_trace_emits_ = 0;
};

}  // namespace rdx::core
