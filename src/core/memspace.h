// Adapter exposing a node's simulated DRAM (rdma::HostMemory) as the
// MemSpace an eBPF extension executes against. This closes the loop that
// makes RDX work: the extension's loads and stores hit the same bytes the
// remote control plane reaches with one-sided verbs.
#pragma once

#include "bpf/exec.h"
#include "rdma/memory.h"

namespace rdx::core {

class HostMemSpace final : public bpf::MemSpace {
 public:
  explicit HostMemSpace(rdma::HostMemory& memory) : memory_(memory) {}

  StatusOr<MutableByteSpan> SpanAt(std::uint64_t addr,
                                   std::uint64_t len) override {
    // CPU-side access: bounds-checked against DRAM, not against MRs (the
    // local CPU is not subject to RNIC protection).
    if (addr < memory_.base() ||
        addr + len > memory_.base() + memory_.capacity() || addr + len < addr) {
      return OutOfRange("extension access outside node DRAM");
    }
    return memory_.SpanForCpu(addr, len);
  }

 private:
  rdma::HostMemory& memory_;
};

}  // namespace rdx::core
