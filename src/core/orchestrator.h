// Declarative cluster-wide extension orchestration — item (1) of the
// paper's future-work list. Operators describe *what* should run where;
// the orchestrator compiles that into CodeFlow operations and executes
// them with the requested rollout strategy and consistency level.
//
// The language is line-oriented ("#" comments):
//
//   extension firewall kind=ebpf hook=0
//   extension tagger   kind=wasm hook=1
//   group frontend nodes=0,1,2
//   group backend  nodes=3,4
//   deploy firewall to=frontend strategy=broadcast consistency=bbu
//   deploy tagger   to=backend  strategy=rolling
//   rollback firewall from=frontend
//   detach tagger from=backend
//
// Strategies: broadcast (collective prepare + parallel commit; with
// consistency=bbu requests are buffered across the commit window),
// rolling (one node at a time, dependency-safe), parallel (all nodes at
// once, eventual consistency — the agent-like mode, for comparison).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/broadcast.h"

namespace rdx::core {

class RecoveryManager;

enum class RolloutStrategy : std::uint8_t { kBroadcast, kRolling, kParallel };
enum class ConsistencyLevel : std::uint8_t { kEventual, kBbu };
enum class ActionKind : std::uint8_t { kDeploy, kRollback, kDetach };
// What a deploy does when a node keeps failing after its retries:
//   abort     stop the plan (default — previous behavior)
//   skip      note the failure, keep deploying to the rest
//   rollback  revert every node this action already updated, then
//             continue with the next action
enum class OnFailure : std::uint8_t { kAbort, kSkip, kRollback };

struct ExtensionDecl {
  std::string name;
  bool is_wasm = false;
  int hook = 0;
};

struct GroupDecl {
  std::string name;
  std::vector<std::size_t> nodes;
};

struct Action {
  ActionKind kind;
  std::string extension;
  std::string group;
  RolloutStrategy strategy = RolloutStrategy::kBroadcast;
  ConsistencyLevel consistency = ConsistencyLevel::kEventual;
  // Per-node retries via the RecoveryManager (0 = plain injection).
  int max_retries = 0;
  OnFailure on_failure = OnFailure::kAbort;
};

struct OrchestrationPlan {
  std::unordered_map<std::string, ExtensionDecl> extensions;
  std::unordered_map<std::string, GroupDecl> groups;
  std::vector<Action> actions;
};

// Parses the DSL. Errors carry the offending line number.
StatusOr<OrchestrationPlan> ParseOrchestration(std::string_view text);

struct OrchestrationReport {
  std::size_t actions_executed = 0;
  // Deploy actions that lost at least one node (on_failure=skip|rollback
  // keeps the plan going; these counters say what it cost).
  std::size_t actions_degraded = 0;
  std::size_t nodes_failed = 0;
  std::size_t nodes_rolled_back = 0;
  sim::Duration total = 0;
  std::vector<std::string> log;  // one human-readable line per action
};

// Binds a plan to a concrete cluster and runs it.
class Orchestrator {
 public:
  explicit Orchestrator(ControlPlane& cp) : cp_(cp) {}

  // Cluster inventory: node index in `group ... nodes=` refers to the
  // order of registration here.
  void RegisterNode(CodeFlow* flow) { flows_.push_back(flow); }
  // Artifact registry (the "filter registry" of §4): programs and
  // filters the plan may reference by name.
  void RegisterProgram(std::string name, bpf::Program prog);
  void RegisterFilter(std::string name, wasm::FilterModule module);

  // Routes deploy actions with max_retries > 0 through the self-healing
  // layer (retry/reconnect/idempotent adoption). Without it, max_retries
  // is ignored and deploys are plain injections.
  void SetRecovery(RecoveryManager* recovery) { recovery_ = recovery; }

  // Static checks without touching the cluster: unknown extension/group
  // references, node indices out of range, hooks out of range.
  Status ValidatePlan(const OrchestrationPlan& plan) const;

  // Executes actions sequentially (each action's nodes in the strategy's
  // order). `barrier` enables consistency=bbu actions to buffer traffic.
  void Execute(const OrchestrationPlan& plan, UpdateBarrier* barrier,
               std::function<void(StatusOr<OrchestrationReport>)> done);

 private:
  void RunAction(const OrchestrationPlan& plan, std::size_t index,
                 UpdateBarrier* barrier,
                 std::shared_ptr<OrchestrationReport> report,
                 std::function<void(StatusOr<OrchestrationReport>)> done,
                 sim::SimTime t0);
  // One per-node injection, via the recovery layer when the action asks
  // for retries and SetRecovery() was called.
  void DeployOne(const ExtensionDecl& decl, const Action& action,
                 CodeFlow* flow, std::function<void(Status)> done);
  // Reverts `hook` on every flow in `nodes` (Rollback, falling back to
  // Detach for nodes with no prior version); reports how many reverted.
  void RollbackWave(std::vector<CodeFlow*> nodes, int hook,
                    std::function<void(std::size_t)> done);

  ControlPlane& cp_;
  RecoveryManager* recovery_ = nullptr;
  std::vector<CodeFlow*> flows_;
  std::unordered_map<std::string, bpf::Program> programs_;
  std::unordered_map<std::string, wasm::FilterModule> filters_;
};

}  // namespace rdx::core
