// Self-healing layer over the control plane (§5 resilience). A deploy
// through the RecoveryManager survives QP flaps, lossy links, and node
// crash-and-reboot cycles:
//
//   retry        per-attempt deadline, exponential backoff with
//                deterministic jitter (common/rng.h)
//   reconnect    fresh QP pair + CodeFlow re-handshake (re-reads the
//                control block and symbol table; detects reboots)
//   idempotency  deploys carry a generation (hook version); before a
//                retry the manager probes the remote hook slot, so a
//                commit whose acknowledgement was lost is adopted
//                instead of re-applied — every deploy commits exactly
//                once
//   health       per-node lease from the control plane's last
//                successful completion (ControlPlane::NodeHealthy)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/codeflow.h"
#include "telemetry/metrics.h"

namespace rdx::core {

struct RetryPolicy {
  // Total attempts = 1 + max_retries.
  int max_retries = 5;
  sim::Duration base_backoff = sim::Micros(20);
  double backoff_multiplier = 2.0;
  // Backoff delays are scaled by a deterministic factor in [1-j, 1+j).
  double jitter = 0.25;
  // An attempt with no verdict after this long counts as failed.
  sim::Duration attempt_deadline = sim::Millis(50);
  // Health lease for Healthy().
  sim::Duration lease = sim::Millis(5);
};

struct RecoveryOutcome {
  int attempts = 1;
  int reconnects = 0;
  // The generation was found already committed on a retry probe (the
  // failure hit after the commit point) and was adopted, not re-applied.
  bool adopted = false;
  std::uint64_t version = 0;  // committed hook version
  sim::Duration elapsed = 0;
};

class RecoveryManager {
 public:
  using DeployDone = std::function<void(StatusOr<RecoveryOutcome>)>;

  explicit RecoveryManager(ControlPlane& cp, RetryPolicy policy = {},
                           std::uint64_t seed = 1)
      : cp_(cp), policy_(policy), rng_(seed) {}
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // InjectExtension / InjectWasmFilter with the full recovery treatment.
  // `max_retries` < 0 uses the policy default.
  void DeployReliably(CodeFlow& flow, const bpf::Program& prog, int hook,
                      DeployDone done, int max_retries = -1);
  void DeployWasmReliably(CodeFlow& flow, const wasm::FilterModule& module,
                          int hook, DeployDone done, int max_retries = -1);

  bool Healthy(const CodeFlow& flow) const {
    return cp_.NodeHealthy(flow.node(), policy_.lease);
  }
  const RetryPolicy& policy() const { return policy_; }

 private:
  struct AttemptState;
  void Start(CodeFlow& flow, int hook,
             std::function<void(std::function<void(Status)>)> attempt,
             DeployDone done, int max_retries);
  void RunAttempt(std::shared_ptr<AttemptState> st);
  void HandleFailure(std::shared_ptr<AttemptState> st, Status s);
  void Backoff(std::shared_ptr<AttemptState> st);
  void FinishOk(std::shared_ptr<AttemptState> st);
  sim::Duration BackoffDelay(int attempt);

  ControlPlane& cp_;
  RetryPolicy policy_;
  Rng rng_;
};

// Detection thresholds for the agentless guardrail monitor. Deltas are
// per poll interval (between consecutive HealthBlock snapshots).
struct GuardrailPolicy {
  sim::Duration poll_period = sim::Millis(1);
  // A hook whose consecutive_failures reaches this is crash-looping.
  std::uint64_t consecutive_threshold = 4;
  // Trap / fuel-exhaustion deltas per poll that flag a hook even when
  // occasional successes keep resetting the consecutive counter.
  std::uint64_t trap_delta_threshold = 8;
  std::uint64_t fuel_delta_threshold = 8;
  // Quarantine on detection (CAS to last-good + blacklist). When false
  // the monitor only records detections (observe-only mode).
  bool auto_quarantine = true;
};

// One detection → quarantine decision, for tests and telemetry.
struct QuarantineRecord {
  rdma::NodeId node = rdma::kInvalidNode;
  int hook = 0;
  std::string reason;
  std::uint64_t bad_desc = 0;
  std::uint64_t good_desc = 0;
  bool quarantined = false;  // false = already contained locally / observe
  sim::SimTime at = 0;
};

// Agentless health monitor (§5 guardrails): periodically one-sided-READs
// every watched sandbox's HealthBlock array, diffs against the previous
// snapshot, and quarantines misbehaving extensions purely over RDMA —
// the data-plane CPU never runs a byte of monitoring code.
class HealthMonitor {
 public:
  explicit HealthMonitor(ControlPlane& cp, GuardrailPolicy policy = {})
      : cp_(cp), policy_(policy) {}
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void Watch(CodeFlow& flow);
  // Periodic polling on the event queue (Stop cancels the next tick).
  void Start();
  void Stop();
  bool running() const { return running_; }
  // One synchronous-ish sweep over every watched flow; `done` fires when
  // all health reads (and any resulting quarantines) completed. Gives
  // tests a deterministic poll point.
  void PollNow(std::function<void()> done = {});

  const std::vector<QuarantineRecord>& records() const { return records_; }
  std::uint64_t polls() const { return polls_; }
  const GuardrailPolicy& policy() const { return policy_; }

  // Monitor-side counters plus the last harvested HealthBlock snapshot of
  // every watched hook, under "monitor." / "health.node<n>.hook<k>.".
  void ExportMetrics(telemetry::MetricsRegistry& reg) const;

 private:
  struct HookSnapshot {
    HealthView last;
    bool quarantine_inflight = false;
  };
  struct WatchedFlow {
    CodeFlow* flow = nullptr;
    std::vector<HookSnapshot> snapshots;
  };
  void PollFlow(WatchedFlow& wf, std::function<void()> done);
  void Inspect(WatchedFlow& wf, int hook, const HealthView& now,
               std::function<void()> done);

  ControlPlane& cp_;
  GuardrailPolicy policy_;
  std::vector<WatchedFlow> watched_;
  std::vector<QuarantineRecord> records_;
  std::uint64_t polls_ = 0;
  bool running_ = false;
  sim::EventQueue::EventId next_tick_ = 0;
};

}  // namespace rdx::core
