// Self-healing layer over the control plane (§5 resilience). A deploy
// through the RecoveryManager survives QP flaps, lossy links, and node
// crash-and-reboot cycles:
//
//   retry        per-attempt deadline, exponential backoff with
//                deterministic jitter (common/rng.h)
//   reconnect    fresh QP pair + CodeFlow re-handshake (re-reads the
//                control block and symbol table; detects reboots)
//   idempotency  deploys carry a generation (hook version); before a
//                retry the manager probes the remote hook slot, so a
//                commit whose acknowledgement was lost is adopted
//                instead of re-applied — every deploy commits exactly
//                once
//   health       per-node lease from the control plane's last
//                successful completion (ControlPlane::NodeHealthy)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "core/codeflow.h"

namespace rdx::core {

struct RetryPolicy {
  // Total attempts = 1 + max_retries.
  int max_retries = 5;
  sim::Duration base_backoff = sim::Micros(20);
  double backoff_multiplier = 2.0;
  // Backoff delays are scaled by a deterministic factor in [1-j, 1+j).
  double jitter = 0.25;
  // An attempt with no verdict after this long counts as failed.
  sim::Duration attempt_deadline = sim::Millis(50);
  // Health lease for Healthy().
  sim::Duration lease = sim::Millis(5);
};

struct RecoveryOutcome {
  int attempts = 1;
  int reconnects = 0;
  // The generation was found already committed on a retry probe (the
  // failure hit after the commit point) and was adopted, not re-applied.
  bool adopted = false;
  std::uint64_t version = 0;  // committed hook version
  sim::Duration elapsed = 0;
};

class RecoveryManager {
 public:
  using DeployDone = std::function<void(StatusOr<RecoveryOutcome>)>;

  explicit RecoveryManager(ControlPlane& cp, RetryPolicy policy = {},
                           std::uint64_t seed = 1)
      : cp_(cp), policy_(policy), rng_(seed) {}
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // InjectExtension / InjectWasmFilter with the full recovery treatment.
  // `max_retries` < 0 uses the policy default.
  void DeployReliably(CodeFlow& flow, const bpf::Program& prog, int hook,
                      DeployDone done, int max_retries = -1);
  void DeployWasmReliably(CodeFlow& flow, const wasm::FilterModule& module,
                          int hook, DeployDone done, int max_retries = -1);

  bool Healthy(const CodeFlow& flow) const {
    return cp_.NodeHealthy(flow.node(), policy_.lease);
  }
  const RetryPolicy& policy() const { return policy_; }

 private:
  struct AttemptState;
  void Start(CodeFlow& flow, int hook,
             std::function<void(std::function<void(Status)>)> attempt,
             DeployDone done, int max_retries);
  void RunAttempt(std::shared_ptr<AttemptState> st);
  void HandleFailure(std::shared_ptr<AttemptState> st, Status s);
  void Backoff(std::shared_ptr<AttemptState> st);
  void FinishOk(std::shared_ptr<AttemptState> st);
  sim::Duration BackoffDelay(int attempt);

  ControlPlane& cp_;
  RetryPolicy policy_;
  Rng rng_;
};

}  // namespace rdx::core
