#include "core/broadcast.h"

#include <cstdio>

namespace rdx::core {

namespace {

// Fan-out helper: runs `launch(i, done_i)` for each index and calls
// `done` once all have reported, with the first error winning.
void ForAll(std::size_t n,
            const std::function<void(std::size_t,
                                     std::function<void(Status)>)>& launch,
            std::function<void(Status)> done) {
  if (n == 0) {
    done(OkStatus());
    return;
  }
  struct State {
    std::size_t remaining;
    Status first_error;
    std::function<void(Status)> done;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;
  state->done = std::move(done);
  for (std::size_t i = 0; i < n; ++i) {
    launch(i, [state](Status s) {
      if (!s.ok() && state->first_error.ok()) state->first_error = s;
      if (--state->remaining == 0) state->done(state->first_error);
    });
  }
}

}  // namespace

void CollectiveCodeFlow::Broadcast(
    const bpf::Program& prog, int hook, UpdateBarrier* barrier,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  const sim::SimTime t0 = cp_.events().Now();
  if (barrier != nullptr) barrier->BeginBuffering();
  // Own a copy: the caller's program need not outlive the async phases.
  auto prog_copy = std::make_shared<bpf::Program>(prog);

  // Validate + compile once (the compile cache makes this amortized),
  // then per-node: deploy XStates, link, prepare.
  cp_.ValidateCode(*prog_copy, [this, prog_copy, hook, barrier, t0,
                          done = std::move(done)](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    cp_.JitCompileCode(*prog_copy, [this, prog_copy, hook, barrier, t0,
                              done = std::move(done)](
                                 StatusOr<const bpf::JitImage*> img) mutable {
      if (!img.ok()) {
        done(img.status());
        return;
      }
      auto prepared =
          std::make_shared<std::vector<ControlPlane::PreparedImage>>(
              group_.size());
      const bpf::JitImage* image = img.value();
      ForAll(
          group_.size(),
          [this, image, prog_copy, prepared, hook](
              std::size_t i, std::function<void(Status)> done_i) {
            const bpf::Program& prog = *prog_copy;
            CodeFlow& flow = *group_[i];
            // Deploy missing XStates on this node, then link + prepare.
            auto deploy_next =
                std::make_shared<std::function<void(std::size_t)>>();
            std::weak_ptr<std::function<void(std::size_t)>> weak =
                deploy_next;
            *deploy_next = [this, &flow, image, &prog, prog_copy, prepared,
                            i, hook, done_i, weak](std::size_t m) mutable {
              auto self = weak.lock();
              if (!self) return;
              while (m < prog.maps.size() &&
                     flow.xstates().count(prog.maps[m].name) != 0) {
                ++m;
              }
              if (m < prog.maps.size()) {
                cp_.DeployXState(flow, prog.maps[m],
                                 [self, m, done_i](
                                     StatusOr<std::uint64_t> addr) {
                                   if (!addr.ok()) {
                                     done_i(addr.status());
                                     return;
                                   }
                                   (*self)(m + 1);
                                 });
                return;
              }
              cp_.LinkCode(flow, *image,
                           [this, &flow, prepared, i, hook, done_i](
                               StatusOr<bpf::JitImage> linked) {
                             if (!linked.ok()) {
                               done_i(linked.status());
                               return;
                             }
                             cp_.PrepareImage(
                                 flow, linked->Serialize(),
                                 flow.HookVersion(hook) + 1,
                                 [prepared, i, done_i](
                                     StatusOr<ControlPlane::PreparedImage>
                                         p) {
                                   if (!p.ok()) {
                                     done_i(p.status());
                                     return;
                                   }
                                   (*prepared)[i] = p.value();
                                   done_i(OkStatus());
                                 });
                           });
            };
            (*deploy_next)(0);
          },
          [this, prepared, hook, barrier, t0,
           done = std::move(done)](Status all) mutable {
            if (!all.ok()) {
              if (barrier != nullptr) barrier->ReleaseBuffered();
              done(all);
              return;
            }
            CommitAll(std::move(*prepared), hook, barrier, t0,
                      cp_.events().Now(), std::move(done));
          });
    });
  });
}

void CollectiveCodeFlow::BroadcastWasm(
    const std::vector<const wasm::FilterModule*>& filters, int hook,
    UpdateBarrier* barrier,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  if (filters.size() != group_.size()) {
    done(InvalidArgument("one filter per group member required"));
    return;
  }
  const sim::SimTime t0 = cp_.events().Now();
  if (barrier != nullptr) barrier->BeginBuffering();

  // Own copies: the caller's filters need not outlive the async phases.
  auto owned = std::make_shared<std::vector<wasm::FilterModule>>();
  owned->reserve(filters.size());
  for (const wasm::FilterModule* filter : filters) owned->push_back(*filter);

  auto prepared = std::make_shared<std::vector<ControlPlane::PreparedImage>>(
      group_.size());
  ForAll(
      group_.size(),
      [this, owned, prepared, hook](std::size_t i,
                                    std::function<void(Status)> done_i) {
        CodeFlow& flow = *group_[i];
        const wasm::FilterModule& module = (*owned)[i];
        cp_.ValidateWasm(module, [this, &flow, &module, owned, prepared, i,
                                  hook, done_i](Status s) mutable {
          if (!s.ok()) {
            done_i(s);
            return;
          }
          cp_.CompileWasm(module, [this, &flow, prepared, i, hook, done_i](
                                      StatusOr<const wasm::WasmImage*> img) {
            if (!img.ok()) {
              done_i(img.status());
              return;
            }
            cp_.LinkWasm(flow, *img.value(),
                         [this, &flow, prepared, i, hook,
                          done_i](StatusOr<wasm::WasmImage> linked) {
                           if (!linked.ok()) {
                             done_i(linked.status());
                             return;
                           }
                           cp_.PrepareImage(
                               flow, linked->Serialize(),
                               flow.HookVersion(hook) + 1,
                               [prepared, i, done_i](
                                   StatusOr<ControlPlane::PreparedImage> p) {
                                 if (!p.ok()) {
                                   done_i(p.status());
                                   return;
                                 }
                                 (*prepared)[i] = p.value();
                                 done_i(OkStatus());
                               });
                         });
          });
        });
      },
      [this, prepared, hook, barrier, t0,
       done = std::move(done)](Status all) mutable {
        if (!all.ok()) {
          if (barrier != nullptr) barrier->ReleaseBuffered();
          done(all);
          return;
        }
        CommitAll(std::move(*prepared), hook, barrier, t0,
                  cp_.events().Now(), std::move(done));
      });
}

void CollectiveCodeFlow::CommitAll(
    std::vector<ControlPlane::PreparedImage> prepared, int hook,
    UpdateBarrier* barrier, sim::SimTime t0, sim::SimTime prepare_done,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  auto first_commit = std::make_shared<sim::SimTime>(0);
  auto last_commit = std::make_shared<sim::SimTime>(0);
  auto prepared_shared =
      std::make_shared<std::vector<ControlPlane::PreparedImage>>(
          std::move(prepared));

  ForAll(
      group_.size(),
      [this, prepared_shared, hook, first_commit, last_commit](
          std::size_t i, std::function<void(Status)> done_i) {
        cp_.CommitPrepared(
            *group_[i], hook, (*prepared_shared)[i],
            [this, first_commit, last_commit, done_i](Status s) {
              const sim::SimTime now = cp_.events().Now();
              if (*first_commit == 0) *first_commit = now;
              *last_commit = std::max(*last_commit, now);
              done_i(s);
            });
      },
      [this, barrier, hook, t0, prepare_done, first_commit, last_commit,
       prepared_shared, done = std::move(done)](Status all) mutable {
        if (!all.ok()) {
          if (barrier != nullptr) barrier->ReleaseBuffered();
          done(all);
          return;
        }
        // Visibility barrier: the commits have landed in DRAM, but each
        // data-plane CPU sees its new hook only after the injected flush
        // executes. Poll the group (1 us cadence) until every sandbox
        // serves the new version, then release buffered requests — this
        // is what guarantees no request observes mixed logic.
        auto wait_visible =
            std::make_shared<std::function<void()>>();
        std::weak_ptr<std::function<void()>> weak = wait_visible;
        *wait_visible = [this, barrier, hook, t0, prepare_done, first_commit,
                         last_commit, prepared_shared, done, weak] {
          auto self = weak.lock();
          if (!self) return;
          for (std::size_t i = 0; i < group_.size(); ++i) {
            if (group_[i]->sandbox->VisibleVersion(hook) !=
                (*prepared_shared)[i].version) {
              cp_.events().ScheduleAfter(sim::Micros(1),
                                         [self] { (*self)(); });
              return;
            }
          }
          BroadcastResult result;
          result.nodes = group_.size();
          result.prepare_time = prepare_done - t0;
          result.commit_window = cp_.events().Now() - *first_commit;
          result.total = cp_.events().Now() - t0;
          (void)*last_commit;
          if (barrier != nullptr) {
            result.buffered_requests = barrier->BufferedCount();
            barrier->ReleaseBuffered();
          }
          if (cp_.tracer() != nullptr) {
            // Waves render on the control plane's own pid, one lane per
            // hook: the prepare fan-out, then the commit window that BBU
            // buffering covers.
            const std::uint32_t pid =
                static_cast<std::uint32_t>(cp_.self());
            const std::uint32_t tid = static_cast<std::uint32_t>(hook);
            char args[96];
            std::snprintf(args, sizeof(args),
                          "\"nodes\": %zu, \"buffered\": %zu",
                          result.nodes, result.buffered_requests);
            cp_.tracer()->AddComplete("broadcast", pid, tid, t0,
                                      result.total, args);
            cp_.tracer()->AddComplete("broadcast:prepare", pid, tid, t0,
                                      result.prepare_time);
            cp_.tracer()->AddComplete("broadcast:commit_window", pid, tid,
                                      *first_commit, result.commit_window);
          }
          done(result);
        };
        (*wait_visible)();
      });
}

}  // namespace rdx::core
