#include "core/broadcast.h"

#include <cstdio>

#include "core/reliability.h"

namespace rdx::core {

namespace {

// Fan-out helper: runs `launch(i, done_i)` for each index and calls
// `done` once all have reported, with the first error winning.
void ForAll(std::size_t n,
            const std::function<void(std::size_t,
                                     std::function<void(Status)>)>& launch,
            std::function<void(Status)> done) {
  if (n == 0) {
    done(OkStatus());
    return;
  }
  struct State {
    std::size_t remaining;
    Status first_error;
    std::function<void(Status)> done;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;
  state->done = std::move(done);
  for (std::size_t i = 0; i < n; ++i) {
    launch(i, [state](Status s) {
      if (!s.ok() && state->first_error.ok()) state->first_error = s;
      if (--state->remaining == 0) state->done(state->first_error);
    });
  }
}

}  // namespace

void CollectiveCodeFlow::Broadcast(
    const bpf::Program& prog, int hook, UpdateBarrier* barrier,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  const sim::SimTime t0 = cp_.events().Now();
  if (barrier != nullptr) barrier->BeginBuffering();
  // Own a copy: the caller's program need not outlive the async phases.
  auto prog_copy = std::make_shared<bpf::Program>(prog);

  // Validate + compile once (the compile cache makes this amortized),
  // then per-node: deploy XStates, link, prepare.
  cp_.ValidateCode(*prog_copy, [this, prog_copy, hook, barrier, t0,
                          done = std::move(done)](Status s) mutable {
    if (!s.ok()) {
      done(s);
      return;
    }
    cp_.JitCompileCode(*prog_copy, [this, prog_copy, hook, barrier, t0,
                              done = std::move(done)](
                                 StatusOr<const bpf::JitImage*> img) mutable {
      if (!img.ok()) {
        done(img.status());
        return;
      }
      auto prepared =
          std::make_shared<std::vector<ControlPlane::PreparedImage>>(
              group_.size());
      const bpf::JitImage* image = img.value();
      ForAll(
          group_.size(),
          [this, image, prog_copy, prepared, hook](
              std::size_t i, std::function<void(Status)> done_i) {
            const bpf::Program& prog = *prog_copy;
            CodeFlow& flow = *group_[i];
            // Deploy missing XStates on this node, then link + prepare.
            auto deploy_next =
                std::make_shared<std::function<void(std::size_t)>>();
            std::weak_ptr<std::function<void(std::size_t)>> weak =
                deploy_next;
            *deploy_next = [this, &flow, image, &prog, prog_copy, prepared,
                            i, hook, done_i, weak](std::size_t m) mutable {
              auto self = weak.lock();
              if (!self) return;
              while (m < prog.maps.size() &&
                     flow.xstates().count(prog.maps[m].name) != 0) {
                ++m;
              }
              if (m < prog.maps.size()) {
                cp_.DeployXState(flow, prog.maps[m],
                                 [self, m, done_i](
                                     StatusOr<std::uint64_t> addr) {
                                   if (!addr.ok()) {
                                     done_i(addr.status());
                                     return;
                                   }
                                   (*self)(m + 1);
                                 });
                return;
              }
              cp_.LinkCode(flow, *image,
                           [this, &flow, prepared, i, hook, done_i](
                               StatusOr<bpf::JitImage> linked) {
                             if (!linked.ok()) {
                               done_i(linked.status());
                               return;
                             }
                             cp_.PrepareImage(
                                 flow, linked->Serialize(),
                                 flow.HookVersion(hook) + 1,
                                 [prepared, i, done_i](
                                     StatusOr<ControlPlane::PreparedImage>
                                         p) {
                                   if (!p.ok()) {
                                     done_i(p.status());
                                     return;
                                   }
                                   (*prepared)[i] = p.value();
                                   done_i(OkStatus());
                                 });
                           });
            };
            (*deploy_next)(0);
          },
          [this, prepared, hook, barrier, t0,
           done = std::move(done)](Status all) mutable {
            if (!all.ok()) {
              if (barrier != nullptr) barrier->ReleaseBuffered();
              done(all);
              return;
            }
            CommitAll(std::move(*prepared), hook, barrier, t0,
                      cp_.events().Now(), std::move(done));
          });
    });
  });
}

void CollectiveCodeFlow::BroadcastWasm(
    const std::vector<const wasm::FilterModule*>& filters, int hook,
    UpdateBarrier* barrier,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  if (filters.size() != group_.size()) {
    done(InvalidArgument("one filter per group member required"));
    return;
  }
  const sim::SimTime t0 = cp_.events().Now();
  if (barrier != nullptr) barrier->BeginBuffering();

  // Own copies: the caller's filters need not outlive the async phases.
  auto owned = std::make_shared<std::vector<wasm::FilterModule>>();
  owned->reserve(filters.size());
  for (const wasm::FilterModule* filter : filters) owned->push_back(*filter);

  auto prepared = std::make_shared<std::vector<ControlPlane::PreparedImage>>(
      group_.size());
  ForAll(
      group_.size(),
      [this, owned, prepared, hook](std::size_t i,
                                    std::function<void(Status)> done_i) {
        CodeFlow& flow = *group_[i];
        const wasm::FilterModule& module = (*owned)[i];
        cp_.ValidateWasm(module, [this, &flow, &module, owned, prepared, i,
                                  hook, done_i](Status s) mutable {
          if (!s.ok()) {
            done_i(s);
            return;
          }
          cp_.CompileWasm(module, [this, &flow, prepared, i, hook, done_i](
                                      StatusOr<const wasm::WasmImage*> img) {
            if (!img.ok()) {
              done_i(img.status());
              return;
            }
            cp_.LinkWasm(flow, *img.value(),
                         [this, &flow, prepared, i, hook,
                          done_i](StatusOr<wasm::WasmImage> linked) {
                           if (!linked.ok()) {
                             done_i(linked.status());
                             return;
                           }
                           cp_.PrepareImage(
                               flow, linked->Serialize(),
                               flow.HookVersion(hook) + 1,
                               [prepared, i, done_i](
                                   StatusOr<ControlPlane::PreparedImage> p) {
                                 if (!p.ok()) {
                                   done_i(p.status());
                                   return;
                                 }
                                 (*prepared)[i] = p.value();
                                 done_i(OkStatus());
                               });
                         });
          });
        });
      },
      [this, prepared, hook, barrier, t0,
       done = std::move(done)](Status all) mutable {
        if (!all.ok()) {
          if (barrier != nullptr) barrier->ReleaseBuffered();
          done(all);
          return;
        }
        CommitAll(std::move(*prepared), hook, barrier, t0,
                  cp_.events().Now(), std::move(done));
      });
}

void CollectiveCodeFlow::CommitAll(
    std::vector<ControlPlane::PreparedImage> prepared, int hook,
    UpdateBarrier* barrier, sim::SimTime t0, sim::SimTime prepare_done,
    std::function<void(StatusOr<BroadcastResult>)> done) {
  auto first_commit = std::make_shared<sim::SimTime>(0);
  auto last_commit = std::make_shared<sim::SimTime>(0);
  auto prepared_shared =
      std::make_shared<std::vector<ControlPlane::PreparedImage>>(
          std::move(prepared));

  ForAll(
      group_.size(),
      [this, prepared_shared, hook, first_commit, last_commit](
          std::size_t i, std::function<void(Status)> done_i) {
        cp_.CommitPrepared(
            *group_[i], hook, (*prepared_shared)[i],
            [this, first_commit, last_commit, done_i](Status s) {
              const sim::SimTime now = cp_.events().Now();
              if (*first_commit == 0) *first_commit = now;
              *last_commit = std::max(*last_commit, now);
              done_i(s);
            });
      },
      [this, barrier, hook, t0, prepare_done, first_commit, last_commit,
       prepared_shared, done = std::move(done)](Status all) mutable {
        if (!all.ok()) {
          if (barrier != nullptr) barrier->ReleaseBuffered();
          done(all);
          return;
        }
        // Visibility barrier: the commits have landed in DRAM, but each
        // data-plane CPU sees its new hook only after the injected flush
        // executes. Poll the group (1 us cadence) until every sandbox
        // serves the new version, then release buffered requests — this
        // is what guarantees no request observes mixed logic.
        auto wait_visible =
            std::make_shared<std::function<void()>>();
        std::weak_ptr<std::function<void()>> weak = wait_visible;
        *wait_visible = [this, barrier, hook, t0, prepare_done, first_commit,
                         last_commit, prepared_shared, done, weak] {
          auto self = weak.lock();
          if (!self) return;
          for (std::size_t i = 0; i < group_.size(); ++i) {
            if (group_[i]->sandbox->VisibleVersion(hook) !=
                (*prepared_shared)[i].version) {
              cp_.events().ScheduleAfter(sim::Micros(1),
                                         [self] { (*self)(); });
              return;
            }
          }
          BroadcastResult result;
          result.nodes = group_.size();
          result.prepare_time = prepare_done - t0;
          result.commit_window = cp_.events().Now() - *first_commit;
          result.total = cp_.events().Now() - t0;
          (void)*last_commit;
          if (barrier != nullptr) {
            result.buffered_requests = barrier->BufferedCount();
            barrier->ReleaseBuffered();
          }
          if (cp_.tracer() != nullptr) {
            // Waves render on the control plane's own pid, one lane per
            // hook: the prepare fan-out, then the commit window that BBU
            // buffering covers.
            const std::uint32_t pid =
                static_cast<std::uint32_t>(cp_.self());
            const std::uint32_t tid = static_cast<std::uint32_t>(hook);
            char args[96];
            std::snprintf(args, sizeof(args),
                          "\"nodes\": %zu, \"buffered\": %zu",
                          result.nodes, result.buffered_requests);
            cp_.tracer()->AddComplete("broadcast", pid, tid, t0,
                                      result.total, args);
            cp_.tracer()->AddComplete("broadcast:prepare", pid, tid, t0,
                                      result.prepare_time);
            cp_.tracer()->AddComplete("broadcast:commit_window", pid, tid,
                                      *first_commit, result.commit_window);
          }
          done(result);
        };
        (*wait_visible)();
      });
}

// ---- pipelined fleet deploy ----------------------------------------------

struct CollectiveCodeFlow::PipelineState {
  // Owned copies: callers' specs need not outlive the async pipeline.
  std::vector<bpf::Program> progs;
  std::vector<int> hooks;
  PipelineOptions opts;
  sim::SimTime t0 = 0;
  std::function<void(StatusOr<PipelineResult>)> done;
  bool failed = false;  // terminal failure already reported

  // Per-node completion tracking.
  std::vector<NodeOutcome> nodes;
  std::vector<bool> alive;
  std::size_t stragglers = 0;

  // Compile-stage -> deploy-stage handoff (the pipeline registers).
  std::vector<const bpf::JitImage*> images;
  std::vector<bool> image_ready;
  std::vector<WaveResult> waves;
  std::size_t next_deploy = 0;
  bool deploying = false;
};

void CollectiveCodeFlow::DeployPipelined(
    const std::vector<DeploySpec>& specs, const PipelineOptions& opts,
    std::function<void(StatusOr<PipelineResult>)> done) {
  auto st = std::make_shared<PipelineState>();
  st->opts = opts;
  st->t0 = cp_.events().Now();
  st->done = std::move(done);
  st->progs.reserve(specs.size());
  st->hooks.reserve(specs.size());
  for (const DeploySpec& spec : specs) {
    if (spec.prog == nullptr) {
      st->done(InvalidArgument("null program in deploy spec"));
      return;
    }
    st->progs.push_back(*spec.prog);
    st->hooks.push_back(spec.hook);
  }
  st->waves.resize(specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    st->waves[k].hook = st->hooks[k];
  }
  st->images.resize(specs.size(), nullptr);
  st->image_ready.resize(specs.size(), false);
  st->nodes.resize(group_.size());
  st->alive.assign(group_.size(), true);
  for (std::size_t i = 0; i < group_.size(); ++i) {
    st->nodes[i].node = group_[i]->node();
  }
  if (specs.empty()) {
    FinishPipeline(st);
    return;
  }
  CompileWave(st, 0);
}

void CollectiveCodeFlow::CompileWave(std::shared_ptr<PipelineState> st,
                                     std::size_t k) {
  if (st->failed) return;
  const sim::SimTime start = cp_.events().Now();
  st->waves[k].compile_cache_hit =
      cp_.artifact_cache().ContainsEbpf(ProgramFingerprint(st->progs[k]));
  cp_.ValidateCode(st->progs[k], [this, st, k, start](Status s) {
    if (!s.ok()) {
      AbortPipeline(st, s);
      return;
    }
    cp_.JitCompileCode(
        st->progs[k],
        [this, st, k, start](StatusOr<const bpf::JitImage*> img) {
          if (!img.ok()) {
            AbortPipeline(st, img.status());
            return;
          }
          st->images[k] = img.value();
          st->image_ready[k] = true;
          st->waves[k].compile = cp_.events().Now() - start;
          if (cp_.tracer() != nullptr && st->waves[k].compile > 0) {
            cp_.tracer()->AddComplete(
                "pipeline:compile", static_cast<std::uint32_t>(cp_.self()),
                static_cast<std::uint32_t>(st->hooks[k]), start,
                st->waves[k].compile);
          }
          // The pipeline's overlap: start compiling the next wave while
          // this one's transfer + commit are still in flight.
          if (st->opts.pipelined && k + 1 < st->progs.size()) {
            CompileWave(st, k + 1);
          }
          TryDeployWave(st);
        });
  });
}

void CollectiveCodeFlow::TryDeployWave(std::shared_ptr<PipelineState> st) {
  if (st->failed || st->deploying) return;
  if (st->next_deploy >= st->progs.size()) {
    FinishPipeline(st);
    return;
  }
  if (!st->image_ready[st->next_deploy]) return;
  st->deploying = true;
  const std::size_t k = st->next_deploy;
  DeployWave(st, k, [this, st, k] {
    st->deploying = false;
    ++st->next_deploy;
    if (st->failed) return;
    // Serial schedule: the next wave's compile starts only now.
    if (!st->opts.pipelined && k + 1 < st->progs.size() &&
        !st->image_ready[k + 1]) {
      CompileWave(st, k + 1);
      return;
    }
    TryDeployWave(st);
  });
}

void CollectiveCodeFlow::DeployWave(std::shared_ptr<PipelineState> st,
                                    std::size_t k,
                                    std::function<void()> wave_done) {
  const int hook = st->hooks[k];
  const std::uint64_t fp = ProgramFingerprint(st->progs[k]);
  const bpf::JitImage* image = st->images[k];
  const sim::SimTime wave_start = cp_.events().Now();
  auto prepared = std::make_shared<std::vector<ControlPlane::PreparedImage>>(
      group_.size());
  auto has_prepared = std::make_shared<std::vector<bool>>(group_.size(),
                                                          false);
  auto wave_done_shared =
      std::make_shared<std::function<void()>>(std::move(wave_done));
  // A node-level failure either quarantines the node (straggler
  // isolation) or, when isolation is off, fails the wave.
  auto node_failed = [this, st, k](std::size_t i, const Status& why,
                                   const std::function<void(Status)>& done_i) {
    if (st->opts.isolate_stragglers) {
      MarkStraggler(st, i, k, why);
      done_i(OkStatus());
    } else {
      done_i(why);
    }
  };

  // One dispatch charge per wave: the control plane assembles every
  // node's WR chains in a single pass, instead of paying the rdx
  // dispatch overhead once per node as the serial path does.
  cp_.events().ScheduleAfter(
      cp_.config().cost.rdx_dispatch_overhead,
      [this, st, k, hook, fp, image, wave_start, prepared, has_prepared,
       node_failed, wave_done_shared] {
        ForAll(
            group_.size(),
            [this, st, k, hook, fp, image, prepared, has_prepared,
             node_failed](std::size_t i, std::function<void(Status)> done_i) {
              if (!st->alive[i]) {
                done_i(OkStatus());
                return;
              }
              CodeFlow& flow = *group_[i];
              const bpf::Program& prog = st->progs[k];
              // Deploy missing XStates, then link + prepare (the image
              // chunks ride one doorbell-batched chain per node).
              auto deploy_next =
                  std::make_shared<std::function<void(std::size_t)>>();
              std::weak_ptr<std::function<void(std::size_t)>> weak =
                  deploy_next;
              *deploy_next = [this, st, &flow, &prog, image, prepared,
                              has_prepared, i, k, hook, fp, done_i, weak,
                              node_failed](std::size_t m) mutable {
                auto self = weak.lock();
                if (!self) return;
                while (m < prog.maps.size() &&
                       flow.xstates().count(prog.maps[m].name) != 0) {
                  ++m;
                }
                if (m < prog.maps.size()) {
                  cp_.DeployXState(
                      flow, prog.maps[m],
                      [self, m, i, done_i, node_failed](
                          StatusOr<std::uint64_t> addr) {
                        if (!addr.ok()) {
                          node_failed(i, addr.status(), done_i);
                          return;
                        }
                        (*self)(m + 1);
                      });
                  return;
                }
                cp_.LinkCode(
                    flow, *image,
                    [this, st, &flow, prepared, has_prepared, i, k, hook, fp,
                     done_i, node_failed](StatusOr<bpf::JitImage> linked) {
                      if (!linked.ok()) {
                        node_failed(i, linked.status(), done_i);
                        return;
                      }
                      cp_.PrepareImage(
                          flow, linked->Serialize(),
                          flow.HookVersion(hook) + 1,
                          [prepared, has_prepared, i, done_i, node_failed](
                              StatusOr<ControlPlane::PreparedImage> p) {
                            if (!p.ok()) {
                              node_failed(i, p.status(), done_i);
                              return;
                            }
                            (*prepared)[i] = p.value();
                            (*has_prepared)[i] = true;
                            done_i(OkStatus());
                          },
                          fp);
                    });
              };
              (*deploy_next)(0);
            },
            [this, st, k, hook, wave_start, prepared, has_prepared,
             node_failed, wave_done_shared](Status all) {
              if (st->failed) {
                (*wave_done_shared)();
                return;
              }
              if (!all.ok()) {
                AbortPipeline(st, all);
                (*wave_done_shared)();
                return;
              }
              st->waves[k].transfer = cp_.events().Now() - wave_start;
              if (cp_.tracer() != nullptr) {
                cp_.tracer()->AddComplete(
                    "pipeline:transfer",
                    static_cast<std::uint32_t>(cp_.self()),
                    static_cast<std::uint32_t>(hook), wave_start,
                    st->waves[k].transfer);
              }
              // Commit wave: CAS every prepared node concurrently, one
              // fan-out across the per-node QPs.
              const sim::SimTime commit_start = cp_.events().Now();
              ForAll(
                  group_.size(),
                  [this, st, k, hook, prepared, has_prepared, node_failed](
                      std::size_t i, std::function<void(Status)> done_i) {
                    if (!st->alive[i] || !(*has_prepared)[i]) {
                      done_i(OkStatus());
                      return;
                    }
                    CodeFlow& flow = *group_[i];
                    auto it = flow.hooks_.find(hook);
                    const std::uint64_t expected =
                        it == flow.hooks_.end() ? 0 : it->second.desc_addr;
                    cp_.CommitPreparedCas(
                        flow, hook, (*prepared)[i], expected,
                        [this, st, k, i, done_i,
                         node_failed](Status s) {
                          if (!s.ok()) {
                            node_failed(i, s, done_i);
                            return;
                          }
                          ++st->nodes[i].waves_committed;
                          ++st->waves[k].committed;
                          done_i(OkStatus());
                        });
                  },
                  [this, st, k, hook, commit_start,
                   wave_done_shared](Status all2) {
                    if (st->failed) {
                      (*wave_done_shared)();
                      return;
                    }
                    if (!all2.ok()) {
                      AbortPipeline(st, all2);
                      (*wave_done_shared)();
                      return;
                    }
                    st->waves[k].commit = cp_.events().Now() - commit_start;
                    if (cp_.tracer() != nullptr) {
                      cp_.tracer()->AddComplete(
                          "pipeline:commit",
                          static_cast<std::uint32_t>(cp_.self()),
                          static_cast<std::uint32_t>(hook), commit_start,
                          st->waves[k].commit);
                    }
                    (*wave_done_shared)();
                  });
            });
      });
}

void CollectiveCodeFlow::MarkStraggler(std::shared_ptr<PipelineState> st,
                                       std::size_t i, std::size_t wave,
                                       const Status& why) {
  if (!st->alive[i]) return;
  st->alive[i] = false;
  ++st->stragglers;
  NodeOutcome& out = st->nodes[i];
  out.status = why;
  out.failed_wave = static_cast<int>(wave);
  if (cp_.tracer() != nullptr) {
    char args[96];
    std::snprintf(args, sizeof(args), "\"node\": %u, \"wave\": %zu",
                  static_cast<unsigned>(out.node), wave);
    cp_.tracer()->AddInstant("pipeline:straggler",
                             static_cast<std::uint32_t>(cp_.self()),
                             static_cast<std::uint32_t>(st->hooks[wave]),
                             args);
  }
  // Hand the failed deploy to the recovery layer in the background; the
  // pipeline result does not wait for the retry to settle.
  if (st->opts.recovery != nullptr) {
    out.retried_in_background = true;
    st->opts.recovery->DeployReliably(
        *group_[i], st->progs[wave], st->hooks[wave],
        [st](StatusOr<RecoveryOutcome> r) { (void)r; });
  }
}

void CollectiveCodeFlow::AbortPipeline(std::shared_ptr<PipelineState> st,
                                       const Status& why) {
  if (st->failed) return;
  st->failed = true;
  st->done(why);
}

void CollectiveCodeFlow::FinishPipeline(std::shared_ptr<PipelineState> st) {
  if (st->failed) return;
  PipelineResult result;
  result.waves = std::move(st->waves);
  result.nodes = std::move(st->nodes);
  result.total = cp_.events().Now() - st->t0;
  result.stragglers = st->stragglers;
  if (cp_.tracer() != nullptr) {
    char args[96];
    std::snprintf(args, sizeof(args),
                  "\"nodes\": %zu, \"waves\": %zu, \"stragglers\": %zu",
                  result.nodes.size(), result.waves.size(),
                  result.stragglers);
    cp_.tracer()->AddComplete("pipeline",
                              static_cast<std::uint32_t>(cp_.self()), 0,
                              st->t0, result.total, args);
  }
  st->done(std::move(result));
}

}  // namespace rdx::core
