// A Redis-like in-memory KV store used for the §6 contention experiment
// ("agentless eBPF over RDX improves Redis throughput by up to 25.3%").
// The store parses a RESP-style command encoding, serves GET/SET/DEL/INCR
// against an open-addressing table, and optionally runs an attached eBPF
// extension per command (a tracing/filtering hook, as XRP/eBPF-for-storage
// deployments do). All work is charged to the node's shared CPU, which
// the agent baseline also uses for verify/JIT and periodic state polling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/stats.h"
#include "core/sandbox.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"

namespace rdx::kvstore {

enum class CommandType : std::uint8_t { kGet, kSet, kDel, kIncr };

struct Command {
  CommandType type;
  std::string key;
  std::string value;  // SET only
};

// RESP-ish wire codec (arrays of bulk strings), for realism and tests.
Bytes EncodeCommand(const Command& command);
StatusOr<Command> DecodeCommand(ByteSpan bytes);

struct StoreConfig {
  int cores = 4;
  sim::CostModel cost;
  std::uint64_t seed = 1;
  // eBPF hook executed per command when attached (0 disables).
  int ebpf_hook = 0;
  bool run_extension = true;
  // Forwarded to the sandbox: trace-ring telemetry on the hook path
  // (bench/telemetry_overhead measures the on/off delta).
  bool telemetry = true;
};

struct StoreMetrics {
  std::uint64_t ops = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t extension_failures = 0;
  Histogram latency_ns;
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;

  double ThroughputPerSec() const {
    const double secs =
        static_cast<double>(window_end - window_start) / 1e9;
    return secs > 0 ? static_cast<double>(ops) / secs : 0;
  }
};

class KvStore {
 public:
  KvStore(sim::EventQueue& events, rdma::Node& node, StoreConfig config);

  // Executes a command asynchronously; `done` fires when the CPU has
  // served it. The attached eBPF hook (if any) runs per command with the
  // command fingerprint as ctx.
  void Execute(const Command& command,
               std::function<void(StatusOr<std::string>)> done);

  core::Sandbox& sandbox() { return *sandbox_; }
  sim::CpuScheduler& cpu() { return *cpu_; }
  StoreMetrics TakeMetrics();
  std::size_t Size() const { return data_.size(); }

 private:
  StatusOr<std::string> Apply(const Command& command);

  sim::EventQueue& events_;
  StoreConfig config_;
  std::unique_ptr<sim::CpuScheduler> cpu_;
  std::unique_ptr<core::Sandbox> sandbox_;
  std::unordered_map<std::string, std::string> data_;
  StoreMetrics metrics_;
};

// Closed-loop workload driver: `clients` concurrent clients, each issuing
// the next command as soon as the previous completes. Zipf-skewed keys,
// a configurable GET fraction.
struct WorkloadConfig {
  int clients = 32;
  std::uint64_t key_space = 10000;
  double zipf_skew = 0.99;
  double get_fraction = 0.8;
  std::uint64_t seed = 99;
  std::uint32_t value_bytes = 64;
};

class KvWorkload {
 public:
  KvWorkload(sim::EventQueue& events, KvStore& store, WorkloadConfig config);
  void Start();
  void Stop();
  std::uint64_t completed() const { return completed_; }

 private:
  void IssueNext(int client);
  Command NextCommand();

  sim::EventQueue& events_;
  KvStore& store_;
  WorkloadConfig config_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace rdx::kvstore
