#include "kvstore/kvstore.h"

namespace rdx::kvstore {

namespace {
const char* CommandName(CommandType type) {
  switch (type) {
    case CommandType::kGet: return "GET";
    case CommandType::kSet: return "SET";
    case CommandType::kDel: return "DEL";
    case CommandType::kIncr: return "INCR";
  }
  return "?";
}

void AppendBulk(Bytes& out, std::string_view s) {
  out.push_back('$');
  const std::string len = std::to_string(s.size());
  out.insert(out.end(), len.begin(), len.end());
  out.push_back('\r');
  out.push_back('\n');
  out.insert(out.end(), s.begin(), s.end());
  out.push_back('\r');
  out.push_back('\n');
}

StatusOr<std::string> ReadBulk(ByteSpan bytes, std::size_t& off) {
  if (off >= bytes.size() || bytes[off] != '$') {
    return InvalidArgument("expected bulk string");
  }
  ++off;
  std::size_t len = 0;
  while (off < bytes.size() && bytes[off] != '\r') {
    if (bytes[off] < '0' || bytes[off] > '9') {
      return InvalidArgument("bad bulk length");
    }
    len = len * 10 + (bytes[off] - '0');
    ++off;
  }
  if (off + 2 + len + 2 > bytes.size() + 0) {
    if (off + 2 + len > bytes.size()) {
      return InvalidArgument("truncated bulk string");
    }
  }
  off += 2;  // \r\n
  std::string s(reinterpret_cast<const char*>(bytes.data() + off), len);
  off += len;
  if (off + 2 > bytes.size() || bytes[off] != '\r' || bytes[off + 1] != '\n') {
    return InvalidArgument("missing bulk terminator");
  }
  off += 2;
  return s;
}
}  // namespace

Bytes EncodeCommand(const Command& command) {
  Bytes out;
  const int nargs = command.type == CommandType::kSet ? 3 : 2;
  out.push_back('*');
  out.push_back(static_cast<std::uint8_t>('0' + nargs));
  out.push_back('\r');
  out.push_back('\n');
  AppendBulk(out, CommandName(command.type));
  AppendBulk(out, command.key);
  if (command.type == CommandType::kSet) AppendBulk(out, command.value);
  return out;
}

StatusOr<Command> DecodeCommand(ByteSpan bytes) {
  if (bytes.size() < 4 || bytes[0] != '*') {
    return InvalidArgument("expected RESP array");
  }
  const int nargs = bytes[1] - '0';
  if (nargs < 2 || nargs > 3 || bytes[2] != '\r' || bytes[3] != '\n') {
    return InvalidArgument("bad RESP array header");
  }
  std::size_t off = 4;
  RDX_ASSIGN_OR_RETURN(const std::string verb, ReadBulk(bytes, off));
  Command command;
  if (verb == "GET") {
    command.type = CommandType::kGet;
  } else if (verb == "SET") {
    command.type = CommandType::kSet;
  } else if (verb == "DEL") {
    command.type = CommandType::kDel;
  } else if (verb == "INCR") {
    command.type = CommandType::kIncr;
  } else {
    return InvalidArgument("unknown command verb");
  }
  RDX_ASSIGN_OR_RETURN(command.key, ReadBulk(bytes, off));
  if (command.type == CommandType::kSet) {
    if (nargs != 3) return InvalidArgument("SET needs a value");
    RDX_ASSIGN_OR_RETURN(command.value, ReadBulk(bytes, off));
  } else if (nargs != 2) {
    return InvalidArgument("unexpected extra argument");
  }
  return command;
}

KvStore::KvStore(sim::EventQueue& events, rdma::Node& node,
                 StoreConfig config)
    : events_(events), config_(config) {
  cpu_ = std::make_unique<sim::CpuScheduler>(events_, config_.cores,
                                             config_.cost.cpu_hz);
  core::SandboxConfig sandbox_config;
  sandbox_config.seed = config_.seed;
  sandbox_config.telemetry = config_.telemetry;
  sandbox_ = std::make_unique<core::Sandbox>(events_, node, sandbox_config);
  Status booted = sandbox_->CtxInit();
  (void)booted;
  metrics_.window_start = events_.Now();
}

StatusOr<std::string> KvStore::Apply(const Command& command) {
  switch (command.type) {
    case CommandType::kGet: {
      auto it = data_.find(command.key);
      if (it == data_.end()) {
        ++metrics_.misses;
        return std::string();
      }
      ++metrics_.hits;
      return it->second;
    }
    case CommandType::kSet:
      data_[command.key] = command.value;
      return std::string("OK");
    case CommandType::kDel:
      data_.erase(command.key);
      return std::string("OK");
    case CommandType::kIncr: {
      auto& slot = data_[command.key];
      std::uint64_t v = 0;
      if (!slot.empty()) v = std::strtoull(slot.c_str(), nullptr, 10);
      slot = std::to_string(v + 1);
      return slot;
    }
  }
  return Internal("corrupt command");
}

void KvStore::Execute(const Command& command,
                      std::function<void(StatusOr<std::string>)> done) {
  const sim::SimTime start = events_.Now();
  // Round-trip the RESP codec (parse cost is part of kv_request_cycles).
  auto decoded = DecodeCommand(EncodeCommand(command));
  if (!decoded.ok()) {
    done(decoded.status());
    return;
  }

  std::uint64_t ext_cycles = 0;
  if (config_.run_extension &&
      sandbox_->VisibleVersion(config_.ebpf_hook) != 0) {
    Bytes ctx(16, 0);
    StoreLE(ctx.data(), Fnv1a64(ByteSpan(
                            reinterpret_cast<const std::uint8_t*>(
                                command.key.data()),
                            command.key.size())));
    ctx[8] = static_cast<std::uint8_t>(command.type);
    auto result = sandbox_->ExecuteHook(config_.ebpf_hook, ctx);
    if (result.ok()) {
      ext_cycles = config_.cost.ExtensionExecCycles(result->insns_executed);
    } else {
      ++metrics_.extension_failures;
    }
  }
  // Trace-ring emits ride on the request's CPU budget — this is where
  // telemetry's data-plane cost becomes virtual time.
  ext_cycles +=
      config_.cost.trace_emit_cycles * sandbox_->DrainTraceEmits();

  cpu_->Submit(config_.cost.kv_request_cycles + ext_cycles,
               [this, command = decoded.value(), start,
                done = std::move(done)]() mutable {
                 auto reply = Apply(command);
                 ++metrics_.ops;
                 metrics_.latency_ns.Add(
                     static_cast<std::uint64_t>(events_.Now() - start));
                 done(std::move(reply));
               });
}

StoreMetrics KvStore::TakeMetrics() {
  metrics_.window_end = events_.Now();
  StoreMetrics out = metrics_;
  metrics_ = StoreMetrics{};
  metrics_.window_start = events_.Now();
  return out;
}

KvWorkload::KvWorkload(sim::EventQueue& events, KvStore& store,
                       WorkloadConfig config)
    : events_(events), store_(store), config_(config), rng_(config.seed) {}

Command KvWorkload::NextCommand() {
  Command command;
  const std::uint64_t key_id =
      rng_.NextZipf(config_.key_space, config_.zipf_skew);
  command.key = "key:" + std::to_string(key_id);
  if (rng_.NextBool(config_.get_fraction)) {
    command.type = CommandType::kGet;
  } else {
    command.type = CommandType::kSet;
    command.value.assign(config_.value_bytes, 'v');
  }
  return command;
}

void KvWorkload::Start() {
  if (running_) return;
  running_ = true;
  for (int client = 0; client < config_.clients; ++client) {
    IssueNext(client);
  }
}

void KvWorkload::Stop() { running_ = false; }

void KvWorkload::IssueNext(int client) {
  if (!running_) return;
  store_.Execute(NextCommand(), [this, client](StatusOr<std::string> reply) {
    (void)reply;
    ++completed_;
    if (running_) IssueNext(client);
  });
}

}  // namespace rdx::kvstore
