#include "wasm/filter.h"

#include <cstdio>
#include <optional>

#include "common/rng.h"

namespace rdx::wasm {

namespace {

Status Err(std::size_t pc, const char* rule) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "wasm insn %zu: %s", pc, rule);
  return InvalidArgument(buf);
}

bool IsBinary(WOp op) {
  switch (op) {
    case WOp::kAdd: case WOp::kSub: case WOp::kMul: case WOp::kAnd:
    case WOp::kOr: case WOp::kXor: case WOp::kEq: case WOp::kNe:
    case WOp::kLtU: case WOp::kGtU:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status ValidateFilter(const FilterModule& module, WasmValidatorStats* stats) {
  if (module.code.empty()) return InvalidArgument("empty filter");
  if (module.num_locals > 64) return InvalidArgument("too many locals");

  // Stack depth abstract interpretation. Because branches are forward-
  // only, a single left-to-right pass with expected-depth annotations at
  // branch targets suffices.
  const std::size_t n = module.code.size();
  std::vector<std::optional<int>> depth_at(n + 1);
  depth_at[0] = 0;
  std::uint64_t checked = 0;
  bool reachable = true;
  int depth = 0;

  for (std::size_t pc = 0; pc < n; ++pc) {
    ++checked;
    if (depth_at[pc].has_value()) {
      if (reachable && *depth_at[pc] != depth) {
        return Err(pc, "inconsistent stack depth at merge point");
      }
      depth = *depth_at[pc];
      reachable = true;
    } else if (!reachable) {
      return Err(pc, "unreachable code");
    }

    const WasmInsn& insn = module.code[pc];
    auto need = [&](int k) { return depth >= k; };
    auto branch_to = [&](std::int64_t target, int at_depth) -> Status {
      if (target <= static_cast<std::int64_t>(pc) ||
          target > static_cast<std::int64_t>(n)) {
        return Err(pc, "branch target must be forward and in range");
      }
      if (depth_at[target].has_value() && *depth_at[target] != at_depth) {
        return Err(pc, "branch with mismatched stack depth");
      }
      depth_at[target] = at_depth;
      return OkStatus();
    };

    switch (insn.op) {
      case WOp::kConst:
        ++depth;
        break;
      case WOp::kGetLocal:
        if (insn.imm < 0 || insn.imm >= module.num_locals) {
          return Err(pc, "local index out of range");
        }
        ++depth;
        break;
      case WOp::kSetLocal:
        if (insn.imm < 0 || insn.imm >= module.num_locals) {
          return Err(pc, "local index out of range");
        }
        if (!need(1)) return Err(pc, "stack underflow");
        --depth;
        break;
      case WOp::kDrop:
        if (!need(1)) return Err(pc, "stack underflow");
        --depth;
        break;
      case WOp::kDup:
        if (!need(1)) return Err(pc, "stack underflow");
        ++depth;
        break;
      case WOp::kBr:
        RDX_RETURN_IF_ERROR(branch_to(insn.imm, depth));
        reachable = false;
        break;
      case WOp::kBrIf:
        if (!need(1)) return Err(pc, "stack underflow");
        --depth;
        RDX_RETURN_IF_ERROR(branch_to(insn.imm, depth));
        break;
      case WOp::kCallHost:
        if (insn.imm < 0 ||
            insn.imm >= static_cast<std::int64_t>(module.imports.size())) {
          return Err(pc, "import index out of range");
        }
        if (!need(2)) return Err(pc, "stack underflow at host call");
        --depth;  // pop 2, push 1
        break;
      case WOp::kReturn:
        if (!need(1)) return Err(pc, "return without a verdict");
        reachable = false;
        break;
      default:
        if (IsBinary(insn.op)) {
          if (!need(2)) return Err(pc, "stack underflow");
          --depth;
          break;
        }
        return Err(pc, "unknown opcode");
    }
    if (depth > 1024) return Err(pc, "stack depth limit exceeded");
  }
  if (reachable && !depth_at[n].has_value()) {
    return InvalidArgument("control flow falls off the filter end");
  }
  if (stats != nullptr) stats->insns_checked = checked;
  return OkStatus();
}

// ---- Image ----

bool WasmImage::IsLinked() const {
  for (const WasmReloc& reloc : relocs) {
    if (reloc.resolved_host_fn < 0) return false;
  }
  return true;
}

Bytes WasmImage::Serialize() const {
  Bytes out;
  AppendLE<std::uint32_t>(out, 0x46574452u);  // "RDWF"
  AppendLE<std::uint32_t>(out, 1);            // version
  AppendLE<std::uint32_t>(out,
                          static_cast<std::uint32_t>(filter_name.size()));
  out.insert(out.end(), filter_name.begin(), filter_name.end());
  AppendLE<std::uint32_t>(out, num_locals);
  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(code.size()));
  for (const WasmInsn& insn : code) {
    out.push_back(static_cast<std::uint8_t>(insn.op));
    AppendLE<std::int64_t>(out, insn.imm);
  }
  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(relocs.size()));
  for (const WasmReloc& reloc : relocs) {
    AppendLE<std::uint32_t>(out, reloc.insn_index);
    AppendLE<std::int32_t>(out, reloc.resolved_host_fn);
    AppendLE<std::uint32_t>(out,
                            static_cast<std::uint32_t>(
                                reloc.import_name.size()));
    out.insert(out.end(), reloc.import_name.begin(), reloc.import_name.end());
  }
  AppendLE<std::uint64_t>(out, Fnv1a64(out));
  return out;
}

StatusOr<WasmImage> WasmImage::Deserialize(ByteSpan bytes) {
  if (bytes.size() < 24) return InvalidArgument("wasm image too small");
  const std::uint64_t sum =
      LoadLE<std::uint64_t>(bytes.data() + bytes.size() - 8);
  if (Fnv1a64(bytes.subspan(0, bytes.size() - 8)) != sum) {
    return FailedPrecondition("wasm image checksum mismatch");
  }
  std::size_t off = 0;
  if (LoadLE<std::uint32_t>(bytes.data()) != 0x46574452u) {
    return InvalidArgument("bad wasm image magic");
  }
  off += 8;  // magic + version
  WasmImage image;
  const std::uint32_t name_len = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  if (off + name_len > bytes.size()) return InvalidArgument("truncated name");
  image.filter_name.assign(
      reinterpret_cast<const char*>(bytes.data() + off), name_len);
  off += name_len;
  image.num_locals = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  const std::uint32_t ncode = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  if (off + static_cast<std::size_t>(ncode) * 9 > bytes.size()) {
    return InvalidArgument("truncated wasm code");
  }
  for (std::uint32_t i = 0; i < ncode; ++i) {
    WasmInsn insn;
    insn.op = static_cast<WOp>(bytes[off]);
    insn.imm = LoadLE<std::int64_t>(bytes.data() + off + 1);
    image.code.push_back(insn);
    off += 9;
  }
  if (off + 4 > bytes.size()) return InvalidArgument("truncated relocs");
  const std::uint32_t nrelocs = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  for (std::uint32_t i = 0; i < nrelocs; ++i) {
    if (off + 12 > bytes.size()) return InvalidArgument("truncated reloc");
    WasmReloc reloc;
    reloc.insn_index = LoadLE<std::uint32_t>(bytes.data() + off);
    reloc.resolved_host_fn = LoadLE<std::int32_t>(bytes.data() + off + 4);
    const std::uint32_t len = LoadLE<std::uint32_t>(bytes.data() + off + 8);
    off += 12;
    if (off + len > bytes.size()) return InvalidArgument("truncated reloc");
    reloc.import_name.assign(
        reinterpret_cast<const char*>(bytes.data() + off), len);
    off += len;
    if (reloc.insn_index >= image.code.size()) {
      return InvalidArgument("wasm reloc index out of range");
    }
    image.relocs.push_back(std::move(reloc));
  }
  return image;
}

std::uint64_t WasmImage::Fingerprint() const {
  WasmImage normalized = *this;
  for (WasmReloc& reloc : normalized.relocs) reloc.resolved_host_fn = -1;
  for (const WasmReloc& reloc : normalized.relocs) {
    normalized.code[reloc.insn_index].imm = -1;
  }
  return Fnv1a64(normalized.Serialize());
}

StatusOr<WasmImage> CompileFilter(const FilterModule& module) {
  RDX_RETURN_IF_ERROR(ValidateFilter(module));
  WasmImage image;
  image.filter_name = module.name;
  image.num_locals = module.num_locals;
  image.code = module.code;
  for (std::size_t pc = 0; pc < image.code.size(); ++pc) {
    if (image.code[pc].op == WOp::kCallHost) {
      WasmReloc reloc;
      reloc.insn_index = static_cast<std::uint32_t>(pc);
      reloc.import_name = module.imports[image.code[pc].imm].name;
      image.relocs.push_back(std::move(reloc));
      image.code[pc].imm = -1;  // patched at link time
    }
  }
  return image;
}

StatusOr<WasmResult> RunFilter(const WasmImage& image, WasmHost& host,
                               std::uint64_t step_limit) {
  if (!image.IsLinked()) {
    return FailedPrecondition("executing unlinked wasm image");
  }
  // Link: call sites carry the resolved host-fn index in imm.
  std::vector<std::int64_t> call_target(image.code.size(), -1);
  for (const WasmReloc& reloc : image.relocs) {
    call_target[reloc.insn_index] = reloc.resolved_host_fn;
  }

  std::vector<std::uint64_t> stack;
  stack.reserve(64);
  std::vector<std::uint64_t> locals(image.num_locals, 0);
  WasmResult result;
  std::size_t pc = 0;
  while (true) {
    if (pc >= image.code.size()) {
      return Aborted("wasm pc ran off the end");
    }
    if (++result.insns_executed > step_limit) {
      return ResourceExhausted("wasm step limit exceeded");
    }
    const WasmInsn& insn = image.code[pc];
    switch (insn.op) {
      case WOp::kConst:
        stack.push_back(static_cast<std::uint64_t>(insn.imm));
        ++pc;
        break;
      case WOp::kGetLocal:
        stack.push_back(locals[insn.imm]);
        ++pc;
        break;
      case WOp::kSetLocal:
        locals[insn.imm] = stack.back();
        stack.pop_back();
        ++pc;
        break;
      case WOp::kDrop:
        stack.pop_back();
        ++pc;
        break;
      case WOp::kDup:
        stack.push_back(stack.back());
        ++pc;
        break;
      case WOp::kBr:
        pc = static_cast<std::size_t>(insn.imm);
        break;
      case WOp::kBrIf: {
        const std::uint64_t cond = stack.back();
        stack.pop_back();
        pc = cond != 0 ? static_cast<std::size_t>(insn.imm) : pc + 1;
        break;
      }
      case WOp::kCallHost: {
        const std::uint64_t arg1 = stack.back();
        stack.pop_back();
        const std::uint64_t arg0 = stack.back();
        stack.pop_back();
        RDX_ASSIGN_OR_RETURN(
            const std::uint64_t ret,
            host.CallHost(static_cast<std::int32_t>(call_target[pc]), arg0,
                          arg1));
        stack.push_back(ret);
        ++pc;
        break;
      }
      case WOp::kReturn:
        result.verdict = stack.back();
        return result;
      default: {
        const std::uint64_t b = stack.back();
        stack.pop_back();
        const std::uint64_t a = stack.back();
        stack.pop_back();
        std::uint64_t r = 0;
        switch (insn.op) {
          case WOp::kAdd: r = a + b; break;
          case WOp::kSub: r = a - b; break;
          case WOp::kMul: r = a * b; break;
          case WOp::kAnd: r = a & b; break;
          case WOp::kOr: r = a | b; break;
          case WOp::kXor: r = a ^ b; break;
          case WOp::kEq: r = a == b; break;
          case WOp::kNe: r = a != b; break;
          case WOp::kLtU: r = a < b; break;
          case WOp::kGtU: r = a > b; break;
          default:
            return Internal("unknown wasm opcode at runtime");
        }
        stack.push_back(r);
        ++pc;
        break;
      }
    }
  }
}

FilterModule GenerateFilter(std::size_t target_insns, std::uint64_t seed) {
  Rng rng(seed);
  FilterModule module;
  module.name = "filter_" + std::to_string(target_insns) + "_s" +
                std::to_string(seed);
  module.num_locals = 8;
  module.imports = {{"get_header"}, {"set_header"}, {"counter_incr"},
                    {"log_event"}};

  auto& code = module.code;
  const std::size_t target = std::max<std::size_t>(target_insns, 8);
  // local0 accumulates a "verdict" scalar.
  code.push_back({WOp::kConst, 1});
  code.push_back({WOp::kSetLocal, 0});
  while (code.size() + 8 < target) {
    const double roll = rng.NextDouble();
    if (roll < 0.08) {
      // get_header(key, 0) folded into local0: 6 insns.
      code.push_back({WOp::kGetLocal, 0});
      code.push_back({WOp::kConst,
                      static_cast<std::int64_t>(rng.NextBounded(16))});
      code.push_back({WOp::kConst, 0});
      code.push_back({WOp::kCallHost, 0});
      code.push_back({WOp::kXor, 0});
      code.push_back({WOp::kSetLocal, 0});
    } else if (roll < 0.16) {
      // forward branch over 2 filler ops: 5 insns.
      const std::int64_t target_pc =
          static_cast<std::int64_t>(code.size()) + 4;
      code.push_back({WOp::kGetLocal, 0});
      code.push_back({WOp::kBrIf, target_pc});
      code.push_back({WOp::kConst, 3});
      code.push_back({WOp::kDrop, 0});
    } else {
      // ALU over local0: 4 insns.
      static constexpr WOp kOps[] = {WOp::kAdd, WOp::kSub, WOp::kMul,
                                     WOp::kXor, WOp::kOr, WOp::kAnd};
      code.push_back({WOp::kGetLocal, 0});
      code.push_back({WOp::kConst,
                      static_cast<std::int64_t>(rng.NextBounded(1000) + 1)});
      code.push_back({kOps[rng.NextBounded(std::size(kOps))], 0});
      code.push_back({WOp::kSetLocal, 0});
    }
  }
  while (code.size() + 3 < target) {
    code.push_back({WOp::kGetLocal, 0});
    code.push_back({WOp::kSetLocal, 0});
  }
  // Verdict: local0 & 1.
  code.push_back({WOp::kGetLocal, 0});
  code.push_back({WOp::kConst, 1});
  code.push_back({WOp::kAnd, 0});
  code.push_back({WOp::kReturn, 0});
  return module;
}

}  // namespace rdx::wasm
