// Minimal Proxy-Wasm-style filter runtime: a validated stack machine
// whose programs ("filters") run per request inside a sidecar and talk to
// the host through named imports (get_header, set_header, ...). This is
// the paper's *second* extension type: its metadata shape (import table
// instead of map relocations, per-filter shared queue) exercises the
// parts of CodeFlow that eBPF alone would not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rdx::wasm {

enum class WOp : std::uint8_t {
  kConst,     // push imm64
  kGetLocal,  // push locals[imm]
  kSetLocal,  // locals[imm] = pop
  kAdd, kSub, kMul, kAnd, kOr, kXor,      // binary: push(a op b)
  kEq, kNe, kLtU, kGtU,                   // binary compare: push 0/1
  kDrop,
  kDup,
  kBr,        // unconditional forward branch to insn index imm
  kBrIf,      // pop; branch to imm if nonzero
  kCallHost,  // pop 2 args, call imports[imm], push result
  kReturn,    // pop -> filter verdict
};

struct WasmInsn {
  WOp op = WOp::kReturn;
  std::int64_t imm = 0;
};

// Host functions a filter may import. The sidecar provides the table; the
// RDX link stage checks each import against the target's exported symbol
// table (the Wasm analogue of eBPF helper relocation).
struct ImportDecl {
  std::string name;
};

struct FilterModule {
  std::string name;
  std::uint32_t num_locals = 4;
  std::vector<WasmInsn> code;
  std::vector<ImportDecl> imports;

  std::size_t size() const { return code.size(); }
};

struct WasmValidatorStats {
  std::uint64_t insns_checked = 0;
};

// Validates types/stack discipline: depth never negative, binary ops have
// two operands, branches are forward with consistent depth at each
// target, locals in range, imports in range, all paths return.
Status ValidateFilter(const FilterModule& module,
                      WasmValidatorStats* stats = nullptr);

// ---- Compiled image (the deployable binary) ----
// Compilation pre-resolves branch targets and produces an import
// relocation table mapping call sites to import names.
struct WasmReloc {
  std::uint32_t insn_index;
  std::string import_name;
  std::int32_t resolved_host_fn = -1;  // patched at link time
};

struct WasmImage {
  std::string filter_name;
  std::uint32_t num_locals = 0;
  std::vector<WasmInsn> code;
  std::vector<WasmReloc> relocs;

  bool IsLinked() const;
  Bytes Serialize() const;
  static StatusOr<WasmImage> Deserialize(ByteSpan bytes);
  std::uint64_t Fingerprint() const;
};

// Compiles a validated module.
StatusOr<WasmImage> CompileFilter(const FilterModule& module);

// ---- Execution ----
// Host-call dispatcher: receives the resolved host-function index and two
// argument words, returns the result word.
class WasmHost {
 public:
  virtual ~WasmHost() = default;
  virtual StatusOr<std::uint64_t> CallHost(std::int32_t host_fn,
                                           std::uint64_t arg0,
                                           std::uint64_t arg1) = 0;
};

struct WasmResult {
  std::uint64_t verdict = 0;
  std::uint64_t insns_executed = 0;
};

StatusOr<WasmResult> RunFilter(const WasmImage& image, WasmHost& host,
                               std::uint64_t step_limit = 1u << 20);

// Deterministic synthetic filter generator (sized workloads for the mesh
// experiments, mirroring bpf::GenerateProgram).
FilterModule GenerateFilter(std::size_t target_insns, std::uint64_t seed);

}  // namespace rdx::wasm
