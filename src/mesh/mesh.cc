#include "mesh/mesh.h"

namespace rdx::mesh {

namespace {
// Host-function table order must match SandboxConfig::wasm_host_fns.
enum HostFn : std::int32_t {
  kGetHeader = 0,
  kSetHeader = 1,
  kCounterIncr = 2,
  kLogEvent = 3,
};
}  // namespace

StatusOr<std::uint64_t> SidecarHost::CallHost(std::int32_t host_fn,
                                              std::uint64_t arg0,
                                              std::uint64_t arg1) {
  switch (host_fn) {
    case kGetHeader:
      return headers_[arg0 & 15];
    case kSetHeader:
      headers_[arg0 & 15] = arg1;
      return 0ull;
    case kCounterIncr:
      counter_ += arg0 == 0 ? 1 : arg0;
      return counter_;
    case kLogEvent:
      ++log_events_;
      return 0ull;
    default:
      return Unimplemented("unknown host function");
  }
}

void SidecarHost::BeginRequest(std::uint64_t request_id) {
  // Deterministic pseudo-headers derived from the request id.
  for (int i = 0; i < 16; ++i) {
    headers_[i] = request_id * 1099511628211ull + static_cast<std::uint64_t>(i);
  }
}

MeshSim::MeshSim(sim::EventQueue& events, rdma::Fabric& fabric,
                 MeshConfig config)
    : events_(events), config_(std::move(config)), rng_(config_.seed) {
  traversal_ = config_.app.TraversalOrder();
  for (std::size_t i = 0; i < config_.app.size(); ++i) {
    auto service = std::make_unique<Service>();
    service->node =
        &fabric.AddNode(config_.app.services[i].name, 32u << 20);
    service->cpu = std::make_unique<sim::CpuScheduler>(
        events_, config_.cores_per_service, config_.cost.cpu_hz);
    core::SandboxConfig sandbox_config;
    sandbox_config.cpki = config_.sandbox_cpki;
    sandbox_config.seed = config_.seed + i;
    service->sandbox = std::make_unique<core::Sandbox>(
        events_, *service->node, sandbox_config);
    Status booted = service->sandbox->CtxInit();
    (void)booted;
    services_.push_back(std::move(service));
  }
  metrics_.window_start = events_.Now();
}

std::vector<core::Sandbox*> MeshSim::sandboxes() {
  std::vector<core::Sandbox*> out;
  out.reserve(services_.size());
  for (auto& service : services_) out.push_back(service->sandbox.get());
  return out;
}

void MeshSim::StartWorkload() {
  if (running_) return;
  running_ = true;
  metrics_.window_start = events_.Now();
  ScheduleNextArrival();
}

void MeshSim::StopWorkload() { running_ = false; }

MeshMetrics MeshSim::TakeMetrics() {
  metrics_.window_end = events_.Now();
  MeshMetrics out = metrics_;
  metrics_ = MeshMetrics{};
  metrics_.window_start = events_.Now();
  return out;
}

void MeshSim::ScheduleNextArrival() {
  if (!running_) return;
  const double mean_gap_ns = 1e9 / config_.request_rate_per_s;
  const auto gap = static_cast<sim::Duration>(
      rng_.NextExponential(mean_gap_ns));
  events_.ScheduleAfter(std::max<sim::Duration>(gap, 1), [this] {
    if (!running_) return;
    ++metrics_.issued;
    auto request = std::make_shared<Request>();
    request->id = next_request_id_++;
    request->start = events_.Now();
    request->path = traversal_;
    if (buffering_) {
      buffered_.push_back(request);
      metrics_.buffered_peak =
          std::max<std::uint64_t>(metrics_.buffered_peak, buffered_.size());
    } else {
      Dispatch(request);
    }
    ScheduleNextArrival();
  });
}

void MeshSim::Dispatch(std::shared_ptr<Request> request) {
  RunHop(std::move(request));
}

void MeshSim::RunHop(std::shared_ptr<Request> request) {
  if (request->next_hop >= request->path.size() || request->failed) {
    Complete(std::move(request));
    return;
  }
  const int svc = request->path[request->next_hop++];
  Service& service = *services_[svc];

  // Execute the sidecar extensions on this hop (functionally, now) and
  // charge their retired instructions plus the base request service to
  // the node CPU (in virtual time).
  std::uint64_t ext_cycles = 0;
  service.host.BeginRequest(request->id);

  if (service.sandbox->VisibleVersion(config_.wasm_hook) != 0) {
    auto result =
        service.sandbox->ExecuteWasmHook(config_.wasm_hook, service.host);
    if (!result.ok()) {
      request->failed = true;
    } else {
      ext_cycles += config_.cost.ExtensionExecCycles(result->insns_executed);
      const std::uint64_t version =
          service.sandbox->VisibleVersion(config_.wasm_hook);
      request->min_version = std::min(request->min_version, version);
      request->max_version = std::max(request->max_version, version);
    }
  }
  if (!request->failed &&
      service.sandbox->VisibleVersion(config_.ebpf_hook) != 0) {
    Bytes packet(8);
    StoreLE(packet.data(), request->id);
    auto result = service.sandbox->ExecuteHook(config_.ebpf_hook, packet);
    if (!result.ok()) {
      request->failed = true;
    } else {
      ext_cycles += config_.cost.ExtensionExecCycles(result->insns_executed);
    }
  }
  // Trace-ring emits ride on the hop's CPU budget — this is where
  // telemetry's data-plane cost becomes virtual time.
  ext_cycles +=
      config_.cost.trace_emit_cycles * service.sandbox->DrainTraceEmits();

  service.cpu->Submit(config_.cost.mesh_request_cycles + ext_cycles,
                      [this, request = std::move(request)]() mutable {
                        RunHop(std::move(request));
                      });
}

void MeshSim::Complete(std::shared_ptr<Request> request) {
  if (request->failed) {
    ++metrics_.failed;
    return;
  }
  ++metrics_.completed;
  metrics_.latency_ns.Add(
      static_cast<std::uint64_t>(events_.Now() - request->start));
  if (request->max_version != 0 &&
      request->min_version != request->max_version) {
    ++metrics_.mixed_version;
  }
}

void MeshSim::BeginBuffering() { buffering_ = true; }

void MeshSim::ReleaseBuffered() {
  buffering_ = false;
  while (!buffered_.empty()) {
    auto request = std::move(buffered_.front());
    buffered_.pop_front();
    Dispatch(std::move(request));
  }
}

}  // namespace rdx::mesh
