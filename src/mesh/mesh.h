// Service-mesh data-plane simulation. Each microservice runs on its own
// node: a CPU (processor sharing), a sandbox with sidecar filter hooks
// (hook 0 = Wasm filter, hook 1 = eBPF program), and a Wasm host API.
// Requests arrive open-loop at the ingress and traverse the app DAG,
// charging CPU at every hop — including the cycles of whatever extension
// is attached, and including whatever the colocated agent happens to be
// compiling, which is how Fig 2c's contention arises.
//
// MeshSim also implements core::UpdateBarrier, so a Collective CodeFlow
// broadcast can buffer requests across its commit window (BBU) and the
// bench can compare "requests that observed mixed filter versions"
// with and without it.
#pragma once

#include <deque>
#include <memory>

#include "common/stats.h"
#include "core/broadcast.h"
#include "core/sandbox.h"
#include "mesh/app.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"

namespace rdx::mesh {

struct MeshConfig {
  AppSpec app;
  double request_rate_per_s = 2000;
  int cores_per_service = 4;
  std::uint64_t seed = 1;
  sim::CostModel cost;
  double sandbox_cpki = 10.0;
  // Hooks executed per hop when an image is attached.
  int wasm_hook = 0;
  int ebpf_hook = 1;
};

struct MeshMetrics {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  // Requests that saw more than one extension version along their path
  // (the update-inconsistency casualty count).
  std::uint64_t mixed_version = 0;
  std::uint64_t buffered_peak = 0;
  Histogram latency_ns;
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;

  double CompletionRatePerSec() const {
    const double secs =
        static_cast<double>(window_end - window_start) / 1e9;
    return secs > 0 ? static_cast<double>(completed) / secs : 0;
  }
};

// Wasm host API of one sidecar: header get/set against a tiny per-request
// header block, plus service-level counters.
class SidecarHost final : public wasm::WasmHost {
 public:
  StatusOr<std::uint64_t> CallHost(std::int32_t host_fn, std::uint64_t arg0,
                                   std::uint64_t arg1) override;

  void BeginRequest(std::uint64_t request_id);
  std::uint64_t counter() const { return counter_; }

 private:
  std::uint64_t headers_[16] = {};
  std::uint64_t counter_ = 0;
  std::uint64_t log_events_ = 0;
};

class MeshSim final : public core::UpdateBarrier {
 public:
  MeshSim(sim::EventQueue& events, rdma::Fabric& fabric, MeshConfig config);

  // ---- topology access (for control planes / agents) ----
  std::size_t size() const { return services_.size(); }
  core::Sandbox& sandbox(std::size_t i) { return *services_[i]->sandbox; }
  sim::CpuScheduler& cpu(std::size_t i) { return *services_[i]->cpu; }
  std::vector<core::Sandbox*> sandboxes();
  const AppSpec& app() const { return config_.app; }

  // ---- workload ----
  void StartWorkload();
  void StopWorkload();
  // Snapshot-and-reset of the measurement window.
  MeshMetrics TakeMetrics();
  const MeshMetrics& PeekMetrics() const { return metrics_; }

  // ---- core::UpdateBarrier (BBU) ----
  void BeginBuffering() override;
  void ReleaseBuffered() override;
  std::size_t BufferedCount() const override { return buffered_.size(); }

 private:
  struct Service {
    rdma::Node* node;
    std::unique_ptr<sim::CpuScheduler> cpu;
    std::unique_ptr<core::Sandbox> sandbox;
    SidecarHost host;
  };
  struct Request {
    std::uint64_t id;
    sim::SimTime start;
    std::vector<int> path;
    std::size_t next_hop = 0;
    std::uint64_t min_version = ~0ull;
    std::uint64_t max_version = 0;
    bool failed = false;
  };

  void ScheduleNextArrival();
  void Dispatch(std::shared_ptr<Request> request);
  void RunHop(std::shared_ptr<Request> request);
  void Complete(std::shared_ptr<Request> request);

  sim::EventQueue& events_;
  MeshConfig config_;
  Rng rng_;
  std::vector<int> traversal_;
  std::vector<std::unique_ptr<Service>> services_;
  MeshMetrics metrics_;
  bool running_ = false;
  bool buffering_ = false;
  std::deque<std::shared_ptr<Request>> buffered_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace rdx::mesh
