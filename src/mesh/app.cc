#include "mesh/app.h"

#include <algorithm>

#include "common/rng.h"

namespace rdx::mesh {

std::vector<std::vector<std::size_t>> AppSpec::DependencyWaves() const {
  // Longest-path layering: a service's wave index is 1 + max of callers.
  // Rolling out waves in *reverse* (deepest first) updates callees before
  // callers.
  std::vector<int> depth(services.size(), 0);
  // Kahn-style relaxation; the DAG is small, so a fixed-point loop is fine.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < services.size(); ++i) {
      for (int callee : services[i].downstream) {
        if (depth[callee] < depth[i] + 1) {
          depth[callee] = depth[i] + 1;
          changed = true;
        }
      }
    }
  }
  const int max_depth =
      *std::max_element(depth.begin(), depth.end());
  std::vector<std::vector<std::size_t>> waves(max_depth + 1);
  for (std::size_t i = 0; i < services.size(); ++i) {
    // Deepest services (leaves) first.
    waves[max_depth - depth[i]].push_back(i);
  }
  return waves;
}

std::vector<int> AppSpec::TraversalOrder() const {
  std::vector<int> order;
  std::vector<bool> visited(services.size(), false);
  std::vector<int> stack = {ingress};
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    if (visited[s]) continue;
    visited[s] = true;
    order.push_back(s);
    const auto& ds = services[s].downstream;
    for (auto it = ds.rbegin(); it != ds.rend(); ++it) {
      if (!visited[*it]) stack.push_back(*it);
    }
  }
  return order;
}

AppSpec AppSpec::Generate(std::string name, int n, std::uint64_t seed) {
  Rng rng(seed);
  AppSpec app;
  app.name = std::move(name);
  app.services.resize(n);
  for (int i = 0; i < n; ++i) {
    app.services[i].name = app.name + "-svc" + std::to_string(i);
  }
  // Layered construction: service i may call services in (i, i + span],
  // giving chains with moderate fan-out (1-3 downstreams), matching the
  // microservice dependency shapes of [50].
  for (int i = 0; i < n - 1; ++i) {
    const int fan = 1 + static_cast<int>(rng.NextBounded(3));
    for (int f = 0; f < fan; ++f) {
      const int span = std::min(n - 1 - i, 4);
      if (span <= 0) break;
      const int callee = i + 1 + static_cast<int>(rng.NextBounded(span));
      auto& ds = app.services[i].downstream;
      if (std::find(ds.begin(), ds.end(), callee) == ds.end()) {
        ds.push_back(callee);
      }
    }
  }
  // Guarantee connectivity: every service (except ingress) has a caller.
  std::vector<bool> called(n, false);
  called[0] = true;
  for (int i = 0; i < n; ++i) {
    for (int callee : app.services[i].downstream) called[callee] = true;
  }
  for (int i = 1; i < n; ++i) {
    if (!called[i]) app.services[i - 1].downstream.push_back(i);
  }
  return app;
}

std::vector<AppSpec> AppSpec::PaperApps() {
  return {AppSpec::Generate("app1", 4, 101),
          AppSpec::Generate("app2", 11, 102),
          AppSpec::Generate("app3", 17, 103),
          AppSpec::Generate("app4", 33, 104)};
}

}  // namespace rdx::mesh
