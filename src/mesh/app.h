// Microservice application topologies. The paper's Fig 2b evaluates four
// apps with 4, 11, 17 and 33 microservices; AppSpec::Generate builds
// layered DAGs of those sizes (fan-outs and chain depths in the ranges
// the Alibaba trace analysis [50] reports).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdx::mesh {

struct ServiceSpec {
  std::string name;
  std::vector<int> downstream;  // indices of callee services
};

struct AppSpec {
  std::string name;
  std::vector<ServiceSpec> services;
  int ingress = 0;

  std::size_t size() const { return services.size(); }

  // Topological layers starting at the ingress; used by the agent
  // baseline to roll out in dependency order (callees before callers),
  // and as the release order for BBU.
  std::vector<std::vector<std::size_t>> DependencyWaves() const;

  // Depth-first traversal order a request takes from the ingress.
  std::vector<int> TraversalOrder() const;

  // Layered random DAG with `n` services.
  static AppSpec Generate(std::string name, int n, std::uint64_t seed);

  // The paper's four apps.
  static std::vector<AppSpec> PaperApps();
};

}  // namespace rdx::mesh
