// The agent-based baseline (Fig 1a): every node runs a local agent
// daemon that receives extension specs from a central controller over the
// ordinary network, then verifies, JIT-compiles, and attaches them using
// the node's *own* CPU — contending with the data path. This is the
// architecture RDX replaces, and it must exist in full for every
// comparison figure (2a, 2b, 2c, 4a, 4b, the Redis and mesh claims).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bpf/verifier.h"
#include "core/sandbox.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/network.h"
#include "telemetry/span.h"

namespace rdx::agent {

struct AgentConfig {
  sim::CostModel cost;
  // Interval of the agent's periodic XState polling (map walks for
  // telemetry export); 0 disables. Each poll costs
  // cost.agent_state_poll_cycles on the node CPU.
  sim::Duration state_poll_interval = 0;
};

// Phase timings of one agent-side load, for the Fig 4b breakdown. The
// fields are populated from telemetry spans ("agent:queue" etc.) so the
// legacy callback shape keeps working while the merged timeline gets the
// same phases.
struct AgentTrace {
  sim::Duration queue = 0;   // daemon wakeup + config parse
  sim::Duration verify = 0;
  sim::Duration jit = 0;
  sim::Duration attach = 0;
  sim::Duration total = 0;
};

// Per-node agent daemon. Shares the node's CpuScheduler with the
// workload; every pipeline stage is a cycle demand submitted to it.
class NodeAgent {
 public:
  NodeAgent(sim::EventQueue& events, core::Sandbox& sandbox,
            sim::CpuScheduler& cpu, AgentConfig config = {});
  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  // Local injection pipeline: verify -> JIT -> attach. The real verifier
  // and JIT run (functional correctness); their virtual-time cost is
  // charged to this node's CPU.
  void LoadExtension(const bpf::Program& prog, int hook,
                     std::function<void(StatusOr<AgentTrace>)> done);
  void LoadWasmFilter(const wasm::FilterModule& module, int hook,
                      std::function<void(StatusOr<AgentTrace>)> done);

  // Begins periodic XState polling (the steady-state agent "tax").
  void StartStatePolling();
  void StopStatePolling();

  core::Sandbox& sandbox() { return sandbox_; }
  sim::CpuScheduler& cpu() { return cpu_; }
  std::uint64_t loads_completed() const { return loads_completed_; }

  // Agent pipeline stages record telemetry spans (pid = node id, tid =
  // hook). By default they land in an agent-owned tracer; point this at a
  // shared one to merge agent loads into the global timeline.
  void SetTracer(telemetry::Tracer* tracer) { tracer_ = tracer; }
  telemetry::Tracer& tracer() { return *tracer_; }

 private:
  // Writes the image + desc into node memory with the local CPU and
  // swings the hook slot (coherent: visible immediately).
  Status AttachImage(Bytes image_bytes, int hook);

  sim::EventQueue& events_;
  core::Sandbox& sandbox_;
  sim::CpuScheduler& cpu_;
  AgentConfig config_;
  std::optional<telemetry::Tracer> owned_tracer_;
  telemetry::Tracer* tracer_ = nullptr;
  bool polling_ = false;
  std::uint64_t loads_completed_ = 0;
};

// Central controller: pushes extension specs to agents over the control
// network (kernel TCP/gRPC path), with the propagation jitter real
// config-distribution systems exhibit.
struct ControllerConfig {
  sim::LinkModel link = sim::AgentControlLink();
  // Watch-notification propagation: base + exponential jitter, matching
  // the 10s-to-100s-of-ms config propagation of xDS/K8s deployments.
  sim::Duration push_base_delay = sim::Millis(5);
  sim::Duration push_jitter_mean = sim::Millis(20);
  std::uint64_t seed = 7;
};

struct RolloutResult {
  // Interval between update initiation and the last node serving the new
  // version — the paper's "update inconsistency time" (Fig 2b).
  sim::Duration inconsistency_window = 0;
  sim::Duration total = 0;
  std::size_t nodes = 0;
};

class AgentController {
 public:
  explicit AgentController(sim::EventQueue& events,
                           ControllerConfig config = {});

  void RegisterAgent(NodeAgent* agent) { agents_.push_back(agent); }
  std::size_t agent_count() const { return agents_.size(); }

  // Pushes one extension to one agent (config marshal + network + agent
  // pipeline).
  void PushExtension(std::size_t agent_index, const bpf::Program& prog,
                     int hook,
                     std::function<void(StatusOr<AgentTrace>)> done);
  void PushWasmFilter(std::size_t agent_index,
                      const wasm::FilterModule& module, int hook,
                      std::function<void(StatusOr<AgentTrace>)> done);

  // Eventual-consistency rollout to every agent at once (no ordering
  // guarantees — the Fig 2b baseline). `waves` optionally groups agents
  // into dependency waves rolled out sequentially (inter-service DAG
  // constraints); empty = one unordered wave.
  void Rollout(const bpf::Program& prog, int hook,
               std::vector<std::vector<std::size_t>> waves,
               std::function<void(StatusOr<RolloutResult>)> done);
  void RolloutWasm(const wasm::FilterModule& module, int hook,
                   std::vector<std::vector<std::size_t>> waves,
                   std::function<void(StatusOr<RolloutResult>)> done);

 private:
  sim::Duration SamplePushDelay(std::size_t config_bytes);
  template <typename Spec, typename PushFn>
  void RolloutImpl(const Spec& spec, int hook,
                   std::vector<std::vector<std::size_t>> waves, PushFn push,
                   std::function<void(StatusOr<RolloutResult>)> done);

  sim::EventQueue& events_;
  ControllerConfig config_;
  Rng rng_;
  std::vector<NodeAgent*> agents_;
};

}  // namespace rdx::agent
