#include "agent/agent.h"

#include "bpf/jit.h"
#include "core/layout.h"

namespace rdx::agent {

NodeAgent::NodeAgent(sim::EventQueue& events, core::Sandbox& sandbox,
                     sim::CpuScheduler& cpu, AgentConfig config)
    : events_(events), sandbox_(sandbox), cpu_(cpu), config_(config) {
  owned_tracer_.emplace(events_);
  tracer_ = &*owned_tracer_;
}

Status NodeAgent::AttachImage(Bytes image_bytes, int hook) {
  // Local (CPU-side) attach: allocate from this node's scratchpad brk,
  // write image + desc, swing the hook slot. The local CPU is coherent,
  // so the new version is visible immediately.
  auto& mem = sandbox_.node().memory();
  const core::ControlBlockView& view = sandbox_.view();
  RDX_ASSIGN_OR_RETURN(std::uint64_t brk,
                       mem.ReadU64(view.cb_addr + core::kCbScratchBrk));
  const std::uint64_t image_len = image_bytes.size();
  const std::uint64_t aligned = (image_len + 63) & ~63ull;
  const std::uint64_t region = aligned + core::kImageDescBytes;
  if (brk + region > view.scratch_addr + view.scratch_size) {
    return ResourceExhausted("sandbox scratchpad exhausted");
  }
  RDX_RETURN_IF_ERROR(
      mem.WriteU64(view.cb_addr + core::kCbScratchBrk, brk + region));

  const std::uint64_t image_addr = brk;
  const std::uint64_t desc_addr = brk + aligned;
  RDX_RETURN_IF_ERROR(mem.Write(image_addr, image_bytes));
  RDX_RETURN_IF_ERROR(
      mem.WriteU64(desc_addr + core::kDescImageAddr, image_addr));
  RDX_RETURN_IF_ERROR(mem.WriteU64(desc_addr + core::kDescImageLen,
                                   image_len));
  // Versions count update *generations* of a hook, so they stay
  // comparable across nodes (needed for mixed-version detection).
  RDX_RETURN_IF_ERROR(mem.WriteU64(desc_addr + core::kDescVersion,
                                   sandbox_.CommittedVersion(hook) + 1));
  RDX_RETURN_IF_ERROR(mem.WriteU64(desc_addr + core::kDescRefcount, 1));
  RDX_RETURN_IF_ERROR(mem.WriteU64(
      view.hook_table_addr + static_cast<std::uint64_t>(hook) * 8,
      desc_addr));
  // The local CPU is coherent with its own stores: immediate visibility.
  sandbox_.RefreshHookNow(hook);
  return OkStatus();
}

void NodeAgent::LoadExtension(
    const bpf::Program& prog, int hook,
    std::function<void(StatusOr<AgentTrace>)> done) {
  auto trace = std::make_shared<AgentTrace>();
  const std::uint32_t pid = static_cast<std::uint32_t>(sandbox_.node().id());
  const std::uint32_t tid = static_cast<std::uint32_t>(hook);
  const auto load_id = tracer_->BeginSpan("agent:load", pid, tid);
  const auto queue_id = tracer_->BeginSpan("agent:queue", pid, tid);

  // Daemon wakeup + config parse.
  cpu_.Submit(config_.cost.agent_dispatch_cycles, [this, prog, hook, trace,
                                                   pid, tid, load_id, queue_id,
                                                   done = std::move(done)]() mutable {
    tracer_->EndSpan(queue_id);
    trace->queue = tracer_->SpanDuration(queue_id);
    const auto verify_id = tracer_->BeginSpan("agent:verify", pid, tid);
    // Verification: real work, charged to this node's CPU.
    const Status verdict = bpf::Verifier().Verify(prog);
    cpu_.Submit(config_.cost.VerifyCycles(prog.size()), [this, prog, hook,
                                                         trace, pid, tid,
                                                         load_id, verify_id,
                                                         verdict,
                                                         done = std::move(
                                                             done)]() mutable {
      tracer_->EndSpan(verify_id);
      trace->verify = tracer_->SpanDuration(verify_id);
      if (!verdict.ok()) {
        tracer_->EndSpan(load_id);
        done(verdict);
        return;
      }
      const auto jit_id = tracer_->BeginSpan("agent:jit", pid, tid);
      auto image = bpf::JitCompiler().Compile(prog);
      cpu_.Submit(config_.cost.JitCycles(prog.size()), [this, prog, hook,
                                                        trace, pid, tid,
                                                        load_id, jit_id,
                                                        image = std::move(
                                                            image),
                                                        done = std::move(
                                                            done)]() mutable {
        tracer_->EndSpan(jit_id);
        trace->jit = tracer_->SpanDuration(jit_id);
        if (!image.ok()) {
          tracer_->EndSpan(load_id);
          done(image.status());
          return;
        }
        const auto attach_id = tracer_->BeginSpan("agent:attach", pid, tid);
        cpu_.Submit(config_.cost.attach_fixed_cycles, [this, prog, hook,
                                                       trace, load_id,
                                                       attach_id,
                                                       image = std::move(
                                                           image),
                                                       done = std::move(
                                                           done)]() mutable {
          // Link locally: the agent has full local context, so it deploys
          // each map in its own sandbox and patches addresses directly.
          bpf::JitImage linked = std::move(image).value();
          auto& mem = sandbox_.node().memory();
          for (const bpf::Relocation& reloc : linked.relocs) {
            if (reloc.kind != bpf::RelocKind::kMapAddress) continue;
            const bpf::MapSpec& spec = linked.maps[reloc.symbol];
            // Reuse an already-deployed XState of the same name if the
            // sandbox has one registered.
            std::uint64_t addr = 0;
            for (const auto& [a, s] : sandbox_.runtime().maps) {
              if (s.name == spec.name) {
                addr = a;
                break;
              }
            }
            if (addr == 0) {
              const std::uint64_t bytes = bpf::MapRequiredBytes(spec);
              auto alloc = mem.Allocate(bytes, 64);
              if (!alloc.ok()) {
                tracer_->EndSpan(attach_id);
                tracer_->EndSpan(load_id);
                done(alloc.status());
                return;
              }
              addr = alloc.value();
              bpf::MapView map_view(mem.SpanForCpu(addr, bytes));
              Status init = map_view.Init(spec);
              if (!init.ok()) {
                tracer_->EndSpan(attach_id);
                tracer_->EndSpan(load_id);
                done(init);
                return;
              }
              bpf::MapSpec registered = spec;
              sandbox_.runtime().maps.emplace(addr, registered);
            }
            linked.code[reloc.index].imm64 = addr;
          }
          Status attached = AttachImage(linked.Serialize(), hook);
          if (!attached.ok()) {
            tracer_->EndSpan(attach_id);
            tracer_->EndSpan(load_id);
            done(attached);
            return;
          }
          tracer_->EndSpan(attach_id);
          tracer_->EndSpan(load_id);
          trace->attach = tracer_->SpanDuration(attach_id);
          trace->total = tracer_->SpanDuration(load_id);
          ++loads_completed_;
          done(*trace);
        });
      });
    });
  });
}

void NodeAgent::LoadWasmFilter(
    const wasm::FilterModule& module, int hook,
    std::function<void(StatusOr<AgentTrace>)> done) {
  auto trace = std::make_shared<AgentTrace>();
  const std::uint32_t pid = static_cast<std::uint32_t>(sandbox_.node().id());
  const std::uint32_t tid = static_cast<std::uint32_t>(hook);
  const auto load_id = tracer_->BeginSpan("agent:load", pid, tid);
  const auto queue_id = tracer_->BeginSpan("agent:queue", pid, tid);
  cpu_.Submit(config_.cost.agent_dispatch_cycles, [this, module, hook, trace,
                                                   pid, tid, load_id, queue_id,
                                                   done = std::move(done)]() mutable {
    tracer_->EndSpan(queue_id);
    trace->queue = tracer_->SpanDuration(queue_id);
    const auto verify_id = tracer_->BeginSpan("agent:verify", pid, tid);
    const Status verdict = wasm::ValidateFilter(module);
    cpu_.Submit(config_.cost.WasmValidateCycles(module.size()), [this,
                                                                 module, hook,
                                                                 trace, pid,
                                                                 tid, load_id,
                                                                 verify_id,
                                                                 verdict,
                                                                 done = std::move(
                                                                     done)]() mutable {
      tracer_->EndSpan(verify_id);
      trace->verify = tracer_->SpanDuration(verify_id);
      if (!verdict.ok()) {
        tracer_->EndSpan(load_id);
        done(verdict);
        return;
      }
      const auto jit_id = tracer_->BeginSpan("agent:jit", pid, tid);
      auto image = wasm::CompileFilter(module);
      cpu_.Submit(config_.cost.WasmCompileCycles(module.size()), [this,
                                                                  hook, trace,
                                                                  pid, tid,
                                                                  load_id,
                                                                  jit_id,
                                                                  image = std::move(
                                                                      image),
                                                                  done = std::move(
                                                                      done)]() mutable {
        tracer_->EndSpan(jit_id);
        trace->jit = tracer_->SpanDuration(jit_id);
        if (!image.ok()) {
          tracer_->EndSpan(load_id);
          done(image.status());
          return;
        }
        const auto attach_id = tracer_->BeginSpan("agent:attach", pid, tid);
        cpu_.Submit(config_.cost.attach_fixed_cycles, [this, hook, trace,
                                                       load_id, attach_id,
                                                       image = std::move(
                                                           image),
                                                       done = std::move(
                                                           done)]() mutable {
          // Link imports against the local host-function table.
          wasm::WasmImage linked = std::move(image).value();
          for (wasm::WasmReloc& reloc : linked.relocs) {
            auto symbol = core::SymbolHashName("host:",
                                               reloc.import_name.c_str());
            // The agent resolves against its own sandbox's symbols via
            // the same exported table RDX reads remotely.
            bool found = false;
            // Host table order mirrors SandboxConfig::wasm_host_fns.
            const auto& fns =
                std::vector<std::string>{"get_header", "set_header",
                                         "counter_incr", "log_event"};
            for (std::size_t i = 0; i < fns.size(); ++i) {
              if (fns[i] == reloc.import_name) {
                reloc.resolved_host_fn = static_cast<std::int32_t>(i);
                linked.code[reloc.insn_index].imm =
                    static_cast<std::int64_t>(i);
                found = true;
                break;
              }
            }
            (void)symbol;
            if (!found) {
              tracer_->EndSpan(attach_id);
              tracer_->EndSpan(load_id);
              done(FailedPrecondition("unknown wasm import: " +
                                      reloc.import_name));
              return;
            }
          }
          Status attached = AttachImage(linked.Serialize(), hook);
          if (!attached.ok()) {
            tracer_->EndSpan(attach_id);
            tracer_->EndSpan(load_id);
            done(attached);
            return;
          }
          tracer_->EndSpan(attach_id);
          tracer_->EndSpan(load_id);
          trace->attach = tracer_->SpanDuration(attach_id);
          trace->total = tracer_->SpanDuration(load_id);
          ++loads_completed_;
          done(*trace);
        });
      });
    });
  });
}

void NodeAgent::StartStatePolling() {
  if (polling_ || config_.state_poll_interval <= 0) return;
  polling_ = true;
  // Weak self-reference: the pending event holds the strong ref, so the
  // poll loop frees itself once polling stops (no shared_ptr cycle).
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, weak] {
    auto self = weak.lock();
    if (!polling_ || !self) return;
    cpu_.Submit(config_.cost.agent_state_poll_cycles, [] {});
    events_.ScheduleAfter(config_.state_poll_interval, [self] { (*self)(); });
  };
  events_.ScheduleAfter(config_.state_poll_interval, [tick] { (*tick)(); });
}

void NodeAgent::StopStatePolling() { polling_ = false; }

AgentController::AgentController(sim::EventQueue& events,
                                 ControllerConfig config)
    : events_(events), config_(config), rng_(config.seed) {}

sim::Duration AgentController::SamplePushDelay(std::size_t config_bytes) {
  // One loaded leg: the config payload rides the push; the ack leg is
  // subsumed in push_base_delay (sim/network.h charging convention).
  const sim::Duration wire = config_.link.OneWay(config_bytes);
  const sim::Duration jitter = static_cast<sim::Duration>(
      rng_.NextExponential(static_cast<double>(config_.push_jitter_mean)));
  return config_.push_base_delay + wire + jitter;
}

void AgentController::PushExtension(
    std::size_t agent_index, const bpf::Program& prog, int hook,
    std::function<void(StatusOr<AgentTrace>)> done) {
  NodeAgent* node_agent = agents_.at(agent_index);
  const sim::Duration delay = SamplePushDelay(prog.size() * 8 + 256);
  events_.ScheduleAfter(delay, [node_agent, prog, hook,
                                done = std::move(done)]() mutable {
    node_agent->LoadExtension(prog, hook, std::move(done));
  });
}

void AgentController::PushWasmFilter(
    std::size_t agent_index, const wasm::FilterModule& module, int hook,
    std::function<void(StatusOr<AgentTrace>)> done) {
  NodeAgent* node_agent = agents_.at(agent_index);
  const sim::Duration delay = SamplePushDelay(module.size() * 9 + 256);
  events_.ScheduleAfter(delay, [node_agent, module, hook,
                                done = std::move(done)]() mutable {
    node_agent->LoadWasmFilter(module, hook, std::move(done));
  });
}

template <typename Spec, typename PushFn>
void AgentController::RolloutImpl(
    const Spec& spec, int hook, std::vector<std::vector<std::size_t>> waves,
    PushFn push, std::function<void(StatusOr<RolloutResult>)> done) {
  if (waves.empty()) {
    waves.emplace_back();
    for (std::size_t i = 0; i < agents_.size(); ++i) waves[0].push_back(i);
  }
  struct State {
    sim::SimTime t0;
    sim::SimTime first_commit = 0;
    sim::SimTime last_commit = 0;
    std::size_t nodes = 0;
    Status error;
  };
  auto state = std::make_shared<State>();
  state->t0 = events_.Now();

  auto run_wave = std::make_shared<std::function<void(std::size_t)>>();
  auto waves_shared =
      std::make_shared<std::vector<std::vector<std::size_t>>>(
          std::move(waves));
  std::weak_ptr<std::function<void(std::size_t)>> weak = run_wave;
  *run_wave = [this, state, weak, waves_shared, spec, hook, push,
               done = std::move(done)](std::size_t w) mutable {
    auto self = weak.lock();
    if (!self) return;
    if (w >= waves_shared->size() || !state->error.ok()) {
      RolloutResult result;
      result.inconsistency_window = state->last_commit - state->t0;
      result.total = events_.Now() - state->t0;
      result.nodes = state->nodes;
      if (!state->error.ok()) {
        done(state->error);
      } else {
        done(result);
      }
      return;
    }
    const std::vector<std::size_t>& wave = (*waves_shared)[w];
    auto remaining = std::make_shared<std::size_t>(wave.size());
    if (wave.empty()) {
      (*self)(w + 1);
      return;
    }
    for (std::size_t idx : wave) {
      push(idx, spec, hook,
           [this, state, remaining, self, w](StatusOr<AgentTrace> r) {
             if (!r.ok() && state->error.ok()) state->error = r.status();
             if (r.ok()) {
               const sim::SimTime now = events_.Now();
               if (state->first_commit == 0) state->first_commit = now;
               state->last_commit = std::max(state->last_commit, now);
               ++state->nodes;
             }
             if (--*remaining == 0) (*self)(w + 1);
           });
    }
  };
  (*run_wave)(0);
}

void AgentController::Rollout(
    const bpf::Program& prog, int hook,
    std::vector<std::vector<std::size_t>> waves,
    std::function<void(StatusOr<RolloutResult>)> done) {
  RolloutImpl(
      prog, hook, std::move(waves),
      [this](std::size_t idx, const bpf::Program& p, int h,
             std::function<void(StatusOr<AgentTrace>)> cb) {
        PushExtension(idx, p, h, std::move(cb));
      },
      std::move(done));
}

void AgentController::RolloutWasm(
    const wasm::FilterModule& module, int hook,
    std::vector<std::vector<std::size_t>> waves,
    std::function<void(StatusOr<RolloutResult>)> done) {
  RolloutImpl(
      module, hook, std::move(waves),
      [this](std::size_t idx, const wasm::FilterModule& m, int h,
             std::function<void(StatusOr<AgentTrace>)> cb) {
        PushWasmFilter(idx, m, h, std::move(cb));
      },
      std::move(done));
}

}  // namespace rdx::agent
