// Link latency models for the two transports in the system:
//  - the RDMA fabric (RoCE): ~1.5 us one-way + line-rate serialization,
//    used for verbs operations issued by the RDX control plane; and
//  - the agent control channel (gRPC/TCP over the same wire): tens of us
//    of stack latency, used by the baseline controller -> agent pushes.
// Constants are calibrated to a 100 Gbps rack fabric (see cost_model.h).
//
// Serialization-charging convention (audited, keep it this way): payload
// bytes are charged exactly once, on the leg that actually carries them.
// WRITE/SEND serialize on the *request* leg; READ responses and atomic
// return values serialize on the *response* leg (fabric.cc charges
// OneWay(ResponseBytes(wr)) for the ACK/response). RoundTrip(payload)
// therefore means "one loaded leg + one empty leg" and must never be
// applied to an op whose request AND response both carry payload (no such
// verb exists in this model). Callers that only move payload one way --
// the agent config push, the injector's degrade math -- use OneWay.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace rdx::sim {

struct LinkModel {
  // Fixed one-way latency (propagation + NIC processing).
  Duration base_latency = Micros(2);
  // Serialization rate in bytes per nanosecond (12.5 == 100 Gbps).
  double bytes_per_ns = 12.5;
  // Posting cost, paid on the requester before anything hits the wire:
  // one MMIO doorbell ring per post (PCIe posted write reaching the NIC),
  // then one DMA descriptor fetch per WQE. A chained post rings the
  // doorbell once for the whole linked list, so the doorbell cost is
  // amortized across the chain while each WQE still pays its fetch.
  Duration doorbell_latency = Nanos(400);
  Duration wqe_fetch_latency = Nanos(40);

  // -- Small-op fast path ---------------------------------------------
  // Inline WQE payloads (the IBV_SEND_INLINE analog): a WRITE/SEND whose
  // payload fits in the WQE rides the descriptor fetch itself -- no
  // separate payload DMA read from host memory and no source-MR lookup.
  // 220 B matches the common mlx5 cap for a 256 B WQE (4 x 64 B segments
  // minus ctrl + remote-address segments).
  std::size_t max_inline_data = 220;
  // Non-inline WRITE/SEND payloads cost one extra PCIe DMA read from the
  // source buffer before the first byte can hit the wire (~250 ns: one
  // PCIe round trip + DMA engine turnaround at typical rack load).
  Duration payload_fetch_latency = Nanos(250);

  // MR translation (MTT) lookup, paid per WQE that references a memory
  // region. A hit in the NIC's on-die translation cache is ~15 ns (SRAM
  // lookup folded into WQE processing); a miss walks the host-resident
  // MTT over PCIe, ~450 ns (same order as the payload DMA fetch).
  // Capacity is per-QP cached translation entries; 0 disables the cache
  // and makes every lookup cold (the pre-fast-path behavior, kept as the
  // bench baseline configuration).
  Duration mtt_hit_latency = Nanos(15);
  Duration mtt_miss_latency = Nanos(450);
  std::size_t mtt_cache_entries = 32;

  // Writing a CQE back to the host completion queue costs one posted DMA
  // write (~120 ns). Unsignaled WRs skip it entirely -- that is the whole
  // point of selective signaling -- so a chain signaling every Kth WR
  // amortizes this to 120/K ns per op.
  Duration cqe_write_latency = Nanos(120);

  Duration OneWay(std::size_t payload_bytes) const {
    return base_latency + static_cast<Duration>(
                              static_cast<double>(payload_bytes) /
                              bytes_per_ns);
  }

  Duration RoundTrip(std::size_t payload_bytes) const {
    return OneWay(payload_bytes) + base_latency;
  }
};

// Rack-local RDMA (RoCE) hop: used for one-sided verbs.
inline LinkModel RdmaLink() {
  return LinkModel{.base_latency = Micros(1) + Nanos(500),
                   .bytes_per_ns = 12.5};
}

// Kernel TCP/gRPC hop: used by the agent baseline's config push.
inline LinkModel AgentControlLink() {
  return LinkModel{.base_latency = Micros(50), .bytes_per_ns = 3.0};
}

}  // namespace rdx::sim
