// Link latency models for the two transports in the system:
//  - the RDMA fabric (RoCE): ~1.5 us one-way + line-rate serialization,
//    used for verbs operations issued by the RDX control plane; and
//  - the agent control channel (gRPC/TCP over the same wire): tens of us
//    of stack latency, used by the baseline controller -> agent pushes.
// Constants are calibrated to a 100 Gbps rack fabric (see cost_model.h).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace rdx::sim {

struct LinkModel {
  // Fixed one-way latency (propagation + NIC processing).
  Duration base_latency = Micros(2);
  // Serialization rate in bytes per nanosecond (12.5 == 100 Gbps).
  double bytes_per_ns = 12.5;
  // Posting cost, paid on the requester before anything hits the wire:
  // one MMIO doorbell ring per post (PCIe posted write reaching the NIC),
  // then one DMA descriptor fetch per WQE. A chained post rings the
  // doorbell once for the whole linked list, so the doorbell cost is
  // amortized across the chain while each WQE still pays its fetch.
  Duration doorbell_latency = Nanos(400);
  Duration wqe_fetch_latency = Nanos(40);

  Duration OneWay(std::size_t payload_bytes) const {
    return base_latency + static_cast<Duration>(
                              static_cast<double>(payload_bytes) /
                              bytes_per_ns);
  }

  Duration RoundTrip(std::size_t payload_bytes) const {
    return OneWay(payload_bytes) + base_latency;
  }
};

// Rack-local RDMA (RoCE) hop: used for one-sided verbs.
inline LinkModel RdmaLink() {
  return LinkModel{.base_latency = Micros(1) + Nanos(500),
                   .bytes_per_ns = 12.5};
}

// Kernel TCP/gRPC hop: used by the agent baseline's config push.
inline LinkModel AgentControlLink() {
  return LinkModel{.base_latency = Micros(50), .bytes_per_ns = 3.0};
}

}  // namespace rdx::sim
