#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace rdx::sim {

EventQueue::EventId EventQueue::ScheduleAt(SimTime at, Handler fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

EventQueue::EventId EventQueue::ScheduleAfter(Duration delay, Handler fn) {
  return ScheduleAt(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

void EventQueue::Cancel(EventId id) {
  // Tombstone: the event stays in the heap but is skipped when popped.
  cancelled_.push_back(id);
  if (live_events_ > 0) --live_events_;
}

// Pops tombstoned events off the top of the heap so that queue_.top() is
// always a live event (or the heap is empty).
void EventQueue::DiscardCancelledTop() {
  while (!queue_.empty()) {
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), queue_.top().id);
    if (it == cancelled_.end()) return;
    *it = cancelled_.back();
    cancelled_.pop_back();
    queue_.pop();
  }
}

bool EventQueue::PopAndRun() {
  DiscardCancelledTop();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.at >= now_ && "event scheduled in the past");
  now_ = ev.at;
  --live_events_;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::Run() {
  std::uint64_t n = 0;
  while (PopAndRun()) ++n;
  return n;
}

std::uint64_t EventQueue::RunUntil(SimTime until) {
  std::uint64_t n = 0;
  for (;;) {
    DiscardCancelledTop();
    if (queue_.empty() || queue_.top().at > until) break;
    if (PopAndRun()) ++n;
  }
  now_ = std::max(now_, until);
  return n;
}

bool EventQueue::Step() { return PopAndRun(); }

}  // namespace rdx::sim
