// Discrete-event engine. Single-threaded: events fire in (time, insertion
// order) sequence, and handlers may schedule further events. This is the
// backbone every other simulated component (RNIC DMA engine, CPU
// scheduler, workload generators) hangs off.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace rdx::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;
  using EventId = std::uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to Now()).
  // Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime at, Handler fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(Duration delay, Handler fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is
  // a no-op. O(1): the event is tombstoned, not removed.
  void Cancel(EventId id);

  // Runs events until the queue drains. Returns the number of events run.
  std::uint64_t Run();

  // Runs events with fire time <= `until`, then sets Now() to `until` if
  // the simulation reached it without running dry first.
  std::uint64_t RunUntil(SimTime until);

  // Runs at most one event. Returns false if the queue was empty.
  bool Step();

  bool Empty() const { return live_events_ == 0; }
  std::size_t PendingEvents() const { return live_events_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    Handler fn;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool PopAndRun();
  void DiscardCancelledTop();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;  // sorted insertion not needed; small
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
};

}  // namespace rdx::sim
