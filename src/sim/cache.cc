#include "sim/cache.h"

#include <algorithm>
#include <cmath>

namespace rdx::sim {

Duration CacheModel::ExpectedDiscoveryDelay(double cpki) const {
  if (cpki <= 0.0) {
    // No cache pressure: the stale line is effectively never evicted; cap
    // the model at ten milliseconds to keep the simulation finite.
    return Millis(10);
  }
  const double miss_rate_hz = cpki / 1000.0 * config_.insn_rate_hz;
  const double mean_seconds =
      static_cast<double>(config_.lines) / miss_rate_hz;
  const double mean_ns = mean_seconds * 1e9;
  return std::min<Duration>(static_cast<Duration>(mean_ns), Millis(10));
}

Duration CacheModel::SampleDiscoveryDelay(double cpki, Rng& rng) const {
  ++discovery_samples_;
  const Duration mean = ExpectedDiscoveryDelay(cpki);
  const double sample = rng.NextExponential(static_cast<double>(mean));
  return std::min<Duration>(static_cast<Duration>(sample), Millis(10));
}

}  // namespace rdx::sim
