// Calibrated cost constants for every modeled operation. This is the one
// file to read when questioning a number a benchmark prints: each constant
// records what it models and which figure of the paper it was calibrated
// against. Functional work (the verifier, the JIT, the interpreters) is
// genuinely executed; these constants only set how much *virtual time* is
// charged for it on the simulated 3.4 GHz Xeon E5-2643 testbed.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.h"

namespace rdx::sim {

struct CostModel {
  // ---- Host CPU (testbed: 24-core Xeon E5-2643 @ 3.40 GHz) -------------
  double cpu_hz = 3.4e9;
  int cores_per_node = 24;

  // ---- Agent-baseline injection path (Fig 2a / Fig 4a "Agent") ---------
  // The eBPF verifier's abstract interpretation is superlinear in program
  // size (state pruning over a growing CFG): modeled as c * n * log2(n)
  // with c ~= 80 ns. Yields ~1.1 ms at 1.3K insns and ~125 ms at 95K,
  // matching the ms-scale growth of Fig 2a / the left bars of Fig 4a.
  double verify_ns_per_insn_log = 80.0;
  // Local JIT compilation, linear at ~0.3 us/insn.
  std::uint64_t jit_cycles_per_insn = 1020;
  // Attach/load syscall path + sandbox bookkeeping, fixed, ~0.6 ms.
  std::uint64_t attach_fixed_cycles = 2'040'000;
  // Agent daemon wakeup + config parse on each push, ~0.1 ms.
  std::uint64_t agent_dispatch_cycles = 340'000;

  // ---- Wasm filter path (same structure, different constants) ----------
  // Wasm validation + instantiation is heavier per unit of code than the
  // eBPF verifier (type-checking the stack machine): ~2 us/insn.
  std::uint64_t wasm_validate_cycles_per_insn = 6800;
  std::uint64_t wasm_compile_cycles_per_insn = 2380;

  // ---- RDX agentless injection path (Fig 4a "RDX") ---------------------
  // Control-plane link step: symbol-table lookup + placeholder patching,
  // per relocation entry (runs on the *control-plane* CPU, off the node).
  std::uint64_t link_cycles_per_reloc = 500;
  // Fixed control-plane dispatch (CodeFlow bookkeeping, WR construction).
  // Dominates RDX's small-program cost; ~35 us total with the transfer
  // and sync below, reproducing the 47x gap at 1.3K insns in Fig 4a.
  Duration rdx_dispatch_overhead = Micros(33);
  // Remote transaction commit: one 8-byte CAS after the payload writes.
  Duration rdx_commit_latency = Micros(2);
  // Cache-coherent event injection (rdx_cc_event), see sim/cache.h.
  Duration rdx_cc_event_latency = Micros(2);

  // ---- Small-op fast path (constants live in sim/network.h) ------------
  // The per-WQE NIC costs for the small-op fast path are LinkModel fields
  // because they are properties of the NIC/PCIe complex, not the host CPU;
  // their calibration rationale is recorded here so this file stays the
  // one place to question a number:
  //  - max_inline_data = 220 B: mlx5's classic cap for a 256 B WQE --
  //    four 64 B segments minus the ctrl (16 B) + raddr (16 B) segments,
  //    with a 4 B inline header. Anything larger must be gathered by DMA.
  //  - payload_fetch_latency = 250 ns: one PCIe Gen3 round trip (~400 ns
  //    idle is the *doorbell* posted-write figure; a DMA read completes in
  //    ~250 ns amortized because the NIC pipelines the request with WQE
  //    parse). This is the leg INLINE sends skip entirely.
  //  - mtt_hit = 15 ns / mtt_miss = 450 ns: on-die translation SRAM vs. a
  //    host MTT walk over PCIe; the ~30x split matches published ConnectX
  //    microbenchmarks where dereg/invalidation storms cost ~0.5 us/op.
  //  - mtt_cache_entries = 32 per QP: small on purpose -- the point is
  //    locality, and RDX's steady state touches O(1) MRs per QP (control
  //    block, trace ring, code region).
  //  - cqe_write_latency = 120 ns: one posted DMA write of a 64 B CQE plus
  //    host cacheline ownership transfer. Selective signaling (signal
  //    every Kth WR) divides this by K on the hot path.

  // ---- Data-path request service demands --------------------------------
  // One microservice hop handling an RPC (parse + business logic + filter
  // chain), ~20 us of CPU.
  std::uint64_t mesh_request_cycles = 68'000;
  // One KV-store GET/SET (RESP parse + hash lookup), ~2 us of CPU.
  std::uint64_t kv_request_cycles = 6'800;
  // One trace-ring emit on the data path: four uncontended stores into an
  // L1-resident ring slot plus a cursor load, ~7 ns. Charged per event the
  // sandbox emits while serving a request; keeps telemetry under the 2%
  // overhead budget for the smallest profiled extensions (~1.3K insns).
  std::uint64_t trace_emit_cycles = 24;
  // Periodic agent XState polling tax per poll: dumping a populated map
  // through the syscall interface (one call per entry) plus telemetry
  // serialization, ~4 ms for a 10K-entry map. Calibrated so a 20 ms poll
  // period costs ~20% of one core, reproducing the paper's 25.3% Redis
  // degradation (Redis is single-threaded).
  std::uint64_t agent_state_poll_cycles = 13'600'000;

  // ---- Derived cycle demands -------------------------------------------
  std::uint64_t VerifyCycles(std::size_t insns) const {
    const double n = static_cast<double>(insns < 2 ? 2 : insns);
    const double ns = verify_ns_per_insn_log * n * std::log2(n);
    return static_cast<std::uint64_t>(ns * cpu_hz / 1e9);
  }
  std::uint64_t JitCycles(std::size_t insns) const {
    return jit_cycles_per_insn * insns;
  }
  std::uint64_t WasmValidateCycles(std::size_t insns) const {
    return wasm_validate_cycles_per_insn * insns;
  }
  std::uint64_t WasmCompileCycles(std::size_t insns) const {
    return wasm_compile_cycles_per_insn * insns;
  }
  // Virtual-time cost of executing an extension of `insns_executed`
  // retired instructions on the data path (~1.5 cycles per micro-op).
  std::uint64_t ExtensionExecCycles(std::uint64_t insns_executed) const {
    return insns_executed + insns_executed / 2;
  }

  static const CostModel& Default() {
    static const CostModel model;
    return model;
  }
};

}  // namespace rdx::sim
