// RNIC/CPU cache-coherence model (the mechanism behind Fig 5).
//
// One-sided RDMA writes are delivered by the RNIC via DMA to DRAM. On the
// testbed platforms the paper targets (non-DDIO-allocating lines, or lines
// already resident in a core's private cache), the CPU keeps serving a
// *stale* copy of the written cacheline until that line is evicted and
// refetched. The time until natural eviction depends on cache pressure:
// with a miss rate of `cpki` misses per 1000 instructions and an
// instruction retirement rate of R insn/s, misses arrive at rate
// (cpki/1000)*R, each filling one line and evicting a (random-replacement)
// victim. A specific line of an L-line cache is therefore evicted after a
// geometrically distributed number of misses with mean L, i.e. after an
// approximately exponential time with mean
//
//     E[discovery delay] = L * 1000 / (cpki * R).
//
// rdx_cc_event() sidesteps this entirely by having the control plane
// inject a cacheline flush (a tiny helper that executes CLFLUSH on the
// target range), making the write visible after a constant ~2 us.
//
// Calibration: kDefaultLines is chosen so that CPKI=10 yields ~746 us,
// matching the worst case the paper reports for vanilla RDMA in Fig 5.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/time.h"

namespace rdx::sim {

struct CacheConfig {
  // Number of cachelines the stale line competes with (private L2-ish).
  std::int64_t lines = 7460;
  // Instruction retirement rate of the polling core, insn/second.
  double insn_rate_hz = 1e9;
  // Latency of an injected coherent flush (rdx_cc_event path).
  Duration flush_latency = Micros(2);
};

class CacheModel {
 public:
  explicit CacheModel(CacheConfig config = {}) : config_(config) {}

  // Mean time for a DMA-written line to become CPU-visible with NO
  // explicit synchronization, at the given cache-miss intensity.
  Duration ExpectedDiscoveryDelay(double cpki) const;

  // Stochastic sample of the same quantity (exponential around the mean),
  // used by the fig5 bench to produce a distribution per CPKI level.
  Duration SampleDiscoveryDelay(double cpki, Rng& rng) const;

  // Visibility delay when the control plane issues rdx_cc_event().
  Duration FlushDelay() const {
    ++flushes_;
    return config_.flush_latency;
  }

  const CacheConfig& config() const { return config_; }

  // Telemetry counters: how often each visibility path was exercised.
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t discovery_samples() const { return discovery_samples_; }

 private:
  CacheConfig config_;
  mutable std::uint64_t flushes_ = 0;
  mutable std::uint64_t discovery_samples_ = 0;
};

}  // namespace rdx::sim
