#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace rdx::sim {

namespace {
// Completion slop: tasks whose remaining demand falls below this many
// cycles are considered done, absorbing floating-point drift.
constexpr double kEpsilonCycles = 1e-3;
}  // namespace

CpuScheduler::CpuScheduler(EventQueue& events, int cores, double hz)
    : events_(events), cores_(cores), hz_(hz) {
  assert(cores_ > 0 && hz_ > 0);
  last_update_ = events_.Now();
  created_at_ = events_.Now();
}

double CpuScheduler::PerTaskRate() const {
  if (tasks_.empty()) return 0.0;
  const double share =
      std::min(1.0, static_cast<double>(cores_) /
                        static_cast<double>(tasks_.size()));
  return hz_ * share / 1e9;  // cycles per nanosecond
}

void CpuScheduler::Settle() {
  const SimTime now = events_.Now();
  const double elapsed_ns = static_cast<double>(now - last_update_);
  if (elapsed_ns > 0 && !tasks_.empty()) {
    const double served = elapsed_ns * PerTaskRate();
    for (auto& [id, task] : tasks_) {
      task.remaining_cycles -= served;
    }
    busy_core_ns_ +=
        elapsed_ns *
        std::min<double>(static_cast<double>(tasks_.size()), cores_);
  }
  last_update_ = now;
}

void CpuScheduler::Reschedule() {
  if (has_pending_event_) {
    events_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (tasks_.empty()) return;
  double min_remaining = 0.0;
  bool first = true;
  for (const auto& [id, task] : tasks_) {
    if (first || task.remaining_cycles < min_remaining) {
      min_remaining = task.remaining_cycles;
      first = false;
    }
  }
  min_remaining = std::max(min_remaining, 0.0);
  const double rate = PerTaskRate();
  const Duration dt =
      static_cast<Duration>(std::ceil(min_remaining / rate));
  pending_event_ = events_.ScheduleAfter(dt, [this] { OnCompletionEvent(); });
  has_pending_event_ = true;
}

CpuScheduler::TaskId CpuScheduler::Submit(std::uint64_t cycles,
                                          Completion on_done) {
  Settle();
  const TaskId id = next_id_++;
  tasks_.emplace(id,
                 Task{static_cast<double>(cycles), std::move(on_done)});
  Reschedule();
  return id;
}

void CpuScheduler::Abort(TaskId id) {
  Settle();
  tasks_.erase(id);
  Reschedule();
}

void CpuScheduler::OnCompletionEvent() {
  has_pending_event_ = false;
  Settle();
  // Collect finished tasks first: completions may Submit() re-entrantly.
  std::vector<Completion> done;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second.remaining_cycles <= kEpsilonCycles) {
      done.push_back(std::move(it->second.on_done));
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

double CpuScheduler::Utilization() const {
  const SimTime now = events_.Now();
  const double span = static_cast<double>(now - created_at_);
  if (span <= 0) return 0.0;
  double busy = busy_core_ns_;
  // Include the in-flight interval since the last settle.
  const double elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0 && !tasks_.empty()) {
    busy += elapsed * std::min<double>(static_cast<double>(tasks_.size()),
                                       cores_);
  }
  return busy / (span * cores_);
}

}  // namespace rdx::sim
