// Virtual time for the RDX simulation substrate. All latencies in the
// library are expressed in simulated nanoseconds (SimTime); nothing reads
// the wall clock, which makes every experiment deterministic.
#pragma once

#include <cstdint>

namespace rdx::sim {

// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

// Duration in nanoseconds.
using Duration = std::int64_t;

constexpr Duration Nanos(std::int64_t n) { return n; }
constexpr Duration Micros(std::int64_t us) { return us * 1000; }
constexpr Duration Millis(std::int64_t ms) { return ms * 1000 * 1000; }
constexpr Duration Seconds(std::int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }

}  // namespace rdx::sim
