// Processor-sharing CPU model. Each simulated node owns one CpuScheduler;
// work (request handling, agent verify/JIT, state polling) is submitted as
// a cycle demand and completes after a virtual-time interval that depends
// on how many tasks share the cores. This is what makes control-path /
// data-path contention (Fig 2c, the Redis experiment) emerge from the
// model instead of being hard-coded.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace rdx::sim {

class CpuScheduler {
 public:
  using TaskId = std::uint64_t;
  using Completion = std::function<void()>;

  // `cores` hardware threads, each retiring `hz` cycles per second when
  // not oversubscribed.
  CpuScheduler(EventQueue& events, int cores, double hz);
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  // Submits a task needing `cycles` cycles; `on_done` fires (via the event
  // queue) when it has received that much service. Egalitarian processor
  // sharing: with A active tasks, each runs at hz * min(1, cores/A).
  TaskId Submit(std::uint64_t cycles, Completion on_done);

  // Aborts a running task; its completion never fires. Unknown/finished
  // ids are ignored.
  void Abort(TaskId id);

  int ActiveTasks() const { return static_cast<int>(tasks_.size()); }
  int cores() const { return cores_; }
  double hz() const { return hz_; }

  // Time-averaged fraction of core capacity in use since construction.
  double Utilization() const;

  // Converts a cycle demand into the uncontended service time.
  Duration UncontendedTime(std::uint64_t cycles) const {
    return static_cast<Duration>(static_cast<double>(cycles) / hz_ * 1e9);
  }

 private:
  struct Task {
    double remaining_cycles;
    Completion on_done;
  };

  // Applies service accrued since last_update_ to all active tasks.
  void Settle();
  // (Re)schedules the next completion event.
  void Reschedule();
  void OnCompletionEvent();

  double PerTaskRate() const;  // cycles per ns per task

  EventQueue& events_;
  const int cores_;
  const double hz_;

  std::unordered_map<TaskId, Task> tasks_;
  TaskId next_id_ = 1;
  SimTime last_update_ = 0;
  EventQueue::EventId pending_event_ = 0;
  bool has_pending_event_ = false;

  // Busy integral for Utilization(): sum over time of min(active, cores).
  double busy_core_ns_ = 0.0;
  SimTime created_at_ = 0;
};

}  // namespace rdx::sim
