// Map storage. A map is a *flat, self-describing byte layout* over a
// contiguous buffer, manipulated through MapView. This is deliberate and
// central to RDX: the same layout works over process-local memory (agent
// baseline, unit tests) and over a node's simulated DRAM (HostMemory),
// where it becomes XState that the remote control plane can read and
// write with one-sided RDMA at computed offsets (§3.4 of the paper).
//
// Layouts (all little-endian):
//   header (32 B): magic 'XMAP' | type u8 | pad | key_size u32 |
//                  value_size u32 | max_entries u32 | used u32 | pad
//   array:   header + max_entries * value_size            (key = u32 index)
//   hash:    header + capacity * entry, open addressing, linear probing;
//            entry = state u64 (0 empty / 1 used / 2 tombstone) +
//                    key (padded to 8) + value (padded to 8)
//   ringbuf: header + head u64 + tail u64 + data bytes; records are
//            u64 length + payload, with a skip marker at wrap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bpf/program.h"
#include "common/bytes.h"
#include "common/status.h"

namespace rdx::bpf {

constexpr std::uint32_t kMapMagic = 0x50414d58;  // "XMAP"
constexpr std::uint64_t kMapHeaderBytes = 32;
// Ring-buffer cursor words live right after the header; the tail is the
// consumer-owned word (advanced remotely by XStateRingConsume).
constexpr std::uint64_t kRingHeadOffset = kMapHeaderBytes;
constexpr std::uint64_t kRingTailOffset = kMapHeaderBytes + 8;

struct MapHeader {
  MapType type;
  std::uint32_t key_size;
  std::uint32_t value_size;
  std::uint32_t max_entries;
  std::uint32_t used;
};

// Total storage a map of this spec needs, header included.
std::uint64_t MapRequiredBytes(const MapSpec& spec);

// Accessor over a map's storage bytes. Holds no state of its own: it can
// be constructed on the fly over any span that contains a formatted map
// (including bytes just fetched via RDMA READ).
class MapView {
 public:
  explicit MapView(MutableByteSpan storage) : storage_(storage) {}

  // Formats the storage for `spec`. Fails if the span is too small.
  Status Init(const MapSpec& spec);

  // Parses and validates the header.
  StatusOr<MapHeader> Header() const;

  // Returns the offset of the value for `key` within the storage, or
  // NotFound. Never allocates.
  StatusOr<std::uint64_t> LookupOffset(ByteSpan key) const;

  // Reads the value for `key` into out (sized value_size).
  Status Lookup(ByteSpan key, MutableByteSpan out) const;

  // Inserts or overwrites. For array maps the key must be a valid index.
  Status Update(ByteSpan key, ByteSpan value);

  // Removes a key (hash maps only; arrays zero the slot).
  Status Delete(ByteSpan key);

  // Ring buffer: appends a record. Fails with ResourceExhausted when the
  // buffer cannot fit it until the consumer catches up.
  Status RingOutput(ByteSpan record);

  // Ring buffer: drains all complete records.
  StatusOr<std::vector<Bytes>> RingConsume();

  // Number of live entries (hash) / committed records (ring).
  StatusOr<std::uint32_t> Used() const;

  // Iteration (the bpf_map_get_next_key syscall analog). With an empty
  // `prev_key`, writes the first key; otherwise the key following
  // `prev_key` in iteration order. NotFound when exhausted. For hash
  // maps, iteration survives deletion of prev_key (restarts from the
  // position it occupied), matching kernel semantics loosely.
  Status NextKey(ByteSpan prev_key, MutableByteSpan out_key) const;

  // Convenience full dump (keys with their values), iteration order.
  StatusOr<std::vector<std::pair<Bytes, Bytes>>> Dump() const;

  // Layout math, shared with MapRequiredBytes.
  struct HashGeometry {
    std::uint64_t capacity;
    std::uint64_t entry_bytes;
    std::uint64_t key_pad;
    std::uint64_t value_pad;
  };
  static std::uint64_t PadTo8(std::uint64_t n) { return (n + 7) & ~7ull; }
  static HashGeometry GeometryFor(std::uint32_t key_size,
                                  std::uint32_t value_size,
                                  std::uint32_t max_entries);

 private:
  Status CheckKey(const MapHeader& h, ByteSpan key) const;

  MutableByteSpan storage_;
};

// Convenience owner for process-local maps (agent baseline, tests).
class LocalMap {
 public:
  explicit LocalMap(const MapSpec& spec)
      : spec_(spec), storage_(MapRequiredBytes(spec), 0) {
    MapView view(storage_);
    (void)view.Init(spec);
  }

  const MapSpec& spec() const { return spec_; }
  MapView view() { return MapView(storage_); }
  MutableByteSpan storage() { return storage_; }

 private:
  MapSpec spec_;
  Bytes storage_;
};

}  // namespace rdx::bpf
