// Program container: instructions plus the metadata the toolchain and the
// RDX control plane care about — program type, declared maps, and the
// helper set it may call. This is the unit that flows through
// validate -> JIT -> link -> deploy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpf/insn.h"

namespace rdx::bpf {

enum class ProgramType : std::uint8_t {
  kSocketFilter,  // ctx = packet bytes; return 0 (drop) / nonzero (accept)
  kXdp,           // same ctx shape in this subset
  kTracepoint,    // ctx = event record
};

const char* ProgramTypeName(ProgramType type);

enum class MapType : std::uint8_t { kArray, kHash, kRingBuf };

const char* MapTypeName(MapType type);

// Declaration of a map the program references via LoadMapFd(slot). The
// actual map instance is created at deploy time (as XState, when deployed
// through RDX).
struct MapSpec {
  std::string name;
  MapType type = MapType::kArray;
  std::uint32_t key_size = 4;
  std::uint32_t value_size = 8;
  std::uint32_t max_entries = 1;
};

struct Program {
  std::string name;
  ProgramType type = ProgramType::kSocketFilter;
  std::vector<Insn> insns;
  std::vector<MapSpec> maps;  // indexed by the slot in LoadMapFd

  std::size_t size() const { return insns.size(); }
  Bytes Encode() const { return EncodeProgram(insns); }
};

}  // namespace rdx::bpf
