#include "bpf/proggen.h"

#include <algorithm>

#include "bpf/exec.h"
#include "common/rng.h"

namespace rdx::bpf {

namespace {

// Register conventions inside generated programs:
//   r6       callee-saved copy of the ctx pointer (r1 is clobbered by
//            helper calls)
//   r0,r7-r9 scalar working set
constexpr int kCtxReg = 6;
constexpr int kWork[] = {0, 7, 8, 9};

// Emits an ALU instruction over the scalar working set. Always 1 insn.
void EmitAlu(std::vector<Insn>& out, Rng& rng) {
  static constexpr std::uint8_t kOps[] = {kAluAdd, kAluSub, kAluMul, kAluOr,
                                          kAluAnd, kAluXor, kAluLsh,
                                          kAluRsh};
  const std::uint8_t op = kOps[rng.NextBounded(std::size(kOps))];
  const int dst = kWork[rng.NextBounded(std::size(kWork))];
  if (op == kAluLsh || op == kAluRsh) {
    out.push_back(AluImm(op, dst, static_cast<std::int32_t>(
                                      rng.NextBounded(31) + 1)));
    return;
  }
  if (rng.NextBool(0.5)) {
    const int src = kWork[rng.NextBounded(std::size(kWork))];
    out.push_back(AluReg(op, dst, src));
  } else {
    out.push_back(AluImm(op, dst, static_cast<std::int32_t>(
                                      rng.NextBounded(1 << 16) + 1)));
  }
}

// Emits a ctx load into a working register: 1 insn.
void EmitCtxLoad(std::vector<Insn>& out, Rng& rng, std::uint32_t ctx_size) {
  const int dst = kWork[rng.NextBounded(std::size(kWork))];
  const std::int16_t off =
      static_cast<std::int16_t>(rng.NextBounded(ctx_size / 4 - 1) * 4);
  out.push_back(LoadMem(kSizeW, dst, kCtxReg, off));
}

// Emits stack write + read of the same slot: 2 insns.
void EmitStackTraffic(std::vector<Insn>& out, Rng& rng) {
  const int reg = kWork[rng.NextBounded(std::size(kWork))];
  const std::int16_t off = static_cast<std::int16_t>(
      -8 * static_cast<std::int16_t>(rng.NextBounded(16) + 1));
  out.push_back(StoreMemReg(kSizeDw, kFrameReg, reg, off));
  out.push_back(LoadMem(kSizeDw, reg, kFrameReg, off));
}

// Emits a forward branch over `skip` filler ALU ops: 1 + skip insns.
// Half the branches use the JMP32 class.
void EmitBranch(std::vector<Insn>& out, Rng& rng, int skip) {
  static constexpr std::uint8_t kConds[] = {kJmpJeq, kJmpJne, kJmpJgt,
                                            kJmpJlt, kJmpJset};
  const std::uint8_t cond = kConds[rng.NextBounded(std::size(kConds))];
  const int reg = kWork[rng.NextBounded(std::size(kWork))];
  const std::int32_t imm =
      static_cast<std::int32_t>(rng.NextBounded(1 << 12));
  out.push_back(rng.NextBool(0.5)
                    ? JmpImm(cond, reg, imm, static_cast<std::int16_t>(skip))
                    : Jmp32Imm(cond, reg, imm,
                               static_cast<std::int16_t>(skip)));
  for (int i = 0; i < skip; ++i) EmitAlu(out, rng);
}

// Emits a byte swap on a working register: 1 insn.
void EmitEndian(std::vector<Insn>& out, Rng& rng) {
  static constexpr int kWidths[] = {16, 32, 64};
  const int reg = kWork[rng.NextBounded(std::size(kWork))];
  out.push_back(Endian(reg, kWidths[rng.NextBounded(3)],
                       rng.NextBool(0.5)));
}

// Emits a map lookup with a null check and a read through the value
// pointer: 8 insns. Map 0 is array<u32, u64>.
void EmitMapLookup(std::vector<Insn>& out, Rng& rng,
                   std::uint32_t max_entries) {
  out.push_back(StoreMemImm(
      kSizeW, kFrameReg, -4,
      static_cast<std::int32_t>(rng.NextBounded(max_entries))));
  out.push_back(MovReg(2, kFrameReg));
  out.push_back(AluImm(kAluAdd, 2, -4));
  auto [lo, hi] = LoadMapFd(1, 0);
  out.push_back(lo);
  out.push_back(hi);
  out.push_back(Call(kHelperMapLookupElem));
  out.push_back(JmpImm(kJmpJeq, 0, 0, 1));  // if r0 == 0 skip the deref
  out.push_back(LoadMem(kSizeDw, 0, 0, 0));
}

// Emits a map update from the stack: 11 insns.
void EmitMapUpdate(std::vector<Insn>& out, Rng& rng,
                   std::uint32_t max_entries) {
  out.push_back(StoreMemImm(
      kSizeW, kFrameReg, -4,
      static_cast<std::int32_t>(rng.NextBounded(max_entries))));
  out.push_back(StoreMemReg(kSizeDw, kFrameReg, 7, -16));
  auto [lo, hi] = LoadMapFd(1, 0);
  out.push_back(lo);
  out.push_back(hi);
  out.push_back(MovReg(2, kFrameReg));
  out.push_back(AluImm(kAluAdd, 2, -4));
  out.push_back(MovReg(3, kFrameReg));
  out.push_back(AluImm(kAluAdd, 3, -16));
  out.push_back(MovImm(4, 0));
  out.push_back(Call(kHelperMapUpdateElem));
  // Fold the helper's status into the running checksum in r7.
  out.push_back(AluReg(kAluXor, 7, 0));
}

}  // namespace

Program GenerateProgram(const ProgGenOptions& options) {
  Rng rng(options.seed);
  Program prog;
  prog.name = "stress_" + std::to_string(options.target_insns) + "_s" +
              std::to_string(options.seed);
  prog.type = ProgramType::kSocketFilter;
  constexpr std::uint32_t kMaxEntries = 64;
  if (options.use_maps) {
    prog.maps.push_back(MapSpec{"gen_map", MapType::kArray, 4, 8,
                                kMaxEntries});
  }

  std::vector<Insn>& out = prog.insns;
  const std::size_t target = std::max<std::size_t>(options.target_insns, 16);

  // Prologue: save ctx, initialize the scalar working set. 6 insns.
  out.push_back(MovReg(kCtxReg, 1));
  out.push_back(MovImm(0, 0));
  out.push_back(MovImm(7, 1));
  out.push_back(MovImm(8, 2));
  out.push_back(MovImm(9, 3));
  out.push_back(LoadMem(kSizeW, 7, kCtxReg, 0));  // seed r7 from the packet

  // Body blocks until only the epilogue budget remains.
  constexpr std::size_t kEpilogue = 3;  // and r0 mask + exit
  while (out.size() + 12 + kEpilogue < target) {
    const double roll = rng.NextDouble();
    if (options.use_maps && roll < options.helper_density / 2) {
      EmitMapLookup(out, rng, kMaxEntries);
    } else if (options.use_maps && roll < options.helper_density) {
      EmitMapUpdate(out, rng, kMaxEntries);
    } else if (roll < options.helper_density + options.branch_density) {
      EmitBranch(out, rng, static_cast<int>(rng.NextBounded(4)) + 1);
    } else if (roll < options.helper_density + options.branch_density + 0.1) {
      EmitCtxLoad(out, rng, 256);
    } else if (roll < options.helper_density + options.branch_density + 0.2) {
      EmitStackTraffic(out, rng);
    } else if (roll < options.helper_density + options.branch_density + 0.25) {
      EmitEndian(out, rng);
    } else {
      EmitAlu(out, rng);
    }
  }
  // Pad to exactly target - epilogue.
  while (out.size() < target - kEpilogue) {
    out.push_back(AluImm(kAluAdd, 0, 1));
  }
  // Epilogue: fold the working set into r0 and return 0/1 (accept bit).
  out.push_back(AluReg(kAluXor, 0, 7));
  out.push_back(AluImm(kAluAnd, 0, 1));
  out.push_back(Exit());
  return prog;
}

Program GenerateRogueProgram(const RogueGenOptions& options) {
  if (options.kind == RogueKind::kTrapLoop) {
    Program prog;
    prog.name = "rogue_trap_s" + std::to_string(options.seed);
    prog.type = ProgramType::kSocketFilter;
    // 16-byte records, 8 slots — geometry is irrelevant; the output call
    // never succeeds.
    prog.maps.push_back(MapSpec{"rogue_ring", MapType::kRingBuf, 0, 16, 8});
    std::vector<Insn>& out = prog.insns;
    // Initialize one stack slot so the verifier proves r2 readable.
    out.push_back(StoreMemImm(kSizeDw, kFrameReg, -8, 0));
    auto [lo, hi] = LoadMapFd(1, 0);
    out.push_back(lo);
    out.push_back(hi);
    out.push_back(MovReg(2, kFrameReg));
    out.push_back(AluImm(kAluAdd, 2, -8));
    // The poisoned pill: a 1 GiB "record length" the verifier cannot
    // bound. Every execution fails the runtime bounds check and traps.
    out.push_back(MovImm(3, 0x40000000));
    out.push_back(MovImm(4, 0));
    out.push_back(Call(kHelperRingbufOutput));
    out.push_back(MovImm(0, 0));
    out.push_back(Exit());
    return prog;
  }
  // kFuelBurn / kScratchHog: legal straight-line work, sized to overrun
  // the fuel budget (executed length == program length — no loops) or to
  // bloat the deployed image.
  ProgGenOptions gen;
  gen.target_insns = options.target_insns;
  gen.seed = options.seed;
  gen.use_maps = false;
  gen.branch_density = 0.0;  // branches would skip insns; burn them all
  gen.helper_density = 0.0;
  Program prog = GenerateProgram(gen);
  prog.name = (options.kind == RogueKind::kFuelBurn ? "rogue_fuel_s"
                                                    : "rogue_hog_s") +
              std::to_string(options.seed);
  return prog;
}

}  // namespace rdx::bpf
