#include "bpf/maps.h"

#include <bit>
#include <cstring>

namespace rdx::bpf {

namespace {
// Header field offsets.
constexpr std::uint64_t kOffMagic = 0;
constexpr std::uint64_t kOffType = 4;
constexpr std::uint64_t kOffKeySize = 8;
constexpr std::uint64_t kOffValueSize = 12;
constexpr std::uint64_t kOffMaxEntries = 16;
constexpr std::uint64_t kOffUsed = 20;
// Ring buffer head/tail aliases (public offsets live in maps.h).
constexpr std::uint64_t kOffRingHead = kRingHeadOffset;
constexpr std::uint64_t kOffRingTail = kRingTailOffset;
constexpr std::uint64_t kRingDataStart = kMapHeaderBytes + 16;
// Ring record whose length has this bit set is a skip-to-start marker.
constexpr std::uint64_t kRingSkipBit = 1ull << 63;

constexpr std::uint64_t kHashStateEmpty = 0;
constexpr std::uint64_t kHashStateUsed = 1;
constexpr std::uint64_t kHashStateTomb = 2;
}  // namespace

MapView::HashGeometry MapView::GeometryFor(std::uint32_t key_size,
                                           std::uint32_t value_size,
                                           std::uint32_t max_entries) {
  HashGeometry g;
  g.key_pad = PadTo8(key_size);
  g.value_pad = PadTo8(value_size);
  g.entry_bytes = 8 + g.key_pad + g.value_pad;
  g.capacity = std::bit_ceil<std::uint64_t>(
      std::max<std::uint64_t>(max_entries * 2, 8));
  return g;
}

std::uint64_t MapRequiredBytes(const MapSpec& spec) {
  switch (spec.type) {
    case MapType::kArray:
      return kMapHeaderBytes +
             static_cast<std::uint64_t>(spec.max_entries) * spec.value_size;
    case MapType::kHash: {
      const auto geo = MapView::GeometryFor(spec.key_size, spec.value_size,
                                            spec.max_entries);
      return kMapHeaderBytes + geo.capacity * geo.entry_bytes;
    }
    case MapType::kRingBuf:
      // header + head/tail words + data region for max_entries records.
      return kRingDataStart +
             static_cast<std::uint64_t>(spec.max_entries) *
                 (MapView::PadTo8(spec.value_size) + 8);
  }
  return 0;
}

Status MapView::Init(const MapSpec& spec) {
  const std::uint64_t need = MapRequiredBytes(spec);
  if (storage_.size() < need) {
    return InvalidArgument("map storage too small");
  }
  std::memset(storage_.data(), 0, need);
  StoreLE<std::uint32_t>(storage_.data() + kOffMagic, kMapMagic);
  storage_[kOffType] = static_cast<std::uint8_t>(spec.type);
  StoreLE<std::uint32_t>(storage_.data() + kOffKeySize, spec.key_size);
  StoreLE<std::uint32_t>(storage_.data() + kOffValueSize, spec.value_size);
  StoreLE<std::uint32_t>(storage_.data() + kOffMaxEntries, spec.max_entries);
  StoreLE<std::uint32_t>(storage_.data() + kOffUsed, 0);
  return OkStatus();
}

StatusOr<MapHeader> MapView::Header() const {
  if (storage_.size() < kMapHeaderBytes) {
    return InvalidArgument("storage smaller than map header");
  }
  if (LoadLE<std::uint32_t>(storage_.data() + kOffMagic) != kMapMagic) {
    return FailedPrecondition("bad map magic (storage not formatted)");
  }
  MapHeader h;
  h.type = static_cast<MapType>(storage_[kOffType]);
  h.key_size = LoadLE<std::uint32_t>(storage_.data() + kOffKeySize);
  h.value_size = LoadLE<std::uint32_t>(storage_.data() + kOffValueSize);
  h.max_entries = LoadLE<std::uint32_t>(storage_.data() + kOffMaxEntries);
  h.used = LoadLE<std::uint32_t>(storage_.data() + kOffUsed);
  return h;
}

Status MapView::CheckKey(const MapHeader& h, ByteSpan key) const {
  if (key.size() != h.key_size) {
    return InvalidArgument("key size mismatch");
  }
  return OkStatus();
}

StatusOr<std::uint64_t> MapView::LookupOffset(ByteSpan key) const {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  RDX_RETURN_IF_ERROR(CheckKey(h, key));
  switch (h.type) {
    case MapType::kArray: {
      const std::uint32_t idx = LoadLE<std::uint32_t>(key.data());
      if (idx >= h.max_entries) return OutOfRange("array index");
      return kMapHeaderBytes +
             static_cast<std::uint64_t>(idx) * h.value_size;
    }
    case MapType::kHash: {
      const auto g = GeometryFor(h.key_size, h.value_size, h.max_entries);
      std::uint64_t slot = Fnv1a64(key) & (g.capacity - 1);
      for (std::uint64_t probe = 0; probe < g.capacity; ++probe) {
        const std::uint64_t off =
            kMapHeaderBytes + slot * g.entry_bytes;
        const std::uint64_t state = LoadLE<std::uint64_t>(storage_.data() + off);
        if (state == kHashStateEmpty) return NotFound("key not in map");
        if (state == kHashStateUsed &&
            std::memcmp(storage_.data() + off + 8, key.data(),
                        h.key_size) == 0) {
          return off + 8 + g.key_pad;
        }
        slot = (slot + 1) & (g.capacity - 1);
      }
      return NotFound("key not in map");
    }
    case MapType::kRingBuf:
      return Unimplemented("lookup on ring buffer");
  }
  return Internal("corrupt map type");
}

Status MapView::Lookup(ByteSpan key, MutableByteSpan out) const {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  if (out.size() != h.value_size) {
    return InvalidArgument("value buffer size mismatch");
  }
  RDX_ASSIGN_OR_RETURN(const std::uint64_t off, LookupOffset(key));
  std::memcpy(out.data(), storage_.data() + off, h.value_size);
  return OkStatus();
}

Status MapView::Update(ByteSpan key, ByteSpan value) {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  RDX_RETURN_IF_ERROR(CheckKey(h, key));
  if (value.size() != h.value_size) {
    return InvalidArgument("value size mismatch");
  }
  switch (h.type) {
    case MapType::kArray: {
      RDX_ASSIGN_OR_RETURN(const std::uint64_t off, LookupOffset(key));
      std::memcpy(storage_.data() + off, value.data(), h.value_size);
      return OkStatus();
    }
    case MapType::kHash: {
      const auto g = GeometryFor(h.key_size, h.value_size, h.max_entries);
      std::uint64_t slot = Fnv1a64(key) & (g.capacity - 1);
      std::uint64_t insert_off = 0;
      bool have_insert = false;
      for (std::uint64_t probe = 0; probe < g.capacity; ++probe) {
        const std::uint64_t off = kMapHeaderBytes + slot * g.entry_bytes;
        const std::uint64_t state =
            LoadLE<std::uint64_t>(storage_.data() + off);
        if (state == kHashStateUsed &&
            std::memcmp(storage_.data() + off + 8, key.data(),
                        h.key_size) == 0) {
          std::memcpy(storage_.data() + off + 8 + g.key_pad, value.data(),
                      h.value_size);
          return OkStatus();
        }
        if (state != kHashStateUsed && !have_insert) {
          insert_off = off;
          have_insert = true;
        }
        if (state == kHashStateEmpty) break;
        slot = (slot + 1) & (g.capacity - 1);
      }
      if (!have_insert) return ResourceExhausted("hash map full");
      if (h.used >= h.max_entries) {
        return ResourceExhausted("hash map at max_entries");
      }
      StoreLE<std::uint64_t>(storage_.data() + insert_off, kHashStateUsed);
      std::memcpy(storage_.data() + insert_off + 8, key.data(), h.key_size);
      std::memcpy(storage_.data() + insert_off + 8 + g.key_pad, value.data(),
                  h.value_size);
      StoreLE<std::uint32_t>(storage_.data() + kOffUsed, h.used + 1);
      return OkStatus();
    }
    case MapType::kRingBuf:
      return Unimplemented("update on ring buffer; use RingOutput");
  }
  return Internal("corrupt map type");
}

Status MapView::Delete(ByteSpan key) {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  RDX_RETURN_IF_ERROR(CheckKey(h, key));
  switch (h.type) {
    case MapType::kArray: {
      RDX_ASSIGN_OR_RETURN(const std::uint64_t off, LookupOffset(key));
      std::memset(storage_.data() + off, 0, h.value_size);
      return OkStatus();
    }
    case MapType::kHash: {
      const auto g = GeometryFor(h.key_size, h.value_size, h.max_entries);
      RDX_ASSIGN_OR_RETURN(const std::uint64_t value_off, LookupOffset(key));
      const std::uint64_t entry_off = value_off - 8 - g.key_pad;
      StoreLE<std::uint64_t>(storage_.data() + entry_off, kHashStateTomb);
      StoreLE<std::uint32_t>(storage_.data() + kOffUsed, h.used - 1);
      return OkStatus();
    }
    case MapType::kRingBuf:
      return Unimplemented("delete on ring buffer");
  }
  return Internal("corrupt map type");
}

Status MapView::RingOutput(ByteSpan record) {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  if (h.type != MapType::kRingBuf) {
    return FailedPrecondition("RingOutput on non-ring map");
  }
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(h.max_entries) * (PadTo8(h.value_size) + 8);
  const std::uint64_t rec_bytes = 8 + PadTo8(record.size());
  if (rec_bytes > data_bytes) return InvalidArgument("record too large");

  std::uint64_t head = LoadLE<std::uint64_t>(storage_.data() + kOffRingHead);
  const std::uint64_t tail =
      LoadLE<std::uint64_t>(storage_.data() + kOffRingTail);
  // `head`/`tail` are monotonically increasing byte counters; physical
  // position is counter % data_bytes.
  std::uint64_t pos = head % data_bytes;
  std::uint64_t avail = data_bytes - (head - tail);

  // If the record would wrap, emit a skip marker and start over.
  if (pos + rec_bytes > data_bytes) {
    const std::uint64_t skip = data_bytes - pos;
    if (skip > avail) return ResourceExhausted("ring buffer full");
    StoreLE<std::uint64_t>(storage_.data() + kRingDataStart + pos,
                           kRingSkipBit | skip);
    head += skip;
    pos = 0;
    avail -= skip;
  }
  if (rec_bytes > avail) return ResourceExhausted("ring buffer full");
  StoreLE<std::uint64_t>(storage_.data() + kRingDataStart + pos,
                         record.size());
  std::memcpy(storage_.data() + kRingDataStart + pos + 8, record.data(),
              record.size());
  StoreLE<std::uint64_t>(storage_.data() + kOffRingHead, head + rec_bytes);
  StoreLE<std::uint32_t>(storage_.data() + kOffUsed, h.used + 1);
  return OkStatus();
}

StatusOr<std::vector<Bytes>> MapView::RingConsume() {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  if (h.type != MapType::kRingBuf) {
    return FailedPrecondition("RingConsume on non-ring map");
  }
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(h.max_entries) * (PadTo8(h.value_size) + 8);
  const std::uint64_t head =
      LoadLE<std::uint64_t>(storage_.data() + kOffRingHead);
  std::uint64_t tail = LoadLE<std::uint64_t>(storage_.data() + kOffRingTail);

  std::vector<Bytes> out;
  while (tail < head) {
    const std::uint64_t pos = tail % data_bytes;
    const std::uint64_t len_word =
        LoadLE<std::uint64_t>(storage_.data() + kRingDataStart + pos);
    if (len_word & kRingSkipBit) {
      tail += len_word & ~kRingSkipBit;
      continue;
    }
    Bytes rec(len_word);
    std::memcpy(rec.data(), storage_.data() + kRingDataStart + pos + 8,
                len_word);
    out.push_back(std::move(rec));
    tail += 8 + PadTo8(len_word);
  }
  StoreLE<std::uint64_t>(storage_.data() + kOffRingTail, tail);
  StoreLE<std::uint32_t>(storage_.data() + kOffUsed, 0);
  return out;
}

StatusOr<std::uint32_t> MapView::Used() const {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  return h.used;
}

Status MapView::NextKey(ByteSpan prev_key, MutableByteSpan out_key) const {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  if (out_key.size() != h.key_size) {
    return InvalidArgument("key buffer size mismatch");
  }
  if (!prev_key.empty() && prev_key.size() != h.key_size) {
    return InvalidArgument("key size mismatch");
  }
  switch (h.type) {
    case MapType::kArray: {
      // Keys are indices 0..max_entries-1.
      std::uint32_t next = 0;
      if (!prev_key.empty()) {
        next = LoadLE<std::uint32_t>(prev_key.data()) + 1;
      }
      if (next >= h.max_entries) return NotFound("iteration exhausted");
      StoreLE(out_key.data(), next);
      return OkStatus();
    }
    case MapType::kHash: {
      const auto g = GeometryFor(h.key_size, h.value_size, h.max_entries);
      // Find the slot after prev_key's position (or 0 when starting, or
      // when prev_key vanished — a loose restart like the kernel's).
      std::uint64_t start_slot = 0;
      if (!prev_key.empty()) {
        std::uint64_t slot = Fnv1a64(prev_key) & (g.capacity - 1);
        for (std::uint64_t probe = 0; probe < g.capacity; ++probe) {
          const std::uint64_t off = kMapHeaderBytes + slot * g.entry_bytes;
          const std::uint64_t state =
              LoadLE<std::uint64_t>(storage_.data() + off);
          if (state == kHashStateEmpty) break;  // prev gone: restart
          if (state == kHashStateUsed &&
              std::memcmp(storage_.data() + off + 8, prev_key.data(),
                          h.key_size) == 0) {
            start_slot = slot + 1;
            break;
          }
          slot = (slot + 1) & (g.capacity - 1);
        }
      }
      for (std::uint64_t slot = start_slot; slot < g.capacity; ++slot) {
        const std::uint64_t off = kMapHeaderBytes + slot * g.entry_bytes;
        if (LoadLE<std::uint64_t>(storage_.data() + off) == kHashStateUsed) {
          std::memcpy(out_key.data(), storage_.data() + off + 8, h.key_size);
          return OkStatus();
        }
      }
      return NotFound("iteration exhausted");
    }
    case MapType::kRingBuf:
      return Unimplemented("iteration on ring buffer");
  }
  return Internal("corrupt map type");
}

StatusOr<std::vector<std::pair<Bytes, Bytes>>> MapView::Dump() const {
  RDX_ASSIGN_OR_RETURN(const MapHeader h, Header());
  std::vector<std::pair<Bytes, Bytes>> out;
  Bytes key(h.key_size);
  Bytes prev;
  while (true) {
    Status next = NextKey(prev, key);
    if (next.code() == StatusCode::kNotFound) break;
    RDX_RETURN_IF_ERROR(next);
    Bytes value(h.value_size);
    // Array slots always "exist"; hash keys returned by NextKey do too.
    RDX_RETURN_IF_ERROR(Lookup(key, value));
    out.emplace_back(key, std::move(value));
    prev = key;
  }
  return out;
}

}  // namespace rdx::bpf
