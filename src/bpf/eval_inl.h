// Shared ALU/branch semantics for the interpreter and the JIT runner.
// Keeping exactly one definition of these rules means the two engines
// cannot drift apart — the divergence property tests then only check the
// dispatch and relocation machinery around them.
#pragma once

#include <cstdint>

#include "bpf/insn.h"

namespace rdx::bpf::internal {

// Division and modulo by zero produce 0, matching the kernel's patched
// eBPF semantics. 32-bit ops truncate inputs and zero-extend the result.
inline std::uint64_t AluEval(std::uint8_t op, std::uint64_t dst,
                             std::uint64_t src, bool is64, bool& ok) {
  ok = true;
  const std::uint64_t shift_mask = is64 ? 63 : 31;
  std::uint64_t r = 0;
  switch (op) {
    case kAluAdd: r = dst + src; break;
    case kAluSub: r = dst - src; break;
    case kAluMul: r = dst * src; break;
    case kAluDiv:
      r = src == 0 ? 0
                   : (is64 ? dst / src
                           : (dst & 0xffffffffull) / (src & 0xffffffffull));
      break;
    case kAluMod:
      r = src == 0 ? 0
                   : (is64 ? dst % src
                           : (dst & 0xffffffffull) % (src & 0xffffffffull));
      break;
    case kAluOr: r = dst | src; break;
    case kAluAnd: r = dst & src; break;
    case kAluXor: r = dst ^ src; break;
    case kAluLsh: r = dst << (src & shift_mask); break;
    case kAluRsh:
      r = is64 ? dst >> (src & shift_mask)
               : (dst & 0xffffffffull) >> (src & shift_mask);
      break;
    case kAluArsh:
      if (is64) {
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                       (src & shift_mask));
      } else {
        r = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(dst)) >>
            (src & shift_mask));
      }
      break;
    case kAluNeg: r = ~dst + 1; break;
    case kAluMov: r = src; break;
    default: ok = false; return 0;
  }
  if (!is64) r &= 0xffffffffull;
  return r;
}

// BPF_END on a little-endian host: to-LE truncates to the width; to-BE
// byte-swaps then truncates. Width must be 16/32/64.
inline std::uint64_t EndianEval(std::uint64_t v, std::int32_t width,
                                bool to_be, bool& ok) {
  ok = true;
  switch (width) {
    case 16: {
      std::uint16_t x = static_cast<std::uint16_t>(v);
      return to_be ? __builtin_bswap16(x) : x;
    }
    case 32: {
      std::uint32_t x = static_cast<std::uint32_t>(v);
      return to_be ? __builtin_bswap32(x) : x;
    }
    case 64:
      return to_be ? __builtin_bswap64(v) : v;
  }
  ok = false;
  return 0;
}

// Sign-extends the low 32 bits; JMP32 semantics reduce to 64-bit JmpEval
// over sign-extended operands (order-preserving for both signedness
// interpretations, and JSET agrees because negative operands share
// bit 31).
inline std::uint64_t SignExtend32(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

inline bool JmpEval(std::uint8_t op, std::uint64_t dst, std::uint64_t src,
                    bool& ok) {
  ok = true;
  const std::int64_t sdst = static_cast<std::int64_t>(dst);
  const std::int64_t ssrc = static_cast<std::int64_t>(src);
  switch (op) {
    case kJmpJeq: return dst == src;
    case kJmpJne: return dst != src;
    case kJmpJgt: return dst > src;
    case kJmpJge: return dst >= src;
    case kJmpJlt: return dst < src;
    case kJmpJle: return dst <= src;
    case kJmpJset: return (dst & src) != 0;
    case kJmpJsgt: return sdst > ssrc;
    case kJmpJsge: return sdst >= ssrc;
    case kJmpJslt: return sdst < ssrc;
    case kJmpJsle: return sdst <= ssrc;
    default: ok = false; return false;
  }
}

}  // namespace rdx::bpf::internal
