#include "bpf/exec.h"

namespace rdx::bpf {

Status MemSpace::LoadInt(std::uint64_t addr, int size, std::uint64_t& out) {
  RDX_ASSIGN_OR_RETURN(MutableByteSpan span, SpanAt(addr, size));
  switch (size) {
    case 1: out = span[0]; return OkStatus();
    case 2: out = LoadLE<std::uint16_t>(span.data()); return OkStatus();
    case 4: out = LoadLE<std::uint32_t>(span.data()); return OkStatus();
    case 8: out = LoadLE<std::uint64_t>(span.data()); return OkStatus();
  }
  return InvalidArgument("bad access size");
}

Status MemSpace::StoreInt(std::uint64_t addr, int size, std::uint64_t value) {
  RDX_ASSIGN_OR_RETURN(MutableByteSpan span, SpanAt(addr, size));
  switch (size) {
    case 1:
      span[0] = static_cast<std::uint8_t>(value);
      return OkStatus();
    case 2:
      StoreLE(span.data(), static_cast<std::uint16_t>(value));
      return OkStatus();
    case 4:
      StoreLE(span.data(), static_cast<std::uint32_t>(value));
      return OkStatus();
    case 8:
      StoreLE(span.data(), value);
      return OkStatus();
  }
  return InvalidArgument("bad access size");
}

VectorMemory::VectorMemory(std::uint64_t capacity, std::uint64_t base)
    : base_(base), next_(base), bytes_(capacity, 0) {}

StatusOr<MutableByteSpan> VectorMemory::SpanAt(std::uint64_t addr,
                                               std::uint64_t len) {
  if (addr < base_ || addr + len > base_ + bytes_.size() || addr + len < addr) {
    return OutOfRange("access outside VectorMemory");
  }
  return MutableByteSpan(bytes_.data() + (addr - base_), len);
}

StatusOr<std::uint64_t> VectorMemory::Allocate(std::uint64_t size,
                                               std::uint64_t align) {
  if (size == 0 || align == 0 || (align & (align - 1)) != 0) {
    return InvalidArgument("bad allocation");
  }
  const std::uint64_t addr = (next_ + align - 1) & ~(align - 1);
  if (addr + size > base_ + bytes_.size()) {
    return ResourceExhausted("VectorMemory exhausted");
  }
  next_ = addr + size;
  return addr;
}

namespace {
constexpr HelperSpec kHelpers[] = {
    {kHelperMapLookupElem, "map_lookup_elem", true, true, false, true},
    {kHelperMapUpdateElem, "map_update_elem", true, true, true, false},
    {kHelperMapDeleteElem, "map_delete_elem", true, true, false, false},
    {kHelperKtimeGetNs, "ktime_get_ns", false, false, false, false},
    {kHelperTracePrintk, "trace_printk", false, false, false, false},
    {kHelperGetPrandomU32, "get_prandom_u32", false, false, false, false},
    {kHelperGetSmpProcessorId, "get_smp_processor_id", false, false, false,
     false},
    {kHelperRingbufOutput, "ringbuf_output", true, true, false, false},
};
}  // namespace

const HelperSpec* FindHelper(std::int32_t id) {
  for (const HelperSpec& h : kHelpers) {
    if (h.id == id) return &h;
  }
  return nullptr;
}

namespace {

StatusOr<MapView> ViewForMap(RuntimeContext& rt, std::uint64_t map_addr,
                             MapSpec& spec_out) {
  auto it = rt.maps.find(map_addr);
  if (it == rt.maps.end()) {
    return FailedPrecondition("helper called with unregistered map");
  }
  spec_out = it->second;
  RDX_ASSIGN_OR_RETURN(
      MutableByteSpan storage,
      rt.mem->SpanAt(map_addr, MapRequiredBytes(it->second)));
  return MapView(storage);
}

}  // namespace

StatusOr<std::uint64_t> CallHelperFn(
    RuntimeContext& rt, std::int32_t id,
    const std::array<std::uint64_t, kMaxHelperArgs>& args) {
  if (rt.mem == nullptr) return Internal("RuntimeContext without MemSpace");
  switch (id) {
    case kHelperMapLookupElem: {
      MapSpec spec;
      RDX_ASSIGN_OR_RETURN(MapView view, ViewForMap(rt, args[0], spec));
      RDX_ASSIGN_OR_RETURN(MutableByteSpan key,
                           rt.mem->SpanAt(args[1], spec.key_size));
      auto off = view.LookupOffset(ByteSpan(key.data(), key.size()));
      if (!off.ok()) return 0ull;  // NULL: not found
      return args[0] + off.value();
    }
    case kHelperMapUpdateElem: {
      MapSpec spec;
      RDX_ASSIGN_OR_RETURN(MapView view, ViewForMap(rt, args[0], spec));
      RDX_ASSIGN_OR_RETURN(MutableByteSpan key,
                           rt.mem->SpanAt(args[1], spec.key_size));
      RDX_ASSIGN_OR_RETURN(MutableByteSpan value,
                           rt.mem->SpanAt(args[2], spec.value_size));
      Status s = view.Update(ByteSpan(key.data(), key.size()),
                             ByteSpan(value.data(), value.size()));
      return s.ok() ? 0ull : static_cast<std::uint64_t>(-1);
    }
    case kHelperMapDeleteElem: {
      MapSpec spec;
      RDX_ASSIGN_OR_RETURN(MapView view, ViewForMap(rt, args[0], spec));
      RDX_ASSIGN_OR_RETURN(MutableByteSpan key,
                           rt.mem->SpanAt(args[1], spec.key_size));
      Status s = view.Delete(ByteSpan(key.data(), key.size()));
      return s.ok() ? 0ull : static_cast<std::uint64_t>(-1);
    }
    case kHelperKtimeGetNs:
      return rt.ktime_ns();
    case kHelperTracePrintk:
      ++rt.trace_count;
      return 0ull;
    case kHelperGetPrandomU32:
      if (rt.rng == nullptr) return 0ull;
      return static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(rt.rng->NextU64()));
    case kHelperGetSmpProcessorId:
      return rt.processor_id;
    case kHelperRingbufOutput: {
      MapSpec spec;
      RDX_ASSIGN_OR_RETURN(MapView view, ViewForMap(rt, args[0], spec));
      const std::uint64_t len = args[2];
      RDX_ASSIGN_OR_RETURN(MutableByteSpan data, rt.mem->SpanAt(args[1], len));
      Status s = view.RingOutput(ByteSpan(data.data(), data.size()));
      return s.ok() ? 0ull : static_cast<std::uint64_t>(-1);
    }
    default:
      return Unimplemented("unknown helper");
  }
}

}  // namespace rdx::bpf
