// A small text assembler whose syntax matches the disassembler's output,
// so tests and examples can express programs readably:
//
//   prologue:
//     r6 = *(u32*)(r1 + 0)     ; load from ctx
//     w7 = 10                  ; 32-bit mov ("w" register prefix)
//     r2 = r10
//     r2 += -8
//     *(u64*)(r2 + 0) = r6
//     r1 = map 0               ; LD_IMM64 pseudo-map, slot 0
//     call map_lookup_elem     ; helpers by name or number
//     if r0 == 0 goto miss
//     r0 = *(u64*)(r0 + 0)
//     exit
//   miss:
//     r0 = 0
//     exit
//
// ';' starts a comment. Labels are alphanumeric followed by ':'.
#pragma once

#include <string_view>

#include "bpf/program.h"
#include "common/status.h"

namespace rdx::bpf {

// Assembles `source` into instructions. Map slots referenced by `map N`
// must exist in the Program the caller attaches them to.
StatusOr<std::vector<Insn>> Assemble(std::string_view source);

}  // namespace rdx::bpf
