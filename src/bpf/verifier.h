// Static verifier: an abstract interpreter over the eBPF subset, in the
// spirit of the kernel's. It proves, before any instruction runs, that a
// program (1) terminates (no back edges unless explicitly allowed),
// (2) never reads uninitialized registers or stack bytes, (3) only
// dereferences pointers it legitimately holds (ctx, stack, map values)
// and always within bounds, (4) null-checks map lookups before use, and
// (5) calls only known helpers with correctly-typed arguments.
//
// Simplifications vs. the kernel (documented in DESIGN.md): pointer
// arithmetic only with compile-time constants, no pointer spilling to the
// stack, no bounded-loop induction — the paper's socket-filter workloads
// need none of these.
#pragma once

#include <cstdint>

#include "bpf/program.h"
#include "common/status.h"

namespace rdx::bpf {

struct VerifierConfig {
  // Reject any jump whose target does not strictly advance (classic,
  // pre-5.3 kernel behaviour). When true, termination is enforced at
  // runtime by the instruction limit instead.
  bool allow_back_edges = false;
  // Abort with "too complex" beyond this many explored (state, insn)
  // pairs — the same backstop as the kernel's 1M-insn budget.
  std::uint64_t max_visited = 1u << 20;
  // Bound on distinct abstract states remembered per instruction.
  std::uint32_t max_states_per_insn = 64;
  // Size of the (read-only) context record, bytes.
  std::uint32_t ctx_size = 256;
};

struct VerifierStats {
  std::uint64_t insns_processed = 0;  // (state, insn) visits
  std::uint64_t states_stored = 0;    // distinct states remembered
  std::uint64_t branches = 0;         // branch states pushed
};

class Verifier {
 public:
  explicit Verifier(VerifierConfig config = {}) : config_(config) {}

  // Returns OK iff the program is safe to load. On rejection the status
  // message pinpoints the instruction and the rule violated.
  Status Verify(const Program& prog, VerifierStats* stats = nullptr) const;

 private:
  VerifierConfig config_;
};

}  // namespace rdx::bpf
