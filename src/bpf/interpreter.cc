#include "bpf/interpreter.h"

#include "bpf/eval_inl.h"

namespace rdx::bpf {

using internal::AluEval;
using internal::JmpEval;
StatusOr<ExecResult> Interpret(const std::vector<Insn>& insns,
                               RuntimeContext& rt, const ExecOptions& opts) {
  if (rt.mem == nullptr) return Internal("RuntimeContext without MemSpace");
  std::uint64_t regs[kNumRegs] = {};
  regs[1] = opts.ctx_addr;
  regs[kFrameReg] = opts.stack_addr + kStackSize;

  ExecResult result;
  std::size_t pc = 0;
  while (true) {
    if (pc >= insns.size()) {
      return Aborted("program counter ran off the end");
    }
    if (++result.insns_executed > opts.insn_limit) {
      return ResourceExhausted("instruction limit exceeded");
    }
    const Insn& insn = insns[pc];
    switch (insn.cls()) {
      case kClassAlu64:
      case kClassAlu: {
        if (insn.AluOp() == kAluEnd) {
          if (insn.cls() != kClassAlu) {
            return InvalidArgument("BPF_END outside the ALU class");
          }
          bool swap_ok = false;
          regs[insn.dst_reg] = internal::EndianEval(
              regs[insn.dst_reg], insn.imm, insn.UsesRegSrc(), swap_ok);
          if (!swap_ok) return InvalidArgument("bad byte-swap width");
          ++pc;
          break;
        }
        const bool is64 = insn.cls() == kClassAlu64;
        const std::uint64_t src =
            insn.AluOp() == kAluNeg
                ? 0
                : (insn.UsesRegSrc()
                       ? regs[insn.src_reg]
                       : static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(insn.imm)));
        bool ok = false;
        regs[insn.dst_reg] =
            AluEval(insn.AluOp(), regs[insn.dst_reg], src, is64, ok);
        if (!ok) return InvalidArgument("bad ALU opcode at runtime");
        ++pc;
        break;
      }
      case kClassJmp32: {
        const std::uint64_t dst_val =
            internal::SignExtend32(regs[insn.dst_reg]);
        const std::uint64_t src_val = internal::SignExtend32(
            insn.UsesRegSrc() ? regs[insn.src_reg]
                              : static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(insn.imm)));
        bool ok = false;
        const bool taken = JmpEval(insn.JmpOp(), dst_val, src_val, ok);
        if (!ok) return InvalidArgument("bad JMP32 opcode at runtime");
        pc = taken ? pc + 1 + insn.off : pc + 1;
        break;
      }
      case kClassJmp: {
        const std::uint8_t op = insn.JmpOp();
        if (op == kJmpJa) {
          pc = pc + 1 + insn.off;
          break;
        }
        if (op == kJmpExit) {
          result.r0 = regs[0];
          return result;
        }
        if (op == kJmpCall) {
          std::array<std::uint64_t, kMaxHelperArgs> args = {
              regs[1], regs[2], regs[3], regs[4], regs[5]};
          RDX_ASSIGN_OR_RETURN(regs[0], CallHelperFn(rt, insn.imm, args));
          // r1-r5 are caller-saved and clobbered by the call.
          for (int r = 1; r <= 5; ++r) regs[r] = 0;
          ++pc;
          break;
        }
        const std::uint64_t src =
            insn.UsesRegSrc() ? regs[insn.src_reg]
                              : static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(insn.imm));
        bool ok = false;
        const bool taken = JmpEval(op, regs[insn.dst_reg], src, ok);
        if (!ok) return InvalidArgument("bad JMP opcode at runtime");
        pc = taken ? pc + 1 + insn.off : pc + 1;
        break;
      }
      case kClassLdx: {
        const std::uint64_t addr =
            regs[insn.src_reg] + static_cast<std::int64_t>(insn.off);
        std::uint64_t value = 0;
        RDX_RETURN_IF_ERROR(
            rt.mem->LoadInt(addr, insn.AccessBytes(), value));
        regs[insn.dst_reg] = value;
        ++pc;
        break;
      }
      case kClassSt: {
        const std::uint64_t addr =
            regs[insn.dst_reg] + static_cast<std::int64_t>(insn.off);
        RDX_RETURN_IF_ERROR(rt.mem->StoreInt(
            addr, insn.AccessBytes(),
            static_cast<std::uint64_t>(
                static_cast<std::int64_t>(insn.imm))));
        ++pc;
        break;
      }
      case kClassStx: {
        const std::uint64_t addr =
            regs[insn.dst_reg] + static_cast<std::int64_t>(insn.off);
        RDX_RETURN_IF_ERROR(rt.mem->StoreInt(addr, insn.AccessBytes(),
                                             regs[insn.src_reg]));
        ++pc;
        break;
      }
      case kClassLd: {
        if (!insn.IsLdImm64() || pc + 1 >= insns.size()) {
          return InvalidArgument("bad LD instruction at runtime");
        }
        const Insn& hi = insns[pc + 1];
        std::uint64_t value =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi.imm))
             << 32) |
            static_cast<std::uint32_t>(insn.imm);
        regs[insn.dst_reg] = value;
        pc += 2;
        break;
      }
      default:
        return InvalidArgument("unknown instruction class at runtime");
    }
  }
}

}  // namespace rdx::bpf
