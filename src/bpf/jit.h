// The JIT compiler and its output format, JitImage.
//
// Instead of emitting x86 bytes, the JIT lowers verified eBPF into
// *threaded code*: fully pre-decoded micro-ops with absolute branch
// targets and merged 64-bit immediates. This keeps the image portable
// across simulated "architectures" while preserving everything §3.2–3.3
// of the paper needs mechanically:
//   - a relocation table: micro-ops whose imm64 is a placeholder that the
//     RDX link stage patches with the target node's map addresses, and
//     helper-call sites checked against the node's exported symbol table;
//   - a serialized wire format (the binary that is RDMA-written);
//   - a content checksum used by the control plane's compile cache
//     ("validate and compile once, deploy anywhere").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpf/exec.h"
#include "bpf/program.h"

namespace rdx::bpf {

enum class OpKind : std::uint8_t {
  kAlu64K, kAlu64X, kAlu32K, kAlu32X,  // aux = ALU operation
  kJumpAbs,                            // target = absolute micro-pc
  kCondJmpK, kCondJmpX,                // aux = condition; target = abs pc
  kCall,                               // imm = helper id
  kExit,
  kLoad, kStoreImm, kStoreReg,         // aux = access bytes (1/2/4/8)
  kLoadImm64,                          // imm64 = constant or patched addr
  kCondJmp32K, kCondJmp32X,            // 32-bit compares; aux = condition
  kEndian,                             // aux = width; src = to_be flag
};

struct MicroOp {
  OpKind kind = OpKind::kExit;
  std::uint8_t aux = 0;
  std::uint8_t dst = 0;
  std::uint8_t src = 0;
  std::int32_t imm = 0;
  std::uint32_t target = 0;
  std::uint64_t imm64 = 0;
};

enum class RelocKind : std::uint8_t {
  kMapAddress,  // imm64 of code[index] <- node-local address of map[symbol]
  kHelperCall,  // code[index] calls helper `symbol`; must exist on target
};

struct Relocation {
  RelocKind kind;
  std::uint32_t index;   // micro-op index
  std::int32_t symbol;   // map slot or helper id
};

// Placeholder the JIT writes into unlinked map-reference slots; deploying
// an image that still contains it is a linker bug the sandbox will catch.
constexpr std::uint64_t kUnlinkedPlaceholder = 0xdeadbeefdeadbeefULL;

struct JitImage {
  std::string program_name;
  ProgramType type = ProgramType::kSocketFilter;
  std::vector<MicroOp> code;
  std::vector<Relocation> relocs;
  std::vector<MapSpec> maps;

  // True once every kMapAddress relocation has been patched.
  bool IsLinked() const;

  // Wire format (the bytes RDMA-deployed to a sandbox).
  Bytes Serialize() const;
  static StatusOr<JitImage> Deserialize(ByteSpan bytes);

  // Content fingerprint over the *unlinked* semantic content (code with
  // map placeholders + maps), so one compile is reusable across nodes.
  std::uint64_t Fingerprint() const;
};

class JitCompiler {
 public:
  // Lowers a program. The program must already have passed verification;
  // the compiler still rejects structurally invalid input defensively.
  StatusOr<JitImage> Compile(const Program& prog) const;
};

// Executes a linked image. `opts.stack_addr` and map registration in `rt`
// must match how the image was linked.
StatusOr<ExecResult> RunJit(const JitImage& image, RuntimeContext& rt,
                            const ExecOptions& opts);

}  // namespace rdx::bpf
