#include "bpf/assembler.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bpf/exec.h"

namespace rdx::bpf {

namespace {

struct Token {
  std::string text;
};

// Splits one line into tokens. Operators are single tokens; registers,
// numbers and identifiers are words.
std::vector<std::string> Tokenize(std::string_view line) {
  static const char* kOps[] = {
      "s>>=", "<<=", ">>=", "s>=", "s<=", "+=", "-=", "*=", "/=", "%=",
      "|=",  "&=",  "^=",  "==", "!=", ">=", "<=", "s>", "s<", "=",
      ">",   "<",   "&",   "*",  "(",  ")",  "+",  "-",  ":", ",",
  };
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == ';') break;  // comment
    bool matched = false;
    for (const char* op : kOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (line.compare(i, len, op) == 0) {
        // Don't split identifiers like "s>>=" greedily out of words; ops
        // are tried longest-first by table order above.
        out.emplace_back(op);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    std::size_t j = i;
    while (j < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[j])) ||
            line[j] == '_' || line[j] == 'x')) {
      ++j;
    }
    if (j == i) ++j;  // unknown single char; surfaces as a parse error
    out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::optional<int> ParseReg(const std::string& tok, bool& is32) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'w')) return std::nullopt;
  is32 = tok[0] == 'w';
  int reg = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
    reg = reg * 10 + (tok[i] - '0');
  }
  if (reg >= kNumRegs) return std::nullopt;
  return reg;
}

std::optional<std::int64_t> ParseImm(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::size_t pos = 0;
  const bool neg = tok[0] == '-';
  if (neg) pos = 1;
  if (pos >= tok.size()) return std::nullopt;
  // Accumulate in unsigned arithmetic: immediates are allowed to wrap
  // at 64 bits (tests rely on it), and signed overflow would be UB.
  std::uint64_t value = 0;
  std::uint64_t base = 10;
  if (tok.compare(pos, 2, "0x") == 0) {
    base = 16;
    pos += 2;
  }
  for (; pos < tok.size(); ++pos) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(tok[pos])));
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    value = value * base + digit;
  }
  if (neg) value = 0 - value;
  return static_cast<std::int64_t>(value);
}

std::optional<std::uint8_t> ParseSize(const std::string& tok) {
  if (tok == "u8") return kSizeB;
  if (tok == "u16") return kSizeH;
  if (tok == "u32") return kSizeW;
  if (tok == "u64") return kSizeDw;
  return std::nullopt;
}

std::optional<std::uint8_t> ParseAluOp(const std::string& tok) {
  if (tok == "+=") return kAluAdd;
  if (tok == "-=") return kAluSub;
  if (tok == "*=") return kAluMul;
  if (tok == "/=") return kAluDiv;
  if (tok == "%=") return kAluMod;
  if (tok == "|=") return kAluOr;
  if (tok == "&=") return kAluAnd;
  if (tok == "^=") return kAluXor;
  if (tok == "<<=") return kAluLsh;
  if (tok == ">>=") return kAluRsh;
  if (tok == "s>>=") return kAluArsh;
  return std::nullopt;
}

std::optional<std::uint8_t> ParseCond(const std::string& tok) {
  if (tok == "==") return kJmpJeq;
  if (tok == "!=") return kJmpJne;
  if (tok == ">") return kJmpJgt;
  if (tok == ">=") return kJmpJge;
  if (tok == "<") return kJmpJlt;
  if (tok == "<=") return kJmpJle;
  if (tok == "&") return kJmpJset;
  if (tok == "s>") return kJmpJsgt;
  if (tok == "s>=") return kJmpJsge;
  if (tok == "s<") return kJmpJslt;
  if (tok == "s<=") return kJmpJsle;
  return std::nullopt;
}

std::optional<std::int32_t> HelperByName(const std::string& name) {
  static const std::pair<const char*, std::int32_t> kNames[] = {
      {"map_lookup_elem", kHelperMapLookupElem},
      {"map_update_elem", kHelperMapUpdateElem},
      {"map_delete_elem", kHelperMapDeleteElem},
      {"ktime_get_ns", kHelperKtimeGetNs},
      {"trace_printk", kHelperTracePrintk},
      {"get_prandom_u32", kHelperGetPrandomU32},
      {"get_smp_processor_id", kHelperGetSmpProcessorId},
      {"ringbuf_output", kHelperRingbufOutput},
  };
  for (const auto& [n, id] : kNames) {
    if (name == n) return id;
  }
  return std::nullopt;
}

Status LineError(int line_no, const char* msg) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "line %d: %s", line_no, msg);
  return InvalidArgument(buf);
}

}  // namespace

StatusOr<std::vector<Insn>> Assemble(std::string_view source) {
  std::vector<Insn> insns;
  std::map<std::string, std::size_t> labels;
  struct Fixup {
    std::size_t insn;  // instruction whose off needs the label
    std::string label;
    int line_no;
  };
  std::vector<Fixup> fixups;

  int line_no = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    const std::size_t eol = source.find('\n', start);
    std::string_view line = source.substr(
        start, eol == std::string_view::npos ? source.size() - start
                                             : eol - start);
    start = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    std::vector<std::string> t = Tokenize(line);
    if (t.empty()) continue;

    // Label definition: "name :".
    if (t.size() == 2 && t[1] == ":") {
      if (labels.count(t[0]) != 0) return LineError(line_no, "duplicate label");
      labels[t[0]] = insns.size();
      continue;
    }

    // exit
    if (t[0] == "exit") {
      insns.push_back(Exit());
      continue;
    }
    // goto label
    if (t[0] == "goto") {
      if (t.size() != 2) return LineError(line_no, "goto needs a label");
      fixups.push_back({insns.size(), t[1], line_no});
      insns.push_back(Jump(0));
      continue;
    }
    // call helper
    if (t[0] == "call") {
      if (t.size() != 2) return LineError(line_no, "call needs a helper");
      std::int32_t id;
      if (auto by_name = HelperByName(t[1])) {
        id = *by_name;
      } else if (auto imm = ParseImm(t[1])) {
        id = static_cast<std::int32_t>(*imm);
      } else {
        return LineError(line_no, "unknown helper");
      }
      insns.push_back(Call(id));
      continue;
    }
    // if rX <cond> (rY|imm) goto label
    if (t[0] == "if") {
      // Negative immediates arrive as two tokens ("-", "1"); fold them.
      if (t.size() == 7 && t[3] == "-") {
        t[3] = "-" + t[4];
        t.erase(t.begin() + 4);
      }
      if (t.size() != 6 || t[4] != "goto") {
        return LineError(line_no, "malformed conditional branch");
      }
      bool is32 = false;
      auto dst = ParseReg(t[1], is32);
      if (!dst) return LineError(line_no, "bad branch register");
      auto cond = ParseCond(t[2]);
      if (!cond) return LineError(line_no, "bad branch condition");
      bool src32 = false;
      if (auto src = ParseReg(t[3], src32); src) {
        if (src32 != is32) {
          return LineError(line_no, "mixed 32/64-bit branch operands");
        }
        fixups.push_back({insns.size(), t[5], line_no});
        insns.push_back(is32 ? Jmp32Reg(*cond, *dst, *src, 0)
                             : JmpReg(*cond, *dst, *src, 0));
      } else if (auto imm = ParseImm(t[3])) {
        fixups.push_back({insns.size(), t[5], line_no});
        insns.push_back(
            is32 ? Jmp32Imm(*cond, *dst, static_cast<std::int32_t>(*imm), 0)
                 : JmpImm(*cond, *dst, static_cast<std::int32_t>(*imm), 0));
      } else {
        return LineError(line_no, "bad branch operand");
      }
      continue;
    }

    // Store: *(size*)(rX +/- off) = (rY | imm)
    if (t[0] == "*") {
      // *(u32*)(r1 + 4) = r2   ->  * ( u32 * ) ( r1 + 4 ) = r2
      if (t.size() < 12) return LineError(line_no, "malformed store");
      auto size = ParseSize(t[2]);
      if (!size || t[1] != "(" || t[3] != "*" || t[4] != ")" || t[5] != "(") {
        return LineError(line_no, "malformed store address");
      }
      bool is32 = false;
      auto base = ParseReg(t[6], is32);
      if (!base || is32) return LineError(line_no, "bad store base register");
      if (t[7] != "+" && t[7] != "-") {
        return LineError(line_no, "malformed store displacement");
      }
      auto disp = ParseImm(t[8]);
      if (!disp || t[9] != ")" || t[10] != "=") {
        return LineError(line_no, "malformed store");
      }
      const std::int16_t off = static_cast<std::int16_t>(
          t[7] == "-" ? -*disp : *disp);
      bool src32 = false;
      if (auto src = ParseReg(t[11], src32); src && !src32) {
        insns.push_back(StoreMemReg(*size, *base, *src, off));
      } else {
        // Immediate store; support a leading '-' token split.
        std::string imm_text = t[11];
        if (t[11] == "-" && t.size() > 12) imm_text = "-" + t[12];
        auto imm = ParseImm(imm_text);
        if (!imm) return LineError(line_no, "bad store value");
        insns.push_back(StoreMemImm(*size, *base, off,
                                    static_cast<std::int32_t>(*imm)));
      }
      continue;
    }

    // Everything else starts with a register.
    bool dst32 = false;
    auto dst = ParseReg(t[0], dst32);
    if (!dst || t.size() < 2) return LineError(line_no, "unparsed statement");

    // ALU compound: rX op= (rY | imm)
    if (auto alu = ParseAluOp(t[1])) {
      if (t.size() < 3) return LineError(line_no, "missing ALU operand");
      bool src32 = false;
      if (auto src = ParseReg(t[2], src32); src && src32 == dst32) {
        insns.push_back(AluReg(*alu, *dst, *src, !dst32));
      } else {
        std::string imm_text = t[2];
        if (t[2] == "-" && t.size() > 3) imm_text = "-" + t[3];
        auto imm = ParseImm(imm_text);
        if (!imm) return LineError(line_no, "bad ALU operand");
        insns.push_back(
            AluImm(*alu, *dst, static_cast<std::int32_t>(*imm), !dst32));
      }
      continue;
    }

    if (t[1] != "=") return LineError(line_no, "expected '='");
    if (t.size() < 3) return LineError(line_no, "missing operand");

    // rX = -rX (negate)
    if (t.size() >= 4 && t[2] == "-") {
      bool neg32 = false;
      if (auto src = ParseReg(t[3], neg32); src && *src == *dst &&
          neg32 == dst32) {
        insns.push_back(AluImm(kAluNeg, *dst, 0, !dst32));
        continue;
      }
    }
    // rX = be16 rX / le32 rX / ... (byte swap)
    if (t.size() >= 4 && t[2].size() == 4 &&
        (t[2].substr(0, 2) == "be" || t[2].substr(0, 2) == "le")) {
      const bool to_be = t[2][0] == 'b';
      const std::string width_text = t[2].substr(2);
      if (width_text == "16" || width_text == "32" || width_text == "64") {
        bool swap32 = false;
        auto src = ParseReg(t[3], swap32);
        if (!src || swap32 || *src != *dst || dst32) {
          return LineError(line_no, "byte swap must be rX = beN rX");
        }
        insns.push_back(Endian(*dst, std::atoi(width_text.c_str()), to_be));
        continue;
      }
    }
    // rX = map N
    if (t[2] == "map") {
      if (dst32 || t.size() < 4) return LineError(line_no, "bad map load");
      auto slot = ParseImm(t[3]);
      if (!slot) return LineError(line_no, "bad map slot");
      auto [lo, hi] = LoadMapFd(*dst, static_cast<std::int32_t>(*slot));
      insns.push_back(lo);
      insns.push_back(hi);
      continue;
    }
    // rX = imm64 VALUE
    if (t[2] == "imm64") {
      if (dst32 || t.size() < 4) return LineError(line_no, "bad imm64 load");
      std::string imm_text = t[3];
      if (t[3] == "-" && t.size() > 4) imm_text = "-" + t[4];
      auto imm = ParseImm(imm_text);
      if (!imm) return LineError(line_no, "bad imm64 value");
      auto [lo, hi] = LoadImm64(*dst, static_cast<std::uint64_t>(*imm));
      insns.push_back(lo);
      insns.push_back(hi);
      continue;
    }
    // Load: rX = *(size*)(rY +/- off)
    if (t[2] == "*" && t.size() >= 12 && t[3] == "(") {
      auto size = ParseSize(t[4]);
      if (!size || t[5] != "*" || t[6] != ")" || t[7] != "(") {
        return LineError(line_no, "malformed load");
      }
      bool base32 = false;
      auto base = ParseReg(t[8], base32);
      if (!base || base32) return LineError(line_no, "bad load base");
      if (t[9] != "+" && t[9] != "-") {
        return LineError(line_no, "malformed load displacement");
      }
      auto disp = ParseImm(t[10]);
      if (!disp || t[11] != ")") return LineError(line_no, "malformed load");
      const std::int16_t off = static_cast<std::int16_t>(
          t[9] == "-" ? -*disp : *disp);
      if (dst32) return LineError(line_no, "loads write full registers");
      insns.push_back(LoadMem(*size, *dst, *base, off));
      continue;
    }
    // rX = rY  /  rX = imm
    {
      bool src32 = false;
      if (auto src = ParseReg(t[2], src32); src && src32 == dst32) {
        insns.push_back(MovReg(*dst, *src, !dst32));
        continue;
      }
      std::string imm_text = t[2];
      if (t[2] == "-" && t.size() > 3) imm_text = "-" + t[3];
      auto imm = ParseImm(imm_text);
      if (!imm) return LineError(line_no, "bad mov operand");
      insns.push_back(
          MovImm(*dst, static_cast<std::int32_t>(*imm), !dst32));
      continue;
    }
  }

  // Resolve label fixups.
  for (const Fixup& fixup : fixups) {
    auto it = labels.find(fixup.label);
    if (it == labels.end()) return LineError(fixup.line_no, "unknown label");
    const std::int64_t rel = static_cast<std::int64_t>(it->second) -
                             static_cast<std::int64_t>(fixup.insn) - 1;
    if (rel < INT16_MIN || rel > INT16_MAX) {
      return LineError(fixup.line_no, "branch target too far");
    }
    insns[fixup.insn].off = static_cast<std::int16_t>(rel);
  }
  return insns;
}

}  // namespace rdx::bpf
