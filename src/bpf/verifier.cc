#include "bpf/verifier.h"

#include <bitset>
#include <cstdio>
#include <vector>

#include "bpf/exec.h"

namespace rdx::bpf {

namespace {

enum class RegKind : std::uint8_t {
  kUninit,
  kScalar,
  kPtrCtx,
  kPtrStack,
  kPtrMap,             // handle loaded by LD_IMM64 pseudo-map
  kPtrMapValue,        // non-null pointer into a map value
  kPtrMapValueOrNull,  // result of map_lookup before the null check
};

struct RegState {
  RegKind kind = RegKind::kUninit;
  std::int32_t map_slot = -1;  // for the kPtrMap* kinds
  std::int64_t off = 0;        // byte offset from the region base

  bool operator==(const RegState&) const = default;
};

struct AbstractState {
  RegState regs[kNumRegs];
  std::bitset<kStackSize> stack_init;  // byte-granular init tracking

  bool operator==(const AbstractState&) const = default;
};

bool IsPointer(RegKind kind) {
  return kind != RegKind::kUninit && kind != RegKind::kScalar;
}

Status Err(std::size_t pc, const Insn& insn, const char* rule) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "insn %zu (%s): %s", pc,
                Disassemble(insn).c_str(), rule);
  return InvalidArgument(buf);
}

}  // namespace

Status Verifier::Verify(const Program& prog, VerifierStats* stats) const {
  VerifierStats local_stats;
  VerifierStats& st = stats != nullptr ? *stats : local_stats;
  st = VerifierStats{};

  const std::vector<Insn>& insns = prog.insns;
  const std::size_t n = insns.size();
  if (n == 0) return InvalidArgument("empty program");

  // ---- Structural pass -------------------------------------------------
  // First sub-pass: mark second slots of LD_IMM64, so the jump checks in
  // the second sub-pass can reject targets landing inside one regardless
  // of instruction order.
  std::vector<bool> is_imm64_cont(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_imm64_cont[i]) continue;
    if (insns[i].cls() == kClassLd) {
      if (!insns[i].IsLdImm64()) {
        return Err(i, insns[i], "unsupported LD mode");
      }
      if (i + 1 >= n) return Err(i, insns[i], "truncated LD_IMM64");
      is_imm64_cont[i + 1] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Insn& insn = insns[i];
    if (is_imm64_cont[i]) continue;
    if (insn.cls() == kClassLd) {
      if (insn.src_reg == kPseudoMapFd &&
          (insn.imm < 0 ||
           static_cast<std::size_t>(insn.imm) >= prog.maps.size())) {
        return Err(i, insn, "map slot out of range");
      }
      continue;
    }
    if (insn.IsAlu()) {
      const std::uint8_t op = insn.AluOp();
      const bool valid =
          op == kAluAdd || op == kAluSub || op == kAluMul || op == kAluDiv ||
          op == kAluOr || op == kAluAnd || op == kAluLsh || op == kAluRsh ||
          op == kAluNeg || op == kAluMod || op == kAluXor || op == kAluMov ||
          op == kAluArsh || op == kAluEnd;
      if (!valid) return Err(i, insn, "invalid ALU operation");
      if (op == kAluEnd) {
        if (insn.cls() != kClassAlu) {
          return Err(i, insn, "BPF_END must use the 32-bit ALU class");
        }
        if (insn.imm != 16 && insn.imm != 32 && insn.imm != 64) {
          return Err(i, insn, "byte-swap width must be 16/32/64");
        }
      }
      if (!insn.UsesRegSrc() && (op == kAluDiv || op == kAluMod) &&
          insn.imm == 0) {
        return Err(i, insn, "division by constant zero");
      }
      const std::int32_t width = insn.cls() == kClassAlu64 ? 64 : 32;
      if (!insn.UsesRegSrc() &&
          (op == kAluLsh || op == kAluRsh || op == kAluArsh) &&
          (insn.imm < 0 || insn.imm >= width)) {
        return Err(i, insn, "shift amount out of range");
      }
    } else if (insn.IsJmp()) {
      const std::uint8_t op = insn.JmpOp();
      const bool conditional =
          op == kJmpJeq || op == kJmpJgt || op == kJmpJge ||
          op == kJmpJset || op == kJmpJne || op == kJmpJsgt ||
          op == kJmpJsge || op == kJmpJlt || op == kJmpJle ||
          op == kJmpJslt || op == kJmpJsle;
      const bool valid =
          insn.cls() == kClassJmp32
              ? conditional  // JMP32 has no JA/CALL/EXIT
              : (conditional || op == kJmpJa || op == kJmpCall ||
                 op == kJmpExit);
      if (!valid) return Err(i, insn, "invalid JMP operation");
      if (op != kJmpCall && op != kJmpExit) {
        const std::int64_t target =
            static_cast<std::int64_t>(i) + 1 + insn.off;
        if (target < 0 || target >= static_cast<std::int64_t>(n)) {
          return Err(i, insn, "jump out of program bounds");
        }
        if (is_imm64_cont[static_cast<std::size_t>(target)]) {
          return Err(i, insn, "jump into the middle of LD_IMM64");
        }
        if (!config_.allow_back_edges &&
            target <= static_cast<std::int64_t>(i)) {
          return Err(i, insn, "back edge (potential loop)");
        }
      }
      if (op == kJmpCall && FindHelper(insn.imm) == nullptr) {
        return Err(i, insn, "call to unknown helper");
      }
    } else if (insn.cls() == kClassLdx || insn.cls() == kClassSt ||
               insn.cls() == kClassStx) {
      if (insn.MemMode() != kModeMem) {
        return Err(i, insn, "unsupported memory mode");
      }
    } else {
      return Err(i, insn, "unknown instruction class");
    }
    // Writes to r10 are rejected uniformly below; reads of r10 are fine.
    if ((insn.IsAlu() || insn.cls() == kClassLdx ||
         insn.cls() == kClassLd) &&
        insn.dst_reg == kFrameReg) {
      return Err(i, insn, "write to frame pointer r10");
    }
  }

  // ---- Abstract interpretation -----------------------------------------
  AbstractState entry;
  entry.regs[1] = {RegKind::kPtrCtx, -1, 0};
  entry.regs[kFrameReg] = {RegKind::kPtrStack, -1, 0};

  struct WorkItem {
    std::size_t pc;
    AbstractState state;
  };
  std::vector<WorkItem> work;
  std::vector<std::vector<AbstractState>> seen(n);
  work.push_back({0, entry});

  // Remembers a state; returns false if an equal state was already there.
  auto remember = [&](std::size_t pc, const AbstractState& s) -> bool {
    for (const AbstractState& old : seen[pc]) {
      if (old == s) return false;
    }
    if (seen[pc].size() >= config_.max_states_per_insn) {
      // Per-insn state budget exhausted: treat as already-seen to force
      // convergence; soundness is kept because exploration stops, and the
      // kernel similarly prunes with its own state-equivalence logic.
      return false;
    }
    seen[pc].push_back(s);
    ++st.states_stored;
    return true;
  };
  remember(0, entry);

  // Validates a memory access through `reg` at displacement `off` of
  // `size` bytes. Returns nullptr-rule on success.
  auto check_access = [&](const AbstractState& s, const RegState& reg,
                          std::int64_t disp, int size,
                          bool write) -> const char* {
    const std::int64_t start = reg.off + disp;
    switch (reg.kind) {
      case RegKind::kPtrCtx:
        if (write) return "write to read-only ctx";
        if (start < 0 || start + size > config_.ctx_size) {
          return "ctx access out of bounds";
        }
        return nullptr;
      case RegKind::kPtrStack: {
        if (start < -kStackSize || start + size > 0) {
          return "stack access out of bounds";
        }
        if (!write) {
          for (int b = 0; b < size; ++b) {
            if (!s.stack_init[static_cast<std::size_t>(kStackSize + start +
                                                       b)]) {
              return "read of uninitialized stack";
            }
          }
        }
        return nullptr;
      }
      case RegKind::kPtrMapValue: {
        if (reg.map_slot < 0 ||
            static_cast<std::size_t>(reg.map_slot) >= prog.maps.size()) {
          return "map value pointer with bad slot";
        }
        const std::int64_t value_size = prog.maps[reg.map_slot].value_size;
        if (start < 0 || start + size > value_size) {
          return "map value access out of bounds";
        }
        return nullptr;
      }
      case RegKind::kPtrMapValueOrNull:
        return "dereference of possibly-null map value (missing null check)";
      case RegKind::kPtrMap:
        return "direct access through map handle";
      case RegKind::kScalar:
      case RegKind::kUninit:
        return "memory access through non-pointer";
    }
    return "corrupt register state";
  };

  while (!work.empty()) {
    WorkItem item = std::move(work.back());
    work.pop_back();
    std::size_t pc = item.pc;
    AbstractState s = std::move(item.state);

    // Follow straight-line code without re-queuing.
    while (true) {
      if (++st.insns_processed > config_.max_visited) {
        return ResourceExhausted("program too complex to verify");
      }
      if (pc >= n) {
        return InvalidArgument("control flow falls off the program end");
      }
      const Insn& insn = insns[pc];

      if (insn.IsAlu()) {
        const std::uint8_t op = insn.AluOp();
        RegState& dst = s.regs[insn.dst_reg];
        const bool imm_src = !insn.UsesRegSrc();
        const RegState src = insn.UsesRegSrc() ? s.regs[insn.src_reg]
                                               : RegState{RegKind::kScalar};
        if (op != kAluMov && dst.kind == RegKind::kUninit) {
          return Err(pc, insn, "read of uninitialized register");
        }
        if (op == kAluEnd) {
          // The source bit of BPF_END selects LE/BE, not a register.
          if (IsPointer(dst.kind)) {
            return Err(pc, insn, "byte-swap on pointer value");
          }
          dst = RegState{RegKind::kScalar};
          ++pc;
          continue;
        }
        if (insn.UsesRegSrc() && src.kind == RegKind::kUninit) {
          return Err(pc, insn, "read of uninitialized source register");
        }
        if (op == kAluMov) {
          dst = insn.UsesRegSrc() ? src : RegState{RegKind::kScalar};
          if (insn.cls() == kClassAlu && IsPointer(dst.kind)) {
            return Err(pc, insn, "32-bit move truncates pointer");
          }
        } else if (IsPointer(dst.kind)) {
          // Pointer arithmetic: only +/- constant immediates, 64-bit.
          if (dst.kind == RegKind::kPtrMap ||
              dst.kind == RegKind::kPtrMapValueOrNull) {
            return Err(pc, insn, "arithmetic on unusable pointer");
          }
          if (insn.cls() != kClassAlu64) {
            return Err(pc, insn, "32-bit arithmetic on pointer");
          }
          if (!(op == kAluAdd || op == kAluSub) || !imm_src) {
            return Err(pc, insn,
                       "pointer arithmetic must be +/- constant");
          }
          dst.off += op == kAluAdd ? insn.imm : -insn.imm;
        } else {
          if (insn.UsesRegSrc() && IsPointer(src.kind)) {
            // scalar = scalar op pointer would leak a pointer value.
            return Err(pc, insn, "pointer used as scalar operand");
          }
          dst = RegState{RegKind::kScalar};
        }
        ++pc;
        continue;
      }

      if (insn.cls() == kClassLdx) {
        const RegState& base = s.regs[insn.src_reg];
        if (const char* rule =
                check_access(s, base, insn.off, insn.AccessBytes(), false)) {
          return Err(pc, insn, rule);
        }
        s.regs[insn.dst_reg] = RegState{RegKind::kScalar};
        ++pc;
        continue;
      }

      if (insn.cls() == kClassSt || insn.cls() == kClassStx) {
        const RegState& base = s.regs[insn.dst_reg];
        if (insn.cls() == kClassStx) {
          const RegState& value = s.regs[insn.src_reg];
          if (value.kind == RegKind::kUninit) {
            return Err(pc, insn, "store of uninitialized register");
          }
          if (IsPointer(value.kind)) {
            return Err(pc, insn, "pointer spilling is not supported");
          }
        }
        if (const char* rule =
                check_access(s, base, insn.off, insn.AccessBytes(), true)) {
          return Err(pc, insn, rule);
        }
        if (base.kind == RegKind::kPtrStack) {
          const std::int64_t start = base.off + insn.off;
          for (int b = 0; b < insn.AccessBytes(); ++b) {
            s.stack_init.set(static_cast<std::size_t>(kStackSize + start + b));
          }
        }
        ++pc;
        continue;
      }

      if (insn.cls() == kClassLd) {  // LD_IMM64 (structurally validated)
        if (insn.src_reg == kPseudoMapFd) {
          s.regs[insn.dst_reg] = RegState{RegKind::kPtrMap, insn.imm, 0};
        } else {
          s.regs[insn.dst_reg] = RegState{RegKind::kScalar};
        }
        pc += 2;
        continue;
      }

      // JMP class.
      const std::uint8_t op = insn.JmpOp();
      if (op == kJmpExit) {
        if (s.regs[0].kind != RegKind::kScalar) {
          return Err(pc, insn, "exit with non-scalar or uninitialized r0");
        }
        break;  // path done
      }
      if (op == kJmpCall) {
        const HelperSpec* helper = FindHelper(insn.imm);
        std::int32_t map_slot = -1;
        if (helper->arg1_is_map) {
          if (s.regs[1].kind != RegKind::kPtrMap) {
            return Err(pc, insn, "helper r1 must be a map handle");
          }
          map_slot = s.regs[1].map_slot;
        }
        auto check_mem_arg = [&](int reg, std::uint64_t need) -> const char* {
          const RegState& r = s.regs[reg];
          if (r.kind != RegKind::kPtrStack &&
              r.kind != RegKind::kPtrMapValue) {
            return "helper memory argument must point to stack or map value";
          }
          return check_access(s, r, 0, static_cast<int>(need), false);
        };
        if (helper->arg2_is_mem) {
          std::uint64_t need = 1;
          if (map_slot >= 0) need = prog.maps[map_slot].key_size;
          if (insn.imm == kHelperRingbufOutput) need = 1;  // dynamic length
          if (const char* rule = check_mem_arg(2, need)) {
            return Err(pc, insn, rule);
          }
        }
        if (helper->arg3_is_mem) {
          std::uint64_t need = 1;
          if (map_slot >= 0) need = prog.maps[map_slot].value_size;
          if (const char* rule = check_mem_arg(3, need)) {
            return Err(pc, insn, rule);
          }
        }
        s.regs[0] = helper->returns_map_value_or_null
                        ? RegState{RegKind::kPtrMapValueOrNull, map_slot, 0}
                        : RegState{RegKind::kScalar};
        for (int r = 1; r <= 5; ++r) s.regs[r] = RegState{};
        ++pc;
        continue;
      }
      if (op == kJmpJa) {
        pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + 1 +
                                      insn.off);
        if (!remember(pc, s)) break;
        continue;
      }

      // Conditional branch.
      const RegState& dst = s.regs[insn.dst_reg];
      if (dst.kind == RegKind::kUninit) {
        return Err(pc, insn, "branch on uninitialized register");
      }
      if (insn.UsesRegSrc() &&
          s.regs[insn.src_reg].kind == RegKind::kUninit) {
        return Err(pc, insn, "branch on uninitialized source register");
      }
      // Comparing a pointer with anything but the null-check pattern is
      // rejected (prevents pointer leaks via branches).
      const bool null_check =
          insn.cls() == kClassJmp &&
          dst.kind == RegKind::kPtrMapValueOrNull && !insn.UsesRegSrc() &&
          insn.imm == 0 && (op == kJmpJeq || op == kJmpJne);
      if (IsPointer(dst.kind) && !null_check) {
        return Err(pc, insn, "comparison on pointer value");
      }
      if (insn.UsesRegSrc() && IsPointer(s.regs[insn.src_reg].kind)) {
        return Err(pc, insn, "comparison with pointer value");
      }

      const std::size_t taken_pc = static_cast<std::size_t>(
          static_cast<std::int64_t>(pc) + 1 + insn.off);
      AbstractState taken = s;
      AbstractState fall = s;
      if (null_check) {
        // JEQ r,0: taken => null; JNE r,0: taken => non-null.
        RegState null_state{RegKind::kScalar};
        RegState good_state{RegKind::kPtrMapValue, dst.map_slot, dst.off};
        if (op == kJmpJeq) {
          taken.regs[insn.dst_reg] = null_state;
          fall.regs[insn.dst_reg] = good_state;
        } else {
          taken.regs[insn.dst_reg] = good_state;
          fall.regs[insn.dst_reg] = null_state;
        }
      }
      ++st.branches;
      if (remember(taken_pc, taken)) {
        work.push_back({taken_pc, std::move(taken)});
      }
      if (!remember(pc + 1, fall)) break;
      s = std::move(fall);
      pc = pc + 1;
      continue;
    }
  }

  return OkStatus();
}

}  // namespace rdx::bpf
