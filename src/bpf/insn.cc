#include "bpf/insn.h"

#include <cstdio>

namespace rdx::bpf {

int Insn::AccessBytes() const {
  switch (MemSize()) {
    case kSizeB: return 1;
    case kSizeH: return 2;
    case kSizeW: return 4;
    case kSizeDw: return 8;
  }
  return 0;
}

namespace {
Insn Make(std::uint8_t opcode, int dst, int src, std::int16_t off,
          std::int32_t imm) {
  Insn insn;
  insn.opcode = opcode;
  insn.dst_reg = static_cast<std::uint8_t>(dst) & 0xf;
  insn.src_reg = static_cast<std::uint8_t>(src) & 0xf;
  insn.off = off;
  insn.imm = imm;
  return insn;
}
}  // namespace

Insn AluImm(std::uint8_t op, int dst, std::int32_t imm, bool is64) {
  return Make((is64 ? kClassAlu64 : kClassAlu) | op | kSrcK, dst, 0, 0, imm);
}

Insn AluReg(std::uint8_t op, int dst, int src, bool is64) {
  return Make((is64 ? kClassAlu64 : kClassAlu) | op | kSrcX, dst, src, 0, 0);
}

Insn MovImm(int dst, std::int32_t imm, bool is64) {
  return AluImm(kAluMov, dst, imm, is64);
}

Insn MovReg(int dst, int src, bool is64) {
  return AluReg(kAluMov, dst, src, is64);
}

Insn JmpImm(std::uint8_t op, int dst, std::int32_t imm, std::int16_t off) {
  return Make(kClassJmp | op | kSrcK, dst, 0, off, imm);
}

Insn JmpReg(std::uint8_t op, int dst, int src, std::int16_t off) {
  return Make(kClassJmp | op | kSrcX, dst, src, off, 0);
}

Insn Jump(std::int16_t off) { return Make(kClassJmp | kJmpJa, 0, 0, off, 0); }

Insn Jmp32Imm(std::uint8_t op, int dst, std::int32_t imm, std::int16_t off) {
  return Make(kClassJmp32 | op | kSrcK, dst, 0, off, imm);
}

Insn Jmp32Reg(std::uint8_t op, int dst, int src, std::int16_t off) {
  return Make(kClassJmp32 | op | kSrcX, dst, src, off, 0);
}

Insn Endian(int dst, int width, bool to_be) {
  return Make(kClassAlu | kAluEnd | (to_be ? kSrcX : kSrcK), dst, 0, 0,
              width);
}

Insn Call(std::int32_t helper_id) {
  return Make(kClassJmp | kJmpCall, 0, 0, 0, helper_id);
}

Insn Exit() { return Make(kClassJmp | kJmpExit, 0, 0, 0, 0); }

Insn LoadMem(std::uint8_t size, int dst, int src, std::int16_t off) {
  return Make(kClassLdx | size | kModeMem, dst, src, off, 0);
}

Insn StoreMemImm(std::uint8_t size, int dst, std::int16_t off,
                 std::int32_t imm) {
  return Make(kClassSt | size | kModeMem, dst, 0, off, imm);
}

Insn StoreMemReg(std::uint8_t size, int dst, int src, std::int16_t off) {
  return Make(kClassStx | size | kModeMem, dst, src, off, 0);
}

std::pair<Insn, Insn> LoadImm64(int dst, std::uint64_t imm) {
  Insn lo = Make(kClassLd | kSizeDw | kModeImm, dst, 0, 0,
                 static_cast<std::int32_t>(imm & 0xffffffff));
  Insn hi = Make(0, 0, 0, 0, static_cast<std::int32_t>(imm >> 32));
  return {lo, hi};
}

std::pair<Insn, Insn> LoadMapFd(int dst, std::int32_t map_slot) {
  Insn lo = Make(kClassLd | kSizeDw | kModeImm, dst, kPseudoMapFd, 0,
                 map_slot);
  Insn hi = Make(0, 0, 0, 0, 0);
  return {lo, hi};
}

void EncodeInsn(const Insn& insn, Bytes& out) {
  out.push_back(insn.opcode);
  out.push_back(static_cast<std::uint8_t>((insn.src_reg << 4) |
                                          insn.dst_reg));
  AppendLE<std::int16_t>(out, insn.off);
  AppendLE<std::int32_t>(out, insn.imm);
}

Bytes EncodeProgram(const std::vector<Insn>& insns) {
  Bytes out;
  out.reserve(insns.size() * 8);
  for (const Insn& insn : insns) EncodeInsn(insn, out);
  return out;
}

StatusOr<std::vector<Insn>> DecodeProgram(ByteSpan bytes) {
  if (bytes.size() % 8 != 0) {
    return InvalidArgument("program size not a multiple of 8");
  }
  std::vector<Insn> insns;
  insns.reserve(bytes.size() / 8);
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    Insn insn;
    insn.opcode = bytes[i];
    insn.dst_reg = bytes[i + 1] & 0xf;
    insn.src_reg = (bytes[i + 1] >> 4) & 0xf;
    insn.off = LoadLE<std::int16_t>(bytes.data() + i + 2);
    insn.imm = LoadLE<std::int32_t>(bytes.data() + i + 4);
    insns.push_back(insn);
  }
  return insns;
}

namespace {

const char* AluOpName(std::uint8_t op) {
  switch (op) {
    case kAluAdd: return "+=";
    case kAluSub: return "-=";
    case kAluMul: return "*=";
    case kAluDiv: return "/=";
    case kAluOr: return "|=";
    case kAluAnd: return "&=";
    case kAluLsh: return "<<=";
    case kAluRsh: return ">>=";
    case kAluMod: return "%=";
    case kAluXor: return "^=";
    case kAluMov: return "=";
    case kAluArsh: return "s>>=";
    default: return "?=";
  }
}

const char* JmpOpName(std::uint8_t op) {
  switch (op) {
    case kJmpJeq: return "==";
    case kJmpJgt: return ">";
    case kJmpJge: return ">=";
    case kJmpJset: return "&";
    case kJmpJne: return "!=";
    case kJmpJsgt: return "s>";
    case kJmpJsge: return "s>=";
    case kJmpJlt: return "<";
    case kJmpJle: return "<=";
    case kJmpJslt: return "s<";
    case kJmpJsle: return "s<=";
    default: return "?";
  }
}

const char* SizeSuffix(std::uint8_t size) {
  switch (size) {
    case kSizeB: return "u8";
    case kSizeH: return "u16";
    case kSizeW: return "u32";
    case kSizeDw: return "u64";
  }
  return "?";
}

}  // namespace

std::string Disassemble(const Insn& insn) {
  char buf[128];
  const int dst = insn.dst_reg;
  const int src = insn.src_reg;
  switch (insn.cls()) {
    case kClassAlu64:
    case kClassAlu: {
      const char* w = insn.cls() == kClassAlu ? " (w)" : "";
      if (insn.AluOp() == kAluEnd) {
        std::snprintf(buf, sizeof(buf), "r%d = %s%d r%d", dst,
                      insn.UsesRegSrc() ? "be" : "le", insn.imm, dst);
        return buf;
      }
      if (insn.AluOp() == kAluNeg) {
        std::snprintf(buf, sizeof(buf), "r%d = -r%d%s", dst, dst, w);
      } else if (insn.UsesRegSrc()) {
        std::snprintf(buf, sizeof(buf), "r%d %s r%d%s", dst,
                      AluOpName(insn.AluOp()), src, w);
      } else {
        std::snprintf(buf, sizeof(buf), "r%d %s %d%s", dst,
                      AluOpName(insn.AluOp()), insn.imm, w);
      }
      return buf;
    }
    case kClassJmp32: {
      if (insn.UsesRegSrc()) {
        std::snprintf(buf, sizeof(buf), "if w%d %s w%d goto %+d", dst,
                      JmpOpName(insn.JmpOp()), src, insn.off);
      } else {
        std::snprintf(buf, sizeof(buf), "if w%d %s %d goto %+d", dst,
                      JmpOpName(insn.JmpOp()), insn.imm, insn.off);
      }
      return buf;
    }
    case kClassJmp: {
      if (insn.JmpOp() == kJmpJa) {
        std::snprintf(buf, sizeof(buf), "goto %+d", insn.off);
      } else if (insn.JmpOp() == kJmpCall) {
        std::snprintf(buf, sizeof(buf), "call helper#%d", insn.imm);
      } else if (insn.JmpOp() == kJmpExit) {
        std::snprintf(buf, sizeof(buf), "exit");
      } else if (insn.UsesRegSrc()) {
        std::snprintf(buf, sizeof(buf), "if r%d %s r%d goto %+d", dst,
                      JmpOpName(insn.JmpOp()), src, insn.off);
      } else {
        std::snprintf(buf, sizeof(buf), "if r%d %s %d goto %+d", dst,
                      JmpOpName(insn.JmpOp()), insn.imm, insn.off);
      }
      return buf;
    }
    case kClassLdx:
      std::snprintf(buf, sizeof(buf), "r%d = *(%s*)(r%d %+d)", dst,
                    SizeSuffix(insn.MemSize()), src, insn.off);
      return buf;
    case kClassSt:
      std::snprintf(buf, sizeof(buf), "*(%s*)(r%d %+d) = %d",
                    SizeSuffix(insn.MemSize()), dst, insn.off, insn.imm);
      return buf;
    case kClassStx:
      std::snprintf(buf, sizeof(buf), "*(%s*)(r%d %+d) = r%d",
                    SizeSuffix(insn.MemSize()), dst, insn.off, src);
      return buf;
    case kClassLd:
      if (insn.IsLdImm64()) {
        if (insn.src_reg == kPseudoMapFd) {
          std::snprintf(buf, sizeof(buf), "r%d = map[%d]", dst, insn.imm);
        } else {
          std::snprintf(buf, sizeof(buf), "r%d = imm64(lo=%d)", dst,
                        insn.imm);
        }
        return buf;
      }
      break;
  }
  std::snprintf(buf, sizeof(buf), "<op 0x%02x>", insn.opcode);
  return buf;
}

std::string DisassembleProgram(const std::vector<Insn>& insns) {
  std::string out;
  for (std::size_t i = 0; i < insns.size(); ++i) {
    char line[32];
    std::snprintf(line, sizeof(line), "%4zu: ", i);
    out += line;
    out += Disassemble(insns[i]);
    out += '\n';
    if (insns[i].IsLdImm64()) ++i;  // skip the second slot
  }
  return out;
}

}  // namespace rdx::bpf
