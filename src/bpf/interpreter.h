// Reference interpreter. Executes raw (decoded) instructions against a
// RuntimeContext. Used by the agent baseline when JIT is disabled, by the
// divergence property tests (interpreter vs JIT must agree), and as the
// semantic ground truth for the ISA subset.
#pragma once

#include <cstdint>
#include <vector>

#include "bpf/exec.h"
#include "bpf/insn.h"

namespace rdx::bpf {

// Runs `insns` to completion (EXIT) and returns r0. Runtime errors
// (bad memory access, division trap policy violations, instruction-limit
// overrun) are reported as Status — a verified program never hits them,
// which is exactly what the verifier tests assert.
StatusOr<ExecResult> Interpret(const std::vector<Insn>& insns,
                               RuntimeContext& rt, const ExecOptions& opts);

}  // namespace rdx::bpf
