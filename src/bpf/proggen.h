// Synthetic eBPF workload generator — the stand-in for the "synthetic
// Socket Filter eBPF programs from the official Linux eBPF stress test"
// the paper deploys in §6 (instruction sizes 1.3K–95K). Generated
// programs are deterministic in the seed, always verifier-clean, and mix
// ALU work, forward branches, ctx loads, stack traffic, and map
// lookup/update sequences in realistic proportions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bpf/program.h"

namespace rdx::bpf {

struct ProgGenOptions {
  std::size_t target_insns = 1300;
  std::uint64_t seed = 1;
  bool use_maps = true;
  // Fraction of blocks that are forward branches / helper sequences.
  double branch_density = 0.15;
  double helper_density = 0.05;
};

// Generates a socket-filter program of exactly `target_insns`
// instructions (including the final exit).
Program GenerateProgram(const ProgGenOptions& options);

// The paper's Fig 2a / 4a sweep sizes (approximate instruction counts of
// the kernel selftest stress programs).
inline constexpr std::size_t kPaperSweepSizes[] = {1'300, 11'000, 26'000,
                                                   49'000, 76'000, 95'000};

// ---- adversarial generators (guardrail pressure) ----
//
// Rogue programs are *verifier-clean* — they pass every static check and
// misbehave only at runtime, which is exactly the gap the runtime
// guardrails exist to close (verification is necessary but not
// sufficient, §5).
enum class RogueKind {
  // Traps on every execution: calls ringbuf_output with a huge dynamic
  // length in r3. The verifier cannot bound a scalar register, so it
  // only proves one readable stack byte at r2; at runtime the bounds
  // check on the 1 GiB "record" fails and the program faults.
  kTrapLoop,
  // Burns the per-execution fuel budget: a straight-line program longer
  // than the budget (the validator forbids loops, so length is fuel).
  kFuelBurn,
  // Eats remote scratchpad: an oversized but otherwise healthy program
  // whose repeated redeployment exhausts the bump allocator.
  kScratchHog,
};

struct RogueGenOptions {
  RogueKind kind = RogueKind::kTrapLoop;
  std::uint64_t seed = 1;
  // kFuelBurn: executed straight-line length — pick it above the target
  // sandbox's fuel_budget. kScratchHog: image-size driver.
  std::size_t target_insns = 8192;
};

Program GenerateRogueProgram(const RogueGenOptions& options);

}  // namespace rdx::bpf
