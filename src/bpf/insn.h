// eBPF instruction set (subset) using the real kernel encoding: 64-bit
// instructions with an 8-bit opcode (class | size/mode | operation),
// 4-bit destination and source registers, 16-bit signed offset, and a
// 32-bit immediate. BPF_LD_IMM64 occupies two instruction slots, and with
// src_reg == kPseudoMapFd the immediate names a map (the relocation hook
// the RDX control plane rewrites at link time, mirroring libbpf).
//
// Supported subset: full ALU64/ALU32 (K and X forms), all JMP and JMP32
// condition codes, CALL/EXIT, byte-swap (BPF_END), LDX/ST/STX of 1/2/4/8
// bytes, and LD_IMM64. Omitted relative to the kernel: atomics and
// BPF-to-BPF calls — neither is needed by the paper's socket-filter
// workloads (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rdx::bpf {

// ---- Instruction classes (low 3 bits of opcode) ----
constexpr std::uint8_t kClassLd = 0x00;
constexpr std::uint8_t kClassLdx = 0x01;
constexpr std::uint8_t kClassSt = 0x02;
constexpr std::uint8_t kClassStx = 0x03;
constexpr std::uint8_t kClassAlu = 0x04;
constexpr std::uint8_t kClassJmp = 0x05;
constexpr std::uint8_t kClassJmp32 = 0x06;  // compares on low 32 bits
constexpr std::uint8_t kClassAlu64 = 0x07;

// ---- Size field for memory ops (bits 3-4) ----
constexpr std::uint8_t kSizeW = 0x00;   // 4 bytes
constexpr std::uint8_t kSizeH = 0x08;   // 2 bytes
constexpr std::uint8_t kSizeB = 0x10;   // 1 byte
constexpr std::uint8_t kSizeDw = 0x18;  // 8 bytes

// ---- Mode field for memory ops (bits 5-7) ----
constexpr std::uint8_t kModeImm = 0x00;  // LD_IMM64
constexpr std::uint8_t kModeMem = 0x60;

// ---- ALU / JMP operation field (bits 4-7) ----
constexpr std::uint8_t kAluAdd = 0x00;
constexpr std::uint8_t kAluSub = 0x10;
constexpr std::uint8_t kAluMul = 0x20;
constexpr std::uint8_t kAluDiv = 0x30;
constexpr std::uint8_t kAluOr = 0x40;
constexpr std::uint8_t kAluAnd = 0x50;
constexpr std::uint8_t kAluLsh = 0x60;
constexpr std::uint8_t kAluRsh = 0x70;
constexpr std::uint8_t kAluNeg = 0x80;
constexpr std::uint8_t kAluMod = 0x90;
constexpr std::uint8_t kAluXor = 0xa0;
constexpr std::uint8_t kAluMov = 0xb0;
constexpr std::uint8_t kAluArsh = 0xc0;
// Byte-swap (BPF_END): the source bit selects to-LE (K) / to-BE (X) and
// imm selects the width (16/32/64).
constexpr std::uint8_t kAluEnd = 0xd0;

constexpr std::uint8_t kJmpJa = 0x00;
constexpr std::uint8_t kJmpJeq = 0x10;
constexpr std::uint8_t kJmpJgt = 0x20;
constexpr std::uint8_t kJmpJge = 0x30;
constexpr std::uint8_t kJmpJset = 0x40;
constexpr std::uint8_t kJmpJne = 0x50;
constexpr std::uint8_t kJmpJsgt = 0x60;
constexpr std::uint8_t kJmpJsge = 0x70;
constexpr std::uint8_t kJmpCall = 0x80;
constexpr std::uint8_t kJmpExit = 0x90;
constexpr std::uint8_t kJmpJlt = 0xa0;
constexpr std::uint8_t kJmpJle = 0xb0;
constexpr std::uint8_t kJmpJslt = 0xc0;
constexpr std::uint8_t kJmpJsle = 0xd0;

// ---- Source bit (bit 3 of ALU/JMP opcodes) ----
constexpr std::uint8_t kSrcK = 0x00;  // immediate operand
constexpr std::uint8_t kSrcX = 0x08;  // register operand

// src_reg value marking an LD_IMM64 whose immediate is a map reference.
constexpr std::uint8_t kPseudoMapFd = 1;

constexpr int kNumRegs = 11;     // r0..r10
constexpr int kStackSize = 512;  // bytes of per-invocation stack
constexpr int kFrameReg = 10;    // r10: read-only frame pointer
constexpr int kMaxHelperArgs = 5;

struct Insn {
  std::uint8_t opcode = 0;
  std::uint8_t dst_reg : 4;
  std::uint8_t src_reg : 4;
  std::int16_t off = 0;
  std::int32_t imm = 0;

  Insn() : dst_reg(0), src_reg(0) {}

  std::uint8_t cls() const { return opcode & 0x07; }
  bool IsAlu() const { return cls() == kClassAlu || cls() == kClassAlu64; }
  bool IsJmp() const { return cls() == kClassJmp || cls() == kClassJmp32; }
  std::uint8_t AluOp() const { return opcode & 0xf0; }
  std::uint8_t JmpOp() const { return opcode & 0xf0; }
  bool UsesRegSrc() const { return (opcode & 0x08) != 0; }
  std::uint8_t MemSize() const { return opcode & 0x18; }
  std::uint8_t MemMode() const { return opcode & 0xe0; }
  bool IsLdImm64() const {
    return opcode == (kClassLd | kSizeDw | kModeImm);
  }
  // Bytes accessed by LDX/ST/STX.
  int AccessBytes() const;
};

static_assert(sizeof(Insn) == 8, "eBPF instructions are 8 bytes");

// ---- Constructors for the common instruction forms ----
Insn AluImm(std::uint8_t op, int dst, std::int32_t imm, bool is64 = true);
Insn AluReg(std::uint8_t op, int dst, int src, bool is64 = true);
Insn MovImm(int dst, std::int32_t imm, bool is64 = true);
Insn MovReg(int dst, int src, bool is64 = true);
Insn JmpImm(std::uint8_t op, int dst, std::int32_t imm, std::int16_t off);
Insn JmpReg(std::uint8_t op, int dst, int src, std::int16_t off);
// 32-bit conditional branches (JMP32 class).
Insn Jmp32Imm(std::uint8_t op, int dst, std::int32_t imm, std::int16_t off);
Insn Jmp32Reg(std::uint8_t op, int dst, int src, std::int16_t off);
// Byte swap: width is 16, 32, or 64; to_be selects big-endian target.
Insn Endian(int dst, int width, bool to_be);
Insn Jump(std::int16_t off);
Insn Call(std::int32_t helper_id);
Insn Exit();
Insn LoadMem(std::uint8_t size, int dst, int src, std::int16_t off);
Insn StoreMemImm(std::uint8_t size, int dst, std::int16_t off,
                 std::int32_t imm);
Insn StoreMemReg(std::uint8_t size, int dst, int src, std::int16_t off);
// Returns the two-slot LD_IMM64 pair.
std::pair<Insn, Insn> LoadImm64(int dst, std::uint64_t imm);
std::pair<Insn, Insn> LoadMapFd(int dst, std::int32_t map_slot);

// ---- Wire format ----
void EncodeInsn(const Insn& insn, Bytes& out);
StatusOr<std::vector<Insn>> DecodeProgram(ByteSpan bytes);
Bytes EncodeProgram(const std::vector<Insn>& insns);

// One-line human-readable rendering, e.g. "r0 += 42" or "if r1 == r2 goto +5".
std::string Disassemble(const Insn& insn);
std::string DisassembleProgram(const std::vector<Insn>& insns);

}  // namespace rdx::bpf
